#!/usr/bin/env python3
"""Header hygiene gate: every public header must compile standalone.

API splits (like the serve::Server redesign) tend to leave headers that
only compile because some .cpp happened to include their dependencies
first.  This script compiles each public header in the checked
directories as its own translation unit (-fsyntax-only), so a header
missing an include or a forward declaration fails CI instead of
surfacing as an unrelated build break later.

Usage:
  check_headers.py [--compiler g++] [--std c++20] [dirs...]

Default directories: src/serve src/core src/gpusim (the API-redesign
surface, the kernel-engine surface it sits on, and the device-spec
registry the fleet layer consumes) plus tests and bench, whose shared
headers (e.g. bench/bench_util.hpp) are included from the repo root and
rot just as easily as the library's.

Headers under src/ are compiled as they are included in the tree
(#include "serve/server.hpp", -Isrc); headers anywhere else compile as
repo-root-relative includes (#include "bench/bench_util.hpp", -I.).
"""

import argparse
import os
import subprocess
import sys
import tempfile


def headers_under(repo, rel_dir):
    # src/ headers are included src-relative throughout the tree; anything
    # else (tests/, bench/) is included repo-root-relative.
    base = os.path.join(repo, "src") if rel_dir.split(os.sep)[0] == "src" \
        else repo
    root = os.path.join(repo, rel_dir)
    found = []
    for dirpath, _, files in os.walk(root):
        for name in sorted(files):
            if name.endswith(".hpp") or name.endswith(".h"):
                path = os.path.join(dirpath, name)
                found.append(os.path.relpath(path, base))
    return found


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--compiler", default=os.environ.get("CXX", "g++"))
    ap.add_argument("--std", default="c++20")
    ap.add_argument("dirs", nargs="*",
                    default=["src/serve", "src/core", "src/gpusim",
                             "tests", "bench"])
    args = ap.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    include_dir = os.path.join(repo, "src")
    headers = []
    for d in args.dirs:
        headers.extend(headers_under(repo, d))
    if not headers:
        print("no headers found under", args.dirs)
        return 1

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        for header in headers:
            tu = os.path.join(tmp, "tu.cpp")
            with open(tu, "w") as f:
                f.write(f'#include "{header}"\n')
                # A second include proves the guard works.
                f.write(f'#include "{header}"\n')
            cmd = [
                args.compiler, f"-std={args.std}", "-fsyntax-only",
                "-Wall", "-Wextra", "-Werror",
                f"-I{include_dir}", f"-I{repo}", tu,
            ]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            status = "ok" if proc.returncode == 0 else "FAIL"
            print(f"  {header:<40} {status}")
            if proc.returncode != 0:
                failures.append((header, proc.stderr.strip()))

    if failures:
        print(f"\n{len(failures)} header(s) do not compile standalone:")
        for header, err in failures:
            print(f"\n== {header} ==\n{err}")
        return 1
    print(f"\n{len(headers)} headers compile standalone")
    return 0


if __name__ == "__main__":
    sys.exit(main())
