#!/usr/bin/env python3
"""Run the perf-tracked benches and emit BENCH_fig*.json trajectory files.

Each tracked bench prints machine-readable "@metric <name> <value>" lines
(see bench/bench_util.hpp).  This script runs the fig13 (mapping), fig14
(serving throughput), fig16 (kernel-map cache), fig17 (multi-device
sharding), fig18 (priority classes), fig19 (heterogeneous fleets), fig20
(warm-start serving), fig21 (fault-tolerant serving), and fig22
(multi-model serving) binaries, collects their metrics, and writes one
BENCH_<fig>.json per bench.

Modeled metrics are produced by the deterministic cost model, so they are
bit-reproducible across machines; the CI regression gate (--check)
compares them against the checked-in scripts/bench_baseline.json with a
20% tolerance and fails on regressions.  Metrics whose name starts with
"wall_" are host wall-clock measurements: recorded in the trajectory
files for trend inspection, never gated (CI machines are noisy).

Usage:
  bench_report.py [--build-dir build] [--preset ci|full]
                  [--check] [--update-baseline] [--out-dir .]

Presets select the synthetic workload scale via TS_BENCH_SCALE: "ci"
shrinks scans to ~20% so the whole suite runs in about a minute; "full"
uses the benches' native scales.  Baselines are stored per preset.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import time

BENCHES = {
    "fig13": "bench_fig13_mapping",
    "fig14": "bench_fig14_throughput",
    "fig16": "bench_fig16_map_cache",
    "fig17": "bench_fig17_sharding",
    "fig18": "bench_fig18_priority",
    "fig19": "bench_fig19_fleet",
    "fig20": "bench_fig20_warm_start",
    "fig21": "bench_fig21_faults",
    "fig22": "bench_fig22_multimodel",
}
PRESET_SCALE = {"ci": "0.2", "full": ""}
TOLERANCE = 0.20
METRIC_RE = re.compile(r"^@metric (\S+) (\S+)$", re.MULTILINE)


def run_bench(binary, scale):
    env = dict(os.environ)
    if scale:
        env["TS_BENCH_SCALE"] = scale
    elif "TS_BENCH_SCALE" in env:
        del env["TS_BENCH_SCALE"]
    start = time.monotonic()
    proc = subprocess.run(
        [binary], env=env, capture_output=True, text=True, timeout=3600
    )
    wall = time.monotonic() - start
    metrics = {m: float(v) for m, v in METRIC_RE.findall(proc.stdout)}
    return {
        "exit_code": proc.returncode,
        "wall_seconds": round(wall, 3),
        "metrics": metrics,
        "tail": proc.stdout.strip().splitlines()[-8:],
    }


def gated(metrics):
    """Modeled (deterministic) metrics only — wall_* is never gated."""
    return {k: v for k, v in metrics.items() if not k.startswith("wall_")}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--preset", choices=sorted(PRESET_SCALE), default="ci")
    ap.add_argument("--check", action="store_true",
                    help="fail on >%d%% modeled regression vs baseline"
                         % int(TOLERANCE * 100))
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("--out-dir", default=".")
    args = ap.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_path = os.path.join(repo, "scripts", "bench_baseline.json")
    scale = PRESET_SCALE[args.preset]

    results = {}
    failures = []
    for fig, target in BENCHES.items():
        binary = os.path.join(args.build_dir, target)
        if not os.path.exists(binary):
            failures.append(f"{fig}: binary {binary} not built")
            continue
        print(f"== {fig}: {binary} (preset={args.preset}) ==", flush=True)
        res = run_bench(binary, scale)
        res["preset"] = args.preset
        results[fig] = res
        out_path = os.path.join(args.out_dir, f"BENCH_{fig}.json")
        with open(out_path, "w") as f:
            json.dump(res, f, indent=2, sort_keys=True)
        print(f"   {len(res['metrics'])} metrics -> {out_path} "
              f"(exit {res['exit_code']}, {res['wall_seconds']}s)")
        if res["exit_code"] != 0:
            failures.append(
                f"{fig}: exited {res['exit_code']} (sanity anchor failed?)\n"
                + "\n".join("      " + l for l in res["tail"]))

    if args.update_baseline:
        baseline = {}
        if os.path.exists(baseline_path):
            with open(baseline_path) as f:
                baseline = json.load(f)
        baseline[args.preset] = {
            fig: gated(res["metrics"]) for fig, res in results.items()
        }
        with open(baseline_path, "w") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated: {baseline_path}")

    if args.check:
        if not os.path.exists(baseline_path):
            failures.append(f"no baseline at {baseline_path} "
                            "(run with --update-baseline first)")
        else:
            with open(baseline_path) as f:
                baseline = json.load(f).get(args.preset, {})
            for fig, expected in baseline.items():
                got = results.get(fig, {}).get("metrics", {})
                for name, base_val in expected.items():
                    if name not in got:
                        failures.append(f"{fig}.{name}: metric missing")
                        continue
                    val = got[name]
                    denom = max(abs(base_val), 1e-12)
                    rel = abs(val - base_val) / denom
                    if rel > TOLERANCE:
                        failures.append(
                            f"{fig}.{name}: {val:.6g} vs baseline "
                            f"{base_val:.6g} ({rel * 100:.1f}% > "
                            f"{TOLERANCE * 100:.0f}%)")
            print("regression check: %d metrics compared"
                  % sum(len(v) for v in baseline.values()))

    if failures:
        print("\nFAILURES:")
        for f in failures:
            print(" - " + f)
        return 1
    print("bench report OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
