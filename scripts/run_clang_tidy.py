#!/usr/bin/env python3
"""Runs clang-tidy over the repo's translation units in parallel.

Drives the .clang-tidy configuration (bugprone/concurrency/performance
families; see docs/ANALYSIS.md) against a compile_commands.json build
database, which CMake emits when configured with
`-DCMAKE_EXPORT_COMPILE_COMMANDS=ON` (on by default in this repo's
CMakeLists). Typical use:

    cmake -S . -B build            # writes build/compile_commands.json
    python3 scripts/run_clang_tidy.py --build-dir build

Only first-party sources are checked (src/ by default; --also-tests
adds tests/ and bench/). Findings are compiler-style diagnostics;
WarningsAsErrors in .clang-tidy makes any finding fail the run, so CI
can gate on the exit status alone. Exit: 0 clean, 1 findings, 2 setup
problems (no binary, no database) — unless --allow-missing turns the
setup problems into a skip for machines without clang-tidy installed.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import shutil
import subprocess
import sys

CANDIDATE_BINARIES = (
    "clang-tidy",
    "clang-tidy-20", "clang-tidy-19", "clang-tidy-18", "clang-tidy-17",
    "clang-tidy-16", "clang-tidy-15", "clang-tidy-14",
)


def find_clang_tidy(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in CANDIDATE_BINARIES:
        if shutil.which(name):
            return name
    return None


def first_party_sources(build_dir: str, roots: list[str]) -> list[str]:
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        return []
    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)
    abs_roots = [os.path.abspath(r) + os.sep for r in roots]
    files = sorted({os.path.abspath(entry["file"]) for entry in db})
    return [f for f in files
            if any(f.startswith(root) for root in abs_roots)]


def run_one(args) -> tuple[str, int, str]:
    binary, build_dir, path = args
    proc = subprocess.run(
        [binary, "-p", build_dir, "--quiet", path],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return path, proc.returncode, proc.stdout


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="build tree holding compile_commands.json")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: first of "
                             "clang-tidy, clang-tidy-20..14 on PATH)")
    parser.add_argument("--jobs", type=int,
                        default=multiprocessing.cpu_count(),
                        help="parallel clang-tidy processes")
    parser.add_argument("--also-tests", action="store_true",
                        help="also check tests/ and bench/ sources")
    parser.add_argument("--allow-missing", action="store_true",
                        help="exit 0 (skip) when clang-tidy or the "
                             "compile database is absent — for local "
                             "machines without LLVM installed")
    args = parser.parse_args(argv)

    binary = find_clang_tidy(args.clang_tidy)
    if not binary:
        msg = "run_clang_tidy: no clang-tidy binary on PATH"
        if args.allow_missing:
            print(f"{msg}; skipping (--allow-missing)")
            return 0
        print(msg, file=sys.stderr)
        return 2

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    roots = [os.path.join(repo, "src")]
    if args.also_tests:
        roots += [os.path.join(repo, "tests"), os.path.join(repo, "bench")]
    files = first_party_sources(args.build_dir, roots)
    if not files:
        msg = (f"run_clang_tidy: no first-party sources in "
               f"{args.build_dir}/compile_commands.json (configure with "
               f"-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
        if args.allow_missing:
            print(f"{msg}; skipping (--allow-missing)")
            return 0
        print(msg, file=sys.stderr)
        return 2

    print(f"run_clang_tidy: {binary}, {len(files)} files, "
          f"{args.jobs} jobs")
    failures = 0
    with multiprocessing.Pool(args.jobs) as pool:
        work = [(binary, args.build_dir, f) for f in files]
        for path, code, output in pool.imap_unordered(run_one, work):
            if code != 0 or output.strip():
                failures += 1
                rel = os.path.relpath(path, repo)
                sys.stdout.write(f"--- {rel}\n{output}\n")
    if failures:
        print(f"run_clang_tidy: findings in {failures} file(s)",
              file=sys.stderr)
        return 1
    print(f"run_clang_tidy: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
