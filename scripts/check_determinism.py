#!/usr/bin/env python3
"""Determinism lint for the modeled-statistics contract.

The repo's serving contract (docs/SERVING.md, ROADMAP.md) is that every
modeled statistic is bit-reproducible: a function of the submitted
(input, arrival, priority) stream and the configuration — never of wall
time, thread timing, worker count, or memory layout. This lint scans the
directories where that contract lives (src/serve, src/core, src/engines
by default) for constructs that historically smuggle nondeterminism in:

  wall-clock      reads of std::chrono::{system,steady,high_resolution}
                  _clock, gettimeofday, clock(), time() — legitimate
                  only in observability seams that never feed a modeled
                  statistic.
  random          std::rand/srand and std::random_device — unseeded
                  randomness. (Deterministically seeded engines such as
                  std::mt19937 with a fixed seed are fine and not
                  flagged.)
  unordered-iter  iteration over a std::unordered_map/unordered_set
                  declared in the same file or its sibling header.
                  Iteration order is libstdc++-load-factor dependent;
                  feeding it into stats, routing, or any ordered output
                  is the classic "works until the hash table grows" bug.
  thread-id       std::this_thread::get_id / std::thread::id — thread
                  identity is scheduling-dependent.
  pointer-key     std::map/std::set ordered on a pointer key, or
                  std::hash over a pointer — ASLR-dependent ordering.

A finding is suppressed with an inline directive carrying a mandatory
reason, on the offending line or in the contiguous comment block
immediately above it:

    // det-lint: allow(wall-clock): host-side observability seam, never
    // feeds a modeled statistic.

An empty reason is itself an error: the reason is the reviewable
artifact. Exit status: 0 clean, 1 findings or bad suppressions, 2 usage
error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

DEFAULT_DIRS = ("src/serve", "src/core", "src/engines")
EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")

RULES = {
    "wall-clock": "wall-clock read outside an allowlisted measurement seam",
    "random": "unseeded randomness",
    "unordered-iter": "iteration over an unordered container",
    "thread-id": "scheduling-dependent thread identity",
    "pointer-key": "pointer-keyed ordering (ASLR-dependent)",
}

# Simple per-line patterns: (rule, regex, message).
LINE_PATTERNS = [
    ("wall-clock", re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b"),
     "std::chrono clock read"),
    ("wall-clock", re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    ("wall-clock", re.compile(r"(?<![\w:])clock\s*\(\s*\)"), "clock()"),
    ("wall-clock", re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time()"),
    ("random", re.compile(r"\bstd\s*::\s*rand\b|(?<![\w:])rand\s*\(\s*\)"),
     "std::rand"),
    ("random", re.compile(r"(?<![\w:])srand\s*\("), "srand()"),
    ("random", re.compile(r"\brandom_device\b"), "std::random_device"),
    ("thread-id", re.compile(r"\bthis_thread\s*::\s*get_id\b"),
     "std::this_thread::get_id()"),
    ("thread-id", re.compile(r"\bstd\s*::\s*thread\s*::\s*id\b"),
     "std::thread::id"),
    ("pointer-key", re.compile(r"\bstd\s*::\s*(?:map|set)\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?(?:\s+const)?\s*\*"),
     "std::map/std::set with a pointer key"),
    ("pointer-key", re.compile(r"\bstd\s*::\s*hash\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?(?:\s+const)?\s*\*\s*>"),
     "std::hash over a pointer"),
]

SUPPRESS_RE = re.compile(r"det-lint:\s*allow\(([a-z-]+)\)\s*:?\s*(.*)")
COMMENT_LINE_RE = re.compile(r"^\s*(?://|/\*|\*)")

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _identifier_after_template(text: str, open_angle: int) -> str | None:
    """Given the index of '<' of a container declaration, balance angle
    brackets and return the declared identifier that follows, if any."""
    depth = 0
    i = open_angle
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                break
        i += 1
    else:
        return None
    rest = text[i + 1:]
    m = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*(?:TS_GUARDED_BY\s*\([^)]*\)\s*)?[;={(\[]",
                 re.sub(r"\s+", " ", rest[:200]))
    if not m:
        return None
    name = m.group(1)
    # `TS_GUARDED_BY` between name and terminator is handled above; a
    # match on a keyword (e.g. `unordered_map<...> const`) is not a name.
    if name in ("const", "final", "override", "TS_GUARDED_BY"):
        return None
    return name


def gather_unordered_names(text: str) -> set[str]:
    """Identifiers declared (member or local) as unordered containers."""
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        name = _identifier_after_template(text, m.end() - 1)
        if name:
            names.add(name)
    return names


def _unordered_iteration_findings(path: str, lines: list[str],
                                  names: set[str]) -> list[Finding]:
    out: list[Finding] = []
    if not names:
        return out
    alt = "|".join(re.escape(n) for n in sorted(names))
    # Range-for over the container, or an explicit iterator walk.
    range_for = re.compile(r"for\s*\([^;()]*:\s*(?:\w+(?:\.|->))?(" + alt + r")\s*\)")
    begin = re.compile(r"\b(" + alt + r")\s*\.\s*c?begin\s*\(")
    for idx, line in enumerate(lines):
        m = range_for.search(line) or begin.search(line)
        if m:
            out.append(Finding(path, idx + 1, "unordered-iter",
                               f"iteration over unordered container "
                               f"'{m.group(1)}' (order is load-factor "
                               f"dependent)"))
    return out


def _suppression_for(lines: list[str], idx: int, rule: str):
    """Finds a det-lint directive covering line `idx` (0-based) for
    `rule`: on the line itself, or in the contiguous comment block
    immediately above. Returns (found, reason)."""
    m = SUPPRESS_RE.search(lines[idx])
    if m and m.group(1) == rule:
        return True, m.group(2).strip()
    j = idx - 1
    while j >= 0 and COMMENT_LINE_RE.match(lines[j]):
        m = SUPPRESS_RE.search(lines[j])
        if m:
            if m.group(1) == rule:
                return True, m.group(2).strip()
            # A directive for a different rule does not end the block:
            # one line may need two suppressions.
        j -= 1
    return False, ""


def lint_text(path: str, text: str, sibling_text: str = "") -> list[Finding]:
    """Pure lint core (unit-testable): returns unsuppressed findings and
    suppression-without-reason errors for one file's contents.
    `sibling_text` is the paired header/source used only to resolve
    unordered-container member declarations."""
    lines = text.splitlines()
    raw: list[Finding] = []
    for idx, line in enumerate(lines):
        # The directive itself names its rule; don't self-flag comments.
        stripped = line.strip()
        if stripped.startswith("//") or stripped.startswith("*"):
            continue
        code = line.split("//", 1)[0]
        for rule, pattern, message in LINE_PATTERNS:
            if pattern.search(code):
                raw.append(Finding(path, idx + 1, rule, message))
    names = gather_unordered_names(text) | gather_unordered_names(sibling_text)
    raw.extend(_unordered_iteration_findings(path, lines, names))

    out: list[Finding] = []
    for f in raw:
        found, reason = _suppression_for(lines, f.line - 1, f.rule)
        if not found:
            out.append(f)
        elif not reason:
            out.append(Finding(f.path, f.line, f.rule,
                               f"suppressed without a reason — "
                               f"'det-lint: allow({f.rule}): <why>' "
                               f"requires a non-empty explanation"))
    return out


def sibling_of(path: str) -> str:
    root, ext = os.path.splitext(path)
    pair = {".cpp": ".hpp", ".cc": ".h", ".hpp": ".cpp", ".h": ".cc"}
    other = root + pair.get(ext, "")
    if other != path and os.path.isfile(other):
        with open(other, encoding="utf-8") as f:
            return f.read()
    return ""


def lint_file(path: str) -> list[Finding]:
    with open(path, encoding="utf-8") as f:
        text = f.read()
    return lint_text(path, text, sibling_of(path))


def collect_files(root: str, dirs) -> list[str]:
    files: list[str] = []
    for d in dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            print(f"check_determinism: no such directory: {base}",
                  file=sys.stderr)
            sys.exit(2)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("dirs", nargs="*", default=list(DEFAULT_DIRS),
                        help="directories to scan, relative to --root "
                             f"(default: {' '.join(DEFAULT_DIRS)})")
    parser.add_argument("--root",
                        default=os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))),
                        help="repository root (default: script's parent)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule set and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:15} {desc}")
        return 0

    findings: list[Finding] = []
    files = collect_files(args.root, args.dirs)
    for path in files:
        findings.extend(lint_file(path))

    for f in findings:
        print(f.render())
    if findings:
        print(f"check_determinism: {len(findings)} finding(s) in "
              f"{len(files)} file(s). Fix, or suppress with "
              f"'// det-lint: allow(<rule>): <why>'.", file=sys.stderr)
        return 1
    print(f"check_determinism: {len(files)} files clean "
          f"({', '.join(args.dirs)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
