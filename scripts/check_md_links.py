#!/usr/bin/env python3
"""Fail on broken relative links in the repo's Markdown files.

Scans every tracked *.md (skipping build directories), extracts inline
links/images and reference-style link definitions, and verifies that
each relative target resolves to an existing file or directory.
External schemes (http/https/mailto) and pure in-page anchors (#...)
are skipped; a #fragment suffix on a relative link is stripped before
the existence check. Stdlib only; exits non-zero listing every broken
link so CI can gate on it.
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {".git", "build", "build-rel", "node_modules", ".claude"}

# Inline [text](target) and ![alt](target); reference [name]: target.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)


def markdown_files():
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    text = FENCE.sub("", text)  # links inside code fences are examples
    broken = []
    targets = INLINE_LINK.findall(text) + REF_DEF.findall(text)
    for target in targets:
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):  # scheme
            continue
        if target.startswith("#"):  # in-page anchor
            continue
        resolved = target.split("#", 1)[0]
        if not resolved:
            continue
        if resolved.startswith("/"):
            broken.append((target, "absolute path; use a relative link"))
            continue
        candidate = os.path.normpath(
            os.path.join(os.path.dirname(path), resolved))
        if not os.path.exists(candidate):
            broken.append((target, "target does not exist"))
    return broken


def main():
    failures = 0
    checked = 0
    for path in sorted(markdown_files()):
        rel = os.path.relpath(path, REPO_ROOT)
        checked += 1
        for target, reason in check_file(path):
            print(f"BROKEN {rel}: ({target}) — {reason}")
            failures += 1
    print(f"checked {checked} markdown file(s): "
          f"{failures} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
