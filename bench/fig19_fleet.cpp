// Figure 19 (repo extension): heterogeneous device fleets — device mix
// x routing policy x arrival rate on a streaming MinkUNet serve over
// the discrete-event scheduler core.
//
// The paper evaluates on three GPU generations (1080Ti / 2080Ti /
// 3090); this sweep serves one stream on modeled fleets that mix those
// tiers in a single DeviceGroup. Requests are measured once on the
// reference device (fleet.front()); heterogeneity enters the schedule
// only through estimate_aware's per-tier service scaling, so the
// comparison against tier-blind least_loaded isolates exactly what
// knowing the fleet's specs is worth. Sanity anchors pin the contract:
//   F1  fleet {2080ti x N} is bit-identical to the legacy
//       with_device + with_devices deployment (N = 1 and 2)
//   F2  mixed fleets under estimate_aware strictly beat least_loaded's
//       modeled makespan at overload (both 2- and 3-tier mixes)
//   F3  modeled stats identical for 1 vs 4 workers per device, on
//       every fleet mix (routing never reads lane state)
//   F4  a 256-device fleet schedules a 2048-request stream under the
//       sanity wall bound (the discrete-event core is O(log lanes))
//   F5  estimate_aware on a homogeneous fleet is bit-identical to
//       least_loaded (every scale factor is exactly 1)
//   F6  mixes sharing the reference tier agree on aggregate modeled
//       compute under tier-blind routing (measurement is decoupled
//       from placement; only the reference spec and the cache outcome
//       shape the aggregate timeline)
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "serve/batch_runner.hpp"
#include "serve/device_group.hpp"
#include "serve/server.hpp"

using namespace ts;

namespace {

struct Cell {
  double mapping_ms = 0;
  double total_ms = 0;
  double hit_rate = 0;
  double fps = 0;
  double makespan_ms = 0;
  double wall_ms = 0;
  serve::StreamReport report;
};

Cell run_fleet(const Workload& w, const std::vector<SparseTensor>& stream,
               const std::vector<serve::FleetTier>& tiers,
               serve::RoutePolicy policy, int workers, std::size_t budget,
               double arrival_gap) {
  serve::ServerConfig cfg;
  cfg.with_engine(torchsparse_config())
      .with_workers(workers)
      .with_fleet(tiers)
      .with_route(policy)
      .with_batch_overhead(0.0005)
      .with_map_cache_bytes(budget)
      .with_queue_depth(stream.size() + 1);
  cfg.batcher.policy = serve::BatchPolicy::kImmediate;
  const bench::WallTimer wall;
  serve::Server server(cfg);
  server.start(w.model);
  for (std::size_t i = 0; i < stream.size(); ++i)
    server.submit(stream[i], arrival_gap * static_cast<double>(i));
  Cell c;
  c.report = server.drain();
  c.mapping_ms =
      c.report.stats.aggregate.stage_seconds(Stage::kMapping) * 1e3;
  c.total_ms = c.report.stats.aggregate.total_seconds() * 1e3;
  c.hit_rate = c.report.stats.map_cache.hit_rate();
  c.fps = c.report.stats.throughput_fps;
  c.makespan_ms = c.report.stats.makespan_seconds * 1e3;
  c.wall_ms = wall.seconds() * 1e3;
  return c;
}

/// The deployment fig17 benchmarks: single spec + device count, no
/// fleet vector. F1 pins the fleet path bit-identical to this.
Cell run_legacy(const Workload& w, const std::vector<SparseTensor>& stream,
                int devices, serve::RoutePolicy policy, int workers,
                std::size_t budget, double arrival_gap) {
  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti())
      .with_engine(torchsparse_config())
      .with_workers(workers)
      .with_devices(devices)
      .with_route(policy)
      .with_batch_overhead(0.0005)
      .with_map_cache_bytes(budget)
      .with_queue_depth(stream.size() + 1);
  cfg.batcher.policy = serve::BatchPolicy::kImmediate;
  const bench::WallTimer wall;
  serve::Server server(cfg);
  server.start(w.model);
  for (std::size_t i = 0; i < stream.size(); ++i)
    server.submit(stream[i], arrival_gap * static_cast<double>(i));
  Cell c;
  c.report = server.drain();
  c.mapping_ms =
      c.report.stats.aggregate.stage_seconds(Stage::kMapping) * 1e3;
  c.total_ms = c.report.stats.aggregate.total_seconds() * 1e3;
  c.hit_rate = c.report.stats.map_cache.hit_rate();
  c.fps = c.report.stats.throughput_fps;
  c.makespan_ms = c.report.stats.makespan_seconds * 1e3;
  c.wall_ms = wall.seconds() * 1e3;
  return c;
}

bool close_rel(double a, double b, double rel) {
  return std::abs(a - b) <= rel * std::max(std::abs(a), std::abs(b));
}

bool bit_equal_cell(const Cell& a, const Cell& b) {
  return close_rel(a.mapping_ms, b.mapping_ms, 1e-12) &&
         close_rel(a.total_ms, b.total_ms, 1e-12) &&
         a.hit_rate == b.hit_rate && close_rel(a.fps, b.fps, 1e-12) &&
         close_rel(a.makespan_ms, b.makespan_ms, 1e-12);
}

/// The worker-invariant slice: accounting stats (aggregate compute,
/// cache outcome, per-device routing/busy), not placement stats.
bool accounting_equal_cell(const Cell& a, const Cell& b) {
  if (!(close_rel(a.mapping_ms, b.mapping_ms, 1e-12) &&
        close_rel(a.total_ms, b.total_ms, 1e-12) &&
        a.hit_rate == b.hit_rate))
    return false;
  const auto& pa = a.report.stats.per_device;
  const auto& pb = b.report.stats.per_device;
  if (pa.size() != pb.size()) return false;
  for (std::size_t d = 0; d < pa.size(); ++d) {
    if (pa[d].batches != pb[d].batches || pa[d].name != pb[d].name ||
        !close_rel(pa[d].busy_seconds, pb[d].busy_seconds, 1e-12) ||
        pa[d].map_cache.hits != pb[d].map_cache.hits)
      return false;
  }
  return true;
}

/// F4: synthetic singleton-batch stream over a 256-device mixed fleet,
/// scheduled directly through the discrete-event core (no measurement
/// pool — this times pure placement at fleet scale).
double schedule_256(int* devices_out) {
  const std::vector<DeviceSpec> fleet = serve::expand_fleet(
      {{gtx1080ti(), 86}, {rtx2080ti(), 85}, {rtx3090(), 85}});
  *devices_out = static_cast<int>(fleet.size());
  const std::size_t n = 2048;
  std::vector<serve::StreamResult> requests(n);
  std::vector<serve::PlannedBatch> plan;
  for (std::size_t i = 0; i < n; ++i) {
    serve::StreamResult& r = requests[i];
    r.id = i;
    r.arrival_seconds = 1e-4 * static_cast<double>(i);
    r.timeline.add(Stage::kMatMul, 1e-3 * static_cast<double>(i % 7 + 1));
    r.timeline.add(Stage::kMapping, 5e-4 * static_cast<double>(i % 3 + 1));
    r.service_seconds = r.timeline.total_seconds();
    plan.push_back({i, 1, r.arrival_seconds});
  }
  serve::DeviceGroup group(fleet, 0);
  const bench::WallTimer wall;
  serve::schedule_stream_sharded(requests, plan, group,
                                 serve::RoutePolicy::kEstimateAware,
                                 /*workers_per_device=*/2, 0.0005, nullptr);
  return wall.seconds() * 1e3;
}

}  // namespace

int main() {
  bench::header(
      "Figure 19: heterogeneous device fleets",
      "repo extension — fleet mix x routing policy x arrival rate on "
      "streaming MinkUNet serve over the discrete-event scheduler");
  bench::note(
      "mapping/total/hit-rate/fps/makespan are modeled and deterministic "
      "(requests measured on the reference tier, placed with per-tier "
      "estimates); wall ms is host time");

  const uint64_t seed = 20260808;
  const double scale = bench::env_scale(0.35);
  Workload w = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                      0.5, 1, seed, scale,
                                      /*tune_sample_count=*/1);

  LidarSpec lidar = semantic_kitti_spec();
  lidar.azimuth_steps =
      std::max(32, static_cast<int>(lidar.azimuth_steps * scale));
  const int requests = 16;
  // 50%-duplicate stream, duplicates adjacent — warm enough that
  // cache_affinity has a signal, varied enough that routing matters.
  std::vector<SparseTensor> unique_scans;
  for (int i = 0; i < requests / 2; ++i)
    unique_scans.push_back(make_input(lidar, segmentation_voxels(),
                                      seed + 7 + static_cast<uint64_t>(i)));
  std::vector<SparseTensor> stream;
  for (int i = 0; i < requests; ++i)
    stream.push_back(unique_scans[static_cast<std::size_t>(i / 2)]);
  std::printf("stream: %d requests (50%% duplicates), ~%zu voxels each\n",
              requests, stream[0].num_points());

  const std::size_t kBudget = std::size_t(256) << 20;  // per device
  struct Mix {
    const char* name;
    std::vector<serve::FleetTier> tiers;
  };
  const Mix mixes[] = {
      {"2080ti x2", {{rtx2080ti(), 2}}},
      {"1080ti+3090", {{gtx1080ti(), 1}, {rtx3090(), 1}}},
      {"1080ti+2080ti+3090",
       {{gtx1080ti(), 1}, {rtx2080ti(), 1}, {rtx3090(), 1}}},
  };
  const serve::RoutePolicy policies[] = {serve::RoutePolicy::kLeastLoaded,
                                         serve::RoutePolicy::kCacheAffinity,
                                         serve::RoutePolicy::kEstimateAware};
  // 0.5 ms gaps overload every mix (multi-ms services); 4 ms gaps are
  // the near-keep-up regime where routing has slack to hide in.
  const double gaps[] = {0.0005, 0.004};

  std::printf("\n%-19s %-15s %6s %9s %9s %8s %9s %8s\n", "fleet", "policy",
              "gap ms", "total ms", "hit rate", "fps", "mkspn ms",
              "wall ms");
  Cell cells[3][3][2];  // [mix][policy][gap]
  for (std::size_t mi = 0; mi < 3; ++mi) {
    for (std::size_t pi = 0; pi < 3; ++pi) {
      for (std::size_t gi = 0; gi < 2; ++gi) {
        const Cell c = run_fleet(w, stream, mixes[mi].tiers, policies[pi],
                                 /*workers=*/2, kBudget, gaps[gi]);
        cells[mi][pi][gi] = c;
        std::printf("%-19s %-15s %6.1f %9.3f %9.2f %8.1f %9.2f %8.1f\n",
                    mixes[mi].name, to_string(policies[pi]), gaps[gi] * 1e3,
                    c.total_ms, c.hit_rate, c.fps, c.makespan_ms, c.wall_ms);
      }
    }
  }

  const std::size_t LL = 0, AFF = 1, EST = 2;  // policy indexes
  // Per-tier placement of the showcase cell: 3-tier fleet,
  // estimate_aware, overload.
  std::printf("\nper-tier placement (1080ti+2080ti+3090, estimate_aware, "
              "0.5 ms gaps):\n");
  std::printf("%-4s %-22s %8s %9s %9s %5s\n", "dev", "tier", "batches",
              "busy ms", "hit rate", "util");
  for (const serve::DeviceShardStats& d :
       cells[2][EST][0].report.stats.per_device)
    std::printf("%-4d %-22s %8zu %9.2f %9.2f %5.2f\n", d.device,
                d.name.c_str(), d.batches, d.busy_seconds * 1e3,
                d.map_cache.hit_rate(), d.utilization);

  // F1 cells: legacy single-spec deployments vs single-tier fleets.
  const Cell legacy1 = run_legacy(w, stream, 1, policies[LL], 2, kBudget,
                                  gaps[0]);
  const Cell fleet1 = run_fleet(w, stream, {{rtx2080ti(), 1}}, policies[LL],
                                2, kBudget, gaps[0]);
  const Cell legacy2 = run_legacy(w, stream, 2, policies[LL], 2, kBudget,
                                  gaps[0]);

  // F3 cells: worker invariance per mix (estimate_aware, overload).
  Cell w1[3], w4[3];
  for (std::size_t mi = 0; mi < 3; ++mi) {
    w1[mi] = run_fleet(w, stream, mixes[mi].tiers, policies[EST], 1, kBudget,
                       gaps[0]);
    w4[mi] = run_fleet(w, stream, mixes[mi].tiers, policies[EST], 4, kBudget,
                       gaps[0]);
  }

  // F4 cell: 256-device placement pass.
  int big_devices = 0;
  const double big_wall_ms = schedule_256(&big_devices);
  const double kBigWallBoundMs = 2000.0;
  std::printf("\n256-device pass: %d devices, 2048 requests scheduled in "
              "%.2f ms (bound %.0f ms)\n",
              big_devices, big_wall_ms, kBigWallBoundMs);

  bench::metric("fig19.n1_total_ms", fleet1.total_ms);
  bench::metric("fig19.homog_ll_makespan_ms", cells[0][LL][0].makespan_ms);
  bench::metric("fig19.mixed2_ll_makespan_ms", cells[1][LL][0].makespan_ms);
  bench::metric("fig19.mixed2_est_makespan_ms",
                cells[1][EST][0].makespan_ms);
  bench::metric("fig19.mixed3_est_makespan_ms",
                cells[2][EST][0].makespan_ms);
  bench::metric("fig19.mixed3_est_speedup_x",
                cells[2][LL][0].makespan_ms / cells[2][EST][0].makespan_ms);
  bench::metric("fig19.mixed2_est_hit_rate", cells[1][EST][0].hit_rate);
  bench::metric("wall_fig19.mixed3_est_ms", cells[2][EST][0].wall_ms);
  bench::metric("wall_fig19.n256_schedule_ms", big_wall_ms);

  std::printf("\n--- sanity anchors ---\n");
  bool ok = true;
  auto anchor = [&](const char* name, bool pass) {
    std::printf("%-66s %s\n", name, pass ? "OK" : "FAIL");
    ok = ok && pass;
  };
  anchor("F1: single-tier fleet bit-equal to legacy deployment (N=1, 2)",
         bit_equal_cell(fleet1, legacy1) &&
             bit_equal_cell(cells[0][LL][0], legacy2));
  anchor("F2: mixed fleets: estimate_aware < least_loaded makespan",
         cells[1][EST][0].makespan_ms < cells[1][LL][0].makespan_ms &&
             cells[2][EST][0].makespan_ms < cells[2][LL][0].makespan_ms);
  bool f3 = true;
  for (std::size_t mi = 0; mi < 3; ++mi)
    f3 = f3 && accounting_equal_cell(w1[mi], w4[mi]);
  anchor("F3: modeled stats worker-invariant (w1 == w4, every mix)", f3);
  anchor("F4: 256-device schedule under sanity wall bound",
         big_wall_ms < kBigWallBoundMs);
  anchor("F5: homogeneous fleet: estimate_aware bit-equal least_loaded",
         bit_equal_cell(cells[0][EST][0], cells[0][LL][0]) &&
             bit_equal_cell(cells[0][EST][1], cells[0][LL][1]));
  // Mixes 1 and 2 both measure on the 1080Ti reference; under
  // tier-blind least_loaded their cache outcomes also match, so the
  // aggregate timeline must be identical even though the fleets differ.
  bool f6 = true;
  for (std::size_t gi = 0; gi < 2; ++gi)
    f6 = f6 &&
         close_rel(cells[1][LL][gi].total_ms, cells[2][LL][gi].total_ms,
                   1e-12) &&
         close_rel(cells[1][LL][gi].mapping_ms, cells[2][LL][gi].mapping_ms,
                   1e-12) &&
         cells[1][LL][gi].hit_rate == cells[2][LL][gi].hit_rate;
  anchor("F6: same-reference mixes agree on aggregate modeled compute", f6);
  return ok ? 0 : 1;
}
