// Figure 21 (repo extension): fault-tolerant serving — deterministic
// device faults injected into a streaming MinkUNet serve, with
// retry/redispatch, health-aware routing, graceful degradation, and
// snapshot-warm replacement shards.
//
// The scenario is the availability story the warm-start machinery
// (fig20) was built for: a two-shard fleet loses shard 0 to a crash
// mid-stream and a replacement arrives a fixed modeled interval later.
// The sweep measures the fault-free baseline, the crash with a cold
// replacement, the crash with a snapshot-warm replacement, and the
// crash under per-class degrade deadlines with mixed-priority traffic.
// Sanity anchors (nonzero exit on failure):
//   A1  a non-triggering FaultPlan is bit-equal to no plan at all (the
//       fault-tolerant scheduler with nothing to do is the fault-free
//       scheduler)
//   A2  the crash scenario replays bit-identically run-to-run
//   A3  snapshot-warm replacement serves with zero cold builds (hit
//       rate 1.0) while the cold replacement re-pays map builds on top
//       of the fault-free ramp
//   A4  under degrade deadlines the high class completes in full with
//       p99 held within the SLO bound while the low class sheds
//   A5  every fault-relevant modeled stat is worker-invariant (w1==w4)
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "bench/bench_util.hpp"
#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "io/serialize.hpp"
#include "serve/fault.hpp"
#include "serve/server.hpp"

using namespace ts;

namespace {

constexpr double kSpacing = 0.0002;      // modeled arrival gap
constexpr long long kCrashDispatch = 4;  // shard 0 dies as batch 4 goes out
constexpr double kReplaceAfter = 0.0025; // replacement lead time

struct Cell {
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t retries = 0;
  std::size_t redispatched = 0;
  std::size_t faults = 0;
  double retry_wait_p99_ms = 0;
  double e2e_p99_ms = 0;
  double high_p99_ms = 0;
  std::size_t high_failed = 0;
  std::size_t low_failed = 0;
  double mapping_ms = 0;
  double total_ms = 0;
  double hit_rate = 0;
  std::size_t misses = 0;
  double wall_ms = 0;
};

Cell run_cell(const Workload& w, const std::vector<SparseTensor>& stream,
              serve::ServerConfig cfg, bool mixed_classes = false) {
  cfg.with_queue_depth(stream.size() + 1);
  cfg.run.borrow_input = true;  // queue owns the stream copies
  serve::Server server(std::move(cfg));
  const bench::WallTimer wall;
  server.start(w.model);
  for (std::size_t i = 0; i < stream.size(); ++i)
    server.submit(stream[i], kSpacing * static_cast<double>(i),
                  mixed_classes ? (i % 2 ? serve::Priority::kLow
                                         : serve::Priority::kHigh)
                                : serve::Priority::kNormal);
  const serve::StreamReport rep = server.drain();
  Cell c;
  c.completed = rep.stats.completed;
  c.failed = rep.stats.failed;
  c.retries = rep.stats.retries;
  c.redispatched = rep.stats.redispatched_batches;
  c.faults = rep.stats.faults_injected;
  c.retry_wait_p99_ms = rep.stats.retry_wait_p99_seconds * 1e3;
  c.e2e_p99_ms = rep.stats.e2e_p99_seconds * 1e3;
  const auto& high =
      rep.stats.per_class[static_cast<int>(serve::Priority::kHigh)];
  const auto& low =
      rep.stats.per_class[static_cast<int>(serve::Priority::kLow)];
  c.high_p99_ms = high.e2e_p99_seconds * 1e3;
  c.high_failed = high.failed;
  c.low_failed = low.failed;
  c.mapping_ms = rep.stats.aggregate.stage_seconds(Stage::kMapping) * 1e3;
  c.total_ms = rep.stats.aggregate.total_seconds() * 1e3;
  c.hit_rate = rep.stats.map_cache.hit_rate();
  c.misses = rep.stats.map_cache.misses;
  c.wall_ms = wall.seconds() * 1e3;
  return c;
}

bool close_rel(double a, double b, double rel) {
  return std::abs(a - b) <= rel * std::max(std::abs(a), std::abs(b));
}

/// The worker-invariant subset: fault decisions, retries, cache
/// accounting, and the shadow-clock retry penalty. Latency percentiles
/// are deliberately excluded — they ride on real lane counts.
/// faults_injected is excluded too (a plan whose fault lands after the
/// stream still activates during the end-of-stream drain without
/// touching the schedule).
bool same_fault_accounting(const Cell& a, const Cell& b) {
  return a.completed == b.completed && a.failed == b.failed &&
         a.retries == b.retries && a.redispatched == b.redispatched &&
         a.misses == b.misses &&
         close_rel(a.retry_wait_p99_ms, b.retry_wait_p99_ms, 1e-12) &&
         close_rel(a.mapping_ms, b.mapping_ms, 1e-12) &&
         close_rel(a.total_ms, b.total_ms, 1e-12);
}

/// Full bit-equality (same worker count): accounting plus latency.
bool same_modeled(const Cell& a, const Cell& b) {
  return same_fault_accounting(a, b) &&
         close_rel(a.e2e_p99_ms, b.e2e_p99_ms, 1e-12);
}

}  // namespace

int main() {
  bench::header(
      "Figure 21: fault-tolerant serving",
      "repo extension — deterministic crash/replace faults on a streaming "
      "MinkUNet serve with retries, degradation, and warm replacements");
  bench::note(
      "modeled columns are deterministic (fault decisions run on the "
      "worker-invariant shadow clock); wall ms is host time");

  const uint64_t seed = 20260808;
  const double scale = bench::env_scale(0.35);
  Workload w = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                      0.5, 1, seed, scale,
                                      /*tune_sample_count=*/1);

  LidarSpec lidar = semantic_kitti_spec();
  lidar.azimuth_steps =
      std::max(32, static_cast<int>(lidar.azimuth_steps * scale));
  const int requests = 24;
  const int n_unique = 8;
  std::vector<SparseTensor> unique_scans;
  for (int i = 0; i < n_unique; ++i)
    unique_scans.push_back(make_input(lidar, segmentation_voxels(),
                                      seed + 7 + static_cast<uint64_t>(i)));
  std::vector<SparseTensor> stream;
  for (int i = 0; i < requests; ++i)
    stream.push_back(unique_scans[static_cast<std::size_t>(i % n_unique)]);
  std::printf("stream: %d requests over %d unique scans, ~%zu voxels each\n",
              requests, n_unique, unique_scans[0].num_points());

  const std::size_t kBudget = std::size_t(256) << 20;
  auto base_cfg = [&](int workers) {
    serve::ServerConfig cfg;
    cfg.with_device(rtx2080ti())
        .with_engine(torchsparse_config())
        .with_workers(workers)
        .with_devices(2)
        .with_route(serve::RoutePolicy::kLeastLoaded)
        .with_map_cache_bytes(kBudget);
    // Dispatch-on-arrival: the fault timeline below is phrased against
    // the arrival grid, so batches must not sit in a forming window.
    serve::BatcherOptions b;
    b.policy = serve::BatchPolicy::kImmediate;
    cfg.with_batcher(b);
    return cfg;
  };
  serve::DeviceFault crash{0, serve::FaultKind::kCrash};
  crash.at_dispatch = kCrashDispatch;
  crash.duration_seconds = kReplaceAfter;
  const serve::FaultPlan crash_plan{{crash}};

  // First life (fault-free) builds the full-coverage snapshot the warm
  // replacement re-seeds from — the fig20 restart hand-off, reused as
  // the fault-recovery hand-off.
  std::shared_ptr<const MapCacheSnapshot> snapshot;
  {
    serve::ServerConfig cfg = base_cfg(4);
    cfg.with_queue_depth(stream.size() + 1);
    cfg.run.borrow_input = true;
    serve::Server server(std::move(cfg));
    server.start(w.model);
    for (std::size_t i = 0; i < stream.size(); ++i)
      server.submit(stream[i], kSpacing * static_cast<double>(i));
    server.drain();
    std::stringstream image;
    server.map_cache()->save_snapshot(image);
    snapshot = std::make_shared<const MapCacheSnapshot>(
        io::load_map_cache(image));
  }

  // --- The sweep. -----------------------------------------------------
  const Cell baseline = run_cell(w, stream, base_cfg(4));
  // Non-triggering plan: lands eons after the stream; A1 pins that the
  // fault-tolerant scheduler with nothing to do is the fault-free one.
  serve::DeviceFault never{1, serve::FaultKind::kSlowdown, 1e6};
  never.duration_seconds = 1.0;
  never.slowdown_factor = 2.0;
  const Cell no_trigger = run_cell(
      w, stream, base_cfg(4).with_fault_plan(serve::FaultPlan{{never}}));
  const Cell cold_crash =
      run_cell(w, stream, base_cfg(4).with_fault_plan(crash_plan));
  const Cell cold_crash_replay =
      run_cell(w, stream, base_cfg(4).with_fault_plan(crash_plan));
  const Cell warm_crash = run_cell(w, stream,
                                   base_cfg(4)
                                       .with_fault_plan(crash_plan)
                                       .with_warm_snapshot(snapshot));
  const Cell warm_crash_w1 = run_cell(w, stream,
                                      base_cfg(1)
                                          .with_fault_plan(crash_plan)
                                          .with_warm_snapshot(snapshot));
  // Graceful degradation: mixed-priority traffic through the same crash
  // with a tight low-class deadline; surviving capacity goes to kHigh.
  serve::FaultToleranceOptions degrade;
  degrade.degrade_deadline_seconds[static_cast<int>(serve::Priority::kLow)] =
      0.004;
  const Cell degraded = run_cell(w, stream,
                                 base_cfg(4)
                                     .with_fault_plan(crash_plan)
                                     .with_fault_tolerance(degrade)
                                     .with_warm_snapshot(snapshot),
                                 /*mixed_classes=*/true);

  std::printf("\n%-24s %5s %5s %5s %6s %9s %9s %9s %8s\n", "scenario",
              "done", "fail", "retry", "redisp", "e2e p99", "map ms",
              "hit rate", "wall ms");
  auto row = [](const char* name, const Cell& c) {
    std::printf("%-24s %5zu %5zu %5zu %6zu %9.3f %9.3f %9.2f %8.1f\n", name,
                c.completed, c.failed, c.retries, c.redispatched,
                c.e2e_p99_ms, c.mapping_ms, c.hit_rate, c.wall_ms);
  };
  row("fault-free baseline", baseline);
  row("non-triggering plan", no_trigger);
  row("crash, cold replace", cold_crash);
  row("crash, warm replace", warm_crash);
  row("crash, warm, 1 worker", warm_crash_w1);
  row("crash + degrade (hi/lo)", degraded);
  std::printf("degrade split: high p99 %.3f ms, high failed %zu, "
              "low shed %zu\n",
              degraded.high_p99_ms, degraded.high_failed,
              degraded.low_failed);

  bench::metric("fig21.baseline_e2e_p99_ms", baseline.e2e_p99_ms);
  bench::metric("fig21.crash_retries", static_cast<double>(cold_crash.retries));
  bench::metric("fig21.crash_redispatched",
                static_cast<double>(cold_crash.redispatched));
  bench::metric("fig21.crash_retry_wait_p99_ms", cold_crash.retry_wait_p99_ms);
  bench::metric("fig21.cold_replace_misses",
                static_cast<double>(cold_crash.misses));
  bench::metric("fig21.warm_replace_misses",
                static_cast<double>(warm_crash.misses));
  bench::metric("fig21.warm_replace_hit_rate", warm_crash.hit_rate);
  bench::metric("fig21.warm_crash_e2e_p99_ms", warm_crash.e2e_p99_ms);
  bench::metric("fig21.degraded_high_p99_ms", degraded.high_p99_ms);
  bench::metric("fig21.degraded_low_shed",
                static_cast<double>(degraded.low_failed));
  bench::metric("wall_fig21.warm_crash_ms", warm_crash.wall_ms);
  bench::metric("wall_fig21.cold_crash_ms", cold_crash.wall_ms);

  std::printf("\n--- sanity anchors ---\n");
  bool ok = true;
  auto anchor = [&](const char* name, bool pass) {
    std::printf("%-58s %s\n", name, pass ? "OK" : "FAIL");
    ok = ok && pass;
  };
  anchor("A1: non-triggering plan bit-equal to no plan",
         same_modeled(baseline, no_trigger) && no_trigger.failed == 0 &&
             no_trigger.retries == 0);
  anchor("A2: crash kills in-flight work and replays bit-identically",
         same_modeled(cold_crash, cold_crash_replay) &&
             cold_crash.faults == 1 && cold_crash.retries >= 1 &&
             cold_crash.redispatched >= 1 &&
             cold_crash.completed == static_cast<std::size_t>(requests));
  anchor("A3: warm replacement 0 cold builds; cold re-pays the loss",
         warm_crash.misses == 0 && warm_crash.hit_rate == 1.0 &&
             cold_crash.misses > 0 &&
             warm_crash.mapping_ms < cold_crash.mapping_ms);
  // SLO bound: the outage + replacement lead time plus the fault-free
  // tail — the recovery latency a crash can legitimately add.
  anchor("A4: degrade holds high-class p99 within SLO, sheds low",
         degraded.high_failed == 0 && degraded.low_failed > 0 &&
             degraded.high_p99_ms <=
                 kReplaceAfter * 1e3 + 3.0 * baseline.e2e_p99_ms + 1.0);
  anchor("A5: fault-relevant modeled stats worker-invariant (w1==w4)",
         same_fault_accounting(warm_crash, warm_crash_w1));
  return ok ? 0 : 1;
}
