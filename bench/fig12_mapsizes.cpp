// Figure 12: kernel map size per weight index for the first sparse conv
// layer of MinkUNet on SemanticKITTI vs nuScenes.
//
// Paper reference: sizes span an order of magnitude; the center weight is
// by far the largest; nuScenes maps are much smaller than SemanticKITTI
// (hence its more aggressive grouping: 8 vs 10 groups in the paper's
// example).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "tune/group_tuner.hpp"

using namespace ts;

namespace {

const LayerRecord* first_submanifold(const std::vector<LayerRecord>& recs) {
  for (const LayerRecord& r : recs)
    if (r.submanifold && r.map_sizes.size() == 27) return &r;
  return nullptr;
}

void report(const char* dataset, const LayerRecord& layer,
            const CostModel& cost) {
  std::printf("\n%s first-layer map sizes per weight index:\n", dataset);
  std::size_t total = 0, min_sz = SIZE_MAX, max_sz = 0;
  for (int n = 0; n < 27; ++n) {
    const std::size_t s = layer.map_sizes[static_cast<std::size_t>(n)];
    std::printf("  W%-3d %8zu%s\n", n, s, n == 13 ? "   <- center" : "");
    total += s;
    if (s) min_sz = std::min(min_sz, s);
    max_sz = std::max(max_sz, s);
  }
  std::printf("  total %zu, min %zu, max %zu (max/min = %.1fx)\n", total,
              min_sz, max_sz,
              static_cast<double>(max_sz) / static_cast<double>(min_sz));

  // Show the tuned grouping this distribution induces (the paper's
  // "8 groups vs 10 groups" observation).
  const TuneResult tr = tune_groups({{layer}}, cost, Precision::kFP16);
  const auto groups = plan_groups(layer.map_sizes, true,
                                  GroupingStrategy::kAdaptive,
                                  tr.params.at(layer.layer_id));
  std::printf("  tuned adaptive grouping: %zu groups (epsilon=%.2f, "
              "S=%.0f)\n",
              groups.size(), tr.params.at(layer.layer_id).epsilon,
              tr.params.at(layer.layer_id).s_threshold);
}

}  // namespace

int main() {
  bench::header("Figure 12: kernel map size distributions",
                "paper Fig. 12 (MinkUNet on SemanticKITTI vs nuScenes)");
  const CostModel cost(rtx2080ti());

  Workload sk = make_minkunet_workload("SK-MinkUNet (1.0x)",
                                       "SemanticKITTI", 1.0, 1, 12001, 1.0,
                                       1);
  Workload ns = make_minkunet_workload("NS-MinkUNet (1f)", "nuScenes", 1.0,
                                       1, 12002, 1.0, 1);
  const auto sk_rec = record_workloads(sk.model, {sk.input}, rtx2080ti(),
                                       torchsparse_config());
  const auto ns_rec = record_workloads(ns.model, {ns.input}, rtx2080ti(),
                                       torchsparse_config());
  const LayerRecord* sk_layer = first_submanifold(sk_rec[0]);
  const LayerRecord* ns_layer = first_submanifold(ns_rec[0]);
  if (!sk_layer || !ns_layer) return 1;

  report("SemanticKITTI", *sk_layer, cost);
  report("nuScenes", *ns_layer, cost);

  std::size_t sk_total = 0, ns_total = 0;
  for (auto s : sk_layer->map_sizes) sk_total += s;
  for (auto s : ns_layer->map_sizes) ns_total += s;
  std::printf("\nSemanticKITTI/nuScenes total map-size ratio: %.1fx "
              "(paper: nuScenes maps are much smaller)\n",
              static_cast<double>(sk_total) /
                  static_cast<double>(ns_total));
  return 0;
}
