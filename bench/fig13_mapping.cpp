// Figure 13: speedup breakdown of the mapping optimizations on the
// 3-frame CenterPoint detector (Waymo): grid hashmap, fused downsample
// kernel, simplified control logic, and map symmetry.
//
// Paper reference (cumulative end-to-end mapping speedups):
//   + grid hashmap       1.6x
//   + fused kernel       1.5x   (output construction itself 2.1x)
//   + simplified control 1.8x
//   + symmetry           1.1x
//   total                ~4.6x
#include <cstdio>

#include "bench/bench_util.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"

using namespace ts;

namespace {

struct Step {
  const char* name;
  MapBackend backend;
  bool fused_downsample, simplified, symmetry;
  double paper_cumulative;  // vs previous step in the paper
};

}  // namespace

int main() {
  bench::header("Figure 13: mapping optimization breakdown",
                "paper Fig. 13 (CenterPoint-3f, Waymo)");

  const double scale = bench::env_scale(1.0);
  Workload w = make_centerpoint_workload("WM-CenterPoint (3f)", "Waymo", 3,
                                         13001, scale, 1);
  std::printf("input: %zu voxels (scale %.2f)\n", w.input.num_points(),
              scale);
  const DeviceSpec dev = rtx2080ti();

  const Step steps[] = {
      {"baseline (hashmap, staged)", MapBackend::kHashMap, false, false,
       false, 1.0},
      {"+ grid hashmap", MapBackend::kGrid, false, false, false, 1.6},
      {"+ fused downsample kernel", MapBackend::kGrid, true, false, false,
       1.5},
      {"+ simplified control logic", MapBackend::kGrid, true, true, false,
       1.8},
      {"+ symmetric map inference", MapBackend::kGrid, true, true, true,
       1.1},
  };

  std::printf("\n%-30s %12s %10s %10s %14s %10s\n", "step", "mapping ms",
              "step gain", "cum. gain", "(paper step)", "wall ms");
  const bench::WallTimer total_wall;
  double base = 0, prev = 0;
  int idx = 0;
  for (const Step& s : steps) {
    EngineConfig cfg = baseline_config();
    cfg.map_backend = s.backend;
    cfg.fused_downsample = s.fused_downsample;
    cfg.simplified_control = s.simplified;
    cfg.symmetric_map_search = s.symmetry;
    const bench::WallTimer step_wall;
    const Timeline t = run_model(w.model, w.input, dev, cfg);
    const double wall_ms = step_wall.seconds() * 1e3;
    const double ms = t.stage_seconds(Stage::kMapping) * 1e3;
    if (base == 0) base = ms;
    std::printf("%-30s %10.3f %9.2fx %9.2fx %11.1fx %9.1f\n", s.name, ms,
                prev > 0 ? prev / ms : 1.0, base / ms, s.paper_cumulative,
                wall_ms);
    bench::metric("fig13.mapping_ms.step" + std::to_string(idx), ms);
    bench::metric("wall_fig13.step_ms.step" + std::to_string(idx), wall_ms);
    prev = ms;
    ++idx;
  }
  bench::metric("fig13.cumulative_gain", base / prev);
  bench::metric("wall_fig13.total_seconds", total_wall.seconds());
  std::printf("\npaper total: ~4.6x end-to-end mapping speedup\n");
  return 0;
}
