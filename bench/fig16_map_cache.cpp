// Figure 16 (repo extension): cross-request kernel-map cache sweep —
// duplicate fraction x cache byte budget x worker count on a streaming
// MinkUNet serve.
//
// The paper shows map construction dominating sparse-conv serving cost;
// the KernelMapCache amortizes it across near-duplicate scans (same
// coordinate set => content-keyed hit, bit-identical results). This
// sweep quantifies the modeled effect and pins it with sanity anchors:
//   A1  0% duplicates  => cache invisible (mapping time bit-equal to off)
//   A2  100% duplicates => mapping time amortized away (< 0.2x of off)
//   A3  modeled stats identical for 1 vs 4 workers (deterministic
//       submission-order accounting)
//   A4  sub-entry byte budget => no hits, mapping bit-equal to off
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "serve/batch_runner.hpp"
#include "serve/request_queue.hpp"

using namespace ts;

namespace {

struct Cell {
  double mapping_ms = 0;
  double total_ms = 0;
  double hit_rate = 0;
  double fps = 0;
  double wall_ms = 0;
};

Cell run_cell(const Workload& w, const std::vector<SparseTensor>& stream,
              std::size_t budget, int workers) {
  serve::BatchOptions opt;
  opt.workers = workers;
  opt.map_cache_bytes = budget;
  opt.run.borrow_input = true;  // queue owns the stream copies
  const serve::BatchRunner runner(rtx2080ti(), torchsparse_config(), opt);
  serve::RequestQueue queue({/*max_depth=*/stream.size() + 1});
  const bench::WallTimer wall;
  std::vector<serve::StreamHandle> handles;
  for (std::size_t i = 0; i < stream.size(); ++i)
    handles.push_back(
        queue.submit(stream[i], 0.002 * static_cast<double>(i)));
  queue.close();
  const serve::StreamReport rep = runner.serve(w.model, queue);
  Cell c;
  c.mapping_ms = rep.stats.aggregate.stage_seconds(Stage::kMapping) * 1e3;
  c.total_ms = rep.stats.aggregate.total_seconds() * 1e3;
  c.hit_rate = rep.stats.map_cache.hit_rate();
  c.fps = rep.stats.throughput_fps;
  c.wall_ms = wall.seconds() * 1e3;
  return c;
}

bool close_rel(double a, double b, double rel) {
  return std::abs(a - b) <= rel * std::max(std::abs(a), std::abs(b));
}

}  // namespace

int main() {
  bench::header(
      "Figure 16: cross-request kernel-map cache",
      "repo extension of paper SS4.4 — duplicate fraction x cache budget "
      "x workers on streaming MinkUNet serve");
  bench::note(
      "mapping/hit-rate columns are modeled and deterministic "
      "(submission-order cache accounting); wall ms is host time");

  const uint64_t seed = 20260731;
  const double scale = bench::env_scale(0.35);
  Workload w = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                      0.5, 1, seed, scale,
                                      /*tune_sample_count=*/1);

  LidarSpec lidar = semantic_kitti_spec();
  lidar.azimuth_steps =
      std::max(32, static_cast<int>(lidar.azimuth_steps * scale));
  const int requests = 16;
  std::vector<SparseTensor> unique_scans;
  for (int i = 0; i < requests; ++i)
    unique_scans.push_back(make_input(lidar, segmentation_voxels(),
                                      seed + 7 + static_cast<uint64_t>(i)));
  std::printf("stream: %d requests, ~%zu voxels each\n", requests,
              unique_scans[0].num_points());

  const std::size_t kBigBudget = std::size_t(256) << 20;
  const std::size_t kTinyBudget = 1 << 10;  // smaller than any map entry
  const double dups[] = {0.0, 0.5, 1.0};
  const std::size_t budgets[] = {0, std::size_t(16) << 20, kBigBudget};
  const int workers[] = {1, 4};

  auto make_stream = [&](double dup) {
    // dup-fraction d => ceil((1-d)*R) distinct scans cycled round-robin.
    const int n_unique = std::max(
        1, static_cast<int>(std::lround((1.0 - dup) * requests)));
    std::vector<SparseTensor> stream;
    for (int i = 0; i < requests; ++i)
      stream.push_back(unique_scans[static_cast<std::size_t>(i % n_unique)]);
    return stream;
  };

  std::printf("\n%-6s %-10s %-8s %10s %10s %9s %9s %9s\n", "dup", "budget",
              "workers", "map ms", "total ms", "hit rate", "fps",
              "wall ms");
  Cell off_by_dup[3], big_w1_by_dup[3], big_w4_by_dup[3];
  for (std::size_t di = 0; di < 3; ++di) {
    const auto stream = make_stream(dups[di]);
    for (std::size_t budget : budgets) {
      for (int wk : workers) {
        const Cell c = run_cell(w, stream, budget, wk);
        std::printf("%-6.2f %-10s %-8d %10.3f %10.3f %9.2f %9.1f %9.1f\n",
                    dups[di],
                    budget == 0 ? "off"
                                : (budget == kBigBudget ? "256M" : "16M"),
                    wk, c.mapping_ms, c.total_ms, c.hit_rate, c.fps,
                    c.wall_ms);
        if (budget == 0 && wk == 4) off_by_dup[di] = c;
        if (budget == kBigBudget && wk == 1) big_w1_by_dup[di] = c;
        if (budget == kBigBudget && wk == 4) big_w4_by_dup[di] = c;
      }
    }
  }
  const Cell tiny = run_cell(w, make_stream(1.0), kTinyBudget, 4);

  bench::metric("fig16.dup0_mapping_ms_off", off_by_dup[0].mapping_ms);
  bench::metric("fig16.dup0_mapping_ms_on", big_w4_by_dup[0].mapping_ms);
  bench::metric("fig16.dup100_mapping_ms_off", off_by_dup[2].mapping_ms);
  bench::metric("fig16.dup100_mapping_ms_on", big_w4_by_dup[2].mapping_ms);
  bench::metric("fig16.dup100_hit_rate", big_w4_by_dup[2].hit_rate);
  bench::metric("fig16.dup50_mapping_ms_on", big_w4_by_dup[1].mapping_ms);
  bench::metric("wall_fig16.dup100_on_ms", big_w4_by_dup[2].wall_ms);
  bench::metric("wall_fig16.dup100_off_ms", off_by_dup[2].wall_ms);

  std::printf("\n--- sanity anchors ---\n");
  bool ok = true;
  auto anchor = [&](const char* name, bool pass) {
    std::printf("%-58s %s\n", name, pass ? "OK" : "FAIL");
    ok = ok && pass;
  };
  anchor("A1: 0% duplicates — cache-on mapping == cache-off (bit-equal)",
         close_rel(big_w4_by_dup[0].mapping_ms, off_by_dup[0].mapping_ms,
                   1e-12));
  anchor("A2: 100% duplicates — mapping amortized (< 0.2x of off)",
         big_w4_by_dup[2].mapping_ms < 0.2 * off_by_dup[2].mapping_ms);
  anchor("A3: modeled stats worker-invariant (w1 == w4, 100% dup)",
         close_rel(big_w1_by_dup[2].mapping_ms, big_w4_by_dup[2].mapping_ms,
                   1e-12) &&
             close_rel(big_w1_by_dup[2].total_ms, big_w4_by_dup[2].total_ms,
                       1e-12));
  anchor("A4: sub-entry budget — no hits, mapping == off",
         tiny.hit_rate == 0.0 &&
             close_rel(tiny.mapping_ms, off_by_dup[2].mapping_ms, 1e-12));
  return ok ? 0 : 1;
}
