// google-benchmark microbenchmarks for the substrate kernels: coordinate
// hashing (conventional vs grid), map search, gather/scatter numerics,
// blocked GEMM, the L2 cache simulator, and binary16 conversion.
//
// These measure the *host implementation* (this repo runs the algorithms
// on CPU); the paper-facing performance numbers come from the cost model
// in the fig*/table* binaries.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "core/gather_scatter.hpp"
#include "core/kernel_map.hpp"
#include "gpusim/cache.hpp"
#include "hash/flat_hashmap.hpp"
#include "hash/grid_hashmap.hpp"
#include "tensor/half.hpp"
#include "tensor/matrix.hpp"

namespace {

std::vector<ts::Coord> make_coords(int n, int extent, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::vector<ts::Coord> coords;
  coords.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    coords.push_back({0, d(rng), d(rng), d(rng)});
  return coords;
}

void BM_FlatHashMapBuild(benchmark::State& state) {
  const auto coords = make_coords(static_cast<int>(state.range(0)), 256, 1);
  for (auto _ : state) {
    ts::FlatHashMap m(coords.size());
    for (std::size_t i = 0; i < coords.size(); ++i)
      m.insert(coords[i], static_cast<int64_t>(i));
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(coords.size()));
}
BENCHMARK(BM_FlatHashMapBuild)->Arg(10000)->Arg(100000);

void BM_GridHashMapBuild(benchmark::State& state) {
  const auto coords = make_coords(static_cast<int>(state.range(0)), 256, 1);
  for (auto _ : state) {
    ts::GridHashMap g(ts::Coord{0, 0, 0, 0}, ts::Coord{0, 256, 256, 256});
    for (std::size_t i = 0; i < coords.size(); ++i)
      g.insert(coords[i], static_cast<int64_t>(i));
    benchmark::DoNotOptimize(g.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(coords.size()));
}
BENCHMARK(BM_GridHashMapBuild)->Arg(10000)->Arg(100000);

void BM_MapSearch(benchmark::State& state) {
  const bool grid = state.range(1) != 0;
  const auto coords = make_coords(static_cast<int>(state.range(0)), 128, 2);
  ts::ConvGeometry geom{3, 1, false};
  ts::MapSearchOptions opts;
  opts.backend = grid ? ts::MapBackend::kGrid : ts::MapBackend::kHashMap;
  for (auto _ : state) {
    auto km = ts::build_kernel_map(coords, coords, geom, opts);
    benchmark::DoNotOptimize(km.total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(coords.size()) * 27);
}
BENCHMARK(BM_MapSearch)->Args({20000, 0})->Args({20000, 1});

void BM_SymmetricMapSearch(benchmark::State& state) {
  const auto coords = make_coords(20000, 128, 2);
  ts::ConvGeometry geom{3, 1, false};
  ts::MapSearchOptions opts{ts::MapBackend::kGrid, true};
  for (auto _ : state) {
    auto km = ts::build_kernel_map(coords, coords, geom, opts);
    benchmark::DoNotOptimize(km.total());
  }
}
BENCHMARK(BM_SymmetricMapSearch);

void BM_BlockedGemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ts::Matrix a(n, 64, 0.5f), b(64, 64, 0.25f), out;
  for (auto _ : state) {
    ts::mm(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) *
                          64 * 64 * 2);
}
BENCHMARK(BM_BlockedGemm)->Arg(1000)->Arg(10000);

void BM_GatherRows(benchmark::State& state) {
  const std::size_t n = 50000;
  ts::Matrix src(n, 64, 1.0f);
  std::mt19937_64 rng(3);
  std::vector<ts::MapEntry> map(100000);
  for (auto& e : map) {
    e.in = static_cast<int32_t>(rng() % n);
    e.out = static_cast<int32_t>(rng() % n);
  }
  for (auto _ : state) {
    ts::Matrix f = ts::gather_rows(src, map);
    benchmark::DoNotOptimize(f.data());
  }
  state.SetBytesProcessed(state.iterations() * 100000 * 64 * 4);
}
BENCHMARK(BM_GatherRows);

void BM_CacheSimAccess(benchmark::State& state) {
  ts::CacheSim l2(5 * 1024 * 1024);
  std::mt19937_64 rng(4);
  std::vector<uint64_t> addrs(1 << 16);
  for (auto& a : addrs) a = (rng() % (1 << 20)) * 128;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        l2.access(addrs[i++ & (addrs.size() - 1)], 128, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSimAccess);

void BM_HalfRoundTrip(benchmark::State& state) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<float> dist(-100.0f, 100.0f);
  std::vector<float> vals(4096);
  for (auto& v : vals) v = dist(rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::fp16_round(vals[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HalfRoundTrip);

}  // namespace

BENCHMARK_MAIN();
