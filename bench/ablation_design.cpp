// Ablations on the design choices DESIGN.md calls out, beyond the paper's
// own tables:
//   (a) L2-capacity sweep for weight-stationary vs locality-aware
//       movement — §4.3.2's claim that WS order cannot exploit *any*
//       cache because the working set dwarfs the L2, while the
//       locality-aware order is cache-size-insensitive by construction;
//   (b) skipping data movement for the center (identity) offset;
//   (c) grid vs hashmap memory-for-speed trade-off;
//   (d) symmetric map search across point-cloud sizes.
#include <cstdio>
#include <random>
#include <unordered_set>

#include "bench/bench_util.hpp"
#include "core/conv3d.hpp"
#include "core/gather_scatter.hpp"
#include "core/kernel_map.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "data/voxelize.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "nn/layers.hpp"

using namespace ts;

namespace {

KernelMap layer_map(const SparseTensor& x) {
  ConvGeometry geom{3, 1, false};
  return build_kernel_map(x.coords(), x.coords(), geom,
                          {MapBackend::kGrid, false});
}

double movement_with_l2(const KernelMap& km, std::size_t n, double l2_mb,
                        bool locality) {
  DeviceSpec dev = rtx2080ti();
  dev.l2_bytes = l2_mb * 1024 * 1024;
  EngineConfig cfg = torchsparse_config();
  cfg.locality_aware = locality;
  ExecContext ctx(dev, cfg);
  std::vector<int> offsets;
  for (int o = 0; o < km.volume(); ++o)
    if (km.size(o) > 0 && o != 13) offsets.push_back(o);
  charge_gather_scatter(km, offsets, n, n, 64, 64, ctx);
  return ctx.timeline.data_movement_seconds();
}

}  // namespace

int main() {
  bench::header("Design-choice ablations",
                "DESIGN.md §5 (extends paper §4.3.2, §4.4)");

  LidarSpec lidar = semantic_kitti_spec();
  lidar.azimuth_steps = 450;
  const SparseTensor x = make_input(lidar, segmentation_voxels(), 777);
  const KernelMap km = layer_map(x);
  std::printf("layer: %zu points, %zu map entries\n", x.num_points(),
              km.total());

  // (a) L2 sweep.
  std::printf("\n(a) movement time vs modeled L2 capacity (C=64, FP16 "
              "vectorized):\n");
  std::printf("  %8s %22s %22s\n", "L2 (MB)", "weight-stationary (ms)",
              "locality-aware (ms)");
  for (double mb : {1.0, 2.75, 5.5, 12.0, 48.0}) {
    std::printf("  %8.2f %18.3f %22.3f\n", mb,
                movement_with_l2(km, x.num_points(), mb, false) * 1e3,
                movement_with_l2(km, x.num_points(), mb, true) * 1e3);
  }
  bench::note(
      "WS only benefits once L2 approaches the working set (far beyond "
      "real GPUs); locality-aware is flat — its reuse is in registers");

  // (b) Center-offset in-place computation.
  std::printf("\n(b) center (identity) offset handling:\n");
  for (bool skip : {false, true}) {
    EngineConfig cfg = torchsparse_config();
    cfg.skip_center_movement = skip;
    ExecContext ctx(rtx2080ti(), cfg);
    ctx.compute_numerics = false;
    std::mt19937_64 rng(1);
    Conv3dParams p;
    p.geom = ConvGeometry{3, 1, false};
    p.weights = spnn::make_conv_weights(3, 64, 64, rng);
    SparseTensor in(x.coords(), Matrix(x.num_points(), 64));
    sparse_conv3d(in, p, ctx);
    std::printf("  %-24s movement %7.3f ms, total %7.3f ms\n",
                skip ? "compute in place" : "gather like any offset",
                ctx.timeline.data_movement_seconds() * 1e3,
                ctx.timeline.total_seconds() * 1e3);
  }

  // (c) Map backend memory/speed trade-off.
  std::printf("\n(c) coordinate index: memory for collision-freedom:\n");
  for (MapBackend b : {MapBackend::kHashMap, MapBackend::kGrid}) {
    CoordIndex idx(x.coords(), b);
    std::size_t probes = 0;
    for (const Coord& c : x.coords()) {
      idx.find(c);
      ++probes;
    }
    std::printf("  %-8s %8.1f MB, %5.2f accesses/query\n",
                b == MapBackend::kGrid ? "grid" : "hashmap",
                static_cast<double>(idx.memory_bytes()) / 1e6,
                static_cast<double>(idx.query_accesses()) /
                    static_cast<double>(probes));
  }

  // (d) Symmetric search scaling.
  std::printf("\n(d) symmetric map inference (queries issued):\n");
  for (int az : {150, 300, 600}) {
    LidarSpec l2 = semantic_kitti_spec();
    l2.azimuth_steps = az;
    const SparseTensor t = make_input(l2, segmentation_voxels(), 778);
    ConvGeometry geom{3, 1, false};
    const KernelMap plain = build_kernel_map(
        t.coords(), t.coords(), geom, {MapBackend::kGrid, false});
    const KernelMap sym = build_kernel_map(
        t.coords(), t.coords(), geom, {MapBackend::kGrid, true});
    std::printf("  N=%-7zu %9zu -> %9zu queries (%.2fx fewer)\n",
                t.num_points(), plain.stats.queries, sym.stats.queries,
                static_cast<double>(plain.stats.queries) /
                    static_cast<double>(sym.stats.queries));
  }
  return 0;
}
