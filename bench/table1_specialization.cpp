// Table 1: specializing the adaptive grouping strategy (epsilon, S) for
// datasets, models, and hardware. Executing a strategy tuned for the
// wrong target loses efficiency (paper: up to 13.5%).
//
// Metric: effective matmul throughput = theoretical (unpadded) FLOPs /
// matmul time, so padding waste counts against a strategy — the quantity
// the tuner actually optimizes. Paper reference (TFLOP/s):
//   (a) datasets (MinkUNet-1f, 2080Ti): SK on SK 10.11 > SK on NS-tuned
//       10.87?? — read as: the diagonal (specialized) entries win.
//   (b) models (SemanticKITTI, 2080Ti): diagonal wins.
//   (c) hardware (nuScenes, MinkUNet): diagonal wins.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "tune/group_tuner.hpp"

using namespace ts;

namespace {

/// Effective TFLOP/s of one run: theoretical flops / matmul seconds.
double effective_tflops(const Workload& w, const DeviceSpec& dev,
                        const std::unordered_map<int, GroupParams>& tuned) {
  EngineConfig cfg = torchsparse_config();
  RunOptions opt;
  opt.simulate_cache = false;
  opt.tuned = tuned;
  const Timeline t = run_model(w.model, w.input, dev, cfg, opt);

  const auto recs =
      record_workloads(w.model, {w.input}, dev, torchsparse_config());
  double theo = 0;
  for (const LayerRecord& r : recs[0])
    theo += theoretical_flops(r.map_sizes, r.c_in, r.c_out);
  return theo / t.stage_seconds(Stage::kMatMul) / 1e12;
}

void print_matrix(const char* title, const char* row0, const char* row1,
                  double m00, double m01, double m10, double m11) {
  std::printf("\n%s\n", title);
  std::printf("  %-22s %14s %14s\n", "execute \\ optimized-for", row0,
              row1);
  std::printf("  %-22s %11.2f TF %11.2f TF %s\n", row0, m00, m01,
              m00 >= m01 ? "(diag wins)" : "(TRANSFER WINS!)");
  std::printf("  %-22s %11.2f TF %11.2f TF %s\n", row1, m10, m11,
              m11 >= m10 ? "(diag wins)" : "(TRANSFER WINS!)");
  const double loss = std::max(m00 / m01, m11 / m10);
  std::printf("  max specialization gain: %.1f%% (paper: up to 13.5%%)\n",
              (loss - 1.0) * 100);
}

}  // namespace

int main() {
  bench::header("Table 1: (epsilon, S) specialization",
                "paper Table 1 (a) datasets (b) models (c) hardware");

  // (a) Datasets: 1-frame MinkUNet-1.0x on SemanticKITTI vs nuScenes.
  {
    Workload sk = make_minkunet_workload("MinkUNet@SK", "SemanticKITTI",
                                         1.0, 1, 1101, 1.0, 2);
    Workload ns = make_minkunet_workload("MinkUNet@NS", "nuScenes", 1.0, 1,
                                         1101, 1.0, 2);
    // Same network weights/layer ids (same seed) so strategies transfer.
    const DeviceSpec dev = rtx2080ti();
    const auto tune_sk =
        tune_for(sk.model, sk.tune_samples, dev, torchsparse_config());
    const auto tune_ns =
        tune_for(ns.model, ns.tune_samples, dev, torchsparse_config());
    print_matrix("(a) dataset specialization (MinkUNet-1f, RTX 2080Ti)",
                 "SemanticKITTI", "nuScenes",
                 effective_tflops(sk, dev, tune_sk),
                 effective_tflops(sk, dev, tune_ns),
                 effective_tflops(ns, dev, tune_sk),
                 effective_tflops(ns, dev, tune_ns));
  }

  // (b) Models: MinkUNet 1.0x vs 0.5x on SemanticKITTI. Strategies can
  // only transfer across models via matching layer structure, so we tune
  // each model on its own samples and cross-apply by layer order.
  {
    const DeviceSpec dev = rtx2080ti();
    Workload big = make_minkunet_workload("MinkUNet-1.0x", "SemanticKITTI",
                                          1.0, 1, 1102, 1.0, 2);
    Workload small = make_minkunet_workload("MinkUNet-0.5x",
                                            "SemanticKITTI", 0.5, 1, 1103,
                                            1.0, 2);
    auto remap = [&](const Workload& from, const Workload& to,
                     const std::unordered_map<int, GroupParams>& params) {
      // Cross-apply by position: layer k of `from` -> layer k of `to`.
      const auto rf = record_workloads(from.model, {from.input},
                                       dev, torchsparse_config())[0];
      const auto rt = record_workloads(to.model, {to.input}, dev,
                                       torchsparse_config())[0];
      std::unordered_map<int, GroupParams> out;
      for (std::size_t i = 0; i < std::min(rf.size(), rt.size()); ++i) {
        if (auto it = params.find(rf[i].layer_id); it != params.end())
          out[rt[i].layer_id] = it->second;
      }
      return out;
    };
    const auto tune_big =
        tune_for(big.model, big.tune_samples, dev, torchsparse_config());
    const auto tune_small = tune_for(small.model, small.tune_samples, dev,
                                     torchsparse_config());
    print_matrix("(b) model specialization (SemanticKITTI, RTX 2080Ti)",
                 "MinkUNet-1.0x", "MinkUNet-0.5x",
                 effective_tflops(big, dev, tune_big),
                 effective_tflops(big, dev, remap(small, big, tune_small)),
                 effective_tflops(small, dev, remap(big, small, tune_big)),
                 effective_tflops(small, dev, tune_small));
  }

  // (c) Hardware: tune on 2080Ti vs 1080Ti, execute on both (nuScenes).
  {
    Workload ns = make_minkunet_workload("MinkUNet@NS", "nuScenes", 1.0, 3,
                                         1104, 1.0, 2);
    const DeviceSpec d20 = rtx2080ti(), d10 = gtx1080ti();
    const auto tune_20 =
        tune_for(ns.model, ns.tune_samples, d20, torchsparse_config());
    const auto tune_10 =
        tune_for(ns.model, ns.tune_samples, d10, torchsparse_config());
    print_matrix("(c) hardware specialization (nuScenes, MinkUNet-3f)",
                 "RTX 2080Ti", "GTX 1080Ti",
                 effective_tflops(ns, d20, tune_20),
                 effective_tflops(ns, d20, tune_10),
                 effective_tflops(ns, d10, tune_20),
                 effective_tflops(ns, d10, tune_10));
  }
  return 0;
}
