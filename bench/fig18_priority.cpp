// Figure 18 (repo extension): priority classes under overload — traffic
// mix x offered load x aging sweep on a streaming MinkUNet serve through
// the serve::Server session API.
//
// A serving fleet rarely has one traffic class. The Server's default
// batching policy implements strict priority with optional aging
// (serve_policies.hpp): high-class requests win batch slots, lows ride
// the SLO deadline, and aging promotes a waiting request one class per
// interval so sustained high-class pressure cannot starve the backfill.
// Because batching, routing, and placement all run on the modeled
// clock, every per-class percentile below is deterministic. Sanity
// anchors pin the contract:
//   A1  single-class stream through Server == legacy BatchRunner::serve
//       (modeled p99/fps bit-equal), and the fig17 cache_affinity
//       sharding stats are bit-unchanged through the Server path
//   A2  under overload, high-class modeled p99 e2e strictly below
//       low-class (strict priority, aging off)
//   A3  aging strictly tightens the low-class queue-wait tail vs
//       strict priority under high-class pressure (no starvation)
//   A4  priorities are pure scheduling: aggregate modeled compute is
//       invariant to the traffic mix at fixed load
//   A5  per-class outcomes reproduce bit-identically on a re-run
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "serve/batch_runner.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"

using namespace ts;

namespace {

struct Mix {
  const char* name;
  serve::Priority majority;  // 3 of every 4 requests
  serve::Priority minority;  // every 4th request
};

serve::Priority class_of(const Mix& mix, int i) {
  return i % 4 == 3 ? mix.minority : mix.majority;
}

struct Cell {
  double high_wait_p99_ms = 0, low_wait_p99_ms = 0;
  double high_e2e_p99_ms = 0, low_e2e_p99_ms = 0;
  double e2e_p99_ms = 0;
  double fps = 0;
  double total_ms = 0;  // aggregate modeled compute
  double hit_rate = 0;
  double wall_ms = 0;
};

Cell cell_from(const serve::StreamStats& s, double wall_ms) {
  const int hi = static_cast<int>(serve::Priority::kHigh);
  const int lo = static_cast<int>(serve::Priority::kLow);
  Cell c;
  c.high_wait_p99_ms = s.per_class[hi].queue_wait_p99_seconds * 1e3;
  c.low_wait_p99_ms = s.per_class[lo].queue_wait_p99_seconds * 1e3;
  c.high_e2e_p99_ms = s.per_class[hi].e2e_p99_seconds * 1e3;
  c.low_e2e_p99_ms = s.per_class[lo].e2e_p99_seconds * 1e3;
  c.e2e_p99_ms = s.e2e_p99_seconds * 1e3;
  c.fps = s.throughput_fps;
  c.total_ms = s.aggregate.total_seconds() * 1e3;
  c.hit_rate = s.map_cache.hit_rate();
  c.wall_ms = wall_ms;
  return c;
}

Cell run_cell(const Workload& w, const std::vector<SparseTensor>& stream,
              const Mix& mix, double gap, double budget,
              double aging_seconds, int workers, int devices,
              serve::RoutePolicy route, std::size_t cache_bytes) {
  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti())
      .with_engine(torchsparse_config())
      .with_workers(workers)
      .with_devices(devices)
      .with_route(route)
      .with_map_cache_bytes(cache_bytes)
      .with_queue_depth(stream.size() + 1)
      .with_batch_overhead(0.0005);
  serve::BatcherOptions b;
  b.policy = serve::BatchPolicy::kSloAware;
  b.max_batch = 4;
  b.slo_budget_seconds = budget;
  cfg.with_batcher(b);
  if (aging_seconds > 0) {
    serve::PriorityOptions p;
    p.aging_seconds = aging_seconds;
    cfg.with_priority(p);
  }
  RunOptions run;
  run.borrow_input = true;  // the session queue owns the stream copies
  cfg.with_run(run);

  serve::Server server(cfg);
  const bench::WallTimer wall;
  server.start(w.model);
  for (std::size_t i = 0; i < stream.size(); ++i)
    server.submit(stream[i], gap * static_cast<double>(i),
                  class_of(mix, static_cast<int>(i)));
  const serve::StreamReport rep = server.drain();
  return cell_from(rep.stats, wall.seconds() * 1e3);
}

/// The same stream through the legacy one-shot wrapper (all requests in
/// the queue's default class) — the parity reference for A1.
Cell run_legacy(const Workload& w, const std::vector<SparseTensor>& stream,
                double gap, double budget, int workers, int devices,
                serve::RoutePolicy route, std::size_t cache_bytes) {
  serve::BatchOptions opt;
  opt.workers = workers;
  opt.map_cache_bytes = cache_bytes;
  opt.run.borrow_input = true;
  serve::StreamOptions sopt;
  sopt.batcher.policy = serve::BatchPolicy::kSloAware;
  sopt.batcher.max_batch = 4;
  sopt.batcher.slo_budget_seconds = budget;
  sopt.batch_overhead_seconds = 0.0005;
  sopt.shard.devices = devices;
  sopt.shard.route = route;
  serve::RequestQueue queue({/*max_depth=*/stream.size() + 1});
  const bench::WallTimer wall;
  for (std::size_t i = 0; i < stream.size(); ++i)
    queue.submit(stream[i], gap * static_cast<double>(i));
  queue.close();
  const serve::StreamReport rep =
      serve::BatchRunner(rtx2080ti(), torchsparse_config(), opt)
          .serve(w.model, queue, sopt);
  return cell_from(rep.stats, wall.seconds() * 1e3);
}

bool close_rel(double a, double b, double rel) {
  return std::abs(a - b) <= rel * std::max(std::abs(a), std::abs(b));
}

}  // namespace

int main() {
  bench::header(
      "Figure 18: priority classes under overload",
      "repo extension — traffic mix x load x aging on a streaming "
      "MinkUNet serve through the serve::Server session API");
  bench::note(
      "per-class wait/e2e p99, fps, and compute are modeled and "
      "deterministic (strict-priority-plus-aging batching on the "
      "modeled clock); wall ms is host time");

  const uint64_t seed = 20260731;
  const double scale = bench::env_scale(0.35);
  Workload w = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                      0.5, 1, seed, scale,
                                      /*tune_sample_count=*/1);

  LidarSpec lidar = semantic_kitti_spec();
  lidar.azimuth_steps =
      std::max(32, static_cast<int>(lidar.azimuth_steps * scale));
  const int requests = 24;
  std::vector<SparseTensor> stream;
  for (int i = 0; i < requests; ++i)
    stream.push_back(make_input(lidar, segmentation_voxels(),
                                seed + 7 + static_cast<uint64_t>(i)));

  // Load calibration: the mean modeled service time anchors the arrival
  // process, so the overload factor means the same thing at any scale.
  const double service =
      run_model(w.model, stream[0], rtx2080ti(), torchsparse_config())
          .total_seconds();
  std::printf("stream: %d requests, ~%zu voxels, %.2f ms modeled service\n",
              requests, stream[0].num_points(), service * 1e3);

  const Mix mixes[] = {
      {"all-normal", serve::Priority::kNormal, serve::Priority::kNormal},
      {"low+HI 1/4", serve::Priority::kLow, serve::Priority::kHigh},
      {"high+LO 1/4", serve::Priority::kHigh, serve::Priority::kLow},
  };
  // Offered load: overload (arrivals 20x faster than one lane drains)
  // and near-capacity.
  const double gaps[] = {0.05 * service, 0.5 * service};
  const char* gap_names[] = {"overload", "near-cap"};
  const double budget_of[] = {8.0 * 0.05 * service, 4.0 * 0.5 * service};
  const double agings[] = {0.0, 2.0 * 0.05 * service};  // off / on

  std::printf("\n%-12s %-9s %-5s %10s %10s %10s %10s %8s %8s\n", "mix",
              "load", "aging", "hiWait99", "loWait99", "hiE2e99",
              "loE2e99", "fps", "wall ms");
  Cell cells[3][2][2];  // [mix][load][aging]
  for (std::size_t mi = 0; mi < 3; ++mi) {
    for (std::size_t li = 0; li < 2; ++li) {
      for (std::size_t ai = 0; ai < 2; ++ai) {
        const Cell c =
            run_cell(w, stream, mixes[mi], gaps[li], budget_of[li],
                     agings[ai], /*workers=*/2, /*devices=*/1,
                     serve::RoutePolicy::kLeastLoaded, /*cache=*/0);
        cells[mi][li][ai] = c;
        std::printf("%-12s %-9s %-5s %10.3f %10.3f %10.3f %10.3f %8.1f "
                    "%8.1f\n",
                    mixes[mi].name, gap_names[li],
                    agings[ai] > 0 ? "on" : "off", c.high_wait_p99_ms,
                    c.low_wait_p99_ms, c.high_e2e_p99_ms, c.low_e2e_p99_ms,
                    c.fps, c.wall_ms);
      }
    }
  }

  // Parity cells: the all-normal overload stream through the legacy
  // wrapper, unsharded and as the fig17-style 2-device cache_affinity
  // configuration on a 50%-duplicate stream.
  const Cell legacy = run_legacy(w, stream, gaps[0], budget_of[0], 2, 1,
                                 serve::RoutePolicy::kLeastLoaded, 0);
  std::vector<SparseTensor> dup_stream;
  for (int i = 0; i < requests; ++i)
    dup_stream.push_back(make_input(lidar, segmentation_voxels(),
                                    seed + 7 + static_cast<uint64_t>(i / 2)));
  const std::size_t kBudget = std::size_t(256) << 20;
  const Cell aff_server =
      run_cell(w, dup_stream, mixes[0], gaps[0], budget_of[0], 0.0, 2, 2,
               serve::RoutePolicy::kCacheAffinity, kBudget);
  const Cell aff_legacy = run_legacy(w, dup_stream, gaps[0], budget_of[0],
                                     2, 2, serve::RoutePolicy::kCacheAffinity,
                                     kBudget);
  std::printf("\nparity: legacy fps %.1f vs server %.1f; affinity hit "
              "rate %.3f vs %.3f\n",
              legacy.fps, cells[0][0][0].fps, aff_legacy.hit_rate,
              aff_server.hit_rate);

  // Re-run the headline cell for the determinism anchor.
  const Cell again =
      run_cell(w, stream, mixes[1], gaps[0], budget_of[0], 0.0, 2, 1,
               serve::RoutePolicy::kLeastLoaded, 0);

  const std::size_t LOW_HI = 1, HIGH_LO = 2;  // mix indexes
  bench::metric("fig18.overload_high_e2e_p99_ms",
                cells[LOW_HI][0][0].high_e2e_p99_ms);
  bench::metric("fig18.overload_low_e2e_p99_ms",
                cells[LOW_HI][0][0].low_e2e_p99_ms);
  bench::metric("fig18.overload_sep_ratio",
                cells[LOW_HI][0][0].low_e2e_p99_ms /
                    cells[LOW_HI][0][0].high_e2e_p99_ms);
  bench::metric("fig18.strict_low_wait_p99_ms",
                cells[HIGH_LO][0][0].low_wait_p99_ms);
  bench::metric("fig18.aged_low_wait_p99_ms",
                cells[HIGH_LO][0][1].low_wait_p99_ms);
  bench::metric("fig18.normal_overload_fps", cells[0][0][0].fps);
  bench::metric("fig18.affinity_parity_hit_rate", aff_server.hit_rate);
  bench::metric("wall_fig18.sweep_ms", cells[LOW_HI][0][0].wall_ms);

  std::printf("\n--- sanity anchors ---\n");
  bool ok = true;
  auto anchor = [&](const char* name, bool pass) {
    std::printf("%-66s %s\n", name, pass ? "OK" : "FAIL");
    ok = ok && pass;
  };
  anchor("A1: single-class Server bit-equal legacy serve (p99/fps/hit)",
         close_rel(cells[0][0][0].e2e_p99_ms, legacy.e2e_p99_ms, 1e-12) &&
             close_rel(cells[0][0][0].fps, legacy.fps, 1e-12) &&
             close_rel(cells[0][0][0].total_ms, legacy.total_ms, 1e-12) &&
             aff_server.hit_rate == aff_legacy.hit_rate &&
             close_rel(aff_server.total_ms, aff_legacy.total_ms, 1e-12) &&
             close_rel(aff_server.fps, aff_legacy.fps, 1e-12));
  anchor("A2: overload, strict priority — high e2e p99 < low e2e p99",
         cells[LOW_HI][0][0].high_e2e_p99_ms <
                 cells[LOW_HI][0][0].low_e2e_p99_ms &&
             cells[LOW_HI][0][0].high_wait_p99_ms <
                 cells[LOW_HI][0][0].low_wait_p99_ms);
  anchor("A3: aging tightens the starving low-class wait tail",
         cells[HIGH_LO][0][1].low_wait_p99_ms <
             cells[HIGH_LO][0][0].low_wait_p99_ms);
  bool a4 = true;
  for (std::size_t li = 0; li < 2; ++li)
    for (std::size_t mi = 1; mi < 3; ++mi)
      for (std::size_t ai = 0; ai < 2; ++ai)
        a4 = a4 && close_rel(cells[mi][li][ai].total_ms,
                             cells[0][li][0].total_ms, 1e-12);
  anchor("A4: aggregate modeled compute invariant to mix and aging", a4);
  anchor("A5: per-class outcome reproduces bit-identically",
         again.high_e2e_p99_ms == cells[LOW_HI][0][0].high_e2e_p99_ms &&
             again.low_e2e_p99_ms == cells[LOW_HI][0][0].low_e2e_p99_ms &&
             again.fps == cells[LOW_HI][0][0].fps);
  return ok ? 0 : 1;
}
