// Figures 11 & 14: end-to-end comparison of the five systems on the
// paper's seven workloads across three GPUs. Prints normalized FPS
// (TorchSparse = 1.00, as in Fig. 11) and absolute FPS (Fig. 14), plus
// the paper's headline geomean checks.
//
// Paper headline claims reproduced here (§1, §5.2, Fig. 1):
//   - TorchSparse is the fastest system on every workload/device;
//   - ~1.6x geomean over MinkowskiEngine, ~1.5x over SpConv;
//   - up to 2.16x over MinkowskiEngine on segmentation (RTX 3090);
//   - TorchSparse still wins on GTX 1080Ti (no FP16 tensor cores), with
//     a speedup over the baseline only slightly below the 2080Ti's;
//   - MinkowskiEngine is comparatively strongest on 1-frame nuScenes
//     (fetch-on-demand dataflow);
//   - SpConv FP16 beats SpConv FP32 on tensor-core devices.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"

using namespace ts;

int main() {
  bench::header("Figures 11 & 14: end-to-end engine comparison",
                "paper Fig. 11 (normalized FPS) and Fig. 14 (absolute "
                "FPS), 7 workloads x 3 GPUs x 5 systems");
  bench::note(
      "synthetic scans are roughly half the voxel count of the real "
      "datasets, so absolute FPS runs higher than the paper's; "
      "normalized results are the comparison that transfers");

  auto workloads = paper_workloads(/*seed=*/20260612, /*scale=*/1.0, 2);
  const auto engines = paper_engines();
  const auto devices = all_devices();

  // Workload records are device-independent; record once per workload and
  // run the Alg. 5 grid search against each device's cost model.
  std::vector<std::vector<std::vector<LayerRecord>>> records;
  records.reserve(workloads.size());
  for (const Workload& w : workloads)
    records.push_back(record_workloads(w.model, w.tune_samples,
                                       devices.front(),
                                       torchsparse_config()));

  // speedup_vs[device][engine] -> per-workload TorchSparse/engine ratios.
  std::map<std::string, std::map<std::string, std::vector<double>>> ratios;

  for (const DeviceSpec& dev : devices) {
    std::printf("\n=== %s ===\n", dev.name.c_str());
    std::printf("%-22s", "workload");
    for (const auto& e : engines) std::printf(" %16s", e.name.c_str());
    std::printf("\n");

    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
      const Workload& w = workloads[wi];
      std::map<std::string, double> fps;
      for (const EngineConfig& cfg : engines) {
        RunOptions opt;
        if (cfg.grouping == GroupingStrategy::kAdaptive)
          opt.tuned = tune_groups(records[wi], CostModel(dev),
                                  cfg.precision)
                          .params;
        const Timeline t = run_model(w.model, w.input, dev, cfg, opt);
        fps[cfg.name] = t.fps();
      }
      const double ts_fps = fps["TorchSparse"];
      std::printf("%-22s", w.name.c_str());
      for (const auto& e : engines)
        std::printf("     %5.2f (%4.1f)", fps[e.name] / ts_fps,
                    fps[e.name]);
      std::printf("\n");
      for (const auto& e : engines)
        ratios[dev.name][e.name].push_back(ts_fps / fps[e.name]);
    }

    std::printf("%-22s", "geomean TS speedup");
    for (const auto& e : engines)
      std::printf("     %5.2fx       ",
                  bench::geomean(ratios[dev.name][e.name]));
    std::printf("\n");
  }

  std::printf("\ncells: normalized FPS with TorchSparse = 1.00 "
              "(absolute FPS in parentheses)\n");

  std::printf("\n--- paper headline checks ---\n");
  for (const DeviceSpec& dev : devices) {
    std::printf(
        "%s: TS vs MinkowskiEngine %.2fx (paper geomean ~1.6x), vs "
        "SpConv-FP16 %.2fx (~1.5x), vs Baseline %.2fx\n",
        dev.name.c_str(),
        bench::geomean(ratios[dev.name]["MinkowskiEngine"]),
        bench::geomean(ratios[dev.name]["SpConv (FP16)"]),
        bench::geomean(ratios[dev.name]["Baseline"]));
  }
  return 0;
}
