// SLO-aware dynamic batching sweep (the serving-layer companion of the
// paper's Fig. 14 throughput study): batching policy x queue-wait SLO
// budget x offered load x dispatch overhead on the MinkUNet segmentation
// workload.
//
// Per-request service times are measured once through the worker pool;
// every (policy, SLO, load, overhead) cell is then a deterministic
// modeled schedule of those same timelines (DynamicBatcher::plan +
// schedule_stream), exactly how bench/fig14 reuses one measurement
// across schedule configurations. The fixed per-dispatch overhead models
// the amortizable setup (kernel-map reuse, weight staging, launch setup)
// the paper's end-to-end wins come from; sweeping it low and high shows
// both serving regimes:
//   * cheap dispatch  -> batching only costs latency (immediate wins),
//   * costly dispatch -> batching amortizes setup (full batches win
//                        throughput, SLO budgets trade it for latency).
//
// Sanity anchors checked at the end (exit nonzero on failure):
//   1. mean batch size grows monotonically with the SLO budget,
//   2. the tightest SLO forms smaller batches than the loosest,
//   3. with costly dispatch under overload, full batching
//      out-throughputs immediate dispatch (amortization),
//   4. with cheap dispatch, immediate dispatch has the lower p99
//      end-to-end latency (batching's latency cost).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "serve/batch_runner.hpp"
#include "serve/dynamic_batcher.hpp"
#include "serve/tuned_param_store.hpp"

using namespace ts;

namespace {

/// Deterministic exponential inter-arrivals via explicit inverse-CDF on
/// raw mt19937_64 output (std::exponential_distribution is
/// implementation-defined, which would break cross-machine
/// reproducibility).
std::vector<double> poisson_arrivals(std::size_t n, double rate,
                                     uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> arrivals(n);
  double t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u =
        static_cast<double>(rng() >> 11) * 0x1.0p-53;  // [0, 1)
    t += -std::log1p(-u) / rate;
    arrivals[i] = t;
  }
  return arrivals;
}

struct Config {
  std::string label;
  serve::BatcherOptions batcher;
};

}  // namespace

int main() {
  bench::header("SLO-aware dynamic batching: policy x budget x load",
                "serving-layer extension of paper Fig. 14 (absolute "
                "throughput) to latency-SLO scheduling");
  bench::note(
      "service times measured once; every (policy, SLO, load, overhead) "
      "cell is a deterministic modeled schedule of the same timelines");

  const uint64_t seed = 20260731;
  const double scale = 0.25;
  Workload w = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                      0.5, 1, seed, scale,
                                      /*tune_sample_count=*/2);
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig cfg = torchsparse_config();

  LidarSpec lidar = semantic_kitti_spec();
  lidar.azimuth_steps =
      std::max(32, static_cast<int>(lidar.azimuth_steps * scale));
  const std::size_t n = 24;
  std::vector<SparseTensor> scans;
  for (std::size_t i = 0; i < n; ++i)
    scans.push_back(make_input(lidar, segmentation_voxels(),
                               seed + 100 + static_cast<uint64_t>(i)));

  // Measure every scan's modeled service time once (tuned engine).
  serve::TunedParamStore store;
  serve::BatchOptions bopt;
  bopt.workers = 8;
  bopt.run.tuned = store.get_or_tune(serve::tuned_key(w.name, dev, cfg),
                                     w.model, w.tune_samples, dev, cfg);
  const serve::BatchReport measured =
      serve::BatchRunner(dev, cfg, bopt).run(w.model, scans);
  const double mean_service = measured.stats.mean_service_seconds;
  std::printf("\nmeasured %zu scans, mean service %.2f ms (tuned %zu "
              "layers)\n",
              n, mean_service * 1e3, bopt.run.tuned.size());

  const int workers = 4;
  const int max_batch = 8;
  const std::vector<double> budget_mults = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0};

  std::vector<Config> configs;
  {
    serve::BatcherOptions b;
    b.policy = serve::BatchPolicy::kImmediate;
    configs.push_back({"immediate", b});
  }
  for (double mult : budget_mults) {
    serve::BatcherOptions b;
    b.policy = serve::BatchPolicy::kSloAware;
    b.max_batch = max_batch;
    b.slo_budget_seconds = mult * mean_service;
    char label[32];
    std::snprintf(label, sizeof(label), "slo %.2fx svc", mult);
    configs.push_back({label, b});
  }
  {
    serve::BatcherOptions b;
    b.policy = serve::BatchPolicy::kFullBatch;
    b.max_batch = max_batch;
    configs.push_back({"full-batch", b});
  }

  struct Anchors {
    bool batch_monotone = true;
    double tight_batch = 0, loose_batch = 0;     // costly, overloaded
    double imm_fps = 0, full_fps = 0;            // costly, overloaded
    double imm_e2e = 0, full_e2e = 0;            // cheap, underloaded
  } a;

  for (double oh_mult : {0.1, 2.0}) {
    const double overhead = oh_mult * mean_service;
    for (double load : {0.7, 1.3}) {
      const double rate =
          load * static_cast<double>(workers) / mean_service;
      const std::vector<double> arrivals =
          poisson_arrivals(n, rate, seed + 7);

      std::printf("\n=== dispatch overhead %.2f ms (%.1fx svc), offered "
                  "load %.0f%% of %d lanes, max_batch %d ===\n",
                  overhead * 1e3, oh_mult, load * 100, workers, max_batch);
      std::printf("%-14s %8s %8s %12s %12s %12s\n", "policy", "fps",
                  "batch", "p50 wait ms", "p99 wait ms", "p99 e2e ms");

      double prev_slo_batch = 0;
      for (const Config& c : configs) {
        // Fresh schedule over the same measured timelines.
        std::vector<serve::StreamResult> reqs(n);
        for (std::size_t i = 0; i < n; ++i) {
          reqs[i].id = i;
          reqs[i].arrival_seconds = arrivals[i];
          reqs[i].service_seconds = measured.requests[i].service_seconds;
          reqs[i].timeline = measured.requests[i].timeline;
        }
        const auto plan =
            serve::DynamicBatcher::plan(arrivals, c.batcher);
        const serve::StreamStats s =
            serve::schedule_stream(reqs, plan, workers, overhead);
        std::printf("%-14s %8.1f %8.2f %12.2f %12.2f %12.2f\n",
                    c.label.c_str(), s.throughput_fps, s.mean_batch_size,
                    s.queue_wait_p50_seconds * 1e3,
                    s.queue_wait_p99_seconds * 1e3,
                    s.e2e_p99_seconds * 1e3);

        if (c.batcher.policy == serve::BatchPolicy::kSloAware) {
          if (s.mean_batch_size + 1e-12 < prev_slo_batch)
            a.batch_monotone = false;
          prev_slo_batch = s.mean_batch_size;
        }
        const bool costly_overloaded = oh_mult > 1.0 && load > 1.0;
        const bool cheap_underloaded = oh_mult < 1.0 && load < 1.0;
        if (costly_overloaded) {
          if (c.batcher.policy == serve::BatchPolicy::kImmediate)
            a.imm_fps = s.throughput_fps;
          if (c.batcher.policy == serve::BatchPolicy::kFullBatch)
            a.full_fps = s.throughput_fps;
          if (c.batcher.policy == serve::BatchPolicy::kSloAware) {
            if (c.batcher.slo_budget_seconds < 0.3 * mean_service)
              a.tight_batch = s.mean_batch_size;
            if (c.batcher.slo_budget_seconds > 7.0 * mean_service)
              a.loose_batch = s.mean_batch_size;
          }
        }
        if (cheap_underloaded) {
          if (c.batcher.policy == serve::BatchPolicy::kImmediate)
            a.imm_e2e = s.e2e_p99_seconds;
          if (c.batcher.policy == serve::BatchPolicy::kFullBatch)
            a.full_e2e = s.e2e_p99_seconds;
        }
      }
    }
  }

  std::printf("\n--- sanity anchors ---\n");
  const bool smaller = a.tight_batch < a.loose_batch;
  const bool amortize = a.full_fps > a.imm_fps;
  const bool latency_cost = a.imm_e2e < a.full_e2e;
  std::printf("mean batch monotone in SLO budget (every table): %s\n",
              a.batch_monotone ? "OK" : "FAIL");
  std::printf("tight SLO batches %.2f < loose %.2f: %s\n", a.tight_batch,
              a.loose_batch, smaller ? "OK" : "FAIL");
  std::printf("costly dispatch, overloaded: full-batch %.1f fps > "
              "immediate %.1f fps (amortization): %s\n",
              a.full_fps, a.imm_fps, amortize ? "OK" : "FAIL");
  std::printf("cheap dispatch, underloaded: immediate p99 e2e %.2f ms < "
              "full-batch %.2f ms (batching latency cost): %s\n",
              a.imm_e2e * 1e3, a.full_e2e * 1e3,
              latency_cost ? "OK" : "FAIL");
  return (a.batch_monotone && smaller && amortize && latency_cost) ? 0 : 1;
}
