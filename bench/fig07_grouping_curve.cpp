// Figure 7: trading FLOPs for regularity — speedup of batched matmul
// grouping over separate matmul as a function of the number of groups,
// for the first sparse convolution layer of MinkUNet (0.5x) on
// SemanticKITTI.
//
// Paper reference: speedup rises from 1.0x (26 groups = separate, center
// excluded) to ~1.5x around 6 groups, then padding overhead erodes it
// toward 1 group (dense-like).
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "tune/group_tuner.hpp"

using namespace ts;

int main() {
  bench::header("Figure 7: speedup vs number of matmul groups",
                "paper Fig. 7 (MinkUNet-0.5x first layer, SemanticKITTI)");

  Workload w = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                      0.5, 1, 7001, 1.0, 1);
  const auto records = record_workloads(w.model, {w.input}, rtx2080ti(),
                                        torchsparse_config());
  // First submanifold conv layer at full feature width (the stem's
  // 4-channel input layer is launch-bound and uninformative).
  const LayerRecord* layer = nullptr;
  for (const LayerRecord& r : records[0]) {
    if (r.submanifold && r.map_sizes.size() == 27 && r.c_in >= 16) {
      layer = &r;
      break;
    }
  }
  if (layer == nullptr) {
    std::printf("no submanifold layer found\n");
    return 1;
  }
  std::printf("layer workload: %zu map entries, C_in=%zu, C_out=%zu\n",
              [&] {
                std::size_t t = 0;
                for (auto s : layer->map_sizes) t += s;
                return t;
              }(),
              layer->c_in, layer->c_out);

  const CostModel cost(rtx2080ti());
  const double separate = grouped_matmul_seconds(
      *layer, GroupingStrategy::kSeparate, GroupParams{}, cost,
      Precision::kFP16);

  // Sweep epsilon from 0 (symmetric pairs) to 1 (one group); count the
  // resulting groups (center excluded, matching the paper's x-axis note).
  std::map<int, double> best_by_groups;
  for (double eps = 0.0; eps <= 1.0001; eps += 0.02) {
    const GroupParams p{eps, 1e18};
    const auto groups =
        plan_groups(layer->map_sizes, true, GroupingStrategy::kAdaptive, p);
    int n_groups = 0;
    for (const auto& g : groups)
      if (!g.is_center) ++n_groups;
    const double t = grouped_matmul_seconds(
        *layer, GroupingStrategy::kAdaptive, p, cost, Precision::kFP16);
    const double speedup = separate / t;
    auto it = best_by_groups.find(n_groups);
    if (it == best_by_groups.end() || speedup > it->second)
      best_by_groups[n_groups] = speedup;
  }
  // The separate end of the axis.
  const auto sep_groups = plan_groups(layer->map_sizes, true,
                                      GroupingStrategy::kSeparate,
                                      GroupParams{});
  best_by_groups[static_cast<int>(sep_groups.size()) - 1] = 1.0;

  std::printf("\n%8s %18s\n", "#groups", "speedup vs separate");
  double best = 0;
  int best_groups = 0;
  for (auto it = best_by_groups.rbegin(); it != best_by_groups.rend();
       ++it) {
    std::printf("%8d %12.2fx\n", it->first, it->second);
    if (it->second > best) {
      best = it->second;
      best_groups = it->first;
    }
  }
  std::printf("\npeak speedup %.2fx at %d groups (paper: ~1.5x around 6 "
              "groups; 1-group padding overhead erodes the gain)\n",
              best, best_groups);
  return 0;
}
