// Figure 8: memory transactions per feature row for scalar vs vectorized
// scatter/gather at each storage precision (C = 256 channels, as drawn in
// the paper's figure).
//
// Paper reference: FP32 scalar fully utilizes 128-byte transactions
// (8 warps cover c0..c255); FP16 scalar issues the SAME number of
// transactions at 50% utilization; FP16 vectorized (half2) restores 100%
// utilization with half the transactions.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "gpusim/coalesce.hpp"

using namespace ts;

int main() {
  bench::header("Figure 8: transaction coalescing",
                "paper Fig. 8 + §4.3.1 (incl. the INT8 diminishing-return "
                "argument)");

  struct Row {
    const char* name;
    Precision p;
    bool vec;
  };
  const Row rows[] = {
      {"FP32 scalar", Precision::kFP32, false},
      {"FP16 scalar", Precision::kFP16, false},
      {"FP16 vectorized (half2)", Precision::kFP16, true},
      {"INT8 scalar", Precision::kINT8, false},
      {"INT8 vectorized (char4)", Precision::kINT8, true},
  };

  for (std::size_t channels : {64u, 128u, 256u}) {
    std::printf("\nfeature row of %zu channels:\n", channels);
    std::printf("  %-26s %14s %13s\n", "access mode", "transactions",
                "utilization");
    for (const Row& r : rows) {
      std::printf("  %-26s %14zu %12.0f%%\n", r.name,
                  transactions_per_row(channels, r.p, r.vec),
                  transaction_utilization(r.p, r.vec) * 100);
    }
  }

  std::printf(
      "\npaper check (C=256): FP32 scalar = FP16 scalar transaction count "
      "(%zu == %zu), FP16 vectorized halves it (%zu)\n",
      transactions_per_row(256, Precision::kFP32, false),
      transactions_per_row(256, Precision::kFP16, false),
      transactions_per_row(256, Precision::kFP16, true));
  return 0;
}
