// Figure 22 (repo extension): multi-model serving under trace-driven
// traffic — a model-mix x trace-shape x fleet sweep over the registry
// server (ServerConfig::with_model + submit_to) fed by the deterministic
// arrival generators and SequenceTrace replays in serve/traffic.hpp.
//
// The scenario co-hosts a MinkUNet segmentation model and a CenterPoint
// detection model on one fleet and drives them with Poisson, bursty
// on/off, and diurnal-ramp arrival processes composed by
// build_traffic_mix. Per-model SLOs, deficit-round-robin fairness, and
// namespaced kernel-map caching are all exercised by the sweep; the
// coherent-vs-shuffled trace pair isolates what drive-order locality is
// worth to a capacity-bounded cache.
// Sanity anchors (nonzero exit on failure):
//   A1  a one-entry registry served through submit_to is bit-equal to
//       the legacy single-model server on the same arrival schedule
//   A2  DRR fairness bounds the per-model e2e p99 spread between two
//       symmetric-cost models under bursty overload, and a 4x DRR
//       weight buys the weighted model a no-worse p99
//   A3  the coherent (drive-order) trace beats the shuffled replay on
//       warm hit rate through the same capacity-bounded cache, at equal
//       request multiset
//   A4  per-model counts, cache accounting, and the aggregate timeline
//       are worker-invariant; per-model admission counts are
//       device-invariant
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "data/lidar.hpp"
#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "serve/server.hpp"
#include "serve/traffic.hpp"

using namespace ts;

namespace {

struct Cell {
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t rejected = 0;
  double e2e_p99_ms = 0;
  double mapping_ms = 0;
  double total_ms = 0;
  double hit_rate = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t lookups = 0;
  std::vector<serve::ModelStats> per_model;
  double wall_ms = 0;
};

Cell summarize(const serve::StreamReport& rep, double wall_seconds) {
  Cell c;
  c.completed = rep.stats.completed;
  c.failed = rep.stats.failed;
  c.rejected = rep.stats.rejected;
  c.e2e_p99_ms = rep.stats.e2e_p99_seconds * 1e3;
  c.mapping_ms = rep.stats.aggregate.stage_seconds(Stage::kMapping) * 1e3;
  c.total_ms = rep.stats.aggregate.total_seconds() * 1e3;
  c.hit_rate = rep.stats.map_cache.hit_rate();
  c.hits = rep.stats.map_cache.hits;
  c.misses = rep.stats.map_cache.misses;
  c.lookups = rep.stats.map_cache.lookups;
  c.per_model = rep.stats.per_model;
  c.wall_ms = wall_seconds * 1e3;
  return c;
}

/// Serves a composed traffic mix through a registry server. The mix's
/// stream index selects the input vector; stream_pos selects the frame.
Cell run_mix(serve::ServerConfig cfg,
             const std::vector<serve::TimedSubmission>& mix,
             const std::vector<const std::vector<SparseTensor>*>& inputs) {
  cfg.with_queue_depth(mix.size() + 1);
  cfg.run.borrow_input = true;  // queue owns the submitted copies
  serve::Server server(std::move(cfg));
  const bench::WallTimer wall;
  server.start();
  for (const serve::TimedSubmission& s : mix)
    server.submit_to(s.model, (*inputs[s.stream])[s.stream_pos],
                     s.arrival_seconds, s.priority);
  return summarize(server.drain(), wall.seconds());
}

bool close_rel(double a, double b, double rel) {
  return std::abs(a - b) <= rel * std::max(std::abs(a), std::abs(b));
}

/// Full modeled equality for A1: counts, cache accounting, timeline,
/// and the latency tail, to modeled-bit precision.
bool same_modeled(const Cell& a, const Cell& b) {
  return a.completed == b.completed && a.failed == b.failed &&
         a.rejected == b.rejected && a.hits == b.hits &&
         a.misses == b.misses &&
         close_rel(a.mapping_ms, b.mapping_ms, 1e-12) &&
         close_rel(a.total_ms, b.total_ms, 1e-12) &&
         close_rel(a.e2e_p99_ms, b.e2e_p99_ms, 1e-12);
}

/// The worker-invariant per-model subset: admission and cache counts.
/// Wait/e2e percentiles are deliberately excluded — `workers` is the
/// modeled lanes-per-device knob, so the latency schedule legitimately
/// rides on it (same contract the fig21/streaming suites pin).
bool same_model_accounting(const Cell& a, const Cell& b) {
  if (a.per_model.size() != b.per_model.size()) return false;
  for (std::size_t m = 0; m < a.per_model.size(); ++m) {
    const serve::ModelStats& x = a.per_model[m];
    const serve::ModelStats& y = b.per_model[m];
    if (x.model != y.model || x.completed != y.completed ||
        x.failed != y.failed || x.retries != y.retries ||
        x.rejected != y.rejected || x.cache_hits != y.cache_hits ||
        x.cache_lookups != y.cache_lookups)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::header(
      "Figure 22: multi-model serving under trace-driven traffic",
      "repo extension — MinkUNet + CenterPoint co-hosted on one fleet, "
      "driven by Poisson / bursty / diurnal traces with DRR fairness and "
      "namespaced kernel-map caching");
  bench::note(
      "arrival schedules come from serve/traffic.hpp generators (modeled "
      "clock, seeded) — every column below is deterministic except wall ms");

  const uint64_t seed = 20260808;
  const double scale = bench::env_scale(0.35);
  Workload seg = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                        0.5, 1, seed, scale,
                                        /*tune_sample_count=*/1);
  Workload det = make_centerpoint_workload("Waymo-CenterPoint (1f)", "Waymo",
                                           1, seed + 1, scale,
                                           /*tune_sample_count=*/1);

  // --- Sequence traces: each model replays its own synthetic drive. ---
  auto scaled = [&](LidarSpec lidar) {
    lidar.azimuth_steps =
        std::max(32, static_cast<int>(lidar.azimuth_steps * scale));
    return lidar;
  };
  serve::SequenceTraceSpec seg_trace;
  seg_trace.lidar = scaled(semantic_kitti_spec());
  seg_trace.voxels = segmentation_voxels();
  seg_trace.sequences = 2;
  seg_trace.frames_per_sequence = 4;
  seg_trace.revisits = 2;
  serve::SequenceTraceSpec det_trace = seg_trace;
  det_trace.lidar = scaled(waymo_spec(1));
  det_trace.voxels = detection_voxels();
  det_trace.voxels.feature_channels = 5;  // CenterPoint input width

  auto materialize = [&](const serve::SequenceTraceSpec& spec,
                         uint64_t trace_seed) {
    std::vector<SparseTensor> frames;
    const std::size_t n = serve::trace_length(spec);
    frames.reserve(n);
    for (std::size_t k = 0; k < n; ++k)
      frames.push_back(serve::trace_frame(spec, k, trace_seed).input);
    return frames;
  };
  const std::vector<SparseTensor> seg_frames = materialize(seg_trace, seed);
  const std::vector<SparseTensor> det_frames =
      materialize(det_trace, seed + 9);
  serve::SequenceTraceSpec seg_shuffled = seg_trace;
  seg_shuffled.shuffled = true;
  const std::vector<SparseTensor> seg_frames_shuffled =
      materialize(seg_shuffled, seed);
  const std::size_t per_model = seg_frames.size();
  std::printf("traces: %zu frames per model (%d seq x %d frames x %d "
              "revisits), ~%zu / ~%zu voxels per scan\n",
              per_model, seg_trace.sequences, seg_trace.frames_per_sequence,
              seg_trace.revisits, seg_frames[0].num_points(),
              det_frames[0].num_points());

  // --- Traffic shapes (rates sized against ~ms modeled service). ------
  serve::TrafficSpec poisson;
  poisson.process = serve::ArrivalProcess::kPoisson;
  poisson.rate_hz = 800.0;
  serve::TrafficSpec bursty;
  bursty.process = serve::ArrivalProcess::kBursty;
  bursty.rate_hz = 3000.0;
  bursty.on_seconds = 0.004;
  bursty.off_seconds = 0.008;
  serve::TrafficSpec diurnal;
  diurnal.process = serve::ArrivalProcess::kDiurnal;
  diurnal.rate_hz = 2000.0;
  diurnal.period_seconds = 0.05;
  diurnal.trough_fraction = 0.1;

  const std::size_t kBudget = std::size_t(256) << 20;
  auto base_cfg = [&](int workers, int devices) {
    serve::ServerConfig cfg;
    cfg.with_device(rtx2080ti())
        .with_engine(torchsparse_config())
        .with_workers(workers)
        .with_devices(devices)
        .with_route(serve::RoutePolicy::kCacheAffinity)
        .with_map_cache_bytes(kBudget);
    return cfg;
  };
  auto two_model_cfg = [&](int workers, int devices) {
    return base_cfg(workers, devices)
        .with_model("minkunet", seg.model)
        .with_model("centerpoint", det.model);
  };
  auto mix_for = [&](const serve::TrafficSpec& shape, bool with_det) {
    std::vector<serve::ModelTraffic> streams;
    serve::ModelTraffic s0;
    s0.model = 0;
    s0.arrivals = shape;
    s0.count = per_model;
    streams.push_back(s0);
    if (with_det) {
      serve::ModelTraffic s1;
      s1.model = 1;
      s1.arrivals = shape;
      s1.count = per_model;
      streams.push_back(s1);
    }
    return serve::build_traffic_mix(streams, seed + 21);
  };

  // --- A1: one-entry registry vs the legacy single-model server. ------
  const std::vector<double> solo_arrivals =
      serve::generate_arrivals(poisson, per_model, seed + 33);
  Cell solo_legacy, solo_registry;
  {
    serve::ServerConfig cfg = base_cfg(4, 2);
    cfg.with_queue_depth(per_model + 1);
    cfg.run.borrow_input = true;
    serve::Server server(std::move(cfg));
    const bench::WallTimer wall;
    server.start(seg.model);
    for (std::size_t i = 0; i < per_model; ++i)
      server.submit(seg_frames[i], solo_arrivals[i]);
    solo_legacy = summarize(server.drain(), wall.seconds());
  }
  {
    serve::ServerConfig cfg =
        base_cfg(4, 2).with_model("minkunet", seg.model);
    cfg.with_queue_depth(per_model + 1);
    cfg.run.borrow_input = true;
    serve::Server server(std::move(cfg));
    const bench::WallTimer wall;
    server.start();
    for (std::size_t i = 0; i < per_model; ++i)
      server.submit_to(0, seg_frames[i], solo_arrivals[i]);
    solo_registry = summarize(server.drain(), wall.seconds());
  }

  // --- Model-mix x trace-shape sweep (2 devices, 4 workers). ----------
  const std::vector<const std::vector<SparseTensor>*> solo_inputs{
      &seg_frames};
  const std::vector<const std::vector<SparseTensor>*> mixed_inputs{
      &seg_frames, &det_frames};
  const Cell solo_det = run_mix(
      base_cfg(4, 2).with_model("centerpoint", det.model),
      mix_for(poisson, false), {&det_frames});
  const Cell mixed_poisson =
      run_mix(two_model_cfg(4, 2), mix_for(poisson, true), mixed_inputs);
  const Cell mixed_bursty =
      run_mix(two_model_cfg(4, 2), mix_for(bursty, true), mixed_inputs);
  const Cell mixed_diurnal =
      run_mix(two_model_cfg(4, 2), mix_for(diurnal, true), mixed_inputs);

  // --- Fleet / worker variants of the diurnal mix (A4). ---------------
  const Cell diurnal_w1 =
      run_mix(two_model_cfg(1, 2), mix_for(diurnal, true), mixed_inputs);
  const Cell diurnal_d1 =
      run_mix(two_model_cfg(4, 1), mix_for(diurnal, true), mixed_inputs);

  // --- A2: DRR fairness under bursty overload. ------------------------
  // Two entries sharing one network (symmetric modeled cost) so any p99
  // spread is scheduling, not workload. Overload: single device, both
  // streams bursting at once.
  auto fairness_mix = mix_for(bursty, true);
  const std::vector<const std::vector<SparseTensor>*> fair_inputs{
      &seg_frames, &seg_frames};
  const Cell fair_equal = run_mix(
      base_cfg(4, 1)
          .with_model("seg-a", seg.model)
          .with_model("seg-b", seg.model),
      fairness_mix, fair_inputs);
  const Cell fair_weighted = run_mix(
      base_cfg(4, 1)
          .with_model("seg-a", seg.model, /*slo_budget_seconds=*/-1,
                      serve::Priority::kNormal, /*weight=*/4.0)
          .with_model("seg-b", seg.model),
      fairness_mix, fair_inputs);

  // --- A3: coherent vs shuffled trace through a bounded cache. --------
  // The cache holds only a slice of the trace's unique maps, so the
  // shuffled order (repeats maximally far apart) churns entries the
  // coherent order (repeats back to back) retains.
  const std::size_t kSmallBudget = std::size_t(2) << 20;
  auto trace_cfg = [&] {
    return base_cfg(4, 2)
        .with_model("minkunet", seg.model)
        .with_map_cache_bytes(kSmallBudget);
  };
  const Cell coherent =
      run_mix(trace_cfg(), mix_for(poisson, false), solo_inputs);
  const Cell shuffled = run_mix(trace_cfg(), mix_for(poisson, false),
                                {&seg_frames_shuffled});

  // --- Report. --------------------------------------------------------
  std::printf("\n%-22s %5s %5s %9s %9s %9s %9s %8s\n", "cell", "done",
              "rej", "e2e p99", "seg p99", "det p99", "hit rate",
              "wall ms");
  auto row = [](const char* name, const Cell& c) {
    const double seg_p99 =
        c.per_model.empty() ? 0 : c.per_model[0].e2e_p99_seconds * 1e3;
    const double det_p99 =
        c.per_model.size() < 2 ? 0 : c.per_model[1].e2e_p99_seconds * 1e3;
    std::printf("%-22s %5zu %5zu %9.3f %9.3f %9.3f %9.2f %8.1f\n", name,
                c.completed, c.rejected, c.e2e_p99_ms, seg_p99, det_p99,
                c.hit_rate, c.wall_ms);
  };
  row("solo seg (registry)", solo_registry);
  row("solo det (registry)", solo_det);
  row("mixed, poisson", mixed_poisson);
  row("mixed, bursty", mixed_bursty);
  row("mixed, diurnal", mixed_diurnal);
  row("mixed, diurnal, 1 dev", diurnal_d1);
  row("fair burst, w 1:1", fair_equal);
  row("fair burst, w 4:1", fair_weighted);
  row("coherent trace", coherent);
  row("shuffled trace", shuffled);

  const double fair_a = fair_equal.per_model[0].e2e_p99_seconds * 1e3;
  const double fair_b = fair_equal.per_model[1].e2e_p99_seconds * 1e3;
  const double spread =
      std::abs(fair_a - fair_b) / std::max(fair_a, fair_b);
  std::printf("fairness: equal-weight p99 %.3f / %.3f ms (spread %.1f%%), "
              "4:1 weight p99 %.3f / %.3f ms\n",
              fair_a, fair_b, spread * 100,
              fair_weighted.per_model[0].e2e_p99_seconds * 1e3,
              fair_weighted.per_model[1].e2e_p99_seconds * 1e3);

  bench::metric("fig22.solo_seg_e2e_p99_ms", solo_registry.e2e_p99_ms);
  bench::metric("fig22.mixed_poisson_e2e_p99_ms", mixed_poisson.e2e_p99_ms);
  bench::metric("fig22.mixed_bursty_e2e_p99_ms", mixed_bursty.e2e_p99_ms);
  bench::metric("fig22.mixed_diurnal_e2e_p99_ms", mixed_diurnal.e2e_p99_ms);
  bench::metric("fig22.mixed_diurnal_seg_p99_ms",
                mixed_diurnal.per_model[0].e2e_p99_seconds * 1e3);
  bench::metric("fig22.mixed_diurnal_det_p99_ms",
                mixed_diurnal.per_model[1].e2e_p99_seconds * 1e3);
  bench::metric("fig22.fairness_p99_spread_frac", spread);
  bench::metric("fig22.coherent_hit_rate", coherent.hit_rate);
  bench::metric("fig22.shuffled_hit_rate", shuffled.hit_rate);
  bench::metric("wall_fig22.mixed_diurnal_ms", mixed_diurnal.wall_ms);

  std::printf("\n--- sanity anchors ---\n");
  bool ok = true;
  auto anchor = [&](const char* name, bool pass) {
    std::printf("%-58s %s\n", name, pass ? "OK" : "FAIL");
    ok = ok && pass;
  };
  anchor("A1: one-entry registry bit-equal to legacy server",
         same_modeled(solo_legacy, solo_registry) &&
             solo_registry.per_model.size() == 1 &&
             solo_registry.per_model[0].completed == per_model);
  anchor("A2: DRR bounds p99 spread; 4x weight buys no-worse p99",
         spread <= 0.25 &&
             fair_weighted.per_model[0].e2e_p99_seconds <=
                 fair_weighted.per_model[1].e2e_p99_seconds &&
             fair_equal.completed == 2 * per_model);
  anchor("A3: coherent trace beats shuffled on warm hit rate",
         coherent.hit_rate > shuffled.hit_rate &&
             coherent.completed == shuffled.completed &&
             coherent.lookups == shuffled.lookups);
  anchor("A4: per-model accounting worker-invariant; admission "
         "device-invariant",
         same_model_accounting(mixed_diurnal, diurnal_w1) &&
             close_rel(mixed_diurnal.total_ms, diurnal_w1.total_ms, 1e-12) &&
             mixed_diurnal.hits == diurnal_w1.hits &&
             [&] {
               if (diurnal_d1.per_model.size() !=
                   mixed_diurnal.per_model.size())
                 return false;
               for (std::size_t m = 0; m < diurnal_d1.per_model.size(); ++m)
                 if (diurnal_d1.per_model[m].completed !=
                         mixed_diurnal.per_model[m].completed ||
                     diurnal_d1.per_model[m].failed !=
                         mixed_diurnal.per_model[m].failed ||
                     diurnal_d1.per_model[m].rejected !=
                         mixed_diurnal.per_model[m].rejected)
                   return false;
               return true;
             }());
  return ok ? 0 : 1;
}
