// Figure 4: runtime breakdown of the unoptimized baseline on a
// segmentation model (MinkUNet-1.0x, SemanticKITTI) and a detection model
// (CenterPoint-3f, Waymo).
//
// Paper reference values:
//   (a) Segmentation: Data Movement 44%, GEMM 47%, Mapping 5%, Misc 4%
//   (b) Detection:    Data Movement 43%, GEMM 23%, Mapping 15%,
//                     2D/NMS 12%, Misc 7%
#include <cstdio>

#include "bench/bench_util.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"

using namespace ts;

namespace {

void report(const std::string& name, const Timeline& t, double ref_mov,
            double ref_gemm, double ref_map, double ref_2d,
            double ref_misc) {
  const double total = t.total_seconds();
  const double mov = t.data_movement_seconds() / total * 100;
  const double gemm = t.stage_seconds(Stage::kMatMul) / total * 100;
  const double map = t.stage_seconds(Stage::kMapping) / total * 100;
  const double d2 = (t.stage_seconds(Stage::kDense2D) +
                     t.stage_seconds(Stage::kNMS)) /
                    total * 100;
  const double misc = t.stage_seconds(Stage::kMisc) / total * 100;
  std::printf("\n%s (total %.2f ms)\n", name.c_str(), total * 1e3);
  std::printf("  %-14s %9s %9s\n", "stage", "measured", "paper");
  std::printf("  %-14s %8.1f%% %8.1f%%\n", "Data Movement", mov, ref_mov);
  std::printf("  %-14s %8.1f%% %8.1f%%\n", "GEMM", gemm, ref_gemm);
  std::printf("  %-14s %8.1f%% %8.1f%%\n", "Mapping", map, ref_map);
  std::printf("  %-14s %8.1f%% %8.1f%%\n", "2D/NMS", d2, ref_2d);
  std::printf("  %-14s %8.1f%% %8.1f%%\n", "Misc", misc, ref_misc);
}

}  // namespace

int main() {
  bench::header("Figure 4: baseline runtime breakdown",
                "paper Fig. 4 (a) segmentation, (b) detection");
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig cfg = baseline_config();
  RunOptions opt;  // cost-only, full cache replay

  Workload seg = make_minkunet_workload("SK-MinkUNet (1.0x)",
                                        "SemanticKITTI", 1.0, 1, 4001, 1.0,
                                        1);
  std::printf("segmentation input: %zu voxels\n", seg.input.num_points());
  report("(a) " + seg.name, run_model(seg.model, seg.input, dev, cfg, opt),
         44, 47, 5, 0, 4);

  Workload det = make_centerpoint_workload("WM-CenterPoint (3f)", "Waymo",
                                           3, 4002, 1.0, 1);
  std::printf("\ndetection input: %zu voxels\n", det.input.num_points());
  report("(b) " + det.name, run_model(det.model, det.input, dev, cfg, opt),
         43, 23, 15, 12, 7);

  bench::note(
      "shares are modeled on synthetic scans; the paper's claim is the "
      "ordering: movement+GEMM dominate, mapping matters for detection");
  return 0;
}
