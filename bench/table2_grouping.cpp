// Table 2: matmul grouping ablation — achieved TFLOP/s and matmul latency
// speedup for separate / symmetric / fixed / adaptive grouping, on
// MinkUNet-0.5x @ SemanticKITTI and MinkUNet-3f @ nuScenes (RTX 2080Ti,
// FP16).
//
// Paper reference:
//            SemanticKITTI            nuScenes
//   separate  8.1 TFLOP/s (1.00x)     10.4 TFLOP/s (1.00x)
//   symmetric 8.2 TFLOP/s (1.02x)     14.6 TFLOP/s (1.39x)
//   fixed     8.7 TFLOP/s (0.87x)     21.1 TFLOP/s (1.50x)
//   adaptive 11.9 TFLOP/s (1.39x)     16.9 TFLOP/s (1.54x)
// Key shapes: adaptive wins latency on both; fixed has the best TFLOP/s
// on nuScenes yet loses to adaptive in latency (padding FLOPs); fixed is
// SLOWER than separate on SemanticKITTI.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"

using namespace ts;

namespace {

struct Result {
  double tflops = 0;
  double speedup = 0;
};

Result run_grouping(const Workload& w, GroupingStrategy strategy,
                    const DeviceSpec& dev, double separate_seconds) {
  EngineConfig cfg = torchsparse_config();
  cfg.grouping = strategy;
  RunOptions opt;
  opt.simulate_cache = false;  // matmul ablation: movement model not needed
  if (strategy == GroupingStrategy::kAdaptive)
    opt.tuned = tune_for(w.model, w.tune_samples, dev, cfg);
  const Timeline t = run_model(w.model, w.input, dev, cfg, opt);
  Result r;
  r.tflops = t.matmul_tflops();
  r.speedup = separate_seconds / t.stage_seconds(Stage::kMatMul);
  return r;
}

}  // namespace

int main() {
  bench::header("Table 2: matmul grouping ablation",
                "paper Table 2 (RTX 2080Ti, FP16)");
  const DeviceSpec dev = rtx2080ti();

  Workload sk = make_minkunet_workload("SK-MinkUNet (0.5x)",
                                       "SemanticKITTI", 0.5, 1, 2001, 1.0,
                                       2);
  Workload ns = make_minkunet_workload("NS-MinkUNet (3f)", "nuScenes", 1.0,
                                       3, 2002, 1.0, 2);

  struct Row {
    const char* name;
    GroupingStrategy strategy;
    double paper_sk_tf, paper_sk_sp, paper_ns_tf, paper_ns_sp;
  };
  const Row rows[] = {
      {"separate", GroupingStrategy::kSeparate, 8.1, 1.00, 10.4, 1.00},
      {"symmetric", GroupingStrategy::kSymmetric, 8.2, 1.02, 14.6, 1.39},
      {"fixed", GroupingStrategy::kFixed, 8.7, 0.87, 21.1, 1.50},
      {"adaptive", GroupingStrategy::kAdaptive, 11.9, 1.39, 16.9, 1.54},
  };

  // Baselines (separate matmul) per workload.
  EngineConfig sep_cfg = torchsparse_config();
  sep_cfg.grouping = GroupingStrategy::kSeparate;
  RunOptions fast;
  fast.simulate_cache = false;
  const double sk_sep =
      run_model(sk.model, sk.input, dev, sep_cfg, fast)
          .stage_seconds(Stage::kMatMul);
  const double ns_sep =
      run_model(ns.model, ns.input, dev, sep_cfg, fast)
          .stage_seconds(Stage::kMatMul);

  std::printf("\n%-10s | %-28s | %-28s\n", "", "SemanticKITTI (0.5x)",
              "nuScenes (3f)");
  std::printf("%-10s | %9s %9s %7s | %9s %9s %7s\n", "method", "TFLOP/s",
              "speedup", "paper", "TFLOP/s", "speedup", "paper");
  for (const Row& row : rows) {
    const Result rs = run_grouping(sk, row.strategy, dev, sk_sep);
    const Result rn = run_grouping(ns, row.strategy, dev, ns_sep);
    std::printf("%-10s | %8.1f %8.2fx %6.2fx | %8.1f %8.2fx %6.2fx\n",
                row.name, rs.tflops, rs.speedup, row.paper_sk_sp, rn.tflops,
                rn.speedup, row.paper_ns_sp);
  }
  bench::note(
      "TFLOP/s counts executed FLOPs incl. padding, so TFLOP/s and "
      "speedup are non-proportional (the paper makes the same point "
      "about the fixed strategy)");
  return 0;
}
