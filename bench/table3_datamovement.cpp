// Table 3: speedup breakdown of the data-movement optimizations on
// MinkUNet (1.0x) / SemanticKITTI — gather (G), scatter (S), and combined
// (SG) speedups over the FP32 scalar weight-stationary baseline.
//
// Paper reference rows (FP16 / Vectorized / Fused / Locality-aware):
//   baseline          G 1.00  S 1.00  SG 1.00
//   FP16 only         G 1.17  S 1.48  SG 1.32
//   +vectorized       G 1.91  S 1.95  SG 1.93
//   +fused            G 1.91  S 2.12  SG 2.02
//   +locality-aware   G 2.86  S 2.61  SG 2.72
// Plus §4.3.1: INT8 offers diminishing returns (scatter stays 16-bit).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"

using namespace ts;

namespace {

struct Variant {
  const char* name;
  Precision precision;
  bool vectorized, fused, locality;
  double paper_g, paper_s, paper_sg;  // reference values (0 = n/a)
};

}  // namespace

int main() {
  bench::header("Table 3: data movement optimization breakdown",
                "paper Table 3 + §4.3.1 INT8 analysis");

  Workload w = make_minkunet_workload("SK-MinkUNet (1.0x)", "SemanticKITTI",
                                      1.0, 1, 3001, 1.0, 1);
  std::printf("input: %zu voxels\n", w.input.num_points());
  const DeviceSpec dev = rtx2080ti();

  const Variant variants[] = {
      {"FP32 scalar baseline", Precision::kFP32, false, false, false, 1.00,
       1.00, 1.00},
      {"FP16 scalar", Precision::kFP16, false, false, false, 1.17, 1.48,
       1.32},
      {"FP16 + vectorized", Precision::kFP16, true, false, false, 1.91,
       1.95, 1.93},
      {"FP16 + vec + fused", Precision::kFP16, true, true, false, 1.91,
       2.12, 2.02},
      {"FP16 + vec + fused + locality", Precision::kFP16, true, true, true,
       2.86, 2.61, 2.72},
      {"INT8 + vec + fused + locality", Precision::kINT8, true, true, true,
       0, 0, 0},
  };

  double g0 = 0, s0 = 0;
  std::printf("\n%-32s %9s %9s %9s   %s\n", "configuration", "G", "S", "SG",
              "(paper G/S/SG)");
  for (const Variant& v : variants) {
    EngineConfig cfg = baseline_config();
    cfg.precision = v.precision;
    cfg.vectorized = v.vectorized;
    cfg.fused_gather_scatter = v.fused;
    cfg.locality_aware = v.locality;
    cfg.skip_center_movement = true;  // identical across rows
    const Timeline t = run_model(w.model, w.input, dev, cfg);
    const double g = t.stage_seconds(Stage::kGather);
    const double s = t.stage_seconds(Stage::kScatter);
    if (g0 == 0) {
      g0 = g;
      s0 = s;
    }
    std::printf("%-32s %8.2fx %8.2fx %8.2fx", v.name, g0 / g, s0 / s,
                (g0 + s0) / (g + s));
    if (v.paper_sg > 0)
      std::printf("   (%.2f / %.2f / %.2f)", v.paper_g, v.paper_s,
                  v.paper_sg);
    std::printf("\n");
  }

  bench::note(
      "INT8 row: gather improves but scatter is unchanged (16-bit "
      "alignment requirement), so the overall gain over FP16 is small — "
      "the paper's diminishing-return argument");
  return 0;
}
