// Figure 17 (repo extension): multi-device sharded serving sweep —
// device count x routing policy x duplicate fraction on a streaming
// MinkUNet serve with per-device modeled kernel-map caches.
//
// Sharding is where serving outgrows the paper's single-device engine;
// Tangram-style affinity placement (PAPERS.md) says the win is routing
// work to the device that already holds the warm state. Here the warm
// state is the per-device KernelMapCache, its content digests make the
// affinity signal exact, and the modeled clock makes every number
// deterministic. Sanity anchors pin the contract:
//   A1  1 device => every routing policy is bit-identical to the
//       unsharded serve path (modeled mapping/total/hit-rate/fps)
//   A2  cache_affinity beats round_robin's warm hit-rate strictly on a
//       >= 50%-duplicate stream at 2 and 4 devices
//   A3  modeled stats identical for 1 vs 4 workers per device, at every
//       device count (routing never reads lane state)
//   A4  cache off => aggregate modeled compute invariant to device count
//       (sharding is pure scheduling)
//   A5  2 devices (least_loaded, cache off) do not throughput-regress a
//       single device on the same stream
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "serve/batch_runner.hpp"
#include "serve/device_group.hpp"
#include "serve/request_queue.hpp"

using namespace ts;

namespace {

struct Cell {
  double mapping_ms = 0;
  double total_ms = 0;
  double hit_rate = 0;
  double fps = 0;
  double makespan_ms = 0;
  double util_min = 0, util_max = 0;
  double wall_ms = 0;
};

Cell run_cell(const Workload& w, const std::vector<SparseTensor>& stream,
              int devices, serve::RoutePolicy policy, int workers,
              std::size_t budget) {
  serve::BatchOptions opt;
  opt.workers = workers;
  opt.map_cache_bytes = budget;
  opt.run.borrow_input = true;  // queue owns the stream copies
  const serve::BatchRunner runner(rtx2080ti(), torchsparse_config(), opt);
  serve::RequestQueue queue({/*max_depth=*/stream.size() + 1});
  const bench::WallTimer wall;
  // Arrivals outrun one device's capacity (0.5 ms gap vs multi-ms
  // service), so the sweep measures sharding under overload — the regime
  // where device count is the capacity knob.
  for (std::size_t i = 0; i < stream.size(); ++i)
    queue.submit(stream[i], 0.0005 * static_cast<double>(i));
  queue.close();
  serve::StreamOptions sopt;
  sopt.batcher.policy = serve::BatchPolicy::kImmediate;
  sopt.batch_overhead_seconds = 0.0005;
  sopt.shard.devices = devices;
  sopt.shard.route = policy;
  const serve::StreamReport rep = runner.serve(w.model, queue, sopt);
  Cell c;
  c.mapping_ms = rep.stats.aggregate.stage_seconds(Stage::kMapping) * 1e3;
  c.total_ms = rep.stats.aggregate.total_seconds() * 1e3;
  c.hit_rate = rep.stats.map_cache.hit_rate();
  c.fps = rep.stats.throughput_fps;
  c.makespan_ms = rep.stats.makespan_seconds * 1e3;
  c.util_min = 1.0;
  c.util_max = 0.0;
  for (const serve::DeviceShardStats& d : rep.stats.per_device) {
    c.util_min = std::min(c.util_min, d.utilization);
    c.util_max = std::max(c.util_max, d.utilization);
  }
  c.wall_ms = wall.seconds() * 1e3;
  return c;
}

bool close_rel(double a, double b, double rel) {
  return std::abs(a - b) <= rel * std::max(std::abs(a), std::abs(b));
}

bool bit_equal_cell(const Cell& a, const Cell& b) {
  return close_rel(a.mapping_ms, b.mapping_ms, 1e-12) &&
         close_rel(a.total_ms, b.total_ms, 1e-12) &&
         a.hit_rate == b.hit_rate && close_rel(a.fps, b.fps, 1e-12);
}

/// The worker-invariant slice of a cell: accounting stats (aggregate
/// compute, cache outcome) — not placement stats (fps/makespan), which
/// legitimately improve with more lanes.
bool accounting_equal_cell(const Cell& a, const Cell& b) {
  return close_rel(a.mapping_ms, b.mapping_ms, 1e-12) &&
         close_rel(a.total_ms, b.total_ms, 1e-12) && a.hit_rate == b.hit_rate;
}

}  // namespace

int main() {
  bench::header(
      "Figure 17: multi-device sharded serving",
      "repo extension — devices x routing policy x duplicate fraction on "
      "streaming MinkUNet serve with per-device kernel-map caches");
  bench::note(
      "mapping/total/hit-rate/fps/makespan/util are modeled and "
      "deterministic (submission-order per-device accounting); wall ms "
      "is host time");

  const uint64_t seed = 20260730;
  const double scale = bench::env_scale(0.35);
  Workload w = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                      0.5, 1, seed, scale,
                                      /*tune_sample_count=*/1);

  LidarSpec lidar = semantic_kitti_spec();
  lidar.azimuth_steps =
      std::max(32, static_cast<int>(lidar.azimuth_steps * scale));
  const int requests = 16;
  std::vector<SparseTensor> unique_scans;
  for (int i = 0; i < requests; ++i)
    unique_scans.push_back(make_input(lidar, segmentation_voxels(),
                                      seed + 7 + static_cast<uint64_t>(i)));
  std::printf("stream: %d requests, ~%zu voxels each\n", requests,
              unique_scans[0].num_points());

  // dup-fraction d => ceil((1-d)*R) distinct scans, duplicates adjacent
  // (u0 u0 u1 u1 ...) — the layout where blind round-robin splits every
  // duplicate pair across devices and affinity routing matters most.
  auto make_stream = [&](double dup) {
    const int n_unique = std::max(
        1, static_cast<int>(std::lround((1.0 - dup) * requests)));
    std::vector<SparseTensor> stream;
    for (int i = 0; i < requests; ++i) {
      const int u = std::min(i * n_unique / requests, n_unique - 1);
      stream.push_back(unique_scans[static_cast<std::size_t>(u)]);
    }
    return stream;
  };

  const std::size_t kBudget = std::size_t(256) << 20;  // per device
  const double dups[] = {0.0, 0.5, 1.0};
  const int device_counts[] = {1, 2, 4};
  const serve::RoutePolicy policies[] = {serve::RoutePolicy::kRoundRobin,
                                         serve::RoutePolicy::kLeastLoaded,
                                         serve::RoutePolicy::kCacheAffinity};

  std::printf("\n%-5s %-4s %-15s %9s %9s %9s %8s %9s %11s %8s\n", "dup",
              "dev", "policy", "map ms", "total ms", "hit rate", "fps",
              "mkspn ms", "util rng", "wall ms");
  Cell cells[3][3][3];  // [dup][devices][policy]
  for (std::size_t di = 0; di < 3; ++di) {
    const auto stream = make_stream(dups[di]);
    for (std::size_t ni = 0; ni < 3; ++ni) {
      for (std::size_t pi = 0; pi < 3; ++pi) {
        const Cell c = run_cell(w, stream, device_counts[ni], policies[pi],
                                /*workers=*/2, kBudget);
        cells[di][ni][pi] = c;
        std::printf(
            "%-5.2f %-4d %-15s %9.3f %9.3f %9.2f %8.1f %9.2f %5.2f-%-5.2f "
            "%8.1f\n",
            dups[di], device_counts[ni], to_string(policies[pi]),
            c.mapping_ms, c.total_ms, c.hit_rate, c.fps, c.makespan_ms,
            c.util_min, c.util_max, c.wall_ms);
      }
    }
  }

  // Worker-invariance cells (dup 0.5, cache_affinity, w1 vs w4).
  Cell w1[3], w4[3];
  {
    const auto stream = make_stream(0.5);
    for (std::size_t ni = 0; ni < 3; ++ni) {
      w1[ni] = run_cell(w, stream, device_counts[ni],
                        serve::RoutePolicy::kCacheAffinity, 1, kBudget);
      w4[ni] = run_cell(w, stream, device_counts[ni],
                        serve::RoutePolicy::kCacheAffinity, 4, kBudget);
    }
  }

  // Cache-off cells (dup 0, least_loaded) across device counts.
  Cell off[3];
  {
    const auto stream = make_stream(0.0);
    for (std::size_t ni = 0; ni < 3; ++ni)
      off[ni] = run_cell(w, stream, device_counts[ni],
                         serve::RoutePolicy::kLeastLoaded, 2, 0);
  }

  const std::size_t RR = 0, LL = 1, AFF = 2;  // policy indexes
  bench::metric("fig17.n1_total_ms", cells[1][0][AFF].total_ms);
  bench::metric("fig17.dup50_n2_hit_rate_rr", cells[1][1][RR].hit_rate);
  bench::metric("fig17.dup50_n2_hit_rate_aff", cells[1][1][AFF].hit_rate);
  bench::metric("fig17.dup50_n2_mapping_ms_aff",
                cells[1][1][AFF].mapping_ms);
  bench::metric("fig17.dup100_n4_hit_rate_aff", cells[2][2][AFF].hit_rate);
  bench::metric("fig17.n2_ll_speedup_x",
                off[0].makespan_ms / off[1].makespan_ms);
  bench::metric("fig17.n4_ll_speedup_x",
                off[0].makespan_ms / off[2].makespan_ms);
  bench::metric("wall_fig17.dup50_n2_aff_ms", cells[1][1][AFF].wall_ms);

  std::printf("\n--- sanity anchors ---\n");
  bool ok = true;
  auto anchor = [&](const char* name, bool pass) {
    std::printf("%-66s %s\n", name, pass ? "OK" : "FAIL");
    ok = ok && pass;
  };
  bool a1 = true;
  for (std::size_t di = 0; di < 3; ++di)
    for (std::size_t pi = 1; pi < 3; ++pi)
      a1 = a1 && bit_equal_cell(cells[di][0][pi], cells[di][0][0]);
  anchor("A1: 1 device — every policy bit-equal to unsharded serve", a1);
  anchor("A2: affinity > round_robin warm hit-rate (dup>=50%, N=2 and 4)",
         cells[1][1][AFF].hit_rate > cells[1][1][RR].hit_rate &&
             cells[1][2][AFF].hit_rate > cells[1][2][RR].hit_rate &&
             cells[2][1][AFF].hit_rate > cells[2][1][RR].hit_rate);
  bool a3 = true;
  for (std::size_t ni = 0; ni < 3; ++ni)
    a3 = a3 && accounting_equal_cell(w1[ni], w4[ni]);
  anchor("A3: modeled stats worker-invariant (w1 == w4, every N)", a3);
  anchor("A4: cache off — aggregate compute invariant to device count",
         close_rel(off[0].total_ms, off[1].total_ms, 1e-12) &&
             close_rel(off[0].total_ms, off[2].total_ms, 1e-12));
  anchor("A5: 2 devices don't throughput-regress 1 (least_loaded, off)",
         off[1].makespan_ms <= off[0].makespan_ms * (1.0 + 1e-9));
  return ok ? 0 : 1;
}
