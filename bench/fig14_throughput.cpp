// Serving throughput sweep (extends the paper's Fig. 14 absolute-FPS view
// to the batched serving runtime): batch size x worker count x engine
// preset on the MinkUNet segmentation workload.
//
// Per-request timelines are independent of how the batch is scheduled, so
// each engine measures its 16 scans once (through BatchRunner's worker
// pool) and the (batch, workers) grid is then swept over deterministic
// earliest-available-worker schedules of those timelines. Sanity anchor
// checked at the end: on the MinkUNet preset, 4 workers must deliver
// > 1.5x the throughput of 1 worker.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "serve/batch_runner.hpp"
#include "serve/tuned_param_store.hpp"

using namespace ts;

int main() {
  bench::header("Serving throughput: batch x workers x engine",
                "extends paper Fig. 14 (absolute FPS) to the batched "
                "concurrent serving runtime");
  bench::note(
      "throughput/latency come from the modeled deterministic schedule "
      "(earliest-available worker), so results are machine-independent");

  const uint64_t seed = 20260730;
  // Shrinks the synthetic scans; trends transfer. TS_BENCH_SCALE shrinks
  // further for the CI preset.
  const double scale = bench::env_scale(0.25);
  Workload w = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                      0.5, 1, seed, scale,
                                      /*tune_sample_count=*/2);
  const DeviceSpec dev = rtx2080ti();

  // Batch of distinct scans (the workload's lidar spec, fresh seeds).
  LidarSpec lidar = semantic_kitti_spec();
  lidar.azimuth_steps = std::max(
      32, static_cast<int>(lidar.azimuth_steps * scale));
  const int max_batch = 16;
  std::vector<SparseTensor> scans;
  for (int i = 0; i < max_batch; ++i)
    scans.push_back(make_input(lidar, segmentation_voxels(),
                               seed + 100 + static_cast<uint64_t>(i)));

  const std::vector<int> batch_sizes = {1, 4, 8, 16};
  const std::vector<int> worker_counts = {1, 2, 4, 8};
  serve::TunedParamStore store;
  const bench::WallTimer total_wall;

  double mink_fps_w1 = 0, mink_fps_w4 = 0;
  for (const EngineConfig& cfg : paper_engines()) {
    serve::BatchOptions opt;
    opt.workers = 8;  // thread pool for measurement wall time only
    if (cfg.grouping == GroupingStrategy::kAdaptive)
      opt.run.tuned =
          store.get_or_tune(serve::tuned_key(w.name, dev, cfg), w.model,
                            w.tune_samples, dev, cfg);
    const serve::BatchRunner runner(dev, cfg, opt);
    const serve::BatchReport measured = runner.run(w.model, scans);

    std::printf("\n=== %s on %s ===\n", cfg.name.c_str(), dev.name.c_str());
    std::printf("%-8s", "batch");
    for (int workers : worker_counts)
      std::printf("   w=%d fps (p99 ms)", workers);
    std::printf("\n");

    for (int batch : batch_sizes) {
      std::vector<serve::RequestResult> subset(
          measured.requests.begin(), measured.requests.begin() + batch);
      std::printf("%-8d", batch);
      for (int workers : worker_counts) {
        const serve::BatchStats s = serve::schedule_stats(subset, workers);
        std::printf("   %8.1f (%5.1f)", s.throughput_fps,
                    s.latency_p99_seconds * 1e3);
        if (cfg.name == "TorchSparse" && batch == 16) {
          if (workers == 1) mink_fps_w1 = s.throughput_fps;
          if (workers == 4) mink_fps_w4 = s.throughput_fps;
        }
      }
      std::printf("\n");
    }
  }

  std::printf("\n--- sanity anchors ---\n");
  std::printf(
      "TorchSparse MinkUNet, batch 16: %.1f fps @1 worker -> %.1f fps "
      "@4 workers (%.2fx, required > 1.5x): %s\n",
      mink_fps_w1, mink_fps_w4, mink_fps_w4 / mink_fps_w1,
      mink_fps_w4 > 1.5 * mink_fps_w1 ? "OK" : "FAIL");
  bench::metric("fig14.torchsparse_b16_w1_fps", mink_fps_w1);
  bench::metric("fig14.torchsparse_b16_w4_fps", mink_fps_w4);
  bench::metric("fig14.worker_scaling_x", mink_fps_w4 / mink_fps_w1);
  bench::metric("wall_fig14.total_seconds", total_wall.seconds());
  std::printf("tuning runs shared via TunedParamStore: %zu (one per "
              "adaptive-grouping engine)\n",
              store.compute_count());
  return mink_fps_w4 > 1.5 * mink_fps_w1 ? 0 : 1;
}
