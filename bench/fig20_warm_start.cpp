// Figure 20 (repo extension): warm-start serving — KernelMapCache
// snapshots across server restarts, and duplicate-aware batch formation
// on duplicate-heavy streams.
//
// The paper's map-construction bottleneck makes the kernel-map cache the
// serving state most worth keeping alive: this sweep measures (a) a
// restarted server warm-started from a .tsmc snapshot of its previous
// life's cache against the same server restarting cold, and (b) the
// DedupBatchingPolicy against the default SLO policy on a 50%-duplicate
// stream whose duplicate runs straddle the SLO policy's batch
// boundaries. Sanity anchors (nonzero exit on failure):
//   A1  warm restart => 0 modeled cold builds (hit rate 1.0) while the
//       cold restart pays the full first-occurrence ramp
//   A2  50% duplicates => dedup batching strictly fewer cold builds
//       than the SLO policy under cache-affinity routing
//   A3  0% duplicates => dedup batching bit-equal to the SLO policy
//       (same batches, same modeled stats)
//   A4  warm-started modeled stats worker-invariant (w1 == w4)
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "bench/bench_util.hpp"
#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "io/serialize.hpp"
#include "serve/server.hpp"

using namespace ts;

namespace {

struct Cell {
  double mapping_ms = 0;
  double total_ms = 0;
  double hit_rate = 0;
  std::size_t misses = 0;
  std::size_t batches = 0;
  double wall_ms = 0;
};

Cell run_cell(const Workload& w, const std::vector<SparseTensor>& stream,
              serve::ServerConfig cfg) {
  cfg.with_queue_depth(stream.size() + 1);
  cfg.run.borrow_input = true;  // queue owns the stream copies
  serve::Server server(std::move(cfg));
  const bench::WallTimer wall;
  server.start(w.model);
  for (std::size_t i = 0; i < stream.size(); ++i)
    server.submit(stream[i], 0.002 * static_cast<double>(i));
  const serve::StreamReport rep = server.drain();
  Cell c;
  c.mapping_ms = rep.stats.aggregate.stage_seconds(Stage::kMapping) * 1e3;
  c.total_ms = rep.stats.aggregate.total_seconds() * 1e3;
  c.hit_rate = rep.stats.map_cache.hit_rate();
  c.misses = rep.stats.map_cache.misses;
  c.batches = rep.stats.batches;
  c.wall_ms = wall.seconds() * 1e3;
  return c;
}

bool close_rel(double a, double b, double rel) {
  return std::abs(a - b) <= rel * std::max(std::abs(a), std::abs(b));
}

}  // namespace

int main() {
  bench::header(
      "Figure 20: warm-start serving",
      "repo extension — cache snapshots across restarts + duplicate-aware "
      "batch formation on a streaming MinkUNet serve");
  bench::note(
      "modeled columns are deterministic (snapshot-seeded submission-order "
      "cache accounting); wall ms is host time");

  const uint64_t seed = 20260808;
  const double scale = bench::env_scale(0.35);
  Workload w = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                      0.5, 1, seed, scale,
                                      /*tune_sample_count=*/1);

  LidarSpec lidar = semantic_kitti_spec();
  lidar.azimuth_steps =
      std::max(32, static_cast<int>(lidar.azimuth_steps * scale));
  const int requests = 16;
  const int n_unique = 8;
  std::vector<SparseTensor> unique_scans;
  for (int i = 0; i < n_unique; ++i)
    unique_scans.push_back(make_input(lidar, segmentation_voxels(),
                                      seed + 7 + static_cast<uint64_t>(i)));
  std::printf("stream: %d requests over %d unique scans, ~%zu voxels each\n",
              requests, n_unique, unique_scans[0].num_points());

  const std::size_t kBudget = std::size_t(256) << 20;
  auto base_cfg = [&](int workers) {
    serve::ServerConfig cfg;
    cfg.with_device(rtx2080ti())
        .with_engine(torchsparse_config())
        .with_workers(workers)
        .with_map_cache_bytes(kBudget);
    return cfg;
  };

  // --- Part 1: snapshot warm start across a server restart. -----------
  // First life: serve 16 requests cycling all 8 unique scans twice, then
  // snapshot the server's cache. Restarted lives replay the same stream
  // cold vs warm-started from that snapshot.
  std::vector<SparseTensor> cycle_stream;
  for (int i = 0; i < requests; ++i)
    cycle_stream.push_back(
        unique_scans[static_cast<std::size_t>(i % n_unique)]);

  std::shared_ptr<const MapCacheSnapshot> snapshot;
  Cell first_life;
  {
    serve::ServerConfig cfg = base_cfg(4);
    cfg.with_queue_depth(cycle_stream.size() + 1);
    cfg.run.borrow_input = true;
    serve::Server server(std::move(cfg));
    server.start(w.model);
    for (std::size_t i = 0; i < cycle_stream.size(); ++i)
      server.submit(cycle_stream[i], 0.002 * static_cast<double>(i));
    const serve::StreamReport rep = server.drain();
    first_life.hit_rate = rep.stats.map_cache.hit_rate();
    first_life.misses = rep.stats.map_cache.misses;
    // The restart hand-off: serialize the wall cache, load it back as the
    // next life's warm-start manifest (round-trips the .tsmc format).
    std::stringstream image;
    server.map_cache()->save_snapshot(image);
    snapshot = std::make_shared<const MapCacheSnapshot>(
        io::load_map_cache(image));
  }

  const Cell cold_restart = run_cell(w, cycle_stream, base_cfg(4));
  const Cell warm_restart =
      run_cell(w, cycle_stream, base_cfg(4).with_warm_snapshot(snapshot));
  const Cell warm_restart_w1 =
      run_cell(w, cycle_stream, base_cfg(1).with_warm_snapshot(snapshot));

  std::printf("\n%-22s %10s %10s %9s %8s %9s\n", "restart", "map ms",
              "total ms", "hit rate", "misses", "wall ms");
  auto row = [](const char* name, const Cell& c) {
    std::printf("%-22s %10.3f %10.3f %9.2f %8zu %9.1f\n", name, c.mapping_ms,
                c.total_ms, c.hit_rate, c.misses, c.wall_ms);
  };
  row("cold (no snapshot)", cold_restart);
  row("warm (snapshot)", warm_restart);
  row("warm, 1 worker", warm_restart_w1);

  // --- Part 2: duplicate-aware batch formation. -----------------------
  // 50%-duplicate stream whose runs of two straddle the SLO policy's
  // cap-4 batch boundaries ([a,b,b,c,c,d,d,...]): the SLO policy splits
  // duplicate pairs across batches — and under round-robin routing
  // across *devices*, so each split pair pays its cold map build twice.
  // Dedup batching keeps each digest group in one dispatch, bounding the
  // digest spread across the fleet. (Cache-affinity routing can already
  // reconsolidate straddlers through owner lookups; round-robin is the
  // placement-blind baseline where batch formation alone must do it.)
  std::vector<SparseTensor> straddle_stream;
  for (int i = 0; i < requests; ++i)
    straddle_stream.push_back(
        unique_scans[static_cast<std::size_t>((i + 1) / 2 % n_unique)]);

  auto dup_cfg = [&](bool dedup) {
    serve::ServerConfig cfg = base_cfg(2);
    serve::BatcherOptions b;
    b.policy = serve::BatchPolicy::kSloAware;
    b.max_batch = 4;
    b.slo_budget_seconds = 0.020;
    cfg.with_batcher(b)
        .with_devices(2)
        .with_route(serve::RoutePolicy::kRoundRobin)
        .with_dedup_batching(dedup);
    return cfg;
  };
  const Cell slo_dup = run_cell(w, straddle_stream, dup_cfg(false));
  const Cell dedup_dup = run_cell(w, straddle_stream, dup_cfg(true));
  // 0% duplicates: every digest unique, dedup must be bit-equal to slo.
  std::vector<SparseTensor> unique_stream(unique_scans.begin(),
                                          unique_scans.end());
  const Cell slo_uniq = run_cell(w, unique_stream, dup_cfg(false));
  const Cell dedup_uniq = run_cell(w, unique_stream, dup_cfg(true));

  std::printf("\n%-22s %10s %10s %9s %8s %8s\n", "batching", "map ms",
              "total ms", "hit rate", "misses", "batches");
  auto row2 = [](const char* name, const Cell& c) {
    std::printf("%-22s %10.3f %10.3f %9.2f %8zu %8zu\n", name, c.mapping_ms,
                c.total_ms, c.hit_rate, c.misses, c.batches);
  };
  row2("slo, 50% dup", slo_dup);
  row2("dedup, 50% dup", dedup_dup);
  row2("slo, 0% dup", slo_uniq);
  row2("dedup, 0% dup", dedup_uniq);

  bench::metric("fig20.cold_restart_misses",
                static_cast<double>(cold_restart.misses));
  bench::metric("fig20.warm_restart_misses",
                static_cast<double>(warm_restart.misses));
  bench::metric("fig20.warm_restart_hit_rate", warm_restart.hit_rate);
  bench::metric("fig20.warm_restart_mapping_ms", warm_restart.mapping_ms);
  bench::metric("fig20.slo_dup50_misses",
                static_cast<double>(slo_dup.misses));
  bench::metric("fig20.dedup_dup50_misses",
                static_cast<double>(dedup_dup.misses));
  bench::metric("fig20.dedup_dup50_mapping_ms", dedup_dup.mapping_ms);
  bench::metric("wall_fig20.warm_restart_ms", warm_restart.wall_ms);
  bench::metric("wall_fig20.cold_restart_ms", cold_restart.wall_ms);

  std::printf("\n--- sanity anchors ---\n");
  bool ok = true;
  auto anchor = [&](const char* name, bool pass) {
    std::printf("%-58s %s\n", name, pass ? "OK" : "FAIL");
    ok = ok && pass;
  };
  anchor("A1: warm restart — 0 cold builds; cold pays the ramp",
         warm_restart.misses == 0 && warm_restart.hit_rate == 1.0 &&
             cold_restart.misses > 0 &&
             warm_restart.mapping_ms < cold_restart.mapping_ms);
  anchor("A2: 50% dup — dedup strictly fewer cold builds than slo",
         dedup_dup.misses < slo_dup.misses);
  anchor("A3: 0% dup — dedup bit-equal to slo",
         dedup_uniq.batches == slo_uniq.batches &&
             dedup_uniq.misses == slo_uniq.misses &&
             close_rel(dedup_uniq.mapping_ms, slo_uniq.mapping_ms, 1e-12) &&
             close_rel(dedup_uniq.total_ms, slo_uniq.total_ms, 1e-12));
  anchor("A4: warm-started modeled stats worker-invariant (w1 == w4)",
         warm_restart_w1.misses == warm_restart.misses &&
             close_rel(warm_restart_w1.mapping_ms, warm_restart.mapping_ms,
                       1e-12) &&
             close_rel(warm_restart_w1.total_ms, warm_restart.total_ms,
                       1e-12));
  return ok ? 0 : 1;
}
