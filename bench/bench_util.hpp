// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace ts::bench {

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += std::log(x);
  return std::exp(s / static_cast<double>(xs.size()));
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("============================================================\n");
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

}  // namespace ts::bench
