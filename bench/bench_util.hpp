// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace ts::bench {

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += std::log(x);
  return std::exp(s / static_cast<double>(xs.size()));
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("============================================================\n");
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

/// Machine-readable metric line ("@metric <name> <value>") consumed by
/// scripts/bench_report.py. Modeled metrics are deterministic, so the CI
/// regression gate compares them against a checked-in baseline; wall_*
/// metrics are recorded for trend inspection but never gated.
inline void metric(const std::string& name, double value) {
  std::printf("@metric %s %.17g\n", name.c_str(), value);
}

/// Workload scale override for CI presets: TS_BENCH_SCALE multiplies the
/// bench's default synthetic-scan scale (clamped to (0, 1]).
inline double env_scale(double default_scale) {
  if (const char* s = std::getenv("TS_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0 && v <= 1.0) return default_scale * v;
  }
  return default_scale;
}

/// Wall-clock stopwatch for the wall_* metrics.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ts::bench
