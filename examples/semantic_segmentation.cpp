// Semantic segmentation example: MinkUNet on a synthetic SemanticKITTI
// scan, comparing the five engine presets end to end and printing the
// TorchSparse per-stage timeline — a miniature of the paper's headline
// experiment (Fig. 1 / Fig. 11).
#include <cstdio>

#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "nn/minkunet.hpp"

using namespace ts;

int main() {
  // A moderate-size scan so the example finishes in seconds.
  Workload w = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                      0.5, 1, /*seed=*/2024, /*scale=*/0.5,
                                      /*tune_sample_count=*/1);
  std::printf("scan: %zu voxels (synthetic 64-beam LiDAR @ 5 cm)\n",
              w.input.num_points());

  const DeviceSpec dev = rtx2080ti();
  std::printf("device: %s (modeled)\n\n", dev.name.c_str());

  std::printf("%-18s %10s %8s\n", "engine", "latency", "FPS");
  Timeline ts_timeline;
  for (const EngineConfig& cfg : paper_engines()) {
    RunOptions opt;
    if (cfg.grouping == GroupingStrategy::kAdaptive)
      opt.tuned = tune_for(w.model, w.tune_samples, dev, cfg);
    const Timeline t = run_model(w.model, w.input, dev, cfg, opt);
    std::printf("%-18s %8.2f ms %7.1f\n", cfg.name.c_str(),
                t.total_seconds() * 1e3, t.fps());
    if (cfg.name == "TorchSparse") ts_timeline = t;
  }

  std::printf("\nTorchSparse stage breakdown:\n");
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const Stage st = static_cast<Stage>(s);
    const double sec = ts_timeline.stage_seconds(st);
    if (sec > 0)
      std::printf("  %-8s %7.3f ms (%4.1f%%)\n", to_string(st).c_str(),
                  sec * 1e3, sec / ts_timeline.total_seconds() * 100);
  }

  // Run once with real numerics and show per-point class predictions.
  ExecContext ctx(dev, torchsparse_config());
  ctx.compute_numerics = true;
  spnn::MinkUNet net(0.5, 4, 19, 77);
  const SparseTensor logits = net.forward(fresh_input(w.input), ctx);
  std::size_t counts[19] = {};
  for (std::size_t i = 0; i < logits.num_points(); ++i) {
    const float* row = logits.feats().row(i);
    std::size_t best = 0;
    for (std::size_t c = 1; c < 19; ++c)
      if (row[c] > row[best]) best = c;
    counts[best]++;
  }
  std::printf("\nargmax class histogram over %zu voxels (random weights):\n",
              logits.num_points());
  for (std::size_t c = 0; c < 19; ++c)
    if (counts[c]) std::printf("  class %2zu: %zu\n", c, counts[c]);
  return 0;
}
