// 3-D object detection example: a CenterPoint-style detector on a
// synthetic Waymo scan — sparse 3-D encoder, dense BEV heads, and NMS,
// with the per-stage timeline showing the paper's Fig. 4b structure
// (sparse stages dominate; Conv2D/NMS is the unaccelerated tail).
#include <cstdio>

#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "gpusim/device.hpp"
#include "nn/centerpoint.hpp"

using namespace ts;

int main() {
  LidarSpec lidar = waymo_spec(/*frames=*/3);
  lidar.azimuth_steps = 500;  // moderate size for the example
  VoxelSpec vox = detection_voxels();
  vox.feature_channels = 5;  // xyz offsets + intensity + point age
  const SparseTensor input = make_input(lidar, vox, /*seed=*/31337);
  std::printf("aggregated 3-frame scan: %zu voxels @ 0.1 m\n",
              input.num_points());

  spnn::CenterPoint detector(5, /*seed=*/99);
  ExecContext ctx(rtx3090(), torchsparse_config());
  ctx.compute_numerics = true;

  const spnn::CenterPointOutput out = detector.run(input, ctx);

  std::printf("backbone output: %zu voxels at stride %d\n",
              out.backbone_out.num_points(), out.backbone_out.stride());
  std::printf("detections after NMS: %zu\n", out.detections.size());
  for (std::size_t i = 0; i < out.detections.size() && i < 8; ++i) {
    const auto& d = out.detections[i];
    std::printf("  box %zu: center=(%.1f, %.1f) half=(%.1f, %.1f) "
                "score=%.3f\n",
                i, d.x, d.y, d.half_w, d.half_l, d.score);
  }

  std::printf("\nmodeled timeline on %s:\n", ctx.cost.device().name.c_str());
  const double total = ctx.timeline.total_seconds();
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const Stage st = static_cast<Stage>(s);
    const double sec = ctx.timeline.stage_seconds(st);
    if (sec > 0)
      std::printf("  %-8s %7.3f ms (%4.1f%%)\n", to_string(st).c_str(),
                  sec * 1e3, sec / total * 100);
  }
  std::printf("  total    %7.3f ms (%.1f FPS; paper: CenterPoint-3f "
              "runs real-time >= 10 FPS even on GTX 1080Ti)\n",
              total * 1e3, 1.0 / total);
  return 0;
}
