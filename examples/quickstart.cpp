// Quickstart: define a small sparse CNN with the spnn API (paper Fig. 5),
// run it on a synthetic LiDAR scan with the TorchSparse engine, and print
// the modeled per-stage timeline.
#include <cstdio>
#include <random>

#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "gpusim/device.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"

using namespace ts;

int main() {
  // 1. A synthetic 64-beam LiDAR scan, voxelized at 5 cm.
  LidarSpec lidar = semantic_kitti_spec();
  lidar.azimuth_steps = 300;  // keep the quickstart snappy
  SparseTensor input = make_input(lidar, segmentation_voxels(), /*seed=*/42);
  std::printf("input: %zu voxels, %zu channels\n", input.num_points(),
              input.channels());

  // 2. A small sparse CNN, composed exactly like the paper's Fig. 5
  //    SparseConvBlock: Conv3d + BatchNorm + ReLU.
  std::mt19937_64 rng(7);
  spnn::Sequential net;
  net.emplace<spnn::ConvBlock>(4, 32, 3, 1, false, rng);   // submanifold
  net.emplace<spnn::ConvBlock>(32, 64, 2, 2, false, rng);  // downsample x2
  net.emplace<spnn::ConvBlock>(64, 64, 3, 1, false, rng);  // submanifold
  net.emplace<spnn::ConvBlock>(64, 32, 2, 2, true, rng);   // upsample x2
  net.emplace<spnn::ConvBlock>(32, 16, 3, 1, false, rng);

  // 3. Run with the TorchSparse engine on a modeled RTX 2080Ti,
  //    computing real numerics.
  ExecContext ctx(rtx2080ti(), torchsparse_config());
  ctx.compute_numerics = true;
  SparseTensor out = net.forward(input, ctx);

  std::printf("output: %zu voxels, %zu channels at stride %d\n",
              out.num_points(), out.channels(), out.stride());
  std::printf("\nmodeled timeline (%s, %s):\n", "RTX 2080Ti", "TorchSparse");
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const Stage st = static_cast<Stage>(s);
    const double ms = ctx.timeline.stage_seconds(st) * 1e3;
    if (ms > 0) std::printf("  %-8s %8.3f ms\n", to_string(st).c_str(), ms);
  }
  std::printf("  %-8s %8.3f ms  (%.1f FPS)\n", "total",
              ctx.timeline.total_seconds() * 1e3, ctx.timeline.fps());
  std::printf("  kernels launched: %zu,  modeled DRAM: %.1f MB\n",
              ctx.timeline.kernel_launches(),
              ctx.timeline.dram_bytes() / 1e6);
  return 0;
}
