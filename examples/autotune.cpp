// Auto-tuning example: runs the Alg. 5 adaptive group search for a
// MinkUNet on synthetic SemanticKITTI samples and shows, per layer, the
// chosen (epsilon, S), the induced grouping, and the modeled matmul gain
// over separate execution.
#include <cstdio>

#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "tune/group_tuner.hpp"

using namespace ts;

int main() {
  Workload w = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                      0.5, 1, /*seed=*/555, /*scale=*/0.5,
                                      /*tune_sample_count=*/3);
  const DeviceSpec dev = rtx2080ti();
  std::printf("tuning MinkUNet (0.5x) on %zu samples for %s\n",
              w.tune_samples.size(), dev.name.c_str());
  std::printf("search space: %zu (epsilon, S) configurations per layer "
              "(paper: <1000, inference-only, <10 min)\n\n",
              default_search_space().size());

  const auto records = record_workloads(w.model, w.tune_samples, dev,
                                        torchsparse_config());
  const CostModel cost(dev);
  const TuneResult tuned = tune_groups(records, cost, Precision::kFP16);

  std::printf("%-7s %8s %6s %10s %8s %9s %11s\n", "layer", "entries",
              "C_in", "epsilon", "S", "#groups", "vs separate");
  double total_sep = 0, total_adp = 0;
  for (const LayerRecord& r : records[0]) {
    const GroupParams p = tuned.params.at(r.layer_id);
    const double sep = grouped_matmul_seconds(
        r, GroupingStrategy::kSeparate, GroupParams{}, cost,
        Precision::kFP16);
    const double adp = grouped_matmul_seconds(
        r, GroupingStrategy::kAdaptive, p, cost, Precision::kFP16);
    const auto groups =
        plan_groups(r.map_sizes, r.submanifold, GroupingStrategy::kAdaptive,
                    p);
    std::size_t entries = 0;
    for (auto s : r.map_sizes) entries += s;
    std::printf("%-7d %8zu %6zu %10.2f %8.0f %9zu %10.2fx\n", r.layer_id,
                entries, r.c_in, p.epsilon,
                std::min(p.s_threshold, 9.9e7), groups.size(), sep / adp);
    total_sep += sep;
    total_adp += adp;
  }
  std::printf("\nnetwork matmul: separate %.2f ms -> tuned adaptive "
              "%.2f ms (%.2fx; paper Table 2: 1.39-1.54x)\n",
              total_sep * 1e3, total_adp * 1e3, total_sep / total_adp);
  std::printf("\nnote: even with fixed (epsilon, S), the grouping itself "
              "re-plans per input from the actual map sizes — the "
              "strategy is input-adaptive (paper §4.2.3)\n");
  return 0;
}
