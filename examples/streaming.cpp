// Streaming serving demo: asynchronous request submission, bounded-depth
// admission control, SLO-aware dynamic batching on the modeled clock,
// and multi-device sharding with cache-affinity routing.
//
// A burst of LiDAR scans arrives faster than the deployment's queue can
// absorb: the RequestQueue admits up to its configured depth and sheds
// the rest with a typed AdmissionError (counted, never silent). The
// admitted requests are drained by BatchRunner::serve, which forms
// dispatch batches under a latency-SLO-aware policy and reports per-
// request end-to-end latency (queue wait + run) percentiles. A second
// pass serves a duplicate-heavy stream across two modeled devices,
// routing each batch to the device whose kernel-map cache already holds
// its dominant digest. All times are modeled, so this demo prints the
// same numbers on every machine.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "serve/batch_runner.hpp"
#include "serve/dynamic_batcher.hpp"
#include "serve/request_queue.hpp"
#include "serve/tuned_param_store.hpp"

using namespace ts;

int main() {
  // 1. The deployment: MinkUNet on a modeled RTX 2080Ti, TorchSparse
  //    engine, with Alg. 5 grouping parameters tuned once per key.
  const uint64_t seed = 5353;
  Workload w = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                      0.5, 1, seed, /*scale=*/0.2,
                                      /*tune_sample_count=*/2);
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig cfg = torchsparse_config();

  serve::TunedParamStore store;
  serve::BatchOptions opt;
  opt.workers = 4;
  opt.run.tuned = store.get_or_tune(serve::tuned_key(w.name, dev, cfg),
                                    w.model, w.tune_samples, dev, cfg);
  std::printf("deployment: %s on %s / %s (%zu tuned layers)\n",
              w.name.c_str(), dev.name.c_str(), cfg.name.c_str(),
              opt.run.tuned.size());

  // 2. A burst of 12 scans hits a queue bounded at depth 8: admission
  //    control sheds the overflow with a typed error instead of letting
  //    the backlog (and every request's tail latency) grow without bound.
  LidarSpec lidar = semantic_kitti_spec();
  lidar.azimuth_steps = std::max(32, lidar.azimuth_steps / 5);
  serve::QueueOptions qopt;
  qopt.max_depth = 8;
  serve::RequestQueue queue(qopt);

  std::vector<serve::StreamHandle> handles;
  const double gap = 0.004;  // modeled 4 ms between arrivals
  for (int i = 0; i < 12; ++i) {
    const SparseTensor scan = make_input(
        lidar, segmentation_voxels(), seed + 10 + static_cast<uint64_t>(i));
    try {
      handles.push_back(queue.submit(scan, gap * i));
      std::printf("  t=%5.1f ms  scan %2d admitted (depth %zu/%zu)\n",
                  gap * i * 1e3, i, queue.depth(), qopt.max_depth);
    } catch (const serve::AdmissionError& e) {
      std::printf("  t=%5.1f ms  scan %2d REJECTED: %s\n", gap * i * 1e3,
                  i, e.what());
    }
  }
  queue.close();

  // 3. Serve with an SLO-aware dynamic batcher: dispatch on max_batch or
  //    when the oldest request's queue-wait budget is spent.
  serve::StreamOptions sopt;
  sopt.batcher.policy = serve::BatchPolicy::kSloAware;
  sopt.batcher.max_batch = 4;
  sopt.batcher.slo_budget_seconds = 0.008;  // 8 ms queue-wait budget
  sopt.batch_overhead_seconds = 0.001;      // amortizable dispatch setup

  const serve::BatchRunner runner(dev, cfg, opt);
  const serve::StreamReport report = runner.serve(w.model, queue, sopt);
  const serve::StreamStats& s = report.stats;

  std::printf("\nserved %zu requests (%zu rejected) in %zu batches on %d "
              "workers\n",
              s.completed, s.rejected, s.batches, s.workers);
  std::printf("  policy        %s, max_batch %d, SLO budget %.1f ms, "
              "overhead %.1f ms\n",
              to_string(sopt.batcher.policy), sopt.batcher.max_batch,
              sopt.batcher.slo_budget_seconds * 1e3,
              sopt.batch_overhead_seconds * 1e3);
  std::printf("  throughput    %8.1f scans/s (makespan %.2f ms)\n",
              s.throughput_fps, s.makespan_seconds * 1e3);
  std::printf("  queue wait    p50 %.2f / p90 %.2f / p99 %.2f ms\n",
              s.queue_wait_p50_seconds * 1e3,
              s.queue_wait_p90_seconds * 1e3,
              s.queue_wait_p99_seconds * 1e3);
  std::printf("  e2e latency   p50 %.2f / p90 %.2f / p99 %.2f ms\n",
              s.e2e_p50_seconds * 1e3, s.e2e_p90_seconds * 1e3,
              s.e2e_p99_seconds * 1e3);
  std::printf("  mean service  %7.2f ms per scan, mean batch %.2f\n",
              s.mean_service_seconds * 1e3, s.mean_batch_size);

  std::printf("\nbatch  size  dispatch(ms)  start(ms)  finish(ms)  lane\n");
  for (const serve::StreamBatchRecord& b : report.batches)
    std::printf("%5zu  %4zu  %12.2f  %9.2f  %10.2f  %4d\n", b.batch_id,
                b.size, b.dispatch_seconds * 1e3, b.start_seconds * 1e3,
                b.finish_seconds * 1e3, b.lane);

  // 4. Producers read results through their handles (futures).
  std::printf("\nreq  arrive(ms)  wait(ms)  service(ms)  e2e(ms)  batch\n");
  for (const serve::StreamHandle& h : handles) {
    const serve::StreamResult& r = h.get();
    std::printf("%3zu  %10.2f  %8.2f  %11.2f  %7.2f  %5zu\n", r.id,
                r.arrival_seconds * 1e3, r.queue_wait_seconds * 1e3,
                r.service_seconds * 1e3, r.e2e_seconds * 1e3, r.batch_id);
  }

  // 5. Scale out: the same deployment sharded across two modeled
  //    devices, each with its own worker lanes and kernel-map cache. The
  //    stream repeats every scan twice back-to-back (consecutive LiDAR
  //    frames); cache-affinity routing sends each duplicate to the
  //    device that already built its kernel maps, so the second copy
  //    pays the warm re-key cost instead of the full mapping stage.
  serve::RequestQueue shard_queue({/*max_depth=*/32});
  int submitted = 0;
  for (int i = 0; i < 8; ++i) {
    const SparseTensor scan = make_input(
        lidar, segmentation_voxels(), seed + 50 + static_cast<uint64_t>(i));
    for (int rep = 0; rep < 2; ++rep)
      shard_queue.submit(scan, 0.0005 * (submitted++));
  }
  shard_queue.close();

  serve::BatchOptions shard_opt = opt;
  shard_opt.workers = 2;
  shard_opt.map_cache_bytes = std::size_t(64) << 20;  // per device
  serve::StreamOptions shard_sopt;
  shard_sopt.batcher.policy = serve::BatchPolicy::kImmediate;
  shard_sopt.batch_overhead_seconds = 0.0005;
  shard_sopt.shard.devices = 2;
  shard_sopt.shard.route = serve::RoutePolicy::kCacheAffinity;

  const serve::BatchRunner shard_runner(dev, cfg, shard_opt);
  const serve::StreamReport sharded =
      shard_runner.serve(w.model, shard_queue, shard_sopt);

  std::printf("\nsharded serve: %zu requests on %d devices x %d workers, "
              "%s routing\n",
              sharded.stats.completed, sharded.stats.devices,
              sharded.stats.workers, to_string(shard_sopt.shard.route));
  std::printf("  throughput    %8.1f scans/s (makespan %.2f ms)\n",
              sharded.stats.throughput_fps,
              sharded.stats.makespan_seconds * 1e3);
  std::printf("  map cache     %.0f%% warm hits, %.2f ms modeled mapping "
              "saved\n",
              sharded.stats.map_cache.hit_rate() * 100.0,
              sharded.stats.map_cache.modeled_seconds_saved * 1e3);
  std::printf("\ndevice  batches  requests  busy(ms)  util   warm hits\n");
  for (const serve::DeviceShardStats& d : sharded.stats.per_device)
    std::printf("%6d  %7zu  %8zu  %8.2f  %4.2f  %5zu/%zu\n", d.device,
                d.batches, d.requests, d.busy_seconds * 1e3, d.utilization,
                d.map_cache.hits, d.map_cache.lookups);
  return 0;
}
