// Streaming serving demo on the serve::Server session API: priority
// classes with strict-priority-plus-aging batching, bounded-depth
// admission control with priority preemption, incremental StreamHandle
// fulfillment, and multi-device sharding with cache-affinity routing.
//
// Requests carry priority classes — the default batching policy serves
// the high class first, aging keeps the low class from starving, and
// the report breaks latency percentiles out per class. Handles resolve
// *incrementally*: a request's result is readable the moment its batch
// is placed on the modeled schedule, while the session is still open.
// A second pass serves the stream on a heterogeneous 1080Ti+3090 fleet
// with estimate-aware routing: requests are measured once on the
// reference tier and placed with per-tier service estimates, so the
// tensor-core 3090 absorbs the GEMM-heavy work while the 1080Ti takes
// the overflow — the per-tier table shows the split. A final pass
// co-hosts two models (MinkUNet + CenterPoint) on one fleet under a
// diurnal arrival trace and breaks the stats out per model. All modeled
// numbers print the same on every machine.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "serve/server.hpp"
#include "serve/traffic.hpp"
#include "serve/tuned_param_store.hpp"

using namespace ts;

int main() {
  // 1. The deployment: MinkUNet on a modeled RTX 2080Ti, TorchSparse
  //    engine, with Alg. 5 grouping parameters tuned once per key. One
  //    ServerConfig now carries every serving knob.
  const uint64_t seed = 5353;
  Workload w = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                      0.5, 1, seed, /*scale=*/0.2,
                                      /*tune_sample_count=*/2);
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig cfg = torchsparse_config();

  serve::TunedParamStore store;
  RunOptions run;
  run.tuned = store.get_or_tune(serve::tuned_key(w.name, dev, cfg), w.model,
                                w.tune_samples, dev, cfg);

  serve::BatcherOptions batcher;
  batcher.policy = serve::BatchPolicy::kSloAware;
  batcher.max_batch = 4;
  batcher.slo_budget_seconds = 0.008;  // 8 ms queue-wait budget
  serve::PriorityOptions aging;
  aging.aging_seconds = 0.016;  // promote a waiting class every 16 ms

  serve::ServerConfig scfg;
  scfg.with_device(dev)
      .with_engine(cfg)
      .with_workers(4)
      .with_run(run)
      .with_queue_depth(32)
      .with_batcher(batcher)
      .with_priority(aging)
      .with_batch_overhead(0.001);  // amortizable dispatch setup
  serve::Server server(scfg);
  std::printf("deployment: %s on %s / %s (%zu tuned layers)\n",
              w.name.c_str(), dev.name.c_str(), cfg.name.c_str(),
              run.tuned.size());

  LidarSpec lidar = semantic_kitti_spec();
  lidar.azimuth_steps = std::max(32, lidar.azimuth_steps / 5);

  // 2. The admission boundary, demonstrated standalone (no consumer, so
  //    the outcome is deterministic): a depth-3 queue with priority
  //    preemption sheds a 4th low-class scan with a typed error, and a
  //    late high-class scan preempts the newest low instead of being
  //    rejected itself. ServerConfig::with_queue_depth /
  //    with_priority_preemption configure exactly this machinery inside
  //    a Server.
  {
    serve::QueueOptions qopt;
    qopt.max_depth = 3;
    qopt.priority_preemption = true;
    serve::RequestQueue gate(qopt);
    std::vector<serve::StreamHandle> low_handles;
    const SparseTensor probe =
        make_input(lidar, segmentation_voxels(), seed + 99);
    for (int i = 0; i < 4; ++i) {
      try {
        low_handles.push_back(
            gate.submit(probe, 0.001 * i, serve::Priority::kLow));
        std::printf("  low scan %d admitted (depth %zu/3)\n", i,
                    gate.depth());
      } catch (const serve::AdmissionError& e) {
        std::printf("  low scan %d REJECTED: %s\n", i, e.what());
      }
    }
    gate.submit(probe, 0.004, serve::Priority::kHigh);
    std::printf("  high scan admitted by preempting the newest low "
                "(depth %zu/3, %zu shed)\n",
                gate.depth(), gate.rejected());
  }

  // 3. A live session: 12 scans, every 3rd a high-priority request
  //    (say, the vehicle's forward-facing sweep), the rest best-effort
  //    backfill.
  server.start(w.model);
  std::vector<serve::StreamHandle> handles;
  const double gap = 0.004;  // modeled 4 ms between arrivals
  for (int i = 0; i < 12; ++i) {
    const SparseTensor scan = make_input(
        lidar, segmentation_voxels(), seed + 10 + static_cast<uint64_t>(i));
    handles.push_back(server.submit(
        scan, gap * i,
        i % 3 == 0 ? serve::Priority::kHigh : serve::Priority::kLow));
  }

  // 4. Incremental fulfillment: with all twelve arrivals fed, the
  //    high-priority head request is certainly in an already-dispatched
  //    batch, which is placed as soon as its members are measured — so
  //    its handle resolves while the session is still open, no drain
  //    needed. (Blocking on a handle the batcher might still be
  //    holding must wait for drain(); see StreamHandle.)
  const serve::StreamResult& first = handles.front().get();
  std::printf("\nincremental: scan %zu resolved mid-session "
              "(e2e %.2f ms, batch %zu) while the server is %s\n",
              first.id, first.e2e_seconds * 1e3, first.batch_id,
              server.running() ? "still running" : "stopped");

  // 5. Drain the session and read the report: per-class percentiles
  //    show the priority classes separating under load.
  const serve::StreamReport report = server.drain();
  const serve::StreamStats& s = report.stats;

  std::printf("\nserved %zu requests (%zu rejected) in %zu batches on %d "
              "workers\n",
              s.completed, s.rejected, s.batches, s.workers);
  std::printf("  policy        %s, max_batch %d, SLO budget %.1f ms, "
              "aging %.1f ms, overhead %.1f ms\n",
              to_string(batcher.policy), batcher.max_batch,
              batcher.slo_budget_seconds * 1e3, aging.aging_seconds * 1e3,
              scfg.batch_overhead_seconds * 1e3);
  std::printf("  throughput    %8.1f scans/s (makespan %.2f ms)\n",
              s.throughput_fps, s.makespan_seconds * 1e3);
  std::printf("  queue wait    p50 %.2f / p90 %.2f / p99 %.2f ms\n",
              s.queue_wait_p50_seconds * 1e3,
              s.queue_wait_p90_seconds * 1e3,
              s.queue_wait_p99_seconds * 1e3);
  std::printf("  e2e latency   p50 %.2f / p90 %.2f / p99 %.2f ms\n",
              s.e2e_p50_seconds * 1e3, s.e2e_p90_seconds * 1e3,
              s.e2e_p99_seconds * 1e3);
  std::printf("\nclass   served  wait p99(ms)  e2e p99(ms)\n");
  for (const serve::PriorityClassStats& pc : s.per_class) {
    if (pc.completed == 0) continue;
    std::printf("%-6s  %6zu  %12.2f  %11.2f\n", to_string(pc.priority),
                pc.completed, pc.queue_wait_p99_seconds * 1e3,
                pc.e2e_p99_seconds * 1e3);
  }

  std::printf("\nbatch  size  dispatch(ms)  start(ms)  finish(ms)  lane\n");
  for (const serve::StreamBatchRecord& b : report.batches)
    std::printf("%5zu  %4zu  %12.2f  %9.2f  %10.2f  %4d\n", b.batch_id,
                b.size, b.dispatch_seconds * 1e3, b.start_seconds * 1e3,
                b.finish_seconds * 1e3, b.lane);

  std::printf("\nreq  class   arrive(ms)  wait(ms)  e2e(ms)  batch\n");
  for (const serve::StreamHandle& h : handles) {
    const serve::StreamResult& r = h.get();
    std::printf("%3zu  %-6s  %10.2f  %8.2f  %7.2f  %5zu\n", r.id,
                to_string(r.priority), r.arrival_seconds * 1e3,
                r.queue_wait_seconds * 1e3, r.e2e_seconds * 1e3,
                r.batch_id);
  }

  // 6. Scale out onto a heterogeneous fleet: one modeled GTX 1080Ti
  //    (listed first — the measurement reference) plus one RTX 3090,
  //    in a single device group. The duplicate-heavy stream repeats
  //    every scan twice back-to-back (consecutive LiDAR frames);
  //    estimate-aware routing scales each batch's measured service to
  //    every tier (GEMM seconds by peak-GEMM ratio, the rest by DRAM
  //    bandwidth) and places it at the earliest estimated completion,
  //    so the tensor-core 3090 soaks up the GEMM-heavy work while the
  //    1080Ti absorbs the overflow.
  serve::ServerConfig fleet_cfg = scfg;
  serve::BatcherOptions immediate;
  immediate.policy = serve::BatchPolicy::kImmediate;
  fleet_cfg.with_workers(2)
      .with_queue_depth(32)
      .with_batcher(immediate)
      .with_batch_overhead(0.0005)
      .with_fleet({{device_spec_by_name("1080ti"), 1},
                   {device_spec_by_name("3090"), 1}})
      .with_route(serve::RoutePolicy::kEstimateAware)
      .with_map_cache_bytes(std::size_t(64) << 20);  // per device
  serve::Server fleet_server(fleet_cfg);
  fleet_server.start(w.model);
  int submitted = 0;
  for (int i = 0; i < 8; ++i) {
    const SparseTensor scan = make_input(
        lidar, segmentation_voxels(), seed + 50 + static_cast<uint64_t>(i));
    for (int rep = 0; rep < 2; ++rep)
      fleet_server.submit(scan, 0.0005 * (submitted++));
  }
  const serve::StreamReport fleet = fleet_server.drain();

  std::printf("\nfleet serve: %zu requests on %d devices x %d workers, "
              "%s routing (reference tier: %s)\n",
              fleet.stats.completed, fleet.stats.devices,
              fleet.stats.workers, to_string(fleet_cfg.shard.route),
              fleet_cfg.device.name.c_str());
  std::printf("  throughput    %8.1f scans/s (makespan %.2f ms)\n",
              fleet.stats.throughput_fps,
              fleet.stats.makespan_seconds * 1e3);
  std::printf("  map cache     %.0f%% warm hits, %.2f ms modeled mapping "
              "saved\n",
              fleet.stats.map_cache.hit_rate() * 100.0,
              fleet.stats.map_cache.modeled_seconds_saved * 1e3);
  std::printf("\ndev  tier        batches  requests  busy(ms)  util   "
              "warm hits\n");
  for (const serve::DeviceShardStats& d : fleet.stats.per_device)
    std::printf("%3d  %-10s  %7zu  %8zu  %8.2f  %4.2f  %5zu/%zu\n",
                d.device, d.name.c_str(), d.batches, d.requests,
                d.busy_seconds * 1e3, d.utilization, d.map_cache.hits,
                d.map_cache.lookups);

  // 7. Fault tolerance: replay the mixed-priority stream on a two-shard
  //    group and crash shard 0 the moment batch #4 dispatches — taking
  //    whatever it had in flight down with it. The deterministic
  //    FaultPlan makes the outage part of the modeled schedule: lost
  //    batches are redispatched through health-aware routing (with
  //    modeled backoff), a replacement shard arrives 3 ms later, and
  //    the low class runs under a 5 ms degrade deadline so hopeless
  //    requests shed with a typed error instead of clogging the
  //    survivor. Everything below replays bit-identically.
  serve::DeviceFault crash{0, serve::FaultKind::kCrash};
  crash.at_dispatch = 4;            // trigger: batch #4's dispatch stamp
  crash.duration_seconds = 0.003;   // replacement shard arrives 3 ms in
  serve::FaultToleranceOptions tolerance;
  tolerance.degrade_deadline_seconds[static_cast<int>(
      serve::Priority::kLow)] = 0.005;

  serve::ServerConfig fault_cfg = scfg;
  fault_cfg.with_workers(2)
      .with_devices(2)
      .with_route(serve::RoutePolicy::kLeastLoaded)
      .with_batcher(immediate)
      .with_fault_plan(serve::FaultPlan{{crash}})
      .with_fault_tolerance(tolerance);
  serve::Server fault_server(fault_cfg);
  fault_server.start(w.model);
  std::vector<serve::StreamHandle> fault_handles;
  for (int i = 0; i < 12; ++i) {
    const SparseTensor scan = make_input(
        lidar, segmentation_voxels(), seed + 80 + static_cast<uint64_t>(i));
    fault_handles.push_back(fault_server.submit(
        scan, 0.0004 * i,
        i % 3 == 0 ? serve::Priority::kHigh : serve::Priority::kLow));
  }
  const serve::StreamReport fr = fault_server.drain();

  std::printf("\nfault drill: crash shard 0 at batch #%lld, replacement "
              "after %.1f ms\n",
              crash.at_dispatch, crash.duration_seconds * 1e3);
  std::printf("  served %zu / failed %zu of %zu admitted; %zu fault "
              "activation(s)\n",
              fr.stats.completed, fr.stats.failed,
              fr.stats.completed + fr.stats.failed,
              fr.stats.faults_injected);
  std::printf("  recovery: %zu extra attempt(s), %zu batch(es) "
              "redispatched, retry-wait p99 %.2f ms\n",
              fr.stats.retries, fr.stats.redispatched_batches,
              fr.stats.retry_wait_p99_seconds * 1e3);
  std::printf("\nclass   served  failed  retries  e2e p99(ms)\n");
  for (const serve::PriorityClassStats& pc : fr.stats.per_class) {
    if (pc.completed == 0 && pc.failed == 0) continue;
    std::printf("%-6s  %6zu  %6zu  %7zu  %11.2f\n", to_string(pc.priority),
                pc.completed, pc.failed, pc.retries,
                pc.e2e_p99_seconds * 1e3);
  }
  // Failed handles still resolve — with a typed result, not a broken
  // promise. value() turns that into a catchable ServeError.
  for (const serve::StreamHandle& h : fault_handles) {
    const serve::StreamResult& r = h.get();
    if (r.ok()) continue;
    try {
      h.value();
    } catch (const serve::ServeError& e) {
      std::printf("  request %zu failed typed: %s\n", r.id,
                  to_string(e.code()));
    }
  }

  // 8. Multi-model hosting under trace-driven traffic: a MinkUNet
  //    segmenter and a CenterPoint detector co-hosted on one two-device
  //    fleet. ServerConfig::with_model registers each network with its
  //    own SLO budget, default priority class, and DRR fairness weight;
  //    submit_to targets an entry by registry index. Arrivals come from
  //    the seeded diurnal-ramp generator in serve/traffic.hpp — a
  //    nonhomogeneous Poisson process on the modeled clock, so the whole
  //    day-night cycle (and every per-model percentile below) replays
  //    bit-identically. Kernel-map digests are salted per model, so the
  //    detector can never poach the segmenter's warm maps.
  Workload cp = make_centerpoint_workload("Waymo-CenterPoint (1f)", "Waymo",
                                          1, seed + 7, /*scale=*/0.2,
                                          /*tune_sample_count=*/1);
  serve::TrafficSpec diurnal;
  diurnal.process = serve::ArrivalProcess::kDiurnal;
  diurnal.rate_hz = 1500.0;        // peak arrival rate
  diurnal.period_seconds = 0.04;   // one compressed day-night cycle
  diurnal.trough_fraction = 0.1;   // overnight floor: 10% of peak
  std::vector<serve::ModelTraffic> streams(2);
  streams[0].model = 0;            // the segmenter's request stream
  streams[0].arrivals = diurnal;
  streams[0].count = 10;
  streams[1].model = 1;            // the detector, phase-shifted to peak
  streams[1].arrivals = diurnal;   // while the segmenter idles
  streams[1].arrivals.phase_seconds = 0.02;
  streams[1].count = 10;
  const std::vector<serve::TimedSubmission> mix =
      serve::build_traffic_mix(streams, seed);

  serve::ServerConfig duo_cfg = scfg;
  duo_cfg.with_workers(2)
      .with_devices(2)
      .with_route(serve::RoutePolicy::kCacheAffinity)
      .with_map_cache_bytes(std::size_t(64) << 20)
      .with_model("minkunet", w.model, /*slo_budget_seconds=*/0.008,
                  serve::Priority::kHigh, /*weight=*/2.0)
      .with_model("centerpoint", cp.model, /*slo_budget_seconds=*/0.016,
                  serve::Priority::kNormal, /*weight=*/1.0);
  serve::Server duo(duo_cfg);
  duo.start();  // registry session: no ModelFn argument
  VoxelSpec det_voxels = detection_voxels();
  det_voxels.feature_channels = 5;  // CenterPoint input width
  for (const serve::TimedSubmission& s : mix) {
    // Each stream loops over 5 unique scans, so the second half of a
    // stream revisits frames — warm per-model cache hits below.
    const uint64_t frame = static_cast<uint64_t>(s.stream_pos % 5);
    const SparseTensor scan =
        s.model == 0
            ? make_input(lidar, segmentation_voxels(), seed + 120 + frame)
            : make_input(waymo_spec(1), det_voxels, seed + 150 + frame);
    // No explicit priority: each entry's default_priority applies.
    duo.submit_to(s.model, scan, s.arrival_seconds);
  }
  const serve::StreamReport duo_rep = duo.drain();

  std::printf("\nmulti-model serve: %zu requests over %zu models on %d "
              "devices (diurnal trace, peak %.0f Hz)\n",
              duo_rep.stats.completed, duo_rep.stats.per_model.size(),
              duo_rep.stats.devices, diurnal.rate_hz);
  std::printf("\nmodel        served  wait p99(ms)  e2e p99(ms)  warm "
              "hits\n");
  for (const serve::ModelStats& ms : duo_rep.stats.per_model) {
    const char* name = ms.model == duo.model_id("minkunet")
                           ? "minkunet"
                           : "centerpoint";
    std::printf("%-11s  %6zu  %12.2f  %11.2f  %5zu/%zu\n", name,
                ms.completed, ms.queue_wait_p99_seconds * 1e3,
                ms.e2e_p99_seconds * 1e3, ms.cache_hits, ms.cache_lookups);
  }
  return 0;
}
