// Serving demo: a batch of LiDAR scans served under one serve::Server
// deployment. Tuned grouping parameters are computed once per
// deployment key in a shared TunedParamStore and reused by every
// request; the ServerConfig carries every serving knob, and
// Server::run_batch shards the pre-collected batch across worker
// threads while keeping each request's result identical to a serial
// run. (For the streaming session API — priority classes, incremental
// handles, sharding — see examples/streaming.cpp.)
#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "serve/server.hpp"
#include "serve/tuned_param_store.hpp"

using namespace ts;

int main() {
  // 1. The deployment: MinkUNet on a modeled RTX 2080Ti, TorchSparse
  //    engine, serving SemanticKITTI-like scans.
  const uint64_t seed = 4242;
  Workload w = make_minkunet_workload("SK-MinkUNet (0.5x)", "SemanticKITTI",
                                      0.5, 1, seed, /*scale=*/0.2,
                                      /*tune_sample_count=*/2);
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig cfg = torchsparse_config();

  // 2. Offline tuning, shared across all future requests for this key.
  serve::TunedParamStore store;
  const std::string key = serve::tuned_key(w.name, dev, cfg);
  RunOptions run;
  run.tuned = store.get_or_tune(key, w.model, w.tune_samples, dev, cfg);
  std::printf("deployment key: %s\n", key.c_str());
  std::printf("tuned layers: %zu (computed %zu time(s))\n",
              run.tuned.size(), store.compute_count());

  // 3. A batch of incoming scans.
  LidarSpec lidar = semantic_kitti_spec();
  lidar.azimuth_steps = std::max(32, lidar.azimuth_steps / 5);
  std::vector<SparseTensor> batch;
  for (int i = 0; i < 12; ++i)
    batch.push_back(make_input(lidar, segmentation_voxels(),
                               seed + 10 + static_cast<uint64_t>(i)));
  std::printf("batch: %zu scans, %zu..%zu voxels\n", batch.size(),
              batch.front().num_points(), batch.back().num_points());

  // 4. One ServerConfig describes the deployment; run_batch serves the
  //    pre-collected scans on 4 workers and reports the modeled
  //    schedule.
  serve::ServerConfig scfg;
  scfg.with_device(dev).with_engine(cfg).with_workers(4).with_run(run);
  const serve::Server server(scfg);
  const serve::BatchReport report = server.run_batch(w.model, batch);
  const serve::BatchStats& s = report.stats;

  std::printf("\n%zu requests on %d workers (%s, %s)\n", s.requests,
              s.workers, dev.name.c_str(), cfg.name.c_str());
  std::printf("  makespan    %8.2f ms\n", s.makespan_seconds * 1e3);
  std::printf("  throughput  %8.1f scans/s\n", s.throughput_fps);
  std::printf("  latency     p50 %.2f ms / p90 %.2f ms / p99 %.2f ms\n",
              s.latency_p50_seconds * 1e3, s.latency_p90_seconds * 1e3,
              s.latency_p99_seconds * 1e3);
  std::printf("  mean service %7.2f ms per scan\n",
              s.mean_service_seconds * 1e3);

  // Per-request view of the schedule (first few).
  std::printf("\nrequest  service(ms)  start(ms)  finish(ms)\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(6, s.requests); ++i) {
    const serve::RequestResult& r = report.requests[i];
    std::printf("%7zu  %11.2f  %9.2f  %10.2f\n", r.index,
                r.service_seconds * 1e3, r.start_seconds * 1e3,
                r.finish_seconds * 1e3);
  }
  return 0;
}
