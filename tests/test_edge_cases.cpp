// Degenerate-input robustness: empty tensors, single points, layers with
// no matches — the failure-injection corners of the engine — plus the
// API-boundary error contracts that must hold identically in Debug and
// Release (descriptive exceptions, never NDEBUG-stripped asserts).
#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/conv3d.hpp"
#include "core/downsample.hpp"
#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "gpusim/device.hpp"
#include "io/serialize.hpp"
#include "nn/layers.hpp"
#include "nn/minkunet.hpp"
#include "nn/pooling.hpp"

namespace ts {
namespace {

ExecContext fp32_ctx() {
  EngineConfig cfg = torchsparse_config();
  cfg.precision = Precision::kFP32;
  ExecContext ctx(rtx2080ti(), cfg);
  ctx.compute_numerics = true;
  return ctx;
}

Conv3dParams conv(int k, int s, std::size_t ci, std::size_t co,
                  uint64_t seed) {
  std::mt19937_64 rng(seed);
  Conv3dParams p;
  p.geom = ConvGeometry{k, s, false};
  p.weights = spnn::make_conv_weights(k, ci, co, rng);
  return p;
}

TEST(EdgeCases, EmptyTensorThroughSubmanifoldConv) {
  SparseTensor x({}, Matrix(0, 4));
  ExecContext ctx = fp32_ctx();
  const SparseTensor y = sparse_conv3d(x, conv(3, 1, 4, 8, 1), ctx);
  EXPECT_EQ(y.num_points(), 0u);
  EXPECT_EQ(y.channels(), 8u);
}

TEST(EdgeCases, EmptyTensorThroughStridedConv) {
  SparseTensor x({}, Matrix(0, 4));
  ExecContext ctx = fp32_ctx();
  const SparseTensor y = sparse_conv3d(x, conv(2, 2, 4, 4, 2), ctx);
  EXPECT_EQ(y.num_points(), 0u);
  EXPECT_EQ(y.stride(), 2);
}

TEST(EdgeCases, EmptyDownsample) {
  DownsampleCounters c;
  const auto out = downsample_coords({}, 2, 2, true, true, &c);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(c.kept, 0u);
}

TEST(EdgeCases, SinglePointNetwork) {
  std::vector<Coord> coords = {{0, 100, 100, 20}};
  Matrix feats(1, 4, 1.0f);
  SparseTensor x(coords, feats);
  spnn::MinkUNet net(0.25, 4, 5, 3);
  ExecContext ctx = fp32_ctx();
  const SparseTensor y = net.forward(x, ctx);
  EXPECT_EQ(y.num_points(), 1u);
  EXPECT_EQ(y.channels(), 5u);
  for (std::size_t c = 0; c < 5; ++c)
    EXPECT_TRUE(std::isfinite(y.feats().at(0, c)));
}

TEST(EdgeCases, VoxelizeEmptyPointList) {
  const SparseTensor t = voxelize({}, segmentation_voxels());
  EXPECT_EQ(t.num_points(), 0u);
}

TEST(EdgeCases, ZeroDropoutAndFullDropout) {
  LidarSpec spec = nuscenes_spec(1);
  spec.azimuth_steps = 60;
  spec.dropout = 0.0;
  const auto full = generate_scan(spec, 4);
  spec.dropout = 1.0;
  const auto none = generate_scan(spec, 4);
  EXPECT_GT(full.size(), 100u);
  EXPECT_TRUE(none.empty());
}

TEST(EdgeCases, ConvWhereNoOffsetsMatch) {
  // Points spaced 10 apart: K=3 dilation-1 finds only the center.
  std::vector<Coord> coords;
  for (int i = 0; i < 5; ++i) coords.push_back({0, 10 * i, 0, 0});
  Matrix feats(5, 3, 0.5f);
  SparseTensor x(coords, feats);
  ExecContext ctx = fp32_ctx();
  const Conv3dParams p = conv(3, 1, 3, 3, 5);
  const SparseTensor y = sparse_conv3d(x, p, ctx);
  Matrix expect;
  mm(feats, p.weights[13], expect);
  EXPECT_LT(max_abs_diff(y.feats(), expect), 1e-6f);
}

TEST(EdgeCases, RepeatedForwardIsDeterministic) {
  LidarSpec spec = nuscenes_spec(1);
  spec.azimuth_steps = 60;
  const SparseTensor x = make_input(spec, segmentation_voxels(), 6);
  spnn::MinkUNet net(0.25, 4, 5, 7);
  ExecContext a = fp32_ctx(), b = fp32_ctx();
  const SparseTensor ya =
      net.forward(SparseTensor(x.coords(), x.feats()), a);
  const SparseTensor yb =
      net.forward(SparseTensor(x.coords(), x.feats()), b);
  EXPECT_EQ(max_abs_diff(ya.feats(), yb.feats()), 0.0f);
  EXPECT_DOUBLE_EQ(a.timeline.total_seconds(), b.timeline.total_seconds());
}

TEST(EdgeCases, GlobalPoolRejectsNegativeBatchIndex) {
  // Regression (ROADMAP "Hardening"): a negative batch index used to
  // index out of bounds under NDEBUG; it must throw the same descriptive
  // error in Debug and Release.
  std::vector<Coord> coords = {{0, 1, 1, 1}, {-3, 2, 2, 2}};
  Matrix feats(2, 4, 1.0f);
  SparseTensor x(coords, feats);
  ExecContext ctx = fp32_ctx();
  try {
    spnn::global_pool(x, spnn::PoolKind::kAvg, ctx);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "global_pool: negative batch index -3 at point 1");
  }
  EXPECT_THROW(spnn::global_pool(x, spnn::PoolKind::kMax, ctx),
               std::invalid_argument);
}

TEST(EdgeCases, GlobalPoolEmptyTensor) {
  SparseTensor x({}, Matrix(0, 4));
  ExecContext ctx = fp32_ctx();
  const Matrix out = spnn::global_pool(x, spnn::PoolKind::kAvg, ctx);
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), 4u);
}

TEST(EdgeCases, GlobalPoolRejectsBatchIndexPastPackableRange) {
  // Regression (ROADMAP "Hardening", nn/pooling sweep): a batch index
  // past the packable range cannot come from any valid tensor; inferring
  // the batch count from it would make the output allocation itself the
  // failure (max+1 rows, or signed overflow at INT32_MAX). It must be a
  // descriptive invalid_argument in Debug and Release alike.
  std::vector<Coord> coords = {{0, 1, 1, 1},
                               {std::numeric_limits<int32_t>::max(), 2, 2, 2}};
  SparseTensor x(coords, Matrix(2, 4, 1.0f));
  ExecContext ctx = fp32_ctx();
  try {
    spnn::global_pool(x, spnn::PoolKind::kAvg, ctx);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds the packable batch range"),
              std::string::npos);
  }
  std::vector<Coord> big = {{kCoordBatchMax + 1, 1, 1, 1}};
  SparseTensor y(big, Matrix(1, 4, 1.0f));
  EXPECT_THROW(spnn::global_pool(y, spnn::PoolKind::kMax, ctx),
               std::invalid_argument);
  // The top of the packable range itself is legal.
  std::vector<Coord> edge = {{kCoordBatchMax, 1, 1, 1}};
  SparseTensor z(edge, Matrix(1, 4, 1.0f));
  const Matrix out = spnn::global_pool(z, spnn::PoolKind::kMax, ctx);
  EXPECT_EQ(out.rows(), static_cast<std::size_t>(kCoordBatchMax) + 1);
}

TEST(EdgeCases, GlobalPoolDeclaredBatchCountValidatesAndShapes) {
  // The serving-head overload: the declared count fixes the output shape
  // (empty batches pool to zero) and turns an index past it into a
  // descriptive error instead of a silent mis-index.
  std::vector<Coord> coords = {{0, 1, 1, 1}, {2, 2, 2, 2}};
  Matrix feats(2, 3);
  feats.at(0, 0) = 4.0f;
  feats.at(1, 1) = 6.0f;
  SparseTensor x(coords, feats);
  ExecContext ctx = fp32_ctx();

  const Matrix out = spnn::global_pool(x, spnn::PoolKind::kAvg, 4, ctx);
  ASSERT_EQ(out.rows(), 4u);
  EXPECT_EQ(out.at(0, 0), 4.0f);
  EXPECT_EQ(out.at(1, 0), 0.0f);  // declared-but-empty batch
  EXPECT_EQ(out.at(2, 1), 6.0f);
  EXPECT_EQ(out.at(3, 2), 0.0f);

  try {
    spnn::global_pool(x, spnn::PoolKind::kAvg, 2, ctx);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "global_pool: batch index 2 at point 1 is out of range "
                 "for declared batch count 2");
  }
  EXPECT_THROW(spnn::global_pool(x, spnn::PoolKind::kAvg, -1, ctx),
               std::invalid_argument);
  EXPECT_THROW(spnn::global_pool(x, spnn::PoolKind::kMax, 0, ctx),
               std::invalid_argument);  // points exist past count 0
}

TEST(EdgeCases, SerializeSaveToFailedStreamThrows) {
  // Regression (ROADMAP "Hardening"): saving into a failed/full stream
  // must be a loud runtime_error, not a silently truncated file.
  std::vector<Coord> coords = {{0, 1, 2, 3}};
  const SparseTensor t(coords, Matrix(1, 2, 0.5f));
  std::ostringstream os;
  os.setstate(std::ios::badbit);
  EXPECT_THROW(io::save_tensor(os, t), std::runtime_error);
  std::ostringstream ps;
  ps.setstate(std::ios::badbit);
  EXPECT_THROW(io::save_points(ps, {Point3{1, 2, 3, 0.5f, 0.0f}}),
               std::runtime_error);
}

TEST(EdgeCases, SerializeSaveToUnopenablePathThrows) {
  std::vector<Coord> coords = {{0, 1, 2, 3}};
  const SparseTensor t(coords, Matrix(1, 2, 0.5f));
  EXPECT_THROW(io::save_tensor_file("/nonexistent-dir/x.tsten", t),
               std::runtime_error);
  EXPECT_THROW(io::save_points_file("/nonexistent-dir/x.tspts", {}),
               std::runtime_error);
}

TEST(EdgeCases, BatchNormChannelMismatchThrows) {
  // Regression (ROADMAP "Hardening"): an NDEBUG build used to scale
  // features with out-of-bounds gamma/beta reads; now a descriptive
  // exception in Debug and Release, on cost-only passes too.
  std::mt19937_64 rng(11);
  spnn::BatchNorm bn(8, rng);
  std::vector<Coord> coords = {{0, 1, 1, 1}};
  SparseTensor x(coords, Matrix(1, 4, 1.0f));
  ExecContext ctx = fp32_ctx();
  try {
    bn.forward(x, ctx);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "spnn::BatchNorm: input has 4 channels but the layer was "
                 "built for 8");
  }
  ctx.compute_numerics = false;  // the contract is not numerics-gated
  EXPECT_THROW(bn.forward(x, ctx), std::invalid_argument);
}

TEST(EdgeCases, AddFeaturesShapeMismatchThrows) {
  std::vector<Coord> c1 = {{0, 1, 1, 1}};
  std::vector<Coord> c2 = {{0, 1, 1, 1}, {0, 2, 2, 2}};
  SparseTensor a(c1, Matrix(1, 4, 1.0f));
  SparseTensor b(c2, Matrix(2, 4, 1.0f));
  SparseTensor c(c1, Matrix(1, 3, 1.0f));
  ExecContext ctx = fp32_ctx();
  EXPECT_THROW(spnn::add_features(a, b, ctx), std::invalid_argument);
  EXPECT_THROW(spnn::add_features(a, c, ctx), std::invalid_argument);
  EXPECT_THROW(spnn::concat_features(a, b, ctx), std::invalid_argument);
}

TEST(EdgeCases, VoxelizeRejectsBadSpecAndPoints) {
  VoxelSpec bad = segmentation_voxels();
  bad.voxel_size_m = 0.0;
  EXPECT_THROW(voxelize({Point3{1, 2, 3, 0.5f, 0.0f}}, bad),
               std::invalid_argument);
  bad.voxel_size_m = -0.1;
  EXPECT_THROW(voxelize({Point3{1, 2, 3, 0.5f, 0.0f}}, bad),
               std::invalid_argument);
  EXPECT_THROW(
      voxelize({Point3{1, 2, 3, 0.5f, 0.0f}}, segmentation_voxels(), -1),
      std::invalid_argument);
  EXPECT_THROW(
      voxelize({Point3{1, 2, 3, 0.5f, 0.0f}}, segmentation_voxels(),
               kCoordBatchMax + 1),
      std::invalid_argument);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(voxelize({Point3{nan, 0, 0, 0.5f, 0.0f}},
                        segmentation_voxels()),
               std::invalid_argument);
}

TEST(EdgeCases, VoxelizeRejectsUnpackableSpan) {
  // Two points farther apart than the packable 18-bit coordinate range.
  VoxelSpec spec = segmentation_voxels();
  spec.voxel_size_m = 0.001;  // 1mm voxels blow up the span
  std::vector<Point3> pts = {Point3{0, 0, 0, 0.5f, 0.0f},
                             Point3{1000, 0, 0, 0.5f, 0.0f}};
  EXPECT_THROW(voxelize(pts, spec), std::invalid_argument);
}

TEST(EdgeCases, MergeBatchesRejectsStridedAndMismatchedScans) {
  std::vector<Coord> coords = {{0, 2, 2, 2}};
  const SparseTensor fine(coords, Matrix(1, 4, 1.0f));
  // A stride-2 tensor (derived constructor) must be rejected.
  const SparseTensor strided(fine.coords_ptr(), Matrix(1, 4, 1.0f), 2,
                             fine.cache());
  EXPECT_THROW(merge_batches({fine, strided}), std::invalid_argument);
  const SparseTensor narrow(coords, Matrix(1, 3, 1.0f));
  EXPECT_THROW(merge_batches({fine, narrow}), std::invalid_argument);
}

TEST(EdgeCases, LargeCoordinatesStayInPackableRange) {
  LidarSpec spec = waymo_spec(3);
  spec.azimuth_steps = 100;
  const SparseTensor t = make_input(spec, segmentation_voxels(), 8);
  for (const Coord& c : t.coords())
    ASSERT_TRUE(coord_in_packable_range(c));
}

}  // namespace
}  // namespace ts
