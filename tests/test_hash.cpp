// Coordinate packing, conventional hashmap, and collision-free grid tests.
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "hash/coords.hpp"
#include "hash/flat_hashmap.hpp"
#include "hash/grid_hashmap.hpp"

namespace ts {
namespace {

TEST(Coords, PackUnpackRoundTrip) {
  const Coord cases[] = {
      {0, 0, 0, 0},         {1, 5, -3, 7},     {1023, 1000, -1000, 99},
      {0, kCoordSpatialMin, kCoordSpatialMax, 0},
      {3, -1, -1, -1},      {7, 131071, -131072, 131071}};
  for (const Coord& c : cases) {
    ASSERT_TRUE(coord_in_packable_range(c));
    EXPECT_EQ(unpack_coord(pack_coord(c)), c);
  }
}

TEST(Coords, PackIsInjectiveOnRandomSample) {
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<int32_t> d(-5000, 5000);
  std::unordered_set<uint64_t> keys;
  std::set<std::tuple<int, int, int, int>> coords;
  for (int i = 0; i < 50000; ++i) {
    const Coord c{std::abs(d(rng)) % 1024, d(rng), d(rng), d(rng)};
    keys.insert(pack_coord(c));
    coords.insert({c.b, c.x, c.y, c.z});
  }
  EXPECT_EQ(keys.size(), coords.size());
}

TEST(Coords, RangeValidation) {
  EXPECT_FALSE(coord_in_packable_range({-1, 0, 0, 0}));
  EXPECT_FALSE(coord_in_packable_range({1024, 0, 0, 0}));
  EXPECT_FALSE(coord_in_packable_range({0, kCoordSpatialMax + 1, 0, 0}));
  EXPECT_FALSE(coord_in_packable_range({0, 0, kCoordSpatialMin - 1, 0}));
  EXPECT_TRUE(coord_in_packable_range({0, 0, 0, 0}));
}

TEST(FlatHashMap, InsertAndFind) {
  FlatHashMap m(16);
  m.insert(Coord{0, 1, 2, 3}, 42);
  m.insert(Coord{0, 4, 5, 6}, 7);
  EXPECT_EQ(m.find(Coord{0, 1, 2, 3}), 42);
  EXPECT_EQ(m.find(Coord{0, 4, 5, 6}), 7);
  EXPECT_EQ(m.find(Coord{0, 9, 9, 9}), FlatHashMap::kNotFound);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatHashMap, DuplicateKeepsFirstValue) {
  FlatHashMap m(4);
  m.insert(Coord{0, 1, 1, 1}, 10);
  m.insert(Coord{0, 1, 1, 1}, 20);
  EXPECT_EQ(m.find(Coord{0, 1, 1, 1}), 10);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMap, GrowsBeyondInitialCapacity) {
  FlatHashMap m(2);
  for (int i = 0; i < 5000; ++i) m.insert(Coord{0, i, 2 * i, -i}, i);
  EXPECT_EQ(m.size(), 5000u);
  for (int i = 0; i < 5000; ++i)
    ASSERT_EQ(m.find(Coord{0, i, 2 * i, -i}), i) << i;
}

TEST(FlatHashMap, ProbeCountingIsPositive) {
  FlatHashMap m(1024);
  std::size_t probes = m.insert(Coord{0, 1, 2, 3}, 0);
  EXPECT_GE(probes, 1u);
  std::size_t q = 0;
  m.find(Coord{0, 1, 2, 3}, &q);
  EXPECT_GE(q, 1u);
  EXPECT_GT(m.total_insert_probes(), 0u);
}

TEST(GridHashMap, ExactlyOneAccessSemantics) {
  GridHashMap g(Coord{0, 0, 0, 0}, Coord{0, 9, 9, 9});
  EXPECT_EQ(g.capacity(), 1000u);
  g.insert(Coord{0, 3, 4, 5}, 77);
  EXPECT_EQ(g.find(Coord{0, 3, 4, 5}), 77);
  EXPECT_EQ(g.find(Coord{0, 3, 4, 6}), GridHashMap::kNotFound);
  // Out of bounds: reported missing without touching memory.
  EXPECT_EQ(g.find(Coord{0, -1, 0, 0}), GridHashMap::kNotFound);
  EXPECT_EQ(g.find(Coord{0, 10, 0, 0}), GridHashMap::kNotFound);
}

TEST(GridHashMap, SparseBackedHugeBoundingBox) {
  // Above kDenseCellLimit the grid keeps its modeled dense capacity but
  // backs storage with a compact hash; semantics must be identical.
  const Coord lo{0, 0, 0, 0};
  const Coord hi{0, 4000, 4000, 4000};  // ~6.4e10 cells >> 2^22
  GridHashMap g(lo, hi);
  EXPECT_GT(g.capacity(), GridHashMap::kDenseCellLimit);
  EXPECT_EQ(g.capacity(), 4001ull * 4001ull * 4001ull);

  g.insert(Coord{0, 3999, 17, 2500}, 7);
  g.insert(Coord{0, 0, 0, 0}, 8);
  g.insert(Coord{0, 3999, 17, 2500}, 99);  // duplicate keeps first
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.find(Coord{0, 3999, 17, 2500}), 7);
  EXPECT_EQ(g.find(Coord{0, 0, 0, 0}), 8);
  EXPECT_EQ(g.find(Coord{0, 1, 2, 3}), GridHashMap::kNotFound);
  EXPECT_EQ(g.find(Coord{0, 4001, 0, 0}), GridHashMap::kNotFound);

  // Many inserts across the box: all retrievable, misses stay misses.
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<int32_t> d(0, 4000);
  std::vector<Coord> pts;
  std::unordered_set<uint64_t> seen;
  while (pts.size() < 3000) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) pts.push_back(c);
  }
  for (std::size_t i = 0; i < pts.size(); ++i)
    g.insert(pts[i], static_cast<int64_t>(i));
  EXPECT_EQ(g.size(), 2u + pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i)
    ASSERT_EQ(g.find(pts[i]), static_cast<int64_t>(i)) << i;
}

TEST(CoordIndex, SparseAndDenseGridAgreeAcrossLimit) {
  // The same point set indexed inside a small box (dense path) and after
  // translating one point out to inflate the box (sparse path) answers
  // queries identically, with the same access accounting.
  std::mt19937_64 rng(10);
  std::uniform_int_distribution<int32_t> d(0, 30);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (coords.size() < 500) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  CoordIndex dense(coords, MapBackend::kGrid);
  std::vector<Coord> stretched = coords;
  stretched.push_back(Coord{0, 8000, 8000, 8000});  // inflates the box
  CoordIndex sparse(stretched, MapBackend::kGrid);
  EXPECT_LE(dense.memory_bytes() / 8, GridHashMap::kDenseCellLimit);
  EXPECT_GT(sparse.memory_bytes() / 8, GridHashMap::kDenseCellLimit);
  EXPECT_EQ(sparse.build_accesses(), stretched.size());

  for (int i = 0; i < 2000; ++i) {
    const Coord q{0, d(rng), d(rng), d(rng)};
    ASSERT_EQ(dense.find(q), sparse.find(q));
  }
  EXPECT_EQ(sparse.find(Coord{0, 8000, 8000, 8000}),
            static_cast<int64_t>(stretched.size() - 1));
}

TEST(GridHashMap, NegativeCoordinateBounds) {
  GridHashMap g(Coord{0, -5, -5, -5}, Coord{1, 5, 5, 5});
  g.insert(Coord{1, -5, 0, 5}, 3);
  EXPECT_EQ(g.find(Coord{1, -5, 0, 5}), 3);
  EXPECT_EQ(g.find(Coord{0, -5, 0, 5}), GridHashMap::kNotFound);
}

TEST(CoordBounds, ComputesInclusiveBox) {
  Coord lo, hi;
  EXPECT_FALSE(coord_bounds({}, lo, hi));
  std::vector<Coord> cs = {{0, 1, -2, 3}, {0, -4, 5, 0}, {1, 2, 2, 2}};
  ASSERT_TRUE(coord_bounds(cs, lo, hi));
  EXPECT_EQ(lo, (Coord{0, -4, -2, 0}));
  EXPECT_EQ(hi, (Coord{1, 2, 5, 3}));
}

/// Property: both CoordIndex backends answer every query identically;
/// the grid uses exactly one DRAM access per build entry and per query.
class CoordIndexEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CoordIndexEquivalence, BackendsAgree) {
  const int n = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(n));
  std::uniform_int_distribution<int32_t> d(-40, 40);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  CoordIndex hash_idx(coords, MapBackend::kHashMap);
  CoordIndex grid_idx(coords, MapBackend::kGrid);
  EXPECT_EQ(grid_idx.build_accesses(), coords.size());

  std::size_t queries = 0;
  for (int i = 0; i < 2000; ++i) {
    const Coord q{0, d(rng), d(rng), d(rng)};
    EXPECT_EQ(hash_idx.find(q), grid_idx.find(q));
    ++queries;
  }
  EXPECT_EQ(grid_idx.query_accesses(), queries);
  EXPECT_GE(hash_idx.query_accesses(), queries);  // probing costs >= 1 each
}

INSTANTIATE_TEST_SUITE_P(Sizes, CoordIndexEquivalence,
                         ::testing::Values(1, 10, 100, 1000, 5000));

TEST(CoordIndex, GridUsesMoreMemoryThanHash) {
  // The paper's trade-off: collision-free grid costs memory space.
  std::vector<Coord> coords;
  for (int i = 0; i < 50; ++i) coords.push_back({0, i * 7, i * 11, i * 13});
  CoordIndex hash_idx(coords, MapBackend::kHashMap);
  CoordIndex grid_idx(coords, MapBackend::kGrid);
  EXPECT_GT(grid_idx.memory_bytes(), hash_idx.memory_bytes());
}

}  // namespace
}  // namespace ts
