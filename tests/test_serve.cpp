// Serving runtime: the batch path must be a pure throughput construct —
// identical per-request results to serial run_model, deterministic
// statistics, and exactly-once tuning under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <random>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "core/conv3d.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "nn/layers.hpp"
#include "serve/batch_runner.hpp"
#include "serve/serve_stats.hpp"
#include "serve/tuned_param_store.hpp"

namespace ts {
namespace {

SparseTensor random_tensor(int n, int extent, std::size_t channels,
                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  Matrix feats(coords.size(), channels);
  for (std::size_t i = 0; i < feats.size(); ++i) feats.data()[i] = f(rng);
  return SparseTensor(std::move(coords), std::move(feats));
}

/// A small but multi-level model (down + submanifold + up) so request
/// timelines exercise mapping, movement, and matmul stages.
ModelFn small_unet(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto net = std::make_shared<spnn::Sequential>();
  net->emplace<spnn::ConvBlock>(4, 16, 3, 1, false, rng);
  net->emplace<spnn::ConvBlock>(16, 32, 2, 2, false, rng);
  net->emplace<spnn::ConvBlock>(32, 32, 3, 1, false, rng);
  net->emplace<spnn::ConvBlock>(32, 16, 2, 2, true, rng);
  return [net](const SparseTensor& x, ExecContext& ctx) {
    net->forward(x, ctx);
  };
}

std::vector<SparseTensor> make_batch(int n, uint64_t seed) {
  std::vector<SparseTensor> batch;
  for (int i = 0; i < n; ++i)
    batch.push_back(random_tensor(150 + 20 * i, 12, 4,
                                  seed + static_cast<uint64_t>(i)));
  return batch;
}

void expect_same_timeline(const Timeline& a, const Timeline& b) {
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const Stage st = static_cast<Stage>(s);
    EXPECT_DOUBLE_EQ(a.stage_seconds(st), b.stage_seconds(st))
        << to_string(st);
  }
  EXPECT_DOUBLE_EQ(a.dram_bytes(), b.dram_bytes());
  EXPECT_EQ(a.kernel_launches(), b.kernel_launches());
  EXPECT_DOUBLE_EQ(a.flops(), b.flops());
}

TEST(BatchRunner, MatchesSerialRunModelPerInput) {
  const ModelFn model = small_unet(11);
  const auto batch = make_batch(6, 100);
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig cfg = torchsparse_config();

  serve::BatchOptions opt;
  opt.workers = 4;
  opt.run.numerics = true;
  const serve::BatchRunner runner(dev, cfg, opt);
  const serve::BatchReport report = runner.run(model, batch);

  ASSERT_EQ(report.requests.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    RunOptions serial;
    serial.numerics = true;
    const Timeline ref = run_model(model, batch[i], dev, cfg, serial);
    EXPECT_EQ(report.requests[i].index, i);
    expect_same_timeline(report.requests[i].timeline, ref);
  }
}

TEST(BatchRunner, StatsAreSaneUnderManyWorkers) {
  const ModelFn model = small_unet(12);
  const auto batch = make_batch(8, 200);
  serve::BatchOptions opt;
  opt.workers = 4;
  const serve::BatchRunner runner(rtx3090(), torchsparse_config(), opt);
  const serve::BatchReport report = runner.run(model, batch);
  const serve::BatchStats& s = report.stats;

  EXPECT_EQ(s.requests, batch.size());
  EXPECT_EQ(s.workers, 4);
  EXPECT_GT(s.makespan_seconds, 0.0);
  EXPECT_GT(s.throughput_fps, 0.0);
  EXPECT_GT(s.mean_service_seconds, 0.0);
  EXPECT_LE(s.latency_p50_seconds, s.latency_p90_seconds);
  EXPECT_LE(s.latency_p90_seconds, s.latency_p99_seconds);
  EXPECT_LE(s.latency_p99_seconds, s.makespan_seconds + 1e-12);

  double sum_service = 0, max_service = 0;
  for (const serve::RequestResult& r : report.requests) {
    EXPECT_GT(r.service_seconds, 0.0);
    EXPECT_GE(r.start_seconds, 0.0);
    EXPECT_DOUBLE_EQ(r.finish_seconds,
                     r.start_seconds + r.service_seconds);
    sum_service += r.service_seconds;
    max_service = std::max(max_service, r.service_seconds);
  }
  // The schedule can never beat perfect division of work or finish
  // before its longest single request, and never exceeds serial time.
  EXPECT_GE(s.makespan_seconds,
            std::max(max_service, sum_service / s.workers) - 1e-12);
  EXPECT_LE(s.makespan_seconds, sum_service + 1e-12);
  expect_same_timeline(s.aggregate, [&] {
    Timeline t;
    for (const auto& r : report.requests) t += r.timeline;
    return t;
  }());
}

TEST(BatchRunner, MoreWorkersImproveModeledThroughput) {
  const ModelFn model = small_unet(13);
  const auto batch = make_batch(8, 300);
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig cfg = torchsparse_config();

  auto throughput_with = [&](int workers) {
    serve::BatchOptions opt;
    opt.workers = workers;
    return serve::BatchRunner(dev, cfg, opt)
        .run(model, batch)
        .stats.throughput_fps;
  };
  const double one = throughput_with(1);
  const double four = throughput_with(4);
  EXPECT_GT(four, 1.5 * one);
}

TEST(BatchRunner, EmptyBatchAndWorkerClamping) {
  serve::BatchOptions opt;
  opt.workers = 0;  // clamped to 1
  const serve::BatchRunner runner(rtx2080ti(), torchsparse_config(), opt);
  EXPECT_EQ(runner.options().workers, 1);
  const serve::BatchReport report = runner.run(small_unet(14), {});
  EXPECT_TRUE(report.requests.empty());
  EXPECT_EQ(report.stats.requests, 0u);
  EXPECT_DOUBLE_EQ(report.stats.throughput_fps, 0.0);
}

TEST(TunedParamStore, ComputesEachKeyOnceUnderConcurrentAccess) {
  Workload w = make_minkunet_workload("serve-tune", "SemanticKITTI", 0.25,
                                      1, /*seed=*/77, /*scale=*/0.12,
                                      /*tune_sample_count=*/1);
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig cfg = torchsparse_config();
  const std::string key = serve::tuned_key(w.name, dev, cfg);

  serve::TunedParamStore store;
  constexpr int kThreads = 8;
  std::vector<serve::TunedParams> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] =
          store.get_or_tune(key, w.model, w.tune_samples, dev, cfg);
    });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(store.compute_count(), 1u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.contains(key));
  ASSERT_FALSE(results[0].empty());
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(results[static_cast<std::size_t>(t)], results[0]);
  // A second sequential request is a pure cache hit.
  EXPECT_EQ(store.get_or_tune(key, w.model, w.tune_samples, dev, cfg),
            results[0]);
  EXPECT_EQ(store.compute_count(), 1u);
}

TEST(TunedParamStore, DistinctKeysAreTunedIndependently) {
  Workload w = make_minkunet_workload("serve-tune2", "SemanticKITTI", 0.25,
                                      1, /*seed=*/78, /*scale=*/0.12,
                                      /*tune_sample_count=*/1);
  serve::TunedParamStore store;
  const EngineConfig cfg = torchsparse_config();
  const std::string k1 = serve::tuned_key(w.name, rtx2080ti(), cfg);
  const std::string k2 = serve::tuned_key(w.name, rtx3090(), cfg);
  EXPECT_NE(k1, k2);
  store.get_or_tune(k1, w.model, w.tune_samples, rtx2080ti(), cfg);
  store.get_or_tune(k2, w.model, w.tune_samples, rtx3090(), cfg);
  EXPECT_EQ(store.compute_count(), 2u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.get("missing-key").empty());
}

TEST(Conv3d, StrideMismatchErrorIsDescriptive) {
  // Regression for the seed SIGABRT: a transposed conv whose stride does
  // not divide the tensor stride must throw the same descriptive
  // runtime_error in Debug and Release, never assert.
  const SparseTensor x = random_tensor(40, 8, 4, 500);  // stride 1
  std::mt19937_64 rng(501);
  Conv3dParams up;
  up.geom = ConvGeometry{2, 2, true};
  up.weights = spnn::make_conv_weights(2, 4, 4, rng);
  ExecContext ctx(rtx2080ti(), torchsparse_config());
  try {
    sparse_conv3d(x, up, ctx);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(),
                 "transposed conv stride 2 does not divide tensor stride 1");
  }
}

TEST(Conv3d, ApiBoundaryChecksThrowInsteadOfAssert) {
  const SparseTensor x = random_tensor(40, 8, 4, 502);
  std::mt19937_64 rng(503);
  ExecContext ctx(rtx2080ti(), torchsparse_config());

  Conv3dParams wrong_count;
  wrong_count.geom = ConvGeometry{3, 1, false};
  wrong_count.weights = spnn::make_conv_weights(2, 4, 4, rng);  // 8 != 27
  EXPECT_THROW(sparse_conv3d(x, wrong_count, ctx), std::invalid_argument);

  Conv3dParams wrong_channels;
  wrong_channels.geom = ConvGeometry{3, 1, false};
  wrong_channels.weights = spnn::make_conv_weights(3, 8, 4, rng);  // x has 4
  EXPECT_THROW(sparse_conv3d(x, wrong_channels, ctx),
               std::invalid_argument);

  Conv3dParams zero_stride;
  zero_stride.geom = ConvGeometry{3, 0, false};
  zero_stride.weights = spnn::make_conv_weights(3, 4, 4, rng);
  EXPECT_THROW(sparse_conv3d(x, zero_stride, ctx), std::invalid_argument);
}

TEST(TunedParamStore, GetIsNonBlockingAndMissTolerant) {
  serve::TunedParamStore store;
  EXPECT_TRUE(store.get("never-tuned").empty());
  EXPECT_FALSE(store.contains("never-tuned"));
  EXPECT_EQ(store.compute_count(), 0u);
}

// --- serve::percentile: the shared nearest-rank implementation --------

TEST(ServeStats, PercentileNearestRankInteriorValues) {
  const std::vector<double> s = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  // Nearest rank: ceil(q * n)-th smallest (1-based).
  EXPECT_DOUBLE_EQ(serve::percentile(s, 0.50), 5.0);
  EXPECT_DOUBLE_EQ(serve::percentile(s, 0.90), 9.0);
  EXPECT_DOUBLE_EQ(serve::percentile(s, 0.99), 10.0);
  EXPECT_DOUBLE_EQ(serve::percentile(s, 0.05), 1.0);
  EXPECT_DOUBLE_EQ(serve::percentile(s, 0.11), 2.0);
  // Exact rank boundary: q*n integral picks that element, not the next.
  EXPECT_DOUBLE_EQ(serve::percentile(s, 0.30), 3.0);
}

TEST(ServeStats, PercentileEdgeQuantilesAndDegenerateSamples) {
  const std::vector<double> s = {3, 7, 11};
  // q = 0 clamps the rank up to 1 -> the minimum; q = 1 is the maximum
  // (rank n, never one past the end).
  EXPECT_DOUBLE_EQ(serve::percentile(s, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(serve::percentile(s, 1.0), 11.0);
  // A single sample answers every quantile with itself.
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(serve::percentile(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(serve::percentile(one, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(serve::percentile(one, 0.99), 42.0);
  EXPECT_DOUBLE_EQ(serve::percentile(one, 1.0), 42.0);
  // Empty sample: nothing to report.
  EXPECT_DOUBLE_EQ(serve::percentile({}, 0.5), 0.0);
}

TEST(ServeStats, PercentileRejectsOutOfRangeQuantiles) {
  const std::vector<double> s = {1, 2};
  EXPECT_THROW(serve::percentile(s, -0.01), std::invalid_argument);
  EXPECT_THROW(serve::percentile(s, 1.01), std::invalid_argument);
  EXPECT_THROW(
      serve::percentile(s, std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
  EXPECT_THROW(
      serve::percentile(s, std::numeric_limits<double>::infinity()),
      std::invalid_argument);
}

}  // namespace
}  // namespace ts
