// Property-based tests on sparse convolution invariants:
// linearity in the features, translation equivariance of submanifold
// convolution, permutation invariance over input point order, and
// engine-order independence of the result.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <unordered_map>
#include <unordered_set>

#include "core/conv3d.hpp"
#include "engines/presets.hpp"
#include "gpusim/device.hpp"
#include "nn/layers.hpp"

namespace ts {
namespace {

SparseTensor random_tensor(int n, int extent, std::size_t channels,
                           uint64_t seed, int32_t shift = 0) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng) + shift, d(rng) + shift, d(rng) + shift};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  Matrix feats(coords.size(), channels);
  for (std::size_t i = 0; i < feats.size(); ++i) feats.data()[i] = f(rng);
  return SparseTensor(std::move(coords), std::move(feats));
}

Conv3dParams random_conv(int kernel, int stride, std::size_t c_in,
                         std::size_t c_out, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Conv3dParams p;
  p.geom = ConvGeometry{kernel, stride, false};
  p.weights = spnn::make_conv_weights(kernel, c_in, c_out, rng);
  return p;
}

ExecContext fp32_ctx() {
  EngineConfig cfg = torchsparse_config();
  cfg.precision = Precision::kFP32;
  ExecContext ctx(rtx2080ti(), cfg);
  ctx.compute_numerics = true;
  return ctx;
}

class ConvProperties : public ::testing::TestWithParam<int> {};

TEST_P(ConvProperties, LinearInFeatures) {
  // conv(a*x + y) == a*conv(x) + conv(y) over the same coordinates.
  const int seed = GetParam();
  SparseTensor x = random_tensor(120, 9, 6, 100u + seed);
  SparseTensor y(x.coords_ptr(), x.feats(), x.stride(), x.cache());
  {
    std::mt19937_64 rng(200u + seed);
    std::uniform_real_distribution<float> f(-1.0f, 1.0f);
    for (std::size_t i = 0; i < y.feats().size(); ++i)
      y.feats().data()[i] = f(rng);
  }
  const float a = 0.5f + 0.1f * static_cast<float>(seed);
  const Conv3dParams p = random_conv(3, 1, 6, 5, 300u + seed);

  SparseTensor combo(x.coords(), x.feats());
  for (std::size_t i = 0; i < combo.feats().size(); ++i)
    combo.feats().data()[i] =
        a * x.feats().data()[i] + y.feats().data()[i];

  ExecContext c1 = fp32_ctx(), c2 = fp32_ctx(), c3 = fp32_ctx();
  const Matrix out_combo =
      sparse_conv3d(combo, p, c1).feats();
  const Matrix out_x = sparse_conv3d(SparseTensor(x.coords(), x.feats()),
                                     p, c2)
                           .feats();
  const Matrix out_y = sparse_conv3d(SparseTensor(y.coords(), y.feats()),
                                     p, c3)
                           .feats();
  for (std::size_t i = 0; i < out_combo.size(); ++i)
    EXPECT_NEAR(out_combo.data()[i],
                a * out_x.data()[i] + out_y.data()[i], 1e-3f);
}

TEST_P(ConvProperties, TranslationEquivariant) {
  // Shifting all coordinates by a constant shifts the output the same way
  // and leaves features unchanged (submanifold conv).
  const int seed = GetParam();
  const SparseTensor x = random_tensor(100, 8, 4, 400u + seed);
  const int32_t delta = 7;
  std::vector<Coord> shifted = x.coords();
  for (Coord& c : shifted) {
    c.x += delta;
    c.y += delta;
    c.z += delta;
  }
  const Conv3dParams p = random_conv(3, 1, 4, 4, 500u + seed);

  ExecContext c1 = fp32_ctx(), c2 = fp32_ctx();
  const SparseTensor out_a =
      sparse_conv3d(SparseTensor(x.coords(), x.feats()), p, c1);
  const SparseTensor out_b =
      sparse_conv3d(SparseTensor(shifted, x.feats()), p, c2);
  EXPECT_LT(max_abs_diff(out_a.feats(), out_b.feats()), 1e-5f);
}

TEST_P(ConvProperties, PermutationInvariant) {
  // Point clouds are unordered sets: permuting the input rows must give
  // the same feature at each coordinate.
  const int seed = GetParam();
  const SparseTensor x = random_tensor(90, 8, 4, 600u + seed);
  std::vector<std::size_t> perm(x.num_points());
  std::iota(perm.begin(), perm.end(), 0);
  std::mt19937_64 rng(700u + seed);
  std::shuffle(perm.begin(), perm.end(), rng);

  std::vector<Coord> pc(x.num_points());
  Matrix pf(x.num_points(), x.channels());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    pc[i] = x.coords()[perm[i]];
    std::copy(x.feats().row(perm[i]),
              x.feats().row(perm[i]) + x.channels(), pf.row(i));
  }

  const Conv3dParams p = random_conv(3, 1, 4, 6, 800u + seed);
  ExecContext c1 = fp32_ctx(), c2 = fp32_ctx();
  const SparseTensor out_a =
      sparse_conv3d(SparseTensor(x.coords(), x.feats()), p, c1);
  const SparseTensor out_b = sparse_conv3d(SparseTensor(pc, pf), p, c2);

  std::unordered_map<uint64_t, std::size_t> index_b;
  for (std::size_t k = 0; k < out_b.num_points(); ++k)
    index_b[pack_coord(out_b.coords()[k])] = k;
  ASSERT_EQ(out_a.num_points(), out_b.num_points());
  for (std::size_t k = 0; k < out_a.num_points(); ++k) {
    const auto it = index_b.find(pack_coord(out_a.coords()[k]));
    ASSERT_NE(it, index_b.end());
    for (std::size_t c = 0; c < out_a.channels(); ++c)
      EXPECT_NEAR(out_a.feats().at(k, c),
                  out_b.feats().at(it->second, c), 1e-4f);
  }
}

TEST_P(ConvProperties, StridedConvPermutationInvariantCoords) {
  // Downsampled coordinate sets are order-independent too (Alg. 3 returns
  // sorted-unique coordinates).
  const int seed = GetParam();
  const SparseTensor x = random_tensor(80, 10, 4, 900u + seed);
  std::vector<Coord> rev(x.coords().rbegin(), x.coords().rend());
  Matrix rf(x.num_points(), 4);
  for (std::size_t i = 0; i < rev.size(); ++i)
    std::copy(x.feats().row(x.num_points() - 1 - i),
              x.feats().row(x.num_points() - 1 - i) + 4, rf.row(i));

  const Conv3dParams p = random_conv(2, 2, 4, 4, 1000u + seed);
  ExecContext c1 = fp32_ctx(), c2 = fp32_ctx();
  const SparseTensor a =
      sparse_conv3d(SparseTensor(x.coords(), x.feats()), p, c1);
  const SparseTensor b = sparse_conv3d(SparseTensor(rev, rf), p, c2);
  EXPECT_EQ(a.coords(), b.coords());
  EXPECT_LT(max_abs_diff(a.feats(), b.feats()), 1e-4f);
}

TEST_P(ConvProperties, ZeroFeaturesGiveZeroOutput) {
  const int seed = GetParam();
  SparseTensor x = random_tensor(60, 8, 4, 1100u + seed);
  x.feats().fill(0.0f);
  const Conv3dParams p = random_conv(3, 1, 4, 8, 1200u + seed);
  ExecContext ctx = fp32_ctx();
  const SparseTensor y = sparse_conv3d(x, p, ctx);
  for (std::size_t i = 0; i < y.feats().size(); ++i)
    EXPECT_EQ(y.feats().data()[i], 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvProperties, ::testing::Range(0, 5));

TEST(ConvProperties, SingleIsolatedPointOnlySeesCenterWeight) {
  // A point with no neighbors: submanifold conv reduces to x * W_center.
  std::vector<Coord> coords = {{0, 50, 50, 50}};
  Matrix feats(1, 4);
  for (std::size_t c = 0; c < 4; ++c)
    feats.at(0, c) = 0.25f * static_cast<float>(c + 1);
  const Conv3dParams p = random_conv(3, 1, 4, 4, 42);
  ExecContext ctx = fp32_ctx();
  SparseTensor x(coords, feats);
  const SparseTensor y = sparse_conv3d(x, p, ctx);
  Matrix expect;
  mm(feats, p.weights[13], expect);
  EXPECT_LT(max_abs_diff(y.feats(), expect), 1e-6f);
}

}  // namespace
}  // namespace ts
