// serve::Server session API: lifecycle, bit-equivalence of the legacy
// BatchRunner::serve wrapper with a Server session, incremental
// StreamHandle fulfillment, pluggable routing (heterogeneous
// service-estimate hook), and warm-context hand-off across sessions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <random>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <vector>

#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "gpusim/device.hpp"
#include "io/serialize.hpp"
#include "nn/layers.hpp"
#include "serve/batch_runner.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_policies.hpp"
#include "serve/server.hpp"

namespace ts {
namespace {

SparseTensor random_tensor(int n, int extent, std::size_t channels,
                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  Matrix feats(coords.size(), channels);
  for (std::size_t i = 0; i < feats.size(); ++i) feats.data()[i] = f(rng);
  return SparseTensor(std::move(coords), std::move(feats));
}

ModelFn small_unet(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto net = std::make_shared<spnn::Sequential>();
  net->emplace<spnn::ConvBlock>(4, 16, 3, 1, false, rng);
  net->emplace<spnn::ConvBlock>(16, 32, 2, 2, false, rng);
  net->emplace<spnn::ConvBlock>(32, 32, 3, 1, false, rng);
  net->emplace<spnn::ConvBlock>(32, 16, 2, 2, true, rng);
  return [net](const SparseTensor& x, ExecContext& ctx) {
    net->forward(x, ctx);
  };
}

void expect_same_timeline(const Timeline& a, const Timeline& b) {
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const Stage st = static_cast<Stage>(s);
    EXPECT_DOUBLE_EQ(a.stage_seconds(st), b.stage_seconds(st))
        << to_string(st);
  }
  EXPECT_DOUBLE_EQ(a.dram_bytes(), b.dram_bytes());
  EXPECT_EQ(a.kernel_launches(), b.kernel_launches());
  EXPECT_DOUBLE_EQ(a.flops(), b.flops());
}

void expect_same_report(const serve::StreamReport& a,
                        const serve::StreamReport& b) {
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    expect_same_timeline(a.requests[i].timeline, b.requests[i].timeline);
    EXPECT_EQ(a.requests[i].id, b.requests[i].id);
    EXPECT_EQ(a.requests[i].priority, b.requests[i].priority);
    EXPECT_DOUBLE_EQ(a.requests[i].service_seconds,
                     b.requests[i].service_seconds);
    EXPECT_DOUBLE_EQ(a.requests[i].start_seconds,
                     b.requests[i].start_seconds);
    EXPECT_DOUBLE_EQ(a.requests[i].finish_seconds,
                     b.requests[i].finish_seconds);
    EXPECT_DOUBLE_EQ(a.requests[i].queue_wait_seconds,
                     b.requests[i].queue_wait_seconds);
    EXPECT_DOUBLE_EQ(a.requests[i].e2e_seconds, b.requests[i].e2e_seconds);
    EXPECT_EQ(a.requests[i].batch_id, b.requests[i].batch_id);
    EXPECT_EQ(a.requests[i].device, b.requests[i].device);
  }
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t k = 0; k < a.batches.size(); ++k) {
    EXPECT_EQ(a.batches[k].first, b.batches[k].first);
    EXPECT_EQ(a.batches[k].size, b.batches[k].size);
    EXPECT_DOUBLE_EQ(a.batches[k].dispatch_seconds,
                     b.batches[k].dispatch_seconds);
    EXPECT_DOUBLE_EQ(a.batches[k].start_seconds, b.batches[k].start_seconds);
    EXPECT_DOUBLE_EQ(a.batches[k].finish_seconds,
                     b.batches[k].finish_seconds);
    EXPECT_EQ(a.batches[k].lane, b.batches[k].lane);
    EXPECT_EQ(a.batches[k].device, b.batches[k].device);
  }
  EXPECT_DOUBLE_EQ(a.stats.makespan_seconds, b.stats.makespan_seconds);
  EXPECT_DOUBLE_EQ(a.stats.throughput_fps, b.stats.throughput_fps);
  EXPECT_DOUBLE_EQ(a.stats.mean_batch_size, b.stats.mean_batch_size);
  EXPECT_DOUBLE_EQ(a.stats.queue_wait_p99_seconds,
                   b.stats.queue_wait_p99_seconds);
  EXPECT_DOUBLE_EQ(a.stats.e2e_p99_seconds, b.stats.e2e_p99_seconds);
  expect_same_timeline(a.stats.aggregate, b.stats.aggregate);
  EXPECT_EQ(a.stats.map_cache.lookups, b.stats.map_cache.lookups);
  EXPECT_EQ(a.stats.map_cache.hits, b.stats.map_cache.hits);
  EXPECT_EQ(a.stats.map_cache.evictions, b.stats.map_cache.evictions);
  EXPECT_DOUBLE_EQ(a.stats.map_cache.modeled_seconds_saved,
                   b.stats.map_cache.modeled_seconds_saved);
  ASSERT_EQ(a.stats.per_device.size(), b.stats.per_device.size());
  for (std::size_t d = 0; d < a.stats.per_device.size(); ++d) {
    EXPECT_EQ(a.stats.per_device[d].batches, b.stats.per_device[d].batches);
    EXPECT_EQ(a.stats.per_device[d].requests,
              b.stats.per_device[d].requests);
    EXPECT_DOUBLE_EQ(a.stats.per_device[d].busy_seconds,
                     b.stats.per_device[d].busy_seconds);
    EXPECT_DOUBLE_EQ(a.stats.per_device[d].free_seconds,
                     b.stats.per_device[d].free_seconds);
    EXPECT_EQ(a.stats.per_device[d].map_cache.hits,
              b.stats.per_device[d].map_cache.hits);
  }
  ASSERT_EQ(a.stats.per_class.size(), b.stats.per_class.size());
  for (std::size_t c = 0; c < a.stats.per_class.size(); ++c) {
    EXPECT_EQ(a.stats.per_class[c].completed,
              b.stats.per_class[c].completed);
    EXPECT_DOUBLE_EQ(a.stats.per_class[c].e2e_p99_seconds,
                     b.stats.per_class[c].e2e_p99_seconds);
    EXPECT_DOUBLE_EQ(a.stats.per_class[c].queue_wait_p99_seconds,
                     b.stats.per_class[c].queue_wait_p99_seconds);
  }
  ASSERT_EQ(a.stats.per_model.size(), b.stats.per_model.size());
  for (std::size_t m = 0; m < a.stats.per_model.size(); ++m) {
    EXPECT_EQ(a.stats.per_model[m].completed,
              b.stats.per_model[m].completed);
    EXPECT_EQ(a.stats.per_model[m].failed, b.stats.per_model[m].failed);
    EXPECT_EQ(a.stats.per_model[m].rejected,
              b.stats.per_model[m].rejected);
    EXPECT_EQ(a.stats.per_model[m].cache_hits,
              b.stats.per_model[m].cache_hits);
    EXPECT_EQ(a.stats.per_model[m].cache_lookups,
              b.stats.per_model[m].cache_lookups);
    EXPECT_DOUBLE_EQ(a.stats.per_model[m].queue_wait_p99_seconds,
                     b.stats.per_model[m].queue_wait_p99_seconds);
    EXPECT_DOUBLE_EQ(a.stats.per_model[m].e2e_p99_seconds,
                     b.stats.per_model[m].e2e_p99_seconds);
  }
}

/// A duplicate-heavy stream (u0 u0 u1 u1 ...) so the kernel-map cache
/// and affinity routing are genuinely exercised.
std::vector<SparseTensor> duplicate_stream(int n, uint64_t seed) {
  std::vector<SparseTensor> stream;
  for (int i = 0; i < n; ++i)
    stream.push_back(random_tensor(130 + 10 * (i / 2), 12, 4,
                                   seed + static_cast<uint64_t>(i / 2)));
  return stream;
}

// --- ServerConfig builder ---------------------------------------------

TEST(ServerConfig, BuilderChainsAndSetsEveryKnob) {
  serve::ServerConfig cfg;
  cfg.with_device(rtx3090())
      .with_engine(torchsparse_config())
      .with_workers(3)
      .with_map_cache_bytes(1 << 20)
      .with_queue_depth(7)
      .with_priority_preemption(true)
      .with_batch_overhead(0.002)
      .with_reuse_context(false)
      .with_devices(2)
      .with_route(serve::RoutePolicy::kCacheAffinity);
  serve::BatcherOptions b;
  b.max_batch = 5;
  cfg.with_batcher(b);
  serve::PriorityOptions p;
  p.aging_seconds = 0.25;
  cfg.with_priority(p);

  EXPECT_EQ(cfg.device.name, rtx3090().name);
  EXPECT_EQ(cfg.workers, 3);
  EXPECT_EQ(cfg.map_cache_bytes, std::size_t(1) << 20);
  EXPECT_EQ(cfg.queue.max_depth, 7u);
  EXPECT_TRUE(cfg.queue.priority_preemption);
  EXPECT_EQ(cfg.batcher.max_batch, 5);
  EXPECT_DOUBLE_EQ(cfg.priority.aging_seconds, 0.25);
  EXPECT_DOUBLE_EQ(cfg.batch_overhead_seconds, 0.002);
  EXPECT_FALSE(cfg.reuse_context);
  EXPECT_EQ(cfg.shard.devices, 2);
  EXPECT_EQ(cfg.shard.route, serve::RoutePolicy::kCacheAffinity);
}

TEST(Server, ValidatesConfigurationAtConstruction) {
  serve::ServerConfig bad_overhead;
  bad_overhead.batch_overhead_seconds = -1.0;
  EXPECT_THROW(serve::Server{bad_overhead}, std::invalid_argument);

  serve::ServerConfig bad_devices;
  bad_devices.shard.devices = serve::kMaxModeledDevices + 1;
  EXPECT_THROW(serve::Server{bad_devices}, std::invalid_argument);

  serve::ServerConfig bad_queue;
  bad_queue.queue.max_depth = 0;
  EXPECT_THROW(serve::Server{bad_queue}, std::invalid_argument);

  serve::ServerConfig bad_batcher;
  bad_batcher.batcher.slo_budget_seconds = -0.5;
  EXPECT_THROW(serve::Server{bad_batcher}, std::invalid_argument);

  serve::ServerConfig bad_aging;
  bad_aging.priority.aging_seconds = 0.0;
  EXPECT_THROW(serve::Server{bad_aging}, std::invalid_argument);
}

TEST(Server, LifecycleMisuseThrowsLogicError) {
  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti()).with_engine(torchsparse_config());
  serve::Server server(cfg);
  const SparseTensor x = random_tensor(40, 8, 4, 11);
  EXPECT_THROW(server.submit(x, 0.0), std::logic_error);
  EXPECT_THROW(server.drain(), std::logic_error);
  server.start(small_unet(12));
  EXPECT_TRUE(server.running());
  EXPECT_THROW(server.start(small_unet(12)), std::logic_error);
  server.submit(x, 0.0);
  const serve::StreamReport report = server.drain();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(report.stats.completed, 1u);
  // stop() when idle is a no-op.
  server.stop();
}

TEST(Server, SubmitAfterStopAndRestartAfterDrainAreHandled) {
  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti()).with_engine(torchsparse_config());
  serve::Server server(cfg);
  const SparseTensor x = random_tensor(40, 8, 4, 13);
  server.start(small_unet(14));
  server.submit(x, 0.0);
  server.stop();
  // A stopped session admits nothing, on either admission path.
  EXPECT_THROW(server.submit(x, 0.0), std::logic_error);
  EXPECT_THROW(server.try_submit(x, 0.0), std::logic_error);
  EXPECT_THROW(server.drain(), std::logic_error);
  // The server object itself survives: a fresh session starts cleanly.
  server.start(small_unet(14));
  server.submit(x, 0.0);
  EXPECT_EQ(server.drain().stats.completed, 1u);
}

TEST(Server, DrainRacingStopIsATypedErrorNeverAHang) {
  // Two controlling threads fight over shutdown. Exactly one wins the
  // join; the loser either sees a typed std::logic_error (session gone)
  // or a no-op (stop when idle) — never a double-join or a hang.
  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti()).with_engine(torchsparse_config());
  for (int round = 0; round < 8; ++round) {
    serve::Server server(cfg);
    server.start(small_unet(15));
    server.submit(random_tensor(40, 8, 4, 15), 0.0);
    std::atomic<int> drained{0}, refused{0};
    std::thread t1([&] {
      try {
        server.drain();
        ++drained;
      } catch (const std::logic_error&) {
        ++refused;
      }
    });
    std::thread t2([&] { server.stop(); });
    t1.join();
    t2.join();
    EXPECT_EQ(drained + refused, 1);
    EXPECT_FALSE(server.running());
    // Concurrent start() against the settled server still works.
    server.start(small_unet(15));
    server.stop();
  }
}

TEST(Server, SubmitRacingDrainStartCyclesNeverTouchesAFreedQueue) {
  // Regression: submit/try_submit used to read the queue_ pointer
  // outside life_mu_, so a laggard producer racing a drain()+start()
  // cycle could call into the old session's freed RequestQueue (a
  // use-after-free the thread-safety annotations now reject at compile
  // time under Clang). Producers hammer admission across restart
  // cycles; every call must either land in a live session's queue or
  // surface the typed logic_error. Run under TSan in CI.
  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti())
      .with_engine(torchsparse_config())
      // A small queue bounds each cycle's drain work: producers mostly
      // see a full queue (nullopt), which is admission traffic all the
      // same — the lock-ordering under test, not throughput.
      .with_queue_depth(8);
  serve::Server server(cfg);
  const SparseTensor x = random_tensor(40, 8, 4, 16);
  std::atomic<bool> done{false};
  std::atomic<int> admitted{0}, refused{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      // Arrival stamps must be non-decreasing per session; a shared
      // far-future stamp keeps concurrent producers mutually valid.
      while (!done) {
        try {
          if (server.try_submit(x, 1e6).has_value())
            ++admitted;
          else
            ++refused;  // full queue or closing session
        } catch (const std::logic_error&) {
          ++refused;  // between sessions: typed, never a crash
        }
      }
    });
  }
  for (int cycle = 0; cycle < 6; ++cycle) {
    server.start(small_unet(17));
    // Give producers a window to land submissions in this session.
    (void)server.try_submit(x, 1e6);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.stop();  // frees this session's queue; admission must not UAF
  }
  done = true;
  for (std::thread& t : producers) t.join();
  EXPECT_GT(admitted + refused, 0);
  EXPECT_FALSE(server.running());
}

// --- Legacy wrapper <-> Server session bit-equivalence ----------------

TEST(ServeEquivalence, LegacyServeBitEqualsServerSession) {
  const ModelFn model = small_unet(41);
  const auto stream = duplicate_stream(10, 4100);
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig engine = torchsparse_config();
  const std::size_t cache_bytes = std::size_t(64) << 20;

  // Legacy one-shot path: external queue + BatchRunner::serve.
  serve::BatchOptions opt;
  opt.workers = 2;
  opt.map_cache_bytes = cache_bytes;
  serve::StreamOptions sopt;
  sopt.batcher.policy = serve::BatchPolicy::kSloAware;
  sopt.batcher.max_batch = 3;
  sopt.batcher.slo_budget_seconds = 0.004;
  sopt.batch_overhead_seconds = 0.0005;
  sopt.shard.devices = 2;
  sopt.shard.route = serve::RoutePolicy::kCacheAffinity;
  serve::RequestQueue queue({/*max_depth=*/stream.size() + 1});
  for (std::size_t i = 0; i < stream.size(); ++i)
    queue.submit(stream[i], 0.002 * static_cast<double>(i));
  queue.close();
  const serve::StreamReport legacy =
      serve::BatchRunner(dev, engine, opt).serve(model, queue, sopt);

  // Session path: the same deployment expressed as a ServerConfig.
  serve::ServerConfig cfg;
  cfg.with_device(dev)
      .with_engine(engine)
      .with_workers(2)
      .with_map_cache_bytes(cache_bytes)
      .with_queue_depth(stream.size() + 1)
      .with_batcher(sopt.batcher)
      .with_batch_overhead(sopt.batch_overhead_seconds)
      .with_devices(2)
      .with_route(serve::RoutePolicy::kCacheAffinity);
  serve::Server server(cfg);
  server.start(model);
  std::vector<serve::StreamHandle> handles;
  for (std::size_t i = 0; i < stream.size(); ++i)
    handles.push_back(
        server.submit(stream[i], 0.002 * static_cast<double>(i)));
  const serve::StreamReport session = server.drain();

  // Identical modeled outputs, schedule, and stats through either API.
  expect_same_report(legacy, session);
  EXPECT_EQ(session.stats.per_class[1].completed, stream.size());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const serve::StreamResult& r = handles[i].get();
    EXPECT_DOUBLE_EQ(r.finish_seconds,
                     legacy.requests[i].finish_seconds);
    expect_same_timeline(r.timeline, legacy.requests[i].timeline);
  }
}

TEST(ServeEquivalence, WorkerAndDeviceCountsKeepModeledStatsInvariant) {
  // The Server path inherits the legacy invariance: modeled accounting
  // stats are independent of worker count at every device count.
  const ModelFn model = small_unet(42);
  const auto stream = duplicate_stream(8, 4200);
  auto serve_with = [&](int workers, int devices) {
    serve::ServerConfig cfg;
    cfg.with_device(rtx2080ti())
        .with_engine(torchsparse_config())
        .with_workers(workers)
        .with_map_cache_bytes(std::size_t(64) << 20)
        .with_queue_depth(stream.size() + 1)
        .with_devices(devices)
        .with_route(serve::RoutePolicy::kCacheAffinity);
    serve::BatcherOptions b;
    b.policy = serve::BatchPolicy::kImmediate;
    cfg.with_batcher(b);
    serve::Server server(cfg);
    server.start(model);
    for (std::size_t i = 0; i < stream.size(); ++i)
      server.submit(stream[i], 0.001 * static_cast<double>(i));
    return server.drain();
  };
  for (const int devices : {1, 2}) {
    const serve::StreamReport w1 = serve_with(1, devices);
    const serve::StreamReport w4 = serve_with(4, devices);
    expect_same_timeline(w1.stats.aggregate, w4.stats.aggregate);
    EXPECT_EQ(w1.stats.map_cache.hits, w4.stats.map_cache.hits);
    EXPECT_EQ(w1.stats.map_cache.misses, w4.stats.map_cache.misses);
    ASSERT_EQ(w1.requests.size(), w4.requests.size());
    for (std::size_t i = 0; i < w1.requests.size(); ++i) {
      EXPECT_DOUBLE_EQ(w1.requests[i].service_seconds,
                       w4.requests[i].service_seconds);
      EXPECT_EQ(w1.requests[i].device, w4.requests[i].device);
    }
  }
}

// --- Incremental fulfillment ------------------------------------------

TEST(IncrementalFulfillment, EarlyHandleReadyWhileLaterBatchesPending) {
  const ModelFn model = small_unet(43);
  const auto stream = duplicate_stream(6, 4300);

  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti())
      .with_engine(torchsparse_config())
      .with_workers(2)
      .with_queue_depth(stream.size() + 1);
  serve::BatcherOptions b;
  b.policy = serve::BatchPolicy::kImmediate;
  cfg.with_batcher(b);
  serve::Server server(cfg);
  server.start(model);

  // Submit only the first request; its singleton batch is placeable the
  // moment it is measured, long before the stream ends. get() blocks on
  // the handle's own fulfillment latch — no wall-clock polling, so the
  // wait is exact on any scheduler. The queue is still open and five
  // later requests have not even been submitted, yet the early handle
  // resolves.
  serve::StreamHandle first = server.submit(stream[0], 0.0);
  const serve::StreamResult early = first.get();
  EXPECT_TRUE(first.ready());
  EXPECT_TRUE(server.running());
  EXPECT_EQ(early.id, 0u);
  EXPECT_EQ(early.batch_id, 0u);

  std::vector<serve::StreamHandle> rest;
  for (std::size_t i = 1; i < stream.size(); ++i)
    rest.push_back(server.submit(stream[i], 0.001 * static_cast<double>(i)));
  const serve::StreamReport report = server.drain();

  // The early value is the final value: bit-identical to the end-of-
  // stream report...
  expect_same_timeline(early.timeline, report.requests[0].timeline);
  EXPECT_DOUBLE_EQ(early.start_seconds, report.requests[0].start_seconds);
  EXPECT_DOUBLE_EQ(early.finish_seconds, report.requests[0].finish_seconds);
  EXPECT_DOUBLE_EQ(early.e2e_seconds, report.requests[0].e2e_seconds);

  // ...and the whole stream is bit-identical to the legacy stream-end
  // path on the same (input, arrival) stream.
  serve::BatchOptions opt;
  opt.workers = 2;
  serve::StreamOptions sopt;
  sopt.batcher.policy = serve::BatchPolicy::kImmediate;
  serve::RequestQueue queue({/*max_depth=*/stream.size() + 1});
  queue.submit(stream[0], 0.0);
  for (std::size_t i = 1; i < stream.size(); ++i)
    queue.submit(stream[i], 0.001 * static_cast<double>(i));
  queue.close();
  const serve::StreamReport legacy =
      serve::BatchRunner(rtx2080ti(), torchsparse_config(), opt)
          .serve(model, queue, sopt);
  expect_same_report(legacy, report);
}

// --- Pluggable routing: heterogeneous service estimates ----------------

/// A custom policy modeling a group whose second device runs at half
/// speed: alternate batches between the devices and scale device 1's
/// service estimates by 2x.
class SlowSecondDeviceRouting final : public serve::RoutingPolicy {
 public:
  int route(const serve::RouteQuery& query,
            const serve::DeviceGroup& group) override {
    return static_cast<int>(query.batch_index %
                            static_cast<std::size_t>(group.size()));
  }
  double device_service_estimate(int device,
                                 double service_seconds) const override {
    return device == 1 ? 2.0 * service_seconds : service_seconds;
  }
  const char* name() const override { return "slow-second-device"; }
};

TEST(RoutingPolicyHook, ServiceEstimatesShapeHeterogeneousPlacement) {
  std::vector<serve::StreamResult> requests(2);
  std::vector<serve::DispatchBatch> plan;
  for (std::size_t i = 0; i < 2; ++i) {
    requests[i].id = i;
    requests[i].arrival_seconds = 0.0;
    requests[i].timeline.add(Stage::kMatMul, 1.0);
    requests[i].service_seconds = 1.0;
    plan.push_back({{i}, 0.0});
  }
  serve::DeviceGroup group(rtx2080ti(), 2, 0);
  SlowSecondDeviceRouting routing;
  std::vector<serve::StreamBatchRecord> batches;
  const serve::StreamStats stats = serve::schedule_stream_dispatch(
      requests, plan, group, routing, /*workers_per_device=*/1,
      /*batch_overhead_seconds=*/0.0, nullptr, &batches);

  // Device 0 finishes its unit batch at 1.0; device 1 models the same
  // work at 2x, so its lane (and the request's finish) lands at 2.0.
  EXPECT_EQ(requests[0].device, 0);
  EXPECT_EQ(requests[1].device, 1);
  EXPECT_DOUBLE_EQ(requests[0].finish_seconds, 1.0);
  EXPECT_DOUBLE_EQ(requests[1].finish_seconds, 2.0);
  EXPECT_DOUBLE_EQ(group.stats(0).busy_seconds, 1.0);
  EXPECT_DOUBLE_EQ(group.stats(1).busy_seconds, 2.0);
  EXPECT_DOUBLE_EQ(stats.makespan_seconds, 2.0);
  // The modeled single-request runtime is a device-neutral measurement;
  // the estimate only shapes placement.
  EXPECT_DOUBLE_EQ(requests[1].service_seconds, 1.0);
  expect_same_timeline(requests[0].timeline, requests[1].timeline);
}

TEST(ScheduleStreamDispatch, RejectsMalformedPlans) {
  std::vector<serve::StreamResult> requests(3);
  for (std::size_t i = 0; i < 3; ++i) {
    requests[i].id = i;
    requests[i].arrival_seconds = 0.1 * static_cast<double>(i);
    requests[i].service_seconds = 1.0;
  }
  serve::DeviceGroup group(rtx2080ti(), 1, 0);
  const auto routing =
      serve::make_routing_policy(serve::RoutePolicy::kRoundRobin);
  auto run_plan = [&](std::vector<serve::DispatchBatch> plan) {
    std::vector<serve::StreamResult> reqs = requests;
    serve::schedule_stream_dispatch(reqs, plan, group, *routing, 1, 0.0);
  };
  // Missing coverage, duplicate member, empty batch, pre-arrival
  // dispatch: all rejected.
  EXPECT_THROW(run_plan({{{0, 1}, 0.1}}), std::invalid_argument);
  EXPECT_THROW(run_plan({{{0, 1}, 0.1}, {{1, 2}, 0.2}}),
               std::invalid_argument);
  EXPECT_THROW(run_plan({{{0, 1}, 0.1}, {{}, 0.2}, {{2}, 0.2}}),
               std::invalid_argument);
  EXPECT_THROW(run_plan({{{0, 1, 2}, 0.1}}), std::invalid_argument);
  // A well-formed non-contiguous plan is accepted.
  std::vector<serve::StreamResult> reqs = requests;
  const serve::StreamStats ok = serve::schedule_stream_dispatch(
      reqs, {{{1, 0}, 0.1}, {{2}, 0.2}}, group, *routing, 1, 0.0);
  EXPECT_EQ(ok.completed, 3u);
  EXPECT_EQ(reqs[1].batch_id, 0u);
  EXPECT_DOUBLE_EQ(reqs[1].start_seconds, 0.1);
}

// --- Context hand-off across sessions ---------------------------------

TEST(ContextHandOff, ResetWithDeviceRestampsIdentityOnly) {
  const ModelFn model = small_unet(44);
  const SparseTensor x = random_tensor(120, 12, 4, 4400);
  RunOptions opt;
  opt.numerics = true;
  ExecContext ctx = make_run_context(rtx2080ti(), torchsparse_config(), opt);
  EXPECT_EQ(ctx.device_index, 0);
  const Timeline first = run_in_context(model, x, ctx);
  reset_context(ctx, 3);
  EXPECT_EQ(ctx.device_index, 3);
  const Timeline second = run_in_context(model, x, ctx);
  expect_same_timeline(first, second);
}

TEST(ContextHandOff, SessionsReuseWarmContextsWithIdenticalResults) {
  const ModelFn model = small_unet(45);
  const auto stream = duplicate_stream(6, 4500);
  auto run_session = [&](serve::Server& server) {
    server.start(model);
    for (std::size_t i = 0; i < stream.size(); ++i)
      server.submit(stream[i], 0.001 * static_cast<double>(i));
    return server.drain();
  };

  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti())
      .with_engine(torchsparse_config())
      .with_workers(2)
      .with_queue_depth(stream.size() + 1)
      .with_devices(2);
  serve::Server reused(cfg);
  const serve::StreamReport s1 = run_session(reused);
  // Session 2 adopts session 1's warm contexts (hand-off); a fresh
  // server serves the identical stream with cold contexts.
  const serve::StreamReport s2 = run_session(reused);
  serve::Server fresh(cfg);
  const serve::StreamReport ref = run_session(fresh);
  expect_same_report(s1, s2);
  expect_same_report(ref, s2);
}

// --- Error delivery ----------------------------------------------------

TEST(Server, RequestFailureReachesUnfulfilledHandlesAndDrainRethrows) {
  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti()).with_engine(torchsparse_config());
  serve::Server server(cfg);
  const ModelFn broken = [](const SparseTensor&, ExecContext&) {
    throw std::runtime_error("model exploded");
  };
  server.start(broken);
  serve::StreamHandle h =
      server.submit(random_tensor(50, 8, 4, 4600), 0.0);
  EXPECT_THROW(server.drain(), std::runtime_error);
  EXPECT_THROW(h.get(), std::runtime_error);
  // The server is reusable after a failed session.
  server.start(small_unet(46));
  server.submit(random_tensor(50, 8, 4, 4601), 0.0);
  const serve::StreamReport ok = server.drain();
  EXPECT_EQ(ok.stats.completed, 1u);
}

TEST(Server, CustomBatchingPolicyIsResetAfterFailedSession) {
  // A caller-supplied policy instance is reused across sessions; a
  // failed stream skips the normal end-of-stream flush, so the core
  // must reset it on the error path or session 2 would trip over
  // session 1's stale arrival clock and pending ids.
  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti()).with_engine(torchsparse_config());
  auto policy = std::make_shared<serve::SloBatchingPolicy>(
      serve::BatcherOptions{});
  cfg.with_batching_policy(policy);
  serve::Server server(cfg);

  const ModelFn broken = [](const SparseTensor&, ExecContext&) {
    throw std::runtime_error("model exploded");
  };
  server.start(broken);
  server.submit(random_tensor(50, 8, 4, 4800), 5.0);  // late stamp
  EXPECT_THROW(server.drain(), std::runtime_error);
  EXPECT_EQ(policy->pending(), 0u);

  // Session 2 submits at an *earlier* modeled stamp than session 1's
  // last arrival — only a reset policy accepts it.
  server.start(small_unet(48));
  server.submit(random_tensor(50, 8, 4, 4801), 0.0);
  const serve::StreamReport ok = server.drain();
  EXPECT_EQ(ok.stats.completed, 1u);
}

// --- Duplicate-aware batch formation ----------------------------------

serve::ArrivalInfo arrival_at(std::size_t id, double t, uint64_t digest,
                              serve::Priority prio = serve::Priority::kNormal) {
  serve::ArrivalInfo a;
  a.id = id;
  a.arrival_seconds = t;
  a.priority = prio;
  if (digest != 0) {
    a.digest = {digest, ~digest};
    a.has_digest = true;
  }
  return a;
}

void expect_same_plan(const std::vector<serve::DispatchBatch>& a,
                      const std::vector<serve::DispatchBatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].members, b[k].members) << "batch " << k;
    EXPECT_DOUBLE_EQ(a[k].dispatch_seconds, b[k].dispatch_seconds)
        << "batch " << k;
  }
}

TEST(DedupBatching, PlanBitEqualsSloWithoutDuplicates) {
  serve::BatcherOptions opt;
  opt.policy = serve::BatchPolicy::kSloAware;
  opt.max_batch = 3;
  opt.slo_budget_seconds = 0.010;
  // Digest-blind trace (every request its own group) and an all-unique
  // digest trace: both must reproduce the base policy stamp-for-stamp.
  std::vector<serve::ArrivalInfo> blind, unique;
  for (std::size_t i = 0; i < 8; ++i) {
    const double t = 0.003 * static_cast<double>(i);
    blind.push_back(arrival_at(i, t, 0));
    unique.push_back(arrival_at(i, t, 100 + i));
  }
  for (const auto* trace : {&blind, &unique}) {
    serve::SloBatchingPolicy slo(opt);
    serve::DedupBatchingPolicy dedup(opt);
    expect_same_plan(serve::plan_with(dedup, *trace),
                     serve::plan_with(slo, *trace));
  }
}

TEST(DedupBatching, GroupsStraddlingDuplicatesIntoOneDispatch) {
  serve::BatcherOptions opt;
  opt.policy = serve::BatchPolicy::kSloAware;
  opt.max_batch = 2;
  opt.slo_budget_seconds = 10.0;  // deadline rule out of the way
  // Digest pattern a a b: the base policy's class-full trigger fires at
  // the second request and splits the duplicate pair from nothing.
  const std::vector<serve::ArrivalInfo> trace = {
      arrival_at(0, 0.000, 7), arrival_at(1, 0.001, 7),
      arrival_at(2, 0.002, 8)};
  serve::SloBatchingPolicy slo(opt);
  const auto slo_plan = serve::plan_with(slo, trace);
  ASSERT_EQ(slo_plan.size(), 2u);
  EXPECT_EQ(slo_plan[0].members, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(slo_plan[1].members, (std::vector<std::size_t>{2}));

  // Dedup counts digest *groups* toward the cap, so the two a's wait as
  // one group until b arrives, then all three leave in one dispatch —
  // the duplicate rides along past max_batch without consuming cap.
  serve::DedupBatchingPolicy dedup(opt);
  const auto dedup_plan = serve::plan_with(dedup, trace);
  ASSERT_EQ(dedup_plan.size(), 1u);
  EXPECT_EQ(dedup_plan[0].members, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(dedup_plan[0].dispatch_seconds, 0.002);
}

TEST(DedupBatching, DeadlineRuleStillBoundsDuplicateWait) {
  serve::BatcherOptions opt;
  opt.policy = serve::BatchPolicy::kSloAware;
  opt.max_batch = 4;
  opt.slo_budget_seconds = 0.010;
  // A late second copy of digest a must not hold the first copy past
  // its wait budget: the inherited deadline rule dispatches at
  // arrival + budget exactly.
  const std::vector<serve::ArrivalInfo> trace = {
      arrival_at(0, 0.000, 7), arrival_at(1, 0.001, 8),
      arrival_at(2, 0.020, 7)};
  serve::DedupBatchingPolicy dedup(opt);
  const auto plan = serve::plan_with(dedup, trace);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].members, (std::vector<std::size_t>{0, 1}));
  EXPECT_DOUBLE_EQ(plan[0].dispatch_seconds, 0.010);
  EXPECT_EQ(plan[1].members, (std::vector<std::size_t>{2}));
}

TEST(DedupBatching, GroupsNeverCrossPriorityClasses) {
  serve::BatcherOptions opt;
  opt.policy = serve::BatchPolicy::kSloAware;
  opt.max_batch = 2;
  opt.slo_budget_seconds = 10.0;
  // digest a arrives in both kHigh and kNormal; a same-digest mate in a
  // lower class must NOT ride along with the high-class seed — strict
  // priority outranks dedup.
  const std::vector<serve::ArrivalInfo> trace = {
      arrival_at(0, 0.000, 7, serve::Priority::kHigh),
      arrival_at(1, 0.001, 7, serve::Priority::kNormal),
      arrival_at(2, 0.002, 8, serve::Priority::kHigh)};
  serve::DedupBatchingPolicy dedup(opt);
  const auto plan = serve::plan_with(dedup, trace);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].members, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(plan[1].members, (std::vector<std::size_t>{1}));
}

// --- Warm-started servers ---------------------------------------------

serve::StreamReport serve_all(serve::Server& server, const ModelFn& model,
                              const std::vector<SparseTensor>& stream) {
  server.start(model);
  for (std::size_t i = 0; i < stream.size(); ++i)
    server.submit(stream[i], 0.002 * static_cast<double>(i));
  return server.drain();
}

TEST(ServerWarmStart, RestartServesEntirelyFromSnapshot) {
  const ModelFn model = small_unet(49);
  const auto stream = duplicate_stream(8, 4900);
  auto make_cfg = [&] {
    serve::ServerConfig cfg;
    cfg.with_device(rtx2080ti())
        .with_engine(torchsparse_config())
        .with_workers(2)
        .with_map_cache_bytes(std::size_t(64) << 20)
        .with_queue_depth(stream.size() + 1)
        .with_devices(2)
        .with_route(serve::RoutePolicy::kCacheAffinity);
    return cfg;
  };

  // First life: every distinct scan pays its cold map builds.
  serve::Server first(make_cfg());
  const serve::StreamReport life1 = serve_all(first, model, stream);
  ASSERT_GT(life1.stats.map_cache.misses, 0u);

  // Restart hand-off through the serialized form: snapshot the wall
  // cache, round-trip the .tsmc image, warm-start a new server with it.
  std::stringstream image;
  first.map_cache()->save_snapshot(image);
  const auto snapshot =
      std::make_shared<const MapCacheSnapshot>(io::load_map_cache(image));
  serve::Server warmed(make_cfg().with_warm_snapshot(snapshot));
  const serve::StreamReport life2 = serve_all(warmed, model, stream);
  EXPECT_EQ(life2.stats.map_cache.misses, 0u);
  EXPECT_EQ(life2.stats.map_cache.hits, life2.stats.map_cache.lookups);
  EXPECT_EQ(life2.stats.map_cache.lookups, life1.stats.map_cache.lookups);

  // A cold restart (no snapshot) replays the full first-life ramp.
  serve::Server cold(make_cfg());
  const serve::StreamReport life3 = serve_all(cold, model, stream);
  EXPECT_EQ(life3.stats.map_cache.misses, life1.stats.map_cache.misses);
}

TEST(ServerWarmStart, ConfigWarmStartLoadsFromFileOrThrows) {
  const ModelFn model = small_unet(50);
  const auto stream = duplicate_stream(6, 5000);
  auto make_cfg = [&] {
    serve::ServerConfig cfg;
    cfg.with_device(rtx2080ti())
        .with_engine(torchsparse_config())
        .with_workers(2)
        .with_map_cache_bytes(std::size_t(64) << 20)
        .with_queue_depth(stream.size() + 1);
    return cfg;
  };
  serve::Server first(make_cfg());
  serve_all(first, model, stream);
  const std::string path = "/tmp/ts_server_warm_test.tsmc";
  io::save_map_cache_file(path, first.map_cache()->export_snapshot());

  // The path form and the in-memory form configure the same warm start.
  serve::ServerConfig from_file = make_cfg();
  from_file.warm_start(path);
  ASSERT_TRUE(from_file.warm_snapshot);
  serve::Server warmed_file(from_file);
  const serve::StreamReport via_file = serve_all(warmed_file, model, stream);

  std::stringstream image;
  first.map_cache()->save_snapshot(image);
  serve::Server warmed_mem(make_cfg().with_warm_snapshot(
      std::make_shared<const MapCacheSnapshot>(io::load_map_cache(image))));
  const serve::StreamReport via_mem = serve_all(warmed_mem, model, stream);
  expect_same_report(via_file, via_mem);
  EXPECT_EQ(via_file.stats.map_cache.misses, 0u);

  serve::ServerConfig missing = make_cfg();
  EXPECT_THROW(missing.warm_start("/tmp/ts_no_such_snapshot.tsmc"),
               std::runtime_error);
}

TEST(ServerWarmStart, DedupWarmStatsInvariantAcrossWorkersAndDevices) {
  // The full warm-start + dedup stack keeps the legacy invariance:
  // modeled stats are a function of the (snapshot, stream) alone, not
  // of worker or lane parallelism, at every device count.
  const ModelFn model = small_unet(51);
  const auto stream = duplicate_stream(8, 5100);
  auto make_cfg = [&](int workers, int devices) {
    serve::ServerConfig cfg;
    cfg.with_device(rtx2080ti())
        .with_engine(torchsparse_config())
        .with_workers(workers)
        .with_map_cache_bytes(std::size_t(64) << 20)
        .with_queue_depth(stream.size() + 1)
        .with_devices(devices)
        .with_route(serve::RoutePolicy::kRoundRobin)
        .with_dedup_batching();
    serve::BatcherOptions b;
    b.policy = serve::BatchPolicy::kSloAware;
    b.max_batch = 3;
    b.slo_budget_seconds = 0.015;
    cfg.with_batcher(b);
    return cfg;
  };
  serve::Server seed_server(make_cfg(2, 2));
  serve_all(seed_server, model, stream);
  std::stringstream image;
  seed_server.map_cache()->save_snapshot(image);
  const auto snapshot =
      std::make_shared<const MapCacheSnapshot>(io::load_map_cache(image));

  for (const int devices : {1, 2}) {
    serve::Server w1(make_cfg(1, devices).with_warm_snapshot(snapshot));
    serve::Server w4(make_cfg(4, devices).with_warm_snapshot(snapshot));
    const serve::StreamReport r1 = serve_all(w1, model, stream);
    const serve::StreamReport r4 = serve_all(w4, model, stream);
    expect_same_timeline(r1.stats.aggregate, r4.stats.aggregate);
    EXPECT_EQ(r1.stats.map_cache.hits, r4.stats.map_cache.hits);
    EXPECT_EQ(r1.stats.map_cache.misses, r4.stats.map_cache.misses);
    EXPECT_EQ(r1.stats.batches, r4.stats.batches);
    ASSERT_EQ(r1.requests.size(), r4.requests.size());
    for (std::size_t i = 0; i < r1.requests.size(); ++i) {
      EXPECT_DOUBLE_EQ(r1.requests[i].service_seconds,
                       r4.requests[i].service_seconds);
      EXPECT_EQ(r1.requests[i].device, r4.requests[i].device);
      EXPECT_EQ(r1.requests[i].batch_id, r4.requests[i].batch_id);
    }
  }
}

TEST(Server, RunBatchMatchesBatchRunnerRun) {
  const ModelFn model = small_unet(47);
  std::vector<SparseTensor> inputs;
  for (int i = 0; i < 4; ++i)
    inputs.push_back(random_tensor(100 + 10 * i, 12, 4,
                                   4700 + static_cast<uint64_t>(i)));
  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti())
      .with_engine(torchsparse_config())
      .with_workers(2);
  const serve::Server server(cfg);
  const serve::BatchReport via_server = server.run_batch(model, inputs);

  serve::BatchOptions opt;
  opt.workers = 2;
  const serve::BatchReport direct =
      serve::BatchRunner(rtx2080ti(), torchsparse_config(), opt)
          .run(model, inputs);
  ASSERT_EQ(via_server.requests.size(), direct.requests.size());
  for (std::size_t i = 0; i < direct.requests.size(); ++i) {
    expect_same_timeline(via_server.requests[i].timeline,
                         direct.requests[i].timeline);
    EXPECT_DOUBLE_EQ(via_server.requests[i].finish_seconds,
                     direct.requests[i].finish_seconds);
  }
  EXPECT_DOUBLE_EQ(via_server.stats.makespan_seconds,
                   direct.stats.makespan_seconds);
}

// --- Multi-model registry ---------------------------------------------

TEST(MultiModel, OneEntryRegistryBitEqualsLegacySession) {
  // The equivalence pin the whole registry design hangs on: a
  // single-entry registry (namespace 0, inherited SLO, no contending
  // model) must serve bit-identically to the same deployment through
  // start(model) — schedule, stats, cache accounting, everything.
  const ModelFn model = small_unet(51);
  const auto stream = duplicate_stream(10, 5100);
  auto base_config = [&] {
    serve::ServerConfig cfg;
    cfg.with_device(rtx2080ti())
        .with_engine(torchsparse_config())
        .with_workers(2)
        .with_map_cache_bytes(std::size_t(64) << 20)
        .with_queue_depth(stream.size() + 1)
        .with_batch_overhead(0.0005)
        .with_devices(2)
        .with_route(serve::RoutePolicy::kCacheAffinity);
    serve::BatcherOptions b;
    b.policy = serve::BatchPolicy::kSloAware;
    b.max_batch = 3;
    b.slo_budget_seconds = 0.004;
    cfg.with_batcher(b);
    return cfg;
  };

  serve::Server legacy(base_config());
  legacy.start(model);
  for (std::size_t i = 0; i < stream.size(); ++i)
    legacy.submit(stream[i], 0.002 * static_cast<double>(i));
  const serve::StreamReport via_legacy = legacy.drain();

  serve::ServerConfig registry_cfg = base_config();
  registry_cfg.with_model("minkunet", model);
  serve::Server registry(registry_cfg);
  EXPECT_EQ(registry.model_id("minkunet"), 0);
  EXPECT_EQ(registry.model_id("missing"), -1);
  registry.start();
  for (std::size_t i = 0; i < stream.size(); ++i)
    registry.submit_to(0, stream[i], 0.002 * static_cast<double>(i));
  const serve::StreamReport via_registry = registry.drain();

  expect_same_report(via_legacy, via_registry);
  ASSERT_EQ(via_registry.stats.per_model.size(), 1u);
  EXPECT_EQ(via_registry.stats.per_model[0].model, 0);
  EXPECT_EQ(via_registry.stats.per_model[0].completed, stream.size());
  for (const serve::StreamResult& r : via_registry.requests)
    EXPECT_EQ(r.model, 0);
  for (const serve::StreamBatchRecord& b : via_registry.batches)
    EXPECT_EQ(b.model, 0);
}

TEST(MultiModel, DeficitRoundRobinAlternatesContendingModels) {
  // Two equal-weight models with backlogged same-class work must share
  // dispatch opportunities via DRR instead of one model draining first.
  serve::BatcherOptions b;
  b.policy = serve::BatchPolicy::kSloAware;
  b.max_batch = 2;
  b.slo_budget_seconds = 1.0;
  const std::vector<serve::ModelBatchingInfo> models(2);
  serve::SloBatchingPolicy policy(b, {}, models);
  std::vector<serve::DispatchBatch> out;
  for (std::size_t i = 0; i < 8; ++i) {
    serve::ArrivalInfo info{i, 0.0005 * static_cast<double>(i),
                            serve::Priority::kNormal,
                            static_cast<int>(i % 2), {}, false};
    for (auto& batch : policy.on_arrival(info))
      out.push_back(std::move(batch));
  }
  for (auto& batch : policy.flush()) out.push_back(std::move(batch));
  ASSERT_EQ(out.size(), 8u);  // per-dispatch model filter: singletons
  std::size_t covered = 0;
  for (std::size_t k = 0; k < out.size(); ++k) {
    // Alternation: ties break to model 0, then the debit hands the
    // next opportunity to model 1, and so on.
    EXPECT_EQ(out[k].model, static_cast<int>(k % 2)) << "batch " << k;
    for (const std::size_t m : out[k].members) {
      EXPECT_EQ(static_cast<int>(m % 2), out[k].model);
      ++covered;
    }
  }
  EXPECT_EQ(covered, 8u);
}

TEST(MultiModel, PerModelSloOverridesDeadline) {
  // Model 1 carries a 1 ms budget against a 100 ms config default: its
  // requests must fire at arrival + 0.001 while model 0 keeps waiting.
  serve::BatcherOptions b;
  b.policy = serve::BatchPolicy::kSloAware;
  b.max_batch = 8;
  b.slo_budget_seconds = 0.1;
  std::vector<serve::ModelBatchingInfo> models(2);
  models[1].slo_budget_seconds = 0.001;
  serve::SloBatchingPolicy policy(b, {}, models);
  EXPECT_TRUE(policy.on_arrival({0, 0.0, serve::Priority::kNormal, 0,
                                 {}, false}).empty());
  EXPECT_TRUE(policy.on_arrival({1, 0.0002, serve::Priority::kNormal, 1,
                                 {}, false}).empty());
  // A late third arrival pushes the modeled clock past model 1's
  // deadline (0.0012) but nowhere near model 0's (0.1).
  const auto fired = policy.on_arrival({2, 0.05, serve::Priority::kNormal,
                                        0, {}, false});
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].model, 1);
  ASSERT_EQ(fired[0].members.size(), 1u);
  EXPECT_EQ(fired[0].members[0], 1u);
  EXPECT_DOUBLE_EQ(fired[0].dispatch_seconds, 0.0012);
  policy.flush();
}

TEST(MultiModel, SubmitToResolvesEntryDefaultPriority) {
  const ModelFn model = small_unet(52);
  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti())
      .with_engine(torchsparse_config())
      .with_queue_depth(8)
      .with_model("seg", model, /*slo_budget_seconds=*/-1,
                  serve::Priority::kHigh);
  serve::Server server(cfg);
  server.start();
  auto h_default = server.submit_to(0, random_tensor(120, 12, 4, 1), 0.0);
  auto h_explicit = server.submit_to(0, random_tensor(130, 12, 4, 2),
                                     0.001, serve::Priority::kLow);
  const serve::StreamReport report = server.drain();
  EXPECT_EQ(h_default.get().priority, serve::Priority::kHigh);
  EXPECT_EQ(h_explicit.get().priority, serve::Priority::kLow);
  ASSERT_EQ(report.stats.per_model.size(), 1u);
  EXPECT_EQ(report.stats.per_model[0].completed, 2u);
}

TEST(MultiModel, TwoModelSessionSplitsStatsByModel) {
  const ModelFn seg = small_unet(53);
  const ModelFn det = small_unet(54);
  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti())
      .with_engine(torchsparse_config())
      .with_workers(2)
      .with_map_cache_bytes(std::size_t(64) << 20)
      .with_queue_depth(32)
      .with_model("seg", seg)
      .with_model("det", det);
  serve::Server server(cfg);
  EXPECT_EQ(server.model_id("det"), 1);
  server.start();
  const auto stream = duplicate_stream(12, 5300);
  for (std::size_t i = 0; i < stream.size(); ++i)
    server.submit_to(static_cast<int>(i % 2), stream[i],
                     0.002 * static_cast<double>(i));
  const serve::StreamReport report = server.drain();

  ASSERT_EQ(report.stats.per_model.size(), 2u);
  EXPECT_EQ(report.stats.per_model[0].completed, 6u);
  EXPECT_EQ(report.stats.per_model[1].completed, 6u);
  EXPECT_GT(report.stats.per_model[0].e2e_p99_seconds, 0.0);
  EXPECT_GT(report.stats.per_model[1].e2e_p99_seconds, 0.0);
  ASSERT_EQ(report.requests.size(), stream.size());
  for (std::size_t i = 0; i < report.requests.size(); ++i)
    EXPECT_EQ(report.requests[i].model, static_cast<int>(i % 2));
  // Batches never mix models: every request's serving batch carries
  // the request's own model id (members need not be index-contiguous,
  // so group through batch_id rather than [first, first + size)).
  std::map<std::size_t, int> batch_model;
  for (const serve::StreamBatchRecord& b : report.batches)
    batch_model[b.batch_id] = b.model;
  for (const serve::StreamResult& r : report.requests) {
    const auto it = batch_model.find(r.batch_id);
    ASSERT_NE(it, batch_model.end());
    EXPECT_EQ(r.model, it->second);
  }
  // The duplicate stream repeats each tensor under BOTH models: the
  // namespace salt must keep those lookups from ever crossing tenants,
  // and the per-model split must cover the session totals.
  EXPECT_EQ(report.stats.per_model[0].cache_lookups +
                report.stats.per_model[1].cache_lookups,
            report.stats.map_cache.lookups);
}

TEST(MultiModel, RegistryAndLifecycleValidation) {
  const ModelFn model = small_unet(55);

  serve::ServerConfig dup;
  dup.with_model("a", model).with_model("a", model);
  EXPECT_THROW(serve::Server{dup}, std::invalid_argument);

  serve::ServerConfig unnamed;
  unnamed.with_model("", model);
  EXPECT_THROW(serve::Server{unnamed}, std::invalid_argument);

  serve::ServerConfig null_fn;
  null_fn.with_model("a", ModelFn{});
  EXPECT_THROW(serve::Server{null_fn}, std::invalid_argument);

  serve::ServerConfig bad_weight;
  bad_weight.with_model("a", model, -1, serve::Priority::kNormal, 0.0);
  EXPECT_THROW(serve::Server{bad_weight}, std::invalid_argument);

  serve::ServerConfig bad_tuned;
  bad_tuned.with_model("a", model);
  EXPECT_THROW(bad_tuned.with_model_tuned(3, {}), std::invalid_argument);

  // Lifecycle mismatches: a registry server refuses start(model); a
  // legacy server refuses start() and submit_to().
  serve::ServerConfig registry_cfg;
  registry_cfg.with_device(rtx2080ti())
      .with_engine(torchsparse_config())
      .with_model("a", model);
  serve::Server registry(registry_cfg);
  EXPECT_THROW(registry.start(model), std::invalid_argument);
  registry.start();
  EXPECT_THROW(registry.submit_to(1, random_tensor(100, 12, 4, 9), 0.0),
               std::invalid_argument);
  EXPECT_THROW(registry.submit_to(-1, random_tensor(100, 12, 4, 9), 0.0),
               std::invalid_argument);
  registry.stop();

  serve::ServerConfig legacy_cfg;
  legacy_cfg.with_device(rtx2080ti()).with_engine(torchsparse_config());
  serve::Server legacy(legacy_cfg);
  EXPECT_THROW(legacy.start(), std::logic_error);
  legacy.start(model);
  EXPECT_THROW(legacy.submit_to(0, random_tensor(100, 12, 4, 9), 0.0),
               std::logic_error);
  legacy.stop();
}

}  // namespace
}  // namespace ts
