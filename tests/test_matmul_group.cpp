// Grouping strategy tests (paper §4.2, Fig. 6, Alg. 4).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <set>

#include "core/matmul_group.hpp"

namespace ts {
namespace {

/// Validates the universal invariants of any plan: every nonzero offset
/// covered exactly once, padded_rows >= every member size in bmm groups.
void check_plan(const std::vector<MMGroup>& groups,
                const std::vector<std::size_t>& sizes) {
  std::set<int> covered;
  for (const MMGroup& g : groups) {
    EXPECT_FALSE(g.offsets.empty());
    for (int n : g.offsets) {
      EXPECT_TRUE(covered.insert(n).second) << "offset " << n << " twice";
      EXPECT_GT(sizes[static_cast<std::size_t>(n)], 0u);
      if (g.use_bmm)
        EXPECT_LE(sizes[static_cast<std::size_t>(n)], g.padded_rows);
    }
  }
  for (std::size_t n = 0; n < sizes.size(); ++n)
    EXPECT_EQ(covered.count(static_cast<int>(n)) > 0, sizes[n] > 0)
        << "offset " << n;
}

std::vector<std::size_t> symmetric_sizes(uint64_t seed, std::size_t base) {
  // A submanifold layer's size profile: symmetric around a big center.
  std::mt19937_64 rng(seed);
  std::vector<std::size_t> sizes(27);
  for (int i = 0; i < 13; ++i) {
    sizes[static_cast<std::size_t>(i)] = base / 2 + rng() % base;
    sizes[static_cast<std::size_t>(26 - i)] = sizes[static_cast<std::size_t>(i)];
  }
  sizes[13] = base * 4;  // center is the largest (Fig. 12)
  return sizes;
}

TEST(PlanGroups, SeparateIsOneGroupPerOffset) {
  const auto sizes = symmetric_sizes(1, 1000);
  const auto groups = plan_groups(sizes, true, GroupingStrategy::kSeparate,
                                  GroupParams{});
  check_plan(groups, sizes);
  EXPECT_EQ(groups.size(), 27u);
  for (const MMGroup& g : groups) {
    EXPECT_EQ(g.offsets.size(), 1u);
    EXPECT_FALSE(g.use_bmm);
  }
}

TEST(PlanGroups, SymmetricPairsMirrors) {
  const auto sizes = symmetric_sizes(2, 800);
  const auto groups = plan_groups(sizes, true, GroupingStrategy::kSymmetric,
                                  GroupParams{});
  check_plan(groups, sizes);
  // 13 mirror pairs + the center.
  EXPECT_EQ(groups.size(), 14u);
  int center_groups = 0;
  for (const MMGroup& g : groups) {
    if (g.is_center) {
      ++center_groups;
      EXPECT_EQ(g.offsets, std::vector<int>{13});
      continue;
    }
    ASSERT_EQ(g.offsets.size(), 2u);
    EXPECT_TRUE(g.use_bmm);
    EXPECT_EQ(g.offsets[0] + g.offsets[1], 26);  // mirror pair
    // Equal sizes -> zero padding waste.
    EXPECT_EQ(sizes[static_cast<std::size_t>(g.offsets[0])], g.padded_rows);
  }
  EXPECT_EQ(center_groups, 1);
}

TEST(PlanGroups, FixedIsThreeGroupsOnSubmanifold) {
  const auto sizes = symmetric_sizes(3, 600);
  const auto groups = plan_groups(sizes, true, GroupingStrategy::kFixed,
                                  GroupParams{});
  check_plan(groups, sizes);
  ASSERT_EQ(groups.size(), 3u);  // W0-3+mirrors, rest+mirrors, center
  EXPECT_EQ(groups[0].offsets.size(), 8u);
  EXPECT_EQ(groups[1].offsets.size(), 18u);
  EXPECT_TRUE(groups[2].is_center);
}

TEST(PlanGroups, FixedIsSingleGroupOnDownsample) {
  std::vector<std::size_t> sizes(8, 500);
  const auto groups = plan_groups(sizes, false, GroupingStrategy::kFixed,
                                  GroupParams{});
  check_plan(groups, sizes);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].offsets.size(), 8u);
  EXPECT_TRUE(groups[0].use_bmm);
}

TEST(PlanGroups, AdaptiveEpsilonZeroGivesSymmetricGrouping) {
  // Paper: (epsilon=0, S=inf) == symmetric grouping. With distinct pair
  // sizes, every group is one mirror pair.
  std::vector<std::size_t> sizes(27);
  for (int i = 0; i < 13; ++i) {
    sizes[static_cast<std::size_t>(i)] = 100 + 50 * static_cast<std::size_t>(i);
    sizes[static_cast<std::size_t>(26 - i)] = sizes[static_cast<std::size_t>(i)];
  }
  sizes[13] = 5000;
  const auto adaptive = plan_groups(sizes, true, GroupingStrategy::kAdaptive,
                                    GroupParams{0.0, 1e18});
  const auto symmetric = plan_groups(sizes, true,
                                     GroupingStrategy::kSymmetric,
                                     GroupParams{});
  check_plan(adaptive, sizes);
  ASSERT_EQ(adaptive.size(), symmetric.size());
  EXPECT_EQ(planned_flops(adaptive, sizes, 32, 32),
            planned_flops(symmetric, sizes, 32, 32));
}

TEST(PlanGroups, AdaptiveThresholdZeroDisablesBmm) {
  // Paper: S=0 == separate computation (every group runs per-offset mm).
  const auto sizes = symmetric_sizes(4, 700);
  const auto groups = plan_groups(sizes, true, GroupingStrategy::kAdaptive,
                                  GroupParams{0.5, 0.0});
  check_plan(groups, sizes);
  for (const MMGroup& g : groups) EXPECT_FALSE(g.use_bmm);
  EXPECT_EQ(planned_flops(groups, sizes, 16, 16),
            theoretical_flops(sizes, 16, 16));
}

TEST(PlanGroups, AdaptiveEpsilonOneMergesEverything) {
  const auto sizes = symmetric_sizes(5, 900);
  const auto groups = plan_groups(sizes, true, GroupingStrategy::kAdaptive,
                                  GroupParams{1.0, 1e18});
  check_plan(groups, sizes);
  ASSERT_EQ(groups.size(), 2u);  // one merged group + center
  EXPECT_EQ(groups[0].offsets.size(), 26u);
}

TEST(PlanGroups, AdaptiveRespectsEpsilonWithinGroups) {
  std::mt19937_64 rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::size_t> sizes(27);
    for (int i = 0; i < 13; ++i) {
      sizes[static_cast<std::size_t>(i)] = 1 + rng() % 10000;
      sizes[static_cast<std::size_t>(26 - i)] =
          sizes[static_cast<std::size_t>(i)];
    }
    sizes[13] = 20000;
    const double eps = (trial % 10) * 0.1;
    const auto groups = plan_groups(sizes, true,
                                    GroupingStrategy::kAdaptive,
                                    GroupParams{eps, 1e18});
    check_plan(groups, sizes);
    for (const MMGroup& g : groups) {
      if (g.is_center) continue;
      std::size_t lo = SIZE_MAX, hi = 0;
      for (int n : g.offsets) {
        lo = std::min(lo, sizes[static_cast<std::size_t>(n)]);
        hi = std::max(hi, sizes[static_cast<std::size_t>(n)]);
      }
      const double ratio = 1.0 - static_cast<double>(lo) /
                                     static_cast<double>(hi);
      EXPECT_LE(ratio, eps + 1e-12);
    }
  }
}

TEST(PlanGroups, DownsampleAdaptiveGroupsSimilarSizes) {
  // K=2 downsample: all 8 offsets similar -> epsilon 0.2 gives one group.
  std::vector<std::size_t> sizes = {1000, 1010, 990, 1005,
                                    998,  1002, 995, 1008};
  const auto groups = plan_groups(sizes, false, GroupingStrategy::kAdaptive,
                                  GroupParams{0.2, 1e18});
  check_plan(groups, sizes);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_TRUE(groups[0].use_bmm);
  EXPECT_EQ(groups[0].padded_rows, 1010u);
}

TEST(PlanGroups, ZeroSizedOffsetsAreSkipped) {
  std::vector<std::size_t> sizes(27, 0);
  sizes[13] = 100;
  sizes[0] = sizes[26] = 50;
  const auto groups = plan_groups(sizes, true, GroupingStrategy::kAdaptive,
                                  GroupParams{0.1, 1e18});
  check_plan(groups, sizes);
}

TEST(PlanGroups, AllZeroSizesYieldNoGroups) {
  std::vector<std::size_t> sizes(27, 0);
  for (auto strat :
       {GroupingStrategy::kSeparate, GroupingStrategy::kSymmetric,
        GroupingStrategy::kFixed, GroupingStrategy::kAdaptive,
        GroupingStrategy::kDenseAll}) {
    EXPECT_TRUE(plan_groups(sizes, true, strat, GroupParams{}).empty());
  }
}

TEST(PlannedFlops, PaddingWasteIsNonNegative) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const auto sizes = symmetric_sizes(100 + trial, 1 + rng() % 5000);
    for (auto strat :
         {GroupingStrategy::kSeparate, GroupingStrategy::kSymmetric,
          GroupingStrategy::kFixed, GroupingStrategy::kAdaptive,
          GroupingStrategy::kDenseAll}) {
      const auto groups = plan_groups(sizes, true, strat,
                                      GroupParams{0.3, 4096});
      EXPECT_GE(planned_flops(groups, sizes, 64, 64),
                theoretical_flops(sizes, 64, 64) - 1e-6)
          << to_string(strat);
    }
  }
}

TEST(PlannedFlops, SeparateHasZeroWaste) {
  const auto sizes = symmetric_sizes(8, 1234);
  const auto groups = plan_groups(sizes, true, GroupingStrategy::kSeparate,
                                  GroupParams{});
  EXPECT_EQ(planned_flops(groups, sizes, 8, 8),
            theoretical_flops(sizes, 8, 8));
}

}  // namespace
}  // namespace ts
