// SECOND-style detector tests (plain sparse middle encoder + BEV RPN)
// and parallel-GEMM determinism.
#include <gtest/gtest.h>

#include <random>

#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "gpusim/device.hpp"
#include "nn/second.hpp"
#include "tensor/matrix.hpp"

namespace ts {
namespace {

SparseTensor waymo_input(int azimuth, uint64_t seed) {
  LidarSpec spec = waymo_spec(1);
  spec.azimuth_steps = azimuth;
  VoxelSpec vox = detection_voxels();
  vox.feature_channels = 5;
  return make_input(spec, vox, seed);
}

TEST(Second, RunsEndToEnd) {
  const SparseTensor x = waymo_input(120, 21);
  spnn::SecondDetector det(5, 22);
  EngineConfig cfg = torchsparse_config();
  cfg.precision = Precision::kFP32;
  ExecContext ctx(rtx2080ti(), cfg);
  ctx.compute_numerics = true;
  const spnn::SecondOutput out = det.run(x, ctx);
  EXPECT_EQ(out.middle_out.stride(), 8);
  EXPECT_GT(out.middle_out.num_points(), 0u);
  EXPECT_GT(ctx.timeline.stage_seconds(Stage::kDense2D), 0.0);
  EXPECT_GT(ctx.timeline.stage_seconds(Stage::kNMS), 0.0);
  for (std::size_t i = 1; i < out.detections.size(); ++i)
    EXPECT_GE(out.detections[i - 1].score, out.detections[i].score);
}

TEST(Second, ConvCollectionCoversMiddleEncoder) {
  spnn::SecondDetector det(5, 23);
  // stem + 3 stages x (2 submanifold + 1 downsample) = 10 convs.
  EXPECT_EQ(det.convs().size(), 10u);
}

TEST(Second, FasterUnderTorchSparseThanBaseline) {
  const SparseTensor x = waymo_input(300, 24);
  spnn::SecondDetector det(5, 25);
  auto run = [&](const EngineConfig& cfg) {
    ExecContext ctx(rtx2080ti(), cfg);
    ctx.compute_numerics = false;
    SparseTensor fresh(x.coords(), x.feats());
    det.run(fresh, ctx);
    return ctx.timeline.total_seconds();
  };
  EXPECT_LT(run(torchsparse_config()), run(baseline_config()));
}

TEST(ParallelGemm, LargeMatmulBitwiseMatchesSequentialStructure) {
  // The threaded path slices disjoint output rows; results must equal a
  // per-row sequential computation exactly.
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  Matrix a(4000, 96), b(96, 64);  // large enough to engage threads
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = f(rng);
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = f(rng);
  Matrix big;
  mm(a, b, big);
  // Row-by-row (never threaded) reference.
  for (std::size_t r = 0; r < a.rows(); r += 997) {
    Matrix row(1, a.cols());
    std::copy(a.row(r), a.row(r) + a.cols(), row.data());
    Matrix out;
    mm(row, b, out);
    for (std::size_t c = 0; c < b.cols(); ++c)
      EXPECT_EQ(out.at(0, c), big.at(r, c)) << r << "," << c;
  }
}

}  // namespace
}  // namespace ts
