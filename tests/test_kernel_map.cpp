// Kernel offsets, map search (Alg. 1), symmetric inference, transposition.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <unordered_set>

#include "core/kernel_map.hpp"
#include "core/kernel_offsets.hpp"
#include "hash/coords.hpp"

namespace ts {
namespace {

std::vector<Coord> random_coords(int n, int extent, uint64_t seed,
                                 int batch = 0) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{batch, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  return coords;
}

TEST(KernelOffsets, OddKernelCenteredLexicographic) {
  const auto offs = kernel_offsets(3);
  ASSERT_EQ(offs.size(), 27u);
  EXPECT_EQ(offs.front(), (Offset3{-1, -1, -1}));
  EXPECT_EQ(offs.back(), (Offset3{1, 1, 1}));
  EXPECT_EQ(offs[13], (Offset3{0, 0, 0}));
  EXPECT_EQ(center_offset_index(3), 13);
}

TEST(KernelOffsets, EvenKernelNonNegative) {
  const auto offs = kernel_offsets(2);
  ASSERT_EQ(offs.size(), 8u);
  EXPECT_EQ(offs.front(), (Offset3{0, 0, 0}));
  EXPECT_EQ(offs.back(), (Offset3{1, 1, 1}));
  EXPECT_EQ(center_offset_index(2), -1);
}

TEST(KernelOffsets, MirrorSymmetryProperty) {
  // offset[i] == -offset[V-1-i] for odd kernels — the foundation of
  // symmetric grouping (paper §4.2.1).
  for (int k : {1, 3, 5}) {
    const auto offs = kernel_offsets(k);
    const int v = static_cast<int>(offs.size());
    for (int i = 0; i < v; ++i)
      EXPECT_EQ(offs[static_cast<std::size_t>(i)],
                negate(offs[static_cast<std::size_t>(
                    mirror_offset_index(v, i))]))
          << "k=" << k << " i=" << i;
  }
}

/// Brute-force map search (quadratic; oracle for Alg. 1).
KernelMap brute_force_map(const std::vector<Coord>& in,
                          const std::vector<Coord>& out,
                          const ConvGeometry& geom) {
  const auto offs = kernel_offsets(geom.kernel_size);
  KernelMap km;
  km.kernel_size = geom.kernel_size;
  km.maps.resize(offs.size());
  for (std::size_t n = 0; n < offs.size(); ++n) {
    for (std::size_t k = 0; k < out.size(); ++k) {
      Coord r;
      if (!geom.transposed) {
        r = Coord{out[k].b, geom.stride * out[k].x + offs[n].dx,
                  geom.stride * out[k].y + offs[n].dy,
                  geom.stride * out[k].z + offs[n].dz};
      } else {
        const int s = geom.stride;
        const int32_t ux = out[k].x - offs[n].dx;
        const int32_t uy = out[k].y - offs[n].dy;
        const int32_t uz = out[k].z - offs[n].dz;
        if (((ux % s) + s) % s || ((uy % s) + s) % s || ((uz % s) + s) % s)
          continue;
        r = Coord{out[k].b, ux / s, uy / s, uz / s};
      }
      for (std::size_t j = 0; j < in.size(); ++j)
        if (in[j] == r)
          km.maps[n].push_back(
              {static_cast<int32_t>(j), static_cast<int32_t>(k)});
    }
  }
  return km;
}

void expect_same_maps(const KernelMap& a, const KernelMap& b) {
  ASSERT_EQ(a.maps.size(), b.maps.size());
  for (std::size_t n = 0; n < a.maps.size(); ++n) {
    auto sa = a.maps[n];
    auto sb = b.maps[n];
    auto lt = [](const MapEntry& x, const MapEntry& y) {
      return std::tie(x.out, x.in) < std::tie(y.out, y.in);
    };
    std::sort(sa.begin(), sa.end(), lt);
    std::sort(sb.begin(), sb.end(), lt);
    ASSERT_EQ(sa.size(), sb.size()) << "offset " << n;
    EXPECT_EQ(sa, sb) << "offset " << n;
  }
}

struct MapCase {
  int n_points;
  int extent;
  int kernel;
  int stride;
};

class MapSearchOracle : public ::testing::TestWithParam<MapCase> {};

TEST_P(MapSearchOracle, MatchesBruteForce) {
  const MapCase c = GetParam();
  const auto in = random_coords(c.n_points, c.extent, 99);
  std::vector<Coord> out;
  if (c.stride == 1) {
    out = in;
  } else {
    // Valid downsampled coords: floor-div of a sample of inputs, deduped.
    std::unordered_set<uint64_t> seen;
    for (const Coord& p : in) {
      const Coord q{p.b, p.x / c.stride, p.y / c.stride, p.z / c.stride};
      if (seen.insert(pack_coord(q)).second) out.push_back(q);
    }
  }
  ConvGeometry geom{c.kernel, c.stride, false};
  MapSearchOptions opts;
  for (MapBackend backend : {MapBackend::kHashMap, MapBackend::kGrid}) {
    opts.backend = backend;
    opts.use_symmetry = false;
    expect_same_maps(build_kernel_map(in, out, geom, opts),
                     brute_force_map(in, out, geom));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapSearchOracle,
    ::testing::Values(MapCase{40, 6, 3, 1}, MapCase{150, 10, 3, 1},
                      MapCase{60, 8, 5, 1}, MapCase{80, 9, 2, 2},
                      MapCase{120, 12, 3, 2}, MapCase{50, 8, 1, 1}));

TEST(MapSearch, SymmetryMatchesDirectSearch) {
  const auto coords = random_coords(300, 12, 5);
  ConvGeometry geom{3, 1, false};
  MapSearchOptions direct{MapBackend::kGrid, false};
  MapSearchOptions sym{MapBackend::kGrid, true};
  const KernelMap a = build_kernel_map(coords, coords, geom, direct);
  const KernelMap b = build_kernel_map(coords, coords, geom, sym);
  expect_same_maps(a, b);
  EXPECT_TRUE(b.stats.used_symmetry);
  EXPECT_FALSE(a.stats.used_symmetry);
  // Symmetry halves queries and skips the center entirely.
  EXPECT_LE(b.stats.queries, a.stats.queries / 2);
}

TEST(MapSearch, SymmetryIgnoredForStridedLayers) {
  const auto in = random_coords(100, 10, 6);
  std::vector<Coord> out;
  std::unordered_set<uint64_t> seen;
  for (const Coord& p : in) {
    const Coord q{p.b, p.x / 2, p.y / 2, p.z / 2};
    if (seen.insert(pack_coord(q)).second) out.push_back(q);
  }
  ConvGeometry geom{2, 2, false};
  MapSearchOptions opts{MapBackend::kGrid, true};  // requested but invalid
  const KernelMap km = build_kernel_map(in, out, geom, opts);
  EXPECT_FALSE(km.stats.used_symmetry);
}

TEST(MapSearch, CenterMapIsIdentityOnSubmanifold) {
  const auto coords = random_coords(64, 8, 7);
  ConvGeometry geom{3, 1, false};
  const KernelMap km = build_kernel_map(coords, coords, geom,
                                        {MapBackend::kGrid, true});
  const auto& center = km.maps[13];
  ASSERT_EQ(center.size(), coords.size());
  for (std::size_t i = 0; i < center.size(); ++i) {
    EXPECT_EQ(center[i].in, static_cast<int32_t>(i));
    EXPECT_EQ(center[i].out, static_cast<int32_t>(i));
  }
}

TEST(MapSearch, SubmanifoldMapSizesAreSymmetric) {
  // |M[delta]| == |M[-delta]| (paper §4.2.1).
  const auto coords = random_coords(500, 14, 8);
  ConvGeometry geom{3, 1, false};
  const KernelMap km = build_kernel_map(coords, coords, geom,
                                        {MapBackend::kGrid, false});
  for (int n = 0; n < 27; ++n)
    EXPECT_EQ(km.size(n), km.size(mirror_offset_index(27, n)));
}

TEST(MapSearch, TransposedMatchesBruteForce) {
  // Coarse inputs, fine outputs (decoder direction).
  const auto fine = random_coords(200, 10, 9);
  std::vector<Coord> coarse;
  std::unordered_set<uint64_t> seen;
  for (const Coord& p : fine) {
    const Coord q{p.b, p.x / 2, p.y / 2, p.z / 2};
    if (seen.insert(pack_coord(q)).second) coarse.push_back(q);
  }
  ConvGeometry geom{2, 2, true};
  expect_same_maps(
      build_kernel_map(coarse, fine, geom, {MapBackend::kGrid, false}),
      brute_force_map(coarse, fine, geom));
}

TEST(MapSearch, TransposeOfForwardEqualsTransposedSearch) {
  // The decoder's map-reuse trick: transpose(forward map) must equal the
  // directly searched transposed map.
  const auto fine = random_coords(250, 12, 10);
  std::vector<Coord> coarse;
  std::unordered_set<uint64_t> seen;
  for (const Coord& p : fine) {
    const Coord q{p.b, p.x / 2, p.y / 2, p.z / 2};
    if (seen.insert(pack_coord(q)).second) coarse.push_back(q);
  }
  ConvGeometry fwd{2, 2, false};
  ConvGeometry inv{2, 2, true};
  const KernelMap forward =
      build_kernel_map(fine, coarse, fwd, {MapBackend::kGrid, false});
  const KernelMap direct =
      build_kernel_map(coarse, fine, inv, {MapBackend::kGrid, false});
  expect_same_maps(transpose_kernel_map(forward), direct);
}

TEST(MapSearch, GridAndHashBackendsReportDifferentAccessCosts) {
  const auto coords = random_coords(2000, 20, 11);
  ConvGeometry geom{3, 1, false};
  const KernelMap grid = build_kernel_map(coords, coords, geom,
                                          {MapBackend::kGrid, false});
  const KernelMap hash = build_kernel_map(coords, coords, geom,
                                          {MapBackend::kHashMap, false});
  EXPECT_EQ(grid.stats.index_accesses, grid.stats.queries);
  EXPECT_GT(hash.stats.index_accesses, hash.stats.queries);
}

}  // namespace
}  // namespace ts
