// Synthetic LiDAR generator and voxelizer tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "data/lidar.hpp"
#include "data/voxelize.hpp"

namespace ts {
namespace {

TEST(Lidar, DeterministicInSeed) {
  LidarSpec spec = semantic_kitti_spec();
  spec.azimuth_steps = 100;
  const auto a = generate_scan(spec, 7);
  const auto b = generate_scan(spec, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
    EXPECT_EQ(a[i].z, b[i].z);
  }
}

TEST(Lidar, DifferentSeedsDifferentScenes) {
  LidarSpec spec = semantic_kitti_spec();
  spec.azimuth_steps = 100;
  const auto a = generate_scan(spec, 1);
  const auto b = generate_scan(spec, 2);
  // Same ray grid but different scene geometry -> different points.
  int diff = 0;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i)
    if (a[i].x != b[i].x) ++diff;
  EXPECT_GT(diff, static_cast<int>(std::min(a.size(), b.size()) / 4));
}

TEST(Lidar, PointsWithinRangeAndScene) {
  LidarSpec spec = waymo_spec(1);
  spec.azimuth_steps = 200;
  for (const Point3& p : generate_scan(spec, 3)) {
    const double r = std::sqrt(p.x * p.x + p.y * p.y);
    EXPECT_LT(r, spec.max_range_m + 1.0);
    EXPECT_GT(p.z, -1.0);   // nothing below ground
    EXPECT_LT(p.z, 10.0);   // nothing above buildings
    EXPECT_GE(p.intensity, 0.0f);
  }
}

TEST(Lidar, BeamCountsMatchDatasets) {
  EXPECT_EQ(semantic_kitti_spec().beams, 64);
  EXPECT_EQ(nuscenes_spec(1).beams, 32);
  EXPECT_EQ(waymo_spec(1).beams, 64);
  EXPECT_EQ(nuscenes_spec(10).frames, 10);
}

TEST(Lidar, MultiFrameAggregationGrowsPointCount) {
  LidarSpec one = nuscenes_spec(1);
  one.azimuth_steps = 150;
  LidarSpec three = nuscenes_spec(3);
  three.azimuth_steps = 150;
  const auto a = generate_scan(one, 5);
  const auto b = generate_scan(three, 5);
  EXPECT_GT(b.size(), 2 * a.size());
  // Older frames carry a positive time tag.
  float max_time = 0;
  for (const Point3& p : b) max_time = std::max(max_time, p.time);
  EXPECT_GT(max_time, 0.1f);
}

TEST(Voxelize, CoordsNonNegativeAndUnique) {
  LidarSpec spec = semantic_kitti_spec();
  spec.azimuth_steps = 150;
  const SparseTensor t = make_input(spec, segmentation_voxels(), 11);
  ASSERT_GT(t.num_points(), 100u);
  std::unordered_set<uint64_t> seen;
  for (const Coord& c : t.coords()) {
    EXPECT_GE(c.x, 0);
    EXPECT_GE(c.y, 0);
    EXPECT_GE(c.z, 0);
    EXPECT_EQ(c.b, 0);
    EXPECT_TRUE(seen.insert(pack_coord(c)).second) << "duplicate voxel";
  }
  EXPECT_EQ(t.stride(), 1);
  EXPECT_EQ(t.channels(), 4u);
}

TEST(Voxelize, FeatureOffsetsWithinVoxel) {
  LidarSpec spec = nuscenes_spec(1);
  spec.azimuth_steps = 120;
  const SparseTensor t = make_input(spec, detection_voxels(), 13);
  for (std::size_t i = 0; i < t.num_points(); ++i) {
    const float* row = t.feats().row(i);
    // Mean in-voxel offsets, centered: within [-0.5, 0.5].
    EXPECT_GE(row[0], -0.51f);
    EXPECT_LE(row[0], 0.51f);
    EXPECT_GE(row[3], 0.0f);  // intensity
    EXPECT_LE(row[3], 1.0f);
  }
}

TEST(Voxelize, FiveChannelModeCarriesTime) {
  LidarSpec spec = nuscenes_spec(3);
  spec.azimuth_steps = 100;
  VoxelSpec vox = detection_voxels();
  vox.feature_channels = 5;
  const SparseTensor t = make_input(spec, vox, 17);
  EXPECT_EQ(t.channels(), 5u);
  float max_age = 0;
  for (std::size_t i = 0; i < t.num_points(); ++i)
    max_age = std::max(max_age, t.feats().row(i)[4]);
  EXPECT_GT(max_age, 0.05f);
}

TEST(Voxelize, CoarserVoxelsFewerPoints) {
  LidarSpec spec = semantic_kitti_spec();
  spec.azimuth_steps = 200;
  const auto pts = generate_scan(spec, 19);
  VoxelSpec fine;
  fine.voxel_size_m = 0.05;
  VoxelSpec coarse;
  coarse.voxel_size_m = 0.2;
  EXPECT_GT(voxelize(pts, fine).num_points(),
            voxelize(pts, coarse).num_points());
}

TEST(Voxelize, DatasetSparsityOrdering) {
  // Fig. 12's premise: nuScenes (32-beam) workloads are much smaller than
  // SemanticKITTI (64-beam) at the segmentation voxel size.
  LidarSpec sk = semantic_kitti_spec();
  LidarSpec ns = nuscenes_spec(1);
  const double scale = 0.4;
  sk.azimuth_steps = static_cast<int>(sk.azimuth_steps * scale);
  ns.azimuth_steps = static_cast<int>(ns.azimuth_steps * scale);
  const auto t_sk = make_input(sk, segmentation_voxels(), 23);
  const auto t_ns = make_input(ns, segmentation_voxels(), 23);
  EXPECT_GT(t_sk.num_points(), 2 * t_ns.num_points());
}

}  // namespace
}  // namespace ts
