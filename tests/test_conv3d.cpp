// Sparse convolution end-to-end correctness: every engine preset and every
// optimization combination must agree with the dense volumetric reference.
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "core/conv3d.hpp"
#include "core/dense_reference.hpp"
#include "core/downsample.hpp"
#include "engines/presets.hpp"
#include "gpusim/device.hpp"
#include "nn/layers.hpp"

namespace ts {
namespace {

SparseTensor random_tensor(int n, int extent, std::size_t channels,
                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  Matrix feats(coords.size(), channels);
  for (std::size_t i = 0; i < feats.size(); ++i) feats.data()[i] = f(rng);
  return SparseTensor(std::move(coords), std::move(feats));
}

Conv3dParams random_conv(int kernel, int stride, bool transposed,
                         std::size_t c_in, std::size_t c_out,
                         uint64_t seed) {
  std::mt19937_64 rng(seed);
  Conv3dParams p;
  p.geom = ConvGeometry{kernel, stride, transposed};
  p.weights = spnn::make_conv_weights(kernel, c_in, c_out, rng);
  return p;
}

ExecContext make_ctx(const EngineConfig& cfg) {
  ExecContext ctx(rtx2080ti(), cfg);
  ctx.compute_numerics = true;
  return ctx;
}

EngineConfig fp32_torchsparse() {
  EngineConfig cfg = torchsparse_config();
  cfg.precision = Precision::kFP32;  // exact comparison against oracle
  return cfg;
}

TEST(Conv3d, SubmanifoldMatchesDenseReferenceExactly) {
  const SparseTensor x = random_tensor(200, 10, 8, 1);
  const Conv3dParams p = random_conv(3, 1, false, 8, 12, 2);
  ExecContext ctx = make_ctx(fp32_torchsparse());
  const SparseTensor y = sparse_conv3d(x, p, ctx);
  const Matrix ref =
      dense_reference_conv(x.coords(), x.feats(), y.coords(), p);
  EXPECT_LT(max_abs_diff(y.feats(), ref), 2e-5f);
  EXPECT_EQ(y.coords(), x.coords());  // P_out == P_in (paper §2)
  EXPECT_EQ(y.stride(), 1);
}

TEST(Conv3d, StridedConvProducesDownsampledCoords) {
  const SparseTensor x = random_tensor(300, 12, 4, 3);
  const Conv3dParams p = random_conv(2, 2, false, 4, 8, 4);
  ExecContext ctx = make_ctx(fp32_torchsparse());
  const SparseTensor y = sparse_conv3d(x, p, ctx);
  EXPECT_EQ(y.stride(), 2);
  const auto expect = downsample_coords(x.coords(), 2, 2, true, true);
  EXPECT_EQ(y.coords(), expect);
  const Matrix ref =
      dense_reference_conv(x.coords(), x.feats(), y.coords(), p);
  EXPECT_LT(max_abs_diff(y.feats(), ref), 2e-5f);
}

TEST(Conv3d, OddKernelStride2MatchesReference) {
  const SparseTensor x = random_tensor(250, 14, 6, 5);
  const Conv3dParams p = random_conv(3, 2, false, 6, 10, 6);
  ExecContext ctx = make_ctx(fp32_torchsparse());
  const SparseTensor y = sparse_conv3d(x, p, ctx);
  const Matrix ref =
      dense_reference_conv(x.coords(), x.feats(), y.coords(), p);
  EXPECT_LT(max_abs_diff(y.feats(), ref), 2e-5f);
}

TEST(Conv3d, TransposedConvRestoresFineCoords) {
  const SparseTensor x = random_tensor(300, 12, 4, 7);
  ExecContext ctx = make_ctx(fp32_torchsparse());
  const Conv3dParams down = random_conv(2, 2, false, 4, 8, 8);
  const SparseTensor mid = sparse_conv3d(x, down, ctx);
  const Conv3dParams up = random_conv(2, 2, true, 8, 4, 9);
  const SparseTensor y = sparse_conv3d(mid, up, ctx);
  EXPECT_EQ(y.stride(), 1);
  EXPECT_EQ(y.coords(), x.coords());  // exactly the cached fine coords
  const Matrix ref =
      dense_reference_conv(mid.coords(), mid.feats(), y.coords(), up);
  EXPECT_LT(max_abs_diff(y.feats(), ref), 2e-4f);
}

TEST(Conv3d, TransposedWithoutCachedCoordsThrows) {
  const SparseTensor x = random_tensor(50, 8, 4, 10);
  const Conv3dParams up = random_conv(2, 2, true, 4, 4, 11);
  ExecContext ctx = make_ctx(fp32_torchsparse());
  EXPECT_THROW(sparse_conv3d(x, up, ctx), std::runtime_error);
}

TEST(Conv3d, KernelSize1IsPointwiseLinear) {
  const SparseTensor x = random_tensor(100, 10, 8, 12);
  const Conv3dParams p = random_conv(1, 1, false, 8, 16, 13);
  ExecContext ctx = make_ctx(fp32_torchsparse());
  const SparseTensor y = sparse_conv3d(x, p, ctx);
  Matrix ref;
  mm(x.feats(), p.weights[0], ref);
  EXPECT_LT(max_abs_diff(y.feats(), ref), 2e-5f);
}

TEST(Conv3d, MapCacheReusedAcrossLayersAtSameStride) {
  const SparseTensor x = random_tensor(200, 10, 4, 14);
  const Conv3dParams p1 = random_conv(3, 1, false, 4, 4, 15);
  const Conv3dParams p2 = random_conv(3, 1, false, 4, 4, 16);
  ExecContext ctx = make_ctx(fp32_torchsparse());
  const SparseTensor y1 = sparse_conv3d(x, p1, ctx);
  const double mapping_after_first =
      ctx.timeline.stage_seconds(Stage::kMapping);
  const SparseTensor y2 = sparse_conv3d(y1, p2, ctx);
  // Second submanifold layer reuses the cached map: zero mapping cost.
  EXPECT_DOUBLE_EQ(ctx.timeline.stage_seconds(Stage::kMapping),
                   mapping_after_first);
  EXPECT_EQ(x.cache()->kmaps.size(), 1u);
}

/// Every engine preset (plus FP32 variants of TorchSparse with each
/// grouping strategy) computes the same convolution.
class EngineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EngineEquivalence, AllConfigsAgreeWithReference) {
  const int scenario = GetParam();
  const int kernel = scenario % 2 ? 3 : 2;
  const int stride = scenario % 2 ? 1 : 2;
  const SparseTensor x =
      random_tensor(150 + 10 * scenario, 10, 8, 20u + scenario);
  const Conv3dParams p =
      random_conv(kernel, stride, false, 8, 8, 30u + scenario);

  ExecContext ref_ctx = make_ctx(fp32_torchsparse());
  const SparseTensor ref = sparse_conv3d(x, p, ref_ctx);

  std::vector<EngineConfig> configs = paper_engines();
  for (auto g : {GroupingStrategy::kSymmetric, GroupingStrategy::kFixed,
                 GroupingStrategy::kDenseAll}) {
    EngineConfig c = fp32_torchsparse();
    c.grouping = g;
    c.name = "torchsparse-" + to_string(g);
    configs.push_back(c);
  }
  EngineConfig fod = fp32_torchsparse();
  fod.dataflow = Dataflow::kFetchOnDemand;
  fod.name = "fetch-on-demand";
  configs.push_back(fod);

  for (const EngineConfig& cfg : configs) {
    SparseTensor fresh(x.coords(), x.feats());
    ExecContext ctx = make_ctx(cfg);
    const SparseTensor y = sparse_conv3d(fresh, p, ctx);
    ASSERT_EQ(y.num_points(), ref.num_points()) << cfg.name;
    EXPECT_EQ(y.coords(), ref.coords()) << cfg.name;
    // FP16 engines round features at every buffer boundary.
    const float tol = cfg.precision == Precision::kFP32 ? 2e-5f : 2e-2f;
    EXPECT_LT(max_abs_diff(y.feats(), ref.feats()), tol) << cfg.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, EngineEquivalence,
                         ::testing::Range(0, 6));

TEST(Conv3d, Int8PrecisionStaysCloseToFp32) {
  const SparseTensor x = random_tensor(200, 10, 16, 40);
  const Conv3dParams p = random_conv(3, 1, false, 16, 16, 41);
  ExecContext ref_ctx = make_ctx(fp32_torchsparse());
  const SparseTensor ref = sparse_conv3d(x, p, ref_ctx);

  EngineConfig cfg = torchsparse_config();
  cfg.precision = Precision::kINT8;
  SparseTensor fresh(x.coords(), x.feats());
  ExecContext ctx = make_ctx(cfg);
  const SparseTensor y = sparse_conv3d(fresh, p, ctx);
  EXPECT_LT(max_abs_diff(y.feats(), ref.feats()), 0.15f);
}

TEST(Conv3d, RecorderCapturesLayerWorkloads) {
  const SparseTensor x = random_tensor(100, 8, 4, 50);
  const Conv3dParams p = random_conv(3, 1, false, 4, 8, 51);
  ExecContext ctx = make_ctx(torchsparse_config());
  std::vector<LayerRecord> records;
  ctx.recorder = &records;
  ctx.layer_id = 7;
  sparse_conv3d(x, p, ctx);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].layer_id, 7);
  EXPECT_EQ(records[0].map_sizes.size(), 27u);
  EXPECT_EQ(records[0].c_in, 4u);
  EXPECT_EQ(records[0].c_out, 8u);
  EXPECT_TRUE(records[0].submanifold);
}

TEST(Conv3d, CostOnlyModeSkipsNumericsButKeepsShapes) {
  const SparseTensor x = random_tensor(100, 8, 4, 60);
  const Conv3dParams p = random_conv(3, 1, false, 4, 8, 61);
  ExecContext ctx(rtx3090(), torchsparse_config());
  ctx.compute_numerics = false;
  const SparseTensor y = sparse_conv3d(x, p, ctx);
  EXPECT_EQ(y.num_points(), x.num_points());
  EXPECT_EQ(y.channels(), 8u);
  EXPECT_GT(ctx.timeline.total_seconds(), 0.0);
  for (std::size_t i = 0; i < y.feats().size(); ++i)
    EXPECT_EQ(y.feats().data()[i], 0.0f);
}

}  // namespace
}  // namespace ts
