// Adaptive group search (Alg. 5) tests.
#include <gtest/gtest.h>

#include <random>

#include "engines/presets.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "tune/group_tuner.hpp"

namespace ts {
namespace {

LayerRecord make_record(int id, std::vector<std::size_t> sizes,
                        std::size_t c, bool sub = true) {
  LayerRecord r;
  r.layer_id = id;
  r.map_sizes = std::move(sizes);
  r.c_in = r.c_out = c;
  r.submanifold = sub;
  return r;
}

std::vector<std::size_t> submanifold_sizes(std::size_t base, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::size_t> sizes(27);
  for (int i = 0; i < 13; ++i) {
    sizes[static_cast<std::size_t>(i)] = base / 2 + rng() % base;
    sizes[static_cast<std::size_t>(26 - i)] =
        sizes[static_cast<std::size_t>(i)];
  }
  sizes[13] = base * 3;
  return sizes;
}

TEST(Tuner, SearchSpaceIsBoundedLikeThePaper) {
  const auto space = default_search_space();
  EXPECT_GT(space.size(), 20u);
  EXPECT_LT(space.size(), 1000u);  // paper: ~1000 configurations
}

TEST(Tuner, TunedNeverWorseThanAnySearchedConfig) {
  const CostModel cost(rtx2080ti());
  const LayerRecord rec = make_record(0, submanifold_sizes(3000, 1), 64);
  const TuneResult res = tune_groups({{rec}}, cost, Precision::kFP16);
  ASSERT_TRUE(res.params.count(0));
  const double tuned_cost = grouped_matmul_seconds(
      rec, GroupingStrategy::kAdaptive, res.params.at(0), cost,
      Precision::kFP16);
  for (const GroupParams& p : default_search_space()) {
    EXPECT_LE(tuned_cost, grouped_matmul_seconds(
                              rec, GroupingStrategy::kAdaptive, p, cost,
                              Precision::kFP16) +
                              1e-12);
  }
}

TEST(Tuner, AdaptiveBeatsSeparateOnSmallWorkloads) {
  // Small per-offset maps underutilize the GPU; tuned adaptive grouping
  // must win (the Fig. 7 effect).
  const CostModel cost(rtx2080ti());
  const LayerRecord rec = make_record(0, submanifold_sizes(1500, 2), 64);
  const TuneResult res = tune_groups({{rec}}, cost, Precision::kFP16);
  const double adaptive = grouped_matmul_seconds(
      rec, GroupingStrategy::kAdaptive, res.params.at(0), cost,
      Precision::kFP16);
  const double separate = grouped_matmul_seconds(
      rec, GroupingStrategy::kSeparate, GroupParams{}, cost,
      Precision::kFP16);
  EXPECT_LT(adaptive, separate);
  EXPECT_GT(separate / adaptive, 1.15);
}

TEST(Tuner, TunesEveryLayerIndependently) {
  const CostModel cost(rtx3090());
  std::vector<LayerRecord> sample = {
      make_record(10, submanifold_sizes(500, 3), 32),
      make_record(11, submanifold_sizes(50000, 4), 128),
      make_record(12, {100, 110, 95, 105, 100, 98, 102, 99}, 64, false),
  };
  const TuneResult res = tune_groups({sample}, cost, Precision::kFP16);
  EXPECT_EQ(res.params.size(), 3u);
  EXPECT_TRUE(res.params.count(10));
  EXPECT_TRUE(res.params.count(12));
}

TEST(Tuner, AggregatesAcrossSamples) {
  // Tuning on two samples optimizes the sum, not either alone.
  const CostModel cost(rtx2080ti());
  const LayerRecord a = make_record(0, submanifold_sizes(800, 5), 64);
  const LayerRecord b = make_record(0, submanifold_sizes(8000, 6), 64);
  const TuneResult both = tune_groups({{a}, {b}}, cost, Precision::kFP16);
  const GroupParams p = both.params.at(0);
  double best_sum = 1e9;
  for (const GroupParams& q : default_search_space()) {
    const double c =
        grouped_matmul_seconds(a, GroupingStrategy::kAdaptive, q, cost,
                               Precision::kFP16) +
        grouped_matmul_seconds(b, GroupingStrategy::kAdaptive, q, cost,
                               Precision::kFP16);
    best_sum = std::min(best_sum, c);
  }
  const double chosen =
      grouped_matmul_seconds(a, GroupingStrategy::kAdaptive, p, cost,
                             Precision::kFP16) +
      grouped_matmul_seconds(b, GroupingStrategy::kAdaptive, p, cost,
                             Precision::kFP16);
  EXPECT_NEAR(chosen, best_sum, best_sum * 1e-9);
}

TEST(Tuner, EndToEndTuningImprovesModeledMatmul) {
  // Table 1's diagonal: a strategy tuned for (dataset, device) is at
  // least as good there as the default parameters.
  Workload w = make_minkunet_workload("tiny", "SemanticKITTI", 0.5, 1,
                                      /*seed=*/31, /*scale=*/0.25, 2);
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig cfg = torchsparse_config();
  const auto tuned = tune_for(w.model, w.tune_samples, dev, cfg);
  EXPECT_GT(tuned.size(), 20u);  // every conv layer got parameters

  RunOptions with_tuned;
  with_tuned.tuned = tuned;
  with_tuned.simulate_cache = false;
  RunOptions without;
  without.simulate_cache = false;
  const Timeline t_tuned =
      run_model(w.model, w.input, dev, cfg, with_tuned);
  const Timeline t_plain = run_model(w.model, w.input, dev, cfg, without);
  EXPECT_LE(t_tuned.stage_seconds(Stage::kMatMul),
            t_plain.stage_seconds(Stage::kMatMul) * 1.02);
}

}  // namespace
}  // namespace ts
