// Engine presets, the runner, workloads, and cross-engine performance
// orderings that the paper's Figure 11 reports.
#include <gtest/gtest.h>

#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "engines/workloads.hpp"
#include "gpusim/device.hpp"
#include "nn/minkunet.hpp"

namespace ts {
namespace {

TEST(Presets, FiveSystemsInPaperOrder) {
  const auto engines = paper_engines();
  ASSERT_EQ(engines.size(), 5u);
  EXPECT_EQ(engines[0].name, "Baseline");
  EXPECT_EQ(engines[1].name, "MinkowskiEngine");
  EXPECT_EQ(engines[2].name, "SpConv (FP32)");
  EXPECT_EQ(engines[3].name, "SpConv (FP16)");
  EXPECT_EQ(engines[4].name, "TorchSparse");
}

TEST(Presets, AxesMatchPaperDescriptions) {
  const EngineConfig base = baseline_config();
  EXPECT_EQ(base.precision, Precision::kFP32);
  EXPECT_EQ(base.grouping, GroupingStrategy::kSeparate);
  EXPECT_EQ(base.map_backend, MapBackend::kHashMap);
  EXPECT_FALSE(base.fused_downsample);

  const EngineConfig me = minkowski_config();
  EXPECT_GT(me.fod_threshold, 0.0);

  const EngineConfig sp16 = spconv_config(Precision::kFP16);
  EXPECT_EQ(sp16.map_backend, MapBackend::kGrid);
  EXPECT_EQ(sp16.precision, Precision::kFP16);
  EXPECT_FALSE(sp16.vectorized);  // scalar FP16 (§4.3.1)

  const EngineConfig tsrs = torchsparse_config();
  EXPECT_TRUE(tsrs.vectorized);
  EXPECT_TRUE(tsrs.locality_aware);
  EXPECT_EQ(tsrs.grouping, GroupingStrategy::kAdaptive);
  EXPECT_TRUE(tsrs.symmetric_map_search);
}

class EngineOrdering : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(make_minkunet_workload(
        "SK-MinkUNet (0.5x)", "SemanticKITTI", 0.5, 1, /*seed=*/91,
        /*scale=*/0.35, /*tune_sample_count=*/1));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static Workload* workload_;
};

Workload* EngineOrdering::workload_ = nullptr;

TEST_F(EngineOrdering, TorchSparseIsFastestOnTensorCoreDevices) {
  const DeviceSpec dev = rtx2080ti();
  RunOptions opt;
  opt.tuned = tune_for(workload_->model, workload_->tune_samples, dev,
                       torchsparse_config());
  double baseline_t = 0, ts_t = 0;
  for (const EngineConfig& cfg : paper_engines()) {
    RunOptions o = cfg.name == "TorchSparse" ? opt : RunOptions{};
    const Timeline t = run_model(workload_->model, workload_->input, dev,
                                 cfg, o);
    if (cfg.name == "Baseline") baseline_t = t.total_seconds();
    if (cfg.name == "TorchSparse") ts_t = t.total_seconds();
    EXPECT_GT(t.total_seconds(), 0.0) << cfg.name;
  }
  // Paper: ~1.7x over baseline on 2080Ti for segmentation.
  EXPECT_GT(baseline_t / ts_t, 1.3);
  EXPECT_LT(baseline_t / ts_t, 3.5);
}

TEST_F(EngineOrdering, TorchSparseBeatsBaselineWithoutTensorCores) {
  // Paper §5.2: on GTX 1080Ti (no FP16 tensor cores) TorchSparse still
  // achieves ~1.5x over the baseline — the gain is not tensor-core native.
  const DeviceSpec dev = gtx1080ti();
  const Timeline base =
      run_model(workload_->model, workload_->input, dev, baseline_config());
  RunOptions opt;
  opt.tuned = tune_for(workload_->model, workload_->tune_samples, dev,
                       torchsparse_config());
  const Timeline tsrs = run_model(workload_->model, workload_->input, dev,
                                  torchsparse_config(), opt);
  EXPECT_GT(base.total_seconds() / tsrs.total_seconds(), 1.2);
}

TEST_F(EngineOrdering, SpConvFp16BeatsFp32OnTensorCores) {
  const DeviceSpec dev = rtx3090();
  const Timeline fp32 = run_model(workload_->model, workload_->input, dev,
                                  spconv_config(Precision::kFP32));
  const Timeline fp16 = run_model(workload_->model, workload_->input, dev,
                                  spconv_config(Precision::kFP16));
  EXPECT_LT(fp16.total_seconds(), fp32.total_seconds());
}

TEST_F(EngineOrdering, DeviceSpeedOrderingHolds) {
  // Faster GPUs finish sooner under the same engine.
  const EngineConfig cfg = torchsparse_config();
  const Timeline t3090 =
      run_model(workload_->model, workload_->input, rtx3090(), cfg);
  const Timeline t2080 =
      run_model(workload_->model, workload_->input, rtx2080ti(), cfg);
  const Timeline t1080 =
      run_model(workload_->model, workload_->input, gtx1080ti(), cfg);
  EXPECT_LT(t3090.total_seconds(), t2080.total_seconds());
  EXPECT_LT(t2080.total_seconds(), t1080.total_seconds());
}

TEST(Runner, FreshInputIsolatesCaches) {
  Workload w = make_minkunet_workload("tiny", "nuScenes", 0.25, 1, 95, 0.2,
                                      1);
  const SparseTensor a = fresh_input(w.input);
  const SparseTensor b = fresh_input(w.input);
  EXPECT_NE(a.cache().get(), b.cache().get());
  EXPECT_EQ(a.coords(), b.coords());
}

TEST(Runner, RecorderProducesOneRecordPerConvLayer) {
  Workload w = make_minkunet_workload("tiny", "nuScenes", 0.25, 1, 96, 0.2,
                                      1);
  const auto records = record_workloads(w.model, {w.input}, rtx2080ti(),
                                        torchsparse_config());
  ASSERT_EQ(records.size(), 1u);
  // MinkUNet(0.25): 2 stem + 4*(1+2*2...) — at least 30 conv layers.
  EXPECT_GT(records[0].size(), 30u);
  for (const LayerRecord& r : records[0]) {
    EXPECT_GE(r.layer_id, 0);
    EXPECT_FALSE(r.map_sizes.empty());
    EXPECT_GT(r.c_out, 0u);
  }
}

TEST(Workloads, PaperSetHasSevenEntries) {
  const auto ws = paper_workloads(/*seed=*/7, /*scale=*/0.12, 1);
  ASSERT_EQ(ws.size(), 7u);
  EXPECT_EQ(ws[0].name, "SK-MinkUNet (1.0x)");
  EXPECT_FALSE(ws[0].is_detection);
  EXPECT_TRUE(ws[4].is_detection);
  EXPECT_EQ(ws[4].dataset, "nuScenes");
  for (const Workload& w : ws) {
    EXPECT_GT(w.input.num_points(), 100u) << w.name;
    EXPECT_FALSE(w.tune_samples.empty()) << w.name;
  }
}

TEST(Workloads, MultiFrameInputsAreLarger) {
  const auto ws = paper_workloads(/*seed=*/8, /*scale=*/0.15, 1);
  const auto& ns3 = ws[2];  // NS-MinkUNet (3f)
  const auto& ns1 = ws[3];  // NS-MinkUNet (1f)
  EXPECT_GT(ns3.input.num_points(), ns1.input.num_points());
}

}  // namespace
}  // namespace ts
