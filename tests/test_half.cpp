// IEEE binary16 software implementation tests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>

#include "tensor/half.hpp"

namespace ts {
namespace {

TEST(Half, ZeroAndSign) {
  EXPECT_EQ(half_t(0.0f).bits(), 0x0000);
  EXPECT_EQ(half_t(-0.0f).bits(), 0x8000);
  EXPECT_EQ(half_t(0.0f).to_float(), 0.0f);
  EXPECT_TRUE(std::signbit(half_t(-0.0f).to_float()));
}

TEST(Half, ExactSmallIntegers) {
  // All integers up to 2048 are exactly representable in binary16.
  for (int i = -2048; i <= 2048; ++i) {
    const float f = static_cast<float>(i);
    EXPECT_EQ(half_t(f).to_float(), f) << "i=" << i;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(half_t(1.0f).bits(), 0x3c00);
  EXPECT_EQ(half_t(-2.0f).bits(), 0xc000);
  EXPECT_EQ(half_t(0.5f).bits(), 0x3800);
  EXPECT_EQ(half_t(65504.0f).bits(), 0x7bff);  // max finite
  EXPECT_EQ(half_t(6.103515625e-5f).bits(), 0x0400);  // min normal
  EXPECT_EQ(half_t(5.9604644775390625e-8f).bits(), 0x0001);  // min subnormal
}

TEST(Half, OverflowToInfinity) {
  EXPECT_EQ(half_t(65520.0f).bits(), 0x7c00);  // rounds up to inf
  EXPECT_EQ(half_t(1e10f).bits(), 0x7c00);
  EXPECT_EQ(half_t(-1e10f).bits(), 0xfc00);
  EXPECT_TRUE(std::isinf(half_t(1e10f).to_float()));
}

TEST(Half, InfinityAndNaN) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(half_t(inf).bits(), 0x7c00);
  EXPECT_EQ(half_t(-inf).bits(), 0xfc00);
  EXPECT_TRUE(std::isnan(half_t(std::nanf("")).to_float()));
}

TEST(Half, SubnormalRange) {
  // 2^-25 is halfway between 0 and the smallest subnormal: ties-to-even
  // rounds to 0.
  EXPECT_EQ(half_t(std::ldexp(1.0f, -25)).bits(), 0x0000);
  // Just above halfway rounds up to the smallest subnormal.
  EXPECT_EQ(half_t(std::ldexp(1.0f, -25) * 1.0001f).bits(), 0x0001);
  // Subnormals round-trip exactly.
  for (uint16_t b = 1; b < 0x400; b += 13) {
    const half_t h = half_t::from_bits(b);
    EXPECT_EQ(half_t(h.to_float()).bits(), b);
  }
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even
  // keeps 1.0 (even mantissa).
  EXPECT_EQ(half_t(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3c00);
  // (1+2^-10) + 2^-11 is halfway with odd mantissa: rounds up.
  const float f = 1.0f + std::ldexp(1.0f, -10) + std::ldexp(1.0f, -11);
  EXPECT_EQ(half_t(f).bits(), 0x3c02);
}

TEST(Half, RoundTripAllFiniteBitPatterns) {
  // Property: float(half) -> half is the identity on every finite half.
  for (uint32_t b = 0; b < 0x10000; ++b) {
    const uint16_t bits = static_cast<uint16_t>(b);
    const uint16_t exp = (bits >> 10) & 0x1f;
    if (exp == 0x1f) continue;  // inf/nan handled separately
    const half_t h = half_t::from_bits(bits);
    EXPECT_EQ(half_t(h.to_float()).bits(), bits) << "bits=" << b;
  }
}

TEST(Half, RoundingErrorBound) {
  // Property: relative rounding error <= 2^-11 for normal-range values.
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<float> dist(-60000.0f, 60000.0f);
  for (int i = 0; i < 20000; ++i) {
    const float f = dist(rng);
    if (std::fabs(f) < half_t::min_positive_normal()) continue;
    const float r = fp16_round(f);
    EXPECT_LE(std::fabs(r - f), std::fabs(f) * (1.0f / 2048.0f) + 1e-7f);
  }
}

TEST(Half, MonotoneOnSortedInputs) {
  // Property: rounding preserves (non-strict) order.
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<float> dist(-100.0f, 100.0f);
  for (int i = 0; i < 5000; ++i) {
    float a = dist(rng), b = dist(rng);
    if (a > b) std::swap(a, b);
    EXPECT_LE(fp16_round(a), fp16_round(b));
  }
}

}  // namespace
}  // namespace ts
