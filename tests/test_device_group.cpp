// Multi-device sharded serving: DeviceGroup state, record-mode cache
// parity with MapCacheReplay, routing policies, single-device
// bit-equivalence with the pre-sharding serve path, and the
// determinism stress matrix (devices x workers).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "gpusim/device.hpp"
#include "nn/layers.hpp"
#include "serve/batch_runner.hpp"
#include "serve/device_group.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"

namespace ts {
namespace {

SparseTensor random_tensor(int n, int extent, std::size_t channels,
                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  Matrix feats(coords.size(), channels);
  for (std::size_t i = 0; i < feats.size(); ++i) feats.data()[i] = f(rng);
  return SparseTensor(std::move(coords), std::move(feats));
}

ModelFn small_unet(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto net = std::make_shared<spnn::Sequential>();
  net->emplace<spnn::ConvBlock>(4, 16, 3, 1, false, rng);
  net->emplace<spnn::ConvBlock>(16, 32, 2, 2, false, rng);
  net->emplace<spnn::ConvBlock>(32, 32, 3, 1, false, rng);
  net->emplace<spnn::ConvBlock>(32, 16, 2, 2, true, rng);
  return [net](const SparseTensor& x, ExecContext& ctx) {
    net->forward(x, ctx);
  };
}

void expect_same_timeline(const Timeline& a, const Timeline& b) {
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const Stage st = static_cast<Stage>(s);
    EXPECT_DOUBLE_EQ(a.stage_seconds(st), b.stage_seconds(st))
        << to_string(st);
  }
  EXPECT_DOUBLE_EQ(a.dram_bytes(), b.dram_bytes());
  EXPECT_EQ(a.kernel_launches(), b.kernel_launches());
  EXPECT_DOUBLE_EQ(a.flops(), b.flops());
}

MapCacheKey key_of(uint64_t tag) { return MapCacheKey{tag, ~tag}; }

MapCacheEvent event_of(uint64_t tag, std::size_t bytes, double cold,
                       double hit) {
  MapCacheEvent ev;
  ev.key = key_of(tag);
  ev.bytes = bytes;
  ev.cold_seconds = cold;
  ev.cold_dram_bytes = cold * 1e9;
  ev.cold_launches = 7;
  ev.hit_seconds = hit;
  ev.hit_dram_bytes = hit * 1e9;
  ev.hit_launches = 2;
  return ev;
}

// --- DeviceGroup state ------------------------------------------------

TEST(DeviceGroup, ConstructionStampsIdentityAndClampsSize) {
  serve::DeviceGroup g(rtx2080ti(), 3, 1 << 20);
  EXPECT_EQ(g.size(), 3);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(g.spec(d).device_index, d);
    EXPECT_EQ(g.spec(d).name, rtx2080ti().name);
    EXPECT_EQ(g.cache(d).byte_budget(), std::size_t(1) << 20);
    EXPECT_EQ(g.stats(d).device, d);
  }
  serve::DeviceGroup clamped(rtx2080ti(), 0, 0);
  EXPECT_EQ(clamped.size(), 1);
  EXPECT_THROW(g.spec(3), std::out_of_range);
  EXPECT_THROW(g.spec(-1), std::out_of_range);
  // Absurd device counts fail loudly instead of overflowing pool
  // arithmetic or allocating billions of shards.
  EXPECT_THROW(
      serve::DeviceGroup(rtx2080ti(), serve::kMaxModeledDevices + 1, 0),
      std::invalid_argument);
  EXPECT_THROW(serve::DeviceGroup(rtx2080ti(),
                                  std::numeric_limits<int>::max(), 0),
               std::invalid_argument);
}

TEST(DeviceGroup, OwnerOfFindsLowestDeviceHoldingDigest) {
  serve::DeviceGroup g(rtx2080ti(), 3, 1 << 20);
  g.begin_schedule(1);
  EXPECT_EQ(g.owner_of(key_of(42)), -1);
  g.record_lookup(2, key_of(42), 100);
  EXPECT_EQ(g.owner_of(key_of(42)), 2);
  g.record_lookup(1, key_of(42), 100);
  EXPECT_EQ(g.owner_of(key_of(42)), 1);
  EXPECT_TRUE(g.cache(1).contains(key_of(42)));
  EXPECT_FALSE(g.cache(0).contains(key_of(42)));
  // begin_schedule starts the next pass from cold modeled caches.
  g.begin_schedule(1);
  EXPECT_EQ(g.owner_of(key_of(42)), -1);
}

TEST(DeviceGroup, OwnerIndexMatchesLinearScanUnderChurn) {
  // The digest->owner index must track every record-mode admission and
  // eviction exactly; pin it against the pre-index definition (lowest
  // device whose cache contains the key) over a churny random stream on
  // a tiny budget.
  const std::size_t budget = 250;  // two 100-byte entries per device
  serve::DeviceGroup g(rtx2080ti(), 3, budget);
  g.begin_schedule(1);
  std::mt19937_64 rng(77);
  std::uniform_int_distribution<int> pick_dev(0, 2);
  std::uniform_int_distribution<uint64_t> pick_tag(1, 12);
  for (int step = 0; step < 400; ++step) {
    // Occasional oversized lookups exercise the never-cached rule.
    const std::size_t bytes = step % 17 == 0 ? 9999 : 100;
    g.record_lookup(pick_dev(rng), key_of(pick_tag(rng)), bytes);
    for (uint64_t tag = 1; tag <= 12; ++tag) {
      int scan = -1;
      for (int d = 0; d < g.size(); ++d)
        if (g.cache(d).contains(key_of(tag))) {
          scan = d;
          break;
        }
      ASSERT_EQ(g.owner_of(key_of(tag)), scan)
          << "step " << step << " tag " << tag;
    }
  }
}

// --- Heterogeneous fleets ----------------------------------------------

TEST(DeviceGroup, FleetConstructorStampsPerShardSpecs) {
  serve::DeviceGroup g({gtx1080ti(), rtx3090(), rtx3090()}, 1 << 20);
  ASSERT_EQ(g.size(), 3);
  EXPECT_EQ(g.spec(0).name, gtx1080ti().name);
  EXPECT_EQ(g.spec(1).name, rtx3090().name);
  EXPECT_EQ(g.spec(2).name, rtx3090().name);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(g.spec(d).device_index, d);
    EXPECT_EQ(g.stats(d).device, d);
    EXPECT_EQ(g.stats(d).name, g.spec(d).name);
    EXPECT_EQ(g.cache(d).byte_budget(), std::size_t(1) << 20);
  }
  // begin_schedule keeps the per-shard identity (id and tier name).
  g.begin_schedule(2);
  EXPECT_EQ(g.stats(1).name, rtx3090().name);
  EXPECT_EQ(g.stats(1).device, 1);
}

TEST(DeviceGroup, FleetConstructionValidatesLoudly) {
  EXPECT_THROW(serve::DeviceGroup(std::vector<DeviceSpec>{}, 0),
               std::invalid_argument);
  EXPECT_THROW(
      serve::DeviceGroup(
          std::vector<DeviceSpec>(
              static_cast<std::size_t>(serve::kMaxModeledDevices) + 1,
              rtx2080ti()),
          0),
      std::invalid_argument);
  EXPECT_THROW(serve::expand_fleet({}), std::invalid_argument);
  EXPECT_THROW(serve::expand_fleet({{rtx3090(), 0}}), std::invalid_argument);
  EXPECT_THROW(serve::expand_fleet({{rtx3090(), 2}, {gtx1080ti(), -3}}),
               std::invalid_argument);
  EXPECT_THROW(
      serve::expand_fleet({{rtx2080ti(), serve::kMaxModeledDevices + 1}}),
      std::invalid_argument);
  EXPECT_THROW(serve::expand_fleet({{rtx2080ti(), serve::kMaxModeledDevices},
                                    {rtx3090(), 1}}),
               std::invalid_argument);
  const std::vector<DeviceSpec> mixed =
      serve::expand_fleet({{gtx1080ti(), 1}, {rtx3090(), 2}});
  ASSERT_EQ(mixed.size(), 3u);
  EXPECT_EQ(mixed[0].name, gtx1080ti().name);
  EXPECT_EQ(mixed[1].name, rtx3090().name);
  EXPECT_EQ(mixed[2].name, rtx3090().name);
}

TEST(DeviceGroup, HomogeneousCtorDelegatesToFleetCtor) {
  serve::DeviceGroup legacy(rtx2080ti(), 3, 1 << 16);
  serve::DeviceGroup fleet(std::vector<DeviceSpec>(3, rtx2080ti()), 1 << 16);
  ASSERT_EQ(legacy.size(), fleet.size());
  for (int d = 0; d < legacy.size(); ++d) {
    EXPECT_EQ(legacy.spec(d).name, fleet.spec(d).name);
    EXPECT_EQ(legacy.spec(d).device_index, fleet.spec(d).device_index);
    EXPECT_EQ(legacy.cache(d).byte_budget(), fleet.cache(d).byte_budget());
  }
}

TEST(DeviceSpecRegistry, ResolvesForgivingNamesAndThrowsOnUnknown) {
  EXPECT_EQ(device_spec_by_name("1080ti").name, gtx1080ti().name);
  EXPECT_EQ(device_spec_by_name("GTX 1080Ti").name, gtx1080ti().name);
  EXPECT_EQ(device_spec_by_name("2080ti").name, rtx2080ti().name);
  EXPECT_EQ(device_spec_by_name("rtx-2080-ti").name, rtx2080ti().name);
  EXPECT_EQ(device_spec_by_name("3090").name, rtx3090().name);
  EXPECT_EQ(device_spec_by_name("RTX_3090").name, rtx3090().name);
  EXPECT_FALSE(device_spec_by_name("1080ti").has_fp16_tensor_cores);
  EXPECT_THROW(device_spec_by_name("a100"), std::invalid_argument);
  EXPECT_THROW(device_spec_by_name(""), std::invalid_argument);
}

TEST(DeviceGroup, PlaceBatchUsesEarliestLaneAndTracksBusy) {
  serve::DeviceGroup g(rtx2080ti(), 1, 0);
  g.begin_schedule(2);
  double start = 0, finish = 0;
  // Lane 0: batch of 2.0s at dispatch 1.0 with 0.5 overhead.
  EXPECT_EQ(g.place_batch(0, 1.0, 0.5, {2.0}, &start, &finish), 0);
  EXPECT_DOUBLE_EQ(start, 1.0);
  EXPECT_DOUBLE_EQ(finish, 3.5);
  // Lane 1 is free earlier than lane 0.
  EXPECT_EQ(g.place_batch(0, 1.0, 0.5, {1.0}, &start, &finish), 1);
  EXPECT_DOUBLE_EQ(start, 1.0);
  EXPECT_DOUBLE_EQ(finish, 2.5);
  EXPECT_DOUBLE_EQ(g.stats(0).busy_seconds, 4.0);  // 2.5 + 1.5
  EXPECT_EQ(g.stats(0).batches, 2u);
  EXPECT_EQ(g.stats(0).requests, 2u);
  EXPECT_DOUBLE_EQ(g.lane_high_water(0), 3.5);
}

TEST(DeviceGroup, HeapSchedulerReproducesLaneVectorSchedule) {
  // Pin the discrete-event core against the pre-refactor per-device
  // lane-vector scan (std::min_element: earliest lane, ties -> lowest
  // index) over a long randomized batch sequence.
  const int devices = 3, workers = 4;
  serve::DeviceGroup g(rtx2080ti(), devices, 0);
  g.begin_schedule(workers);
  std::vector<std::vector<double>> ref_lanes(
      devices, std::vector<double>(workers, 0.0));
  std::vector<double> ref_busy(devices, 0.0);
  std::mt19937_64 rng(123);
  std::uniform_int_distribution<int> pick_dev(0, devices - 1);
  std::uniform_real_distribution<double> dt(0.0, 0.02);
  std::uniform_int_distribution<int> nsvc(1, 3);
  double dispatch = 0.0;
  for (int step = 0; step < 500; ++step) {
    dispatch += dt(rng);
    const int dev = pick_dev(rng);
    const double overhead = step % 3 == 0 ? 0.001 : 0.0;
    std::vector<double> services;
    for (int k = nsvc(rng); k > 0; --k) services.push_back(dt(rng));

    std::vector<double>& lanes = ref_lanes[static_cast<std::size_t>(dev)];
    const auto it = std::min_element(lanes.begin(), lanes.end());
    const int ref_lane = static_cast<int>(it - lanes.begin());
    const double ref_start = std::max(dispatch, *it);
    double ref_finish = ref_start + overhead;
    for (const double s : services) ref_finish += s;
    *it = ref_finish;
    ref_busy[static_cast<std::size_t>(dev)] += ref_finish - ref_start;

    double start = 0, finish = 0;
    const int lane =
        g.place_batch(dev, dispatch, overhead, services, &start, &finish);
    ASSERT_EQ(lane, ref_lane) << "step " << step;
    ASSERT_DOUBLE_EQ(start, ref_start) << "step " << step;
    ASSERT_DOUBLE_EQ(finish, ref_finish) << "step " << step;
  }
  for (int d = 0; d < devices; ++d) {
    EXPECT_DOUBLE_EQ(g.stats(d).busy_seconds,
                     ref_busy[static_cast<std::size_t>(d)]);
    EXPECT_DOUBLE_EQ(
        g.lane_high_water(d),
        *std::max_element(ref_lanes[static_cast<std::size_t>(d)].begin(),
                          ref_lanes[static_cast<std::size_t>(d)].end()));
  }
}

TEST(DeviceGroup, LeastLoadedMatchesLinearScanUnderChurn) {
  // least_loaded() now reads an ordered load index; pin it against the
  // pre-index linear scan (min busy_seconds, ties -> lowest id).
  const int devices = 5;
  serve::DeviceGroup g(rtx2080ti(), devices, 0);
  g.begin_schedule(1);
  std::mt19937_64 rng(321);
  std::uniform_int_distribution<int> pick_dev(0, devices - 1);
  std::uniform_real_distribution<double> dt(0.001, 0.02);
  for (int step = 0; step < 300; ++step) {
    int scan = 0;
    for (int d = 1; d < devices; ++d)
      if (g.stats(d).busy_seconds < g.stats(scan).busy_seconds) scan = d;
    ASSERT_EQ(g.least_loaded(), scan) << "step " << step;
    g.place_batch(pick_dev(rng), 0.0, 0.0, {dt(rng)}, nullptr, nullptr);
  }
}

// --- Record-mode cache parity with MapCacheReplay ---------------------

TEST(DeviceGroup, RecordLookupMatchesMapCacheReplayDecisions) {
  // A stream that exercises hit, miss, LRU eviction, re-insertion after
  // eviction, and the oversized rule.
  const std::size_t budget = 250;  // holds 2 entries of 100 bytes
  std::vector<MapCacheEvent> stream = {
      event_of(1, 100, 0.010, 0.001),  // miss, insert      LRU [1]
      event_of(2, 100, 0.020, 0.002),  // miss, insert      LRU [2,1]
      event_of(1, 100, 0.010, 0.001),  // hit               LRU [1,2]
      event_of(3, 100, 0.030, 0.003),  // miss, evicts 2    LRU [3,1]
      event_of(2, 100, 0.020, 0.002),  // miss, evicts 1    LRU [2,3]
      event_of(4, 9999, 0.040, 0.004), // oversized miss, never cached
      event_of(1, 100, 0.010, 0.001),  // miss, evicts 3    LRU [1,2]
  };

  MapCacheReplay replay(budget);
  Timeline replay_t;
  replay.apply(stream, replay_t);

  KernelMapCache recorded(budget);
  Timeline record_t;
  MapCacheReplayStats st;
  for (const MapCacheEvent& ev : stream) {
    ++st.lookups;
    const auto out = recorded.record_lookup(ev.key, ev.bytes);
    st.evictions += out.evictions;
    if (out.hit) {
      ++st.hits;
      record_t.add(Stage::kMapping, ev.hit_seconds - ev.cold_seconds);
      record_t.add_dram_bytes(ev.hit_dram_bytes - ev.cold_dram_bytes);
      record_t.remove_kernel_launches(0);  // launches handled below
      st.modeled_seconds_saved += ev.cold_seconds - ev.hit_seconds;
    } else {
      ++st.misses;
    }
  }

  EXPECT_EQ(st.lookups, replay.stats().lookups);
  EXPECT_EQ(st.hits, replay.stats().hits);
  EXPECT_EQ(st.misses, replay.stats().misses);
  EXPECT_EQ(st.evictions, replay.stats().evictions);
  EXPECT_DOUBLE_EQ(st.modeled_seconds_saved,
                   replay.stats().modeled_seconds_saved);
  // Decisions in detail (trace above): one warm hit, three LRU
  // evictions, and the oversized entry never displaced anything.
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 6u);
  EXPECT_EQ(st.evictions, 3u);
  EXPECT_TRUE(recorded.contains(key_of(1)));
  EXPECT_TRUE(recorded.contains(key_of(2)));
  EXPECT_FALSE(recorded.contains(key_of(3)));
  EXPECT_FALSE(recorded.contains(key_of(4)));
  EXPECT_EQ(recorded.stats().oversized, 1u);
}

// --- Sharded scheduler: single-device bit-equivalence -----------------

/// Synthetic stream: 6 requests, batches of 2, per-request events with a
/// shared digest so the cache replay actually changes timelines.
struct SyntheticStream {
  std::vector<serve::StreamResult> requests;
  std::vector<serve::PlannedBatch> plan;
  std::vector<std::vector<MapCacheEvent>> events;
};

SyntheticStream make_synthetic() {
  SyntheticStream s;
  s.requests.resize(6);
  for (std::size_t i = 0; i < 6; ++i) {
    serve::StreamResult& r = s.requests[i];
    r.id = i;
    r.arrival_seconds = 0.01 * static_cast<double>(i);
    r.timeline.add(Stage::kMapping, 0.004);
    r.timeline.add(Stage::kMatMul, 0.001 * static_cast<double>(i + 1));
    r.timeline.add_kernel_launches(20);
    r.service_seconds = r.timeline.total_seconds();
    // Requests 2i and 2i+1... share digests pairwise across batches:
    // {0,2,4} use key 7, {1,3,5} use key 9.
    s.events.push_back({event_of(7 + 2 * (i % 2), 200, 0.003, 0.0004)});
  }
  s.plan = {{0, 2, 0.01}, {2, 2, 0.03}, {4, 2, 0.05}};
  return s;
}

TEST(ScheduleStreamSharded, OneDeviceBitEqualsReplayPlusScheduleStream) {
  for (const serve::RoutePolicy policy :
       {serve::RoutePolicy::kRoundRobin, serve::RoutePolicy::kLeastLoaded,
        serve::RoutePolicy::kCacheAffinity}) {
    SyntheticStream pre = make_synthetic();   // pre-PR pipeline
    SyntheticStream post = make_synthetic();  // sharded pipeline

    // Pre-sharding accounting: MapCacheReplay in submission order, then
    // schedule_stream.
    const std::size_t budget = 1 << 16;
    MapCacheReplay replay(budget);
    for (std::size_t i = 0; i < pre.requests.size(); ++i) {
      replay.apply(pre.events[i], pre.requests[i].timeline);
      pre.requests[i].service_seconds =
          pre.requests[i].timeline.total_seconds();
    }
    std::vector<serve::StreamBatchRecord> pre_batches;
    const serve::StreamStats ref = serve::schedule_stream(
        pre.requests, pre.plan, /*workers=*/2,
        /*batch_overhead_seconds=*/0.002, &pre_batches);

    serve::DeviceGroup group(rtx2080ti(), 1, budget);
    std::vector<serve::StreamBatchRecord> post_batches;
    const serve::StreamStats got = serve::schedule_stream_sharded(
        post.requests, post.plan, group, policy, /*workers_per_device=*/2,
        /*batch_overhead_seconds=*/0.002, &post.events, &post_batches);

    EXPECT_EQ(got.devices, 1);
    ASSERT_EQ(got.per_device.size(), 1u);
    for (std::size_t i = 0; i < pre.requests.size(); ++i) {
      expect_same_timeline(post.requests[i].timeline,
                           pre.requests[i].timeline);
      EXPECT_DOUBLE_EQ(post.requests[i].service_seconds,
                       pre.requests[i].service_seconds);
      EXPECT_DOUBLE_EQ(post.requests[i].start_seconds,
                       pre.requests[i].start_seconds);
      EXPECT_DOUBLE_EQ(post.requests[i].finish_seconds,
                       pre.requests[i].finish_seconds);
      EXPECT_DOUBLE_EQ(post.requests[i].queue_wait_seconds,
                       pre.requests[i].queue_wait_seconds);
      EXPECT_DOUBLE_EQ(post.requests[i].e2e_seconds,
                       pre.requests[i].e2e_seconds);
      EXPECT_EQ(post.requests[i].batch_id, pre.requests[i].batch_id);
      EXPECT_EQ(post.requests[i].device, 0);
    }
    ASSERT_EQ(post_batches.size(), pre_batches.size());
    for (std::size_t k = 0; k < pre_batches.size(); ++k) {
      EXPECT_DOUBLE_EQ(post_batches[k].start_seconds,
                       pre_batches[k].start_seconds);
      EXPECT_DOUBLE_EQ(post_batches[k].finish_seconds,
                       pre_batches[k].finish_seconds);
      EXPECT_EQ(post_batches[k].lane, pre_batches[k].lane);
      EXPECT_EQ(post_batches[k].device, 0);
    }
    EXPECT_DOUBLE_EQ(got.makespan_seconds, ref.makespan_seconds);
    EXPECT_DOUBLE_EQ(got.throughput_fps, ref.throughput_fps);
    EXPECT_DOUBLE_EQ(got.queue_wait_p99_seconds, ref.queue_wait_p99_seconds);
    EXPECT_DOUBLE_EQ(got.e2e_p99_seconds, ref.e2e_p99_seconds);
    EXPECT_DOUBLE_EQ(got.mean_service_seconds, ref.mean_service_seconds);
    expect_same_timeline(got.aggregate, ref.aggregate);
    EXPECT_EQ(got.map_cache.lookups, replay.stats().lookups);
    EXPECT_EQ(got.map_cache.hits, replay.stats().hits);
    EXPECT_EQ(got.map_cache.misses, replay.stats().misses);
    EXPECT_EQ(got.map_cache.evictions, replay.stats().evictions);
    EXPECT_DOUBLE_EQ(got.map_cache.modeled_seconds_saved,
                     replay.stats().modeled_seconds_saved);
  }
}

// --- Routing policies --------------------------------------------------

SyntheticStream singleton_batches(const std::vector<double>& services,
                                  const std::vector<uint64_t>& tags) {
  SyntheticStream s;
  s.requests.resize(services.size());
  for (std::size_t i = 0; i < services.size(); ++i) {
    serve::StreamResult& r = s.requests[i];
    r.id = i;
    r.arrival_seconds = 0.0;
    r.timeline.add(Stage::kMatMul, services[i]);
    r.service_seconds = services[i];
    s.plan.push_back({i, 1, 0.0});
    s.events.push_back({event_of(tags[i], 100, 0.0, 0.0)});
  }
  return s;
}

TEST(ScheduleStreamSharded, RoundRobinCyclesDevices) {
  SyntheticStream s = singleton_batches({1, 1, 1, 1, 1}, {1, 2, 3, 4, 5});
  serve::DeviceGroup group(rtx2080ti(), 3, 1 << 16);
  serve::schedule_stream_sharded(s.requests, s.plan, group,
                                 serve::RoutePolicy::kRoundRobin, 1, 0.0,
                                 &s.events);
  const int want[] = {0, 1, 2, 0, 1};
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(s.requests[i].device, want[i]) << "request " << i;
}

TEST(ScheduleStreamSharded, LeastLoadedBalancesAccumulatedWork) {
  // Batch 0 is heavy: everything after it should drain to device 1
  // until its accumulated work catches up.
  SyntheticStream s = singleton_batches({10, 1, 1, 1}, {1, 2, 3, 4});
  serve::DeviceGroup group(rtx2080ti(), 2, 0);
  serve::schedule_stream_sharded(s.requests, s.plan, group,
                                 serve::RoutePolicy::kLeastLoaded, 1, 0.0,
                                 nullptr);
  const int want[] = {0, 1, 1, 1};
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(s.requests[i].device, want[i]) << "request " << i;
  EXPECT_DOUBLE_EQ(group.stats(0).busy_seconds, 10.0);
  EXPECT_DOUBLE_EQ(group.stats(1).busy_seconds, 3.0);
}

TEST(ScheduleStreamSharded, CacheAffinityRoutesToDigestOwner) {
  // Digests AABB: affinity must co-locate the duplicates; round-robin
  // must split them (and therefore never hit).
  SyntheticStream aff = singleton_batches({1, 1, 1, 1}, {7, 7, 9, 9});
  serve::DeviceGroup g_aff(rtx2080ti(), 2, 1 << 16);
  const serve::StreamStats s_aff = serve::schedule_stream_sharded(
      aff.requests, aff.plan, g_aff, serve::RoutePolicy::kCacheAffinity, 1,
      0.0, &aff.events);
  // Request 0: no owner -> least-loaded -> device 0. Request 1: owner of
  // digest 7 is device 0 -> hit there. Request 2: digest 9 cold ->
  // least-loaded -> device 1 (device 0 has 2 batches of work). Request
  // 3: owner of 9 -> device 1 -> hit.
  const int want[] = {0, 0, 1, 1};
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(aff.requests[i].device, want[i]) << "request " << i;
  EXPECT_EQ(s_aff.map_cache.hits, 2u);
  EXPECT_EQ(g_aff.stats(0).map_cache.hits, 1u);
  EXPECT_EQ(g_aff.stats(1).map_cache.hits, 1u);

  SyntheticStream rr = singleton_batches({1, 1, 1, 1}, {7, 7, 9, 9});
  serve::DeviceGroup g_rr(rtx2080ti(), 2, 1 << 16);
  const serve::StreamStats s_rr = serve::schedule_stream_sharded(
      rr.requests, rr.plan, g_rr, serve::RoutePolicy::kRoundRobin, 1, 0.0,
      &rr.events);
  EXPECT_EQ(s_rr.map_cache.hits, 0u);
  EXPECT_GT(s_aff.map_cache.hit_rate(), s_rr.map_cache.hit_rate());
}

/// Singleton-batch stream whose requests put all their modeled seconds
/// into one chosen stage each (so estimate_aware's stage split is
/// controllable per request).
SyntheticStream stage_stream(
    const std::vector<std::pair<Stage, double>>& reqs) {
  SyntheticStream s;
  s.requests.resize(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    serve::StreamResult& r = s.requests[i];
    r.id = i;
    r.arrival_seconds = 0.0;
    r.timeline.add(reqs[i].first, reqs[i].second);
    r.service_seconds = r.timeline.total_seconds();
    s.plan.push_back({i, 1, 0.0});
  }
  return s;
}

TEST(ScheduleStreamSharded, EstimateAwareSplitsBatchesByStageMix) {
  // Mixed 1080Ti+3090 fleet, 1080Ti first (the measurement reference).
  // Relative factors: MatMul scales with peak GEMM (11.3/35.6 ~ 0.317 on
  // the 3090), everything else with DRAM bandwidth (484/936 ~ 0.517).
  // Two GEMM batches load the 3090 to busy ~0.635; at that point a
  // mapping-heavy batch prefers the idle 1080Ti (1.0 < 0.635 + 0.517)
  // while an equally sized GEMM batch still prefers the 3090
  // (0.635 + 0.317 < 1.0) — the tensor-core tier keeps the grouped-GEMM
  // work, the Pascal tier absorbs the map-heavy overflow.
  const std::vector<DeviceSpec> fleet = {gtx1080ti(), rtx3090()};

  SyntheticStream gemm_tail = stage_stream({{Stage::kMatMul, 1.0},
                                            {Stage::kMatMul, 1.0},
                                            {Stage::kMatMul, 1.0}});
  serve::DeviceGroup g1(fleet, 0);
  serve::schedule_stream_sharded(gemm_tail.requests, gemm_tail.plan, g1,
                                 serve::RoutePolicy::kEstimateAware, 1, 0.0,
                                 nullptr);
  const int want_gemm[] = {1, 1, 1};
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(gemm_tail.requests[i].device, want_gemm[i]) << "request " << i;

  SyntheticStream map_tail = stage_stream({{Stage::kMatMul, 1.0},
                                           {Stage::kMatMul, 1.0},
                                           {Stage::kMapping, 1.0}});
  serve::DeviceGroup g2(fleet, 0);
  serve::schedule_stream_sharded(map_tail.requests, map_tail.plan, g2,
                                 serve::RoutePolicy::kEstimateAware, 1, 0.0,
                                 nullptr);
  const int want_map[] = {1, 1, 0};
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(map_tail.requests[i].device, want_map[i]) << "request " << i;

  // The placed schedule runs on device-local seconds: the 3090's lanes
  // hold the scaled GEMM services, the 1080Ti the unscaled reference
  // service (it IS the reference).
  const double f_mm = 11.3 / 35.6;
  EXPECT_DOUBLE_EQ(g2.stats(1).busy_seconds, 2.0 * f_mm);
  EXPECT_DOUBLE_EQ(g2.stats(0).busy_seconds, 1.0);
}

TEST(ScheduleStreamSharded, EstimateAwareDegeneratesToLeastLoadedHomogeneous) {
  // On a homogeneous group every estimate factor is exactly 1.0, so
  // estimate_aware must reproduce least_loaded bit-for-bit — routing
  // decisions, schedules, and stats.
  for (const int devices : {1, 3}) {
    SyntheticStream ll = make_synthetic();
    SyntheticStream ea = make_synthetic();
    serve::DeviceGroup g_ll(rtx2080ti(), devices, 1 << 16);
    serve::DeviceGroup g_ea(rtx2080ti(), devices, 1 << 16);
    const serve::StreamStats s_ll = serve::schedule_stream_sharded(
        ll.requests, ll.plan, g_ll, serve::RoutePolicy::kLeastLoaded, 2,
        0.002, &ll.events);
    const serve::StreamStats s_ea = serve::schedule_stream_sharded(
        ea.requests, ea.plan, g_ea, serve::RoutePolicy::kEstimateAware, 2,
        0.002, &ea.events);
    for (std::size_t i = 0; i < ll.requests.size(); ++i) {
      EXPECT_EQ(ea.requests[i].device, ll.requests[i].device);
      EXPECT_DOUBLE_EQ(ea.requests[i].start_seconds,
                       ll.requests[i].start_seconds);
      EXPECT_DOUBLE_EQ(ea.requests[i].finish_seconds,
                       ll.requests[i].finish_seconds);
      expect_same_timeline(ea.requests[i].timeline, ll.requests[i].timeline);
    }
    EXPECT_DOUBLE_EQ(s_ea.makespan_seconds, s_ll.makespan_seconds);
    EXPECT_EQ(s_ea.map_cache.hits, s_ll.map_cache.hits);
  }
}

// --- End-to-end determinism stress matrix ------------------------------

serve::StreamReport serve_stream(const ModelFn& model,
                                 const std::vector<SparseTensor>& stream,
                                 int devices, int workers,
                                 serve::RoutePolicy policy,
                                 std::size_t cache_bytes) {
  serve::RequestQueue queue({/*max_depth=*/stream.size() + 1});
  std::vector<serve::StreamHandle> handles;
  for (std::size_t i = 0; i < stream.size(); ++i)
    handles.push_back(
        queue.submit(stream[i], 0.002 * static_cast<double>(i)));
  queue.close();
  serve::BatchOptions opt;
  opt.workers = workers;
  opt.map_cache_bytes = cache_bytes;
  serve::StreamOptions sopt;
  sopt.batcher.policy = serve::BatchPolicy::kImmediate;
  sopt.batch_overhead_seconds = 0.0005;
  sopt.shard.devices = devices;
  sopt.shard.route = policy;
  const serve::BatchRunner runner(rtx2080ti(), torchsparse_config(), opt);
  return runner.serve(model, queue, sopt);
}

void expect_same_report(const serve::StreamReport& a,
                        const serve::StreamReport& b) {
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    expect_same_timeline(a.requests[i].timeline, b.requests[i].timeline);
    EXPECT_DOUBLE_EQ(a.requests[i].service_seconds,
                     b.requests[i].service_seconds);
    EXPECT_DOUBLE_EQ(a.requests[i].start_seconds,
                     b.requests[i].start_seconds);
    EXPECT_DOUBLE_EQ(a.requests[i].finish_seconds,
                     b.requests[i].finish_seconds);
    EXPECT_EQ(a.requests[i].batch_id, b.requests[i].batch_id);
    EXPECT_EQ(a.requests[i].device, b.requests[i].device);
  }
  EXPECT_DOUBLE_EQ(a.stats.makespan_seconds, b.stats.makespan_seconds);
  EXPECT_DOUBLE_EQ(a.stats.throughput_fps, b.stats.throughput_fps);
  EXPECT_DOUBLE_EQ(a.stats.e2e_p99_seconds, b.stats.e2e_p99_seconds);
  expect_same_timeline(a.stats.aggregate, b.stats.aggregate);
  EXPECT_EQ(a.stats.map_cache.lookups, b.stats.map_cache.lookups);
  EXPECT_EQ(a.stats.map_cache.hits, b.stats.map_cache.hits);
  EXPECT_EQ(a.stats.map_cache.evictions, b.stats.map_cache.evictions);
  EXPECT_DOUBLE_EQ(a.stats.map_cache.modeled_seconds_saved,
                   b.stats.map_cache.modeled_seconds_saved);
  ASSERT_EQ(a.stats.per_device.size(), b.stats.per_device.size());
  for (std::size_t d = 0; d < a.stats.per_device.size(); ++d) {
    EXPECT_EQ(a.stats.per_device[d].batches, b.stats.per_device[d].batches);
    EXPECT_EQ(a.stats.per_device[d].requests,
              b.stats.per_device[d].requests);
    EXPECT_DOUBLE_EQ(a.stats.per_device[d].busy_seconds,
                     b.stats.per_device[d].busy_seconds);
    EXPECT_DOUBLE_EQ(a.stats.per_device[d].free_seconds,
                     b.stats.per_device[d].free_seconds);
    EXPECT_EQ(a.stats.per_device[d].map_cache.hits,
              b.stats.per_device[d].map_cache.hits);
    EXPECT_EQ(a.stats.per_device[d].map_cache.misses,
              b.stats.per_device[d].map_cache.misses);
  }
}

TEST(ShardedServe, ModeledStatsIndependentOfWorkerCountPerDeviceCount) {
  const ModelFn model = small_unet(31);
  // 12 requests, 50% duplicates, adjacent (u0 u0 u1 u1 ...): the layout
  // where affinity matters most.
  std::vector<SparseTensor> stream;
  for (int i = 0; i < 12; ++i)
    stream.push_back(random_tensor(140 + 10 * (i / 2), 12, 4,
                                   2000 + static_cast<uint64_t>(i / 2)));

  for (const int devices : {1, 2, 4}) {
    const serve::StreamReport base =
        serve_stream(model, stream, devices, /*workers=*/1,
                     serve::RoutePolicy::kCacheAffinity, std::size_t(64)
                                                             << 20);
    EXPECT_EQ(base.stats.devices, devices);
    ASSERT_EQ(base.stats.per_device.size(),
              static_cast<std::size_t>(devices));
    for (const int workers : {2, 4}) {
      const serve::StreamReport got =
          serve_stream(model, stream, devices, workers,
                       serve::RoutePolicy::kCacheAffinity, std::size_t(64)
                                                               << 20);
      // Modeled serve stats and outputs are bit-identical for any
      // worker count at this device count; only the placement clocks
      // may change (same lanes-per-device math, more lanes).
      ASSERT_EQ(got.requests.size(), base.requests.size());
      for (std::size_t i = 0; i < got.requests.size(); ++i) {
        expect_same_timeline(got.requests[i].timeline,
                             base.requests[i].timeline);
        EXPECT_DOUBLE_EQ(got.requests[i].service_seconds,
                         base.requests[i].service_seconds);
        EXPECT_EQ(got.requests[i].device, base.requests[i].device);
      }
      expect_same_timeline(got.stats.aggregate, base.stats.aggregate);
      EXPECT_EQ(got.stats.map_cache.hits, base.stats.map_cache.hits);
      EXPECT_EQ(got.stats.map_cache.misses, base.stats.map_cache.misses);
      EXPECT_DOUBLE_EQ(got.stats.map_cache.modeled_seconds_saved,
                       base.stats.map_cache.modeled_seconds_saved);
      for (int d = 0; d < devices; ++d) {
        EXPECT_EQ(got.stats.per_device[d].map_cache.hits,
                  base.stats.per_device[d].map_cache.hits);
        EXPECT_EQ(got.stats.per_device[d].batches,
                  base.stats.per_device[d].batches);
        EXPECT_DOUBLE_EQ(got.stats.per_device[d].busy_seconds,
                         base.stats.per_device[d].busy_seconds);
      }
    }
    // Re-running the identical configuration reproduces the whole
    // report bit-for-bit.
    const serve::StreamReport again =
        serve_stream(model, stream, devices, /*workers=*/1,
                     serve::RoutePolicy::kCacheAffinity, std::size_t(64)
                                                             << 20);
    expect_same_report(base, again);
  }
}

TEST(ShardedServe, SingleDeviceMatchesUnshardedServeUnderEveryPolicy) {
  const ModelFn model = small_unet(32);
  std::vector<SparseTensor> stream;
  for (int i = 0; i < 8; ++i)
    stream.push_back(random_tensor(130, 12, 4,
                                   3000 + static_cast<uint64_t>(i % 4)));

  // Default options = pre-sharding single-device serve.
  const serve::StreamReport ref =
      serve_stream(model, stream, 1, 2, serve::ShardOptions{}.route,
                   std::size_t(64) << 20);
  for (const serve::RoutePolicy policy :
       {serve::RoutePolicy::kRoundRobin, serve::RoutePolicy::kLeastLoaded,
        serve::RoutePolicy::kCacheAffinity}) {
    const serve::StreamReport got =
        serve_stream(model, stream, 1, 2, policy, std::size_t(64) << 20);
    expect_same_report(ref, got);
  }
}

TEST(ShardedServe, AggregateComputeInvariantToDeviceCountWithCacheOff) {
  const ModelFn model = small_unet(33);
  std::vector<SparseTensor> stream;
  for (int i = 0; i < 6; ++i)
    stream.push_back(random_tensor(120, 12, 4,
                                   4000 + static_cast<uint64_t>(i)));
  const serve::StreamReport n1 = serve_stream(
      model, stream, 1, 2, serve::RoutePolicy::kLeastLoaded, 0);
  for (const int devices : {2, 4}) {
    const serve::StreamReport nd = serve_stream(
        model, stream, devices, 2, serve::RoutePolicy::kLeastLoaded, 0);
    // Sharding is a scheduling construct: per-request compute is
    // untouched, so the aggregate timeline is device-count invariant.
    expect_same_timeline(nd.stats.aggregate, n1.stats.aggregate);
    EXPECT_EQ(nd.stats.map_cache.lookups, 0u);
  }
}

// --- Heterogeneous fleets, end to end ----------------------------------

serve::StreamReport fleet_serve(const ModelFn& model,
                                const std::vector<SparseTensor>& stream,
                                const std::vector<serve::FleetTier>& tiers,
                                int workers, serve::RoutePolicy policy,
                                std::size_t cache_bytes) {
  serve::ServerConfig cfg;
  cfg.with_engine(torchsparse_config())
      .with_workers(workers)
      .with_fleet(tiers)
      .with_route(policy)
      .with_batch_overhead(0.0005)
      .with_map_cache_bytes(cache_bytes)
      .with_queue_depth(stream.size() + 1);
  cfg.batcher.policy = serve::BatchPolicy::kImmediate;
  serve::Server server(cfg);
  server.start(model);
  for (std::size_t i = 0; i < stream.size(); ++i)
    server.submit(stream[i], 0.002 * static_cast<double>(i));
  return server.drain();
}

TEST(FleetServe, WithFleetKeepsConfigConsistent) {
  serve::ServerConfig cfg;
  cfg.with_fleet({{device_spec_by_name("1080ti"), 1},
                  {device_spec_by_name("3090"), 2}});
  ASSERT_EQ(cfg.fleet.size(), 3u);
  EXPECT_EQ(cfg.device.name, gtx1080ti().name);  // measurement reference
  EXPECT_EQ(cfg.shard.devices, 3);
  EXPECT_EQ(cfg.fleet[2].name, rtx3090().name);
  EXPECT_THROW(cfg.with_fleet({}), std::invalid_argument);
  EXPECT_THROW(cfg.with_fleet({{rtx3090(), 0}}), std::invalid_argument);
  // A directly-populated fleet is bound-checked (and shard.devices
  // reconciled) at Server construction.
  serve::ServerConfig big;
  big.fleet.assign(static_cast<std::size_t>(serve::kMaxModeledDevices) + 1,
                   rtx3090());
  EXPECT_THROW(serve::Server{big}, std::invalid_argument);
  serve::ServerConfig small;
  small.fleet.assign(2, rtx3090());
  small.shard.devices = 7;  // stale; the fleet wins
  serve::Server server(std::move(small));
  EXPECT_EQ(server.config().shard.devices, 2);
}

TEST(FleetServe, HomogeneousFleetBitEqualsDevicesConfig) {
  // A single-tier with_fleet is the same deployment as with_device +
  // with_devices — and the whole fleet path (fleet ctor, event heap,
  // owner index) must reproduce the legacy serve bit-for-bit.
  const ModelFn model = small_unet(41);
  std::vector<SparseTensor> stream;
  for (int i = 0; i < 8; ++i)
    stream.push_back(random_tensor(130, 12, 4,
                                   5000 + static_cast<uint64_t>(i % 4)));
  const serve::StreamReport legacy =
      serve_stream(model, stream, 2, 2, serve::RoutePolicy::kLeastLoaded,
                   std::size_t(64) << 20);
  const serve::StreamReport fleet =
      fleet_serve(model, stream, {{rtx2080ti(), 2}}, 2,
                  serve::RoutePolicy::kLeastLoaded, std::size_t(64) << 20);
  expect_same_report(legacy, fleet);

  // estimate_aware on the homogeneous fleet degenerates to least_loaded
  // end to end.
  const serve::StreamReport estimate =
      fleet_serve(model, stream, {{rtx2080ti(), 2}}, 2,
                  serve::RoutePolicy::kEstimateAware, std::size_t(64) << 20);
  expect_same_report(legacy, estimate);
}

TEST(FleetServe, ModeledStatsWorkerInvariantAcrossMixesAndPolicies) {
  // The determinism stress matrix on heterogeneous fleets: for every
  // fleet mix x routing policy, modeled stats are bit-identical across
  // worker counts.
  const ModelFn model = small_unet(42);
  std::vector<SparseTensor> stream;
  for (int i = 0; i < 8; ++i)
    stream.push_back(random_tensor(120 + 10 * (i % 3), 12, 4,
                                   6000 + static_cast<uint64_t>(i % 4)));
  const std::vector<std::vector<serve::FleetTier>> mixes = {
      {{rtx2080ti(), 2}},
      {{gtx1080ti(), 1}, {rtx3090(), 1}},
      {{gtx1080ti(), 1}, {rtx2080ti(), 1}, {rtx3090(), 1}},
  };
  for (const auto& mix : mixes) {
    for (const serve::RoutePolicy policy :
         {serve::RoutePolicy::kEstimateAware,
          serve::RoutePolicy::kCacheAffinity}) {
      const serve::StreamReport base = fleet_serve(
          model, stream, mix, 1, policy, std::size_t(64) << 20);
      const serve::StreamReport more = fleet_serve(
          model, stream, mix, 4, policy, std::size_t(64) << 20);
      ASSERT_EQ(more.requests.size(), base.requests.size());
      for (std::size_t i = 0; i < more.requests.size(); ++i) {
        expect_same_timeline(more.requests[i].timeline,
                             base.requests[i].timeline);
        EXPECT_EQ(more.requests[i].device, base.requests[i].device);
        EXPECT_DOUBLE_EQ(more.requests[i].service_seconds,
                         base.requests[i].service_seconds);
      }
      ASSERT_EQ(base.stats.per_device.size(), mix.size() == 1 ? 2u : mix.size());
      for (std::size_t d = 0; d < base.stats.per_device.size(); ++d) {
        EXPECT_EQ(more.stats.per_device[d].batches,
                  base.stats.per_device[d].batches);
        EXPECT_DOUBLE_EQ(more.stats.per_device[d].busy_seconds,
                         base.stats.per_device[d].busy_seconds);
        EXPECT_EQ(more.stats.per_device[d].map_cache.hits,
                  base.stats.per_device[d].map_cache.hits);
        EXPECT_EQ(more.stats.per_device[d].name,
                  base.stats.per_device[d].name);
      }
      expect_same_timeline(more.stats.aggregate, base.stats.aggregate);
      EXPECT_EQ(more.stats.map_cache.hits, base.stats.map_cache.hits);
    }
  }
}

}  // namespace
}  // namespace ts
