// Multi-device sharded serving: DeviceGroup state, record-mode cache
// parity with MapCacheReplay, routing policies, single-device
// bit-equivalence with the pre-sharding serve path, and the
// determinism stress matrix (devices x workers).
#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "gpusim/device.hpp"
#include "nn/layers.hpp"
#include "serve/batch_runner.hpp"
#include "serve/device_group.hpp"
#include "serve/request_queue.hpp"

namespace ts {
namespace {

SparseTensor random_tensor(int n, int extent, std::size_t channels,
                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  Matrix feats(coords.size(), channels);
  for (std::size_t i = 0; i < feats.size(); ++i) feats.data()[i] = f(rng);
  return SparseTensor(std::move(coords), std::move(feats));
}

ModelFn small_unet(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto net = std::make_shared<spnn::Sequential>();
  net->emplace<spnn::ConvBlock>(4, 16, 3, 1, false, rng);
  net->emplace<spnn::ConvBlock>(16, 32, 2, 2, false, rng);
  net->emplace<spnn::ConvBlock>(32, 32, 3, 1, false, rng);
  net->emplace<spnn::ConvBlock>(32, 16, 2, 2, true, rng);
  return [net](const SparseTensor& x, ExecContext& ctx) {
    net->forward(x, ctx);
  };
}

void expect_same_timeline(const Timeline& a, const Timeline& b) {
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const Stage st = static_cast<Stage>(s);
    EXPECT_DOUBLE_EQ(a.stage_seconds(st), b.stage_seconds(st))
        << to_string(st);
  }
  EXPECT_DOUBLE_EQ(a.dram_bytes(), b.dram_bytes());
  EXPECT_EQ(a.kernel_launches(), b.kernel_launches());
  EXPECT_DOUBLE_EQ(a.flops(), b.flops());
}

MapCacheKey key_of(uint64_t tag) { return MapCacheKey{tag, ~tag}; }

MapCacheEvent event_of(uint64_t tag, std::size_t bytes, double cold,
                       double hit) {
  MapCacheEvent ev;
  ev.key = key_of(tag);
  ev.bytes = bytes;
  ev.cold_seconds = cold;
  ev.cold_dram_bytes = cold * 1e9;
  ev.cold_launches = 7;
  ev.hit_seconds = hit;
  ev.hit_dram_bytes = hit * 1e9;
  ev.hit_launches = 2;
  return ev;
}

// --- DeviceGroup state ------------------------------------------------

TEST(DeviceGroup, ConstructionStampsIdentityAndClampsSize) {
  serve::DeviceGroup g(rtx2080ti(), 3, 1 << 20);
  EXPECT_EQ(g.size(), 3);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(g.spec(d).device_index, d);
    EXPECT_EQ(g.spec(d).name, rtx2080ti().name);
    EXPECT_EQ(g.cache(d).byte_budget(), std::size_t(1) << 20);
    EXPECT_EQ(g.stats(d).device, d);
  }
  serve::DeviceGroup clamped(rtx2080ti(), 0, 0);
  EXPECT_EQ(clamped.size(), 1);
  EXPECT_THROW(g.spec(3), std::out_of_range);
  EXPECT_THROW(g.spec(-1), std::out_of_range);
  // Absurd device counts fail loudly instead of overflowing pool
  // arithmetic or allocating billions of shards.
  EXPECT_THROW(
      serve::DeviceGroup(rtx2080ti(), serve::kMaxModeledDevices + 1, 0),
      std::invalid_argument);
  EXPECT_THROW(serve::DeviceGroup(rtx2080ti(),
                                  std::numeric_limits<int>::max(), 0),
               std::invalid_argument);
}

TEST(DeviceGroup, OwnerOfFindsLowestDeviceHoldingDigest) {
  serve::DeviceGroup g(rtx2080ti(), 3, 1 << 20);
  g.begin_schedule(1);
  EXPECT_EQ(g.owner_of(key_of(42)), -1);
  g.cache(2).record_lookup(key_of(42), 100);
  EXPECT_EQ(g.owner_of(key_of(42)), 2);
  g.cache(1).record_lookup(key_of(42), 100);
  EXPECT_EQ(g.owner_of(key_of(42)), 1);
  EXPECT_TRUE(g.cache(1).contains(key_of(42)));
  EXPECT_FALSE(g.cache(0).contains(key_of(42)));
  // begin_schedule starts the next pass from cold modeled caches.
  g.begin_schedule(1);
  EXPECT_EQ(g.owner_of(key_of(42)), -1);
}

TEST(DeviceGroup, PlaceBatchUsesEarliestLaneAndTracksBusy) {
  serve::DeviceGroup g(rtx2080ti(), 1, 0);
  g.begin_schedule(2);
  double start = 0, finish = 0;
  // Lane 0: batch of 2.0s at dispatch 1.0 with 0.5 overhead.
  EXPECT_EQ(g.place_batch(0, 1.0, 0.5, {2.0}, &start, &finish), 0);
  EXPECT_DOUBLE_EQ(start, 1.0);
  EXPECT_DOUBLE_EQ(finish, 3.5);
  // Lane 1 is free earlier than lane 0.
  EXPECT_EQ(g.place_batch(0, 1.0, 0.5, {1.0}, &start, &finish), 1);
  EXPECT_DOUBLE_EQ(start, 1.0);
  EXPECT_DOUBLE_EQ(finish, 2.5);
  EXPECT_DOUBLE_EQ(g.stats(0).busy_seconds, 4.0);  // 2.5 + 1.5
  EXPECT_EQ(g.stats(0).batches, 2u);
  EXPECT_EQ(g.stats(0).requests, 2u);
  EXPECT_DOUBLE_EQ(g.lane_high_water(0), 3.5);
}

// --- Record-mode cache parity with MapCacheReplay ---------------------

TEST(DeviceGroup, RecordLookupMatchesMapCacheReplayDecisions) {
  // A stream that exercises hit, miss, LRU eviction, re-insertion after
  // eviction, and the oversized rule.
  const std::size_t budget = 250;  // holds 2 entries of 100 bytes
  std::vector<MapCacheEvent> stream = {
      event_of(1, 100, 0.010, 0.001),  // miss, insert      LRU [1]
      event_of(2, 100, 0.020, 0.002),  // miss, insert      LRU [2,1]
      event_of(1, 100, 0.010, 0.001),  // hit               LRU [1,2]
      event_of(3, 100, 0.030, 0.003),  // miss, evicts 2    LRU [3,1]
      event_of(2, 100, 0.020, 0.002),  // miss, evicts 1    LRU [2,3]
      event_of(4, 9999, 0.040, 0.004), // oversized miss, never cached
      event_of(1, 100, 0.010, 0.001),  // miss, evicts 3    LRU [1,2]
  };

  MapCacheReplay replay(budget);
  Timeline replay_t;
  replay.apply(stream, replay_t);

  KernelMapCache recorded(budget);
  Timeline record_t;
  MapCacheReplayStats st;
  for (const MapCacheEvent& ev : stream) {
    ++st.lookups;
    const auto out = recorded.record_lookup(ev.key, ev.bytes);
    st.evictions += out.evictions;
    if (out.hit) {
      ++st.hits;
      record_t.add(Stage::kMapping, ev.hit_seconds - ev.cold_seconds);
      record_t.add_dram_bytes(ev.hit_dram_bytes - ev.cold_dram_bytes);
      record_t.remove_kernel_launches(0);  // launches handled below
      st.modeled_seconds_saved += ev.cold_seconds - ev.hit_seconds;
    } else {
      ++st.misses;
    }
  }

  EXPECT_EQ(st.lookups, replay.stats().lookups);
  EXPECT_EQ(st.hits, replay.stats().hits);
  EXPECT_EQ(st.misses, replay.stats().misses);
  EXPECT_EQ(st.evictions, replay.stats().evictions);
  EXPECT_DOUBLE_EQ(st.modeled_seconds_saved,
                   replay.stats().modeled_seconds_saved);
  // Decisions in detail (trace above): one warm hit, three LRU
  // evictions, and the oversized entry never displaced anything.
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 6u);
  EXPECT_EQ(st.evictions, 3u);
  EXPECT_TRUE(recorded.contains(key_of(1)));
  EXPECT_TRUE(recorded.contains(key_of(2)));
  EXPECT_FALSE(recorded.contains(key_of(3)));
  EXPECT_FALSE(recorded.contains(key_of(4)));
  EXPECT_EQ(recorded.stats().oversized, 1u);
}

// --- Sharded scheduler: single-device bit-equivalence -----------------

/// Synthetic stream: 6 requests, batches of 2, per-request events with a
/// shared digest so the cache replay actually changes timelines.
struct SyntheticStream {
  std::vector<serve::StreamResult> requests;
  std::vector<serve::PlannedBatch> plan;
  std::vector<std::vector<MapCacheEvent>> events;
};

SyntheticStream make_synthetic() {
  SyntheticStream s;
  s.requests.resize(6);
  for (std::size_t i = 0; i < 6; ++i) {
    serve::StreamResult& r = s.requests[i];
    r.id = i;
    r.arrival_seconds = 0.01 * static_cast<double>(i);
    r.timeline.add(Stage::kMapping, 0.004);
    r.timeline.add(Stage::kMatMul, 0.001 * static_cast<double>(i + 1));
    r.timeline.add_kernel_launches(20);
    r.service_seconds = r.timeline.total_seconds();
    // Requests 2i and 2i+1... share digests pairwise across batches:
    // {0,2,4} use key 7, {1,3,5} use key 9.
    s.events.push_back({event_of(7 + 2 * (i % 2), 200, 0.003, 0.0004)});
  }
  s.plan = {{0, 2, 0.01}, {2, 2, 0.03}, {4, 2, 0.05}};
  return s;
}

TEST(ScheduleStreamSharded, OneDeviceBitEqualsReplayPlusScheduleStream) {
  for (const serve::RoutePolicy policy :
       {serve::RoutePolicy::kRoundRobin, serve::RoutePolicy::kLeastLoaded,
        serve::RoutePolicy::kCacheAffinity}) {
    SyntheticStream pre = make_synthetic();   // pre-PR pipeline
    SyntheticStream post = make_synthetic();  // sharded pipeline

    // Pre-sharding accounting: MapCacheReplay in submission order, then
    // schedule_stream.
    const std::size_t budget = 1 << 16;
    MapCacheReplay replay(budget);
    for (std::size_t i = 0; i < pre.requests.size(); ++i) {
      replay.apply(pre.events[i], pre.requests[i].timeline);
      pre.requests[i].service_seconds =
          pre.requests[i].timeline.total_seconds();
    }
    std::vector<serve::StreamBatchRecord> pre_batches;
    const serve::StreamStats ref = serve::schedule_stream(
        pre.requests, pre.plan, /*workers=*/2,
        /*batch_overhead_seconds=*/0.002, &pre_batches);

    serve::DeviceGroup group(rtx2080ti(), 1, budget);
    std::vector<serve::StreamBatchRecord> post_batches;
    const serve::StreamStats got = serve::schedule_stream_sharded(
        post.requests, post.plan, group, policy, /*workers_per_device=*/2,
        /*batch_overhead_seconds=*/0.002, &post.events, &post_batches);

    EXPECT_EQ(got.devices, 1);
    ASSERT_EQ(got.per_device.size(), 1u);
    for (std::size_t i = 0; i < pre.requests.size(); ++i) {
      expect_same_timeline(post.requests[i].timeline,
                           pre.requests[i].timeline);
      EXPECT_DOUBLE_EQ(post.requests[i].service_seconds,
                       pre.requests[i].service_seconds);
      EXPECT_DOUBLE_EQ(post.requests[i].start_seconds,
                       pre.requests[i].start_seconds);
      EXPECT_DOUBLE_EQ(post.requests[i].finish_seconds,
                       pre.requests[i].finish_seconds);
      EXPECT_DOUBLE_EQ(post.requests[i].queue_wait_seconds,
                       pre.requests[i].queue_wait_seconds);
      EXPECT_DOUBLE_EQ(post.requests[i].e2e_seconds,
                       pre.requests[i].e2e_seconds);
      EXPECT_EQ(post.requests[i].batch_id, pre.requests[i].batch_id);
      EXPECT_EQ(post.requests[i].device, 0);
    }
    ASSERT_EQ(post_batches.size(), pre_batches.size());
    for (std::size_t k = 0; k < pre_batches.size(); ++k) {
      EXPECT_DOUBLE_EQ(post_batches[k].start_seconds,
                       pre_batches[k].start_seconds);
      EXPECT_DOUBLE_EQ(post_batches[k].finish_seconds,
                       pre_batches[k].finish_seconds);
      EXPECT_EQ(post_batches[k].lane, pre_batches[k].lane);
      EXPECT_EQ(post_batches[k].device, 0);
    }
    EXPECT_DOUBLE_EQ(got.makespan_seconds, ref.makespan_seconds);
    EXPECT_DOUBLE_EQ(got.throughput_fps, ref.throughput_fps);
    EXPECT_DOUBLE_EQ(got.queue_wait_p99_seconds, ref.queue_wait_p99_seconds);
    EXPECT_DOUBLE_EQ(got.e2e_p99_seconds, ref.e2e_p99_seconds);
    EXPECT_DOUBLE_EQ(got.mean_service_seconds, ref.mean_service_seconds);
    expect_same_timeline(got.aggregate, ref.aggregate);
    EXPECT_EQ(got.map_cache.lookups, replay.stats().lookups);
    EXPECT_EQ(got.map_cache.hits, replay.stats().hits);
    EXPECT_EQ(got.map_cache.misses, replay.stats().misses);
    EXPECT_EQ(got.map_cache.evictions, replay.stats().evictions);
    EXPECT_DOUBLE_EQ(got.map_cache.modeled_seconds_saved,
                     replay.stats().modeled_seconds_saved);
  }
}

// --- Routing policies --------------------------------------------------

SyntheticStream singleton_batches(const std::vector<double>& services,
                                  const std::vector<uint64_t>& tags) {
  SyntheticStream s;
  s.requests.resize(services.size());
  for (std::size_t i = 0; i < services.size(); ++i) {
    serve::StreamResult& r = s.requests[i];
    r.id = i;
    r.arrival_seconds = 0.0;
    r.timeline.add(Stage::kMatMul, services[i]);
    r.service_seconds = services[i];
    s.plan.push_back({i, 1, 0.0});
    s.events.push_back({event_of(tags[i], 100, 0.0, 0.0)});
  }
  return s;
}

TEST(ScheduleStreamSharded, RoundRobinCyclesDevices) {
  SyntheticStream s = singleton_batches({1, 1, 1, 1, 1}, {1, 2, 3, 4, 5});
  serve::DeviceGroup group(rtx2080ti(), 3, 1 << 16);
  serve::schedule_stream_sharded(s.requests, s.plan, group,
                                 serve::RoutePolicy::kRoundRobin, 1, 0.0,
                                 &s.events);
  const int want[] = {0, 1, 2, 0, 1};
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(s.requests[i].device, want[i]) << "request " << i;
}

TEST(ScheduleStreamSharded, LeastLoadedBalancesAccumulatedWork) {
  // Batch 0 is heavy: everything after it should drain to device 1
  // until its accumulated work catches up.
  SyntheticStream s = singleton_batches({10, 1, 1, 1}, {1, 2, 3, 4});
  serve::DeviceGroup group(rtx2080ti(), 2, 0);
  serve::schedule_stream_sharded(s.requests, s.plan, group,
                                 serve::RoutePolicy::kLeastLoaded, 1, 0.0,
                                 nullptr);
  const int want[] = {0, 1, 1, 1};
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(s.requests[i].device, want[i]) << "request " << i;
  EXPECT_DOUBLE_EQ(group.stats(0).busy_seconds, 10.0);
  EXPECT_DOUBLE_EQ(group.stats(1).busy_seconds, 3.0);
}

TEST(ScheduleStreamSharded, CacheAffinityRoutesToDigestOwner) {
  // Digests AABB: affinity must co-locate the duplicates; round-robin
  // must split them (and therefore never hit).
  SyntheticStream aff = singleton_batches({1, 1, 1, 1}, {7, 7, 9, 9});
  serve::DeviceGroup g_aff(rtx2080ti(), 2, 1 << 16);
  const serve::StreamStats s_aff = serve::schedule_stream_sharded(
      aff.requests, aff.plan, g_aff, serve::RoutePolicy::kCacheAffinity, 1,
      0.0, &aff.events);
  // Request 0: no owner -> least-loaded -> device 0. Request 1: owner of
  // digest 7 is device 0 -> hit there. Request 2: digest 9 cold ->
  // least-loaded -> device 1 (device 0 has 2 batches of work). Request
  // 3: owner of 9 -> device 1 -> hit.
  const int want[] = {0, 0, 1, 1};
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(aff.requests[i].device, want[i]) << "request " << i;
  EXPECT_EQ(s_aff.map_cache.hits, 2u);
  EXPECT_EQ(g_aff.stats(0).map_cache.hits, 1u);
  EXPECT_EQ(g_aff.stats(1).map_cache.hits, 1u);

  SyntheticStream rr = singleton_batches({1, 1, 1, 1}, {7, 7, 9, 9});
  serve::DeviceGroup g_rr(rtx2080ti(), 2, 1 << 16);
  const serve::StreamStats s_rr = serve::schedule_stream_sharded(
      rr.requests, rr.plan, g_rr, serve::RoutePolicy::kRoundRobin, 1, 0.0,
      &rr.events);
  EXPECT_EQ(s_rr.map_cache.hits, 0u);
  EXPECT_GT(s_aff.map_cache.hit_rate(), s_rr.map_cache.hit_rate());
}

// --- End-to-end determinism stress matrix ------------------------------

serve::StreamReport serve_stream(const ModelFn& model,
                                 const std::vector<SparseTensor>& stream,
                                 int devices, int workers,
                                 serve::RoutePolicy policy,
                                 std::size_t cache_bytes) {
  serve::RequestQueue queue({/*max_depth=*/stream.size() + 1});
  std::vector<serve::StreamHandle> handles;
  for (std::size_t i = 0; i < stream.size(); ++i)
    handles.push_back(
        queue.submit(stream[i], 0.002 * static_cast<double>(i)));
  queue.close();
  serve::BatchOptions opt;
  opt.workers = workers;
  opt.map_cache_bytes = cache_bytes;
  serve::StreamOptions sopt;
  sopt.batcher.policy = serve::BatchPolicy::kImmediate;
  sopt.batch_overhead_seconds = 0.0005;
  sopt.shard.devices = devices;
  sopt.shard.route = policy;
  const serve::BatchRunner runner(rtx2080ti(), torchsparse_config(), opt);
  return runner.serve(model, queue, sopt);
}

void expect_same_report(const serve::StreamReport& a,
                        const serve::StreamReport& b) {
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    expect_same_timeline(a.requests[i].timeline, b.requests[i].timeline);
    EXPECT_DOUBLE_EQ(a.requests[i].service_seconds,
                     b.requests[i].service_seconds);
    EXPECT_DOUBLE_EQ(a.requests[i].start_seconds,
                     b.requests[i].start_seconds);
    EXPECT_DOUBLE_EQ(a.requests[i].finish_seconds,
                     b.requests[i].finish_seconds);
    EXPECT_EQ(a.requests[i].batch_id, b.requests[i].batch_id);
    EXPECT_EQ(a.requests[i].device, b.requests[i].device);
  }
  EXPECT_DOUBLE_EQ(a.stats.makespan_seconds, b.stats.makespan_seconds);
  EXPECT_DOUBLE_EQ(a.stats.throughput_fps, b.stats.throughput_fps);
  EXPECT_DOUBLE_EQ(a.stats.e2e_p99_seconds, b.stats.e2e_p99_seconds);
  expect_same_timeline(a.stats.aggregate, b.stats.aggregate);
  EXPECT_EQ(a.stats.map_cache.lookups, b.stats.map_cache.lookups);
  EXPECT_EQ(a.stats.map_cache.hits, b.stats.map_cache.hits);
  EXPECT_EQ(a.stats.map_cache.evictions, b.stats.map_cache.evictions);
  EXPECT_DOUBLE_EQ(a.stats.map_cache.modeled_seconds_saved,
                   b.stats.map_cache.modeled_seconds_saved);
  ASSERT_EQ(a.stats.per_device.size(), b.stats.per_device.size());
  for (std::size_t d = 0; d < a.stats.per_device.size(); ++d) {
    EXPECT_EQ(a.stats.per_device[d].batches, b.stats.per_device[d].batches);
    EXPECT_EQ(a.stats.per_device[d].requests,
              b.stats.per_device[d].requests);
    EXPECT_DOUBLE_EQ(a.stats.per_device[d].busy_seconds,
                     b.stats.per_device[d].busy_seconds);
    EXPECT_DOUBLE_EQ(a.stats.per_device[d].free_seconds,
                     b.stats.per_device[d].free_seconds);
    EXPECT_EQ(a.stats.per_device[d].map_cache.hits,
              b.stats.per_device[d].map_cache.hits);
    EXPECT_EQ(a.stats.per_device[d].map_cache.misses,
              b.stats.per_device[d].map_cache.misses);
  }
}

TEST(ShardedServe, ModeledStatsIndependentOfWorkerCountPerDeviceCount) {
  const ModelFn model = small_unet(31);
  // 12 requests, 50% duplicates, adjacent (u0 u0 u1 u1 ...): the layout
  // where affinity matters most.
  std::vector<SparseTensor> stream;
  for (int i = 0; i < 12; ++i)
    stream.push_back(random_tensor(140 + 10 * (i / 2), 12, 4,
                                   2000 + static_cast<uint64_t>(i / 2)));

  for (const int devices : {1, 2, 4}) {
    const serve::StreamReport base =
        serve_stream(model, stream, devices, /*workers=*/1,
                     serve::RoutePolicy::kCacheAffinity, std::size_t(64)
                                                             << 20);
    EXPECT_EQ(base.stats.devices, devices);
    ASSERT_EQ(base.stats.per_device.size(),
              static_cast<std::size_t>(devices));
    for (const int workers : {2, 4}) {
      const serve::StreamReport got =
          serve_stream(model, stream, devices, workers,
                       serve::RoutePolicy::kCacheAffinity, std::size_t(64)
                                                               << 20);
      // Modeled serve stats and outputs are bit-identical for any
      // worker count at this device count; only the placement clocks
      // may change (same lanes-per-device math, more lanes).
      ASSERT_EQ(got.requests.size(), base.requests.size());
      for (std::size_t i = 0; i < got.requests.size(); ++i) {
        expect_same_timeline(got.requests[i].timeline,
                             base.requests[i].timeline);
        EXPECT_DOUBLE_EQ(got.requests[i].service_seconds,
                         base.requests[i].service_seconds);
        EXPECT_EQ(got.requests[i].device, base.requests[i].device);
      }
      expect_same_timeline(got.stats.aggregate, base.stats.aggregate);
      EXPECT_EQ(got.stats.map_cache.hits, base.stats.map_cache.hits);
      EXPECT_EQ(got.stats.map_cache.misses, base.stats.map_cache.misses);
      EXPECT_DOUBLE_EQ(got.stats.map_cache.modeled_seconds_saved,
                       base.stats.map_cache.modeled_seconds_saved);
      for (int d = 0; d < devices; ++d) {
        EXPECT_EQ(got.stats.per_device[d].map_cache.hits,
                  base.stats.per_device[d].map_cache.hits);
        EXPECT_EQ(got.stats.per_device[d].batches,
                  base.stats.per_device[d].batches);
        EXPECT_DOUBLE_EQ(got.stats.per_device[d].busy_seconds,
                         base.stats.per_device[d].busy_seconds);
      }
    }
    // Re-running the identical configuration reproduces the whole
    // report bit-for-bit.
    const serve::StreamReport again =
        serve_stream(model, stream, devices, /*workers=*/1,
                     serve::RoutePolicy::kCacheAffinity, std::size_t(64)
                                                             << 20);
    expect_same_report(base, again);
  }
}

TEST(ShardedServe, SingleDeviceMatchesUnshardedServeUnderEveryPolicy) {
  const ModelFn model = small_unet(32);
  std::vector<SparseTensor> stream;
  for (int i = 0; i < 8; ++i)
    stream.push_back(random_tensor(130, 12, 4,
                                   3000 + static_cast<uint64_t>(i % 4)));

  // Default options = pre-sharding single-device serve.
  const serve::StreamReport ref =
      serve_stream(model, stream, 1, 2, serve::ShardOptions{}.route,
                   std::size_t(64) << 20);
  for (const serve::RoutePolicy policy :
       {serve::RoutePolicy::kRoundRobin, serve::RoutePolicy::kLeastLoaded,
        serve::RoutePolicy::kCacheAffinity}) {
    const serve::StreamReport got =
        serve_stream(model, stream, 1, 2, policy, std::size_t(64) << 20);
    expect_same_report(ref, got);
  }
}

TEST(ShardedServe, AggregateComputeInvariantToDeviceCountWithCacheOff) {
  const ModelFn model = small_unet(33);
  std::vector<SparseTensor> stream;
  for (int i = 0; i < 6; ++i)
    stream.push_back(random_tensor(120, 12, 4,
                                   4000 + static_cast<uint64_t>(i)));
  const serve::StreamReport n1 = serve_stream(
      model, stream, 1, 2, serve::RoutePolicy::kLeastLoaded, 0);
  for (const int devices : {2, 4}) {
    const serve::StreamReport nd = serve_stream(
        model, stream, devices, 2, serve::RoutePolicy::kLeastLoaded, 0);
    // Sharding is a scheduling construct: per-request compute is
    // untouched, so the aggregate timeline is device-count invariant.
    expect_same_timeline(nd.stats.aggregate, n1.stats.aggregate);
    EXPECT_EQ(nd.stats.map_cache.lookups, 0u);
  }
}

}  // namespace
}  // namespace ts
