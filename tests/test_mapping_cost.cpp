// Mapping cost-model tests: the Fig. 13 optimization levers must each
// reduce modeled mapping time, in isolation and cumulatively.
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "core/conv3d.hpp"
#include "core/downsample.hpp"
#include "core/mapping_cost.hpp"
#include "engines/presets.hpp"
#include "gpusim/device.hpp"
#include "nn/layers.hpp"

namespace ts {
namespace {

std::vector<Coord> random_coords(int n, int extent, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  return coords;
}

/// Modeled mapping seconds for a full conv under config knobs.
double mapping_seconds(const std::vector<Coord>& coords, int kernel,
                       int stride, MapBackend backend, bool fused,
                       bool simplified, bool symmetric) {
  EngineConfig cfg = baseline_config();
  cfg.map_backend = backend;
  cfg.fused_downsample = fused;
  cfg.simplified_control = simplified;
  cfg.symmetric_map_search = symmetric;
  ExecContext ctx(rtx2080ti(), cfg);
  ctx.compute_numerics = false;
  std::mt19937_64 rng(1);
  Conv3dParams p;
  p.geom = ConvGeometry{kernel, stride, false};
  p.weights = spnn::make_conv_weights(kernel, 8, 8, rng);
  SparseTensor x(coords, Matrix(coords.size(), 8));
  sparse_conv3d(x, p, ctx);
  return ctx.timeline.stage_seconds(Stage::kMapping);
}

TEST(MappingCost, GridBeatsHashmap) {
  const auto coords = random_coords(20000, 40, 2);
  EXPECT_LT(mapping_seconds(coords, 3, 1, MapBackend::kGrid, false, false,
                            false),
            mapping_seconds(coords, 3, 1, MapBackend::kHashMap, false,
                            false, false));
}

TEST(MappingCost, FusedDownsampleBeatsStaged) {
  const auto coords = random_coords(20000, 40, 3);
  EXPECT_LT(mapping_seconds(coords, 3, 2, MapBackend::kGrid, true, false,
                            false),
            mapping_seconds(coords, 3, 2, MapBackend::kGrid, false, false,
                            false));
}

TEST(MappingCost, SimplifiedControlHelps) {
  const auto coords = random_coords(20000, 40, 4);
  EXPECT_LT(mapping_seconds(coords, 3, 2, MapBackend::kGrid, true, true,
                            false),
            mapping_seconds(coords, 3, 2, MapBackend::kGrid, true, false,
                            false));
}

TEST(MappingCost, SymmetryHelpsSubmanifoldLayers) {
  const auto coords = random_coords(20000, 40, 5);
  EXPECT_LT(mapping_seconds(coords, 3, 1, MapBackend::kGrid, true, true,
                            true),
            mapping_seconds(coords, 3, 1, MapBackend::kGrid, true, true,
                            false));
}

TEST(MappingCost, FullStackGivesSubstantialCumulativeGain) {
  // Fig. 13's overall message: the full mapping stack is several times
  // faster than the hashmap + staged + control-heavy baseline.
  const auto coords = random_coords(30000, 44, 6);
  const double base = mapping_seconds(coords, 3, 2, MapBackend::kHashMap,
                                      false, false, false);
  const double opt =
      mapping_seconds(coords, 3, 2, MapBackend::kGrid, true, true, true);
  EXPECT_GT(base / opt, 2.0);
  EXPECT_LT(base / opt, 8.0);
}

TEST(MappingCost, TransposeChargeIsTiny) {
  EngineConfig cfg = torchsparse_config();
  ExecContext ctx(rtx3090(), cfg);
  charge_map_transpose(100000, ctx);
  EXPECT_GT(ctx.timeline.stage_seconds(Stage::kMapping), 0.0);
  EXPECT_LT(ctx.timeline.stage_seconds(Stage::kMapping), 1e-4);
}

TEST(MappingCost, ElementwiseScalesWithTensorSize) {
  EngineConfig cfg = torchsparse_config();
  ExecContext a(rtx3090(), cfg), b(rtx3090(), cfg);
  charge_elementwise(1000, 64, a);
  charge_elementwise(100000, 64, b);
  EXPECT_LT(a.timeline.stage_seconds(Stage::kMisc),
            b.timeline.stage_seconds(Stage::kMisc));
}

TEST(MappingCost, DownsampleCountersFeedTimeline) {
  const auto coords = random_coords(5000, 30, 7);
  DownsampleCounters c;
  downsample_coords(coords, 2, 2, false, false, &c);
  EngineConfig cfg = baseline_config();
  ExecContext ctx(rtx2080ti(), cfg);
  charge_downsample(c, ctx);
  EXPECT_GT(ctx.timeline.stage_seconds(Stage::kMapping), 0.0);
  EXPECT_EQ(ctx.timeline.kernel_launches(), c.kernel_launches);
  EXPECT_DOUBLE_EQ(ctx.timeline.dram_bytes(), c.dram_bytes);
}

TEST(MappingCost, FasterDeviceMapsFaster) {
  const auto coords = random_coords(15000, 38, 8);
  const double t3090 = [&] {
    EngineConfig cfg = baseline_config();
    ExecContext ctx(rtx3090(), cfg);
    std::mt19937_64 rng(1);
    Conv3dParams p;
    p.geom = ConvGeometry{3, 2, false};
    p.weights = spnn::make_conv_weights(3, 4, 4, rng);
    SparseTensor x(coords, Matrix(coords.size(), 4));
    ctx.compute_numerics = false;
    sparse_conv3d(x, p, ctx);
    return ctx.timeline.stage_seconds(Stage::kMapping);
  }();
  const double t1080 = [&] {
    EngineConfig cfg = baseline_config();
    ExecContext ctx(gtx1080ti(), cfg);
    std::mt19937_64 rng(1);
    Conv3dParams p;
    p.geom = ConvGeometry{3, 2, false};
    p.weights = spnn::make_conv_weights(3, 4, 4, rng);
    SparseTensor x(coords, Matrix(coords.size(), 4));
    ctx.compute_numerics = false;
    sparse_conv3d(x, p, ctx);
    return ctx.timeline.stage_seconds(Stage::kMapping);
  }();
  EXPECT_LT(t3090, t1080);
}

}  // namespace
}  // namespace ts
