// Cross-request kernel-map cache: content-addressed keys, bit-identical
// warm-vs-cold results, byte-budget LRU eviction, hit accounting, and —
// through BatchRunner — thread-safe sharing with modeled statistics that
// are deterministic for any worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <sstream>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/conv3d.hpp"
#include "core/kernel_map_cache.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "gpusim/device.hpp"
#include "nn/layers.hpp"
#include "nn/minkunet.hpp"
#include "serve/batch_runner.hpp"
#include "serve/request_queue.hpp"

namespace ts {
namespace {

SparseTensor random_tensor(int n, int extent, std::size_t channels,
                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  Matrix feats(coords.size(), channels);
  for (std::size_t i = 0; i < feats.size(); ++i) feats.data()[i] = f(rng);
  return SparseTensor(std::move(coords), std::move(feats));
}

/// Down + submanifold + up, so the cache sees downsample coords, strided
/// maps, stride-1 maps, and transposed reuse.
ModelFn small_unet(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto net = std::make_shared<spnn::Sequential>();
  net->emplace<spnn::ConvBlock>(4, 16, 3, 1, false, rng);
  net->emplace<spnn::ConvBlock>(16, 32, 2, 2, false, rng);
  net->emplace<spnn::ConvBlock>(32, 32, 3, 1, false, rng);
  net->emplace<spnn::ConvBlock>(32, 16, 2, 2, true, rng);
  return [net](const SparseTensor& x, ExecContext& ctx) {
    net->forward(x, ctx);
  };
}

void expect_same_timeline(const Timeline& a, const Timeline& b) {
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const Stage st = static_cast<Stage>(s);
    EXPECT_DOUBLE_EQ(a.stage_seconds(st), b.stage_seconds(st))
        << to_string(st);
  }
  EXPECT_DOUBLE_EQ(a.dram_bytes(), b.dram_bytes());
  EXPECT_EQ(a.kernel_launches(), b.kernel_launches());
  EXPECT_DOUBLE_EQ(a.flops(), b.flops());
}

// --- Content keys -----------------------------------------------------

TEST(MapCacheKey, DeterministicAndContentSensitive) {
  const SparseTensor t = random_tensor(200, 14, 4, 1);
  const std::vector<Coord>& in = t.coords();
  ConvGeometry geom{3, 1, false, 1};
  MapSearchOptions opts{MapBackend::kGrid, true};

  const MapCacheKey a = kernel_map_cache_key(in, in, geom, opts);
  const MapCacheKey b = kernel_map_cache_key(in, in, geom, opts);
  EXPECT_EQ(a, b);

  // Any build-input change must move the key: coordinate content,
  // coordinate order, geometry, and search options.
  std::vector<Coord> perturbed = in;
  perturbed[0].x += 1;
  EXPECT_FALSE(a == kernel_map_cache_key(perturbed, perturbed, geom, opts));
  std::vector<Coord> swapped = in;
  std::swap(swapped[0], swapped[1]);
  EXPECT_FALSE(a == kernel_map_cache_key(swapped, swapped, geom, opts));
  ConvGeometry k5 = geom;
  k5.kernel_size = 5;
  EXPECT_FALSE(a == kernel_map_cache_key(in, in, k5, opts));
  MapSearchOptions hash_opts{MapBackend::kHashMap, true};
  EXPECT_FALSE(a == kernel_map_cache_key(in, in, geom, hash_opts));

  const MapCacheKey d1 = downsample_cache_key(in, 2, 2, true, true);
  EXPECT_EQ(d1, downsample_cache_key(in, 2, 2, true, true));
  EXPECT_FALSE(d1 == downsample_cache_key(in, 2, 2, false, true));
  EXPECT_FALSE(d1 == downsample_cache_key(perturbed, 2, 2, true, true));
}

// --- Warm vs cold: results and accounting -----------------------------

TEST(KernelMapCache, WarmRunIsBitIdenticalAndCheaper) {
  const SparseTensor input = random_tensor(300, 14, 4, 2);
  std::mt19937_64 rng(7);
  spnn::MinkUNet net(0.25, 4, 5, 7);

  auto run_once = [&](const std::shared_ptr<KernelMapCache>& cache,
                      Matrix& out) {
    RunOptions opt;
    opt.numerics = true;
    opt.map_cache = cache;
    ExecContext ctx = make_run_context(rtx2080ti(), torchsparse_config(), opt);
    const SparseTensor in = fresh_input(input);
    out = net.forward(in, ctx).feats();
    return ctx.timeline;
  };

  Matrix cold_out, warm_out, off_out;
  const Timeline off = run_once(nullptr, off_out);
  auto cache = std::make_shared<KernelMapCache>(std::size_t(256) << 20);
  const Timeline cold = run_once(cache, cold_out);
  const Timeline warm = run_once(cache, warm_out);

  // Cold with the cache on charges exactly the cache-off path (misses
  // add no modeled overhead), and outputs are bit-identical across all
  // three runs.
  expect_same_timeline(off, cold);
  EXPECT_EQ(max_abs_diff(off_out, cold_out), 0.0f);
  EXPECT_EQ(max_abs_diff(off_out, warm_out), 0.0f);

  // Warm mapping time collapses to the re-key cost; everything else is
  // untouched.
  EXPECT_LT(warm.stage_seconds(Stage::kMapping),
            0.5 * cold.stage_seconds(Stage::kMapping));
  EXPECT_DOUBLE_EQ(warm.stage_seconds(Stage::kMatMul),
                   cold.stage_seconds(Stage::kMatMul));
  EXPECT_DOUBLE_EQ(warm.data_movement_seconds(),
                   cold.data_movement_seconds());

  const MapCacheStats s = cache->stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_EQ(s.hits + s.misses, s.lookups);
}

TEST(KernelMapCache, SurvivesResetContext) {
  const SparseTensor input = random_tensor(250, 13, 4, 3);
  const ModelFn model = small_unet(11);
  RunOptions opt;
  opt.map_cache = std::make_shared<KernelMapCache>(std::size_t(64) << 20);
  ExecContext ctx = make_run_context(rtx2080ti(), torchsparse_config(), opt);

  const Timeline cold = run_in_context(model, input, ctx);
  reset_context(ctx);
  ASSERT_NE(ctx.map_cache, nullptr);  // warm maps outlive the reset
  const Timeline warm = run_in_context(model, input, ctx);
  EXPECT_LT(warm.stage_seconds(Stage::kMapping),
            cold.stage_seconds(Stage::kMapping));
  EXPECT_GT(opt.map_cache->stats().hits, 0u);
}

// --- LRU eviction and byte budget -------------------------------------

TEST(KernelMapCache, LruEvictsUnderTinyByteBudget) {
  const SparseTensor a = random_tensor(200, 13, 4, 4);
  const SparseTensor b = random_tensor(200, 13, 4, 5);
  ConvGeometry geom{3, 1, false, 1};
  MapSearchOptions opts{MapBackend::kGrid, false};

  auto build = [&](const SparseTensor& t) {
    return [&]() {
      MapCachePayload p;
      p.kmap = std::make_shared<const KernelMap>(
          build_kernel_map(t.coords(), t.coords(), geom, opts));
      return p;
    };
  };
  const MapCacheKey ka = kernel_map_cache_key(a.coords(), a.coords(), geom,
                                              opts);
  const MapCacheKey kb = kernel_map_cache_key(b.coords(), b.coords(), geom,
                                              opts);

  // Budget sized for roughly one entry: alternating keys must evict.
  MapCachePayload probe;
  probe.kmap = std::make_shared<const KernelMap>(
      build_kernel_map(a.coords(), a.coords(), geom, opts));
  auto cache = std::make_shared<KernelMapCache>(
      map_cache_payload_bytes(probe) + 1024);
  bool hit = false;
  cache->get_or_build(ka, build(a), &hit);
  EXPECT_FALSE(hit);
  cache->get_or_build(kb, build(b), &hit);  // evicts a
  EXPECT_FALSE(hit);
  cache->get_or_build(ka, build(a), &hit);  // rebuilt: a was evicted
  EXPECT_FALSE(hit);
  cache->get_or_build(ka, build(a), &hit);  // now warm
  EXPECT_TRUE(hit);

  const MapCacheStats s = cache->stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.bytes_in_use, s.byte_budget);
  EXPECT_EQ(s.entries, 1u);
}

TEST(KernelMapCache, OversizedEntriesAreReturnedButNeverCached) {
  const SparseTensor a = random_tensor(200, 13, 4, 6);
  ConvGeometry geom{3, 1, false, 1};
  MapSearchOptions opts{MapBackend::kGrid, false};
  auto cache = std::make_shared<KernelMapCache>(64);  // far below any map
  const MapCacheKey ka = kernel_map_cache_key(a.coords(), a.coords(), geom,
                                              opts);
  bool hit = true;
  const MapCachePayload p = cache->get_or_build(
      ka,
      [&] {
        MapCachePayload out;
        out.kmap = std::make_shared<const KernelMap>(
            build_kernel_map(a.coords(), a.coords(), geom, opts));
        return out;
      },
      &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(p.kmap, nullptr);
  EXPECT_GT(p.kmap->total(), 0u);
  const MapCacheStats s = cache->stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.oversized, 1u);
  EXPECT_EQ(s.bytes_in_use, 0u);
}

TEST(KernelMapCache, HitRateAccounting) {
  const SparseTensor a = random_tensor(150, 12, 4, 8);
  ConvGeometry geom{3, 1, false, 1};
  MapSearchOptions opts{MapBackend::kGrid, false};
  auto cache = std::make_shared<KernelMapCache>(std::size_t(64) << 20);
  const MapCacheKey ka = kernel_map_cache_key(a.coords(), a.coords(), geom,
                                              opts);
  auto build = [&] {
    MapCachePayload p;
    p.kmap = std::make_shared<const KernelMap>(
        build_kernel_map(a.coords(), a.coords(), geom, opts));
    return p;
  };
  for (int i = 0; i < 5; ++i) cache->get_or_build(ka, build);
  const MapCacheStats s = cache->stats();
  EXPECT_EQ(s.lookups, 5u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 4u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.8);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_GE(s.build_wall_seconds_saved, 0.0);
}

// --- Snapshots and warm start -----------------------------------------

/// Deterministic coords payload of `n` coordinates — a sizing knob for
/// budget/eviction tests (map_cache_payload_bytes scales with n).
MapCachePayload coords_payload(int n, int32_t salt) {
  auto cs = std::make_shared<std::vector<Coord>>();
  for (int i = 0; i < n; ++i)
    cs->push_back({0, salt, static_cast<int32_t>(i), salt + 1});
  MapCachePayload p;
  p.coords = std::move(cs);
  p.ds_counters.kernel_launches = 3;
  p.ds_counters.dram_bytes = 1234.5;
  p.ds_counters.instr_ops = 67.0;
  p.ds_counters.candidates = static_cast<std::size_t>(n) * 8;
  p.ds_counters.kept = static_cast<std::size_t>(n);
  return p;
}

MapCachePayload kmap_payload(const SparseTensor& t) {
  ConvGeometry geom{3, 1, false, 1};
  MapSearchOptions opts{MapBackend::kGrid, true};
  MapCachePayload p;
  p.kmap = std::make_shared<const KernelMap>(
      build_kernel_map(t.coords(), t.coords(), geom, opts));
  return p;
}

void expect_same_payload(const MapCachePayload& a, const MapCachePayload& b) {
  ASSERT_EQ(static_cast<bool>(a.kmap), static_cast<bool>(b.kmap));
  ASSERT_EQ(static_cast<bool>(a.coords), static_cast<bool>(b.coords));
  if (a.kmap) {
    EXPECT_EQ(a.kmap->kernel_size, b.kmap->kernel_size);
    ASSERT_EQ(a.kmap->maps.size(), b.kmap->maps.size());
    for (std::size_t m = 0; m < a.kmap->maps.size(); ++m) {
      ASSERT_EQ(a.kmap->maps[m].size(), b.kmap->maps[m].size()) << m;
      for (std::size_t i = 0; i < a.kmap->maps[m].size(); ++i) {
        EXPECT_EQ(a.kmap->maps[m][i].in, b.kmap->maps[m][i].in);
        EXPECT_EQ(a.kmap->maps[m][i].out, b.kmap->maps[m][i].out);
      }
    }
    EXPECT_EQ(a.kmap->stats.queries, b.kmap->stats.queries);
    EXPECT_EQ(a.kmap->stats.index_accesses, b.kmap->stats.index_accesses);
    EXPECT_EQ(a.kmap->stats.build_accesses, b.kmap->stats.build_accesses);
    EXPECT_EQ(a.kmap->stats.used_symmetry, b.kmap->stats.used_symmetry);
    EXPECT_EQ(a.kmap->stats.backend, b.kmap->stats.backend);
  }
  if (a.coords) {
    ASSERT_EQ(a.coords->size(), b.coords->size());
    for (std::size_t i = 0; i < a.coords->size(); ++i) {
      EXPECT_EQ(pack_coord((*a.coords)[i]), pack_coord((*b.coords)[i])) << i;
    }
    EXPECT_EQ(a.ds_counters.kernel_launches, b.ds_counters.kernel_launches);
    EXPECT_DOUBLE_EQ(a.ds_counters.dram_bytes, b.ds_counters.dram_bytes);
    EXPECT_DOUBLE_EQ(a.ds_counters.instr_ops, b.ds_counters.instr_ops);
    EXPECT_EQ(a.ds_counters.candidates, b.ds_counters.candidates);
    EXPECT_EQ(a.ds_counters.kept, b.ds_counters.kept);
  }
}

TEST(MapCacheSnapshot, RoundTripIsByteIdentical) {
  // Both payload kinds, plus build-time/LRU metadata, must survive
  // save -> load -> save byte-for-byte.
  KernelMapCache cache(std::size_t(64) << 20);
  const SparseTensor t = random_tensor(180, 12, 4, 41);
  EXPECT_TRUE(cache.admit({1, 2}, kmap_payload(t), 0.25));
  EXPECT_TRUE(cache.admit({3, 4}, coords_payload(100, 5), 0.5));
  EXPECT_TRUE(cache.admit({5, 6}, coords_payload(40, 9), 0.0));

  std::stringstream image;
  cache.save_snapshot(image);

  KernelMapCache restored(std::size_t(64) << 20);
  restored.load_snapshot(image);
  std::stringstream image2;
  restored.save_snapshot(image2);
  EXPECT_EQ(image.str(), image2.str());  // byte-identical re-serialization

  const MapCacheSnapshot a = cache.export_snapshot();
  const MapCacheSnapshot b = restored.export_snapshot();
  EXPECT_EQ(a.byte_budget, b.byte_budget);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].key, b.entries[i].key) << i;
    EXPECT_EQ(a.entries[i].bytes, b.entries[i].bytes) << i;
    EXPECT_DOUBLE_EQ(a.entries[i].build_wall_seconds,
                     b.entries[i].build_wall_seconds)
        << i;
    expect_same_payload(a.entries[i].payload, b.entries[i].payload);
  }

  // Restoring counts insertions, never lookups: warm-start seeding must
  // not perturb hit-rate accounting.
  const MapCacheStats s = restored.stats();
  EXPECT_EQ(s.entries, 3u);
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.lookups, 0u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.bytes_in_use, cache.stats().bytes_in_use);
}

TEST(MapCacheSnapshot, EvictionOrderSurvivesRoundTripUnderChurn) {
  // Snapshot a cache whose LRU order was permuted by hits, restore it,
  // then drive both caches through an identical admission churn: the
  // restored cache must evict exactly the same keys in the same order.
  const MapCachePayload unit = coords_payload(50, 1);
  const std::size_t unit_bytes = map_cache_payload_bytes(unit);
  KernelMapCache original(4 * unit_bytes + 64);
  const MapCacheKey k1{11, 0}, k2{22, 0}, k3{33, 0}, k4{44, 0};
  EXPECT_TRUE(original.admit(k1, coords_payload(50, 1)));
  EXPECT_TRUE(original.admit(k2, coords_payload(50, 2)));
  EXPECT_TRUE(original.admit(k3, coords_payload(50, 3)));
  EXPECT_TRUE(original.admit(k4, coords_payload(50, 4)));
  // Touch k1 and k3: LRU order becomes k2, k4, k1, k3 (LRU-first).
  original.get_or_build(k1, [] { return MapCachePayload{}; });
  original.get_or_build(k3, [] { return MapCachePayload{}; });

  const MapCacheSnapshot snap = original.export_snapshot();
  ASSERT_EQ(snap.entries.size(), 4u);
  EXPECT_EQ(snap.entries.front().key, k2);  // LRU first
  EXPECT_EQ(snap.entries.back().key, k3);   // MRU last

  KernelMapCache restored(4 * unit_bytes + 64);
  restored.import_snapshot(snap);
  // Identical churn on both: two new admissions evict the two LRU
  // entries (k2 then k4) from each cache.
  for (KernelMapCache* c : {&original, &restored}) {
    EXPECT_TRUE(c->admit({55, 0}, coords_payload(50, 5)));
    EXPECT_TRUE(c->admit({66, 0}, coords_payload(50, 6)));
  }
  for (KernelMapCache* c : {&original, &restored}) {
    EXPECT_FALSE(c->contains(k2));
    EXPECT_FALSE(c->contains(k4));
    EXPECT_TRUE(c->contains(k1));
    EXPECT_TRUE(c->contains(k3));
    EXPECT_TRUE(c->contains({55, 0}));
    EXPECT_TRUE(c->contains({66, 0}));
  }
  EXPECT_EQ(original.stats().entries, restored.stats().entries);
  EXPECT_EQ(original.stats().bytes_in_use, restored.stats().bytes_in_use);
}

TEST(MapCacheSnapshot, SmallerBudgetKeepsMruSuffix) {
  const MapCachePayload unit = coords_payload(50, 1);
  const std::size_t unit_bytes = map_cache_payload_bytes(unit);
  KernelMapCache big(3 * unit_bytes + 64);
  const MapCacheKey k1{1, 0}, k2{2, 0}, k3{3, 0};
  big.admit(k1, coords_payload(50, 1));
  big.admit(k2, coords_payload(50, 2));
  big.admit(k3, coords_payload(50, 3));

  // Re-admitting LRU-first into a 2-entry budget must keep the MRU
  // suffix {k2, k3} — the entries the saving cache valued most.
  KernelMapCache small(2 * unit_bytes + 64);
  small.import_snapshot(big.export_snapshot());
  EXPECT_FALSE(small.contains(k1));
  EXPECT_TRUE(small.contains(k2));
  EXPECT_TRUE(small.contains(k3));
  EXPECT_EQ(small.stats().entries, 2u);
}

TEST(MapCacheSnapshot, ReseedRecordIsAtomicUnderConcurrentReaders) {
  // Regression: reseed_record used to release the lock between its
  // clear() and each per-entry admit_record(), so a concurrent reader
  // could observe the half-reseeded population. It is now a single
  // lock-held compound: every stats() observation lands on either the
  // pre-reseed population (empty here) or the full manifest — never a
  // strict subset of it mid-rebuild. Run under TSan in CI.
  constexpr std::size_t kEntries = 16;
  MapCacheSnapshot manifest;
  manifest.byte_budget = std::size_t(1) << 20;
  for (std::size_t i = 0; i < kEntries; ++i)
    manifest.entries.push_back(
        {MapCacheKey{100 + static_cast<uint64_t>(i), 0}, MapCachePayload{},
         256, 0.0});

  KernelMapCache cache(std::size_t(1) << 20);
  std::atomic<bool> stop{false};
  std::atomic<bool> partial_seen{false};
  std::thread reader([&] {
    while (!stop) {
      const std::size_t n = cache.stats().entries;
      if (n != 0 && n != kEntries) partial_seen = true;
    }
  });
  for (int round = 0; round < 200; ++round) {
    const auto outcomes = cache.reseed_record(manifest);
    ASSERT_EQ(outcomes.size(), kEntries);
  }
  stop = true;
  reader.join();
  EXPECT_FALSE(partial_seen);
  EXPECT_EQ(cache.stats().entries, kEntries);
}

TEST(MapCacheSnapshot, RecordModeCacheRefusesPayloadExport) {
  KernelMapCache record(std::size_t(1) << 20);
  record.record_lookup({7, 7}, 512);
  EXPECT_THROW(record.export_snapshot(), std::logic_error);
  std::stringstream os;
  EXPECT_THROW(record.save_snapshot(os), std::logic_error);
}

TEST(MapCacheSnapshot, AdmitSkipsOversizedAndRefreshesExisting) {
  const MapCachePayload unit = coords_payload(50, 1);
  const std::size_t unit_bytes = map_cache_payload_bytes(unit);
  KernelMapCache cache(2 * unit_bytes + 64);
  const MapCacheKey k1{1, 0}, k2{2, 0}, k3{3, 0};
  EXPECT_TRUE(cache.admit(k1, coords_payload(50, 1)));
  EXPECT_TRUE(cache.admit(k2, coords_payload(50, 2)));
  // A payload past the whole budget is skipped, population untouched.
  EXPECT_FALSE(cache.admit({9, 9}, coords_payload(500, 9)));
  EXPECT_EQ(cache.stats().entries, 2u);
  // Re-admitting k1 refreshes it to MRU: the next eviction takes k2.
  EXPECT_TRUE(cache.admit(k1, coords_payload(50, 1)));
  EXPECT_TRUE(cache.admit(k3, coords_payload(50, 3)));
  EXPECT_TRUE(cache.contains(k1));
  EXPECT_FALSE(cache.contains(k2));
  EXPECT_TRUE(cache.contains(k3));
}

TEST(MapCacheSnapshot, ReplayWarmStartMatchesNeverSerializedReplay) {
  // A replay warm-started from a snapshot must produce the same modeled
  // stats over the test traffic as a replay that reached the same
  // population by replaying the warming traffic itself.
  const MapCacheKey ka{1, 1}, kb{2, 2}, kc{3, 3};
  auto event = [](const MapCacheKey& k, std::size_t bytes) {
    MapCacheEvent ev;
    ev.key = k;
    ev.bytes = bytes;
    ev.cold_seconds = 1.0;
    ev.hit_seconds = 0.125;
    return ev;
  };
  const std::vector<MapCacheEvent> warm_traffic = {
      event(ka, 1000), event(kb, 1000), event(kc, 1000)};
  const std::vector<MapCacheEvent> test_traffic = {
      event(kb, 1000), event(ka, 1000), event(kc, 1000), event(ka, 1000)};

  // Path 1: replay the warming traffic, then the test traffic.
  MapCacheReplay lived(std::size_t(1) << 20);
  Timeline scratch;
  lived.apply(warm_traffic, scratch);
  const MapCacheReplayStats before = lived.stats();
  lived.apply(test_traffic, scratch);

  // Path 2: the same population via a snapshot manifest. (The payload
  // cache admits the same keys in the same order; its exported manifest
  // carries their keys and byte footprints.)
  KernelMapCache source(std::size_t(1) << 20);
  MapCachePayload p = coords_payload(50, 1);
  const std::size_t bytes = map_cache_payload_bytes(p);
  source.admit(ka, coords_payload(50, 1));
  source.admit(kb, coords_payload(50, 2));
  source.admit(kc, coords_payload(50, 3));
  MapCacheSnapshot snap = source.export_snapshot();
  for (MapCacheSnapshotEntry& e : snap.entries) e.bytes = 1000;  // as lived
  (void)bytes;

  MapCacheReplay warmed(std::size_t(1) << 20);
  warmed.warm_start(snap);
  // Seeding is not traffic: every counter still zero.
  EXPECT_EQ(warmed.stats().lookups, 0u);
  EXPECT_EQ(warmed.stats().hits, 0u);
  EXPECT_EQ(warmed.stats().misses, 0u);
  EXPECT_EQ(warmed.stats().evictions, 0u);
  Timeline scratch2;
  warmed.apply(test_traffic, scratch2);

  // Identical test-phase deltas: every lookup in the warmed replay hits,
  // exactly like the replay that lived through the warming traffic.
  EXPECT_EQ(warmed.stats().lookups, lived.stats().lookups - before.lookups);
  EXPECT_EQ(warmed.stats().hits, lived.stats().hits - before.hits);
  EXPECT_EQ(warmed.stats().misses, lived.stats().misses - before.misses);
  EXPECT_EQ(warmed.stats().evictions,
            lived.stats().evictions - before.evictions);
  EXPECT_DOUBLE_EQ(
      warmed.stats().modeled_seconds_saved,
      lived.stats().modeled_seconds_saved - before.modeled_seconds_saved);
  EXPECT_EQ(warmed.stats().hits, 4u);  // every test lookup warm
}

// --- Serving integration ----------------------------------------------

serve::StreamReport serve_stream(int workers, std::size_t cache_bytes,
                                 const std::vector<SparseTensor>& scans,
                                 bool borrow = false) {
  const ModelFn model = small_unet(21);
  serve::BatchOptions opt;
  opt.workers = workers;
  opt.map_cache_bytes = cache_bytes;
  opt.run.borrow_input = borrow;
  const serve::BatchRunner runner(rtx2080ti(), torchsparse_config(), opt);
  serve::RequestQueue queue;
  std::vector<serve::StreamHandle> handles;
  for (std::size_t i = 0; i < scans.size(); ++i)
    handles.push_back(
        queue.submit(scans[i], 0.001 * static_cast<double>(i)));
  queue.close();
  return runner.serve(model, queue);
}

TEST(KernelMapCacheServe, DuplicateStreamAmortizesMappingDeterministically) {
  // 12 requests, all the same scan: the warm path must amortize the
  // mapping stage away and the modeled stats must not depend on the
  // worker count (deferred submission-order accounting).
  const SparseTensor scan = random_tensor(250, 13, 4, 9);
  const std::vector<SparseTensor> scans(12, scan);

  const serve::StreamReport off = serve_stream(4, 0, scans);
  const serve::StreamReport on1 = serve_stream(1, 64 << 20, scans);
  const serve::StreamReport on4 = serve_stream(4, 64 << 20, scans);

  // Deterministic across worker counts: identical aggregate timeline and
  // per-request service times.
  expect_same_timeline(on1.stats.aggregate, on4.stats.aggregate);
  ASSERT_EQ(on1.requests.size(), on4.requests.size());
  for (std::size_t i = 0; i < on1.requests.size(); ++i)
    EXPECT_DOUBLE_EQ(on1.requests[i].service_seconds,
                     on4.requests[i].service_seconds);

  // Amortization: 11 of 12 requests hit every mapping product.
  const double map_off = off.stats.aggregate.stage_seconds(Stage::kMapping);
  const double map_on = on4.stats.aggregate.stage_seconds(Stage::kMapping);
  EXPECT_LT(map_on, 0.25 * map_off);
  EXPECT_GT(on4.stats.map_cache.hits, 0u);
  EXPECT_EQ(on4.stats.map_cache.hits + on4.stats.map_cache.misses,
            on4.stats.map_cache.lookups);
  EXPECT_GT(on4.stats.map_cache.modeled_seconds_saved, 0.0);

  // Non-mapping stages are untouched by the cache.
  EXPECT_DOUBLE_EQ(off.stats.aggregate.stage_seconds(Stage::kMatMul),
                   on4.stats.aggregate.stage_seconds(Stage::kMatMul));
}

TEST(KernelMapCacheServe, UniqueStreamMatchesCacheOffBitExactly) {
  // 0% duplicates: the cache must be invisible in the modeled stats.
  std::vector<SparseTensor> scans;
  for (int i = 0; i < 6; ++i)
    scans.push_back(random_tensor(200 + 10 * i, 13, 4,
                                  100 + static_cast<uint64_t>(i)));
  const serve::StreamReport off = serve_stream(3, 0, scans);
  const serve::StreamReport on = serve_stream(3, 64 << 20, scans);
  expect_same_timeline(off.stats.aggregate, on.stats.aggregate);
  EXPECT_EQ(on.stats.map_cache.hits, 0u);
}

TEST(KernelMapCacheServe, RepeatedServeRunsAreDeterministic) {
  // Same stream, fresh runner, several repeats: every modeled statistic
  // must be bit-equal run to run even with a warm shared cache and many
  // workers racing.
  std::vector<SparseTensor> scans;
  const SparseTensor dup = random_tensor(220, 13, 4, 10);
  for (int i = 0; i < 10; ++i)
    scans.push_back(i % 2 ? dup
                          : random_tensor(200, 13, 4,
                                          200 + static_cast<uint64_t>(i)));
  const serve::StreamReport first = serve_stream(8, 32 << 20, scans);
  for (int rep = 0; rep < 2; ++rep) {
    const serve::StreamReport again = serve_stream(8, 32 << 20, scans);
    expect_same_timeline(first.stats.aggregate, again.stats.aggregate);
    EXPECT_DOUBLE_EQ(first.stats.e2e_p99_seconds,
                     again.stats.e2e_p99_seconds);
    EXPECT_EQ(first.stats.map_cache.hits, again.stats.map_cache.hits);
    EXPECT_EQ(first.stats.map_cache.evictions,
              again.stats.map_cache.evictions);
  }
}

TEST(KernelMapCacheServe, BorrowInputMatchesCopyPath) {
  std::vector<SparseTensor> scans;
  for (int i = 0; i < 6; ++i)
    scans.push_back(random_tensor(180, 12, 4,
                                  300 + static_cast<uint64_t>(i)));
  const serve::StreamReport copy =
      serve_stream(2, 16 << 20, scans, /*borrow=*/false);
  const serve::StreamReport borrow =
      serve_stream(2, 16 << 20, scans, /*borrow=*/true);
  expect_same_timeline(copy.stats.aggregate, borrow.stats.aggregate);
  ASSERT_EQ(copy.requests.size(), borrow.requests.size());
  for (std::size_t i = 0; i < copy.requests.size(); ++i)
    EXPECT_DOUBLE_EQ(copy.requests[i].service_seconds,
                     borrow.requests[i].service_seconds);
}

TEST(KernelMapCacheServe, BorrowedRunInContextMatchesCopy) {
  const SparseTensor input = random_tensor(200, 13, 4, 12);
  const ModelFn model = small_unet(31);
  ExecContext a = make_run_context(rtx2080ti(), torchsparse_config(), {});
  ExecContext b = make_run_context(rtx2080ti(), torchsparse_config(), {});
  const Timeline copied = run_in_context(model, input, a);
  SparseTensor own(input.coords(), input.feats());
  const Timeline borrowed = run_in_context(model, std::move(own), b);
  expect_same_timeline(copied, borrowed);
}

TEST(MapCacheKey, NamespaceSaltIdentityAndDistinctness) {
  const MapCacheKey k{0x0123456789abcdefull, 0xfedcba9876543210ull};
  // Namespace 0 is the exact identity: the legacy digest space, so
  // existing .tsmc snapshots and baselines keep resolving byte-for-byte.
  EXPECT_EQ(salt_cache_key(k, 0), k);
  // Nonzero namespaces remap deterministically and pairwise-distinctly.
  const MapCacheKey a = salt_cache_key(k, 1);
  const MapCacheKey b = salt_cache_key(k, 2);
  EXPECT_EQ(a, salt_cache_key(k, 1));
  EXPECT_NE(a, k);
  EXPECT_NE(b, k);
  EXPECT_NE(a, b);
  // Distinct base keys stay distinct inside one namespace (the salt is
  // a bijective mix, not a projection).
  const MapCacheKey k2{k.lo + 1, k.hi};
  EXPECT_NE(salt_cache_key(k2, 1), a);
}

TEST(KernelMapCache, NamespacesIsolateModelsSharingOneCache) {
  // Cross-model isolation regression: two tenants with byte-identical
  // inputs share one wall-clock cache. Distinct namespaces must make
  // the second tenant's first run fully cold (no hits borrowed from
  // tenant 0), while a repeat inside one namespace stays warm.
  const SparseTensor input = random_tensor(250, 13, 4, 5);
  const ModelFn model = small_unet(11);
  RunOptions opt;
  opt.map_cache = std::make_shared<KernelMapCache>(std::size_t(64) << 20);
  auto run_ns = [&](uint64_t ns) {
    RunOptions o = opt;
    o.cache_namespace = ns;
    ExecContext ctx =
        make_run_context(rtx2080ti(), torchsparse_config(), o);
    return run_in_context(model, input, ctx);
  };
  const Timeline cold0 = run_ns(0);
  const std::size_t hits_after_tenant0 = opt.map_cache->stats().hits;
  const Timeline cold1 = run_ns(1);
  // Not one hit crossed the namespace boundary, and the isolated cold
  // run charges exactly what tenant 0's cold run charged.
  EXPECT_EQ(opt.map_cache->stats().hits, hits_after_tenant0);
  expect_same_timeline(cold0, cold1);
  const Timeline warm1 = run_ns(1);
  EXPECT_GT(opt.map_cache->stats().hits, hits_after_tenant0);
  EXPECT_LT(warm1.stage_seconds(Stage::kMapping),
            cold1.stage_seconds(Stage::kMapping));
}

}  // namespace
}  // namespace ts
