// Fault-injection + fault-tolerance suite (serve/fault.hpp and the
// fault-tolerant scheduler inside serve::Server): plan validation,
// fault-free bit-equality pins, bit-identical replay, worker-count
// invariance of every fault-relevant modeled stat, typed ServeError
// outcomes (retries exhausted, no healthy device, deadline-hopeless
// shedding), stall recovery, crash redispatch, health-aware routing
// around DOWN shards, and snapshot-warm replacement shards.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "gpusim/device.hpp"
#include "io/serialize.hpp"
#include "nn/layers.hpp"
#include "serve/batch_runner.hpp"
#include "serve/fault.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"

namespace ts {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

SparseTensor random_tensor(int n, int extent, std::size_t channels,
                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  Matrix feats(coords.size(), channels);
  for (std::size_t i = 0; i < feats.size(); ++i) feats.data()[i] = f(rng);
  return SparseTensor(std::move(coords), std::move(feats));
}

ModelFn small_unet(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto net = std::make_shared<spnn::Sequential>();
  net->emplace<spnn::ConvBlock>(4, 16, 3, 1, false, rng);
  net->emplace<spnn::ConvBlock>(16, 32, 2, 2, false, rng);
  net->emplace<spnn::ConvBlock>(32, 32, 3, 1, false, rng);
  net->emplace<spnn::ConvBlock>(32, 16, 2, 2, true, rng);
  return [net](const SparseTensor& x, ExecContext& ctx) {
    net->forward(x, ctx);
  };
}

/// Duplicate-heavy stream (u0 u0 u1 u1 ...) so cache-affinity routing
/// and the warm-replacement path are genuinely exercised.
std::vector<SparseTensor> duplicate_stream(int n, uint64_t seed) {
  std::vector<SparseTensor> stream;
  for (int i = 0; i < n; ++i)
    stream.push_back(random_tensor(130 + 10 * (i / 2), 12, 4,
                                   seed + static_cast<uint64_t>(i / 2)));
  return stream;
}

void expect_same_timeline(const Timeline& a, const Timeline& b) {
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const Stage st = static_cast<Stage>(s);
    EXPECT_DOUBLE_EQ(a.stage_seconds(st), b.stage_seconds(st))
        << to_string(st);
  }
  EXPECT_DOUBLE_EQ(a.dram_bytes(), b.dram_bytes());
  EXPECT_EQ(a.kernel_launches(), b.kernel_launches());
  EXPECT_DOUBLE_EQ(a.flops(), b.flops());
}

/// Full bit-equality over the report: schedule fields, batch records
/// (attempts included), fault/retry accounting, and the modeled stats.
void expect_same_report(const serve::StreamReport& a,
                        const serve::StreamReport& b) {
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    expect_same_timeline(a.requests[i].timeline, b.requests[i].timeline);
    EXPECT_EQ(a.requests[i].id, b.requests[i].id);
    EXPECT_EQ(a.requests[i].priority, b.requests[i].priority);
    EXPECT_DOUBLE_EQ(a.requests[i].service_seconds,
                     b.requests[i].service_seconds);
    EXPECT_DOUBLE_EQ(a.requests[i].start_seconds,
                     b.requests[i].start_seconds);
    EXPECT_DOUBLE_EQ(a.requests[i].finish_seconds,
                     b.requests[i].finish_seconds);
    EXPECT_DOUBLE_EQ(a.requests[i].queue_wait_seconds,
                     b.requests[i].queue_wait_seconds);
    EXPECT_DOUBLE_EQ(a.requests[i].e2e_seconds, b.requests[i].e2e_seconds);
    EXPECT_EQ(a.requests[i].batch_id, b.requests[i].batch_id);
    EXPECT_EQ(a.requests[i].device, b.requests[i].device);
    EXPECT_EQ(a.requests[i].attempts, b.requests[i].attempts);
    EXPECT_DOUBLE_EQ(a.requests[i].retry_wait_seconds,
                     b.requests[i].retry_wait_seconds);
    EXPECT_EQ(a.requests[i].error, b.requests[i].error);
  }
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t k = 0; k < a.batches.size(); ++k) {
    EXPECT_EQ(a.batches[k].first, b.batches[k].first);
    EXPECT_EQ(a.batches[k].size, b.batches[k].size);
    EXPECT_DOUBLE_EQ(a.batches[k].dispatch_seconds,
                     b.batches[k].dispatch_seconds);
    EXPECT_DOUBLE_EQ(a.batches[k].start_seconds, b.batches[k].start_seconds);
    EXPECT_DOUBLE_EQ(a.batches[k].finish_seconds,
                     b.batches[k].finish_seconds);
    EXPECT_EQ(a.batches[k].device, b.batches[k].device);
    EXPECT_EQ(a.batches[k].attempts, b.batches[k].attempts);
  }
  EXPECT_EQ(a.stats.completed, b.stats.completed);
  EXPECT_EQ(a.stats.failed, b.stats.failed);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.redispatched_batches, b.stats.redispatched_batches);
  EXPECT_DOUBLE_EQ(a.stats.retry_wait_p99_seconds,
                   b.stats.retry_wait_p99_seconds);
  EXPECT_DOUBLE_EQ(a.stats.makespan_seconds, b.stats.makespan_seconds);
  EXPECT_DOUBLE_EQ(a.stats.e2e_p99_seconds, b.stats.e2e_p99_seconds);
  EXPECT_DOUBLE_EQ(a.stats.queue_wait_p99_seconds,
                   b.stats.queue_wait_p99_seconds);
  expect_same_timeline(a.stats.aggregate, b.stats.aggregate);
  EXPECT_EQ(a.stats.map_cache.lookups, b.stats.map_cache.lookups);
  EXPECT_EQ(a.stats.map_cache.hits, b.stats.map_cache.hits);
  EXPECT_EQ(a.stats.map_cache.misses, b.stats.map_cache.misses);
  ASSERT_EQ(a.stats.per_device.size(), b.stats.per_device.size());
  for (std::size_t d = 0; d < a.stats.per_device.size(); ++d) {
    EXPECT_EQ(a.stats.per_device[d].batches, b.stats.per_device[d].batches);
    EXPECT_EQ(a.stats.per_device[d].requests,
              b.stats.per_device[d].requests);
    EXPECT_DOUBLE_EQ(a.stats.per_device[d].busy_seconds,
                     b.stats.per_device[d].busy_seconds);
  }
  ASSERT_EQ(a.stats.per_class.size(), b.stats.per_class.size());
  for (std::size_t c = 0; c < a.stats.per_class.size(); ++c) {
    EXPECT_EQ(a.stats.per_class[c].completed,
              b.stats.per_class[c].completed);
    EXPECT_EQ(a.stats.per_class[c].failed, b.stats.per_class[c].failed);
    EXPECT_EQ(a.stats.per_class[c].retries, b.stats.per_class[c].retries);
  }
}

serve::ServerConfig base_cfg(std::size_t depth) {
  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti())
      .with_engine(torchsparse_config())
      .with_workers(2)
      .with_queue_depth(depth);
  serve::BatcherOptions b;
  b.policy = serve::BatchPolicy::kImmediate;
  cfg.with_batcher(b);
  return cfg;
}

/// Drives one full session with arrivals `spacing` apart and returns
/// (report, handles) so tests can assert on both channels.
struct ServedSession {
  serve::StreamReport report;
  std::vector<serve::StreamHandle> handles;
};

ServedSession serve_all(serve::Server& server, const ModelFn& model,
                        const std::vector<SparseTensor>& stream,
                        double spacing,
                        const std::vector<serve::Priority>* classes = nullptr) {
  ServedSession out;
  server.start(model);
  for (std::size_t i = 0; i < stream.size(); ++i)
    out.handles.push_back(server.submit(
        stream[i], spacing * static_cast<double>(i),
        classes ? (*classes)[i] : serve::Priority::kNormal));
  out.report = server.drain();
  return out;
}

// --- Plan / knob validation -------------------------------------------

TEST(FaultPlanValidation, RejectsMalformedPlansAndKnobs) {
  serve::FaultPlan plan;
  plan.faults.push_back({2, serve::FaultKind::kCrash, 0.0});
  EXPECT_THROW(serve::validate_fault_plan(plan, 2), std::invalid_argument);
  EXPECT_NO_THROW(serve::validate_fault_plan(plan, 3));

  plan.faults = {{0, serve::FaultKind::kCrash, -1.0}};
  EXPECT_THROW(serve::validate_fault_plan(plan, 1), std::invalid_argument);

  // Stalls must end; a shard that never comes back is a crash.
  serve::DeviceFault stall{0, serve::FaultKind::kStall, 0.0};
  stall.duration_seconds = kInf;
  plan.faults = {stall};
  EXPECT_THROW(serve::validate_fault_plan(plan, 1), std::invalid_argument);

  serve::DeviceFault slow{0, serve::FaultKind::kSlowdown, 0.0};
  slow.duration_seconds = 0.1;
  slow.slowdown_factor = 0.5;  // a speedup is not a fault
  plan.faults = {slow};
  EXPECT_THROW(serve::validate_fault_plan(plan, 1), std::invalid_argument);

  serve::FaultToleranceOptions opt;
  opt.max_attempts = 0;
  EXPECT_THROW(serve::validate_fault_tolerance(opt), std::invalid_argument);
  opt = {};
  opt.retry_backoff_seconds = -1.0;
  EXPECT_THROW(serve::validate_fault_tolerance(opt), std::invalid_argument);
  opt = {};
  opt.degrade_deadline_seconds[0] = std::nan("");
  EXPECT_THROW(serve::validate_fault_tolerance(opt), std::invalid_argument);
  EXPECT_NO_THROW(serve::validate_fault_tolerance({}));

  // Server construction validates the plan against the configured fleet.
  serve::ServerConfig cfg = base_cfg(8).with_devices(2);
  serve::FaultPlan bad;
  bad.faults.push_back({5, serve::FaultKind::kCrash, 0.0});
  cfg.with_fault_plan(bad);
  EXPECT_THROW(serve::Server{cfg}, std::invalid_argument);
}

// --- Fault-free pins --------------------------------------------------

TEST(FaultFree, EmptyPlanBitEqualsNoPlan) {
  const ModelFn model = small_unet(80);
  const auto stream = duplicate_stream(8, 8000);
  auto run = [&](bool with_plan) {
    serve::ServerConfig cfg = base_cfg(stream.size() + 1)
                                  .with_devices(2)
                                  .with_map_cache_bytes(std::size_t(64) << 20)
                                  .with_route(serve::RoutePolicy::kCacheAffinity);
    if (with_plan) cfg.with_fault_plan(serve::FaultPlan{});
    serve::Server server(cfg);
    return serve_all(server, model, stream, 0.001).report;
  };
  const serve::StreamReport bare = run(false);
  const serve::StreamReport empty = run(true);
  expect_same_report(bare, empty);
  EXPECT_EQ(bare.stats.failed, 0u);
  EXPECT_EQ(bare.stats.retries, 0u);
  EXPECT_EQ(bare.stats.redispatched_batches, 0u);
  EXPECT_EQ(bare.stats.faults_injected, 0u);
  EXPECT_DOUBLE_EQ(bare.stats.retry_wait_p99_seconds, 0.0);
  for (const serve::StreamResult& r : bare.requests) {
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.attempts, 1);
    EXPECT_DOUBLE_EQ(r.retry_wait_seconds, 0.0);
  }
}

TEST(FaultFree, NonTriggeringPlanKeepsScheduleBitIdentical) {
  // A non-empty plan routes the session through the fault-tolerant
  // scheduler (shadow clock, deferred finalization, health-aware
  // routing); with no fault landing inside the stream every schedule
  // field must still match the legacy path bit-for-bit.
  const ModelFn model = small_unet(81);
  const auto stream = duplicate_stream(8, 8100);
  for (const serve::RoutePolicy route :
       {serve::RoutePolicy::kLeastLoaded, serve::RoutePolicy::kCacheAffinity,
        serve::RoutePolicy::kEstimateAware}) {
    auto run = [&](bool with_plan) {
      serve::ServerConfig cfg = base_cfg(stream.size() + 1)
                                    .with_devices(2)
                                    .with_map_cache_bytes(std::size_t(64)
                                                          << 20)
                                    .with_route(route);
      if (with_plan) {
        // Lands eons after the last batch: activated only by the
        // end-of-stream drain, after every batch has finalized.
        serve::DeviceFault slow{1, serve::FaultKind::kSlowdown, 1e6};
        slow.duration_seconds = 1.0;
        slow.slowdown_factor = 4.0;
        cfg.with_fault_plan(serve::FaultPlan{{slow}});
      }
      serve::Server server(cfg);
      return serve_all(server, model, stream, 0.001).report;
    };
    const serve::StreamReport bare = run(false);
    const serve::StreamReport planned = run(true);
    expect_same_report(bare, planned);
    EXPECT_EQ(planned.stats.failed, 0u);
    EXPECT_EQ(planned.stats.retries, 0u);
  }
}

// --- Replay + worker invariance ---------------------------------------

TEST(FaultReplay, SameFaultPlanReplaysBitIdentical) {
  const ModelFn model = small_unet(82);
  const auto stream = duplicate_stream(8, 8200);
  serve::DeviceFault crash{0, serve::FaultKind::kCrash};
  crash.at_dispatch = 2;
  auto run = [&] {
    serve::ServerConfig cfg = base_cfg(stream.size() + 1)
                                  .with_devices(2)
                                  .with_map_cache_bytes(std::size_t(64) << 20)
                                  .with_route(serve::RoutePolicy::kLeastLoaded)
                                  .with_fault_plan(serve::FaultPlan{{crash}});
    serve::Server server(cfg);
    return serve_all(server, model, stream, 1e-5).report;
  };
  const serve::StreamReport a = run();
  const serve::StreamReport b = run();
  expect_same_report(a, b);
  EXPECT_EQ(a.stats.faults_injected, 1u);
}

TEST(FaultMatrix, ModeledFaultStatsWorkerInvariant) {
  // crash / stall / slowdown x routing policy, workers 1 vs 4: every
  // fault decision runs on the worker-invariant shadow clock, so which
  // batches die, every retry, every shed, and all fault accounting must
  // be a function of the (stream, plan, config) alone.
  const ModelFn model = small_unet(83);
  const auto stream = duplicate_stream(8, 8300);
  auto make_fault = [&](serve::FaultKind kind) {
    serve::DeviceFault f{1, kind};
    f.at_dispatch = 2;
    if (kind == serve::FaultKind::kStall) f.duration_seconds = 0.02;
    if (kind == serve::FaultKind::kSlowdown) {
      f.duration_seconds = 0.02;
      f.slowdown_factor = 3.0;
    }
    return f;
  };
  for (const serve::FaultKind kind :
       {serve::FaultKind::kCrash, serve::FaultKind::kStall,
        serve::FaultKind::kSlowdown}) {
    for (const serve::RoutePolicy route :
         {serve::RoutePolicy::kLeastLoaded,
          serve::RoutePolicy::kCacheAffinity,
          serve::RoutePolicy::kEstimateAware}) {
      auto run = [&](int workers) {
        serve::ServerConfig cfg =
            base_cfg(stream.size() + 1)
                .with_devices(2)
                .with_workers(workers)
                .with_map_cache_bytes(std::size_t(64) << 20)
                .with_route(route)
                .with_fault_plan(serve::FaultPlan{{make_fault(kind)}});
        serve::Server server(cfg);
        return serve_all(server, model, stream, 1e-5).report;
      };
      const serve::StreamReport w1 = run(1);
      const serve::StreamReport w4 = run(4);
      const std::string ctx = std::string(serve::to_string(kind)) + "/" +
                              serve::to_string(route);
      SCOPED_TRACE(ctx);
      EXPECT_EQ(w1.stats.completed, w4.stats.completed);
      EXPECT_EQ(w1.stats.failed, w4.stats.failed);
      EXPECT_EQ(w1.stats.retries, w4.stats.retries);
      EXPECT_EQ(w1.stats.redispatched_batches,
                w4.stats.redispatched_batches);
      EXPECT_EQ(w1.stats.faults_injected, w4.stats.faults_injected);
      EXPECT_DOUBLE_EQ(w1.stats.retry_wait_p99_seconds,
                       w4.stats.retry_wait_p99_seconds);
      EXPECT_EQ(w1.stats.map_cache.hits, w4.stats.map_cache.hits);
      EXPECT_EQ(w1.stats.map_cache.misses, w4.stats.map_cache.misses);
      ASSERT_EQ(w1.requests.size(), w4.requests.size());
      for (std::size_t i = 0; i < w1.requests.size(); ++i) {
        EXPECT_EQ(w1.requests[i].attempts, w4.requests[i].attempts) << i;
        EXPECT_DOUBLE_EQ(w1.requests[i].retry_wait_seconds,
                         w4.requests[i].retry_wait_seconds)
            << i;
        EXPECT_EQ(w1.requests[i].device, w4.requests[i].device) << i;
        EXPECT_EQ(w1.requests[i].error, w4.requests[i].error) << i;
        EXPECT_DOUBLE_EQ(w1.requests[i].service_seconds,
                         w4.requests[i].service_seconds)
            << i;
      }
      ASSERT_EQ(w1.stats.per_device.size(), w4.stats.per_device.size());
      for (std::size_t d = 0; d < w1.stats.per_device.size(); ++d) {
        EXPECT_EQ(w1.stats.per_device[d].batches,
                  w4.stats.per_device[d].batches);
        EXPECT_EQ(w1.stats.per_device[d].requests,
                  w4.stats.per_device[d].requests);
        EXPECT_DOUBLE_EQ(w1.stats.per_device[d].busy_seconds,
                         w4.stats.per_device[d].busy_seconds);
      }
    }
  }
}

// --- Typed failure outcomes -------------------------------------------

TEST(FaultOutcome, RetriesExhaustedAndNoHealthyDeviceResolveTyped) {
  // One shard, permanent crash the moment batch #1 dispatches, one
  // placement attempt allowed: the in-flight batch #0 exhausts its
  // budget, everything after it finds no routable shard. Both outcomes
  // travel through the result channel — drain() itself succeeds.
  const ModelFn model = small_unet(84);
  std::vector<SparseTensor> stream;
  for (int i = 0; i < 3; ++i)
    stream.push_back(random_tensor(100, 12, 4, 8400 + i));
  serve::DeviceFault crash{0, serve::FaultKind::kCrash};
  crash.at_dispatch = 1;
  serve::FaultToleranceOptions tol;
  tol.max_attempts = 1;
  serve::ServerConfig cfg = base_cfg(stream.size() + 1)
                                .with_fault_plan(serve::FaultPlan{{crash}})
                                .with_fault_tolerance(tol);
  serve::Server server(cfg);
  const ServedSession s = serve_all(server, model, stream, 1e-7);

  EXPECT_EQ(s.report.stats.completed, 0u);
  EXPECT_EQ(s.report.stats.failed, 3u);
  EXPECT_EQ(s.report.stats.faults_injected, 1u);
  EXPECT_TRUE(s.report.batches.empty());

  const serve::StreamResult& r0 = s.handles[0].get();
  EXPECT_FALSE(r0.ok());
  EXPECT_EQ(r0.error, serve::ServeErrorCode::kRetriesExhausted);
  EXPECT_EQ(r0.attempts, 1);
  try {
    s.handles[0].value();
    FAIL() << "value() must throw ServeError on a failed result";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.code(), serve::ServeErrorCode::kRetriesExhausted);
    EXPECT_NE(std::string(e.what()).find("retries_exhausted"),
              std::string::npos);
  }
  for (const std::size_t i : {std::size_t(1), std::size_t(2)}) {
    const serve::StreamResult& r = s.handles[i].get();
    EXPECT_EQ(r.error, serve::ServeErrorCode::kNoHealthyDevice) << i;
    EXPECT_THROW(s.handles[i].value(), serve::ServeError);
  }
}

TEST(FaultOutcome, StallRecoveryRedispatchesTheLostBatch) {
  // One shard stalls while batch #0 is in flight. The lost batch
  // re-places after recovery (attempt 2), batches dispatched during the
  // outage park for capacity without consuming an attempt, and the
  // stream completes in full.
  const ModelFn model = small_unet(85);
  std::vector<SparseTensor> stream;
  for (int i = 0; i < 3; ++i)
    stream.push_back(random_tensor(100, 12, 4, 8500 + i));
  serve::DeviceFault stall{0, serve::FaultKind::kStall};
  stall.at_dispatch = 1;
  stall.duration_seconds = 0.05;
  serve::ServerConfig cfg =
      base_cfg(stream.size() + 1).with_fault_plan(serve::FaultPlan{{stall}});
  serve::Server server(cfg);
  const ServedSession s = serve_all(server, model, stream, 1e-7);

  EXPECT_EQ(s.report.stats.completed, 3u);
  EXPECT_EQ(s.report.stats.failed, 0u);
  EXPECT_EQ(s.report.stats.retries, 1u);
  EXPECT_EQ(s.report.stats.redispatched_batches, 1u);
  EXPECT_EQ(s.report.stats.faults_injected, 1u);
  EXPECT_GT(s.report.stats.retry_wait_p99_seconds, 0.0);

  const serve::StreamResult& r0 = s.handles[0].get();
  EXPECT_TRUE(r0.ok());
  EXPECT_EQ(r0.attempts, 2);
  EXPECT_GT(r0.retry_wait_seconds, 0.04);  // parked across the outage
  EXPECT_GE(r0.start_seconds, 0.05);       // served after recovery
  for (const std::size_t i : {std::size_t(1), std::size_t(2)}) {
    EXPECT_TRUE(s.handles[i].get().ok()) << i;
    EXPECT_EQ(s.handles[i].get().attempts, 1) << i;
  }
  // The shard really spent the lost attempt: 3 batches dispatched, 4
  // placements charged.
  ASSERT_EQ(s.report.stats.per_device.size(), 1u);
  EXPECT_EQ(s.report.stats.per_device[0].batches, 4u);
  EXPECT_EQ(s.report.batches.size(), 3u);
  bool saw_retry_record = false;
  for (const serve::StreamBatchRecord& rec : s.report.batches)
    if (rec.first == 0) {
      EXPECT_EQ(rec.attempts, 2);
      saw_retry_record = true;
    }
  EXPECT_TRUE(saw_retry_record);
}

TEST(FaultOutcome, CrashRedispatchesToTheSurvivingShard) {
  // Two shards, shard 0 retired mid-flight: its live batch re-routes to
  // the survivor through the health-aware routing path and everything
  // after the crash lands on shard 1 only.
  const ModelFn model = small_unet(86);
  std::vector<SparseTensor> stream;
  for (int i = 0; i < 4; ++i)
    stream.push_back(random_tensor(100, 12, 4, 8600 + i));
  serve::DeviceFault crash{0, serve::FaultKind::kCrash};
  crash.at_dispatch = 2;
  serve::ServerConfig cfg =
      base_cfg(stream.size() + 1)
          .with_devices(2)
          .with_route(serve::RoutePolicy::kLeastLoaded)
          .with_fault_plan(serve::FaultPlan{{crash}});
  serve::Server server(cfg);
  const ServedSession s = serve_all(server, model, stream, 1e-7);

  EXPECT_EQ(s.report.stats.completed, 4u);
  EXPECT_EQ(s.report.stats.failed, 0u);
  EXPECT_EQ(s.report.stats.redispatched_batches, 1u);
  const serve::StreamResult& r0 = s.handles[0].get();
  EXPECT_EQ(r0.attempts, 2);
  EXPECT_EQ(r0.device, 1);
  EXPECT_GT(r0.retry_wait_seconds, 0.0);
  for (const serve::StreamResult& r : s.report.requests)
    EXPECT_EQ(r.device, 1) << r.id;
  // Shard 0 still shows the work the crash destroyed.
  EXPECT_EQ(s.report.stats.per_device[0].batches, 1u);
  EXPECT_EQ(s.report.stats.per_device[1].batches, 4u);
}

TEST(FaultRouting, NonHealthAwarePoliciesFallBackAroundDownShards) {
  // Round-robin has no notion of health; the scheduler's fallback must
  // still route every batch around the shard that is DOWN from t = 0.
  const ModelFn model = small_unet(87);
  std::vector<SparseTensor> stream;
  for (int i = 0; i < 4; ++i)
    stream.push_back(random_tensor(100, 12, 4, 8700 + i));
  serve::DeviceFault crash{0, serve::FaultKind::kCrash, 0.0};
  serve::ServerConfig cfg =
      base_cfg(stream.size() + 1)
          .with_devices(2)
          .with_route(serve::RoutePolicy::kRoundRobin)
          .with_fault_plan(serve::FaultPlan{{crash}});
  serve::Server server(cfg);
  const ServedSession s = serve_all(server, model, stream, 1e-5);
  EXPECT_EQ(s.report.stats.completed, 4u);
  EXPECT_EQ(s.report.stats.failed, 0u);
  EXPECT_EQ(s.report.stats.retries, 0u);
  EXPECT_EQ(s.report.stats.faults_injected, 1u);
  for (const serve::StreamResult& r : s.report.requests)
    EXPECT_EQ(r.device, 1) << r.id;
  EXPECT_EQ(s.report.stats.per_device[0].batches, 0u);
}

TEST(FaultDegrade, ClassDeadlinesShedLowAndHoldHigh) {
  // One shard out for half a second: when capacity returns, low-class
  // requests whose start is hopeless shed with a typed error while the
  // unbounded high class is served — including the batch the stall
  // killed.
  const ModelFn model = small_unet(88);
  std::vector<SparseTensor> stream;
  for (int i = 0; i < 4; ++i)
    stream.push_back(random_tensor(100, 12, 4, 8800 + i));
  const std::vector<serve::Priority> classes = {serve::Priority::kHigh, serve::Priority::kLow,
                                         serve::Priority::kHigh, serve::Priority::kLow};
  serve::DeviceFault stall{0, serve::FaultKind::kStall};
  stall.at_dispatch = 1;
  stall.duration_seconds = 0.5;
  serve::FaultToleranceOptions tol;
  tol.degrade_deadline_seconds[static_cast<int>(serve::Priority::kLow)] = 0.01;
  serve::ServerConfig cfg = base_cfg(stream.size() + 1)
                                .with_fault_plan(serve::FaultPlan{{stall}})
                                .with_fault_tolerance(tol);
  serve::Server server(cfg);
  const ServedSession s = serve_all(server, model, stream, 1e-7, &classes);

  EXPECT_EQ(s.report.stats.completed, 2u);
  EXPECT_EQ(s.report.stats.failed, 2u);
  const auto& high =
      s.report.stats.per_class[static_cast<int>(serve::Priority::kHigh)];
  const auto& low =
      s.report.stats.per_class[static_cast<int>(serve::Priority::kLow)];
  EXPECT_EQ(high.completed, 2u);
  EXPECT_EQ(high.failed, 0u);
  EXPECT_EQ(low.completed, 0u);
  EXPECT_EQ(low.failed, 2u);
  EXPECT_TRUE(s.handles[0].get().ok());
  EXPECT_EQ(s.handles[0].get().attempts, 2);  // survived the stall
  EXPECT_TRUE(s.handles[2].get().ok());
  for (const std::size_t i : {std::size_t(1), std::size_t(3)}) {
    EXPECT_EQ(s.handles[i].get().error,
              serve::ServeErrorCode::kDeadlineHopeless)
        << i;
    EXPECT_THROW(s.handles[i].value(), serve::ServeError);
  }
}

// --- Warm replacement -------------------------------------------------

TEST(FaultWarm, ReplacementShardWarmStartsFromSnapshot) {
  // A finite-duration crash brings up a replacement shard. With a warm
  // snapshot installed the replacement re-seeds from the manifest and
  // serves the duplicate-heavy tail without a single cold build; cold
  // (no snapshot) must re-pay map builds after the cache loss.
  const ModelFn model = small_unet(89);
  const auto stream = duplicate_stream(10, 8900);
  auto make_cfg = [&] {
    return base_cfg(stream.size() + 1)
        .with_devices(2)
        .with_map_cache_bytes(std::size_t(64) << 20)
        .with_route(serve::RoutePolicy::kCacheAffinity);
  };

  // First life (fault-free) builds the snapshot covering every scan.
  serve::Server first(make_cfg());
  serve_all(first, model, stream, 0.001);
  std::stringstream image;
  first.map_cache()->save_snapshot(image);
  const auto snapshot =
      std::make_shared<const MapCacheSnapshot>(io::load_map_cache(image));

  serve::DeviceFault crash{0, serve::FaultKind::kCrash};
  crash.at_dispatch = 4;
  crash.duration_seconds = 0.01;  // finite: a replacement arrives
  auto run = [&](bool warm) {
    serve::ServerConfig cfg =
        make_cfg().with_fault_plan(serve::FaultPlan{{crash}});
    if (warm) cfg.with_warm_snapshot(snapshot);
    serve::Server server(cfg);
    return serve_all(server, model, stream, 1e-5).report;
  };
  const serve::StreamReport warm = run(true);
  const serve::StreamReport cold = run(false);
  EXPECT_EQ(warm.stats.completed, stream.size());
  EXPECT_EQ(cold.stats.completed, stream.size());
  EXPECT_EQ(warm.stats.failed, 0u);
  // Snapshot-warm: the replacement re-seeds, so no lookup anywhere in
  // the stream pays a cold build. Cold restart pays them.
  EXPECT_EQ(warm.stats.map_cache.misses, 0u);
  EXPECT_GT(cold.stats.map_cache.misses, 0u);
  EXPECT_EQ(warm.stats.map_cache.hits, warm.stats.map_cache.lookups);
}

}  // namespace
}  // namespace ts
