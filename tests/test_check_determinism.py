#!/usr/bin/env python3
"""Unit tests for scripts/check_determinism.py (the determinism lint).

Run directly (`python3 tests/test_check_determinism.py`) or through the
det-lint CI job. Pure stdlib — exercises the lint core on synthetic
snippets plus the CLI entry point on a temp tree, one test per rule
plus the suppression grammar and its reason-required failure mode.
"""

import importlib.util
import os
import sys
import tempfile
import unittest

_SCRIPT = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "scripts", "check_determinism.py")
_spec = importlib.util.spec_from_file_location("check_determinism", _SCRIPT)
det = importlib.util.module_from_spec(_spec)
sys.modules["check_determinism"] = det
_spec.loader.exec_module(det)


def rules_of(findings):
    return [f.rule for f in findings]


class WallClockRule(unittest.TestCase):
    def test_flags_each_chrono_clock(self):
        for clock in ("steady_clock", "system_clock",
                      "high_resolution_clock"):
            text = f"auto t = std::chrono::{clock}::now();\n"
            self.assertEqual(rules_of(det.lint_text("x.cpp", text)),
                             ["wall-clock"], clock)

    def test_flags_c_clock_reads(self):
        self.assertEqual(rules_of(det.lint_text(
            "x.cpp", "gettimeofday(&tv, nullptr);\n")), ["wall-clock"])
        self.assertEqual(rules_of(det.lint_text(
            "x.cpp", "long t = time(NULL);\n")), ["wall-clock"])
        self.assertEqual(rules_of(det.lint_text(
            "x.cpp", "auto c = clock();\n")), ["wall-clock"])

    def test_clock_type_mention_without_read_is_clean(self):
        # Naming the type (aliases, signatures) is fine; ::now() is not.
        text = "using Clock = std::chrono::steady_clock;\n"
        self.assertEqual(det.lint_text("x.cpp", text), [])

    def test_identifier_containing_time_is_clean(self):
        text = "double s = service_time(3) + total_time();\n"
        self.assertEqual(det.lint_text("x.cpp", text), [])


class RandomRule(unittest.TestCase):
    def test_flags_rand_srand_random_device(self):
        text = ("int a = std::rand();\n"
                "srand(7);\n"
                "std::random_device rd;\n")
        self.assertEqual(rules_of(det.lint_text("x.cpp", text)),
                         ["random", "random", "random"])

    def test_seeded_mt19937_is_clean(self):
        # Deterministically seeded engines are the sanctioned pattern.
        text = "std::mt19937 rng(0x5eed);\n"
        self.assertEqual(det.lint_text("x.cpp", text), [])


class ThreadIdRule(unittest.TestCase):
    def test_flags_thread_identity(self):
        text = ("auto me = std::this_thread::get_id();\n"
                "std::thread::id owner;\n")
        self.assertEqual(rules_of(det.lint_text("x.cpp", text)),
                         ["thread-id", "thread-id"])


class PointerKeyRule(unittest.TestCase):
    def test_flags_pointer_keyed_containers(self):
        text = ("std::map<Node*, int> order;\n"
                "std::set<const Shard*> live;\n"
                "std::hash<Entry*> h;\n")
        self.assertEqual(rules_of(det.lint_text("x.cpp", text)),
                         ["pointer-key", "pointer-key", "pointer-key"])

    def test_value_pointers_are_clean(self):
        # Pointer *values* are fine; only pointer *keys* order output.
        text = "std::map<int, Node*> by_id;\n"
        self.assertEqual(det.lint_text("x.cpp", text), [])


class UnorderedIterRule(unittest.TestCase):
    def test_flags_range_for_and_begin(self):
        text = ("std::unordered_map<int, std::vector<int>> owners_;\n"
                "for (const auto& kv : owners_) {}\n"
                "for (auto it = owners_.begin(); it != owners_.end();) {}\n")
        self.assertEqual(rules_of(det.lint_text("x.cpp", text)),
                         ["unordered-iter", "unordered-iter"])

    def test_resolves_declaration_from_sibling_header(self):
        header = ("std::unordered_map<MapCacheKey, Entry, Hash> entries_\n"
                  "    TS_GUARDED_BY(mu_);\n")
        source = "for (auto& kv : entries_) {}\n"
        self.assertEqual(rules_of(det.lint_text("x.cpp", source, header)),
                         ["unordered-iter"])

    def test_point_lookups_are_clean(self):
        # find/erase/count don't observe iteration order.
        text = ("std::unordered_map<int, int> entries_;\n"
                "auto it = entries_.find(3);\n"
                "entries_.erase(it);\n")
        self.assertEqual(det.lint_text("x.cpp", text), [])

    def test_ordered_map_iteration_is_clean(self):
        text = ("std::map<int, int> by_stamp;\n"
                "for (const auto& kv : by_stamp) {}\n")
        self.assertEqual(det.lint_text("x.cpp", text), [])


class SuppressionGrammar(unittest.TestCase):
    FLAGGED = "auto t0 = std::chrono::steady_clock::now();\n"

    def test_same_line_suppression(self):
        text = ("auto t0 = std::chrono::steady_clock::now();  "
                "// det-lint: allow(wall-clock): observability seam.\n")
        self.assertEqual(det.lint_text("x.cpp", text), [])

    def test_line_above_suppression(self):
        text = ("// det-lint: allow(wall-clock): observability seam.\n" +
                self.FLAGGED)
        self.assertEqual(det.lint_text("x.cpp", text), [])

    def test_suppression_through_comment_block(self):
        # The directive may open a multi-line comment block; continuation
        # comment lines between it and the code don't break coverage.
        text = ("// det-lint: allow(wall-clock): host-side measurement\n"
                "// seam, never feeds a modeled statistic.\n" +
                self.FLAGGED)
        self.assertEqual(det.lint_text("x.cpp", text), [])

    def test_empty_reason_is_an_error(self):
        text = "// det-lint: allow(wall-clock):\n" + self.FLAGGED
        findings = det.lint_text("x.cpp", text)
        self.assertEqual(len(findings), 1)
        self.assertIn("without a reason", findings[0].message)

    def test_wrong_rule_does_not_suppress(self):
        text = "// det-lint: allow(random): not the right rule.\n" + \
               self.FLAGGED
        self.assertEqual(rules_of(det.lint_text("x.cpp", text)),
                         ["wall-clock"])

    def test_suppression_does_not_leak_past_code(self):
        # A directive only covers its contiguous comment block; a second
        # flagged line after intervening code needs its own.
        text = ("// det-lint: allow(wall-clock): first read only.\n" +
                self.FLAGGED +
                "int x = 0;\n" +
                self.FLAGGED)
        findings = det.lint_text("x.cpp", text)
        self.assertEqual([(f.line, f.rule) for f in findings],
                         [(4, "wall-clock")])

    def test_two_rules_one_line_need_two_directives(self):
        text = ("// det-lint: allow(wall-clock): seam.\n"
                "// det-lint: allow(random): seeded elsewhere.\n"
                "f(std::chrono::steady_clock::now(), std::rand());\n")
        self.assertEqual(det.lint_text("x.cpp", text), [])


class DefaultScanCoverage(unittest.TestCase):
    def test_traffic_generators_are_scanned_by_default(self):
        # The trace-driven traffic generators feed arrival timestamps
        # straight into modeled stats, so they must sit inside the
        # lint's default scan set — a regression here would let wall
        # clocks or unseeded randomness into the submission schedule.
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        rel = {os.path.relpath(p, root)
               for p in det.collect_files(root, det.DEFAULT_DIRS)}
        self.assertIn(os.path.join("src", "serve", "traffic.cpp"), rel)
        self.assertIn(os.path.join("src", "serve", "traffic.hpp"), rel)


class CliEntryPoint(unittest.TestCase):
    def test_scan_reports_and_exits_nonzero(self):
        with tempfile.TemporaryDirectory() as root:
            os.makedirs(os.path.join(root, "src"))
            with open(os.path.join(root, "src", "bad.cpp"), "w") as f:
                f.write("auto t = std::chrono::steady_clock::now();\n")
            self.assertEqual(det.main(["--root", root, "src"]), 1)

    def test_clean_tree_exits_zero(self):
        with tempfile.TemporaryDirectory() as root:
            os.makedirs(os.path.join(root, "src"))
            with open(os.path.join(root, "src", "ok.cpp"), "w") as f:
                f.write("int main() { return 0; }\n")
            self.assertEqual(det.main(["--root", root, "src"]), 0)

    def test_missing_directory_is_a_usage_error(self):
        with tempfile.TemporaryDirectory() as root:
            with self.assertRaises(SystemExit) as ctx:
                det.main(["--root", root, "no_such_dir"])
            self.assertEqual(ctx.exception.code, 2)


if __name__ == "__main__":
    unittest.main()
