// GPU cost-model substrate tests: cache simulator, transaction coalescing,
// matmul utilization, device specs.
#include <gtest/gtest.h>

#include "gpusim/cache.hpp"
#include "gpusim/coalesce.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/timeline.hpp"

namespace ts {
namespace {

TEST(CacheSim, ColdMissThenHit) {
  CacheSim c(1 << 16);
  EXPECT_EQ(c.access(0, 4, false), 1u);
  EXPECT_EQ(c.access(0, 4, false), 0u);
  EXPECT_EQ(c.access(64, 4, false), 0u);  // same 128B line
  EXPECT_EQ(c.access(128, 4, false), 1u);  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.read_misses(), 2u);
}

TEST(CacheSim, MultiLineAccessCountsEachLine) {
  CacheSim c(1 << 16);
  EXPECT_EQ(c.access(0, 512, false), 4u);  // 4 lines of 128B
  EXPECT_EQ(c.access(0, 512, false), 0u);
}

TEST(CacheSim, WriteMissDoesNotFetchButWritebackCounts) {
  CacheSim c(1024, /*ways=*/2);  // tiny: 4 sets x 2 ways
  c.access(0, 4, true);          // write miss: no DRAM fill
  EXPECT_EQ(c.dram_bytes(), 0.0);
  // Evict the dirty line by filling its set.
  for (uint64_t i = 1; i <= 8; ++i) c.access(i * 1024, 4, false);
  EXPECT_GT(c.writebacks(), 0u);
  EXPECT_GT(c.dram_bytes(), 0.0);
}

TEST(CacheSim, LruEvictsOldest) {
  CacheSim c(2 * 128, /*ways=*/2, /*line=*/128);  // 1 set, 2 ways
  c.access(0, 1, false);
  c.access(128, 1, false);
  c.access(0, 1, false);      // refresh line 0
  c.access(256, 1, false);    // evicts line 128 (LRU)
  EXPECT_EQ(c.access(0, 1, false), 0u);   // still cached
  EXPECT_EQ(c.access(128, 1, false), 1u); // was evicted
}

TEST(CacheSim, WorkingSetLargerThanCapacityThrashes) {
  // The §4.3.2 argument: a > L2 working set streamed twice has ~0 reuse.
  CacheSim c(64 * 1024);
  const std::size_t n = 4096;  // 512 KB >> 64 KB
  for (int pass = 0; pass < 2; ++pass)
    for (std::size_t i = 0; i < n; ++i) c.access(i * 128, 128, false);
  EXPECT_LT(c.hit_rate(), 0.01);
}

TEST(CacheSim, WorkingSetFittingInCapacityReuses) {
  CacheSim c(1 << 20);
  const std::size_t n = 1024;  // 128 KB << 1 MB
  for (int pass = 0; pass < 4; ++pass)
    for (std::size_t i = 0; i < n; ++i) c.access(i * 128, 128, false);
  EXPECT_GT(c.hit_rate(), 0.74);  // 3 of 4 passes hit
}

TEST(CacheSim, ResetClearsState) {
  CacheSim c(1 << 16);
  c.access(0, 256, true);
  c.reset();
  EXPECT_EQ(c.hits() + c.read_misses() + c.write_misses(), 0u);
  EXPECT_EQ(c.dram_bytes(), 0.0);
}

// --- Transaction coalescing (paper Fig. 8). ---

TEST(Coalesce, Fp32ScalarIsFullyUtilized) {
  EXPECT_EQ(transactions_per_row(32, Precision::kFP32, false), 1u);
  EXPECT_EQ(transactions_per_row(256, Precision::kFP32, false), 8u);
  EXPECT_EQ(transaction_utilization(Precision::kFP32, false), 1.0);
}

TEST(Coalesce, Fp16ScalarSameCountHalfUtilization) {
  // The paper's key observation: scalar FP16 issues the same NUMBER of
  // transactions as FP32 at 50% utilization.
  for (std::size_t c : {32u, 64u, 128u, 256u}) {
    EXPECT_EQ(transactions_per_row(c, Precision::kFP16, false),
              transactions_per_row(c, Precision::kFP32, false))
        << c;
  }
  EXPECT_EQ(transaction_utilization(Precision::kFP16, false), 0.5);
}

TEST(Coalesce, Fp16VectorizedHalvesTransactions) {
  for (std::size_t c : {64u, 128u, 256u}) {
    EXPECT_EQ(transactions_per_row(c, Precision::kFP16, true) * 2,
              transactions_per_row(c, Precision::kFP16, false))
        << c;
  }
  EXPECT_EQ(transaction_utilization(Precision::kFP16, true), 1.0);
}

TEST(Coalesce, Int8VectorizedQuartersTransactions) {
  EXPECT_EQ(transactions_per_row(256, Precision::kINT8, true), 2u);
  EXPECT_EQ(transactions_per_row(256, Precision::kINT8, false), 8u);
  EXPECT_EQ(transaction_utilization(Precision::kINT8, false), 0.25);
}

TEST(Coalesce, PartialRowsRoundUp) {
  EXPECT_EQ(transactions_per_row(1, Precision::kFP32, false), 1u);
  EXPECT_EQ(transactions_per_row(33, Precision::kFP32, false), 2u);
}

// --- Matmul utilization / kernel cost. ---

TEST(CostModel, UtilizationIncreasesWithEveryDimension) {
  const CostModel cm(rtx2080ti());
  const Precision p = Precision::kFP16;
  EXPECT_LT(cm.mm_utilization(1000, 64, 64, p),
            cm.mm_utilization(50000, 64, 64, p));
  EXPECT_LT(cm.mm_utilization(50000, 16, 64, p),
            cm.mm_utilization(50000, 64, 64, p));
  EXPECT_LT(cm.mm_utilization(50000, 64, 16, p),
            cm.mm_utilization(50000, 64, 64, p));
  EXPECT_LE(cm.mm_utilization(1e9, 1e9, 1e9, p), rtx2080ti().max_mm_util);
}

TEST(CostModel, Table2UtilizationAnchors) {
  // Calibration anchors from the paper's Table 2 (2080Ti, FP16):
  // separate per-offset GEMMs run at ~30% utilization, adaptive grouping
  // at ~44% — a ~1.4-1.5x ratio. The absolute fractions here sit slightly
  // above the paper's (to keep narrow-channel layers at credible absolute
  // TFLOP/s); the ratio is the anchor that must hold.
  const CostModel cm(rtx2080ti());
  const double separate = cm.mm_utilization(1e4, 64, 64, Precision::kFP16);
  const double grouped = cm.mm_utilization(1e5, 64, 64, Precision::kFP16);
  EXPECT_NEAR(separate, 0.38, 0.10);
  EXPECT_NEAR(grouped, 0.56, 0.12);
  EXPECT_GT(grouped / separate, 1.3);
  EXPECT_LT(grouped / separate, 1.7);
}

TEST(CostModel, Fp16UtilizationFractionBelowFp32AtSameShape) {
  // A faster unit needs a bigger workload to saturate: at the same GEMM
  // shape the FP16 utilization *fraction* is lower (the achieved TFLOP/s
  // is still never lower).
  const CostModel cm(rtx2080ti());
  const double u32 = cm.mm_utilization(2e4, 64, 64, Precision::kFP32);
  const double u16 = cm.mm_utilization(2e4, 64, 64, Precision::kFP16);
  EXPECT_LT(u16, u32);
  EXPECT_GE(u16 * cm.peak_tflops(Precision::kFP16),
            u32 * cm.peak_tflops(Precision::kFP32) * 0.999);
}

TEST(CostModel, SmallGemmFp16GivesAlmostNoSpeedup) {
  // Why the 1080Ti loses only ~11% of the speedup (§5.2): small irregular
  // GEMMs can't exploit the tensor-core peak.
  const CostModel cm(rtx2080ti());
  const double t32 = cm.mm(2000, 32, 32, Precision::kFP32).seconds;
  const double t16 = cm.mm(2000, 32, 32, Precision::kFP16).seconds;
  EXPECT_LT(t32 / t16, 1.35);
  // Large regular GEMMs do benefit substantially.
  const double b32 = cm.mm(500000, 256, 256, Precision::kFP32).seconds;
  const double b16 = cm.mm(500000, 256, 256, Precision::kFP16).seconds;
  EXPECT_GT(b32 / b16, 1.5);
}

TEST(CostModel, SmallGemmsAreLaunchBound) {
  const CostModel cm(rtx2080ti());
  const KernelCost kc = cm.mm(16, 16, 16, Precision::kFP16);
  EXPECT_GT(kc.seconds, cm.launch_seconds() * 0.99);
  EXPECT_LT(kc.seconds, cm.launch_seconds() * 1.5);
}

TEST(CostModel, BmmOneBatchEqualsMm) {
  const CostModel cm(rtx3090());
  const KernelCost a = cm.mm(5000, 64, 64, Precision::kFP16);
  const KernelCost b = cm.bmm(1, 5000, 64, 64, Precision::kFP16);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_DOUBLE_EQ(a.flops, b.flops);
}

TEST(CostModel, BatchingSmallGemmsBeatsSeparate) {
  // The heart of Fig. 7: 8 equal small GEMMs run faster as one bmm.
  const CostModel cm(rtx2080ti());
  const double separate =
      8 * cm.mm(2000, 64, 64, Precision::kFP16).seconds;
  const double batched = cm.bmm(8, 2000, 64, 64, Precision::kFP16).seconds;
  EXPECT_LT(batched, separate);
}

TEST(CostModel, PaddingWasteCanMakeBmmLose) {
  // One huge problem + 7 tiny ones padded to it: bmm wastes ~7x FLOPs.
  const CostModel cm(rtx2080ti());
  double separate = cm.mm(400000, 128, 128, Precision::kFP16).seconds;
  for (int i = 0; i < 7; ++i)
    separate += cm.mm(2000, 128, 128, Precision::kFP16).seconds;
  const double batched =
      cm.bmm(8, 400000, 128, 128, Precision::kFP16).seconds;
  EXPECT_GT(batched, separate);
}

TEST(CostModel, Fp16PeaksOnlyOnTensorCoreDevices) {
  EXPECT_GT(CostModel(rtx2080ti()).peak_tflops(Precision::kFP16),
            CostModel(rtx2080ti()).peak_tflops(Precision::kFP32));
  EXPECT_EQ(CostModel(gtx1080ti()).peak_tflops(Precision::kFP16),
            CostModel(gtx1080ti()).peak_tflops(Precision::kFP32));
}

TEST(CostModel, FlopsAccountPadding) {
  const CostModel cm(rtx3090());
  const KernelCost kc = cm.bmm(4, 1000, 32, 32, Precision::kFP32);
  EXPECT_DOUBLE_EQ(kc.flops, 2.0 * 4 * 1000 * 32 * 32);
}

TEST(CostModel, ZeroSizedKernelsAreFree) {
  const CostModel cm(rtx3090());
  EXPECT_EQ(cm.mm(0, 64, 64, Precision::kFP32).seconds, 0.0);
  EXPECT_EQ(cm.bmm(0, 10, 64, 64, Precision::kFP32).seconds, 0.0);
}

TEST(DeviceSpecs, PaperOrderingsHold) {
  // Bandwidth and compute both increase 1080Ti -> 2080Ti -> 3090.
  const auto d1 = gtx1080ti(), d2 = rtx2080ti(), d3 = rtx3090();
  EXPECT_LT(d1.dram_bandwidth_gbps, d2.dram_bandwidth_gbps);
  EXPECT_LT(d2.dram_bandwidth_gbps, d3.dram_bandwidth_gbps);
  EXPECT_LT(d1.peak_fp32_tflops, d2.peak_fp32_tflops);
  EXPECT_FALSE(d1.has_fp16_tensor_cores);
  EXPECT_TRUE(d2.has_fp16_tensor_cores);
  // 2080Ti L2 is 5.5MB (the paper quotes this).
  EXPECT_DOUBLE_EQ(d2.l2_bytes, 5.5 * 1024 * 1024);
}

TEST(Timeline, AccumulatesAndAggregates) {
  Timeline t;
  t.add(Stage::kGather, 0.001);
  t.add(Stage::kScatter, 0.002);
  t.add(Stage::kMatMul, 0.004);
  t.add_flops(8e9);
  EXPECT_DOUBLE_EQ(t.data_movement_seconds(), 0.003);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.007);
  EXPECT_NEAR(t.matmul_tflops(), 2.0, 1e-9);
  Timeline u;
  u.add(Stage::kGather, 0.001);
  t += u;
  EXPECT_DOUBLE_EQ(t.stage_seconds(Stage::kGather), 0.002);
  EXPECT_NEAR(t.fps(), 1.0 / 0.008, 1e-9);
}

}  // namespace
}  // namespace ts
