// Engine behavioral tests: fetch-on-demand switching, FP16 pipeline
// accuracy at network scale, and timeline bookkeeping invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <unordered_set>

#include "core/conv3d.hpp"
#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "gpusim/device.hpp"
#include "nn/minkunet.hpp"

namespace ts {
namespace {

SparseTensor random_tensor(int n, int extent, std::size_t channels,
                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  Matrix feats(coords.size(), channels);
  for (std::size_t i = 0; i < feats.size(); ++i) feats.data()[i] = f(rng);
  return SparseTensor(std::move(coords), std::move(feats));
}

TEST(EngineBehavior, FetchOnDemandSkipsExplicitMovement) {
  // A tiny workload under the MinkowskiEngine preset falls below the
  // fetch-on-demand threshold: the layer runs as one implicit-GEMM
  // kernel with zero gather/scatter time.
  const SparseTensor x = random_tensor(40, 12, 8, 1);
  std::mt19937_64 rng(2);
  Conv3dParams p;
  p.geom = ConvGeometry{3, 1, false};
  p.weights = spnn::make_conv_weights(3, 8, 8, rng);

  ExecContext me(rtx2080ti(), minkowski_config());
  me.compute_numerics = false;
  sparse_conv3d(x, p, me);
  EXPECT_EQ(me.timeline.data_movement_seconds(), 0.0);
  EXPECT_GT(me.timeline.stage_seconds(Stage::kMatMul), 0.0);

  ExecContext base(rtx2080ti(), baseline_config());
  base.compute_numerics = false;
  SparseTensor fresh(x.coords(), x.feats());
  sparse_conv3d(fresh, p, base);
  EXPECT_GT(base.timeline.data_movement_seconds(), 0.0);
}

TEST(EngineBehavior, FetchOnDemandNotUsedAboveThreshold) {
  const SparseTensor x = random_tensor(4000, 18, 8, 3);  // dense block
  std::mt19937_64 rng(4);
  Conv3dParams p;
  p.geom = ConvGeometry{3, 1, false};
  p.weights = spnn::make_conv_weights(3, 8, 8, rng);
  ExecContext me(rtx2080ti(), minkowski_config());
  me.compute_numerics = false;
  sparse_conv3d(x, p, me);
  // Mean map size exceeds the threshold: explicit movement happens.
  EXPECT_GT(me.timeline.data_movement_seconds(), 0.0);
}

TEST(EngineBehavior, FetchOnDemandNumericsMatchGatherScatter) {
  const SparseTensor x = random_tensor(200, 10, 8, 5);
  std::mt19937_64 rng(6);
  Conv3dParams p;
  p.geom = ConvGeometry{3, 1, false};
  p.weights = spnn::make_conv_weights(3, 8, 8, rng);

  EngineConfig gs = torchsparse_config();
  gs.precision = Precision::kFP32;
  EngineConfig fod = gs;
  fod.dataflow = Dataflow::kFetchOnDemand;

  ExecContext c1(rtx2080ti(), gs), c2(rtx2080ti(), fod);
  c1.compute_numerics = c2.compute_numerics = true;
  const SparseTensor a = sparse_conv3d(x, p, c1);
  SparseTensor fresh(x.coords(), x.feats());
  const SparseTensor b = sparse_conv3d(fresh, p, c2);
  EXPECT_LT(max_abs_diff(a.feats(), b.feats()), 1e-4f);
}

TEST(EngineBehavior, Fp16NetworkStaysCloseToFp32) {
  // Network-scale precision check: a small MinkUNet in FP16 storage must
  // track the FP32 result within accumulated-rounding bounds.
  LidarSpec spec = nuscenes_spec(1);
  spec.azimuth_steps = 70;
  const SparseTensor x = make_input(spec, segmentation_voxels(), 7);
  spnn::MinkUNet net(0.25, 4, 8, 8);

  EngineConfig fp32 = torchsparse_config();
  fp32.precision = Precision::kFP32;
  ExecContext c32(rtx2080ti(), fp32);
  c32.compute_numerics = true;
  const SparseTensor y32 = net.forward(fresh_input(x), c32);

  ExecContext c16(rtx2080ti(), torchsparse_config());
  c16.compute_numerics = true;
  const SparseTensor y16 = net.forward(fresh_input(x), c16);

  ASSERT_EQ(y32.num_points(), y16.num_points());
  // Relative tolerance against the output scale.
  float scale = 0;
  for (std::size_t i = 0; i < y32.feats().size(); ++i)
    scale = std::max(scale, std::fabs(y32.feats().data()[i]));
  EXPECT_LT(max_abs_diff(y32.feats(), y16.feats()), 0.05f * scale + 0.05f);
}

TEST(EngineBehavior, TimelineCountsKernelsAndBytes) {
  const SparseTensor x = random_tensor(500, 12, 8, 9);
  std::mt19937_64 rng(10);
  Conv3dParams p;
  p.geom = ConvGeometry{3, 1, false};
  p.weights = spnn::make_conv_weights(3, 8, 8, rng);
  ExecContext ctx(rtx3090(), torchsparse_config());
  ctx.compute_numerics = false;
  sparse_conv3d(x, p, ctx);
  EXPECT_GT(ctx.timeline.kernel_launches(), 3u);   // map, gather, mm, scatter
  EXPECT_GT(ctx.timeline.dram_bytes(), 1000.0);
  EXPECT_GT(ctx.timeline.flops(), 1000.0);
}

TEST(EngineBehavior, TunedParamsOnlyAffectAdaptiveEngines) {
  const SparseTensor x = random_tensor(2000, 16, 8, 11);
  std::mt19937_64 rng(12);
  Conv3dParams p;
  p.geom = ConvGeometry{3, 1, false};
  p.weights = spnn::make_conv_weights(3, 8, 8, rng);

  // Baseline (separate grouping) ignores tuned parameters entirely.
  EngineConfig cfg = baseline_config();
  ExecContext a(rtx2080ti(), cfg), b(rtx2080ti(), cfg);
  a.compute_numerics = b.compute_numerics = false;
  b.tuned[0] = GroupParams{1.0, 1e18};
  b.layer_id = 0;
  SparseTensor f1(x.coords(), x.feats()), f2(x.coords(), x.feats());
  sparse_conv3d(f1, p, a);
  sparse_conv3d(f2, p, b);
  EXPECT_DOUBLE_EQ(a.timeline.stage_seconds(Stage::kMatMul),
                   b.timeline.stage_seconds(Stage::kMatMul));
}

TEST(EngineBehavior, CacheSimTogglePreservesOrdering) {
  // The analytic fallback must preserve the engine ranking even if the
  // absolute numbers shift.
  LidarSpec spec = semantic_kitti_spec();
  spec.azimuth_steps = 150;
  const SparseTensor x = make_input(spec, segmentation_voxels(), 13);
  spnn::MinkUNet net(0.25, 4, 8, 14);
  auto total = [&](const EngineConfig& cfg, bool sim) {
    ExecContext ctx(rtx2080ti(), cfg);
    ctx.compute_numerics = false;
    ctx.simulate_cache = sim;
    net.forward(fresh_input(x), ctx);
    return ctx.timeline.total_seconds();
  };
  for (bool sim : {true, false}) {
    EXPECT_LT(total(torchsparse_config(), sim),
              total(baseline_config(), sim))
        << "sim=" << sim;
  }
}

}  // namespace
}  // namespace ts
