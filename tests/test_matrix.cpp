// Dense matrix substrate tests: blocked GEMM vs naive reference, batched
// GEMM, padding, quantization.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>

#include "tensor/matrix.hpp"

namespace ts {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = dist(rng);
  return m;
}

Matrix naive_mm(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0;
      for (std::size_t k = 0; k < a.cols(); ++k)
        acc += a.at(i, k) * b.at(k, j);
      out.at(i, j) = acc;
    }
  return out;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.at(2, 3), 2.5f);
  m.at(1, 2) = -1.0f;
  EXPECT_EQ(m.row(1)[2], -1.0f);
}

TEST(Matrix, EmptyMatmul) {
  Matrix a(0, 8), b(8, 4), out;
  mm(a, b, out);
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), 4u);
}

class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapes, BlockedMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(m, k, 10 + m);
  const Matrix b = random_matrix(k, n, 20 + n);
  Matrix out;
  mm(a, b, out);
  const Matrix ref = naive_mm(a, b);
  EXPECT_LT(max_abs_diff(out, ref), 1e-4f) << m << "x" << k << "x" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatmulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(7, 3, 5),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 63, 1),
                      std::make_tuple(100, 17, 129),
                      std::make_tuple(1, 128, 256),
                      std::make_tuple(200, 65, 33)));

TEST(Matrix, AccumulateAddsToExisting) {
  const Matrix a = random_matrix(9, 5, 1);
  const Matrix b = random_matrix(5, 7, 2);
  Matrix out(9, 7, 1.0f);
  mm_accumulate(a, b, out);
  Matrix ref = naive_mm(a, b);
  for (std::size_t i = 0; i < ref.size(); ++i) ref.data()[i] += 1.0f;
  EXPECT_LT(max_abs_diff(out, ref), 1e-4f);
}

TEST(Matrix, BmmMatchesPerProblemMm) {
  std::vector<Matrix> as, bs, outs;
  for (int i = 0; i < 4; ++i) {
    as.push_back(random_matrix(12, 8, 30 + i));
    bs.push_back(random_matrix(8, 6, 40 + i));
  }
  bmm(as, bs, outs);
  ASSERT_EQ(outs.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    Matrix ref;
    mm(as[i], bs[i], ref);
    EXPECT_EQ(max_abs_diff(outs[i], ref), 0.0f);
  }
}

TEST(Matrix, PadRowsAppendsZeros) {
  const Matrix a = random_matrix(3, 4, 5);
  const Matrix p = pad_rows(a, 6);
  EXPECT_EQ(p.rows(), 6u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(p.at(i, j), a.at(i, j));
  for (std::size_t i = 3; i < 6; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(p.at(i, j), 0.0f);
}

TEST(Matrix, PaddedBmmEqualsUnpaddedResults) {
  // Property behind Fig. 6: padding adds zero rows, which contribute
  // nothing — grouped results must equal separate results exactly.
  const Matrix a1 = random_matrix(5, 8, 1), a2 = random_matrix(9, 8, 2);
  const Matrix w = random_matrix(8, 3, 3);
  std::vector<Matrix> outs;
  bmm({pad_rows(a1, 9), a2}, {w, w}, outs);
  Matrix r1;
  mm(a1, w, r1);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_EQ(outs[0].at(i, j), r1.at(i, j));
  for (std::size_t i = 5; i < 9; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(outs[0].at(i, j), 0.0f);
}

TEST(Matrix, TransposeInvolution) {
  const Matrix a = random_matrix(11, 7, 9);
  EXPECT_EQ(transpose(transpose(a)), a);
  EXPECT_EQ(transpose(a).at(3, 5), a.at(5, 3));
}

TEST(Matrix, QuantizeFp32IsIdentity) {
  Matrix a = random_matrix(8, 8, 11);
  const Matrix before = a;
  a.quantize(Precision::kFP32);
  EXPECT_EQ(a, before);
}

TEST(Matrix, QuantizeFp16RoundsEveryElement) {
  Matrix a = random_matrix(16, 16, 12);
  Matrix b = a;
  b.quantize(Precision::kFP16);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(b.data()[i], fp16_round(a.data()[i]));
}

TEST(Matrix, QuantizeInt8ErrorBounded) {
  Matrix a = random_matrix(32, 32, 13);
  const float amax = a.abs_max();
  Matrix b = a;
  b.quantize(Precision::kINT8);
  // Symmetric 8-bit: error <= scale/2 = amax/254.
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_LE(std::fabs(b.data()[i] - a.data()[i]), amax / 127.0f * 0.5f + 1e-6f);
}

TEST(Matrix, QuantizeInt8IdempotentOnZero) {
  Matrix a(4, 4);
  a.quantize(Precision::kINT8);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], 0.0f);
}

TEST(Matrix, MaxAbsDiffShapeMismatchIsInfinite) {
  EXPECT_TRUE(std::isinf(max_abs_diff(Matrix(2, 2), Matrix(2, 3))));
}

}  // namespace
}  // namespace ts
