// spnn layer and model tests: BatchNorm/ReLU numerics, residual blocks,
// U-Net wiring, CenterPoint pipeline, dense 2-D substrate.
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "gpusim/device.hpp"
#include "nn/centerpoint.hpp"
#include "nn/dense2d.hpp"
#include "nn/minkunet.hpp"

namespace ts {
namespace {

SparseTensor random_tensor(int n, int extent, std::size_t channels,
                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  Matrix feats(coords.size(), channels);
  for (std::size_t i = 0; i < feats.size(); ++i) feats.data()[i] = f(rng);
  return SparseTensor(std::move(coords), std::move(feats));
}

ExecContext fp32_ctx() {
  EngineConfig cfg = torchsparse_config();
  cfg.precision = Precision::kFP32;
  ExecContext ctx(rtx2080ti(), cfg);
  ctx.compute_numerics = true;
  return ctx;
}

TEST(Layers, ReluClampsNegatives) {
  SparseTensor x = random_tensor(50, 8, 4, 1);
  ExecContext ctx = fp32_ctx();
  spnn::ReLU relu;
  const SparseTensor y = relu.forward(x, ctx);
  for (std::size_t i = 0; i < y.feats().size(); ++i) {
    EXPECT_GE(y.feats().data()[i], 0.0f);
    EXPECT_EQ(y.feats().data()[i], std::max(0.0f, x.feats().data()[i]));
  }
}

TEST(Layers, BatchNormAffine) {
  SparseTensor x = random_tensor(40, 8, 6, 2);
  std::mt19937_64 rng(3);
  spnn::BatchNorm bn(6, rng);
  ExecContext ctx = fp32_ctx();
  const SparseTensor y = bn.forward(x, ctx);
  // Affine per channel: equal inputs map to equal outputs; order-preserving
  // per channel (positive scale).
  for (std::size_t c = 0; c < 6; ++c) {
    for (std::size_t r = 1; r < x.num_points(); ++r) {
      const bool lt_in = x.feats().at(r - 1, c) < x.feats().at(r, c);
      const bool lt_out = y.feats().at(r - 1, c) < y.feats().at(r, c);
      if (x.feats().at(r - 1, c) != x.feats().at(r, c)) {
        EXPECT_EQ(lt_in, lt_out);
      }
    }
  }
}

TEST(Layers, AddAndConcatFeatures) {
  SparseTensor a = random_tensor(30, 6, 4, 4);
  SparseTensor b(a.coords_ptr(), a.feats(), a.stride(), a.cache());
  ExecContext ctx = fp32_ctx();
  const SparseTensor sum = spnn::add_features(a, b, ctx);
  for (std::size_t i = 0; i < sum.feats().size(); ++i)
    EXPECT_FLOAT_EQ(sum.feats().data()[i], 2.0f * a.feats().data()[i]);

  const SparseTensor cat = spnn::concat_features(a, b, ctx);
  EXPECT_EQ(cat.channels(), 8u);
  EXPECT_EQ(cat.feats().at(5, 2), a.feats().at(5, 2));
  EXPECT_EQ(cat.feats().at(5, 6), a.feats().at(5, 2));
}

TEST(Layers, ResidualBlockPreservesCoordsAndChannels) {
  SparseTensor x = random_tensor(80, 8, 8, 5);
  std::mt19937_64 rng(6);
  spnn::ResidualBlock block(8, 16, 3, rng);
  ExecContext ctx = fp32_ctx();
  const SparseTensor y = block.forward(x, ctx);
  EXPECT_EQ(y.coords(), x.coords());
  EXPECT_EQ(y.channels(), 16u);
  // ReLU at the end: nonnegative.
  for (std::size_t i = 0; i < y.feats().size(); ++i)
    EXPECT_GE(y.feats().data()[i], 0.0f);
}

TEST(Layers, ConvCollectionFindsAllConvs) {
  std::mt19937_64 rng(7);
  spnn::ResidualBlock with_shortcut(8, 16, 3, rng);
  spnn::ResidualBlock identity(16, 16, 3, rng);
  std::vector<spnn::Conv3d*> convs;
  with_shortcut.collect_convs(convs);
  EXPECT_EQ(convs.size(), 3u);  // conv1, conv2, 1x1 shortcut
  convs.clear();
  identity.collect_convs(convs);
  EXPECT_EQ(convs.size(), 2u);  // identity shortcut has no conv
}

TEST(Layers, LayerIdsAreUnique) {
  std::mt19937_64 rng(8);
  spnn::Conv3d a(4, 4, 3, 1, false, rng), b(4, 4, 3, 1, false, rng);
  EXPECT_NE(a.layer_id(), b.layer_id());
}

TEST(MinkUNet, ForwardPreservesInputCoordinates) {
  LidarSpec spec = semantic_kitti_spec();
  spec.azimuth_steps = 80;
  const SparseTensor x = make_input(spec, segmentation_voxels(), 9);
  spnn::MinkUNet net(0.25, 4, 19, 10);
  ExecContext ctx = fp32_ctx();
  const SparseTensor y = net.forward(x, ctx);
  EXPECT_EQ(y.coords(), x.coords());  // U-Net returns to stride 1
  EXPECT_EQ(y.channels(), 19u);
  EXPECT_EQ(y.stride(), 1);
  // 4 encoder levels built coordinate sets for strides 2..16.
  for (int s : {1, 2, 4, 8, 16})
    EXPECT_TRUE(x.cache()->coords_at_stride.count(s)) << s;
}

TEST(MinkUNet, WidthScalesConvCount) {
  spnn::MinkUNet half(0.5, 4, 19, 11);
  spnn::MinkUNet full(1.0, 4, 19, 12);
  EXPECT_EQ(half.convs().size(), full.convs().size());
  EXPECT_GT(full.convs().size(), 30u);  // stem + 4 down + 4 up + head
}

TEST(MinkUNet, TimelineCoversAllSparseStages) {
  LidarSpec spec = nuscenes_spec(1);
  spec.azimuth_steps = 80;
  const SparseTensor x = make_input(spec, segmentation_voxels(), 13);
  spnn::MinkUNet net(0.25, 4, 16, 14);
  ExecContext ctx(rtx3090(), torchsparse_config());
  ctx.compute_numerics = false;
  net.forward(x, ctx);
  EXPECT_GT(ctx.timeline.stage_seconds(Stage::kMapping), 0.0);
  EXPECT_GT(ctx.timeline.stage_seconds(Stage::kGather), 0.0);
  EXPECT_GT(ctx.timeline.stage_seconds(Stage::kScatter), 0.0);
  EXPECT_GT(ctx.timeline.stage_seconds(Stage::kMatMul), 0.0);
  EXPECT_GT(ctx.timeline.stage_seconds(Stage::kMisc), 0.0);
  EXPECT_EQ(ctx.timeline.stage_seconds(Stage::kDense2D), 0.0);
  EXPECT_EQ(ctx.timeline.stage_seconds(Stage::kNMS), 0.0);
}

TEST(Dense2d, SparseToBevSumsOverZ) {
  std::vector<Coord> coords = {{0, 1, 2, 0}, {0, 1, 2, 5}, {0, 3, 0, 1}};
  Matrix feats(3, 2);
  feats.at(0, 0) = 1.0f;
  feats.at(1, 0) = 2.0f;
  feats.at(2, 1) = 7.0f;
  SparseTensor x(coords, feats);
  ExecContext ctx = fp32_ctx();
  const spnn::DenseBEV bev = spnn::sparse_to_bev(x, ctx);
  EXPECT_EQ(bev.w, 4);
  EXPECT_EQ(bev.h, 3);
  EXPECT_EQ(bev.data.at(0, 2 * 4 + 1), 3.0f);  // z-collapsed sum
  EXPECT_EQ(bev.data.at(1, 0 * 4 + 3), 7.0f);
}

TEST(Dense2d, Conv2dChargesDense2DStage) {
  std::mt19937_64 rng(15);
  spnn::Conv2d conv(4, 8, rng);
  spnn::DenseBEV bev;
  bev.h = bev.w = 16;
  bev.data.resize(4, 256);
  for (std::size_t i = 0; i < bev.data.size(); ++i)
    bev.data.data()[i] = 0.1f * static_cast<float>(i % 7);
  ExecContext ctx = fp32_ctx();
  const spnn::DenseBEV out = conv.forward(bev, ctx);
  EXPECT_EQ(out.channels(), 8);
  EXPECT_GT(ctx.timeline.stage_seconds(Stage::kDense2D), 0.0);
}

TEST(Dense2d, IoUProperties) {
  spnn::Detection a{10, 10, 2, 2, 1.0f};
  EXPECT_FLOAT_EQ(spnn::bev_iou(a, a), 1.0f);
  spnn::Detection far{100, 100, 2, 2, 1.0f};
  EXPECT_FLOAT_EQ(spnn::bev_iou(a, far), 0.0f);
  spnn::Detection half{12, 10, 2, 2, 1.0f};  // 50% x-overlap
  EXPECT_NEAR(spnn::bev_iou(a, half), 1.0f / 3.0f, 1e-5f);
}

TEST(CenterPoint, RunsEndToEndAndDetects) {
  LidarSpec spec = waymo_spec(1);
  spec.azimuth_steps = 120;
  VoxelSpec vox = detection_voxels();
  vox.feature_channels = 5;
  const SparseTensor x = make_input(spec, vox, 16);
  spnn::CenterPoint net(5, 17);
  ExecContext ctx = fp32_ctx();
  const spnn::CenterPointOutput out = net.run(x, ctx);
  EXPECT_EQ(out.backbone_out.stride(), 8);
  EXPECT_GT(out.backbone_out.num_points(), 0u);
  // Detection stages charged.
  EXPECT_GT(ctx.timeline.stage_seconds(Stage::kDense2D), 0.0);
  EXPECT_GT(ctx.timeline.stage_seconds(Stage::kNMS), 0.0);
  // NMS postcondition: no two kept boxes overlap above threshold.
  for (std::size_t i = 0; i < out.detections.size(); ++i)
    for (std::size_t j = i + 1; j < out.detections.size(); ++j)
      EXPECT_LE(spnn::bev_iou(out.detections[i], out.detections[j]), 0.5f);
}

TEST(CenterPoint, DetectionsSortedByScore) {
  LidarSpec spec = waymo_spec(1);
  spec.azimuth_steps = 100;
  VoxelSpec vox = detection_voxels();
  vox.feature_channels = 5;
  const SparseTensor x = make_input(spec, vox, 18);
  spnn::CenterPoint net(5, 19);
  ExecContext ctx = fp32_ctx();
  const auto out = net.run(x, ctx);
  for (std::size_t i = 1; i < out.detections.size(); ++i)
    EXPECT_GE(out.detections[i - 1].score, out.detections[i].score);
}

}  // namespace
}  // namespace ts
