// Batched (multi-scan) inference: the batch coordinate must keep scans
// fully independent through every stage — convolving a merged batch must
// equal convolving each scan separately.
#include <gtest/gtest.h>

#include <random>
#include <unordered_map>
#include <unordered_set>

#include "core/conv3d.hpp"
#include "data/voxelize.hpp"
#include "engines/presets.hpp"
#include "gpusim/device.hpp"
#include "nn/layers.hpp"

namespace ts {
namespace {

SparseTensor random_tensor(int n, int extent, std::size_t channels,
                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  Matrix feats(coords.size(), channels);
  for (std::size_t i = 0; i < feats.size(); ++i) feats.data()[i] = f(rng);
  return SparseTensor(std::move(coords), std::move(feats));
}

ExecContext fp32_ctx() {
  EngineConfig cfg = torchsparse_config();
  cfg.precision = Precision::kFP32;
  ExecContext ctx(rtx2080ti(), cfg);
  ctx.compute_numerics = true;
  return ctx;
}

TEST(Batch, MergeRelabelsBatchIndices) {
  const SparseTensor a = random_tensor(30, 8, 4, 1);
  const SparseTensor b = random_tensor(40, 8, 4, 2);
  const SparseTensor merged = merge_batches({a, b});
  EXPECT_EQ(merged.num_points(), 70u);
  int maxb = 0;
  for (const Coord& c : merged.coords()) maxb = std::max(maxb, c.b);
  EXPECT_EQ(maxb, 1);
}

class BatchIndependence : public ::testing::TestWithParam<int> {};

TEST_P(BatchIndependence, SubmanifoldConvMatchesPerScanResults) {
  const int seed = GetParam();
  const SparseTensor a = random_tensor(80, 8, 4, 10u + seed);
  const SparseTensor b = random_tensor(60, 8, 4, 20u + seed);
  std::mt19937_64 rng(30u + seed);
  Conv3dParams p;
  p.geom = ConvGeometry{3, 1, false};
  p.weights = spnn::make_conv_weights(3, 4, 6, rng);

  ExecContext c1 = fp32_ctx(), c2 = fp32_ctx(), c3 = fp32_ctx();
  const SparseTensor out_a =
      sparse_conv3d(SparseTensor(a.coords(), a.feats()), p, c1);
  const SparseTensor out_b =
      sparse_conv3d(SparseTensor(b.coords(), b.feats()), p, c2);
  const SparseTensor merged = merge_batches({a, b});
  const SparseTensor out_m = sparse_conv3d(merged, p, c3);

  // Index merged outputs by (batch, coord).
  std::unordered_map<uint64_t, std::size_t> index;
  for (std::size_t k = 0; k < out_m.num_points(); ++k)
    index[pack_coord(out_m.coords()[k])] = k;

  auto check = [&](const SparseTensor& single, int batch) {
    for (std::size_t k = 0; k < single.num_points(); ++k) {
      Coord c = single.coords()[k];
      c.b = batch;
      const auto it = index.find(pack_coord(c));
      ASSERT_NE(it, index.end());
      for (std::size_t ch = 0; ch < single.channels(); ++ch)
        EXPECT_NEAR(single.feats().at(k, ch),
                    out_m.feats().at(it->second, ch), 1e-4f);
    }
  };
  check(out_a, 0);
  check(out_b, 1);
}

TEST_P(BatchIndependence, StridedConvKeepsBatchesDisjoint) {
  const int seed = GetParam();
  const SparseTensor a = random_tensor(60, 10, 4, 40u + seed);
  const SparseTensor b = random_tensor(50, 10, 4, 50u + seed);
  std::mt19937_64 rng(60u + seed);
  Conv3dParams p;
  p.geom = ConvGeometry{2, 2, false};
  p.weights = spnn::make_conv_weights(2, 4, 4, rng);

  ExecContext c1 = fp32_ctx(), c2 = fp32_ctx(), c3 = fp32_ctx();
  const SparseTensor out_a =
      sparse_conv3d(SparseTensor(a.coords(), a.feats()), p, c1);
  const SparseTensor out_b =
      sparse_conv3d(SparseTensor(b.coords(), b.feats()), p, c2);
  const SparseTensor out_m =
      sparse_conv3d(merge_batches({a, b}), p, c3);
  EXPECT_EQ(out_m.num_points(), out_a.num_points() + out_b.num_points());

  std::unordered_map<uint64_t, std::size_t> index;
  for (std::size_t k = 0; k < out_m.num_points(); ++k)
    index[pack_coord(out_m.coords()[k])] = k;
  for (std::size_t k = 0; k < out_a.num_points(); ++k) {
    Coord c = out_a.coords()[k];
    c.b = 0;
    ASSERT_TRUE(index.count(pack_coord(c)));
  }
  for (std::size_t k = 0; k < out_b.num_points(); ++k) {
    Coord c = out_b.coords()[k];
    c.b = 1;
    const auto it = index.find(pack_coord(c));
    ASSERT_NE(it, index.end());
    for (std::size_t ch = 0; ch < 4u; ++ch)
      EXPECT_NEAR(out_b.feats().at(k, ch),
                  out_m.feats().at(it->second, ch), 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchIndependence, ::testing::Range(0, 4));

TEST(Batch, PointsAtSameSpatialCoordInDifferentBatchesStayDistinct) {
  // Two scans with identical spatial coordinates must not interact.
  std::vector<Coord> coords = {{0, 5, 5, 5}, {0, 5, 5, 6}};
  Matrix f1(2, 4, 1.0f), f2(2, 4, 100.0f);
  const SparseTensor merged =
      merge_batches({SparseTensor(coords, f1), SparseTensor(coords, f2)});
  std::mt19937_64 rng(3);
  Conv3dParams p;
  p.geom = ConvGeometry{3, 1, false};
  p.weights = spnn::make_conv_weights(3, 4, 4, rng);
  ExecContext ctx = fp32_ctx();
  const SparseTensor out = sparse_conv3d(merged, p, ctx);
  // Batch-0 outputs must be ~100x smaller than batch-1 outputs.
  float max0 = 0, max1 = 0;
  for (std::size_t k = 0; k < out.num_points(); ++k) {
    float m = 0;
    for (std::size_t c = 0; c < 4; ++c)
      m = std::max(m, std::fabs(out.feats().at(k, c)));
    (out.coords()[k].b == 0 ? max0 : max1) = std::max(
        out.coords()[k].b == 0 ? max0 : max1, m);
  }
  EXPECT_LT(max0 * 10, max1);
}

}  // namespace
}  // namespace ts
