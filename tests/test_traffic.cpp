// Trace-driven traffic generation: seeded determinism, arrival-process
// shape sanity (interarrival means, burst windows, diurnal ramp),
// SequenceTrace order/content invariants, and TrafficMix composition.
// Everything asserted here is a pure function of (spec, count, seed) —
// the property the serving benches lean on when they replay a trace
// and expect bit-identical modeled stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/sparse_tensor.hpp"
#include "data/lidar.hpp"
#include "data/voxelize.hpp"
#include "serve/traffic.hpp"

namespace ts::serve {
namespace {

double mean_interarrival(const std::vector<double>& t) {
  EXPECT_GE(t.size(), 2u);
  return t.back() / static_cast<double>(t.size());
}

/// Small scene so each trace_frame call stays cheap.
SequenceTraceSpec small_trace(bool shuffled) {
  SequenceTraceSpec spec;
  spec.lidar = semantic_kitti_spec();
  spec.lidar.azimuth_steps = 50;
  spec.lidar.beams = 16;
  spec.voxels = detection_voxels();
  spec.sequences = 2;
  spec.frames_per_sequence = 3;
  spec.revisits = 2;
  spec.shuffled = shuffled;
  return spec;
}

TEST(Traffic, PoissonSeededDeterminism) {
  TrafficSpec spec;
  spec.rate_hz = 25.0;
  const auto a = generate_arrivals(spec, 500, 7);
  const auto b = generate_arrivals(spec, 500, 7);
  EXPECT_EQ(a, b);  // bit-identical, not just close
  const auto c = generate_arrivals(spec, 500, 8);
  EXPECT_NE(a, c);
  for (std::size_t i = 0; i + 1 < a.size(); ++i) EXPECT_LT(a[i], a[i + 1]);
  EXPECT_GT(a.front(), 0.0);
}

TEST(Traffic, PoissonInterarrivalMean) {
  TrafficSpec spec;
  spec.rate_hz = 50.0;
  const auto t = generate_arrivals(spec, 20000, 11);
  ASSERT_EQ(t.size(), 20000u);
  // Seeded, so this is a deterministic check, but the bound is the
  // law-of-large-numbers one: the empirical mean interarrival should
  // sit within a few percent of 1/rate.
  EXPECT_NEAR(mean_interarrival(t), 1.0 / 50.0, 0.05 / 50.0);
}

TEST(Traffic, BurstyArrivalsStayInsideOnWindows) {
  TrafficSpec spec;
  spec.process = ArrivalProcess::kBursty;
  spec.rate_hz = 40.0;
  spec.on_seconds = 0.5;
  spec.off_seconds = 1.5;
  const auto t = generate_arrivals(spec, 2000, 3);
  const double cycle = spec.on_seconds + spec.off_seconds;
  for (const double a : t) {
    const double pos = std::fmod(a, cycle);
    EXPECT_LE(pos, spec.on_seconds + 1e-9)
        << "arrival " << a << " falls in an OFF window";
  }
  // Effective long-run rate = rate * duty cycle (exact time-rescaling
  // wastes no draws, so the mean comes out as for plain Poisson on the
  // compressed clock).
  const double duty = spec.on_seconds / cycle;
  EXPECT_NEAR(mean_interarrival(t), 1.0 / (spec.rate_hz * duty),
              0.08 / (spec.rate_hz * duty));
}

TEST(Traffic, BurstyZeroOffDegeneratesToPoisson) {
  TrafficSpec poisson;
  poisson.rate_hz = 30.0;
  TrafficSpec bursty = poisson;
  bursty.process = ArrivalProcess::kBursty;
  bursty.on_seconds = 1.0;
  bursty.off_seconds = 0.0;
  EXPECT_EQ(generate_arrivals(poisson, 300, 5),
            generate_arrivals(bursty, 300, 5));
}

TEST(Traffic, DiurnalRampConcentratesArrivalsAtThePeak) {
  TrafficSpec spec;
  spec.process = ArrivalProcess::kDiurnal;
  spec.rate_hz = 50.0;
  spec.period_seconds = 100.0;
  spec.trough_fraction = 0.05;
  const auto t = generate_arrivals(spec, 3000, 13);
  EXPECT_EQ(t, generate_arrivals(spec, 3000, 13));
  // The cycle starts at the trough and peaks mid-period: the middle
  // fifth of each cycle should collect far more arrivals than the
  // wrap-around fifth at the trough.
  std::size_t peak = 0, trough = 0;
  for (const double a : t) {
    const double pos = std::fmod(a, spec.period_seconds) /
                       spec.period_seconds;
    if (pos >= 0.4 && pos < 0.6) ++peak;
    if (pos >= 0.9 || pos < 0.1) ++trough;
  }
  EXPECT_GT(peak, 5 * trough);
}

TEST(Traffic, DiurnalPhaseShiftsTheShapeNotTheStart) {
  TrafficSpec spec;
  spec.process = ArrivalProcess::kDiurnal;
  spec.rate_hz = 40.0;
  spec.period_seconds = 50.0;
  spec.trough_fraction = 0.05;
  spec.phase_seconds = 25.0;  // start mid-peak
  const auto t = generate_arrivals(spec, 500, 17);
  // Starting at the peak, the acceptance rate is ~1: the first arrival
  // lands within a few mean interarrivals of t = 0.
  EXPECT_LT(t.front(), 1.0);
}

TEST(Traffic, GeneratorValidation) {
  TrafficSpec spec;
  spec.rate_hz = 0;
  EXPECT_THROW(generate_arrivals(spec, 1, 0), std::invalid_argument);
  spec.rate_hz = 10;
  spec.process = ArrivalProcess::kBursty;
  spec.on_seconds = 0;
  EXPECT_THROW(generate_arrivals(spec, 1, 0), std::invalid_argument);
  spec.on_seconds = 1;
  spec.off_seconds = -1;
  EXPECT_THROW(generate_arrivals(spec, 1, 0), std::invalid_argument);
  spec = {};
  spec.process = ArrivalProcess::kDiurnal;
  spec.trough_fraction = 1.5;
  EXPECT_THROW(generate_arrivals(spec, 1, 0), std::invalid_argument);
  spec.trough_fraction = 0.5;
  spec.period_seconds = 0;
  EXPECT_THROW(generate_arrivals(spec, 1, 0), std::invalid_argument);
}

TEST(Traffic, TraceLengthAndValidation) {
  SequenceTraceSpec spec = small_trace(false);
  EXPECT_EQ(trace_length(spec), 12u);  // 2 * 3 * 2
  EXPECT_THROW(trace_frame(spec, 12, 1), std::invalid_argument);
  spec.revisits = 0;
  EXPECT_THROW(trace_length(spec), std::invalid_argument);
}

TEST(Traffic, CoherentTracePreservesDriveOrder) {
  const SequenceTraceSpec spec = small_trace(false);
  int last_sequence = -1;
  int last_frame = -1;
  std::map<std::pair<int, int>, int> emissions;
  for (std::size_t k = 0; k < trace_length(spec); ++k) {
    const TraceFrame f = trace_frame(spec, k, 21);
    ++emissions[{f.sequence, f.frame}];
    if (f.sequence != last_sequence) {
      // New sequence block: sequences appear in order, each exactly
      // once (coherent order never returns to an earlier sequence).
      EXPECT_EQ(f.sequence, last_sequence + 1);
      last_sequence = f.sequence;
      last_frame = -1;
    }
    // Within a sequence, frames advance in drive order (revisits of a
    // frame are back to back, so the frame index never decreases).
    EXPECT_GE(f.frame, last_frame);
    EXPECT_LE(f.frame, last_frame + 1);
    last_frame = f.frame;
  }
  // Every (sequence, frame) pair is emitted exactly `revisits` times.
  EXPECT_EQ(emissions.size(), 6u);
  for (const auto& [key, count] : emissions) EXPECT_EQ(count, 2);
}

TEST(Traffic, ShuffledTraceInterleavesButEmitsTheSameMultiset) {
  const SequenceTraceSpec coherent = small_trace(false);
  const SequenceTraceSpec shuffled = small_trace(true);
  std::map<std::pair<int, int>, int> a, b;
  bool interleaved = false;
  int last_sequence = -1;
  for (std::size_t k = 0; k < trace_length(coherent); ++k) {
    const TraceFrame fa = trace_frame(coherent, k, 33);
    const TraceFrame fb = trace_frame(shuffled, k, 33);
    ++a[{fa.sequence, fa.frame}];
    ++b[{fb.sequence, fb.frame}];
    if (fb.sequence < last_sequence) interleaved = true;
    last_sequence = fb.sequence;
  }
  EXPECT_EQ(a, b);            // same emission multiset...
  EXPECT_TRUE(interleaved);   // ...in a genuinely different order
}

TEST(Traffic, FrameContentIndependentOfEmissionOrder) {
  const SequenceTraceSpec coherent = small_trace(false);
  const SequenceTraceSpec shuffled = small_trace(true);
  // Index every emission by identity, then compare tensors across the
  // two orders: a frame's bytes are keyed on (seed, sequence, frame)
  // alone, so the orders must serve identical tensors.
  std::map<std::pair<int, int>, SparseTensor> by_id;
  for (std::size_t k = 0; k < trace_length(coherent); ++k) {
    TraceFrame f = trace_frame(coherent, k, 9);
    by_id.insert({{f.sequence, f.frame}, std::move(f.input)});
  }
  for (std::size_t k = 0; k < trace_length(shuffled); ++k) {
    const TraceFrame f = trace_frame(shuffled, k, 9);
    const auto it = by_id.find({f.sequence, f.frame});
    ASSERT_NE(it, by_id.end());
    const SparseTensor& want = it->second;
    ASSERT_EQ(f.input.num_points(), want.num_points());
    for (std::size_t i = 0; i < f.input.num_points(); ++i)
      EXPECT_EQ(pack_coord(f.input.coords()[i]),
                pack_coord(want.coords()[i]));
    ASSERT_EQ(f.input.feats().size(), want.feats().size());
    for (std::size_t i = 0; i < f.input.feats().size(); ++i)
      EXPECT_EQ(f.input.feats().data()[i], want.feats().data()[i]);
  }
}

TEST(Traffic, MixMergesSortedWithDeterministicTieBreak) {
  std::vector<ModelTraffic> streams(2);
  streams[0].model = 0;
  streams[0].priority = Priority::kHigh;
  streams[0].arrivals.rate_hz = 20.0;
  streams[0].count = 200;
  streams[1].model = 1;
  streams[1].arrivals.process = ArrivalProcess::kBursty;
  streams[1].arrivals.rate_hz = 40.0;
  streams[1].arrivals.on_seconds = 0.5;
  streams[1].arrivals.off_seconds = 0.5;
  streams[1].count = 200;
  const auto mix = build_traffic_mix(streams, 42);
  ASSERT_EQ(mix.size(), 400u);
  EXPECT_EQ(mix, build_traffic_mix(streams, 42));
  std::vector<std::size_t> next_pos(2, 0);
  for (std::size_t i = 0; i + 1 < mix.size(); ++i)
    EXPECT_LE(mix[i].arrival_seconds, mix[i + 1].arrival_seconds);
  for (const TimedSubmission& s : mix) {
    EXPECT_EQ(s.model, static_cast<int>(s.stream));
    EXPECT_EQ(s.priority, streams[s.stream].priority);
    // Within a stream, positions appear in order — arrivals are
    // strictly increasing per stream, and the sort is total.
    EXPECT_EQ(s.stream_pos, next_pos[s.stream]++);
  }
}

TEST(Traffic, MixStreamsAreSeedIndependent) {
  std::vector<ModelTraffic> one(1);
  one[0].arrivals.rate_hz = 15.0;
  one[0].count = 100;
  std::vector<ModelTraffic> two = one;
  two.push_back(one[0]);
  two[1].model = 1;
  // Adding a second stream must not perturb the first stream's
  // arrivals: per-stream generators are independently seeded.
  const auto a = build_traffic_mix(one, 7);
  const auto b = build_traffic_mix(two, 7);
  std::vector<double> first_in_b;
  for (const TimedSubmission& s : b)
    if (s.stream == 0) first_in_b.push_back(s.arrival_seconds);
  ASSERT_EQ(first_in_b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].arrival_seconds, first_in_b[i]);
}

TEST(Traffic, MixValidation) {
  std::vector<ModelTraffic> streams(1);
  streams[0].model = -1;
  streams[0].count = 1;
  EXPECT_THROW(build_traffic_mix(streams, 0), std::invalid_argument);
  streams[0].model = 0;
  streams[0].priority = static_cast<Priority>(99);
  EXPECT_THROW(build_traffic_mix(streams, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ts::serve
