// Data movement: numerics of gather/scatter plus the §4.3 cost orderings
// (quantization, vectorization, fusion, locality) that Table 3 reports.
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "core/gather_scatter.hpp"
#include "core/kernel_map.hpp"
#include "gpusim/device.hpp"

namespace ts {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = f(rng);
  return m;
}

TEST(GatherScatter, GatherCopiesMappedRows) {
  const Matrix src = random_matrix(10, 4, 1);
  std::vector<MapEntry> map = {{3, 0}, {7, 1}, {3, 2}};
  const Matrix f = gather_rows(src, map);
  ASSERT_EQ(f.rows(), 3u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(f.at(0, c), src.at(3, c));
    EXPECT_EQ(f.at(1, c), src.at(7, c));
    EXPECT_EQ(f.at(2, c), src.at(3, c));
  }
  const Matrix g = gather_rows(src, map, /*by_out=*/true);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(g.at(0, c), src.at(0, c));
}

TEST(GatherScatter, ScatterAccumulates) {
  Matrix dst(4, 2, 1.0f);
  Matrix psum(3, 2);
  psum.at(0, 0) = 1;
  psum.at(1, 0) = 2;
  psum.at(2, 1) = 5;
  std::vector<MapEntry> map = {{0, 2}, {0, 2}, {0, 3}};
  scatter_add_rows(psum, map, dst);
  EXPECT_EQ(dst.at(2, 0), 4.0f);  // 1 + 1 + 2
  EXPECT_EQ(dst.at(3, 1), 6.0f);  // 1 + 5
  EXPECT_EQ(dst.at(0, 0), 1.0f);  // untouched
}

TEST(GatherScatter, GatherThenScatterWithIdentityMapIsIdentity) {
  const Matrix src = random_matrix(20, 8, 2);
  std::vector<MapEntry> id;
  for (int i = 0; i < 20; ++i) id.push_back({i, i});
  Matrix dst(20, 8);
  scatter_add_rows(gather_rows(src, id), id, dst);
  EXPECT_EQ(max_abs_diff(dst, src), 0.0f);
}

// ---- Cost-model orderings (Table 3). ----

/// Builds a synthetic submanifold-like kernel map over `n` points where
/// each point participates in `deg` offset maps.
KernelMap synthetic_map(std::size_t n, int volume, int deg, uint64_t seed) {
  std::mt19937_64 rng(seed);
  KernelMap km;
  km.kernel_size = 3;
  km.maps.resize(static_cast<std::size_t>(volume));
  for (std::size_t j = 0; j < n; ++j) {
    std::unordered_set<int> used;
    for (int t = 0; t < deg; ++t) {
      const int o = static_cast<int>(rng() % static_cast<uint64_t>(volume));
      if (!used.insert(o).second) continue;
      km.maps[static_cast<std::size_t>(o)].push_back(
          {static_cast<int32_t>(j),
           static_cast<int32_t>(rng() % n)});
    }
  }
  return km;
}

struct MovementCase {
  Precision precision;
  bool vectorized;
  bool fused;
  bool locality;
};

double movement_seconds(const KernelMap& km, std::size_t n,
                        std::size_t channels, const MovementCase& mc,
                        bool simulate_cache = true) {
  EngineConfig cfg;
  cfg.precision = mc.precision;
  cfg.vectorized = mc.vectorized;
  cfg.fused_gather_scatter = mc.fused;
  cfg.locality_aware = mc.locality;
  ExecContext ctx(rtx2080ti(), cfg);
  ctx.simulate_cache = simulate_cache;
  std::vector<int> offsets;
  for (int o = 0; o < km.volume(); ++o)
    if (km.size(o) > 0) offsets.push_back(o);
  charge_gather_scatter(km, offsets, n, n, channels, channels, ctx);
  return ctx.timeline.data_movement_seconds();
}

class MovementOrdering : public ::testing::TestWithParam<bool> {};

TEST_P(MovementOrdering, Table3LadderHolds) {
  const bool sim = GetParam();
  // Working set deliberately larger than the 2080Ti L2 (paper §4.3.2) and
  // big enough that payload, not kernel launches, dominates — the regime
  // of the paper's Table 3 measurements.
  const std::size_t n = 60000, channels = 128;
  const KernelMap km = synthetic_map(n, 27, 16, 7);

  const double fp32 =
      movement_seconds(km, n, channels,
                       {Precision::kFP32, false, false, false}, sim);
  const double fp16_scalar =
      movement_seconds(km, n, channels,
                       {Precision::kFP16, false, false, false}, sim);
  const double fp16_vec =
      movement_seconds(km, n, channels,
                       {Precision::kFP16, true, false, false}, sim);
  const double fused =
      movement_seconds(km, n, channels,
                       {Precision::kFP16, true, true, false}, sim);
  const double locality =
      movement_seconds(km, n, channels,
                       {Precision::kFP16, true, true, true}, sim);

  // Quantization alone helps a little (paper: 1.32x); vectorization is
  // the big jump (1.93x); fusion alone is modest (2.02x); locality is the
  // other big jump (2.72x).
  EXPECT_LT(fp16_scalar, fp32);
  EXPECT_GT(fp32 / fp16_scalar, 1.1);
  EXPECT_LT(fp32 / fp16_scalar, 1.7);   // far from the theoretical 2x
  EXPECT_GT(fp32 / fp16_vec, 1.55);     // close to 2x
  EXPECT_LT(fused, fp16_vec * 1.05);    // fusing never hurts much
  EXPECT_GT(fp32 / locality, 2.2);      // the full §4.3 stack
  EXPECT_LT(locality, fused);
}

INSTANTIATE_TEST_SUITE_P(CacheSimOnOff, MovementOrdering,
                         ::testing::Values(true, false));

TEST(MovementCost, Int8AcceleratesGatherOnlyModestly) {
  const std::size_t n = 20000, channels = 64;
  const KernelMap km = synthetic_map(n, 27, 8, 8);
  const double fp16 = movement_seconds(
      km, n, channels, {Precision::kFP16, true, true, true});
  const double int8 = movement_seconds(
      km, n, channels, {Precision::kINT8, true, true, true});
  // INT8 helps (smaller gather reads) but far less than 2x, because the
  // scatter stays 16-bit (paper §4.3.1).
  EXPECT_LT(int8, fp16);
  EXPECT_LT(fp16 / int8, 1.5);
}

TEST(MovementCost, EmptyMapCostsNothing) {
  KernelMap km;
  km.kernel_size = 3;
  km.maps.resize(27);
  EngineConfig cfg;
  ExecContext ctx(rtx3090(), cfg);
  charge_gather_scatter(km, {}, 100, 100, 8, 8, ctx);
  EXPECT_EQ(ctx.timeline.total_seconds(), 0.0);
}

TEST(MovementCost, UnfusedLaunchesTwoKernelsPerOffset) {
  const KernelMap km = synthetic_map(500, 27, 4, 9);
  int nonzero = 0;
  std::vector<int> offsets;
  for (int o = 0; o < 27; ++o)
    if (km.size(o) > 0) {
      offsets.push_back(o);
      ++nonzero;
    }
  EngineConfig cfg;
  cfg.fused_gather_scatter = false;
  cfg.locality_aware = false;
  ExecContext ctx(rtx2080ti(), cfg);
  charge_gather_scatter(km, offsets, 500, 500, 16, 16, ctx);
  EXPECT_EQ(ctx.timeline.kernel_launches(),
            static_cast<std::size_t>(2 * nonzero));

  EngineConfig fused_cfg;
  fused_cfg.fused_gather_scatter = true;
  fused_cfg.locality_aware = true;
  ExecContext fctx(rtx2080ti(), fused_cfg);
  charge_gather_scatter(km, offsets, 500, 500, 16, 16, fctx);
  EXPECT_EQ(fctx.timeline.kernel_launches(), 2u);
}

TEST(MovementCost, LocalityAwareMovesFewerDramBytes) {
  const std::size_t n = 30000;
  const KernelMap km = synthetic_map(n, 27, 10, 10);
  std::vector<int> offsets;
  for (int o = 0; o < 27; ++o)
    if (km.size(o) > 0) offsets.push_back(o);

  auto bytes_for = [&](bool locality) {
    EngineConfig cfg;
    cfg.precision = Precision::kFP16;
    cfg.vectorized = true;
    cfg.fused_gather_scatter = true;
    cfg.locality_aware = locality;
    ExecContext ctx(rtx2080ti(), cfg);
    charge_gather_scatter(km, offsets, n, n, 64, 64, ctx);
    return ctx.timeline.dram_bytes();
  };
  EXPECT_LT(bytes_for(true), bytes_for(false));
}

}  // namespace
}  // namespace ts
