// Negative-compile case: calling a TS_REQUIRES(mu_) helper without the
// lock — the *_locked() naming contract of the serving surface. Under
// Clang with -Werror=thread-safety this file MUST fail to compile;
// tests/negative_compile/CMakeLists.txt asserts that.
#include "core/sync.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    add_locked(amount);  // REQUIRES(mu_) helper, lock not held: rejected
  }

 private:
  void add_locked(int amount) TS_REQUIRES(mu_) { balance_ += amount; }

  ts::Mutex mu_;
  int balance_ TS_GUARDED_BY(mu_) = 0;
};

void force_odr_use(Account& a) { a.deposit(1); }

}  // namespace
