// Positive control for the negative-compile suite: correctly locked
// code exercising every primitive the serving surface uses — scoped
// MutexLock over guarded state, a *_locked() helper called with the
// lock held, and a CondVar wait loop. This file MUST compile cleanly
// under -Werror=thread-safety; if it fails, the suite's two negative
// cases are failing for the wrong reason (broken harness, not working
// enforcement).
#include "core/sync.hpp"

namespace {

class BoundedFlag {
 public:
  void set() {
    ts::MutexLock lock(mu_);
    set_locked();
    cv_.notify_all();
  }

  void wait_set() {
    ts::MutexLock lock(mu_);
    while (!value_) cv_.wait(mu_);
  }

  bool get() {
    ts::MutexLock lock(mu_);
    return value_;
  }

 private:
  void set_locked() TS_REQUIRES(mu_) { value_ = true; }

  ts::Mutex mu_;
  ts::CondVar cv_;
  bool value_ TS_GUARDED_BY(mu_) = false;
};

bool force_odr_use(BoundedFlag& f) {
  f.set();
  f.wait_set();
  return f.get();
}

}  // namespace
