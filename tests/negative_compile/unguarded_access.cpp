// Negative-compile case: reading a TS_GUARDED_BY field without holding
// its mutex. Under Clang with -Werror=thread-safety this file MUST fail
// to compile — tests/negative_compile/CMakeLists.txt asserts that. If
// it ever compiles, the annotation plumbing (core/thread_annotations
// macros, the ts::Mutex capability) has silently stopped enforcing,
// which is exactly the regression this suite exists to catch.
#include "core/sync.hpp"

namespace {

struct Counter {
  ts::Mutex mu;
  int value TS_GUARDED_BY(mu) = 0;
};

int read_without_lock(Counter& c) {
  return c.value;  // guarded read, no lock: must be rejected
}

int force_odr_use(Counter& c) { return read_without_lock(c); }

}  // namespace
