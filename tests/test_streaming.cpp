// Streaming serving runtime: async submission must be a pure scheduling
// construct — per-request results bit-identical to serial run_model,
// typed admission-control rejections, SLO-aware batch formation on the
// modeled clock, and statistics that are deterministic across runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "engines/presets.hpp"
#include "engines/runner.hpp"
#include "gpusim/device.hpp"
#include "nn/layers.hpp"
#include "serve/batch_runner.hpp"
#include "serve/dynamic_batcher.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_policies.hpp"
#include "serve/server.hpp"

namespace ts {
namespace {

SparseTensor random_tensor(int n, int extent, std::size_t channels,
                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  Matrix feats(coords.size(), channels);
  for (std::size_t i = 0; i < feats.size(); ++i) feats.data()[i] = f(rng);
  return SparseTensor(std::move(coords), std::move(feats));
}

/// A small but multi-level model (down + submanifold + up) so request
/// timelines exercise mapping, movement, and matmul stages.
ModelFn small_unet(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto net = std::make_shared<spnn::Sequential>();
  net->emplace<spnn::ConvBlock>(4, 16, 3, 1, false, rng);
  net->emplace<spnn::ConvBlock>(16, 32, 2, 2, false, rng);
  net->emplace<spnn::ConvBlock>(32, 32, 3, 1, false, rng);
  net->emplace<spnn::ConvBlock>(32, 16, 2, 2, true, rng);
  return [net](const SparseTensor& x, ExecContext& ctx) {
    net->forward(x, ctx);
  };
}

std::vector<SparseTensor> make_batch(int n, uint64_t seed) {
  std::vector<SparseTensor> batch;
  for (int i = 0; i < n; ++i)
    batch.push_back(random_tensor(150 + 20 * i, 12, 4,
                                  seed + static_cast<uint64_t>(i)));
  return batch;
}

void expect_same_timeline(const Timeline& a, const Timeline& b) {
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const Stage st = static_cast<Stage>(s);
    EXPECT_DOUBLE_EQ(a.stage_seconds(st), b.stage_seconds(st))
        << to_string(st);
  }
  EXPECT_DOUBLE_EQ(a.dram_bytes(), b.dram_bytes());
  EXPECT_EQ(a.kernel_launches(), b.kernel_launches());
  EXPECT_DOUBLE_EQ(a.flops(), b.flops());
}

// --- DynamicBatcher: batch formation on the modeled clock -------------

TEST(DynamicBatcher, SloAwareClosesOnDeadlineOrFullBatch) {
  serve::BatcherOptions opt;
  opt.policy = serve::BatchPolicy::kSloAware;
  opt.max_batch = 3;
  opt.slo_budget_seconds = 1.0;
  const auto plan = serve::DynamicBatcher::plan(
      {0.0, 0.2, 5.0, 5.1, 5.2, 9.0}, opt);

  ASSERT_EQ(plan.size(), 3u);
  // [0, 0.2]: deadline 0.0 + 1.0 passed before the arrival at 5.0.
  EXPECT_EQ(plan[0].first, 0u);
  EXPECT_EQ(plan[0].count, 2u);
  EXPECT_DOUBLE_EQ(plan[0].dispatch_seconds, 1.0);
  // [5.0, 5.1, 5.2]: filled to max_batch at the 5.2 arrival.
  EXPECT_EQ(plan[1].first, 2u);
  EXPECT_EQ(plan[1].count, 3u);
  EXPECT_DOUBLE_EQ(plan[1].dispatch_seconds, 5.2);
  // [9.0]: flushed at end of stream (modeled close = last arrival).
  EXPECT_EQ(plan[2].first, 5u);
  EXPECT_EQ(plan[2].count, 1u);
  EXPECT_DOUBLE_EQ(plan[2].dispatch_seconds, 9.0);
}

TEST(DynamicBatcher, ImmediateAndFullBatchPolicies) {
  const std::vector<double> arrivals = {0.0, 1.0, 2.0, 3.0, 4.0};

  serve::BatcherOptions imm;
  imm.policy = serve::BatchPolicy::kImmediate;
  imm.max_batch = 8;
  const auto plan_imm = serve::DynamicBatcher::plan(arrivals, imm);
  ASSERT_EQ(plan_imm.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(plan_imm[i].count, 1u);
    EXPECT_DOUBLE_EQ(plan_imm[i].dispatch_seconds, arrivals[i]);
  }

  serve::BatcherOptions full;
  full.policy = serve::BatchPolicy::kFullBatch;
  full.max_batch = 2;
  const auto plan_full = serve::DynamicBatcher::plan(arrivals, full);
  ASSERT_EQ(plan_full.size(), 3u);
  EXPECT_EQ(plan_full[0].count, 2u);
  EXPECT_DOUBLE_EQ(plan_full[0].dispatch_seconds, 1.0);
  EXPECT_EQ(plan_full[1].count, 2u);
  EXPECT_DOUBLE_EQ(plan_full[1].dispatch_seconds, 3.0);
  // Remainder flushed at the last arrival.
  EXPECT_EQ(plan_full[2].count, 1u);
  EXPECT_DOUBLE_EQ(plan_full[2].dispatch_seconds, 4.0);
}

TEST(DynamicBatcher, RejectsNonMonotoneArrivals) {
  serve::DynamicBatcher b(serve::BatcherOptions{});
  b.on_arrival(1.0);
  EXPECT_THROW(b.on_arrival(0.5), std::invalid_argument);
}

// --- schedule_stream: the pure modeled scheduler ----------------------

TEST(ScheduleStream, BackToBackWithPerBatchOverhead) {
  std::vector<serve::StreamResult> reqs(4);
  const double arrivals[] = {0.0, 0.1, 0.2, 0.3};
  for (std::size_t i = 0; i < 4; ++i) {
    reqs[i].id = i;
    reqs[i].arrival_seconds = arrivals[i];
    reqs[i].service_seconds = 1.0;
  }
  const std::vector<serve::PlannedBatch> plan = {{0, 4, 0.3}};
  std::vector<serve::StreamBatchRecord> batches;
  const serve::StreamStats s =
      serve::schedule_stream(reqs, plan, /*workers=*/1,
                             /*batch_overhead_seconds=*/0.5, &batches);

  // Batch starts at dispatch 0.3, pays 0.5 overhead once, then members
  // run back-to-back.
  EXPECT_DOUBLE_EQ(reqs[0].start_seconds, 0.8);
  EXPECT_DOUBLE_EQ(reqs[3].start_seconds, 3.8);
  EXPECT_DOUBLE_EQ(reqs[3].finish_seconds, 4.8);
  // Queue wait ends at batch-execution start (0.3); the overhead and
  // batch-mates are run time.
  EXPECT_DOUBLE_EQ(reqs[0].queue_wait_seconds, 0.3);
  EXPECT_DOUBLE_EQ(reqs[3].queue_wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(reqs[3].e2e_seconds, 4.5);
  EXPECT_DOUBLE_EQ(s.makespan_seconds, 4.8);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 4.0);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].lane, 0);
  EXPECT_DOUBLE_EQ(batches[0].start_seconds, 0.3);
  EXPECT_DOUBLE_EQ(batches[0].finish_seconds, 4.8);
}

TEST(ScheduleStream, RejectsPlanThatDoesNotCoverRequests) {
  std::vector<serve::StreamResult> reqs(3);
  EXPECT_THROW(
      serve::schedule_stream(reqs, {{0, 2, 0.0}}, 1, 0.0),
      std::invalid_argument);
  EXPECT_THROW(
      serve::schedule_stream(reqs, {{0, 2, 0.0}, {1, 2, 0.0}}, 1, 0.0),
      std::invalid_argument);
}

// --- RequestQueue: admission control ----------------------------------

TEST(RequestQueue, RejectsPastConfiguredDepthWithTypedError) {
  serve::QueueOptions qopt;
  qopt.max_depth = 3;
  serve::RequestQueue queue(qopt);
  const auto batch = make_batch(4, 900);

  for (int i = 0; i < 3; ++i)
    queue.submit(batch[static_cast<std::size_t>(i)], 0.001 * i);
  EXPECT_EQ(queue.depth(), 3u);

  // The 4th submission sheds load with the typed error (which is still a
  // runtime_error, so generic handlers keep working).
  try {
    queue.submit(batch[3], 0.003);
    FAIL() << "expected serve::AdmissionError";
  } catch (const serve::AdmissionError& e) {
    EXPECT_NE(std::string(e.what()).find("depth limit"),
              std::string::npos);
  }
  EXPECT_TRUE((std::is_base_of<std::runtime_error,
                               serve::AdmissionError>::value));
  EXPECT_FALSE(queue.try_submit(batch[3], 0.003).has_value());
  EXPECT_EQ(queue.rejected(), 2u);
  EXPECT_EQ(queue.submitted(), 3u);

  queue.close();
  EXPECT_THROW(queue.submit(batch[3], 0.004), serve::AdmissionError);
  EXPECT_EQ(queue.rejected(), 3u);
}

TEST(RequestQueue, ValidatesArrivalStamps) {
  serve::RequestQueue queue;
  const SparseTensor x = random_tensor(30, 8, 4, 901);
  queue.submit(x, 1.0);
  EXPECT_THROW(queue.submit(x, 0.5), std::invalid_argument);
  EXPECT_THROW(queue.submit(x, -1.0), std::invalid_argument);
  // Out-of-enumerator priority values (an index into per-class
  // accounting downstream) die at the admission boundary too.
  EXPECT_THROW(queue.submit(x, 1.5, static_cast<serve::Priority>(3)),
               std::invalid_argument);
  EXPECT_THROW(queue.try_submit(x, 1.5, static_cast<serve::Priority>(-1)),
               std::invalid_argument);
  // Invalid stamps and priorities are caller bugs, not load shedding.
  EXPECT_EQ(queue.rejected(), 0u);
}

TEST(RequestQueue, ClassDepthCapShedsOnlyTheCappedClass) {
  serve::QueueOptions qopt;
  qopt.max_depth = 8;
  qopt.class_max_depth[static_cast<int>(serve::Priority::kLow)] = 1;
  serve::RequestQueue queue(qopt);
  const SparseTensor x = random_tensor(30, 8, 4, 902);

  queue.submit(x, 0.0, serve::Priority::kLow);
  // The low class is at its cap; the queue itself has plenty of room.
  try {
    queue.submit(x, 0.001, serve::Priority::kLow);
    FAIL() << "expected serve::AdmissionError";
  } catch (const serve::AdmissionError& e) {
    EXPECT_NE(std::string(e.what()).find("class"), std::string::npos);
  }
  EXPECT_FALSE(
      queue.try_submit(x, 0.001, serve::Priority::kLow).has_value());
  EXPECT_EQ(queue.rejected(), 2u);
  // Other classes are untouched by the low-class cap.
  queue.submit(x, 0.002, serve::Priority::kNormal);
  queue.submit(x, 0.003, serve::Priority::kHigh);
  EXPECT_EQ(queue.depth(), 3u);
  // Draining the pending low request frees the class slot.
  serve::PendingRequest req;
  ASSERT_TRUE(queue.wait_pop(req));
  EXPECT_EQ(req.priority, serve::Priority::kLow);
  queue.submit(x, 0.004, serve::Priority::kLow);
  EXPECT_EQ(queue.depth(), 3u);
}

TEST(RequestQueue, SubmitWaitBlocksForASlotAndWakesOnDrain) {
  serve::QueueOptions qopt;
  qopt.max_depth = 1;
  serve::RequestQueue queue(qopt);
  const SparseTensor x = random_tensor(30, 8, 4, 903);
  queue.submit(x, 0.0);

  // The producer blocks on the full queue until the consumer drains a
  // slot; then its request is admitted (never shed).
  serve::StreamHandle handle;
  std::thread producer([&] { handle = queue.submit_wait(x, 0.001); });
  serve::PendingRequest req;
  ASSERT_TRUE(queue.wait_pop(req));
  producer.join();
  EXPECT_TRUE(handle.valid());
  EXPECT_EQ(queue.depth(), 1u);
  EXPECT_EQ(queue.submitted(), 2u);
  EXPECT_EQ(queue.rejected(), 0u);
}

TEST(RequestQueue, CloseWakesBlockedSubmitWaitWithTypedError) {
  serve::QueueOptions qopt;
  qopt.max_depth = 1;
  serve::RequestQueue queue(qopt);
  const SparseTensor x = random_tensor(30, 8, 4, 904);
  queue.submit(x, 0.0);

  // Shutdown while a producer is parked in submit_wait: the waiter must
  // wake with the typed rejection, not deadlock against a consumer that
  // will never drain another slot.
  std::atomic<bool> rejected{false};
  std::thread producer([&] {
    try {
      queue.submit_wait(x, 0.001);
    } catch (const serve::AdmissionError&) {
      rejected = true;
    }
  });
  // Give the producer a moment to actually park (the outcome is the
  // same typed error either way — close-then-wait rejects immediately).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
  EXPECT_TRUE(rejected);
  EXPECT_EQ(queue.rejected(), 1u);
  EXPECT_EQ(queue.depth(), 1u);  // the original admission is untouched
}

// --- BatchRunner::serve: the end-to-end streaming path ----------------

TEST(StreamingServe, ResultsAreBitIdenticalToSerialRunModel) {
  const ModelFn model = small_unet(21);
  const auto batch = make_batch(6, 1000);
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig cfg = torchsparse_config();

  serve::BatchOptions opt;
  opt.workers = 3;
  opt.run.numerics = true;
  serve::StreamOptions sopt;
  sopt.batcher.max_batch = 3;
  sopt.batcher.slo_budget_seconds = 0.005;

  serve::RequestQueue queue;
  std::vector<serve::StreamHandle> handles;
  for (std::size_t i = 0; i < batch.size(); ++i)
    handles.push_back(queue.submit(batch[i], 0.001 * double(i)));
  queue.close();

  const serve::BatchRunner runner(dev, cfg, opt);
  const serve::StreamReport report = runner.serve(model, queue, sopt);

  ASSERT_EQ(report.requests.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    RunOptions serial;
    serial.numerics = true;
    const Timeline ref = run_model(model, batch[i], dev, cfg, serial);
    EXPECT_EQ(report.requests[i].id, i);
    expect_same_timeline(report.requests[i].timeline, ref);
    // The handle resolves to the same scheduled result.
    const serve::StreamResult& via_handle = handles[i].get();
    EXPECT_EQ(via_handle.id, i);
    expect_same_timeline(via_handle.timeline, ref);
    EXPECT_DOUBLE_EQ(via_handle.finish_seconds,
                     report.requests[i].finish_seconds);
    EXPECT_GE(report.requests[i].queue_wait_seconds, 0.0);
    EXPECT_DOUBLE_EQ(report.requests[i].e2e_seconds,
                     report.requests[i].finish_seconds -
                         report.requests[i].arrival_seconds);
    // e2e covers the queue wait plus at least this request's own run.
    EXPECT_GE(report.requests[i].e2e_seconds + 1e-15,
              report.requests[i].queue_wait_seconds +
                  report.requests[i].service_seconds);
  }
}

TEST(StreamingServe, AdmissionRejectionsAreCountedInStats) {
  const ModelFn model = small_unet(22);
  const auto batch = make_batch(5, 1100);

  serve::QueueOptions qopt;
  qopt.max_depth = 4;
  serve::RequestQueue queue(qopt);
  for (int i = 0; i < 4; ++i)
    queue.submit(batch[static_cast<std::size_t>(i)], 0.0005 * i);
  EXPECT_THROW(queue.submit(batch[4], 0.002), serve::AdmissionError);
  queue.close();

  serve::BatchOptions opt;
  opt.workers = 2;
  const serve::BatchRunner runner(rtx2080ti(), torchsparse_config(), opt);
  const serve::StreamReport report = runner.serve(model, queue);
  EXPECT_EQ(report.stats.completed, 4u);
  EXPECT_EQ(report.stats.rejected, 1u);
}

TEST(StreamingServe, TightSloDispatchesSmallerBatchesAndMeetsBudget) {
  const ModelFn model = small_unet(23);
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig cfg = torchsparse_config();

  // Modeled mean service time anchors the arrival process so the test is
  // load-calibrated on every machine (service times are cost-model
  // output, hence machine-independent).
  const SparseTensor probe = random_tensor(160, 12, 4, 1200);
  const double service =
      run_model(model, probe, dev, cfg).total_seconds();
  ASSERT_GT(service, 0.0);
  const double gap = 0.6 * service;

  const int n = 12;
  std::vector<SparseTensor> batch;
  for (int i = 0; i < n; ++i)
    batch.push_back(random_tensor(160, 12, 4,
                                  1200 + static_cast<uint64_t>(i)));

  auto serve_with = [&](double slo_budget) {
    serve::RequestQueue queue;
    for (int i = 0; i < n; ++i)
      queue.submit(batch[static_cast<std::size_t>(i)], gap * i);
    queue.close();
    serve::BatchOptions opt;
    // Lanes >= dispatched batches, so queue wait is purely the batcher's
    // deadline wait and the SLO bound below is exact.
    opt.workers = 12;
    serve::StreamOptions sopt;
    sopt.batcher.policy = serve::BatchPolicy::kSloAware;
    sopt.batcher.max_batch = 6;
    sopt.batcher.slo_budget_seconds = slo_budget;
    return serve::BatchRunner(dev, cfg, opt).serve(model, queue, sopt);
  };

  const serve::StreamReport tight = serve_with(1.0 * service);
  const serve::StreamReport loose = serve_with(100.0 * service);

  // A tight SLO must cut batch sizes...
  EXPECT_LT(tight.stats.mean_batch_size, loose.stats.mean_batch_size);
  EXPECT_GT(tight.stats.batches, loose.stats.batches);
  for (const serve::StreamBatchRecord& b : tight.batches)
    EXPECT_LE(b.size, 6u);
  // ...and the modeled p99 queue wait stays within the budget.
  EXPECT_LE(tight.stats.queue_wait_p99_seconds, 1.0 * service + 1e-12);

  // Deterministic: an identical re-run reproduces the schedule exactly.
  const serve::StreamReport again = serve_with(1.0 * service);
  EXPECT_DOUBLE_EQ(again.stats.mean_batch_size,
                   tight.stats.mean_batch_size);
  EXPECT_DOUBLE_EQ(again.stats.queue_wait_p99_seconds,
                   tight.stats.queue_wait_p99_seconds);
  EXPECT_DOUBLE_EQ(again.stats.e2e_p99_seconds,
                   tight.stats.e2e_p99_seconds);
  EXPECT_DOUBLE_EQ(again.stats.throughput_fps,
                   tight.stats.throughput_fps);
  ASSERT_EQ(again.requests.size(), tight.requests.size());
  for (std::size_t i = 0; i < tight.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(again.requests[i].start_seconds,
                     tight.requests[i].start_seconds);
    EXPECT_DOUBLE_EQ(again.requests[i].finish_seconds,
                     tight.requests[i].finish_seconds);
    EXPECT_EQ(again.requests[i].batch_id, tight.requests[i].batch_id);
  }
}

TEST(StreamingServe, ProducerThreadSubmitsWhileServing) {
  const ModelFn model = small_unet(24);
  const auto batch = make_batch(8, 1300);

  serve::RequestQueue queue;
  // No wall-clock pacing: the modeled arrival stamps carry the stream's
  // timing, and the queue's own blocking hand-off provides the
  // producer/consumer interleaving this test is about.
  std::thread producer([&] {
    for (std::size_t i = 0; i < batch.size(); ++i)
      queue.submit(batch[i], 0.002 * double(i));
    queue.close();
  });

  serve::BatchOptions opt;
  opt.workers = 4;
  const serve::BatchRunner runner(rtx3090(), torchsparse_config(), opt);
  const serve::StreamReport report = runner.serve(model, queue);
  producer.join();

  EXPECT_EQ(report.stats.completed, batch.size());
  EXPECT_EQ(report.stats.rejected, 0u);
  EXPECT_GT(report.stats.throughput_fps, 0.0);
  EXPECT_LE(report.stats.queue_wait_p50_seconds,
            report.stats.queue_wait_p99_seconds);
  EXPECT_LE(report.stats.e2e_p50_seconds, report.stats.e2e_p99_seconds);
}

TEST(StreamingServe, EmptyClosedQueueYieldsEmptyReport) {
  serve::RequestQueue queue;
  queue.close();
  serve::BatchOptions opt;
  opt.workers = 2;
  const serve::BatchRunner runner(rtx2080ti(), torchsparse_config(), opt);
  const serve::StreamReport report = runner.serve(small_unet(25), queue);
  EXPECT_TRUE(report.requests.empty());
  EXPECT_TRUE(report.batches.empty());
  EXPECT_EQ(report.stats.completed, 0u);
  EXPECT_DOUBLE_EQ(report.stats.throughput_fps, 0.0);
}

// --- Priority classes: batching policy --------------------------------

TEST(SloBatchingPolicy, SingleClassPlanMatchesDynamicBatcher) {
  // On a single-class stream the priority-aware policy must reproduce
  // DynamicBatcher batch-for-batch and stamp-for-stamp — that is what
  // keeps the legacy serve wrapper bit-identical. Randomized monotone
  // trace, all three dispatch policies.
  std::mt19937_64 rng(515);
  std::uniform_real_distribution<double> gap(0.0, 0.02);
  std::vector<double> arrivals;
  double t = 0;
  for (int i = 0; i < 200; ++i) {
    t += gap(rng);
    arrivals.push_back(t);
  }
  std::vector<serve::ArrivalInfo> infos;
  for (std::size_t i = 0; i < arrivals.size(); ++i)
    infos.push_back({i, arrivals[i], serve::Priority::kNormal});

  for (const serve::BatchPolicy policy :
       {serve::BatchPolicy::kImmediate, serve::BatchPolicy::kFullBatch,
        serve::BatchPolicy::kSloAware}) {
    serve::BatcherOptions opt;
    opt.policy = policy;
    opt.max_batch = 5;
    opt.slo_budget_seconds = 0.015;
    const auto legacy = serve::DynamicBatcher::plan(arrivals, opt);
    const auto priority = serve::SloBatchingPolicy::plan(infos, opt);
    ASSERT_EQ(priority.size(), legacy.size()) << to_string(policy);
    for (std::size_t k = 0; k < legacy.size(); ++k) {
      EXPECT_DOUBLE_EQ(priority[k].dispatch_seconds,
                       legacy[k].dispatch_seconds);
      ASSERT_EQ(priority[k].members.size(), legacy[k].count);
      for (std::size_t j = 0; j < legacy[k].count; ++j)
        EXPECT_EQ(priority[k].members[j], legacy[k].first + j)
            << to_string(policy) << " batch " << k;
    }
  }
}

TEST(SloBatchingPolicy, StrictPriorityHoldsLowClassBackDeterministically) {
  // H0@0.0 H2@0.2 fill a class-0 batch (cap 2) at 0.2 while L1@0.1 is
  // held back by strict priority; H3,H4 fill the next. The held low —
  // alone, so it can never fill a class batch — dispatches only when
  // its own wait budget expires, back-stamped to the deadline.
  serve::BatcherOptions opt;
  opt.policy = serve::BatchPolicy::kSloAware;
  opt.max_batch = 2;
  opt.slo_budget_seconds = 1.0;
  std::vector<serve::ArrivalInfo> infos = {
      {0, 0.0, serve::Priority::kHigh}, {1, 0.1, serve::Priority::kLow},
      {2, 0.2, serve::Priority::kHigh}, {3, 0.3, serve::Priority::kHigh},
      {4, 0.4, serve::Priority::kHigh}, {5, 2.0, serve::Priority::kHigh},
  };
  const auto plan = serve::SloBatchingPolicy::plan(infos, opt);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0].members, (std::vector<std::size_t>{0, 2}));
  EXPECT_DOUBLE_EQ(plan[0].dispatch_seconds, 0.2);
  // The low arrived before H3/H4 but is outranked: they dispatch ahead
  // of it at 0.4 while it keeps waiting.
  EXPECT_EQ(plan[1].members, (std::vector<std::size_t>{3, 4}));
  EXPECT_DOUBLE_EQ(plan[1].dispatch_seconds, 0.4);
  // The held low dispatches at its deadline (0.1 + 1.0), swept when the
  // arrival at 2.0 passes it.
  EXPECT_EQ(plan[2].members, (std::vector<std::size_t>{1}));
  EXPECT_DOUBLE_EQ(plan[2].dispatch_seconds, 1.1);
  // End of stream flushes the remaining high at the last arrival.
  EXPECT_EQ(plan[3].members, (std::vector<std::size_t>{5}));
  EXPECT_DOUBLE_EQ(plan[3].dispatch_seconds, 2.0);

  // Once the highs drain, a full batch of lows is work-conserving:
  // strict priority holds lows back only while higher-class work is
  // pending.
  std::vector<serve::ArrivalInfo> lows_alone = {
      {0, 0.0, serve::Priority::kHigh}, {1, 0.1, serve::Priority::kLow},
      {2, 0.2, serve::Priority::kHigh}, {3, 0.3, serve::Priority::kLow},
  };
  const auto conserving = serve::SloBatchingPolicy::plan(lows_alone, opt);
  ASSERT_EQ(conserving.size(), 2u);
  EXPECT_EQ(conserving[0].members, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(conserving[1].members, (std::vector<std::size_t>{1, 3}));
  EXPECT_DOUBLE_EQ(conserving[1].dispatch_seconds, 0.3);
}

TEST(SloBatchingPolicy, AgingPromotesStarvingLowIntoEarlyBatch) {
  // kFullBatch, continuous highs, one early low. Without aging the low
  // starves until the end-of-stream flush; with aging it is promoted to
  // the top class and wins a slot by arrival order.
  serve::BatcherOptions opt;
  opt.policy = serve::BatchPolicy::kFullBatch;
  opt.max_batch = 2;
  std::vector<serve::ArrivalInfo> infos = {
      {0, 0.0, serve::Priority::kHigh}, {1, 0.1, serve::Priority::kLow},
      {2, 0.2, serve::Priority::kHigh}, {3, 0.3, serve::Priority::kHigh},
      {4, 0.4, serve::Priority::kHigh},
  };

  const auto strict = serve::SloBatchingPolicy::plan(infos, opt);
  ASSERT_EQ(strict.size(), 3u);
  EXPECT_EQ(strict[0].members, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(strict[1].members, (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(strict[2].members, (std::vector<std::size_t>{1}));  // starved

  serve::PriorityOptions aging;
  aging.aging_seconds = 0.05;  // promoted 2 classes after 0.1s of wait
  const auto aged = serve::SloBatchingPolicy::plan(infos, opt, aging);
  ASSERT_EQ(aged.size(), 3u);
  // At 0.2 the low has waited 0.1 = 2 aging intervals: effective class
  // 0, older than H2 -> it takes the second slot of the first batch.
  EXPECT_EQ(aged[0].members, (std::vector<std::size_t>{0, 1}));
  EXPECT_DOUBLE_EQ(aged[0].dispatch_seconds, 0.2);
  EXPECT_EQ(aged[1].members, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(aged[2].members, (std::vector<std::size_t>{4}));
}

TEST(SloBatchingPolicy, ValidatesOptionsAndStamps) {
  serve::BatcherOptions opt;
  serve::PriorityOptions bad;
  bad.aging_seconds = 0.0;
  EXPECT_THROW(serve::SloBatchingPolicy(opt, bad), std::invalid_argument);
  bad.aging_seconds = -1.0;
  EXPECT_THROW(serve::SloBatchingPolicy(opt, bad), std::invalid_argument);
  serve::SloBatchingPolicy policy(opt);
  policy.on_arrival({0, 1.0, serve::Priority::kNormal});
  EXPECT_THROW(policy.on_arrival({1, 0.5, serve::Priority::kNormal}),
               std::invalid_argument);
}

// --- Priority classes: queue preemption --------------------------------

TEST(RequestQueue, PriorityPreemptionEvictsNewestLowestClass) {
  serve::QueueOptions qopt;
  qopt.max_depth = 3;
  qopt.priority_preemption = true;
  serve::RequestQueue queue(qopt);
  const auto batch = make_batch(5, 950);

  serve::StreamHandle l0 =
      queue.submit(batch[0], 0.00, serve::Priority::kLow);
  serve::StreamHandle n1 =
      queue.submit(batch[1], 0.01, serve::Priority::kNormal);
  serve::StreamHandle l2 =
      queue.submit(batch[2], 0.02, serve::Priority::kLow);
  EXPECT_EQ(queue.depth(), 3u);

  // A high submission preempts the *newest lowest-class* pending
  // request (l2, not l0); the victim's handle reports AdmissionError.
  serve::StreamHandle h3 =
      queue.submit(batch[3], 0.03, serve::Priority::kHigh);
  EXPECT_EQ(queue.depth(), 3u);
  EXPECT_EQ(queue.rejected(), 1u);
  EXPECT_THROW(l2.get(), serve::AdmissionError);

  // An equal-or-lower class submission cannot preempt: normal vs
  // lowest-pending normal/low... a low incoming finds no strictly
  // lower class and is shed itself.
  EXPECT_THROW(queue.submit(batch[4], 0.04, serve::Priority::kLow),
               serve::AdmissionError);
  EXPECT_EQ(queue.rejected(), 2u);

  // The surviving entries drain in arrival order with their classes.
  serve::PendingRequest pr;
  ASSERT_TRUE(queue.wait_pop(pr));
  EXPECT_EQ(pr.id, l0.id());
  EXPECT_EQ(pr.priority, serve::Priority::kLow);
  ASSERT_TRUE(queue.wait_pop(pr));
  EXPECT_EQ(pr.id, n1.id());
  ASSERT_TRUE(queue.wait_pop(pr));
  EXPECT_EQ(pr.id, h3.id());
  EXPECT_EQ(pr.priority, serve::Priority::kHigh);
}

// --- Priority classes: end-to-end separation ---------------------------

/// Serves an overloaded 3:1 priority mix through a Server: requests at
/// i % 4 == 3 carry `minority`, the rest `majority`. Arrivals outrun
/// capacity by design, so class scheduling — not spare lanes — decides
/// who waits.
serve::StreamReport serve_priority_mix(const ModelFn& model,
                                       const std::vector<SparseTensor>& in,
                                       double gap, double budget,
                                       int workers, int devices,
                                       serve::Priority majority,
                                       serve::Priority minority,
                                       double aging_seconds = 0) {
  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti())
      .with_engine(torchsparse_config())
      .with_workers(workers)
      .with_devices(devices)
      .with_queue_depth(in.size() + 1);
  serve::BatcherOptions b;
  b.policy = serve::BatchPolicy::kSloAware;
  b.max_batch = 4;
  b.slo_budget_seconds = budget;
  cfg.with_batcher(b);
  if (aging_seconds > 0) {
    serve::PriorityOptions p;
    p.aging_seconds = aging_seconds;
    cfg.with_priority(p);
  }
  serve::Server server(cfg);
  server.start(model);
  for (std::size_t i = 0; i < in.size(); ++i)
    server.submit(in[i], gap * static_cast<double>(i),
                  i % 4 == 3 ? minority : majority);
  return server.drain();
}

TEST(PriorityServe, HighClassP99StrictlyBelowLowClassUnderOverload) {
  const ModelFn model = small_unet(27);
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig cfg = torchsparse_config();
  const SparseTensor probe = random_tensor(150, 12, 4, 1500);
  const double service = run_model(model, probe, dev, cfg).total_seconds();
  ASSERT_GT(service, 0.0);
  const double gap = 0.05 * service;   // heavy overload
  const double budget = 8.0 * gap;

  std::vector<SparseTensor> stream;
  for (int i = 0; i < 32; ++i)
    stream.push_back(random_tensor(150, 12, 4,
                                   1500 + static_cast<uint64_t>(i)));

  const int kHigh = static_cast<int>(serve::Priority::kHigh);
  const int kLow = static_cast<int>(serve::Priority::kLow);
  for (const auto& [workers, devices] :
       std::vector<std::pair<int, int>>{{1, 1}, {2, 1}, {4, 1}, {1, 2},
                                        {2, 2}}) {
    const serve::StreamReport rep = serve_priority_mix(
        model, stream, gap, budget, workers, devices,
        serve::Priority::kLow, serve::Priority::kHigh);
    const serve::PriorityClassStats& high = rep.stats.per_class[kHigh];
    const serve::PriorityClassStats& low = rep.stats.per_class[kLow];
    EXPECT_EQ(high.completed, 8u);
    EXPECT_EQ(low.completed, 24u);
    // The priority contract, at every worker and device count: the
    // high class's modeled tail latency sits strictly below the low
    // class's, on both the queue-wait and end-to-end axes.
    EXPECT_LT(high.e2e_p99_seconds, low.e2e_p99_seconds)
        << "workers=" << workers << " devices=" << devices;
    EXPECT_LT(high.queue_wait_p99_seconds, low.queue_wait_p99_seconds)
        << "workers=" << workers << " devices=" << devices;
  }

  // Deterministic: an identical re-run reproduces the per-class stats
  // bit-for-bit.
  const serve::StreamReport a =
      serve_priority_mix(model, stream, gap, budget, 2, 2,
                         serve::Priority::kLow, serve::Priority::kHigh);
  const serve::StreamReport b =
      serve_priority_mix(model, stream, gap, budget, 2, 2,
                         serve::Priority::kLow, serve::Priority::kHigh);
  for (int c = 0; c < serve::kNumPriorityClasses; ++c) {
    EXPECT_DOUBLE_EQ(a.stats.per_class[c].e2e_p99_seconds,
                     b.stats.per_class[c].e2e_p99_seconds);
    EXPECT_DOUBLE_EQ(a.stats.per_class[c].queue_wait_p99_seconds,
                     b.stats.per_class[c].queue_wait_p99_seconds);
    EXPECT_EQ(a.stats.per_class[c].completed,
              b.stats.per_class[c].completed);
  }
  // Priorities are a scheduling construct: each request's class rides
  // through to its result, and per-class counts partition the stream.
  for (const serve::StreamResult& r : a.requests)
    EXPECT_EQ(r.priority, r.id % 4 == 3 ? serve::Priority::kHigh
                                        : serve::Priority::kLow);
}

TEST(PriorityServe, AgingBoundsLowClassTailUnderOverload) {
  // High-dominated overload (H H H L repeating): without aging the
  // sparse lows are held back behind a steady stream of high-class
  // batches; with aging each low is promoted after 2 aging intervals
  // and wins a slot in an early mixed batch by arrival order.
  const ModelFn model = small_unet(28);
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig cfg = torchsparse_config();
  const SparseTensor probe = random_tensor(150, 12, 4, 1600);
  const double service = run_model(model, probe, dev, cfg).total_seconds();
  const double gap = 0.05 * service;
  const double budget = 40.0 * gap;  // lows never deadline out mid-stream

  std::vector<SparseTensor> stream;
  for (int i = 0; i < 32; ++i)
    stream.push_back(random_tensor(150, 12, 4,
                                   1600 + static_cast<uint64_t>(i)));

  const int kLow = static_cast<int>(serve::Priority::kLow);
  const serve::StreamReport strict = serve_priority_mix(
      model, stream, gap, budget, 2, 1, serve::Priority::kHigh,
      serve::Priority::kLow);
  const serve::StreamReport aged = serve_priority_mix(
      model, stream, gap, budget, 2, 1, serve::Priority::kHigh,
      serve::Priority::kLow, /*aging_seconds=*/2.0 * gap);
  // With aging, promoted lows win batch slots earlier, pulling the low
  // class's queue-wait tail strictly down — no starvation; every
  // request still completes exactly once under both disciplines, and
  // priorities never touch modeled compute.
  EXPECT_LT(aged.stats.per_class[kLow].queue_wait_p99_seconds,
            strict.stats.per_class[kLow].queue_wait_p99_seconds);
  EXPECT_EQ(aged.stats.completed, stream.size());
  EXPECT_EQ(strict.stats.completed, stream.size());
  expect_same_timeline(aged.stats.aggregate, strict.stats.aggregate);

  // Structural view of the same fact: the first batch carrying a low
  // request dispatches strictly earlier (in plan order) with aging on.
  auto first_low_batch = [](const serve::StreamReport& rep) {
    std::size_t first = rep.batches.size();
    for (const serve::StreamResult& r : rep.requests)
      if (r.priority == serve::Priority::kLow)
        first = std::min(first, r.batch_id);
    return first;
  };
  EXPECT_LT(first_low_batch(aged), first_low_batch(strict));
}

// --- Context reuse hook ------------------------------------------------

TEST(ResetContext, ReusedContextMatchesFreshContextBitForBit) {
  const ModelFn model = small_unet(26);
  const SparseTensor x = random_tensor(140, 12, 4, 1400);
  const DeviceSpec dev = rtx2080ti();
  const EngineConfig cfg = torchsparse_config();
  RunOptions opt;
  opt.numerics = true;

  ExecContext reused = make_run_context(dev, cfg, opt);
  const Timeline first = run_in_context(model, x, reused);
  reset_context(reused);
  const Timeline second = run_in_context(model, x, reused);
  expect_same_timeline(first, second);

  const Timeline fresh = run_model(model, x, dev, cfg, opt);
  expect_same_timeline(second, fresh);
}

// --- Per-model stream statistics --------------------------------------

TEST(PerModelStats, InvariantAcrossWorkerAndDeviceCounts) {
  // StreamStats::per_model mirrors per_class: a deterministic function
  // of the (input, arrival, priority, model) stream and the config.
  // `workers` is a modeled lanes-per-device knob, so wait/e2e
  // percentiles legitimately shift with it under contention — what IS
  // invariant across worker counts are the count-type stats (the same
  // contract ServeEquivalence pins for the aggregate stream). Repeat
  // runs of one config must match bit-for-bit, percentiles included.
  const ModelFn seg = small_unet(61);
  const ModelFn det = small_unet(62);
  const auto batch = make_batch(10, 6100);
  auto serve_with = [&](int workers, int devices) {
    serve::ServerConfig cfg;
    cfg.with_device(rtx2080ti())
        .with_engine(torchsparse_config())
        .with_workers(workers)
        .with_map_cache_bytes(std::size_t(64) << 20)
        .with_queue_depth(batch.size() + 1)
        .with_devices(devices)
        .with_route(serve::RoutePolicy::kCacheAffinity)
        .with_model("seg", seg)
        .with_model("det", det);
    serve::Server server(cfg);
    server.start();
    for (std::size_t i = 0; i < batch.size(); ++i)
      server.submit_to(static_cast<int>(i % 2), batch[i],
                       0.001 * static_cast<double>(i),
                       i % 3 == 0 ? serve::Priority::kHigh
                                  : serve::Priority::kNormal);
    return server.drain();
  };
  for (const int devices : {1, 2}) {
    const serve::StreamReport w1 = serve_with(1, devices);
    const serve::StreamReport w4 = serve_with(4, devices);
    const serve::StreamReport w4b = serve_with(4, devices);
    ASSERT_EQ(w1.stats.per_model.size(), 2u);
    ASSERT_EQ(w4.stats.per_model.size(), 2u);
    ASSERT_EQ(w4b.stats.per_model.size(), 2u);
    for (std::size_t m = 0; m < 2; ++m) {
      const serve::ModelStats& a = w1.stats.per_model[m];
      const serve::ModelStats& b = w4.stats.per_model[m];
      EXPECT_EQ(a.model, b.model);
      EXPECT_EQ(a.completed, b.completed);
      EXPECT_EQ(a.failed, b.failed);
      EXPECT_EQ(a.retries, b.retries);
      EXPECT_EQ(a.rejected, b.rejected);
      EXPECT_EQ(a.cache_hits, b.cache_hits);
      EXPECT_EQ(a.cache_lookups, b.cache_lookups);
      EXPECT_EQ(a.completed, 5u);

      const serve::ModelStats& c = w4b.stats.per_model[m];
      EXPECT_EQ(b.model, c.model);
      EXPECT_EQ(b.completed, c.completed);
      EXPECT_EQ(b.failed, c.failed);
      EXPECT_EQ(b.retries, c.retries);
      EXPECT_EQ(b.rejected, c.rejected);
      EXPECT_EQ(b.cache_hits, c.cache_hits);
      EXPECT_EQ(b.cache_lookups, c.cache_lookups);
      EXPECT_DOUBLE_EQ(b.queue_wait_p50_seconds, c.queue_wait_p50_seconds);
      EXPECT_DOUBLE_EQ(b.queue_wait_p90_seconds, c.queue_wait_p90_seconds);
      EXPECT_DOUBLE_EQ(b.queue_wait_p99_seconds, c.queue_wait_p99_seconds);
      EXPECT_DOUBLE_EQ(b.e2e_p50_seconds, c.e2e_p50_seconds);
      EXPECT_DOUBLE_EQ(b.e2e_p90_seconds, c.e2e_p90_seconds);
      EXPECT_DOUBLE_EQ(b.e2e_p99_seconds, c.e2e_p99_seconds);
    }
  }
}

TEST(PerModelStats, AdmissionRejectionsAreSplitByModel) {
  const auto batch = make_batch(5, 6200);
  std::vector<serve::ModelEntry> models(2);
  models[0].name = "a";
  models[0].fn = small_unet(63);
  models[1].name = "b";
  models[1].fn = small_unet(64);

  serve::QueueOptions qopt;
  qopt.max_depth = 4;
  serve::RequestQueue queue(qopt);
  queue.submit(batch[0], 0.000, serve::Priority::kNormal, /*model=*/0);
  queue.submit(batch[1], 0.001, serve::Priority::kNormal, /*model=*/1);
  queue.submit(batch[2], 0.002, serve::Priority::kNormal, /*model=*/0);
  queue.submit(batch[3], 0.003, serve::Priority::kNormal, /*model=*/1);
  // Depth-capped: the fifth submission sheds, charged to ITS model.
  EXPECT_EQ(queue.try_submit(batch[4], 0.004, serve::Priority::kNormal,
                             /*model=*/1),
            std::nullopt);
  queue.close();

  serve::ServerConfig cfg;
  cfg.with_device(rtx2080ti()).with_engine(torchsparse_config());
  serve::SloBatchingPolicy batching(cfg.batcher, cfg.priority,
                                    serve::model_batching_infos(models));
  const auto routing = serve::make_routing_policy(cfg.shard.route);
  const serve::StreamReport report =
      serve::serve_stream(models, queue, cfg, batching, *routing);

  EXPECT_EQ(report.stats.rejected, 1u);
  ASSERT_EQ(report.stats.per_model.size(), 2u);
  EXPECT_EQ(report.stats.per_model[0].completed, 2u);
  EXPECT_EQ(report.stats.per_model[1].completed, 2u);
  EXPECT_EQ(report.stats.per_model[0].rejected, 0u);
  EXPECT_EQ(report.stats.per_model[1].rejected, 1u);
}

}  // namespace
}  // namespace ts
