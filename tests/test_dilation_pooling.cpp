// Dilated convolution (the Fig. 5 API's dilation parameter) and global
// pooling tests.
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "core/conv3d.hpp"
#include "core/dense_reference.hpp"
#include "engines/presets.hpp"
#include "gpusim/device.hpp"
#include "nn/layers.hpp"
#include "nn/pooling.hpp"

namespace ts {
namespace {

SparseTensor random_tensor(int n, int extent, std::size_t channels,
                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::uniform_real_distribution<float> f(-1.0f, 1.0f);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  Matrix feats(coords.size(), channels);
  for (std::size_t i = 0; i < feats.size(); ++i) feats.data()[i] = f(rng);
  return SparseTensor(std::move(coords), std::move(feats));
}

ExecContext fp32_ctx() {
  EngineConfig cfg = torchsparse_config();
  cfg.precision = Precision::kFP32;
  ExecContext ctx(rtx2080ti(), cfg);
  ctx.compute_numerics = true;
  return ctx;
}

class DilationOracle : public ::testing::TestWithParam<int> {};

TEST_P(DilationOracle, MatchesDenseReference) {
  const int dilation = GetParam();
  const SparseTensor x = random_tensor(200, 12, 6, 70u + dilation);
  std::mt19937_64 rng(80u + dilation);
  Conv3dParams p;
  p.geom = ConvGeometry{3, 1, false, dilation};
  p.weights = spnn::make_conv_weights(3, 6, 8, rng);
  ExecContext ctx = fp32_ctx();
  const SparseTensor y = sparse_conv3d(x, p, ctx);
  const Matrix ref =
      dense_reference_conv(x.coords(), x.feats(), y.coords(), p);
  EXPECT_LT(max_abs_diff(y.feats(), ref), 2e-5f);
  EXPECT_EQ(y.coords(), x.coords());  // dilation keeps P_out == P_in
}

INSTANTIATE_TEST_SUITE_P(Dilations, DilationOracle,
                         ::testing::Values(1, 2, 3));

TEST(Dilation, DifferentDilationsGetDifferentCachedMaps) {
  const SparseTensor x = random_tensor(150, 10, 4, 90);
  std::mt19937_64 rng(91);
  Conv3dParams p1, p2;
  p1.geom = ConvGeometry{3, 1, false, 1};
  p2.geom = ConvGeometry{3, 1, false, 2};
  p1.weights = spnn::make_conv_weights(3, 4, 4, rng);
  p2.weights = spnn::make_conv_weights(3, 4, 4, rng);
  ExecContext ctx = fp32_ctx();
  sparse_conv3d(x, p1, ctx);
  sparse_conv3d(x, p2, ctx);
  EXPECT_EQ(x.cache()->kmaps.size(), 2u);  // no false sharing
}

TEST(Dilation, IsolatedNeighborsOnlyVisibleAtMatchingDilation) {
  // Two points 2 apart: invisible to a dilation-1 K=3 conv (offsets +-1),
  // visible to dilation-2.
  std::vector<Coord> coords = {{0, 10, 10, 10}, {0, 12, 10, 10}};
  Matrix feats(2, 2);
  feats.at(0, 0) = 1.0f;
  feats.at(1, 0) = 1.0f;
  std::mt19937_64 rng(92);
  for (int dil : {1, 2}) {
    Conv3dParams p;
    p.geom = ConvGeometry{3, 1, false, dil};
    p.weights = spnn::make_conv_weights(3, 2, 2, rng);
    ExecContext ctx = fp32_ctx();
    SparseTensor x(coords, feats);
    const SparseTensor y = sparse_conv3d(x, p, ctx);
    // With dilation 1 only the center weight contributes; with dilation 2
    // the neighbor also contributes, so the results must differ from the
    // center-only value.
    Matrix center_only;
    mm(feats, p.weights[13], center_only);
    const float diff = max_abs_diff(y.feats(), center_only);
    if (dil == 1) {
      EXPECT_LT(diff, 1e-6f);
    } else {
      EXPECT_GT(diff, 1e-4f);
    }
  }
}

TEST(GlobalPool, AvgAndMaxOverSingleBatch) {
  std::vector<Coord> coords = {{0, 1, 1, 1}, {0, 2, 2, 2}, {0, 3, 3, 3}};
  Matrix feats(3, 2);
  feats.at(0, 0) = 1;
  feats.at(1, 0) = 5;
  feats.at(2, 0) = 3;
  feats.at(0, 1) = -2;
  feats.at(1, 1) = -8;
  feats.at(2, 1) = -5;
  SparseTensor x(coords, feats);
  ExecContext ctx = fp32_ctx();
  const Matrix avg = spnn::global_pool(x, spnn::PoolKind::kAvg, ctx);
  const Matrix mx = spnn::global_pool(x, spnn::PoolKind::kMax, ctx);
  ASSERT_EQ(avg.rows(), 1u);
  EXPECT_FLOAT_EQ(avg.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(avg.at(0, 1), -5.0f);
  EXPECT_FLOAT_EQ(mx.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(mx.at(0, 1), -2.0f);
}

TEST(GlobalPool, PerBatchSeparation) {
  std::vector<Coord> coords = {{0, 1, 1, 1}, {1, 1, 1, 1}, {1, 2, 2, 2}};
  Matrix feats(3, 1);
  feats.at(0, 0) = 10;
  feats.at(1, 0) = 2;
  feats.at(2, 0) = 4;
  SparseTensor x(coords, feats);
  ExecContext ctx = fp32_ctx();
  const Matrix avg = spnn::global_pool(x, spnn::PoolKind::kAvg, ctx);
  ASSERT_EQ(avg.rows(), 2u);
  EXPECT_FLOAT_EQ(avg.at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(avg.at(1, 0), 3.0f);
}

TEST(GlobalPool, EmptyTensor) {
  SparseTensor x({}, Matrix(0, 4));
  ExecContext ctx = fp32_ctx();
  const Matrix out = spnn::global_pool(x, spnn::PoolKind::kMax, ctx);
  EXPECT_EQ(out.rows(), 0u);
}

TEST(GlobalPool, ChargesMiscStage) {
  const SparseTensor x = random_tensor(100, 8, 8, 93);
  ExecContext ctx = fp32_ctx();
  spnn::global_pool(x, spnn::PoolKind::kAvg, ctx);
  EXPECT_GT(ctx.timeline.stage_seconds(Stage::kMisc), 0.0);
}

}  // namespace
}  // namespace ts
