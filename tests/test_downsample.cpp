// Output coordinate calculation (Alg. 3): staged vs fused equivalence,
// oracle comparison, and the Fig. 10 DRAM-traffic reduction.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <unordered_set>

#include "core/downsample.hpp"
#include "core/kernel_offsets.hpp"
#include "hash/grid_hashmap.hpp"

namespace ts {
namespace {

std::vector<Coord> random_coords(int n, int extent, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> d(0, extent);
  std::vector<Coord> coords;
  std::unordered_set<uint64_t> seen;
  while (static_cast<int>(coords.size()) < n) {
    const Coord c{0, d(rng), d(rng), d(rng)};
    if (seen.insert(pack_coord(c)).second) coords.push_back(c);
  }
  return coords;
}

/// Literal Alg. 3 oracle.
std::set<uint64_t> oracle(const std::vector<Coord>& in, int k, int s) {
  Coord lo, hi;
  coord_bounds(in, lo, hi);
  const auto offs = kernel_offsets(k);
  std::set<uint64_t> out;
  for (const Coord& p : in) {
    for (const Offset3& d : offs) {
      const Coord u{p.b, p.x - d.dx, p.y - d.dy, p.z - d.dz};
      auto mod = [s](int32_t v) { return ((v % s) + s) % s == 0; };
      if (!(mod(u.x) && mod(u.y) && mod(u.z))) continue;
      if (u.x < lo.x || u.x > hi.x || u.y < lo.y || u.y > hi.y ||
          u.z < lo.z || u.z > hi.z)
        continue;
      out.insert(pack_coord(Coord{u.b, u.x / s, u.y / s, u.z / s}));
    }
  }
  return out;
}

struct DsCase {
  int n, extent, kernel, stride;
};

class DownsampleOracle : public ::testing::TestWithParam<DsCase> {};

TEST_P(DownsampleOracle, FusedAndStagedMatchOracle) {
  const auto [n, extent, kernel, stride] = GetParam();
  const auto in = random_coords(n, extent, 123 + n);
  const auto expect = oracle(in, kernel, stride);

  for (bool fused : {false, true}) {
    const auto got = downsample_coords(in, kernel, stride, fused, fused);
    std::set<uint64_t> got_keys;
    for (const Coord& c : got) got_keys.insert(pack_coord(c));
    EXPECT_EQ(got_keys, expect) << "fused=" << fused;
    EXPECT_EQ(got.size(), got_keys.size()) << "duplicates in output";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DownsampleOracle,
    ::testing::Values(DsCase{50, 8, 2, 2}, DsCase{200, 16, 2, 2},
                      DsCase{100, 12, 3, 2}, DsCase{80, 10, 3, 3},
                      DsCase{150, 20, 2, 4}, DsCase{1, 1, 2, 2}));

TEST(Downsample, OutputSortedAndDeduplicated) {
  const auto in = random_coords(300, 15, 5);
  const auto out = downsample_coords(in, 2, 2, true, true);
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_LT(pack_coord(out[i - 1]), pack_coord(out[i]));
}

TEST(Downsample, Kernel2Stride2IsFloorDivision) {
  // For K=2, s=2, every input maps to exactly floor(p/2) and nothing else.
  const auto in = random_coords(200, 31, 6);
  const auto out = downsample_coords(in, 2, 2, true, true);
  std::set<uint64_t> expect;
  for (const Coord& p : in)
    expect.insert(pack_coord(Coord{p.b, p.x / 2, p.y / 2, p.z / 2}));
  std::set<uint64_t> got;
  for (const Coord& c : out) got.insert(pack_coord(c));
  EXPECT_EQ(got, expect);
}

TEST(Downsample, FusedEliminatesIntermediateDram) {
  const auto in = random_coords(2000, 40, 7);
  DownsampleCounters staged, fused;
  downsample_coords(in, 3, 2, false, false, &staged);
  downsample_coords(in, 3, 2, true, true, &fused);
  EXPECT_EQ(staged.candidates, fused.candidates);
  EXPECT_EQ(staged.kept, fused.kept);
  // Fig. 10: the staged pipeline round-trips candidates through DRAM
  // several times; the fused kernel reads inputs once and writes keys.
  EXPECT_GT(staged.dram_bytes, 3.0 * fused.dram_bytes);
  EXPECT_GT(staged.kernel_launches, fused.kernel_launches);
}

TEST(Downsample, SimplifiedControlReducesInstructions) {
  const auto in = random_coords(1000, 30, 8);
  DownsampleCounters plain, simplified;
  downsample_coords(in, 2, 2, true, false, &plain);
  downsample_coords(in, 2, 2, true, true, &simplified);
  EXPECT_GT(plain.instr_ops, simplified.instr_ops);
}

TEST(Downsample, StrideMustDividePointsConsistently) {
  // Points on the strided grid survive as themselves divided by s.
  std::vector<Coord> in = {{0, 0, 0, 0}, {0, 4, 4, 4}, {0, 8, 0, 4}};
  const auto out = downsample_coords(in, 2, 2, true, true);
  std::set<uint64_t> got;
  for (const Coord& c : out) got.insert(pack_coord(c));
  EXPECT_TRUE(got.count(pack_coord(Coord{0, 0, 0, 0})));
  EXPECT_TRUE(got.count(pack_coord(Coord{0, 2, 2, 2})));
  EXPECT_TRUE(got.count(pack_coord(Coord{0, 4, 0, 2})));
}

}  // namespace
}  // namespace ts
