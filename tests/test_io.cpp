// Serialization round-trip and malformed-input tests.
#include <gtest/gtest.h>

#include <sstream>

#include "data/voxelize.hpp"
#include "io/serialize.hpp"

namespace ts {
namespace {

TEST(Io, PointsRoundTrip) {
  LidarSpec spec = nuscenes_spec(1);
  spec.azimuth_steps = 100;
  const auto pts = generate_scan(spec, 5);
  std::stringstream ss;
  io::save_points(ss, pts);
  const auto back = io::load_points(ss);
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(back[i].x, pts[i].x);
    EXPECT_EQ(back[i].intensity, pts[i].intensity);
    EXPECT_EQ(back[i].time, pts[i].time);
  }
}

TEST(Io, EmptyPointsRoundTrip) {
  std::stringstream ss;
  io::save_points(ss, {});
  EXPECT_TRUE(io::load_points(ss).empty());
}

TEST(Io, TensorRoundTrip) {
  LidarSpec spec = semantic_kitti_spec();
  spec.azimuth_steps = 80;
  const SparseTensor t = make_input(spec, segmentation_voxels(), 7);
  std::stringstream ss;
  io::save_tensor(ss, t);
  const SparseTensor back = io::load_tensor(ss);
  EXPECT_EQ(back.coords(), t.coords());
  EXPECT_EQ(back.feats(), t.feats());
  EXPECT_EQ(back.stride(), t.stride());
}

TEST(Io, TensorFileRoundTrip) {
  std::vector<Coord> coords = {{0, 1, 2, 3}, {1, 4, 5, 6}};
  Matrix feats(2, 3);
  feats.at(0, 0) = 1.5f;
  feats.at(1, 2) = -2.25f;
  const SparseTensor t(coords, feats);
  const std::string path = "/tmp/ts_io_test.tsten";
  io::save_tensor_file(path, t);
  const SparseTensor back = io::load_tensor_file(path);
  EXPECT_EQ(back.coords(), t.coords());
  EXPECT_EQ(back.feats(), t.feats());
}

TEST(Io, RejectsBadMagic) {
  std::stringstream ss;
  ss << "not a tensor file at all, definitely";
  EXPECT_THROW(io::load_tensor(ss), std::runtime_error);
  std::stringstream ss2;
  ss2 << "garbage";
  EXPECT_THROW(io::load_points(ss2), std::runtime_error);
}

TEST(Io, RejectsTruncatedStream) {
  std::vector<Coord> coords = {{0, 1, 1, 1}};
  const SparseTensor t(coords, Matrix(1, 4, 1.0f));
  std::stringstream ss;
  io::save_tensor(ss, t);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(io::load_tensor(cut), std::runtime_error);
}

TEST(Io, RejectsCrossFormatLoads) {
  std::stringstream ss;
  io::save_points(ss, {Point3{1, 2, 3, 0.5f, 0}});
  EXPECT_THROW(io::load_tensor(ss), std::runtime_error);
}

TEST(Io, TimelineCsvContainsAllStages) {
  Timeline t;
  t.add(Stage::kGather, 0.001);
  t.add(Stage::kNMS, 0.0005);
  const std::string csv = io::timeline_csv(t);
  EXPECT_NE(csv.find("Gather,0.001"), std::string::npos);
  EXPECT_NE(csv.find("NMS,0.0005"), std::string::npos);
  EXPECT_NE(csv.find("total,"), std::string::npos);
  EXPECT_NE(csv.find("Mapping,0"), std::string::npos);
}

}  // namespace
}  // namespace ts
