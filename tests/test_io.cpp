// Serialization round-trip and malformed-input tests.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "data/voxelize.hpp"
#include "io/serialize.hpp"

namespace ts {
namespace {

TEST(Io, PointsRoundTrip) {
  LidarSpec spec = nuscenes_spec(1);
  spec.azimuth_steps = 100;
  const auto pts = generate_scan(spec, 5);
  std::stringstream ss;
  io::save_points(ss, pts);
  const auto back = io::load_points(ss);
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(back[i].x, pts[i].x);
    EXPECT_EQ(back[i].intensity, pts[i].intensity);
    EXPECT_EQ(back[i].time, pts[i].time);
  }
}

TEST(Io, EmptyPointsRoundTrip) {
  std::stringstream ss;
  io::save_points(ss, {});
  EXPECT_TRUE(io::load_points(ss).empty());
}

TEST(Io, TensorRoundTrip) {
  LidarSpec spec = semantic_kitti_spec();
  spec.azimuth_steps = 80;
  const SparseTensor t = make_input(spec, segmentation_voxels(), 7);
  std::stringstream ss;
  io::save_tensor(ss, t);
  const SparseTensor back = io::load_tensor(ss);
  EXPECT_EQ(back.coords(), t.coords());
  EXPECT_EQ(back.feats(), t.feats());
  EXPECT_EQ(back.stride(), t.stride());
}

TEST(Io, TensorFileRoundTrip) {
  std::vector<Coord> coords = {{0, 1, 2, 3}, {1, 4, 5, 6}};
  Matrix feats(2, 3);
  feats.at(0, 0) = 1.5f;
  feats.at(1, 2) = -2.25f;
  const SparseTensor t(coords, feats);
  const std::string path = "/tmp/ts_io_test.tsten";
  io::save_tensor_file(path, t);
  const SparseTensor back = io::load_tensor_file(path);
  EXPECT_EQ(back.coords(), t.coords());
  EXPECT_EQ(back.feats(), t.feats());
}

TEST(Io, RejectsBadMagic) {
  std::stringstream ss;
  ss << "not a tensor file at all, definitely";
  EXPECT_THROW(io::load_tensor(ss), std::runtime_error);
  std::stringstream ss2;
  ss2 << "garbage";
  EXPECT_THROW(io::load_points(ss2), std::runtime_error);
}

TEST(Io, RejectsTruncatedStream) {
  std::vector<Coord> coords = {{0, 1, 1, 1}};
  const SparseTensor t(coords, Matrix(1, 4, 1.0f));
  std::stringstream ss;
  io::save_tensor(ss, t);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(io::load_tensor(cut), std::runtime_error);
}

TEST(Io, RejectsCrossFormatLoads) {
  std::stringstream ss;
  io::save_points(ss, {Point3{1, 2, 3, 0.5f, 0}});
  EXPECT_THROW(io::load_tensor(ss), std::runtime_error);
}

// Header layout of the tensor format (all little-endian):
// [magic u32][version u32][points u64][channels u64][stride i32][coords...]
constexpr std::size_t kChannelsOffset = 4 + 4 + 8;
constexpr std::size_t kStrideOffset = kChannelsOffset + 8;

std::string serialized(const SparseTensor& t) {
  std::stringstream ss;
  io::save_tensor(ss, t);
  return ss.str();
}

TEST(Io, RejectsZeroChannelsWithNonzeroPoints) {
  // Regression (ROADMAP "Hardening", io/serialize load sweep): a corrupt
  // header claiming 0 channels for a populated tensor used to produce a
  // structurally impossible tensor (points with no features); it must be
  // rejected at the format boundary.
  std::vector<Coord> coords = {{0, 1, 2, 3}, {0, 4, 5, 6}};
  std::string bytes = serialized(SparseTensor(coords, Matrix(2, 3, 1.0f)));
  for (std::size_t i = 0; i < 8; ++i) bytes[kChannelsOffset + i] = '\0';
  std::stringstream corrupt(bytes);
  try {
    io::load_tensor(corrupt);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "channel count 0 with nonzero points");
  }
  // 0 channels with 0 points stays legal (an empty tensor round-trips).
  std::stringstream empty;
  io::save_tensor(empty, SparseTensor({}, Matrix(0, 0)));
  EXPECT_EQ(io::load_tensor(empty).num_points(), 0u);
}

TEST(Io, RejectsNonFiniteFeatureValues) {
  // Downstream numerics (pooling averages, BatchNorm) assume finite
  // features; NaN/Inf in the stream is corruption, not data.
  std::vector<Coord> coords = {{0, 1, 1, 1}};
  Matrix nan_feats(1, 2, 1.0f);
  nan_feats.at(0, 1) = std::numeric_limits<float>::quiet_NaN();
  std::stringstream with_nan(serialized(SparseTensor(coords, nan_feats)));
  EXPECT_THROW(io::load_tensor(with_nan), std::runtime_error);

  Matrix inf_feats(1, 2, 1.0f);
  inf_feats.at(0, 0) = std::numeric_limits<float>::infinity();
  std::stringstream with_inf(serialized(SparseTensor(coords, inf_feats)));
  EXPECT_THROW(io::load_tensor(with_inf), std::runtime_error);
}

TEST(Io, RejectsCoordinateStrideOverflow) {
  // A stride-s coordinate is a stride-1 lattice point divided by s; a
  // (coordinate, stride) pair whose product leaves the packable grid
  // cannot have come from this engine and would overflow grid
  // addressing. Construct one via the derived-tensor constructor (the
  // save path does not re-validate semantic invariants).
  std::vector<Coord> coords = {{0, kCoordSpatialMax, 0, 0}};
  const SparseTensor base(coords, Matrix(1, 2, 1.0f));
  const SparseTensor strided(base.coords_ptr(), base.feats(), 1 << 16,
                             base.cache());
  std::stringstream ss(serialized(strided));
  try {
    io::load_tensor(ss);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(),
                 "coordinate/stride combination overflows grid addressing");
  }
}

TEST(Io, RejectsImplausibleStride) {
  std::vector<Coord> coords = {{0, 1, 1, 1}};
  const SparseTensor base(coords, Matrix(1, 2, 1.0f));
  const SparseTensor strided(base.coords_ptr(), base.feats(),
                             kCoordSpatialMax + 1, base.cache());
  std::stringstream too_big(serialized(strided));
  EXPECT_THROW(io::load_tensor(too_big), std::runtime_error);

  // Negative stride via byte patching (the derived constructor would be
  // a caller bug; the stream is adversarial input).
  std::string bytes = serialized(base);
  bytes[kStrideOffset + 3] = static_cast<char>(0x80);  // sign bit
  std::stringstream negative(bytes);
  EXPECT_THROW(io::load_tensor(negative), std::runtime_error);
}

TEST(Io, RejectsTruncatedCoordBlock) {
  std::vector<Coord> coords = {{0, 1, 1, 1}, {0, 2, 2, 2}};
  const std::string full = serialized(SparseTensor(coords, Matrix(2, 2)));
  // Cut inside the second coordinate record, before any feature bytes.
  std::stringstream cut(full.substr(0, kStrideOffset + 4 + 16 + 8));
  EXPECT_THROW(io::load_tensor(cut), std::runtime_error);
}

// --- Map-cache snapshots (.tsmc) --------------------------------------
//
// Byte layout under test (all little-endian):
//   [magic u32 @0][version u32 @4][byte_budget u64 @8][count u64 @16]
//   per entry: [key.lo u64][key.hi u64][build_wall_seconds f64]
//              [declared bytes u64][kind u8][payload...]
// so entry 0 starts at offset 24 with its kind byte at offset 56.
constexpr std::size_t kSnapCountOffset = 16;
constexpr std::size_t kSnapEntry0 = 24;
constexpr std::size_t kSnapEntryHeader = 8 + 8 + 8 + 8 + 1;
constexpr std::size_t kSnapBuildTimeOffset = kSnapEntry0 + 16;
constexpr std::size_t kSnapDeclaredOffset = kSnapEntry0 + 24;
constexpr std::size_t kSnapKindOffset = kSnapEntry0 + 32;

/// One kernel-map entry followed by one downsample-coords entry — both
/// payload kinds in one stream, in a deterministic hand-built shape so
/// corruption offsets are computable.
MapCacheSnapshot sample_snapshot() {
  MapCacheSnapshot snap;
  snap.byte_budget = std::size_t(1) << 20;

  auto km = std::make_shared<KernelMap>();
  km->kernel_size = 3;
  km->maps.resize(2);
  km->maps[0].push_back({0, 1});
  km->maps[1].push_back({1, 0});
  km->stats.queries = 4;
  km->stats.index_accesses = 2;
  km->stats.build_accesses = 8;
  km->stats.used_symmetry = false;
  km->stats.backend = MapBackend::kGrid;
  MapCacheSnapshotEntry kmap_entry;
  kmap_entry.key = {0x1111, 0x2222};
  kmap_entry.payload.kmap = std::move(km);
  kmap_entry.bytes = map_cache_payload_bytes(kmap_entry.payload);
  kmap_entry.build_wall_seconds = 0.5;
  snap.entries.push_back(std::move(kmap_entry));

  auto cs = std::make_shared<std::vector<Coord>>(
      std::vector<Coord>{{0, 1, 2, 3}, {0, 4, 5, 6}, {1, 7, 8, 9}});
  MapCacheSnapshotEntry coords_entry;
  coords_entry.key = {0x3333, 0x4444};
  coords_entry.payload.coords = std::move(cs);
  coords_entry.payload.ds_counters.kernel_launches = 3;
  coords_entry.payload.ds_counters.dram_bytes = 1234.5;
  coords_entry.payload.ds_counters.instr_ops = 67.0;
  coords_entry.payload.ds_counters.candidates = 24;
  coords_entry.payload.ds_counters.kept = 3;
  coords_entry.bytes = map_cache_payload_bytes(coords_entry.payload);
  coords_entry.build_wall_seconds = 0.25;
  snap.entries.push_back(std::move(coords_entry));
  return snap;
}

std::string snapshot_bytes(const MapCacheSnapshot& snap) {
  std::stringstream ss;
  io::save_map_cache(ss, snap);
  return ss.str();
}

/// Offset of entry 1 in the sample image = header + entry 0's extent,
/// measured by serializing a one-entry snapshot rather than hand-adding
/// payload field sizes.
std::size_t sample_entry1_offset() {
  MapCacheSnapshot head = sample_snapshot();
  head.entries.pop_back();
  return snapshot_bytes(head).size();
}

void expect_load_error(std::string bytes, const std::string& needle) {
  std::stringstream corrupt(std::move(bytes));
  try {
    io::load_map_cache(corrupt);
    FAIL() << "expected std::runtime_error containing '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(MapCacheIo, FileRoundTrip) {
  const MapCacheSnapshot snap = sample_snapshot();
  const std::string path = "/tmp/ts_io_test.tsmc";
  io::save_map_cache_file(path, snap);
  const MapCacheSnapshot back = io::load_map_cache_file(path);
  EXPECT_EQ(back.byte_budget, snap.byte_budget);
  ASSERT_EQ(back.entries.size(), snap.entries.size());
  for (std::size_t i = 0; i < snap.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].key, snap.entries[i].key);
    EXPECT_EQ(back.entries[i].bytes, snap.entries[i].bytes);
    EXPECT_DOUBLE_EQ(back.entries[i].build_wall_seconds,
                     snap.entries[i].build_wall_seconds);
  }
  EXPECT_TRUE(back.entries[0].payload.kmap);
  EXPECT_TRUE(back.entries[1].payload.coords);
  EXPECT_EQ(back.entries[1].payload.coords->size(), 3u);
  EXPECT_DOUBLE_EQ(back.entries[1].payload.ds_counters.dram_bytes, 1234.5);

  EXPECT_THROW(io::load_map_cache_file("/tmp/ts_io_does_not_exist.tsmc"),
               std::runtime_error);
}

TEST(MapCacheIo, RejectsTruncatedSnapshot) {
  const std::string full = snapshot_bytes(sample_snapshot());
  // Cut inside the header, inside entry 0, and one byte short of the
  // end: each is a loud error, never a silently shorter cache.
  for (const std::size_t cut :
       {std::size_t(6), kSnapEntry0 + 10, full.size() - 1}) {
    expect_load_error(full.substr(0, cut), "truncated stream");
  }
}

TEST(MapCacheIo, RejectsBadMagicAndVersion) {
  const std::string full = snapshot_bytes(sample_snapshot());
  std::string bad_magic = full;
  bad_magic[0] = 'X';
  expect_load_error(std::move(bad_magic), "bad magic");
  std::string bad_version = full;
  bad_version[4] = 9;
  expect_load_error(std::move(bad_version), "unsupported version");
}

TEST(MapCacheIo, RejectsImplausibleEntryCount) {
  std::string bytes = snapshot_bytes(sample_snapshot());
  // Patch the count's 4th byte: 2 entries become 2 + 2^24, past the
  // loader's plausibility limit — rejected before any allocation.
  bytes[kSnapCountOffset + 3] = 1;
  expect_load_error(std::move(bytes), "implausible element count");
}

TEST(MapCacheIo, RejectsOverBudgetEntry) {
  MapCacheSnapshot snap = sample_snapshot();
  std::string bytes = snapshot_bytes(snap);
  const uint64_t declared = static_cast<uint64_t>(snap.byte_budget) + 1;
  std::memcpy(&bytes[kSnapDeclaredOffset], &declared, sizeof(declared));
  expect_load_error(std::move(bytes),
                    "past the snapshot's own byte budget");
}

TEST(MapCacheIo, RejectsDigestPayloadMismatch) {
  std::string bytes = snapshot_bytes(sample_snapshot());
  uint64_t declared = 0;
  std::memcpy(&declared, &bytes[kSnapDeclaredOffset], sizeof(declared));
  ++declared;  // still under budget, but no longer what the payload is
  std::memcpy(&bytes[kSnapDeclaredOffset], &declared, sizeof(declared));
  expect_load_error(std::move(bytes), "snapshot digest/payload mismatch");
}

TEST(MapCacheIo, RejectsNegativeBuildTime) {
  std::string bytes = snapshot_bytes(sample_snapshot());
  bytes[kSnapBuildTimeOffset + 7] |= char(0x80);  // f64 sign bit
  expect_load_error(std::move(bytes),
                    "non-finite or negative build time");
}

TEST(MapCacheIo, RejectsUnknownPayloadKind) {
  std::string bytes = snapshot_bytes(sample_snapshot());
  bytes[kSnapKindOffset] = 7;
  expect_load_error(std::move(bytes), "unknown payload kind in snapshot");
}

TEST(MapCacheIo, RejectsCorruptKernelMapPayload) {
  const std::string full = snapshot_bytes(sample_snapshot());
  // kernel_size (i32) sits right after entry 0's kind byte.
  std::string zero_kernel = full;
  for (std::size_t i = 0; i < 4; ++i) zero_kernel[kSnapKindOffset + 1 + i] = 0;
  expect_load_error(std::move(zero_kernel),
                    "implausible kernel size in snapshot");

  // First pair's `in` index: kernel_size(4) + volume(8) + map-0 count(8).
  const std::size_t in_offset = kSnapKindOffset + 1 + 4 + 8 + 8;
  std::string negative_index = full;
  negative_index[in_offset + 3] = char(0x80);
  expect_load_error(std::move(negative_index),
                    "negative kernel-map index in snapshot");

  // Entry 0's last two bytes are the symmetry flag and the backend tag.
  const std::size_t entry1 = sample_entry1_offset();
  std::string bad_backend = full;
  bad_backend[entry1 - 1] = 2;
  expect_load_error(std::move(bad_backend), "bad map backend in snapshot");
  std::string bad_symmetry = full;
  bad_symmetry[entry1 - 2] = 2;
  expect_load_error(std::move(bad_symmetry), "bad symmetry flag in snapshot");
}

TEST(MapCacheIo, RejectsCorruptCoordsPayload) {
  const std::string full = snapshot_bytes(sample_snapshot());
  const std::size_t entry1 = sample_entry1_offset();
  // First coordinate's x field: entry header + coord count + Coord::b.
  const std::size_t x_offset = entry1 + kSnapEntryHeader + 8 + 4;
  std::string huge_coord = full;
  huge_coord[x_offset + 2] = char(0xFF);
  huge_coord[x_offset + 3] = char(0x7F);
  expect_load_error(std::move(huge_coord),
                    "coordinate out of range in snapshot");

  // dram_bytes (f64) is 4th-from-last of the five trailing counters.
  const std::size_t dram_offset = full.size() - 8 * 4;
  std::string negative_dram = full;
  negative_dram[dram_offset + 7] |= char(0x80);
  expect_load_error(std::move(negative_dram),
                    "non-finite or negative downsample counter in snapshot");
}

TEST(MapCacheIo, RejectsDuplicateDigest) {
  MapCacheSnapshot snap = sample_snapshot();
  snap.entries[1].key = snap.entries[0].key;
  // The save path doesn't deduplicate (it trusts the exporting cache,
  // whose map can't hold duplicates); the loader must.
  expect_load_error(snapshot_bytes(snap), "duplicate digest in snapshot");
}

TEST(MapCacheIo, SaveRejectsMalformedEntries) {
  // Exactly one payload per entry: zero or both is a caller bug the
  // writer refuses to serialize rather than emit an unloadable stream.
  MapCacheSnapshot empty_payload = sample_snapshot();
  empty_payload.entries[0].payload.kmap.reset();
  std::stringstream ss;
  EXPECT_THROW(io::save_map_cache(ss, empty_payload), std::runtime_error);

  MapCacheSnapshot both = sample_snapshot();
  both.entries[0].payload.coords = both.entries[1].payload.coords;
  std::stringstream ss2;
  EXPECT_THROW(io::save_map_cache(ss2, both), std::runtime_error);
}

TEST(Io, TimelineCsvContainsAllStages) {
  Timeline t;
  t.add(Stage::kGather, 0.001);
  t.add(Stage::kNMS, 0.0005);
  const std::string csv = io::timeline_csv(t);
  EXPECT_NE(csv.find("Gather,0.001"), std::string::npos);
  EXPECT_NE(csv.find("NMS,0.0005"), std::string::npos);
  EXPECT_NE(csv.find("total,"), std::string::npos);
  EXPECT_NE(csv.find("Mapping,0"), std::string::npos);
}

}  // namespace
}  // namespace ts
