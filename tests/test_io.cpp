// Serialization round-trip and malformed-input tests.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "data/voxelize.hpp"
#include "io/serialize.hpp"

namespace ts {
namespace {

TEST(Io, PointsRoundTrip) {
  LidarSpec spec = nuscenes_spec(1);
  spec.azimuth_steps = 100;
  const auto pts = generate_scan(spec, 5);
  std::stringstream ss;
  io::save_points(ss, pts);
  const auto back = io::load_points(ss);
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(back[i].x, pts[i].x);
    EXPECT_EQ(back[i].intensity, pts[i].intensity);
    EXPECT_EQ(back[i].time, pts[i].time);
  }
}

TEST(Io, EmptyPointsRoundTrip) {
  std::stringstream ss;
  io::save_points(ss, {});
  EXPECT_TRUE(io::load_points(ss).empty());
}

TEST(Io, TensorRoundTrip) {
  LidarSpec spec = semantic_kitti_spec();
  spec.azimuth_steps = 80;
  const SparseTensor t = make_input(spec, segmentation_voxels(), 7);
  std::stringstream ss;
  io::save_tensor(ss, t);
  const SparseTensor back = io::load_tensor(ss);
  EXPECT_EQ(back.coords(), t.coords());
  EXPECT_EQ(back.feats(), t.feats());
  EXPECT_EQ(back.stride(), t.stride());
}

TEST(Io, TensorFileRoundTrip) {
  std::vector<Coord> coords = {{0, 1, 2, 3}, {1, 4, 5, 6}};
  Matrix feats(2, 3);
  feats.at(0, 0) = 1.5f;
  feats.at(1, 2) = -2.25f;
  const SparseTensor t(coords, feats);
  const std::string path = "/tmp/ts_io_test.tsten";
  io::save_tensor_file(path, t);
  const SparseTensor back = io::load_tensor_file(path);
  EXPECT_EQ(back.coords(), t.coords());
  EXPECT_EQ(back.feats(), t.feats());
}

TEST(Io, RejectsBadMagic) {
  std::stringstream ss;
  ss << "not a tensor file at all, definitely";
  EXPECT_THROW(io::load_tensor(ss), std::runtime_error);
  std::stringstream ss2;
  ss2 << "garbage";
  EXPECT_THROW(io::load_points(ss2), std::runtime_error);
}

TEST(Io, RejectsTruncatedStream) {
  std::vector<Coord> coords = {{0, 1, 1, 1}};
  const SparseTensor t(coords, Matrix(1, 4, 1.0f));
  std::stringstream ss;
  io::save_tensor(ss, t);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(io::load_tensor(cut), std::runtime_error);
}

TEST(Io, RejectsCrossFormatLoads) {
  std::stringstream ss;
  io::save_points(ss, {Point3{1, 2, 3, 0.5f, 0}});
  EXPECT_THROW(io::load_tensor(ss), std::runtime_error);
}

// Header layout of the tensor format (all little-endian):
// [magic u32][version u32][points u64][channels u64][stride i32][coords...]
constexpr std::size_t kChannelsOffset = 4 + 4 + 8;
constexpr std::size_t kStrideOffset = kChannelsOffset + 8;

std::string serialized(const SparseTensor& t) {
  std::stringstream ss;
  io::save_tensor(ss, t);
  return ss.str();
}

TEST(Io, RejectsZeroChannelsWithNonzeroPoints) {
  // Regression (ROADMAP "Hardening", io/serialize load sweep): a corrupt
  // header claiming 0 channels for a populated tensor used to produce a
  // structurally impossible tensor (points with no features); it must be
  // rejected at the format boundary.
  std::vector<Coord> coords = {{0, 1, 2, 3}, {0, 4, 5, 6}};
  std::string bytes = serialized(SparseTensor(coords, Matrix(2, 3, 1.0f)));
  for (std::size_t i = 0; i < 8; ++i) bytes[kChannelsOffset + i] = '\0';
  std::stringstream corrupt(bytes);
  try {
    io::load_tensor(corrupt);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "channel count 0 with nonzero points");
  }
  // 0 channels with 0 points stays legal (an empty tensor round-trips).
  std::stringstream empty;
  io::save_tensor(empty, SparseTensor({}, Matrix(0, 0)));
  EXPECT_EQ(io::load_tensor(empty).num_points(), 0u);
}

TEST(Io, RejectsNonFiniteFeatureValues) {
  // Downstream numerics (pooling averages, BatchNorm) assume finite
  // features; NaN/Inf in the stream is corruption, not data.
  std::vector<Coord> coords = {{0, 1, 1, 1}};
  Matrix nan_feats(1, 2, 1.0f);
  nan_feats.at(0, 1) = std::numeric_limits<float>::quiet_NaN();
  std::stringstream with_nan(serialized(SparseTensor(coords, nan_feats)));
  EXPECT_THROW(io::load_tensor(with_nan), std::runtime_error);

  Matrix inf_feats(1, 2, 1.0f);
  inf_feats.at(0, 0) = std::numeric_limits<float>::infinity();
  std::stringstream with_inf(serialized(SparseTensor(coords, inf_feats)));
  EXPECT_THROW(io::load_tensor(with_inf), std::runtime_error);
}

TEST(Io, RejectsCoordinateStrideOverflow) {
  // A stride-s coordinate is a stride-1 lattice point divided by s; a
  // (coordinate, stride) pair whose product leaves the packable grid
  // cannot have come from this engine and would overflow grid
  // addressing. Construct one via the derived-tensor constructor (the
  // save path does not re-validate semantic invariants).
  std::vector<Coord> coords = {{0, kCoordSpatialMax, 0, 0}};
  const SparseTensor base(coords, Matrix(1, 2, 1.0f));
  const SparseTensor strided(base.coords_ptr(), base.feats(), 1 << 16,
                             base.cache());
  std::stringstream ss(serialized(strided));
  try {
    io::load_tensor(ss);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(),
                 "coordinate/stride combination overflows grid addressing");
  }
}

TEST(Io, RejectsImplausibleStride) {
  std::vector<Coord> coords = {{0, 1, 1, 1}};
  const SparseTensor base(coords, Matrix(1, 2, 1.0f));
  const SparseTensor strided(base.coords_ptr(), base.feats(),
                             kCoordSpatialMax + 1, base.cache());
  std::stringstream too_big(serialized(strided));
  EXPECT_THROW(io::load_tensor(too_big), std::runtime_error);

  // Negative stride via byte patching (the derived constructor would be
  // a caller bug; the stream is adversarial input).
  std::string bytes = serialized(base);
  bytes[kStrideOffset + 3] = static_cast<char>(0x80);  // sign bit
  std::stringstream negative(bytes);
  EXPECT_THROW(io::load_tensor(negative), std::runtime_error);
}

TEST(Io, RejectsTruncatedCoordBlock) {
  std::vector<Coord> coords = {{0, 1, 1, 1}, {0, 2, 2, 2}};
  const std::string full = serialized(SparseTensor(coords, Matrix(2, 2)));
  // Cut inside the second coordinate record, before any feature bytes.
  std::stringstream cut(full.substr(0, kStrideOffset + 4 + 16 + 8));
  EXPECT_THROW(io::load_tensor(cut), std::runtime_error);
}

TEST(Io, TimelineCsvContainsAllStages) {
  Timeline t;
  t.add(Stage::kGather, 0.001);
  t.add(Stage::kNMS, 0.0005);
  const std::string csv = io::timeline_csv(t);
  EXPECT_NE(csv.find("Gather,0.001"), std::string::npos);
  EXPECT_NE(csv.find("NMS,0.0005"), std::string::npos);
  EXPECT_NE(csv.find("total,"), std::string::npos);
  EXPECT_NE(csv.find("Mapping,0"), std::string::npos);
}

}  // namespace
}  // namespace ts
