// Priority classes for the serving runtime.
//
// A serving deployment rarely has one traffic class: interactive
// perception requests share the fleet with best-effort backfill
// (re-processing, evaluation sweeps) and everything in between. A
// Priority tags each submitted request with its class; the admission
// queue and the default batching policy then implement strict priority
// with optional aging (serve_policies.hpp): higher classes always win
// batch slots, and aging promotes a waiting request one class per
// configured interval so sustained high-class overload cannot starve
// the classes below it.
//
// Like every other serving decision, priority scheduling runs on the
// modeled clock over modeled arrival stamps, so class outcomes (per-class
// latency percentiles in StreamStats::per_class) are deterministic and
// independent of worker or device count.
#pragma once

#include <cmath>
#include <limits>

namespace ts::serve {

/// Request priority class. Smaller enum value = more urgent. The
/// numeric values index StreamStats::per_class.
enum class Priority {
  kHigh = 0,    // interactive / safety-critical traffic
  kNormal = 1,  // default class; legacy submissions land here
  kLow = 2,     // best-effort backfill
};

inline constexpr int kNumPriorityClasses = 3;

const char* to_string(Priority p);

/// Knobs of the strict-priority-plus-aging discipline used by the
/// default batching policy (SloBatchingPolicy) wherever requests of
/// several classes are pending at once.
struct PriorityOptions {
  /// Aging interval: a pending request is promoted one priority class
  /// for every `aging_seconds` of modeled batcher wait, so a low-class
  /// request eventually outranks freshly arrived high-class traffic
  /// (promoted requests win ties by arrival stamp). Must be > 0; the
  /// default (infinity) disables aging — strict priority, where
  /// sustained higher-class overload may starve lower classes until
  /// end of stream.
  double aging_seconds = std::numeric_limits<double>::infinity();

  bool aging_enabled() const { return std::isfinite(aging_seconds); }
};

}  // namespace ts::serve
