// SLO-aware dynamic batching policy over the modeled clock.
//
// The paper's end-to-end wins come from amortizing work — kernel-map
// construction, tuned matmul grouping, kernel-launch setup — across a
// batch. At serving time that creates the classic tension: larger
// dispatch batches amortize better (throughput), but the first request of
// a batch pays the wait while the batch fills (latency). A DynamicBatcher
// resolves it with a deadline rule: dispatch when `max_batch` requests
// are pending, or the moment the *oldest* pending request's queue-wait
// budget (`slo_budget_seconds`) would be spent — whichever comes first.
//
// The batcher is an online state machine over modeled arrival stamps
// (monotone, from RequestQueue). It never consults a wall clock, so the
// batch boundaries — and therefore every downstream latency statistic —
// are identical across runs and machines. Batch membership depends only
// on arrivals and the policy, never on how fast the host happens to
// execute, which is what makes the SLO tests deterministic.
//
// The serving sessions of serve::Server run the priority-aware
// generalization of this rule (SloBatchingPolicy, serve_policies.hpp),
// which reproduces DynamicBatcher batch-for-batch on single-class
// streams; this class remains the single-class reference
// implementation and the BatcherOptions struct both are configured by.
#pragma once

#include <cstddef>
#include <vector>

namespace ts::serve {

/// Dispatch policies for the Fig. 15 sweep.
enum class BatchPolicy {
  kImmediate,  // every request is its own batch (latency-optimal)
  kFullBatch,  // wait for max_batch, flush remainder at end of stream
  kSloAware,   // max_batch OR oldest request's wait budget spent
};

const char* to_string(BatchPolicy p);

struct BatcherOptions {
  BatchPolicy policy = BatchPolicy::kSloAware;
  /// Dispatch as soon as this many requests are pending. Clamped to >= 1.
  int max_batch = 8;
  /// kSloAware only: maximum modeled time the oldest pending request may
  /// wait in the batcher before its batch dispatches. This is the queue-
  /// wait slice of the end-to-end SLO; must be >= 0 and finite.
  double slo_budget_seconds = 0.010;
};

/// One dispatch decision: requests [first, first + count) — in arrival
/// order — leave the batcher together at `dispatch_seconds` (modeled).
/// dispatch_seconds >= every member's arrival stamp.
struct PlannedBatch {
  std::size_t first = 0;
  std::size_t count = 0;
  double dispatch_seconds = 0;
};

/// Online batch former. Not thread-safe: it is owned and driven by the
/// single serving loop. Feed arrivals in non-decreasing modeled order via
/// on_arrival (std::invalid_argument otherwise) and terminate the stream
/// with flush().
class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatcherOptions opt);

  /// Feeds the next request's arrival stamp (requests are numbered in
  /// feed order). Returns every batch this arrival closes: a pending
  /// batch whose deadline passed strictly before `arrival_seconds`, and/
  /// or the batch the new request completes to max_batch.
  std::vector<PlannedBatch> on_arrival(double arrival_seconds);

  /// End of stream: the remaining partial batch (if any) dispatches at
  /// the last arrival stamp — close is modeled as instantaneous, so the
  /// batcher stops waiting for requests that can never come. Resets the
  /// batcher for reuse.
  std::vector<PlannedBatch> flush();

  /// Requests currently held back waiting for a dispatch trigger.
  std::size_t pending() const { return pending_count_; }

  const BatcherOptions& options() const { return opt_; }

  /// Convenience for offline sweeps (bench/fig15): plans a whole arrival
  /// trace at once — on_arrival over each stamp, then flush.
  static std::vector<PlannedBatch> plan(
      const std::vector<double>& arrivals, const BatcherOptions& opt);

 private:
  void close_pending(double dispatch_seconds,
                     std::vector<PlannedBatch>& out);

  BatcherOptions opt_;
  std::size_t next_index_ = 0;     // feed-order id of the next arrival
  std::size_t pending_first_ = 0;  // first request of the open batch
  std::size_t pending_count_ = 0;
  double oldest_arrival_ = 0;      // arrival of the open batch's head
  double last_arrival_ = 0;
};

}  // namespace ts::serve
