#include "serve/serve_stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace ts::serve {

double percentile(const std::vector<double>& sorted, double q) {
  if (!std::isfinite(q) || q < 0.0 || q > 1.0)
    throw std::invalid_argument(
        "serve::percentile: q must be finite and within [0, 1], got " +
        std::to_string(q));
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  idx = std::min(std::max<std::size_t>(idx, 1), sorted.size());
  return sorted[idx - 1];
}

}  // namespace ts::serve
