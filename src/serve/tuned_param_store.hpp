// Shared store of offline-tuned grouping parameters for the serving path.
//
// The Alg. 5 grid search is deliberately offline and inference-only: its
// result depends only on (model, device, engine config), not on the
// request being served. At serving scale that makes it a classic
// compute-once-share-everywhere artifact — every concurrent request for
// the same deployment key must reuse one tuning run, never trigger its
// own. The store keys tuned parameter maps by a canonical deployment
// string and guarantees exactly one tune_for call per key even when many
// worker threads ask simultaneously (latecomers block on the first
// caller's in-flight computation and share its result).
#pragma once

#include <atomic>
#include <cstddef>
#include <future>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/sync.hpp"
#include "engines/runner.hpp"

namespace ts::serve {

using TunedParams = std::unordered_map<int, GroupParams>;

/// Canonical deployment key: one tuning run per (model, device, config).
std::string tuned_key(const std::string& model_name, const DeviceSpec& dev,
                      const EngineConfig& cfg);

class TunedParamStore {
 public:
  /// Returns the tuned per-layer parameters for `key`, running the Alg. 5
  /// search (tune_for) at most once per key. Thread-safe: concurrent
  /// callers with the same key block until the single computation finishes
  /// and then share its result. A tuning failure is rethrown to every
  /// waiter and the key is evicted so a later call can retry.
  TunedParams get_or_tune(const std::string& key, const ModelFn& model,
                          const std::vector<SparseTensor>& samples,
                          const DeviceSpec& dev, const EngineConfig& cfg);

  /// Non-blocking lookup: returns the tuned params only if the key has
  /// already been computed successfully; empty params when the key is
  /// absent, still tuning, or its tuning failed.
  TunedParams get(const std::string& key) const;

  bool contains(const std::string& key) const;

  /// How many keys have actually been tuned (not merely requested).
  std::size_t compute_count() const { return computes_.load(); }

  std::size_t size() const;

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_future<TunedParams>> entries_
      TS_GUARDED_BY(mu_);
  std::atomic<std::size_t> computes_{0};
};

}  // namespace ts::serve
