// Asynchronous request intake for the streaming serving path.
//
// A RequestQueue is the admission boundary of the serving runtime:
// producers submit point-cloud inference requests (each stamped with a
// modeled arrival time and a priority class) and immediately receive a
// StreamHandle — a future over the request's eventual StreamResult. A
// bounded queue depth gives the runtime explicit load-shedding
// semantics: once `max_depth` requests are queued and not yet drained
// by the serving loop, further submissions fail fast with a typed
// AdmissionError instead of growing an unbounded backlog (the classic
// tail-latency failure mode of queueing systems). With
// QueueOptions::priority_preemption, shedding is priority-aware: a
// higher-class submission displaces the newest lowest-class pending
// request instead of being rejected itself.
//
// Time is *modeled*, not wall-clock: arrival stamps are supplied by the
// caller (monotone non-decreasing), and the downstream batching policy
// and scheduler operate purely on those stamps plus cost-model service
// times. That makes every queue-wait and end-to-end latency statistic
// bit-reproducible across runs and machines, exactly like the rest of
// the cost-model engine.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <deque>
#include <future>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/sparse_tensor.hpp"
#include "core/sync.hpp"
#include "gpusim/timeline.hpp"
#include "serve/priority.hpp"

namespace ts::serve {

/// Typed load-shedding error: thrown by RequestQueue::submit when the
/// bounded queue is full or the queue has been closed, and delivered
/// through a StreamHandle whose pending request was preempted by a
/// higher-priority submission. Catch this (and only this) to implement
/// client-side backoff/retry.
class AdmissionError : public std::runtime_error {
 public:
  explicit AdmissionError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Why an *admitted* request failed to be served. Unlike admission
/// rejections (AdmissionError at submit time), these outcomes travel
/// through the normal StreamResult channel: the result resolves with
/// `error` set instead of tunneling an exception through the promise,
/// so a handle always yields a readable result and per-class failure
/// accounting stays on the modeled stats path.
enum class ServeErrorCode {
  kNone = 0,
  /// The request's batch was lost to device faults on every one of its
  /// FaultToleranceOptions::max_attempts placements.
  kRetriesExhausted,
  /// Every device shard was DOWN with no recovery scheduled.
  kNoHealthyDevice,
  /// Graceful degradation shed the request: its batch would have
  /// started past the class's degrade_deadline_seconds budget.
  kDeadlineHopeless,
};

const char* to_string(ServeErrorCode code);

/// Typed serving failure thrown by StreamHandle::value() when the
/// resolved result carries a ServeErrorCode. Catch this to distinguish
/// fault-tolerance outcomes from admission rejections (AdmissionError).
class ServeError : public std::runtime_error {
 public:
  ServeError(ServeErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  ServeErrorCode code() const { return code_; }

 private:
  ServeErrorCode code_;
};

/// One streamed request's complete outcome: the modeled per-stage
/// timeline (bit-identical to a serial run_model on the same input) plus
/// its position in the modeled serving schedule.
struct StreamResult {
  std::size_t id = 0;              // submission order (0-based)
  Timeline timeline;               // identical to serial run_model
  double arrival_seconds = 0;      // modeled submit stamp
  Priority priority = Priority::kNormal;  // submitted priority class
  /// Registry index of the model that served this request (0 on a
  /// single-model deployment — the legacy value, bit-identical paths).
  int model = 0;
  double service_seconds = 0;      // modeled single-request runtime
  double start_seconds = 0;        // modeled execution start on its lane
  double finish_seconds = 0;       // start + service
  /// Time spent queued: arrival until the request's *batch* starts
  /// executing (batcher deadline wait + lane wait). The per-batch
  /// overhead and batch-mates ahead of this request count as run time,
  /// not queueing — this is the quantity the SLO budget bounds.
  double queue_wait_seconds = 0;
  double e2e_seconds = 0;          // finish - arrival (queue wait + run)
  std::size_t batch_id = 0;        // dispatched batch that served it
  std::size_t batch_size = 0;      // size of that batch
  int device = 0;                  // device shard the batch was routed to
  /// Lane placements this request's batch consumed (1 = no faults; 0 =
  /// the request failed before any placement).
  int attempts = 1;
  /// Redispatch penalty on the worker-invariant shadow clock: how much
  /// later the surviving attempt started than the first one would have
  /// (0 when attempts <= 1). The fault-recovery latency cost.
  double retry_wait_seconds = 0;
  /// kNone for a served request; otherwise why fault tolerance gave up
  /// (see ServeErrorCode). Schedule fields are meaningless when set.
  ServeErrorCode error = ServeErrorCode::kNone;
  std::string error_detail;

  bool ok() const { return error == ServeErrorCode::kNone; }
};

/// Future-like handle returned by RequestQueue::submit.
///
/// Thread-safety: `get()`/`ready()` may be called from any thread.
/// Fulfillment is *incremental*: a handle resolves the moment its
/// request's dispatch batch is placed on the modeled schedule — all
/// earlier batches placed and every batch member measured — not when
/// the whole stream ends, so an early request's result is readable
/// while later requests are still queued, measuring, or unsubmitted.
/// The resolved value is final: batches are placed in dispatch order,
/// so no later submission can change an already-placed slot.
///
/// Deadlock caveat: a request still *held by the batching policy* (an
/// open batch waiting to fill, or a low class held back by strict
/// priority) only dispatches when a later arrival triggers it or the
/// stream ends — there is no wall-clock timer behind the modeled
/// deadlines. So block on `get()` only once the request's batch is
/// certain to dispatch: after enough further submissions (e.g. the
/// kImmediate policy dispatches every request on arrival), from a
/// thread other than the one that will close()/drain(), or after
/// Server::drain()/queue close. In particular the single controlling
/// thread of a Server must not `get()` an undispatched request before
/// drain(). With the legacy synchronous BatchRunner::serve, the
/// serving loop runs on the *caller's* thread, so that caller must
/// still submit, close(), and serve() before collecting.
/// If serving fails, `get()` rethrows the serving error (or
/// AdmissionError if the request was preempted by a higher-priority
/// submission). Copyable; all copies share one result.
class StreamHandle {
 public:
  StreamHandle() = default;
  StreamHandle(std::size_t id, std::shared_future<StreamResult> fut)
      : id_(id), fut_(std::move(fut)) {}

  /// Submission id (matches StreamResult::id in the final report).
  std::size_t id() const { return id_; }

  bool valid() const { return fut_.valid(); }

  /// True once the result (or the serving error) is available, i.e.
  /// the request's batch has been placed on the modeled schedule.
  bool ready() const {
    return fut_.valid() && fut_.wait_for(std::chrono::seconds(0)) ==
                               std::future_status::ready;
  }

  /// Blocks until the request has been served; returns its result or
  /// rethrows the serving loop's failure. The result may carry a
  /// ServeErrorCode (fault-tolerance outcome) — check ok(), or use
  /// value() for throw-on-failure semantics.
  const StreamResult& get() const { return fut_.get(); }

  /// Like get(), but a result carrying a ServeErrorCode throws a typed
  /// ServeError instead of returning. The failure-aware accessor:
  /// callers that only want served results use value(), callers that
  /// triage failures use get() + StreamResult::ok().
  const StreamResult& value() const;

 private:
  std::size_t id_ = 0;
  std::shared_future<StreamResult> fut_;
};

struct QueueOptions {
  /// Admission limit: maximum number of submitted-but-not-yet-drained
  /// requests. Submissions past this depth throw AdmissionError (submit)
  /// or return nullopt (try_submit) and are counted as rejected.
  std::size_t max_depth = 64;
  /// Priority-aware shedding: when the queue is full and the incoming
  /// request's class strictly outranks the lowest class currently
  /// pending, the *newest* request of that lowest class is evicted (its
  /// StreamHandle receives AdmissionError, the eviction is counted as
  /// rejected) and the incoming request is admitted. Off by default —
  /// legacy first-come-first-admitted shedding.
  bool priority_preemption = false;
  /// Per-class admission caps (0 = the class shares max_depth only): a
  /// submission whose class already has class_max_depth[class] requests
  /// pending is shed with AdmissionError even when the queue has room.
  /// The degradation knob that keeps a flood of best-effort traffic
  /// from crowding out high-priority admission while capacity is
  /// reduced by faults.
  std::array<std::size_t, kNumPriorityClasses> class_max_depth{};
};

/// Internal unit drained by the serving loop: the input, its arrival
/// stamp and priority class, and the promise that fulfills the
/// producer's StreamHandle.
struct PendingRequest {
  std::size_t id = 0;
  SparseTensor input;
  double arrival_seconds = 0;
  Priority priority = Priority::kNormal;
  /// Registry index of the model this request targets (0 = the first /
  /// only model). Validated non-negative at admission; the serving loop
  /// checks it against the session's registry.
  int model = 0;
  std::promise<StreamResult> promise;
};

/// Bounded MPSC intake queue with modeled arrival stamps.
///
/// Thread-safety: submit/try_submit/close and the observers are safe from
/// any number of producer threads; wait_pop is intended for one consumer
/// (the serving loop). Exception guarantees: submit offers the strong
/// guarantee — on AdmissionError or std::invalid_argument the queue is
/// unchanged (the rejection counter, and a priority-preemption
/// eviction, aside).
class RequestQueue {
 public:
  explicit RequestQueue(QueueOptions opt = {});

  /// Enqueues a request with a modeled arrival stamp, priority class,
  /// and target model (registry index; 0 = single-model legacy), and
  /// returns its handle. Preconditions (std::invalid_argument):
  /// `arrival_seconds` is finite, non-negative, and non-decreasing
  /// across submissions; `model` >= 0. Throws AdmissionError when the
  /// queue is closed or `max_depth` requests are already pending and no
  /// lower-class request can be preempted; the rejection is counted
  /// (globally and per model).
  StreamHandle submit(SparseTensor input, double arrival_seconds,
                      Priority priority = Priority::kNormal, int model = 0);

  /// Non-throwing admission: nullopt instead of AdmissionError. Invalid
  /// arrival stamps still throw std::invalid_argument (caller bug, not
  /// load shedding).
  std::optional<StreamHandle> try_submit(
      SparseTensor input, double arrival_seconds,
      Priority priority = Priority::kNormal, int model = 0);

  /// Blocking admission: instead of shedding when the queue (or the
  /// request's class) is full, waits until the consumer drains a slot —
  /// backpressure for producers that must not lose requests. A close()
  /// during the wait wakes the waiter with AdmissionError (counted
  /// rejected) — shutdown never deadlocks a blocked producer. Arrival
  /// stamps must still be non-decreasing *at admission*: with several
  /// producers blocked at once, coordinate stamps externally or expect
  /// std::invalid_argument on wake.
  StreamHandle submit_wait(SparseTensor input, double arrival_seconds,
                           Priority priority = Priority::kNormal,
                           int model = 0);

  /// Marks the end of the stream: subsequent submissions are rejected and
  /// wait_pop returns false once the backlog drains. Idempotent.
  void close();

  bool closed() const;

  /// Currently queued (admitted, not yet drained) requests.
  std::size_t depth() const;

  /// Totals since construction. `rejected` counts depth/closed
  /// rejections and priority-preemption evictions.
  std::size_t submitted() const;
  std::size_t rejected() const;

  /// Per-model rejection totals, indexed by model id (grown on demand:
  /// the vector covers the highest model id that ever saw a rejection).
  /// Feeds StreamStats::per_model rejection accounting.
  std::vector<std::size_t> rejected_by_model() const;

  /// Consumer side (the serving loop): blocks until a request is
  /// available or the queue is closed and empty. Returns false — without
  /// touching `out` — only in the closed-and-drained terminal state.
  bool wait_pop(PendingRequest& out);

  const QueueOptions& options() const { return opt_; }

 private:
  StreamHandle admit_locked(SparseTensor&& input, double arrival_seconds,
                            Priority priority, int model) TS_REQUIRES(mu_);
  /// Counts one rejection, both globally and against `model`'s slot in
  /// the per-model ledger (grown on demand).
  void count_rejection_locked(int model) TS_REQUIRES(mu_);
  /// Preemption shed: evicts the newest pending request of the lowest
  /// class if that class is strictly below `incoming`. Returns true on
  /// eviction (a slot is now free).
  bool preempt_locked(Priority incoming) TS_REQUIRES(mu_);
  /// True while admitting `priority` would exceed max_depth or the
  /// class's class_max_depth cap.
  bool full_locked(Priority priority) const TS_REQUIRES(mu_);

  /// Immutable after construction (safe to read without mu_).
  QueueOptions opt_;
  mutable Mutex mu_;
  CondVar cv_;
  /// Wakes producers blocked in submit_wait when a slot frees (wait_pop
  /// drain, preemption eviction) or the queue closes.
  CondVar space_cv_;
  std::deque<PendingRequest> queue_ TS_GUARDED_BY(mu_);
  bool closed_ TS_GUARDED_BY(mu_) = false;
  double last_arrival_ TS_GUARDED_BY(mu_) = 0;
  std::size_t next_id_ TS_GUARDED_BY(mu_) = 0;
  std::size_t rejected_ TS_GUARDED_BY(mu_) = 0;
  /// Per-model rejection ledger (indexed by model id, grown on demand).
  std::vector<std::size_t> model_rejected_ TS_GUARDED_BY(mu_);
  /// Pending requests per priority class (class_max_depth accounting).
  std::array<std::size_t, kNumPriorityClasses> class_depth_
      TS_GUARDED_BY(mu_){};
};

}  // namespace ts::serve
