// Deterministic fault injection for the serving stack.
//
// Production fleets lose devices: hardware crashes take a shard (and
// its kernel-map cache) out permanently until a replacement arrives,
// driver hangs stall a shard for seconds, thermal throttling slows one
// down. Tangram (PAPERS.md) treats exactly this churn as the normal
// case and leans on warm state to make re-placement cheap; this module
// brings that failure model onto the repo's modeled clock so every
// scenario replays bit-identically.
//
// The model is data-driven: a FaultPlan is a schedule of DeviceFault
// events, each keyed to a modeled timestamp or to a dispatch index
// ("when the Nth batch dispatches"), and a FaultInjector turns the plan
// into a deterministic event stream the scheduler consumes in stamp
// order. Three fault kinds:
//
//  * kCrash    — the shard goes DOWN and its modeled cache contents are
//                lost. duration_seconds is the time-to-replacement; a
//                finite duration brings up a *replacement* shard (fresh
//                cache, warm-seeded from the group's snapshot manifest
//                when one is installed), infinity retires the shard for
//                the rest of the stream.
//  * kStall    — the shard goes DOWN for a finite duration_seconds and
//                then returns with its cache intact (driver hang, net
//                partition). In-flight batches are lost either way.
//  * kSlowdown — the shard stays up but DEGRADED: modeled service times
//                on it are multiplied by slowdown_factor for
//                duration_seconds (thermal throttling, noisy neighbor).
//
// Shard health is UP / DEGRADED / DOWN / PROBATION. PROBATION is the
// configurable reinstatement window after an outage ends: the shard is
// routable again but its service estimates carry probation_factor, so
// health-aware routing ramps traffic back instead of slamming the
// recovered shard.
//
// Determinism contract: the injector consumes only modeled stamps and
// dispatch indices — both worker-count invariant — so which batches a
// fault kills, every retry, and every health transition are identical
// across runs, machines, and worker counts. An empty plan injects
// nothing and the serving stack is pinned bit-identical to the
// fault-free build (tests/test_fault.cpp).
#pragma once

#include <array>
#include <cstddef>
#include <limits>
#include <vector>

#include "serve/priority.hpp"

namespace ts::serve {

enum class FaultKind {
  kCrash,     // shard DOWN, cache lost; finite duration = replacement
  kStall,     // shard DOWN for a finite window, cache survives
  kSlowdown,  // shard DEGRADED: service x slowdown_factor for a window
};

const char* to_string(FaultKind k);

/// Shard health as the routing layer sees it (DeviceGroup::health).
enum class ShardHealth {
  kUp,         // healthy; service factor 1
  kDegraded,   // serving, but slowed by an active kSlowdown fault
  kDown,       // not routable: active kCrash/kStall outage
  kProbation,  // recently reinstated; discounted by probation_factor
};

const char* to_string(ShardHealth h);

/// One scheduled fault. Triggered by modeled time (`at_seconds`) by
/// default; set `at_dispatch >= 0` to trigger at the moment batch
/// #at_dispatch (0-based dispatch order) is dispatched instead — the
/// stamp is then that batch's dispatch time, and the batch itself
/// already sees the fault (it routes around a downed shard).
struct DeviceFault {
  int device = 0;
  FaultKind kind = FaultKind::kCrash;
  double at_seconds = 0;
  long long at_dispatch = -1;
  /// Outage length (kCrash: time-to-replacement, infinity = retired;
  /// kStall: must be finite) or degradation window (kSlowdown).
  double duration_seconds = std::numeric_limits<double>::infinity();
  /// kSlowdown only: modeled service multiplier while degraded (>= 1).
  double slowdown_factor = 1.0;
};

/// A deterministic schedule of device faults. Order within the vector
/// is the tie-break for events landing on the same stamp.
struct FaultPlan {
  std::vector<DeviceFault> faults;
};

/// Retry / degradation knobs of the fault-tolerant scheduler.
struct FaultToleranceOptions {
  /// Total placement attempts per batch (first dispatch included).
  /// A batch lost to its max_attempts-th shard failure resolves every
  /// member with ServeErrorCode::kRetriesExhausted.
  int max_attempts = 3;
  /// Modeled exponential backoff: retry n (n >= 2) re-dispatches
  /// retry_backoff_seconds * 2^(n-2) after the loss. 0 = immediate.
  double retry_backoff_seconds = 0.0005;
  /// Reinstatement window after an outage ends; 0 disables PROBATION.
  double probation_seconds = 0;
  /// Service multiplier applied while a shard is on PROBATION (>= 1).
  double probation_factor = 1.5;
  /// Graceful degradation, per priority class: a request whose batch
  /// would start executing more than this many modeled seconds after
  /// its arrival is shed with ServeErrorCode::kDeadlineHopeless instead
  /// of being placed. Infinity (the default) never sheds — set finite
  /// budgets on the low classes so survivors' capacity goes to the
  /// classes whose p99 matters.
  std::array<double, kNumPriorityClasses> degrade_deadline_seconds =
      unbounded_deadlines();

  static constexpr std::array<double, kNumPriorityClasses>
  unbounded_deadlines() {
    std::array<double, kNumPriorityClasses> a{};
    for (double& v : a) v = std::numeric_limits<double>::infinity();
    return a;
  }
};

/// Validates a plan against a fleet size (std::invalid_argument, with
/// the offending fault's index named): device in [0, devices), trigger
/// stamps finite and >= 0, stall durations finite > 0, crash/slowdown
/// durations > 0, slowdown factors finite >= 1.
void validate_fault_plan(const FaultPlan& plan, int devices);

/// Validates the tolerance knobs (std::invalid_argument): max_attempts
/// >= 1, backoff/probation windows finite >= 0, probation_factor finite
/// >= 1, degrade deadlines >= 0 (infinity allowed, NaN rejected).
void validate_fault_tolerance(const FaultToleranceOptions& opt);

/// One injector event, in stamp order: a fault activating or an outage
/// ending. Recoveries sort before activations on equal stamps (a shard
/// coming back at t is routable to a fault landing at t).
struct FaultEvent {
  enum class Type { kRecovery, kActivation };
  Type type = Type::kActivation;
  double stamp = 0;
  int device = 0;
  FaultKind kind = FaultKind::kCrash;  // activating fault / ended outage
  /// Recovery from a crash: the shard returns as a *replacement* (fresh
  /// cache, warm-seeded when the group has a snapshot manifest), not
  /// the stalled original.
  bool replacement = false;
};

/// Turns a FaultPlan into the deterministic event stream the scheduler
/// consumes, and answers the health/vulnerability queries routing and
/// deferred finalization need. Single-threaded, driven from inside the
/// scheduling pass; DeviceGroup holds a const view for health queries.
///
/// The injector's clock (`frontier`) only moves forward, advanced by
/// the scheduler to each processed stamp; health is always evaluated
/// at the frontier.
class FaultInjector {
 public:
  /// Validates plan and options (see validate_*); copies both.
  FaultInjector(const FaultPlan& plan, const FaultToleranceOptions& opt,
                int devices);

  /// Back to the pre-stream state: nothing activated, every shard UP,
  /// frontier at 0. Call per schedule pass when reusing an injector.
  void reset();

  int devices() const { return static_cast<int>(shards_.size()); }
  const FaultToleranceOptions& options() const { return opt_; }

  /// Pops the earliest due event with stamp <= limit_seconds, applying
  /// its health transition and advancing the frontier to its stamp.
  /// Dispatch-indexed faults with at_dispatch <= dispatch_index are due
  /// at index_stamp (the current batch's dispatch time). Events order
  /// by (stamp, recovery-before-activation, plan position). Returns
  /// false when nothing is due.
  bool pop_event(double limit_seconds, long long dispatch_index,
                 double index_stamp, FaultEvent* out);

  /// Advances the frontier (monotone; earlier stamps are ignored).
  void advance(double now_seconds);

  /// End of dispatching: dispatch-indexed faults whose batch never
  /// dispatched are dropped (they can no longer trigger).
  void end_of_plan();

  /// Earliest pending time-triggered activation or recovery stamp;
  /// infinity when none remain. Drives the end-of-stream drain loop.
  double next_event_stamp() const;

  ShardHealth health(int device) const;

  /// Service multiplier at the frontier: slowdown_factor while
  /// DEGRADED, probation_factor while on PROBATION, otherwise 1.
  double service_factor(int device) const;

  /// Earliest stamp at which any currently-DOWN shard recovers;
  /// infinity when every outage is permanent (or no shard is down).
  double earliest_recovery() const;

  /// True while at least one shard is not DOWN.
  bool any_routable() const;

  /// Deferred-finalization query: can a batch on `device` finishing at
  /// `finish_seconds` (on the worker-invariant shadow clock) still be
  /// lost? True while an unactivated crash/stall on the device could
  /// activate strictly before that finish — a time trigger before it,
  /// or any dispatch-indexed trigger while the frontier has not reached
  /// it (future dispatch stamps are >= the frontier).
  bool vulnerable(int device, double finish_seconds) const;

  /// Fault activations applied so far (StreamStats::faults_injected).
  std::size_t activations() const { return activations_; }

  double frontier() const { return frontier_; }

 private:
  struct Entry {
    DeviceFault fault;
    bool spent = false;  // activated, or dropped by end_of_plan
  };
  struct ShardState {
    double down_until = 0;       // DOWN while frontier < down_until
    double degraded_until = 0;   // DEGRADED while frontier < degraded_until
    double probation_until = 0;  // PROBATION while frontier < probation_until
    double slowdown = 1.0;       // active kSlowdown factor
    bool crashed = false;        // current outage loses the cache
    bool recovery_pending = false;
  };

  const ShardState& shard_at(int device) const;

  FaultToleranceOptions opt_;
  std::vector<Entry> entries_;
  std::vector<ShardState> shards_;
  double frontier_ = 0;
  std::size_t activations_ = 0;
};

}  // namespace ts::serve
