// Concurrent batched inference runtime (the serving-scale counterpart of
// engines/runner).
//
// Two entry points share one worker pool design:
//
//  * run()   — the PR-1 fixed-batch path: a pre-collected vector of point
//              clouds is sharded across worker threads and placed on a
//              deterministic earliest-available-worker schedule.
//  * serve() — the streaming path: a thin compatibility wrapper over the
//              serve::Server core (server.hpp). It drains a RequestQueue
//              on the caller's thread, forms dispatch batches with the
//              default SLO-aware batching policy, routes each batch onto
//              one of StreamOptions::shard.devices modeled devices via
//              the built-in routing policy for StreamOptions::shard.route
//              (serve_policies.hpp), and returns a report with
//              per-request end-to-end latency (queue wait + run)
//              percentiles, per-priority-class percentiles, rejection
//              counts, and per-device utilization. New code should
//              configure a serve::Server directly; this wrapper is pinned
//              bit-identical to it by test and kept for one-shot callers.
//
// Every request gets its own ExecContext state (fresh, or one reusable
// context per worker reset between requests) and a private TensorCache
// (via fresh_input, or a zero-copy move when RunOptions::borrow_input is
// set), so per-request results are bit-identical to a serial run_model
// loop — concurrency changes wall time, never outputs. Tuned grouping
// parameters arrive through RunOptions, typically from a TunedParamStore
// shared by all workers. A pool-owned cross-request KernelMapCache
// (BatchOptions::map_cache_bytes) lets near-duplicate scans reuse each
// other's kernel maps: outputs stay bit-identical, and modeled stats use
// a deterministic submission-order replay so they remain independent of
// worker count (docs/PERFORMANCE.md).
//
// Because layer runtimes are produced by the device cost model rather
// than wall clocks, all serving statistics are also modeled: arrivals,
// batch dispatch times, lane assignment, and completion times live on a
// deterministic modeled clock, so throughput and latency percentiles are
// reproducible across runs and machines regardless of thread
// interleaving.
#pragma once

#include <cstddef>
#include <vector>

#include "engines/runner.hpp"
#include "serve/device_group.hpp"
#include "serve/dynamic_batcher.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_stats.hpp"

namespace ts::serve {

struct BatchOptions {
  int workers = 1;  // worker threads (and schedule lanes); clamped to >= 1
  RunOptions run;   // shared per-request options (numerics, tuned params)
  /// Byte budget for a pool-owned cross-request KernelMapCache (0 =
  /// disabled). Near-duplicate scans in a stream then reuse each other's
  /// kernel maps and downsampled coordinate sets: results stay
  /// bit-identical to the cold path, map-build wall time is skipped on
  /// hits, and the modeled mapping charge is replaced by a small re-key
  /// cost via a deterministic submission-order replay (worker-count
  /// independent). Ignored when run.map_cache is already set (pools can
  /// share one cache that way — and a deployment can persist one across
  /// restarts through KernelMapCache::save_snapshot / ServerConfig::
  /// warm_start; the one-shot paths here always start cold).
  std::size_t map_cache_bytes = 0;
};

/// One request's outcome on the fixed-batch path: the modeled timeline
/// plus its slot in the deterministic schedule.
struct RequestResult {
  std::size_t index = 0;       // position in the input batch
  Timeline timeline;           // identical to serial run_model on input[i]
  double service_seconds = 0;  // modeled single-request runtime
  double start_seconds = 0;    // modeled dispatch time
  double finish_seconds = 0;   // start + service (completion latency)
};

struct BatchStats {
  std::size_t requests = 0;
  int workers = 1;
  double makespan_seconds = 0;    // modeled time to drain the batch
  double throughput_fps = 0;      // requests / makespan
  double latency_p50_seconds = 0; // completion-latency percentiles
  double latency_p90_seconds = 0;
  double latency_p99_seconds = 0;
  double mean_service_seconds = 0;
  Timeline aggregate;             // sum of all request timelines
  /// Deterministic (submission-order replay) kernel-map cache outcome;
  /// zeros when the cache is disabled.
  MapCacheReplayStats map_cache;
};

struct BatchReport {
  std::vector<RequestResult> requests;  // in input order
  BatchStats stats;
};

/// Places already-measured requests (arrival order = vector order) on the
/// deterministic earliest-available-worker schedule, filling each entry's
/// start/finish, and returns the batch statistics. Used by
/// BatchRunner::run and by sweeps that reuse one set of request timelines
/// across many (batch size, worker count) schedule configurations.
BatchStats schedule_stats(std::vector<RequestResult>& requests, int workers);

// ---------------------------------------------------------------------
// Streaming path
// ---------------------------------------------------------------------

/// Knobs of the streaming serve() path beyond BatchOptions. The
/// serve::ServerConfig builder (server.hpp) unifies these with
/// BatchOptions and QueueOptions for the session API; this struct
/// remains for the one-shot wrapper.
struct StreamOptions {
  /// Batch-formation knobs of the default SLO-aware batching policy
  /// (see dynamic_batcher.hpp and serve_policies.hpp).
  BatcherOptions batcher;
  /// Fixed modeled setup cost charged once per dispatched batch — the
  /// amortizable slice (kernel-map reuse, weight staging, launch setup)
  /// that makes larger batches cheaper per request. Must be >= 0.
  double batch_overhead_seconds = 0;
  /// Reuse one ExecContext per worker across requests (reset_context
  /// between them) instead of constructing a fresh context per request.
  /// Results are bit-identical either way; reuse skips the repeated
  /// cost-model and L2-simulator construction.
  bool reuse_context = true;
  /// Multi-device sharding (see device_group.hpp): `shard.devices`
  /// modeled device instances, each with its own pool of
  /// BatchOptions::workers lanes (and measurement threads), its own
  /// modeled kernel-map cache, and its own clock/utilization counters;
  /// every dispatched batch is routed to one device by `shard.route`.
  /// Defaults to a single device, which is bit-identical to the
  /// pre-sharding serve path under every policy.
  ShardOptions shard;
};

/// One dispatched batch's slot in the modeled schedule.
struct StreamBatchRecord {
  std::size_t batch_id = 0;
  std::size_t first = 0;          // first request id in the batch
  std::size_t size = 0;
  double dispatch_seconds = 0;    // when the batcher released it
  double start_seconds = 0;       // max(dispatch, lane free) on its lane
  double finish_seconds = 0;      // last member's completion
  int lane = 0;                   // worker lane it ran on (within device)
  int device = 0;                 // device shard it was routed to
  /// Registry index of the model the whole batch ran under (batches
  /// never mix models; 0 on single-model streams).
  int model = 0;
  /// Placement attempts this batch took (1 = no shard failure ever
  /// touched it; > 1 = redispatched after fault losses). The record
  /// describes the attempt that finally served the batch.
  int attempts = 1;
};

struct StreamStats {
  std::size_t completed = 0;
  std::size_t rejected = 0;        // admission-control rejections
  /// Requests admitted but not served: resolved with a ServeErrorCode
  /// (retries exhausted, no healthy device, deadline-hopeless shed).
  /// Always 0 without a FaultPlan.
  std::size_t failed = 0;
  /// Sum of per-request (attempts - 1) over served requests — every
  /// extra placement attempt a fault forced.
  std::size_t retries = 0;
  /// Batches that were re-placed at least once after a shard failure.
  std::size_t redispatched_batches = 0;
  /// Fault activations the injector applied during the stream.
  std::size_t faults_injected = 0;
  /// p99 of the modeled redispatch penalty (final placement start minus
  /// first-attempt placement start, on the worker-invariant shadow
  /// clock) over requests that retried; 0 when none did.
  double retry_wait_p99_seconds = 0;
  std::size_t batches = 0;
  double mean_batch_size = 0;
  int workers = 1;
  double makespan_seconds = 0;     // last finish - first arrival
  double throughput_fps = 0;       // completed / makespan
  double queue_wait_p50_seconds = 0;  // arrival -> batch-execution-start
  double queue_wait_p90_seconds = 0;  //   percentiles (the SLO-bounded
  double queue_wait_p99_seconds = 0;  //   quantity; see StreamResult)
  double e2e_p50_seconds = 0;         // finish - arrival percentiles
  double e2e_p90_seconds = 0;
  double e2e_p99_seconds = 0;
  double mean_service_seconds = 0;
  Timeline aggregate;              // sum of all request timelines
  /// Per-priority-class latency percentiles (size kNumPriorityClasses,
  /// indexed by static_cast<int>(Priority); zero counts for classes
  /// that saw no traffic). Single-class streams put everything in the
  /// submitting class's entry.
  std::vector<PriorityClassStats> per_class;
  /// Per-model modeled outcome (size == the session's registry size; 1
  /// on single-model streams, where entry 0 mirrors the stream totals).
  /// Latency percentiles, admission rejections, and namespaced cache
  /// warmth per model — the tenant-facing view of a shared fleet.
  std::vector<ModelStats> per_model;
  /// Deterministic (submission-order replay) kernel-map cache outcome
  /// summed over all device shards; zeros when the cache is disabled.
  MapCacheReplayStats map_cache;
  /// Device shards the stream was served on (1 = unsharded).
  int devices = 1;
  /// Per-device modeled outcome (size == devices): routed batch/request
  /// counts, busy/free clocks, utilization, and the shard's own
  /// kernel-map cache accounting. Deterministic and worker-count
  /// independent, like every other modeled stat.
  std::vector<DeviceShardStats> per_device;
};

struct StreamReport {
  std::vector<StreamResult> requests;       // in submission order
  std::vector<StreamBatchRecord> batches;   // in dispatch order
  StreamStats stats;
};

/// Pure modeled scheduler for the streaming path: places planned batches
/// (in dispatch order) on `workers` earliest-available lanes, runs each
/// batch's members back-to-back after a once-per-batch overhead, fills
/// every request's start/finish/queue-wait/e2e fields, and returns the
/// stream statistics. `requests` must be in submission order with id,
/// arrival_seconds, and service_seconds already set; `plan` must cover
/// exactly [0, requests.size()) (std::invalid_argument otherwise).
/// Deterministic: same inputs, same schedule, on any machine. Used by
/// BatchRunner::serve and by policy sweeps (bench/fig15) that reuse one
/// set of measured service times across many batching configurations.
StreamStats schedule_stream(std::vector<StreamResult>& requests,
                            const std::vector<PlannedBatch>& plan,
                            int workers, double batch_overhead_seconds,
                            std::vector<StreamBatchRecord>* batches = nullptr);

/// Sharded generalization of schedule_stream: one combined routing +
/// accounting + placement pass over the planned batches, in dispatch
/// order. For each batch it (1) routes to a device by `policy` — using
/// the group's accumulated modeled work and modeled cache ownership,
/// never lane state, so routing is worker-count independent — then
/// (2) replays the members' recorded MapCacheEvents (in submission
/// order) through that device's modeled cache, swapping cold mapping
/// charges for warm ones on hits exactly like MapCacheReplay, and
/// (3) places the batch on the device's earliest-available lane.
/// `events`, when non-null, must be parallel to `requests`; null means
/// the kernel-map cache is disabled. `group` is reset via
/// begin_schedule, so every call accounts from a cold modeled state.
///
/// With group.size() == 1 this is bit-identical — results, schedule,
/// and stats — to MapCacheReplay over the event streams followed by
/// schedule_stream, i.e. to the pre-sharding single-device serve path,
/// under every policy (tests/test_device_group.cpp pins this).
StreamStats schedule_stream_sharded(
    std::vector<StreamResult>& requests,
    const std::vector<PlannedBatch>& plan, DeviceGroup& group,
    RoutePolicy policy, int workers_per_device,
    double batch_overhead_seconds,
    const std::vector<std::vector<MapCacheEvent>>* events = nullptr,
    std::vector<StreamBatchRecord>* batches = nullptr);

class BatchRunner {
 public:
  /// `opt.workers` is clamped to >= 1.
  BatchRunner(DeviceSpec dev, EngineConfig cfg, BatchOptions opt = {});

  /// Runs every input through `model` on the worker pool and returns the
  /// per-request results plus batch statistics. The model must be safe to
  /// invoke concurrently with distinct contexts (all spnn modules are:
  /// forward passes only read weights and mutate the per-call context).
  /// Exception guarantee: the first per-request failure is rethrown after
  /// the pool drains; no partial report escapes.
  BatchReport run(const ModelFn& model,
                  const std::vector<SparseTensor>& inputs) const;

  /// Streaming entry point (compatibility wrapper over serve_stream,
  /// see server.hpp): drains `queue` until it is closed and empty,
  /// forming dispatch batches with the default SLO-aware batching
  /// policy over sopt.batcher and executing requests on the worker
  /// pool. Producers may keep submitting concurrently while serve()
  /// runs; every StreamHandle is fulfilled *incrementally* — a handle
  /// resolves with its final StreamResult the moment its batch is
  /// placed on the modeled schedule (all earlier batches placed, all
  /// batch members measured), so other threads can collect early
  /// results while the stream is still open. The caller of serve()
  /// itself must still close() the queue for serve() to return.
  ///
  /// Thread-safety: one serve() call per queue at a time (single
  /// consumer); safe alongside any number of producers. Exception
  /// guarantee: on a request failure the queue is closed, every
  /// still-unfulfilled handle receives the error, and the error is
  /// rethrown. Determinism: the returned report depends only on the
  /// submitted (input, arrival, priority) stream and the options —
  /// never on thread timing or when handles are observed.
  StreamReport serve(const ModelFn& model, RequestQueue& queue,
                     const StreamOptions& sopt = {}) const;

  const BatchOptions& options() const { return opt_; }

  /// The pool's cross-request kernel-map cache (null when disabled).
  /// Exposes wall-clock-side observability: hit rate, bytes pinned,
  /// build seconds saved.
  const std::shared_ptr<KernelMapCache>& map_cache() const {
    return opt_.run.map_cache;
  }

 private:
  DeviceSpec dev_;
  EngineConfig cfg_;
  BatchOptions opt_;
};

}  // namespace ts::serve
