// Concurrent batched inference runtime (the serving-scale counterpart of
// engines/runner).
//
// A BatchRunner accepts a batch of point clouds and shards them across a
// pool of worker threads. Every request gets its own ExecContext and a
// private TensorCache (via fresh_input), so per-request results are
// bit-identical to a serial run_model loop — concurrency changes wall
// time, never outputs. Tuned grouping parameters arrive through
// RunOptions, typically from a TunedParamStore shared by all workers.
//
// Because layer runtimes are produced by the device cost model rather
// than wall clocks, batch-level statistics are also modeled: the per-
// request service times are placed on a deterministic earliest-available-
// worker schedule (arrival order = input order), which yields a makespan,
// throughput, and completion-latency percentiles that are reproducible
// across runs and machines regardless of thread interleaving.
#pragma once

#include <cstddef>
#include <vector>

#include "engines/runner.hpp"

namespace ts::serve {

struct BatchOptions {
  int workers = 1;  // worker threads (and schedule lanes); clamped to >= 1
  RunOptions run;   // shared per-request options (numerics, tuned params)
};

/// One request's outcome: the modeled timeline plus its slot in the
/// deterministic schedule.
struct RequestResult {
  std::size_t index = 0;       // position in the input batch
  Timeline timeline;           // identical to serial run_model on input[i]
  double service_seconds = 0;  // modeled single-request runtime
  double start_seconds = 0;    // modeled dispatch time
  double finish_seconds = 0;   // start + service (completion latency)
};

struct BatchStats {
  std::size_t requests = 0;
  int workers = 1;
  double makespan_seconds = 0;    // modeled time to drain the batch
  double throughput_fps = 0;      // requests / makespan
  double latency_p50_seconds = 0; // completion-latency percentiles
  double latency_p90_seconds = 0;
  double latency_p99_seconds = 0;
  double mean_service_seconds = 0;
  Timeline aggregate;             // sum of all request timelines
};

struct BatchReport {
  std::vector<RequestResult> requests;  // in input order
  BatchStats stats;
};

/// Places already-measured requests (arrival order = vector order) on the
/// deterministic earliest-available-worker schedule, filling each entry's
/// start/finish, and returns the batch statistics. Used by
/// BatchRunner::run and by sweeps that reuse one set of request timelines
/// across many (batch size, worker count) schedule configurations.
BatchStats schedule_stats(std::vector<RequestResult>& requests, int workers);

class BatchRunner {
 public:
  BatchRunner(DeviceSpec dev, EngineConfig cfg, BatchOptions opt = {});

  /// Runs every input through `model` on the worker pool and returns the
  /// per-request results plus batch statistics. The model must be safe to
  /// invoke concurrently with distinct contexts (all spnn modules are:
  /// forward passes only read weights and mutate the per-call context).
  BatchReport run(const ModelFn& model,
                  const std::vector<SparseTensor>& inputs) const;

  const BatchOptions& options() const { return opt_; }

 private:
  DeviceSpec dev_;
  EngineConfig cfg_;
  BatchOptions opt_;
};

}  // namespace ts::serve
