// Multi-device sharded serving: a group of N modeled device instances
// with per-device worker lanes, per-device modeled kernel-map caches,
// and per-device clock/utilization accounting.
//
// The paper's engine is single-device; at serving scale the next
// throughput multiplier is sharding the stream across devices. Where the
// win actually comes from — per Tangram's affinity-aware placement of
// serverless work onto GPUs that already hold the warm state (PAPERS.md)
// — is routing: a dispatched batch that lands on the device whose cache
// already holds its kernel maps pays the warm re-key cost instead of the
// full map rebuild. The KernelMapCache's content digests (PR 3) make
// that signal exact, so the dispatcher can ask "which device owns this
// batch's dominant digest?" and route accordingly.
//
// Determinism contract. Routing runs inside the deterministic accounting
// pass (schedule_stream_sharded), over the submission-ordered request
// stream — never over racy wall-clock cache state. Two consequences:
//  * With one device, every policy degenerates to device 0 and the
//    schedule/accounting math reduces exactly to the single-device
//    serve path: results and stats are bit-identical to a 1-device run.
//  * Routing inputs (accumulated modeled work, modeled cache ownership)
//    are independent of the per-device worker-lane count, so per-device
//    cache accounting — and every modeled serve statistic — is invariant
//    to worker count at every device count (tests/test_device_group.cpp).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/kernel_map_cache.hpp"
#include "gpusim/device.hpp"

namespace ts::serve {

/// Built-in batch-routing policies of the sharded dispatcher. Each is
/// also available as a RoutingPolicy object via make_routing_policy
/// (serve_policies.hpp), which is where custom policies — e.g.
/// heterogeneous groups routed on per-device service estimates — plug
/// in.
enum class RoutePolicy {
  /// Batch k to device k mod N. The baseline: perfectly fair, blind to
  /// both load imbalance and cache state.
  kRoundRobin,
  /// Device with the least accumulated modeled work (earliest modeled
  /// free time on the device's work queue; ties -> lowest id). Computed
  /// from assigned service + overhead seconds — deliberately not from
  /// lane state, so routing (and therefore per-device cache accounting)
  /// is independent of the per-device worker count.
  kLeastLoaded,
  /// Device whose modeled cache already owns the batch's dominant
  /// kernel-map digest (the content key with the largest summed cold
  /// mapping charge across the batch's cache events); falls back to
  /// least-loaded when no device owns it (cold digest, or caching off).
  kCacheAffinity,
};

const char* to_string(RoutePolicy p);

/// Upper bound on modeled device instances per group. Far above any
/// realistic deployment; exists so an absurd request fails loudly
/// (std::invalid_argument) instead of overflowing pool arithmetic or
/// allocating billions of shards.
inline constexpr int kMaxModeledDevices = 4096;

/// serve()-side sharding knobs (see StreamOptions::shard).
struct ShardOptions {
  /// Modeled device instances in the group; clamped to >= 1, rejected
  /// past kMaxModeledDevices. Each gets its own worker lanes
  /// (BatchOptions::workers *per device*), its own modeled kernel-map
  /// cache, and its own clock/utilization counters.
  int devices = 1;
  RoutePolicy route = RoutePolicy::kLeastLoaded;
};

/// One device's modeled serve outcome. Deterministic throughout; the
/// routing/accounting fields (batches, requests, busy_seconds,
/// map_cache) are additionally worker-count independent, while the
/// placement fields (free_seconds, utilization) legitimately change
/// with the lane count — more lanes drain the same assigned work
/// earlier (see the header comment).
struct DeviceShardStats {
  int device = 0;
  std::size_t batches = 0;          // dispatched batches routed here
  std::size_t requests = 0;         // requests inside those batches
  double busy_seconds = 0;          // assigned modeled service + overhead
  double free_seconds = 0;          // modeled clock when the last lane frees
  double utilization = 0;           // busy / (workers * group makespan)
  /// Per-device submission-order kernel-map cache accounting; zeros when
  /// the cache is disabled.
  MapCacheReplayStats map_cache;
};

/// N modeled instances of one device spec. Owns each shard's modeled
/// kernel-map cache (driven in record mode by the deterministic
/// accounting pass), worker-lane clock, and utilization counters.
/// Single-threaded by design: it lives inside the scheduling pass, not
/// on the measurement pool's hot path.
class DeviceGroup {
 public:
  /// `devices` is clamped to >= 1 and must not exceed
  /// kMaxModeledDevices (std::invalid_argument). Each shard's spec is
  /// `base` with device_index stamped to its shard id; each shard's
  /// modeled cache gets its own `map_cache_bytes` byte budget (0 =
  /// caching disabled, every record-mode lookup misses).
  DeviceGroup(const DeviceSpec& base, int devices,
              std::size_t map_cache_bytes);

  int size() const { return static_cast<int>(shards_.size()); }
  const DeviceSpec& spec(int device) const;
  KernelMapCache& cache(int device);
  const KernelMapCache& cache(int device) const;

  /// Prepares a fresh schedule pass: `workers` lanes per device at t=0,
  /// zeroed busy clocks and stats, cold modeled caches. Called by
  /// schedule_stream_sharded; a reused group therefore accounts every
  /// serve call from a cold modeled state, exactly like the single-device
  /// MapCacheReplay it generalizes.
  void begin_schedule(int workers_per_device);

  /// Routing query: device with the least accumulated modeled work
  /// (ties -> lowest id).
  int least_loaded() const;

  /// Ownership query: lowest device id whose modeled cache currently
  /// holds `key`, or -1 when none does.
  int owner_of(const MapCacheKey& key) const;

  /// Places one batch (modeled dispatch stamp, per-batch overhead,
  /// member service times appended back-to-back) on `device`'s earliest
  /// available lane. Returns the lane index; writes the batch's start
  /// and finish stamps, and advances the device's clock, busy counter,
  /// and batch/request tallies.
  int place_batch(int device, double dispatch_seconds,
                  double overhead_seconds,
                  const std::vector<double>& member_service_seconds,
                  double* start_seconds, double* finish_seconds);

  /// Mutable per-device accounting (the scheduler fills map_cache and
  /// the final free/utilization fields).
  DeviceShardStats& stats(int device);
  const DeviceShardStats& stats(int device) const;

  /// Modeled time at which `device`'s last-busy lane frees.
  double lane_high_water(int device) const;

 private:
  struct Shard {
    DeviceSpec spec;
    std::unique_ptr<KernelMapCache> cache;
    std::vector<double> lane_free;  // per-worker modeled free time
    DeviceShardStats stats;
  };

  Shard& shard_at(int device);
  const Shard& shard_at(int device) const;

  std::size_t map_cache_bytes_;
  std::vector<Shard> shards_;
};

}  // namespace ts::serve
