// Multi-device sharded serving: a group of N modeled device instances
// with per-device worker lanes, per-device modeled kernel-map caches,
// and per-device clock/utilization accounting.
//
// The paper's engine is single-device; at serving scale the next
// throughput multiplier is sharding the stream across devices. Where the
// win actually comes from — per Tangram's affinity-aware placement of
// serverless work onto GPUs that already hold the warm state (PAPERS.md)
// — is routing: a dispatched batch that lands on the device whose cache
// already holds its kernel maps pays the warm re-key cost instead of the
// full map rebuild. The KernelMapCache's content digests (PR 3) make
// that signal exact, so the dispatcher can ask "which device owns this
// batch's dominant digest?" and route accordingly.
//
// Fleets are heterogeneous: a group is a vector of DeviceSpecs, one per
// shard, so a deployment can mix GPU generations (the paper's 1080Ti /
// 2080Ti / 3090 evaluation matrix) in one group. Heterogeneity enters
// the modeled schedule only through the RoutingPolicy's
// device_service_estimate hook — the group itself never consults the
// specs, which is what keeps homogeneous groups bit-identical to the
// pre-fleet scheduler.
//
// Scale: the scheduling core is discrete-event. Each shard keeps its
// worker lanes as a min-heap of (modeled-free-time, lane) events and the
// group keeps an ordered (busy_seconds, device) load index plus a
// digest->owners map mirroring the modeled caches, so placing a batch is
// O(log lanes), least_loaded() is O(1), and owner_of() is O(1) expected —
// independent of fleet size, per the ROADMAP's "hundreds of modeled
// devices" north star. The heap pops the true minimum of a total order
// ((free, lane), ties impossible), so it reproduces the old
// lowest-index-lane linear scan exactly (pinned by test).
//
// Determinism contract. Routing runs inside the deterministic accounting
// pass (schedule_stream_sharded), over the submission-ordered request
// stream — never over racy wall-clock cache state. Two consequences:
//  * With one device, every policy degenerates to device 0 and the
//    schedule/accounting math reduces exactly to the single-device
//    serve path: results and stats are bit-identical to a 1-device run.
//  * Routing inputs (accumulated modeled work, modeled cache ownership)
//    are independent of the per-device worker-lane count, so per-device
//    cache accounting — and every modeled serve statistic — is invariant
//    to worker count at every device count (tests/test_device_group.cpp).
#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/kernel_map_cache.hpp"
#include "gpusim/device.hpp"
#include "serve/fault.hpp"

namespace ts::serve {

/// Built-in batch-routing policies of the sharded dispatcher. Each is
/// also available as a RoutingPolicy object via make_routing_policy
/// (serve_policies.hpp), which is where custom policies plug in.
enum class RoutePolicy {
  /// Batch k to device k mod N. The baseline: perfectly fair, blind to
  /// both load imbalance and cache state.
  kRoundRobin,
  /// Device with the least accumulated modeled work (earliest modeled
  /// free time on the device's work queue; ties -> lowest id). Computed
  /// from assigned service + overhead seconds — deliberately not from
  /// lane state, so routing (and therefore per-device cache accounting)
  /// is independent of the per-device worker count.
  kLeastLoaded,
  /// Device whose modeled cache already owns the batch's dominant
  /// kernel-map digest (the content key with the largest summed cold
  /// mapping charge across the batch's cache events); falls back to
  /// least-loaded when no device owns it (cold digest, or caching off).
  kCacheAffinity,
  /// Heterogeneous-fleet routing: device with the earliest estimated
  /// completion (accumulated modeled work + the batch's service time
  /// scaled to the device's tier relative to spec(0), the measurement
  /// reference). Grouped-GEMM-heavy batches gravitate to tensor-core
  /// tiers, map/data-movement-heavy ones to the bandwidth-competitive
  /// 1080Ti tier. On a homogeneous group every scale factor is exactly
  /// 1 and the rule degenerates to least_loaded (bit-identical, pinned
  /// by test).
  kEstimateAware,
};

const char* to_string(RoutePolicy p);

/// Upper bound on modeled device instances per group. Far above any
/// realistic deployment; exists so an absurd request fails loudly
/// (std::invalid_argument) instead of overflowing pool arithmetic or
/// allocating billions of shards.
inline constexpr int kMaxModeledDevices = 4096;

/// serve()-side sharding knobs (see StreamOptions::shard).
struct ShardOptions {
  /// Modeled device instances in the group; clamped to >= 1, rejected
  /// past kMaxModeledDevices. Each gets its own worker lanes
  /// (BatchOptions::workers *per device*), its own modeled kernel-map
  /// cache, and its own clock/utilization counters. Ignored when
  /// ServerConfig::fleet names per-shard specs explicitly.
  int devices = 1;
  RoutePolicy route = RoutePolicy::kLeastLoaded;
};

/// One tier of a heterogeneous fleet description: `count` instances of
/// `spec` (see ServerConfig::with_fleet and expand_fleet).
struct FleetTier {
  DeviceSpec spec;
  int count = 1;
};

/// Expands a tier list into the per-shard spec vector a DeviceGroup
/// consumes, in tier order. Validation (std::invalid_argument, with the
/// offending tier named): the list must be non-empty, every count >= 1,
/// and the total must not exceed kMaxModeledDevices.
std::vector<DeviceSpec> expand_fleet(const std::vector<FleetTier>& tiers);

/// One device's modeled serve outcome. Deterministic throughout; the
/// routing/accounting fields (batches, requests, busy_seconds,
/// map_cache) are additionally worker-count independent, while the
/// placement fields (free_seconds, utilization) legitimately change
/// with the lane count — more lanes drain the same assigned work
/// earlier (see the header comment).
struct DeviceShardStats {
  int device = 0;
  std::string name;                 // the shard's DeviceSpec::name
  /// Dispatched batches / member requests placed here. Under a
  /// FaultPlan these count every placement *attempt*, including ones a
  /// fault later killed — the shard really spent that modeled time
  /// before it went down, and the lost work is what the availability
  /// figures (bench/fig21) measure.
  std::size_t batches = 0;          // dispatched batches routed here
  std::size_t requests = 0;         // requests inside those batches
  double busy_seconds = 0;          // assigned modeled service + overhead
  double free_seconds = 0;          // modeled clock when the last lane frees
  double utilization = 0;           // busy / (workers * group makespan)
  /// Per-device submission-order kernel-map cache accounting; zeros when
  /// the cache is disabled.
  MapCacheReplayStats map_cache;
};

/// A fleet of modeled device instances — one DeviceSpec per shard,
/// possibly heterogeneous. Owns each shard's modeled kernel-map cache
/// (driven in record mode by the deterministic accounting pass),
/// worker-lane event heap, and utilization counters. Single-threaded by
/// design: it lives inside the scheduling pass, not on the measurement
/// pool's hot path.
class DeviceGroup {
 public:
  /// Heterogeneous fleet: one shard per spec, in order, with
  /// device_index stamped to the shard id. Each shard's modeled cache
  /// gets its own `map_cache_bytes` byte budget (0 = caching disabled,
  /// every record-mode lookup misses). Throws std::invalid_argument on
  /// an empty fleet or one past kMaxModeledDevices.
  DeviceGroup(std::vector<DeviceSpec> fleet, std::size_t map_cache_bytes);

  /// Homogeneous fleet: `devices` copies of `base`. Delegates to the
  /// fleet constructor (bit-identical shards); keeps the legacy
  /// semantics of clamping `devices` to >= 1 and rejecting counts past
  /// kMaxModeledDevices (std::invalid_argument).
  DeviceGroup(const DeviceSpec& base, int devices,
              std::size_t map_cache_bytes);

  int size() const { return static_cast<int>(shards_.size()); }
  const DeviceSpec& spec(int device) const;

  /// Direct cache access for observability and tests. Record-mode
  /// *writes* must go through DeviceGroup::record_lookup instead, so the
  /// digest->owner index stays in sync with the cache population.
  KernelMapCache& cache(int device);
  const KernelMapCache& cache(int device) const;

  /// Record-mode lookup on `device`'s modeled cache, keeping the
  /// group's digest->owner index in sync with the admission/eviction
  /// deltas. Same decisions as KernelMapCache::record_lookup (and
  /// therefore bit-compatible with MapCacheReplay).
  KernelMapCache::RecordOutcome record_lookup(int device,
                                              const MapCacheKey& key,
                                              std::size_t bytes);

  /// Installs a warm-start manifest: at every subsequent begin_schedule,
  /// each shard's freshly recreated modeled cache is pre-populated with
  /// the snapshot's entries (LRU-first admission order, so the seeded
  /// cache reproduces the saving cache's residency and eviction order —
  /// the MRU suffix survives when this group's byte budget is smaller),
  /// and the digest->owner index is seeded to match. Every shard seeds
  /// identically from the same manifest, before any request is routed,
  /// which keeps warm-started accounting deterministic and
  /// worker-count invariant. Pass nullptr to go back to cold starts.
  void warm_start(std::shared_ptr<const MapCacheSnapshot> snapshot);

  /// Prepares a fresh schedule pass: `workers` lanes per device at t=0,
  /// zeroed busy clocks and stats, cold modeled caches (and an empty
  /// owner index) — or snapshot-seeded ones when a warm-start manifest
  /// is installed. Called by schedule_stream_sharded; a reused group
  /// therefore accounts every serve call from the same starting state,
  /// exactly like the single-device MapCacheReplay it generalizes.
  void begin_schedule(int workers_per_device);

  /// Routing query: device with the least accumulated modeled work
  /// (ties -> lowest id). O(1): reads the front of the ordered
  /// (busy_seconds, device) load index place_batch maintains. With a
  /// fault injector attached the query is health-aware: DOWN shards are
  /// skipped and each candidate's work is discounted by its current
  /// service factor (DEGRADED/PROBATION shards look proportionally more
  /// loaded); when every shard is DOWN it falls back to the raw front.
  /// Without an injector the legacy O(1) read is untouched.
  int least_loaded() const;

  /// Ownership query: lowest device id whose modeled cache currently
  /// holds `key`, or -1 when none does. O(1) expected via the
  /// digest->owners index (kept in sync by record_lookup /
  /// begin_schedule) — never a scan over the fleet. Health-aware with
  /// an injector attached: DOWN owners are skipped (first routable
  /// owner wins; -1 when every owner is DOWN).
  int owner_of(const MapCacheKey& key) const;

  // -- Fault-tolerance hooks (see serve/fault.hpp) --------------------

  /// Attaches the scheduler's fault injector so routing queries become
  /// health-aware. The group does not own the injector; pass nullptr to
  /// detach (mandatory before the injector dies when the group outlives
  /// the schedule pass). No injector = every shard permanently kUp.
  void attach_fault_injector(const FaultInjector* injector);
  const FaultInjector* fault_injector() const { return injector_; }

  /// Shard health at the injector's frontier; kUp without an injector.
  ShardHealth health(int device) const;

  /// Modeled service multiplier for `device` at the injector's
  /// frontier; 1.0 without an injector.
  double service_factor(int device) const;

  /// Crash semantics: drops `device`'s modeled cache (fresh cold cache)
  /// and purges the device from the digest->owners index — the crashed
  /// shard's warm state is gone.
  void invalidate_shard_cache(int device);

  /// Outage-end semantics: rebases every lane of `device` to modeled
  /// time `at_seconds` (an outage leaves no lane mid-batch — in-flight
  /// work was re-enqueued at activation) and, when `replacement` is
  /// true and a warm-start manifest is installed, re-seeds the fresh
  /// cache from the snapshot (LRU-first record-mode re-admission,
  /// mirrored into the owner index) — the Tangram move: a replacement
  /// shard comes up warm instead of cold.
  void revive_shard(int device, double at_seconds, bool replacement);

  /// Places one batch (modeled dispatch stamp, per-batch overhead,
  /// member service times appended back-to-back) on `device`'s earliest
  /// available lane — O(log lanes) against the shard's event heap, with
  /// ties broken toward the lowest lane index exactly like the legacy
  /// lane-vector scan. Returns the lane index; writes the batch's start
  /// and finish stamps, and advances the device's clock, busy counter,
  /// and batch/request tallies.
  int place_batch(int device, double dispatch_seconds,
                  double overhead_seconds,
                  const std::vector<double>& member_service_seconds,
                  double* start_seconds, double* finish_seconds);

  /// Mutable per-device accounting (the scheduler fills map_cache and
  /// the final free/utilization fields).
  DeviceShardStats& stats(int device);
  const DeviceShardStats& stats(int device) const;

  /// Modeled time at which `device`'s last-busy lane frees.
  double lane_high_water(int device) const;

 private:
  struct Shard {
    DeviceSpec spec;
    std::unique_ptr<KernelMapCache> cache;
    /// Discrete-event lane state: min-heap (std::greater over
    /// (free_time, lane)) of per-worker modeled free-time events.
    /// Empty until begin_schedule.
    std::vector<std::pair<double, int>> lane_events;
    double lane_high_water = 0;  // max finish placed so far
    DeviceShardStats stats;
  };

  Shard& shard_at(int device);
  const Shard& shard_at(int device) const;

  /// Applies one cache admission/eviction outcome on `device` to the
  /// digest->owners index (shared by record_lookup and warm seeding).
  void mirror_outcome(int device, const MapCacheKey& key,
                      const KernelMapCache::RecordOutcome& out);

  std::size_t map_cache_bytes_;
  std::shared_ptr<const MapCacheSnapshot> warm_snapshot_;
  /// Non-owning health view; nullptr = fault-free (every query kUp).
  const FaultInjector* injector_ = nullptr;
  std::vector<Shard> shards_;
  /// Ordered (busy_seconds, device) pairs, one per shard; begin() is the
  /// least-loaded device with the lowest-id tie-break for free.
  std::set<std::pair<double, int>> load_;
  /// digest -> sorted device ids whose modeled cache holds it.
  std::unordered_map<MapCacheKey, std::vector<int>, MapCacheKeyHash> owners_;
};

}  // namespace ts::serve
