#include "serve/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace ts::serve {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kStall: return "stall";
    case FaultKind::kSlowdown: return "slowdown";
  }
  return "?";
}

const char* to_string(ShardHealth h) {
  switch (h) {
    case ShardHealth::kUp: return "up";
    case ShardHealth::kDegraded: return "degraded";
    case ShardHealth::kDown: return "down";
    case ShardHealth::kProbation: return "probation";
  }
  return "?";
}

void validate_fault_plan(const FaultPlan& plan, int devices) {
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    const DeviceFault& f = plan.faults[i];
    const std::string who = "FaultPlan: fault " + std::to_string(i);
    if (f.device < 0 || f.device >= devices)
      throw std::invalid_argument(
          who + " targets device " + std::to_string(f.device) +
          " outside [0, " + std::to_string(devices) + ")");
    if (f.at_dispatch < 0 &&
        (!std::isfinite(f.at_seconds) || f.at_seconds < 0))
      throw std::invalid_argument(
          who + ": at_seconds must be finite and >= 0");
    if (!(f.duration_seconds > 0))  // NaN and <= 0 both fail here
      throw std::invalid_argument(who + ": duration_seconds must be > 0");
    if (f.kind == FaultKind::kStall && !std::isfinite(f.duration_seconds))
      throw std::invalid_argument(
          who + ": a stall must have a finite duration (a permanent "
          "outage is a crash)");
    if (f.kind == FaultKind::kSlowdown &&
        (!std::isfinite(f.slowdown_factor) || f.slowdown_factor < 1))
      throw std::invalid_argument(
          who + ": slowdown_factor must be finite and >= 1");
  }
}

void validate_fault_tolerance(const FaultToleranceOptions& opt) {
  if (opt.max_attempts < 1)
    throw std::invalid_argument(
        "FaultToleranceOptions: max_attempts must be >= 1");
  if (!std::isfinite(opt.retry_backoff_seconds) ||
      opt.retry_backoff_seconds < 0)
    throw std::invalid_argument(
        "FaultToleranceOptions: retry_backoff_seconds must be finite and "
        ">= 0");
  if (!std::isfinite(opt.probation_seconds) || opt.probation_seconds < 0)
    throw std::invalid_argument(
        "FaultToleranceOptions: probation_seconds must be finite and >= 0");
  if (!std::isfinite(opt.probation_factor) || opt.probation_factor < 1)
    throw std::invalid_argument(
        "FaultToleranceOptions: probation_factor must be finite and >= 1");
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    const double d =
        opt.degrade_deadline_seconds[static_cast<std::size_t>(c)];
    if (std::isnan(d) || d < 0)
      throw std::invalid_argument(
          "FaultToleranceOptions: degrade_deadline_seconds[" +
          std::to_string(c) + "] must be >= 0 (infinity = never shed)");
  }
}

FaultInjector::FaultInjector(const FaultPlan& plan,
                             const FaultToleranceOptions& opt, int devices)
    : opt_(opt) {
  if (devices < 1)
    throw std::invalid_argument("FaultInjector: devices must be >= 1");
  validate_fault_plan(plan, devices);
  validate_fault_tolerance(opt_);
  entries_.reserve(plan.faults.size());
  for (const DeviceFault& f : plan.faults) entries_.push_back({f, false});
  shards_.assign(static_cast<std::size_t>(devices), ShardState{});
}

void FaultInjector::reset() {
  for (Entry& e : entries_) e.spent = false;
  shards_.assign(shards_.size(), ShardState{});
  frontier_ = 0;
  activations_ = 0;
}

const FaultInjector::ShardState& FaultInjector::shard_at(int device) const {
  if (device < 0 || device >= devices())
    throw std::out_of_range("FaultInjector: device " +
                            std::to_string(device) + " out of range [0, " +
                            std::to_string(devices()) + ")");
  return shards_[static_cast<std::size_t>(device)];
}

bool FaultInjector::pop_event(double limit_seconds, long long dispatch_index,
                              double index_stamp, FaultEvent* out) {
  // Earliest due candidate under a (stamp, recovery < activation, plan
  // position) total order — pure state, so the event sequence replays
  // identically for identical inputs.
  bool found = false;
  double best_stamp = 0;
  int best_rank = 0;        // 0 = recovery, 1 = activation
  std::size_t best_ord = 0; // device (recovery) / plan index (activation)
  auto consider = [&](double stamp, int rank, std::size_t ord) {
    if (!found || stamp < best_stamp ||
        (stamp == best_stamp &&
         (rank < best_rank || (rank == best_rank && ord < best_ord)))) {
      found = true;
      best_stamp = stamp;
      best_rank = rank;
      best_ord = ord;
    }
  };
  for (int d = 0; d < devices(); ++d) {
    const ShardState& st = shards_[static_cast<std::size_t>(d)];
    if (st.recovery_pending && st.down_until <= limit_seconds)
      consider(st.down_until, 0, static_cast<std::size_t>(d));
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.spent) continue;
    double stamp;
    if (e.fault.at_dispatch >= 0) {
      if (dispatch_index < e.fault.at_dispatch) continue;
      stamp = std::max(index_stamp, frontier_);
    } else {
      stamp = std::max(e.fault.at_seconds, frontier_);
    }
    if (stamp <= limit_seconds) consider(stamp, 1, i);
  }
  if (!found) return false;

  frontier_ = std::max(frontier_, best_stamp);
  if (best_rank == 0) {
    ShardState& st = shards_[best_ord];
    const bool replacement = st.crashed;
    st.recovery_pending = false;
    st.crashed = false;
    st.probation_until = best_stamp + opt_.probation_seconds;
    if (out)
      *out = FaultEvent{FaultEvent::Type::kRecovery, best_stamp,
                        static_cast<int>(best_ord),
                        replacement ? FaultKind::kCrash : FaultKind::kStall,
                        replacement};
    return true;
  }

  Entry& e = entries_[best_ord];
  e.spent = true;
  ++activations_;
  ShardState& st = shards_[static_cast<std::size_t>(e.fault.device)];
  if (e.fault.kind == FaultKind::kSlowdown) {
    st.degraded_until =
        std::max(st.degraded_until, best_stamp + e.fault.duration_seconds);
    st.slowdown = e.fault.slowdown_factor;
  } else {
    // A fault landing mid-outage extends the outage; a crash taints it
    // (the recovery then brings up a replacement, not the original).
    const bool was_down = best_stamp < st.down_until;
    const double until = best_stamp + e.fault.duration_seconds;
    st.down_until = was_down ? std::max(st.down_until, until) : until;
    if (e.fault.kind == FaultKind::kCrash)
      st.crashed = true;
    else if (!was_down)
      st.crashed = false;
    st.recovery_pending = std::isfinite(st.down_until);
  }
  if (out)
    *out = FaultEvent{FaultEvent::Type::kActivation, best_stamp,
                      e.fault.device, e.fault.kind, false};
  return true;
}

void FaultInjector::advance(double now_seconds) {
  frontier_ = std::max(frontier_, now_seconds);
}

void FaultInjector::end_of_plan() {
  for (Entry& e : entries_)
    if (!e.spent && e.fault.at_dispatch >= 0) e.spent = true;
}

double FaultInjector::next_event_stamp() const {
  double next = std::numeric_limits<double>::infinity();
  for (const ShardState& st : shards_)
    if (st.recovery_pending) next = std::min(next, st.down_until);
  for (const Entry& e : entries_)
    if (!e.spent && e.fault.at_dispatch < 0)
      next = std::min(next, std::max(e.fault.at_seconds, frontier_));
  return next;
}

ShardHealth FaultInjector::health(int device) const {
  const ShardState& st = shard_at(device);
  if (frontier_ < st.down_until) return ShardHealth::kDown;
  if (frontier_ < st.degraded_until) return ShardHealth::kDegraded;
  if (frontier_ < st.probation_until) return ShardHealth::kProbation;
  return ShardHealth::kUp;
}

double FaultInjector::service_factor(int device) const {
  switch (health(device)) {
    case ShardHealth::kDegraded:
      return shard_at(device).slowdown;
    case ShardHealth::kProbation:
      return opt_.probation_factor;
    default:
      return 1.0;
  }
}

double FaultInjector::earliest_recovery() const {
  double next = std::numeric_limits<double>::infinity();
  for (const ShardState& st : shards_)
    if (frontier_ < st.down_until && st.recovery_pending)
      next = std::min(next, st.down_until);
  return next;
}

bool FaultInjector::any_routable() const {
  for (int d = 0; d < devices(); ++d)
    if (health(d) != ShardHealth::kDown) return true;
  return false;
}

bool FaultInjector::vulnerable(int device, double finish_seconds) const {
  for (const Entry& e : entries_) {
    if (e.spent || e.fault.device != device) continue;
    if (e.fault.kind == FaultKind::kSlowdown) continue;  // never kills work
    if (e.fault.at_dispatch >= 0) {
      // Future dispatch stamps are >= the frontier; only once the
      // frontier reaches the finish is the batch out of reach.
      if (frontier_ < finish_seconds) return true;
    } else if (e.fault.at_seconds < finish_seconds) {
      return true;
    }
  }
  return false;
}

}  // namespace ts::serve
