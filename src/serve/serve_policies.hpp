// Pluggable serving policies: batch formation and device routing.
//
// PR 1-4 grew the serving runtime around two hard-coded decision points
// — the DynamicBatcher's enum-selected dispatch rule and the
// RoutePolicy switch inside the sharded scheduler. This header turns
// both into interfaces so a serve::Server composes its scheduling
// discipline instead of switching on enums:
//
//  * BatchingPolicy — groups the drained request stream into dispatch
//    batches. The default SloBatchingPolicy keeps the SLO-aware
//    deadline rule of dynamic_batcher.hpp and adds strict-priority-
//    plus-aging member selection (priority.hpp); on a single-class
//    stream it reproduces DynamicBatcher's plan batch-for-batch.
//  * RoutingPolicy — maps each dispatched batch onto one device of a
//    DeviceGroup. round_robin / least_loaded / cache_affinity /
//    estimate_aware are the built-in implementations
//    (make_routing_policy), and the device_service_estimate hook is how
//    heterogeneous fleets enter the schedule: a policy that models
//    per-device speed factors (estimate_aware derives them from the
//    fleet's DeviceSpecs) makes the scheduler place batches with the
//    estimated device-local service times.
//
// Both interfaces are driven single-threaded from inside the
// deterministic serving pass: decisions may depend only on modeled
// inputs (arrival stamps, accumulated modeled work, modeled cache
// ownership), never on wall-clock or lane state, which is what keeps
// every modeled statistic reproducible and worker-count invariant.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/kernel_map_cache.hpp"
#include "serve/device_group.hpp"
#include "serve/dynamic_batcher.hpp"
#include "serve/priority.hpp"

namespace ts::serve {

/// One drained request as the batching policy sees it: its scheduling
/// id (index into the drained stream), modeled arrival stamp, priority
/// class, and (when the policy asked for it via wants_digests) the
/// request's input content digest — the duplicate-grouping key.
struct ArrivalInfo {
  std::size_t id = 0;
  double arrival_seconds = 0;
  Priority priority = Priority::kNormal;
  /// Registry index of the request's target model (0 on single-model
  /// streams). Validated against the policy's model table on feed.
  int model = 0;
  /// input_content_digest of the request's tensor; meaningful only when
  /// has_digest is set (the serving loop computes digests only for
  /// policies that want them).
  MapCacheKey digest;
  bool has_digest = false;
};

/// One dispatch decision of a BatchingPolicy: `members` (scheduling
/// ids, in the order they will run back-to-back on their lane) leave
/// the batcher together at `dispatch_seconds`. Unlike the legacy
/// PlannedBatch, members need not be contiguous — priority selection
/// reorders across arrival order. Contract: members are non-empty,
/// each id is dispatched exactly once per stream, every member arrived
/// at or before `dispatch_seconds`, and stamps are non-decreasing
/// across the emitted sequence.
struct DispatchBatch {
  std::vector<std::size_t> members;
  double dispatch_seconds = 0;
  /// Registry index of the model every member targets. Batches never mix
  /// models — one batch is one kernel launch group under one model's
  /// tuned parameters and cache namespace — so this is a batch-level
  /// field, not per member. 0 on single-model streams.
  int model = 0;
};

/// Batch-formation interface. Driven by the single serving loop in
/// feed order: one on_arrival per drained request (non-decreasing
/// modeled stamps), then one flush at end of stream. flush() must
/// dispatch everything still pending and reset the policy for reuse.
/// Implementations must be deterministic functions of the fed stream.
class BatchingPolicy {
 public:
  virtual ~BatchingPolicy() = default;

  /// Feeds the next drained request; returns every batch its arrival
  /// closes (possibly none, possibly several when a backlog drains).
  virtual std::vector<DispatchBatch> on_arrival(const ArrivalInfo& arrival) = 0;

  /// End of stream: dispatches all remaining pending requests (modeled
  /// as instantaneous at the last arrival stamp) and resets state.
  virtual std::vector<DispatchBatch> flush() = 0;

  /// Requests currently held back waiting for a dispatch trigger.
  virtual std::size_t pending() const = 0;

  /// True when the policy groups on input content digests; the serving
  /// loop then computes ArrivalInfo::digest for every drained request
  /// (an O(points) hash it skips for digest-blind policies).
  virtual bool wants_digests() const { return false; }

  virtual const char* name() const = 0;
};

/// The default batching policy: the SLO-aware deadline rule of
/// DynamicBatcher, generalized with strict-priority-plus-aging member
/// selection.
///
/// Triggers (evaluated on the modeled clock, kSloAware):
///  * Class-full: the moment the highest pending effective class holds
///    `max_batch` requests, a batch of them dispatches. Lower classes
///    never count toward this trigger while a higher class is pending —
///    that is the strict-priority gate.
///  * Deadline: when the earliest wait-budget expiry among all pending
///    requests (arrival + slo_budget_seconds) passes, a batch
///    dispatches at that stamp.
/// Selection at a dispatch: among requests arrived by the dispatch
/// stamp, order by (effective class, arrival, id) and take up to
/// max_batch; the rest stay pending. Effective class = static class
/// promoted one level per PriorityOptions::aging_seconds of wait, so
/// with aging enabled an old low-class request eventually ties the top
/// class and wins its slot by arrival; with aging disabled (default)
/// selection is strictly by static class.
///
/// kImmediate / kFullBatch keep their dynamic_batcher.hpp meanings
/// (cap 1 / no deadline). On a stream where every request has the same
/// priority, all three policies reproduce DynamicBatcher's plan
/// batch-for-batch and stamp-for-stamp (pinned by test) — which is how
/// the legacy BatchRunner::serve wrapper stays bit-identical.
/// Per-model batching parameters for a multi-model SloBatchingPolicy:
/// the model's SLO wait budget (deadline trigger) and its deficit-round-
/// robin weight (cross-model fairness share).
struct ModelBatchingInfo {
  /// Wait budget for this model's deadline trigger; a negative value
  /// (the default) inherits BatcherOptions::slo_budget_seconds.
  double slo_budget_seconds = -1;
  /// Relative dispatch share under contention (deficit round-robin
  /// credit earned per dispatch opportunity). Must be finite and > 0.
  double weight = 1.0;
};

class SloBatchingPolicy : public BatchingPolicy {
 public:
  /// Preconditions (std::invalid_argument): slo_budget_seconds finite
  /// and >= 0; priority.aging_seconds > 0 (infinity = aging off); every
  /// ModelBatchingInfo has finite weight > 0 and a finite-or-negative
  /// SLO budget.
  ///
  /// `models` describes the multi-model registry. Empty (the default)
  /// or a single entry keeps the legacy single-model discipline —
  /// structurally bit-identical dispatch plans, pinned by test. With
  /// two or more entries the policy becomes model-aware:
  ///  * Batches are single-model (DispatchBatch::model): one batch is
  ///    one launch group under one model's tuned parameters.
  ///  * Cross-model fairness is deficit round-robin *within* the top
  ///    effective priority class: at each dispatch, every model with
  ///    eligible top-class requests earns its weight in credit, the
  ///    richest model (ties -> lowest id) dispatches, and its credit is
  ///    debited by the members taken. Strict priority still dominates —
  ///    DRR only arbitrates among models competing at the same class.
  ///  * The deadline trigger honors per-model SLO budgets: the earliest
  ///    (arrival + budget(model)) expiry fires, and the dispatch is
  ///    forced onto the firing request's model so a quiet model's
  ///    deadline can never be starved by a busy model's credit lead.
  explicit SloBatchingPolicy(BatcherOptions opt,
                             PriorityOptions priority = {},
                             std::vector<ModelBatchingInfo> models = {});

  std::vector<DispatchBatch> on_arrival(const ArrivalInfo& arrival) override;
  std::vector<DispatchBatch> flush() override;
  std::size_t pending() const override { return pending_.size(); }
  const char* name() const override { return "slo-priority"; }

  const BatcherOptions& options() const { return opt_; }
  const PriorityOptions& priority_options() const { return prio_; }
  const std::vector<ModelBatchingInfo>& models() const { return models_; }

  /// Convenience for offline sweeps: plans a whole arrival trace at
  /// once — on_arrival over each entry, then flush. `policy`-object
  /// streams plan the same way through plan_with below.
  static std::vector<DispatchBatch> plan(
      const std::vector<ArrivalInfo>& arrivals, const BatcherOptions& opt,
      const PriorityOptions& priority = {});

 protected:
  struct Pending {
    std::size_t id = 0;
    double arrival = 0;
    Priority priority = Priority::kNormal;
    int model = 0;
    MapCacheKey digest;
    bool has_digest = false;
  };

  int effective_class(const Pending& p, double now) const;
  int batch_cap() const;
  const std::vector<Pending>& pending_requests() const { return pending_; }

  /// Trigger hook: true while the class-full rule holds at `now`. The
  /// base rule fires when the highest pending effective class holds
  /// batch_cap() requests; DedupBatchingPolicy overrides it to count
  /// distinct digests instead.
  virtual bool class_full(double now) const;

  /// Selection hook: `eligible` holds positions into the pending list
  /// (requests arrived by `stamp`), sorted by (effective class,
  /// arrival, id). Returns the positions to dispatch, in batch-member
  /// order. The base policy takes the first batch_cap() of them.
  virtual std::vector<std::size_t> select_members(
      const std::vector<std::size_t>& eligible, double stamp);

 private:
  /// Dispatches one batch at `when`: strict-priority-plus-aging
  /// selection among requests arrived by `when`, through the
  /// select_members hook. On a multi-model policy the batch is confined
  /// to one model — `forced_model` (a deadline firing) when valid, the
  /// deficit-round-robin winner otherwise; -1 always means "let DRR
  /// decide". Single-model policies ignore the parameter entirely.
  void dispatch_at(double when, std::vector<DispatchBatch>& out,
                   int forced_model = -1);

  /// True when the policy arbitrates across a real registry (two or
  /// more models); single-entry and empty tables run the legacy path.
  bool multi_model() const { return models_.size() > 1; }

  /// Effective SLO wait budget for `model` (the per-model override, or
  /// BatcherOptions::slo_budget_seconds when inherited / unregistered).
  double budget(int model) const;

  BatcherOptions opt_;
  PriorityOptions prio_;
  /// Registry-aligned model table (empty = legacy single-model).
  std::vector<ModelBatchingInfo> models_;
  /// Deficit-round-robin credit per model (parallel to models_): earned
  /// at each dispatch opportunity, spent by winning members. Reset by
  /// flush() so every stream starts from the same fair state.
  std::vector<double> credit_;
  std::vector<Pending> pending_;  // arrival order
  double last_arrival_ = 0;
  double last_dispatch_ = 0;
  bool any_arrival_ = false;
};

/// Runs any batching policy over a whole arrival trace: on_arrival per
/// entry, then flush. The object-parameterized form of
/// SloBatchingPolicy::plan, for offline sweeps and plan-equality tests.
std::vector<DispatchBatch> plan_with(BatchingPolicy& policy,
                                     const std::vector<ArrivalInfo>& arrivals);

/// Duplicate-aware batch formation: SloBatchingPolicy's deadline and
/// strict-priority rules with the batch cap re-read as *distinct
/// content digests* instead of requests, so same-digest requests (the
/// near-duplicate LiDAR scans the kernel-map cache exists for) group
/// into one dispatch and a single cold map build amortizes across all
/// of them.
///
/// The two digest-aware changes, both no-ops on an all-unique stream:
///  * Class-full trigger: the top effective class is full when it holds
///    max_batch distinct digest groups (an undigested request is its
///    own group). Duplicates therefore never fire the trigger early —
///    they wait with their group, bounded as ever by the SLO deadline
///    rule, which is inherited unchanged.
///  * Selection: walk the eligible requests in the usual (effective
///    class, arrival, id) order, but take whole digest groups — a seed
///    plus every eligible same-digest mate of the same effective class
///    — emitted contiguously, until max_batch groups are taken. Mates
///    ride along without consuming cap, so a dispatch may carry more
///    than max_batch requests when digests repeat; strict priority is
///    preserved because a group never crosses an effective-class
///    boundary.
///
/// At 0% duplicates every group is a singleton, both rules degenerate
/// to the base policy's, and the emitted plan is bit-equal to
/// SloBatchingPolicy's (pinned by test). Grouped dispatches feed
/// cache_affinity routing its natural input: one batch, one dominant
/// digest, one owner device.
class DedupBatchingPolicy final : public SloBatchingPolicy {
 public:
  explicit DedupBatchingPolicy(BatcherOptions opt,
                               PriorityOptions priority = {},
                               std::vector<ModelBatchingInfo> models = {});

  bool wants_digests() const override { return true; }
  const char* name() const override { return "slo-dedup"; }

 protected:
  bool class_full(double now) const override;
  std::vector<std::size_t> select_members(
      const std::vector<std::size_t>& eligible, double stamp) override;
};

/// Everything a RoutingPolicy may consult about the batch being routed.
/// `events_of(id)` returns the member's recorded kernel-map cache
/// events, or null when the cache is disabled (cache_affinity then
/// falls back to least-loaded). `service_of(id)` / `timeline_of(id)`
/// expose each member's measured modeled service time and stage
/// timeline on the reference device — what estimate_aware scales into
/// per-tier completion estimates; either may be empty when the caller
/// has nothing measured to offer (policies must fall back gracefully).
struct RouteQuery {
  std::size_t batch_index = 0;
  const std::vector<std::size_t>& members;
  double dispatch_seconds = 0;
  std::function<const std::vector<MapCacheEvent>*(std::size_t)> events_of;
  std::function<double(std::size_t)> service_of;
  std::function<const Timeline*(std::size_t)> timeline_of;
};

/// Batch-routing interface over a DeviceGroup. route() is called once
/// per dispatched batch, in dispatch order, from inside the
/// deterministic scheduling pass; it may read the group's accumulated
/// modeled work (DeviceGroup::least_loaded) and modeled cache ownership
/// (DeviceGroup::owner_of) — never lane state, so routing stays
/// worker-count invariant.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  /// Device index in [0, group.size()) the batch runs on.
  virtual int route(const RouteQuery& query, const DeviceGroup& group) = 0;

  /// Heterogeneous-group hook: the modeled seconds `service_seconds`
  /// of single-device work takes on `device`. The scheduler places and
  /// accounts batches with these estimates, so a policy that models
  /// per-device speed factors (mixed GPU generations) changes lane
  /// occupancy and least-loaded inputs coherently. The default is the
  /// identity — a homogeneous group, bit-identical to the pre-policy
  /// scheduler.
  virtual double device_service_estimate(int device,
                                         double service_seconds) const {
    (void)device;
    return service_seconds;
  }

  virtual const char* name() const = 0;
};

/// The built-in policies (see RoutePolicy in device_group.hpp for the
/// routing rules they implement): round_robin, least_loaded,
/// cache_affinity, estimate_aware. Each is reusable across serving
/// sessions; estimate_aware keeps only per-batch scratch (the scale
/// factors of the batch it last routed) between route() and the
/// scheduler's device_service_estimate calls.
std::unique_ptr<RoutingPolicy> make_routing_policy(RoutePolicy policy);

}  // namespace ts::serve
