#include "serve/serve_policies.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <tuple>

namespace ts::serve {

const char* to_string(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "?";
}

// ---------------------------------------------------------------------
// SloBatchingPolicy
// ---------------------------------------------------------------------

SloBatchingPolicy::SloBatchingPolicy(BatcherOptions opt,
                                     PriorityOptions priority,
                                     std::vector<ModelBatchingInfo> models)
    : opt_(opt), prio_(priority), models_(std::move(models)) {
  if (opt_.max_batch < 1) opt_.max_batch = 1;
  if (!(opt_.slo_budget_seconds >= 0) ||
      !std::isfinite(opt_.slo_budget_seconds))
    throw std::invalid_argument(
        "SloBatchingPolicy: slo_budget_seconds must be finite and >= 0");
  if (!(prio_.aging_seconds > 0))  // NaN and <= 0 both fail here
    throw std::invalid_argument(
        "SloBatchingPolicy: aging_seconds must be > 0 (infinity = aging "
        "off)");
  for (std::size_t m = 0; m < models_.size(); ++m) {
    const ModelBatchingInfo& info = models_[m];
    if (!(info.weight > 0) || !std::isfinite(info.weight))
      throw std::invalid_argument(
          "SloBatchingPolicy: model " + std::to_string(m) +
          " weight must be finite and > 0");
    // A negative budget means "inherit"; a non-negative one must be a
    // usable deadline offset.
    if (info.slo_budget_seconds >= 0 &&
        !std::isfinite(info.slo_budget_seconds))
      throw std::invalid_argument(
          "SloBatchingPolicy: model " + std::to_string(m) +
          " slo_budget_seconds must be finite (or < 0 to inherit)");
    if (std::isnan(info.slo_budget_seconds))
      throw std::invalid_argument(
          "SloBatchingPolicy: model " + std::to_string(m) +
          " slo_budget_seconds must not be NaN");
  }
  credit_.assign(models_.size(), 0.0);
}

double SloBatchingPolicy::budget(int model) const {
  if (model >= 0 && static_cast<std::size_t>(model) < models_.size()) {
    const double b = models_[static_cast<std::size_t>(model)]
                         .slo_budget_seconds;
    if (b >= 0) return b;
  }
  return opt_.slo_budget_seconds;
}

int SloBatchingPolicy::effective_class(const Pending& p, double now) const {
  int c = static_cast<int>(p.priority);
  if (c > 0 && prio_.aging_enabled()) {
    const double waited = now - p.arrival;
    if (waited > 0) {
      // Compare in double before narrowing: a tiny aging interval can
      // put the promotion count far past INT_MAX, and the cast itself
      // would be UB. Any count >= the class index clamps to the top.
      const double promotions = std::floor(waited / prio_.aging_seconds);
      c = promotions >= static_cast<double>(c)
              ? 0
              : c - static_cast<int>(promotions);
    }
  }
  return c;
}

int SloBatchingPolicy::batch_cap() const {
  return opt_.policy == BatchPolicy::kImmediate ? 1 : opt_.max_batch;
}

bool SloBatchingPolicy::class_full(double now) const {
  if (pending_.empty()) return false;
  int top = kNumPriorityClasses;
  for (const Pending& p : pending_) top = std::min(top, effective_class(p, now));
  std::size_t count = 0;
  for (const Pending& p : pending_)
    if (effective_class(p, now) == top) ++count;
  return count >= static_cast<std::size_t>(batch_cap());
}

std::vector<std::size_t> SloBatchingPolicy::select_members(
    const std::vector<std::size_t>& eligible, double stamp) {
  (void)stamp;
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(batch_cap()),
                            eligible.size());
  return std::vector<std::size_t>(eligible.begin(),
                                  eligible.begin() +
                                      static_cast<std::ptrdiff_t>(n));
}

void SloBatchingPolicy::dispatch_at(double when,
                                    std::vector<DispatchBatch>& out,
                                    int forced_model) {
  const double stamp = std::max(when, last_dispatch_);
  // Strict-priority-plus-aging selection among requests that had
  // arrived by the dispatch stamp; later arrivals stay pending (a batch
  // may not contain a request from its own modeled future).
  std::vector<std::size_t> eligible;
  eligible.reserve(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i)
    if (pending_[i].arrival <= stamp) eligible.push_back(i);
  std::sort(eligible.begin(), eligible.end(),
            [&](std::size_t a, std::size_t b) {
              const Pending& pa = pending_[a];
              const Pending& pb = pending_[b];
              return std::make_tuple(effective_class(pa, stamp), pa.arrival,
                                     pa.id) <
                     std::make_tuple(effective_class(pb, stamp), pb.arrival,
                                     pb.id);
            });
  // Cross-model arbitration (registries of 2+ models only — the legacy
  // single-model path never enters this block, keeping its plans
  // structurally untouched): confine the batch to one model, chosen by
  // deficit round-robin within the top eligible effective class, unless
  // a deadline firing forces the model.
  int chosen = 0;
  if (multi_model() && !eligible.empty()) {
    // Dispatch opportunity: every model with eligible work in the top
    // effective class earns its weight. The class gate keeps strict
    // priority dominant — a model with only low-class pending work
    // neither earns credit nor wins while a higher class is waiting.
    const int top = effective_class(pending_[eligible.front()], stamp);
    std::vector<char> candidate(models_.size(), 0);
    for (const std::size_t pos : eligible) {
      const Pending& p = pending_[pos];
      if (effective_class(p, stamp) == top)
        candidate[static_cast<std::size_t>(p.model)] = 1;
    }
    for (std::size_t m = 0; m < models_.size(); ++m)
      if (candidate[m]) credit_[m] += models_[m].weight;
    // A forced model (deadline firing) must have eligible work — the
    // firing request itself arrived by the deadline stamp.
    bool forced_ok = false;
    if (forced_model >= 0 &&
        static_cast<std::size_t>(forced_model) < models_.size()) {
      for (const std::size_t pos : eligible)
        if (pending_[pos].model == forced_model) {
          forced_ok = true;
          break;
        }
    }
    if (forced_ok) {
      chosen = forced_model;
    } else {
      // Richest candidate wins; strict > keeps the lowest model id on
      // exact ties (deterministic — credits are pure FP functions of
      // the fed stream).
      chosen = -1;
      for (std::size_t m = 0; m < models_.size(); ++m) {
        if (!candidate[m]) continue;
        if (chosen < 0 || credit_[m] > credit_[static_cast<std::size_t>(
                                           chosen)])
          chosen = static_cast<int>(m);
      }
      if (chosen < 0) chosen = 0;  // unreachable: eligible is non-empty
    }
    // Filter the sorted eligible set to the chosen model; order (and
    // therefore the select_members contract) is preserved.
    std::vector<std::size_t> mine;
    mine.reserve(eligible.size());
    for (const std::size_t pos : eligible)
      if (pending_[pos].model == chosen) mine.push_back(pos);
    eligible.swap(mine);
  }
  // Membership is the policy-specific part (base: the first batch_cap();
  // dedup: whole digest groups); the trigger and stamp machinery around
  // it is shared.
  std::vector<std::size_t> taken = select_members(eligible, stamp);
  if (taken.empty() && !eligible.empty())
    throw std::logic_error(
        "BatchingPolicy: select_members took no member from a non-empty "
        "eligible set — the dispatch sweep would never terminate");
  if (multi_model())
    credit_[static_cast<std::size_t>(chosen)] -=
        static_cast<double>(taken.size());
  DispatchBatch batch;
  batch.dispatch_seconds = stamp;
  batch.model = taken.empty() ? chosen : pending_[taken.front()].model;
  batch.members.reserve(taken.size());
  for (const std::size_t pos : taken)
    batch.members.push_back(pending_[pos].id);
  // Remove the selected members (positions, highest first, so earlier
  // indices stay valid).
  std::sort(taken.begin(), taken.end());
  for (std::size_t k = taken.size(); k > 0; --k)
    pending_.erase(pending_.begin() +
                   static_cast<std::ptrdiff_t>(taken[k - 1]));
  last_dispatch_ = stamp;
  out.push_back(std::move(batch));
}

std::vector<DispatchBatch> SloBatchingPolicy::on_arrival(
    const ArrivalInfo& arrival) {
  if (!std::isfinite(arrival.arrival_seconds) || arrival.arrival_seconds < 0)
    throw std::invalid_argument(
        "SloBatchingPolicy::on_arrival: arrival time must be finite and >= "
        "0");
  if (any_arrival_ && arrival.arrival_seconds < last_arrival_)
    throw std::invalid_argument(
        "SloBatchingPolicy::on_arrival: arrival times must be "
        "non-decreasing (got " + std::to_string(arrival.arrival_seconds) +
        " after " + std::to_string(last_arrival_) + ")");
  // Model ids index the registry table (and the credit ledger); an
  // unregistered id would corrupt both, so it dies at the feed boundary.
  if (models_.empty()) {
    if (arrival.model != 0)
      throw std::invalid_argument(
          "SloBatchingPolicy::on_arrival: model " +
          std::to_string(arrival.model) +
          " on a single-model policy (only model 0 exists)");
  } else if (arrival.model < 0 ||
             static_cast<std::size_t>(arrival.model) >= models_.size()) {
    throw std::invalid_argument(
        "SloBatchingPolicy::on_arrival: model " +
        std::to_string(arrival.model) + " outside the registry [0, " +
        std::to_string(models_.size()) + ")");
  }

  std::vector<DispatchBatch> out;
  // Deadline sweep: any pending request whose wait budget ran out
  // strictly before this arrival forces a (back-stamped) dispatch; the
  // loop drains a backlog one priority-selected batch at a time. Each
  // dispatched batch is guaranteed at least one member (the request
  // whose deadline fired), so the sweep terminates.
  if (opt_.policy == BatchPolicy::kSloAware) {
    if (multi_model()) {
      // Per-model budgets: the earliest (arrival + budget(model)) expiry
      // fires, and the dispatch is forced onto the firing request's
      // model — a quiet model's deadline can never be out-credited.
      while (!pending_.empty()) {
        double deadline = std::numeric_limits<double>::infinity();
        int firing = -1;
        for (const Pending& p : pending_) {
          const double d = p.arrival + budget(p.model);
          if (d < deadline) {  // strict: ties keep the earliest-fed
            deadline = d;
            firing = p.model;
          }
        }
        if (!(arrival.arrival_seconds > deadline)) break;
        dispatch_at(deadline, out, firing);
      }
    } else {
      while (!pending_.empty()) {
        double oldest = pending_.front().arrival;
        for (const Pending& p : pending_) oldest = std::min(oldest, p.arrival);
        const double deadline = oldest + opt_.slo_budget_seconds;
        if (!(arrival.arrival_seconds > deadline)) break;
        dispatch_at(deadline, out);
      }
    }
  }

  pending_.push_back({arrival.id, arrival.arrival_seconds, arrival.priority,
                      arrival.model, arrival.digest, arrival.has_digest});
  last_arrival_ = arrival.arrival_seconds;
  any_arrival_ = true;

  // Class-full trigger: the highest pending effective class filled a
  // batch. Counting only the top class is the strict-priority gate —
  // lower-class requests neither trigger nor (unless aged up) win
  // slots while a higher class is pending.
  while (class_full(arrival.arrival_seconds))
    dispatch_at(arrival.arrival_seconds, out);
  return out;
}

std::vector<DispatchBatch> SloBatchingPolicy::flush() {
  std::vector<DispatchBatch> out;
  while (!pending_.empty()) dispatch_at(last_arrival_, out);
  last_arrival_ = 0;
  last_dispatch_ = 0;
  any_arrival_ = false;
  // Every stream starts from the same fair state — carried-over credit
  // would make one session's plan depend on the previous session's mix.
  credit_.assign(models_.size(), 0.0);
  return out;
}

std::vector<DispatchBatch> SloBatchingPolicy::plan(
    const std::vector<ArrivalInfo>& arrivals, const BatcherOptions& opt,
    const PriorityOptions& priority) {
  SloBatchingPolicy policy(opt, priority);
  return plan_with(policy, arrivals);
}

std::vector<DispatchBatch> plan_with(
    BatchingPolicy& policy, const std::vector<ArrivalInfo>& arrivals) {
  std::vector<DispatchBatch> plan;
  for (const ArrivalInfo& a : arrivals)
    for (DispatchBatch& b : policy.on_arrival(a)) plan.push_back(std::move(b));
  for (DispatchBatch& b : policy.flush()) plan.push_back(std::move(b));
  return plan;
}

// ---------------------------------------------------------------------
// DedupBatchingPolicy
// ---------------------------------------------------------------------

DedupBatchingPolicy::DedupBatchingPolicy(BatcherOptions opt,
                                         PriorityOptions priority,
                                         std::vector<ModelBatchingInfo> models)
    : SloBatchingPolicy(opt, priority, std::move(models)) {}

bool DedupBatchingPolicy::class_full(double now) const {
  const std::vector<Pending>& pending = pending_requests();
  if (pending.empty()) return false;
  int top = kNumPriorityClasses;
  for (const Pending& p : pending)
    top = std::min(top, effective_class(p, now));
  // Count distinct digest groups in the top class (an undigested request
  // is its own group). Pending sets are small — bounded by the cap's
  // worth of groups plus their duplicates — so a flat scan beats a hash
  // set here, like dominant_digest below.
  std::vector<MapCacheKey> seen;
  std::size_t groups = 0;
  for (const Pending& p : pending) {
    if (effective_class(p, now) != top) continue;
    if (!p.has_digest) {
      ++groups;
      continue;
    }
    bool dup = false;
    for (const MapCacheKey& k : seen)
      if (k == p.digest) {
        dup = true;
        break;
      }
    if (dup) continue;
    seen.push_back(p.digest);
    ++groups;
  }
  return groups >= static_cast<std::size_t>(batch_cap());
}

std::vector<std::size_t> DedupBatchingPolicy::select_members(
    const std::vector<std::size_t>& eligible, double stamp) {
  const std::vector<Pending>& pending = pending_requests();
  const std::size_t cap = static_cast<std::size_t>(batch_cap());
  std::vector<std::size_t> taken;
  taken.reserve(eligible.size());
  std::vector<char> used(eligible.size(), 0);
  std::size_t groups = 0;
  for (std::size_t i = 0; i < eligible.size() && groups < cap; ++i) {
    if (used[i]) continue;
    const Pending& seed = pending[eligible[i]];
    used[i] = 1;
    taken.push_back(eligible[i]);
    ++groups;
    if (!seed.has_digest) continue;
    const int cls = effective_class(seed, stamp);
    // Pull every eligible same-digest mate of the seed's effective class
    // in directly behind it: contiguous emission is what lets the one
    // cold build serve the whole group even when the cache budget is too
    // tight to survive interleaving. Mates never consume cap, and never
    // cross a class boundary — that is the strict-priority gate.
    for (std::size_t j = i + 1; j < eligible.size(); ++j) {
      if (used[j]) continue;
      const Pending& mate = pending[eligible[j]];
      if (!mate.has_digest || !(mate.digest == seed.digest)) continue;
      if (effective_class(mate, stamp) != cls) continue;
      used[j] = 1;
      taken.push_back(eligible[j]);
    }
  }
  return taken;
}

// ---------------------------------------------------------------------
// Built-in routing policies
// ---------------------------------------------------------------------

namespace {

/// The batch's dominant kernel-map digest: the content key with the
/// largest summed cold mapping charge across the members' recorded
/// events (ties -> first encountered in member order). Returns false
/// when the batch recorded no events (or the cache is disabled).
bool dominant_digest(const RouteQuery& q, MapCacheKey* out) {
  if (!q.events_of) return false;
  // Batches are small (max_batch) and events few per request, so a flat
  // first-occurrence-ordered scan beats a hash map here.
  std::vector<MapCacheKey> keys;
  std::vector<double> weight;
  for (const std::size_t m : q.members) {
    const std::vector<MapCacheEvent>* events = q.events_of(m);
    if (!events) continue;
    for (const MapCacheEvent& ev : *events) {
      std::size_t k = 0;
      while (k < keys.size() && !(keys[k] == ev.key)) ++k;
      if (k == keys.size()) {
        keys.push_back(ev.key);
        weight.push_back(0.0);
      }
      weight[k] += ev.cold_seconds;
    }
  }
  if (keys.empty()) return false;
  std::size_t best = 0;
  for (std::size_t k = 1; k < keys.size(); ++k)
    if (weight[k] > weight[best]) best = k;  // strict: ties keep earliest
  *out = keys[best];
  return true;
}

class RoundRobinRouting final : public RoutingPolicy {
 public:
  int route(const RouteQuery& query, const DeviceGroup& group) override {
    return static_cast<int>(query.batch_index %
                            static_cast<std::size_t>(group.size()));
  }
  const char* name() const override { return "round_robin"; }
};

class LeastLoadedRouting final : public RoutingPolicy {
 public:
  int route(const RouteQuery& query, const DeviceGroup& group) override {
    (void)query;
    return group.least_loaded();
  }
  const char* name() const override { return "least_loaded"; }
};

class CacheAffinityRouting final : public RoutingPolicy {
 public:
  int route(const RouteQuery& query, const DeviceGroup& group) override {
    MapCacheKey dominant;
    if (dominant_digest(query, &dominant)) {
      const int owner = group.owner_of(dominant);
      if (owner >= 0) return owner;
    }
    return group.least_loaded();
  }
  const char* name() const override { return "cache_affinity"; }
};

/// Heterogeneous-fleet routing on per-tier service estimates.
///
/// The batch's measured timeline lives on the reference device —
/// spec(0), the fleet's first tier, which is also the spec every request
/// is measured on (ServerConfig::device). route() splits the batch's
/// modeled seconds into its MatMul stage and everything else, then
/// scales each slice to every tier: MatMul with the tiers' peak GEMM
/// throughput ratio (max of FP32/FP16 peaks — a 1080Ti has no tensor
/// cores, so its deficit is large and grouped-GEMM-heavy batches
/// gravitate to tensor-core tiers) and the rest — mapping, gather/
/// scatter, dense heads — with the DRAM bandwidth ratio (the 1080Ti's
/// bandwidth deficit is much smaller, so map-heavy batches overflow to
/// it first under load). The batch goes to the device with the earliest
/// estimated completion: accumulated busy_seconds + the scaled estimate,
/// ties -> lowest id.
///
/// route() also retains the per-device scale factors of the batch it
/// just routed; the scheduler then applies them to lane placement
/// through device_service_estimate, so routing, busy accounting, and
/// lane occupancy all see the same device-local seconds.
///
/// Degenerate cases, all deterministic: on a homogeneous group every
/// factor is exactly 1.0 and the rule reduces to least_loaded
/// (bit-identical, pinned by test); with no timelines or service times
/// to read (or zero-total batches) the estimate is 0 for every device
/// and the rule again reduces to least_loaded.
class EstimateAwareRouting final : public RoutingPolicy {
 public:
  int route(const RouteQuery& query, const DeviceGroup& group) override {
    const int n = group.size();
    // Batch stage totals on the reference device's modeled clock.
    double matmul = 0.0, total = 0.0;
    for (const std::size_t m : query.members) {
      if (query.timeline_of) {
        if (const Timeline* t = query.timeline_of(m)) {
          matmul += t->stage_seconds(Stage::kMatMul);
          total += t->total_seconds();
          continue;
        }
      }
      if (query.service_of) total += query.service_of(m);
    }
    const double other = total - matmul;
    const DeviceSpec& ref = group.spec(0);
    batch_factor_.assign(static_cast<std::size_t>(n), 1.0);
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int d = 0; d < n; ++d) {
      const DeviceSpec& dev = group.spec(d);
      const double estimate =
          matmul * ratio(peak_gemm(ref), peak_gemm(dev)) +
          other * ratio(ref.dram_bandwidth_gbps, dev.dram_bandwidth_gbps);
      batch_factor_[static_cast<std::size_t>(d)] =
          total > 0 ? estimate / total : 1.0;
      // Health-aware (no-ops without a fault injector): DOWN shards are
      // not candidates, and a DEGRADED/PROBATION shard's estimate is
      // inflated by its service factor — exactly 1.0 on healthy shards,
      // so fault-free routing is bit-identical to the pre-fault rule.
      if (group.health(d) == ShardHealth::kDown) continue;
      const double cost = group.stats(d).busy_seconds +
                          estimate * group.service_factor(d);
      if (cost < best_cost) {  // strict: ties keep the lowest device id
        best_cost = cost;
        best = d;
      }
    }
    // Every shard DOWN: defer to the group's fallback answer (the
    // scheduler only routes when capacity exists).
    return best >= 0 ? best : group.least_loaded();
  }

  double device_service_estimate(int device,
                                 double service_seconds) const override {
    if (device >= 0 &&
        static_cast<std::size_t>(device) < batch_factor_.size())
      return service_seconds *
             batch_factor_[static_cast<std::size_t>(device)];
    return service_seconds;
  }

  const char* name() const override { return "estimate_aware"; }

 private:
  /// Effective GEMM peak: the paper's engine picks the faster of the
  /// FP32 and (tensor-core) FP16 paths per device.
  static double peak_gemm(const DeviceSpec& d) {
    return std::max(d.peak_fp32_tflops, d.peak_fp16_tflops);
  }
  /// ref/dev seconds ratio; identity when either side is unmodeled
  /// (zero), so a default-constructed spec never divides by zero.
  static double ratio(double ref, double dev) {
    return ref > 0 && dev > 0 ? ref / dev : 1.0;
  }

  /// Per-device scale factors of the batch route() last saw — scratch
  /// consumed by the scheduler's device_service_estimate calls for that
  /// same batch.
  std::vector<double> batch_factor_;
};

}  // namespace

std::unique_ptr<RoutingPolicy> make_routing_policy(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin:
      return std::make_unique<RoundRobinRouting>();
    case RoutePolicy::kLeastLoaded:
      return std::make_unique<LeastLoadedRouting>();
    case RoutePolicy::kCacheAffinity:
      return std::make_unique<CacheAffinityRouting>();
    case RoutePolicy::kEstimateAware:
      return std::make_unique<EstimateAwareRouting>();
  }
  throw std::invalid_argument("make_routing_policy: unknown RoutePolicy");
}

}  // namespace ts::serve
