#include "serve/request_queue.hpp"

#include <cmath>
#include <utility>

namespace ts::serve {

RequestQueue::RequestQueue(QueueOptions opt) : opt_(opt) {
  if (opt_.max_depth == 0)
    throw std::invalid_argument("RequestQueue: max_depth must be >= 1");
}

StreamHandle RequestQueue::admit_locked(SparseTensor&& input,
                                        double arrival_seconds) {
  PendingRequest req;
  req.id = next_id_++;
  req.input = std::move(input);
  req.arrival_seconds = arrival_seconds;
  StreamHandle handle(req.id, req.promise.get_future().share());
  last_arrival_ = arrival_seconds;
  queue_.push_back(std::move(req));
  cv_.notify_one();
  return handle;
}

StreamHandle RequestQueue::submit(SparseTensor input,
                                  double arrival_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!std::isfinite(arrival_seconds) || arrival_seconds < 0)
    throw std::invalid_argument(
        "RequestQueue::submit: arrival time must be finite and >= 0");
  if (next_id_ > 0 && arrival_seconds < last_arrival_)
    throw std::invalid_argument(
        "RequestQueue::submit: arrival times must be non-decreasing (got " +
        std::to_string(arrival_seconds) + " after " +
        std::to_string(last_arrival_) + ")");
  if (closed_) {
    ++rejected_;
    throw AdmissionError("RequestQueue::submit: queue is closed");
  }
  if (queue_.size() >= opt_.max_depth) {
    ++rejected_;
    throw AdmissionError(
        "RequestQueue::submit: queue depth limit reached (" +
        std::to_string(opt_.max_depth) + " pending)");
  }
  return admit_locked(std::move(input), arrival_seconds);
}

std::optional<StreamHandle> RequestQueue::try_submit(
    SparseTensor input, double arrival_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!std::isfinite(arrival_seconds) || arrival_seconds < 0)
    throw std::invalid_argument(
        "RequestQueue::try_submit: arrival time must be finite and >= 0");
  if (next_id_ > 0 && arrival_seconds < last_arrival_)
    throw std::invalid_argument(
        "RequestQueue::try_submit: arrival times must be non-decreasing");
  if (closed_ || queue_.size() >= opt_.max_depth) {
    ++rejected_;
    return std::nullopt;
  }
  return admit_locked(std::move(input), arrival_seconds);
}

void RequestQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t RequestQueue::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_;
}

std::size_t RequestQueue::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

bool RequestQueue::wait_pop(PendingRequest& out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // closed and drained
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

}  // namespace ts::serve
