#include "serve/request_queue.hpp"

#include <cmath>
#include <utility>

namespace ts::serve {

const char* to_string(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kNone: return "none";
    case ServeErrorCode::kRetriesExhausted: return "retries_exhausted";
    case ServeErrorCode::kNoHealthyDevice: return "no_healthy_device";
    case ServeErrorCode::kDeadlineHopeless: return "deadline_hopeless";
  }
  return "?";
}

const StreamResult& StreamHandle::value() const {
  const StreamResult& r = fut_.get();
  if (!r.ok())
    throw ServeError(
        r.error, "request " + std::to_string(r.id) + " failed (" +
                     std::string(to_string(r.error)) +
                     (r.error_detail.empty() ? "" : "): " + r.error_detail));
  return r;
}

RequestQueue::RequestQueue(QueueOptions opt) : opt_(opt) {
  if (opt_.max_depth == 0)
    throw std::invalid_argument("RequestQueue: max_depth must be >= 1");
}

StreamHandle RequestQueue::admit_locked(SparseTensor&& input,
                                        double arrival_seconds,
                                        Priority priority, int model) {
  PendingRequest req;
  req.id = next_id_++;
  req.input = std::move(input);
  req.arrival_seconds = arrival_seconds;
  req.priority = priority;
  req.model = model;
  StreamHandle handle(req.id, req.promise.get_future().share());
  last_arrival_ = arrival_seconds;
  queue_.push_back(std::move(req));
  ++class_depth_[static_cast<std::size_t>(priority)];
  cv_.notify_one();
  return handle;
}

void RequestQueue::count_rejection_locked(int model) {
  ++rejected_;
  const auto slot = static_cast<std::size_t>(model);
  if (model_rejected_.size() <= slot) model_rejected_.resize(slot + 1, 0);
  ++model_rejected_[slot];
}

bool RequestQueue::full_locked(Priority priority) const {
  const std::size_t cap =
      opt_.class_max_depth[static_cast<std::size_t>(priority)];
  if (cap > 0 && class_depth_[static_cast<std::size_t>(priority)] >= cap)
    return true;
  return queue_.size() >= opt_.max_depth;
}

bool RequestQueue::preempt_locked(Priority incoming) {
  if (!opt_.priority_preemption) return false;
  // Victim: the lowest class present; among those, the newest request
  // (least sunk wait). Deterministic — pure queue state.
  std::ptrdiff_t victim = -1;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (victim < 0 ||
        queue_[i].priority >=
            queue_[static_cast<std::size_t>(victim)].priority)
      victim = static_cast<std::ptrdiff_t>(i);
  }
  if (victim < 0) return false;
  PendingRequest& v = queue_[static_cast<std::size_t>(victim)];
  if (v.priority <= incoming) return false;  // nothing strictly lower
  v.promise.set_exception(std::make_exception_ptr(AdmissionError(
      "RequestQueue: request " + std::to_string(v.id) +
      " preempted by a higher-priority submission under full queue")));
  --class_depth_[static_cast<std::size_t>(v.priority)];
  const int victim_model = v.model;
  queue_.erase(queue_.begin() + victim);
  count_rejection_locked(victim_model);
  space_cv_.notify_all();  // the victim's class slot freed
  return true;
}

namespace {

/// Priority is an index into per-class accounting downstream; an
/// out-of-enumerator value (a well-formed enum can hold one) is a
/// caller bug and must die at the admission boundary, not corrupt the
/// scheduler's per-class vectors.
void validate_priority(const char* who, Priority priority) {
  const int cls = static_cast<int>(priority);
  if (cls < 0 || cls >= kNumPriorityClasses)
    throw std::invalid_argument(
        std::string(who) + ": priority class " + std::to_string(cls) +
        " outside [0, " + std::to_string(kNumPriorityClasses) + ")");
}

/// Model ids index per-model ledgers (here and in StreamStats); a
/// negative id is a caller bug, rejected at the admission boundary. The
/// upper bound is the serving session's registry size, which the queue
/// doesn't know — the serving loop validates it when draining.
void validate_model(const char* who, int model) {
  if (model < 0)
    throw std::invalid_argument(std::string(who) + ": model id " +
                                std::to_string(model) + " must be >= 0");
}

}  // namespace

StreamHandle RequestQueue::submit(SparseTensor input, double arrival_seconds,
                                  Priority priority, int model) {
  MutexLock lock(mu_);
  validate_priority("RequestQueue::submit", priority);
  validate_model("RequestQueue::submit", model);
  if (!std::isfinite(arrival_seconds) || arrival_seconds < 0)
    throw std::invalid_argument(
        "RequestQueue::submit: arrival time must be finite and >= 0");
  if (next_id_ > 0 && arrival_seconds < last_arrival_)
    throw std::invalid_argument(
        "RequestQueue::submit: arrival times must be non-decreasing (got " +
        std::to_string(arrival_seconds) + " after " +
        std::to_string(last_arrival_) + ")");
  if (closed_) {
    count_rejection_locked(model);
    throw AdmissionError("RequestQueue::submit: queue is closed");
  }
  const std::size_t cls = static_cast<std::size_t>(priority);
  if (opt_.class_max_depth[cls] > 0 &&
      class_depth_[cls] >= opt_.class_max_depth[cls]) {
    count_rejection_locked(model);
    throw AdmissionError(
        "RequestQueue::submit: class " +
        std::string(to_string(priority)) + " depth limit reached (" +
        std::to_string(opt_.class_max_depth[cls]) + " pending)");
  }
  if (queue_.size() >= opt_.max_depth && !preempt_locked(priority)) {
    count_rejection_locked(model);
    throw AdmissionError(
        "RequestQueue::submit: queue depth limit reached (" +
        std::to_string(opt_.max_depth) + " pending)");
  }
  return admit_locked(std::move(input), arrival_seconds, priority, model);
}

std::optional<StreamHandle> RequestQueue::try_submit(
    SparseTensor input, double arrival_seconds, Priority priority,
    int model) {
  MutexLock lock(mu_);
  validate_priority("RequestQueue::try_submit", priority);
  validate_model("RequestQueue::try_submit", model);
  if (!std::isfinite(arrival_seconds) || arrival_seconds < 0)
    throw std::invalid_argument(
        "RequestQueue::try_submit: arrival time must be finite and >= 0");
  if (next_id_ > 0 && arrival_seconds < last_arrival_)
    throw std::invalid_argument(
        "RequestQueue::try_submit: arrival times must be non-decreasing");
  const std::size_t cls = static_cast<std::size_t>(priority);
  if (closed_ ||
      (opt_.class_max_depth[cls] > 0 &&
       class_depth_[cls] >= opt_.class_max_depth[cls]) ||
      (queue_.size() >= opt_.max_depth && !preempt_locked(priority))) {
    count_rejection_locked(model);
    return std::nullopt;
  }
  return admit_locked(std::move(input), arrival_seconds, priority, model);
}

StreamHandle RequestQueue::submit_wait(SparseTensor input,
                                       double arrival_seconds,
                                       Priority priority, int model) {
  MutexLock lock(mu_);
  validate_priority("RequestQueue::submit_wait", priority);
  validate_model("RequestQueue::submit_wait", model);
  if (!std::isfinite(arrival_seconds) || arrival_seconds < 0)
    throw std::invalid_argument(
        "RequestQueue::submit_wait: arrival time must be finite and >= 0");
  // Backpressure wait: sleeps while the queue (or the class) is full,
  // woken by wait_pop drains, preemption evictions, and close(). close()
  // turns the wait into a typed rejection — a blocked producer can never
  // deadlock a shutdown.
  while (!closed_ && full_locked(priority)) space_cv_.wait(mu_);
  if (closed_) {
    count_rejection_locked(model);
    throw AdmissionError(
        "RequestQueue::submit_wait: queue closed while waiting for a "
        "slot");
  }
  // Re-validate monotonicity at admission: another producer may have
  // admitted a later stamp while this one was blocked.
  if (next_id_ > 0 && arrival_seconds < last_arrival_)
    throw std::invalid_argument(
        "RequestQueue::submit_wait: arrival times must be non-decreasing "
        "(got " + std::to_string(arrival_seconds) + " after " +
        std::to_string(last_arrival_) + ")");
  return admit_locked(std::move(input), arrival_seconds, priority, model);
}

void RequestQueue::close() {
  MutexLock lock(mu_);
  closed_ = true;
  cv_.notify_all();
  space_cv_.notify_all();
}

bool RequestQueue::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

std::size_t RequestQueue::submitted() const {
  MutexLock lock(mu_);
  return next_id_;
}

std::size_t RequestQueue::rejected() const {
  MutexLock lock(mu_);
  return rejected_;
}

std::vector<std::size_t> RequestQueue::rejected_by_model() const {
  MutexLock lock(mu_);
  return model_rejected_;
}

bool RequestQueue::wait_pop(PendingRequest& out) {
  MutexLock lock(mu_);
  while (!closed_ && queue_.empty()) cv_.wait(mu_);
  if (queue_.empty()) return false;  // closed and drained
  out = std::move(queue_.front());
  queue_.pop_front();
  --class_depth_[static_cast<std::size_t>(out.priority)];
  space_cv_.notify_all();  // a slot freed for blocked submit_wait callers
  return true;
}

}  // namespace ts::serve
