#include "serve/request_queue.hpp"

#include <cmath>
#include <utility>

namespace ts::serve {

RequestQueue::RequestQueue(QueueOptions opt) : opt_(opt) {
  if (opt_.max_depth == 0)
    throw std::invalid_argument("RequestQueue: max_depth must be >= 1");
}

StreamHandle RequestQueue::admit_locked(SparseTensor&& input,
                                        double arrival_seconds,
                                        Priority priority) {
  PendingRequest req;
  req.id = next_id_++;
  req.input = std::move(input);
  req.arrival_seconds = arrival_seconds;
  req.priority = priority;
  StreamHandle handle(req.id, req.promise.get_future().share());
  last_arrival_ = arrival_seconds;
  queue_.push_back(std::move(req));
  cv_.notify_one();
  return handle;
}

bool RequestQueue::preempt_locked(Priority incoming) {
  if (!opt_.priority_preemption) return false;
  // Victim: the lowest class present; among those, the newest request
  // (least sunk wait). Deterministic — pure queue state.
  std::ptrdiff_t victim = -1;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (victim < 0 ||
        queue_[i].priority >=
            queue_[static_cast<std::size_t>(victim)].priority)
      victim = static_cast<std::ptrdiff_t>(i);
  }
  if (victim < 0) return false;
  PendingRequest& v = queue_[static_cast<std::size_t>(victim)];
  if (v.priority <= incoming) return false;  // nothing strictly lower
  v.promise.set_exception(std::make_exception_ptr(AdmissionError(
      "RequestQueue: request " + std::to_string(v.id) +
      " preempted by a higher-priority submission under full queue")));
  queue_.erase(queue_.begin() + victim);
  ++rejected_;
  return true;
}

namespace {

/// Priority is an index into per-class accounting downstream; an
/// out-of-enumerator value (a well-formed enum can hold one) is a
/// caller bug and must die at the admission boundary, not corrupt the
/// scheduler's per-class vectors.
void validate_priority(const char* who, Priority priority) {
  const int cls = static_cast<int>(priority);
  if (cls < 0 || cls >= kNumPriorityClasses)
    throw std::invalid_argument(
        std::string(who) + ": priority class " + std::to_string(cls) +
        " outside [0, " + std::to_string(kNumPriorityClasses) + ")");
}

}  // namespace

StreamHandle RequestQueue::submit(SparseTensor input, double arrival_seconds,
                                  Priority priority) {
  std::lock_guard<std::mutex> lock(mu_);
  validate_priority("RequestQueue::submit", priority);
  if (!std::isfinite(arrival_seconds) || arrival_seconds < 0)
    throw std::invalid_argument(
        "RequestQueue::submit: arrival time must be finite and >= 0");
  if (next_id_ > 0 && arrival_seconds < last_arrival_)
    throw std::invalid_argument(
        "RequestQueue::submit: arrival times must be non-decreasing (got " +
        std::to_string(arrival_seconds) + " after " +
        std::to_string(last_arrival_) + ")");
  if (closed_) {
    ++rejected_;
    throw AdmissionError("RequestQueue::submit: queue is closed");
  }
  if (queue_.size() >= opt_.max_depth && !preempt_locked(priority)) {
    ++rejected_;
    throw AdmissionError(
        "RequestQueue::submit: queue depth limit reached (" +
        std::to_string(opt_.max_depth) + " pending)");
  }
  return admit_locked(std::move(input), arrival_seconds, priority);
}

std::optional<StreamHandle> RequestQueue::try_submit(
    SparseTensor input, double arrival_seconds, Priority priority) {
  std::lock_guard<std::mutex> lock(mu_);
  validate_priority("RequestQueue::try_submit", priority);
  if (!std::isfinite(arrival_seconds) || arrival_seconds < 0)
    throw std::invalid_argument(
        "RequestQueue::try_submit: arrival time must be finite and >= 0");
  if (next_id_ > 0 && arrival_seconds < last_arrival_)
    throw std::invalid_argument(
        "RequestQueue::try_submit: arrival times must be non-decreasing");
  if (closed_ ||
      (queue_.size() >= opt_.max_depth && !preempt_locked(priority))) {
    ++rejected_;
    return std::nullopt;
  }
  return admit_locked(std::move(input), arrival_seconds, priority);
}

void RequestQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t RequestQueue::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_;
}

std::size_t RequestQueue::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

bool RequestQueue::wait_pop(PendingRequest& out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // closed and drained
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

}  // namespace ts::serve
