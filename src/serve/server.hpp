// serve::Server — the unified, long-lived serving session API.
//
// PR 1-4 accreted four overlapping option structs (BatchOptions,
// StreamOptions, QueueOptions, ShardOptions) around a one-shot
// BatchRunner::serve entry point. This header replaces that surface
// with one composable deployment object:
//
//   ServerConfig cfg;                      // builder: unify every knob
//   cfg.with_device(rtx2080ti())
//      .with_engine(torchsparse_config())
//      .with_workers(4)
//      .with_devices(2)
//      .with_route(RoutePolicy::kCacheAffinity)
//      .with_map_cache_bytes(256u << 20);
//   Server server(cfg);
//   server.start(model);                   // spawn the serving session
//   auto h = server.submit(scan, t, Priority::kHigh);
//   ... h.get() the moment its batch is placed (incremental) ...
//   StreamReport report = server.drain();  // close, join, full stats
//
// What the lifecycle buys over one-shot serve():
//  * Pluggable policies — batch formation (BatchingPolicy) and device
//    routing (RoutingPolicy) are interfaces (serve_policies.hpp), not
//    enum switches; heterogeneous device groups plug in through the
//    routing policy's per-device service-estimate hook.
//  * Priority classes — every submission carries a Priority; the
//    default batching policy implements strict-priority-plus-aging and
//    StreamStats reports per-class latency percentiles.
//  * Incremental fulfillment — batches are placed on the modeled
//    schedule in dispatch order as soon as all their members are
//    measured, so a StreamHandle resolves when its own batch completes
//    in modeled submission order, not at stream end.
//
// The modeled-determinism contract is unchanged: every result is
// bit-identical to a serial run_model, and every modeled statistic
// depends only on the submitted (input, arrival, priority) stream and
// the configuration — never on thread timing, worker count, or when a
// handle was observed. The legacy BatchRunner::serve remains as a thin
// wrapper over serve_stream below and is pinned bit-identical by test.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/sync.hpp"
#include "serve/batch_runner.hpp"
#include "serve/fault.hpp"
#include "serve/serve_policies.hpp"

namespace ts::serve {

/// One hosted model of a multi-model deployment (ServerConfig::models).
/// Requests name a model by registry index (submit_to / RequestQueue's
/// `model` field); the serving session resolves the entry per request —
/// its ModelFn, tuned parameters, cache namespace, SLO budget, and
/// fairness weight — so one fleet serves heterogeneous models with
/// per-model guarantees. Register through ServerConfig::with_model,
/// which stamps the isolation namespace.
struct ModelEntry {
  /// Registry name (unique, non-empty); resolvable via
  /// Server::model_id.
  std::string name;
  ModelFn fn;
  /// Per-model SLO wait budget for the batcher's deadline trigger; a
  /// negative value (the default) inherits
  /// BatcherOptions::slo_budget_seconds.
  double slo_budget_seconds = -1;
  /// Priority class stamped on submit_to calls that don't specify one.
  Priority default_priority = Priority::kNormal;
  /// Deficit-round-robin fairness weight (relative dispatch share under
  /// cross-model contention). Must be finite and > 0.
  double weight = 1.0;
  /// Kernel-map digest namespace (salt_cache_key): with_model stamps
  /// this to the registry index — and Server's constructor re-stamps it
  /// — so model 0 keeps the legacy digest space (warm snapshots stay
  /// valid, single-model registries are digest-identical to the
  /// model-less path) while every later model gets an independent
  /// remap, making cross-model cache collisions impossible by
  /// construction rather than by configuration discipline.
  uint64_t cache_namespace = 0;
  /// Per-model tuned grouping parameters (Alg. 5 output, typically from
  /// a TunedParamStore lookup for this model's workload). Empty (the
  /// default) inherits RunOptions::tuned.
  std::unordered_map<int, GroupParams> tuned;
};

/// One unified deployment description: device/engine, worker pool,
/// per-request run options, admission, batching, sharding, and the
/// pluggable policies. Plain struct with chainable with_* setters —
/// set fields directly or build fluently, both are fine.
struct ServerConfig {
  /// Deprecated single-spec delegate (still honored): the modeled device
  /// spec of every shard when `fleet` is empty. With a fleet configured
  /// this is the *reference* device — the spec every request is measured
  /// on (with_fleet keeps it equal to fleet.front()); heterogeneous
  /// tiers enter the schedule through the routing policy's
  /// device_service_estimate scaling, never through measurement.
  DeviceSpec device;
  /// Per-shard device specs of a heterogeneous fleet, in shard order;
  /// empty (the default) means shard.devices homogeneous copies of
  /// `device`. Populate through with_fleet — it validates the tier list
  /// and keeps `device` and shard.devices consistent.
  std::vector<DeviceSpec> fleet;
  EngineConfig engine;
  int workers = 1;                 // worker threads and lanes per device
  RunOptions run;                  // numerics, tuned params, map_cache...
  /// Byte budget for a server-owned cross-request KernelMapCache (0 =
  /// disabled; ignored when run.map_cache is already set). See
  /// BatchOptions::map_cache_bytes.
  std::size_t map_cache_bytes = 0;
  QueueOptions queue;              // admission depth + priority preemption
  BatcherOptions batcher;          // default batching policy's knobs
  PriorityOptions priority;        // strict-priority aging knobs
  /// Fixed modeled setup cost charged once per dispatched batch; the
  /// amortizable slice that makes larger batches cheaper per request.
  double batch_overhead_seconds = 0;
  /// Reuse one ExecContext per worker across requests (bit-identical
  /// either way; reuse skips repeated cost-model construction).
  bool reuse_context = true;
  ShardOptions shard;              // device count + built-in route policy
  /// Custom batch formation; when null the server builds a
  /// SloBatchingPolicy(batcher, priority) per session. Stateful and
  /// driven single-threaded — do not share one instance between
  /// concurrently running servers.
  std::shared_ptr<BatchingPolicy> batching;
  /// Custom routing (e.g. heterogeneous service estimates); when null
  /// the server uses make_routing_policy(shard.route).
  std::shared_ptr<RoutingPolicy> routing;
  /// Warm-start manifest (null = cold starts, the default): a kernel-map
  /// cache snapshot — typically a previous deployment's
  /// KernelMapCache::save_snapshot image — applied twice. The
  /// server-owned wall-clock cache imports the payloads once at
  /// construction, so the first request after a restart hits instead of
  /// rebuilding; and every serving session seeds each device shard's
  /// modeled cache from the manifest (DeviceGroup::warm_start) before
  /// any batch is routed, so modeled hit/miss accounting — still
  /// deterministic and worker-count invariant — starts from the warmed
  /// population instead of cold. Populate through warm_start(path) /
  /// with_warm_snapshot.
  std::shared_ptr<const MapCacheSnapshot> warm_snapshot;
  /// Replace the default SloBatchingPolicy with DedupBatchingPolicy:
  /// same deadline/priority rules, but same-content-digest requests
  /// group into one dispatch (see serve_policies.hpp). Ignored when a
  /// custom `batching` policy is set.
  bool dedup_batching = false;
  /// Deterministic fault schedule (see serve/fault.hpp); null or empty
  /// (the default) = the fault-free scheduler, bit-identical to every
  /// pre-fault release. With a non-empty plan the session runs the
  /// fault-tolerant scheduler: shards go DOWN/DEGRADED on the modeled
  /// clock, lost batches are redispatched through the routing policy
  /// under `fault_tolerance`'s retry budget, and unservable requests
  /// resolve with typed ServeError results. Populate through
  /// with_fault_plan.
  std::shared_ptr<const FaultPlan> fault_plan;
  /// Retry / backoff / probation / degradation knobs consulted only
  /// when `fault_plan` is active (validated at Server construction
  /// either way).
  FaultToleranceOptions fault_tolerance;
  /// Multi-model registry (empty = the legacy single-model deployment:
  /// start(model) supplies the one ModelFn and every submission is
  /// model 0). With entries, sessions open with start() — no argument —
  /// and submissions target entries by index (submit_to) or name
  /// (model_id). A one-entry registry is bit-identical to the same
  /// deployment through start(model): namespace 0, inherited SLO, no
  /// contending model, pinned by test. Populate through with_model.
  std::vector<ModelEntry> models;

  ServerConfig& with_device(DeviceSpec d);
  ServerConfig& with_engine(EngineConfig e);
  ServerConfig& with_workers(int n);
  ServerConfig& with_run(RunOptions r);
  ServerConfig& with_map_cache_bytes(std::size_t bytes);
  ServerConfig& with_queue_depth(std::size_t depth);
  ServerConfig& with_priority_preemption(bool on);
  ServerConfig& with_batcher(BatcherOptions b);
  ServerConfig& with_priority(PriorityOptions p);
  ServerConfig& with_batch_overhead(double seconds);
  ServerConfig& with_reuse_context(bool on);
  ServerConfig& with_devices(int n);
  /// Describes a heterogeneous fleet as {spec, count} tiers, e.g.
  ///   cfg.with_fleet({{device_spec_by_name("1080ti"), 2},
  ///                   {device_spec_by_name("3090"), 2}});
  /// Expands the tiers into `fleet` (expand_fleet validation:
  /// std::invalid_argument on an empty list, a non-positive count, or a
  /// total past kMaxModeledDevices), points the deprecated `device`
  /// delegate at the first tier's spec (the measurement reference), and
  /// sets shard.devices to the fleet size. A single-tier call is the
  /// homogeneous configuration with_device + with_devices builds —
  /// bit-identical schedules, pinned by test.
  ServerConfig& with_fleet(const std::vector<FleetTier>& tiers);
  ServerConfig& with_route(RoutePolicy r);
  ServerConfig& with_batching_policy(std::shared_ptr<BatchingPolicy> p);
  ServerConfig& with_routing_policy(std::shared_ptr<RoutingPolicy> p);
  /// Loads a .tsmc snapshot file (io::load_map_cache_file — throws
  /// std::runtime_error on a missing or malformed file, before anything
  /// is configured) into warm_snapshot.
  ServerConfig& warm_start(const std::string& path);
  ServerConfig& with_warm_snapshot(
      std::shared_ptr<const MapCacheSnapshot> snap);
  ServerConfig& with_dedup_batching(bool on = true);
  ServerConfig& with_fault_plan(FaultPlan plan);
  ServerConfig& with_fault_plan(std::shared_ptr<const FaultPlan> plan);
  ServerConfig& with_fault_tolerance(FaultToleranceOptions opt);
  /// Per-class admission cap (QueueOptions::class_max_depth): at most
  /// `depth` pending requests of `cls`; 0 = unlimited (the default).
  /// Degradation lever: cap the low classes so a fault-shrunken fleet
  /// sheds them at admission instead of queueing them into hopeless
  /// deadlines.
  ServerConfig& with_class_queue_depth(Priority cls, std::size_t depth);
  /// Registers one hosted model; registry index = registration order.
  /// `slo_budget_seconds` < 0 inherits the batcher's budget;
  /// `default_priority` stamps submissions that don't pick a class;
  /// `weight` is the model's DRR fairness share. The entry's cache
  /// namespace is stamped to its registry index (see ModelEntry).
  ServerConfig& with_model(std::string name, ModelFn fn,
                           double slo_budget_seconds = -1,
                           Priority default_priority = Priority::kNormal,
                           double weight = 1.0);
  /// Full-entry overload (per-model tuned parameters etc.). The
  /// cache_namespace field is overwritten with the registry index —
  /// isolation is structural, not configurable.
  ServerConfig& with_model(ModelEntry entry);
  /// Installs per-model tuned grouping parameters on an already
  /// registered model (std::invalid_argument on an unknown index).
  ServerConfig& with_model_tuned(int model,
                                 std::unordered_map<int, GroupParams> tuned);
};

/// The ModelBatchingInfo table a registry induces (one entry per model:
/// its SLO budget and DRR weight) — what the server feeds its default
/// SloBatchingPolicy/DedupBatchingPolicy so batching sees the same
/// per-model contract the submission path enforces. Exposed for callers
/// wiring custom policies to a registry config.
std::vector<ModelBatchingInfo> model_batching_infos(
    const std::vector<ModelEntry>& models);

/// Generalized one-shot modeled scheduler: places `plan` (explicit,
/// possibly non-contiguous member lists, in dispatch order) over the
/// device group under `routing`, replaying per-member cache events
/// through each batch's routed device and filling every request's
/// schedule fields. The generalization of schedule_stream_sharded that
/// priority batching and custom routing need; the legacy contiguous
/// entry points delegate here (bit-identical, pinned by test).
/// Preconditions (std::invalid_argument): plan members partition
/// [0, requests.size()), every member arrived by its batch's dispatch
/// stamp, overhead finite >= 0, `events` (when non-null) parallel to
/// requests. A non-empty `fault_plan` (validated against the group
/// size) runs the fault-tolerant scheduler under `fault_tolerance`
/// (defaults when null); failed requests carry ServeErrorCode results
/// and produce no batch record.
StreamStats schedule_stream_dispatch(
    std::vector<StreamResult>& requests,
    const std::vector<DispatchBatch>& plan, DeviceGroup& group,
    RoutingPolicy& routing, int workers_per_device,
    double batch_overhead_seconds,
    const std::vector<std::vector<MapCacheEvent>>* events = nullptr,
    std::vector<StreamBatchRecord>* batches = nullptr,
    const FaultPlan* fault_plan = nullptr,
    const FaultToleranceOptions* fault_tolerance = nullptr);

/// One serving session over an externally owned queue with explicit
/// policies — the engine room shared by Server (which runs it on a
/// background thread) and the legacy BatchRunner::serve wrapper (which
/// runs it on the caller's thread). Drains `queue` until closed and
/// empty, measures every request on the worker pool, forms batches with
/// `batching`, and places them incrementally: each batch is routed,
/// cache-accounted, and laned as soon as all earlier batches are placed
/// and its members measured, fulfilling the members' StreamHandles at
/// that moment. `context_pool`, when non-null, supplies reusable
/// ExecContexts handed back on return (Server keeps warm contexts
/// across sessions this way).
///
/// Determinism: the report depends only on the drained (input, arrival,
/// priority) stream, the config, and the policies. Exception guarantee:
/// on a request failure (or a policy contract violation) the queue is
/// closed, every unfulfilled handle receives the error, and the error
/// is rethrown.
StreamReport serve_stream(const ModelFn& model, RequestQueue& queue,
                          const ServerConfig& config,
                          BatchingPolicy& batching, RoutingPolicy& routing,
                          std::vector<ExecContext>* context_pool = nullptr);

/// Multi-model serving session: like serve_stream above, but requests
/// resolve against `models` (by PendingRequest::model). Workers restamp
/// their context per request — the entry's ModelFn, tuned parameters,
/// and cache namespace — so every digest a request resolves lives in
/// its model's namespace and two models can never alias each other's
/// kernel-map entries. Dedup digests are salted the same way, keeping
/// duplicate grouping within a model. The single-model overload above
/// delegates here with one default entry (namespace 0, inherited
/// everything) and is bit-identical by construction. Preconditions
/// (std::invalid_argument): `models` non-empty with non-null fns; a
/// drained request targeting an index outside the registry fails the
/// stream (every unfulfilled handle receives the error).
StreamReport serve_stream(const std::vector<ModelEntry>& models,
                          RequestQueue& queue, const ServerConfig& config,
                          BatchingPolicy& batching, RoutingPolicy& routing,
                          std::vector<ExecContext>* context_pool = nullptr);

/// Long-lived serving session host: owns the admission queue, the
/// serving thread, and warm per-worker contexts kept across sessions.
///
/// Lifecycle: construct → start(model) → submit(...)* → drain() →
/// (start again with the same or another model) → ... → stop().
/// start/drain pairs are serving *sessions*; modeled statistics are
/// per session (cold modeled caches each time, like the legacy path),
/// while the wall-clock KernelMapCache and the worker contexts stay
/// warm across sessions.
///
/// Thread-safety: submit/try_submit are safe from any number of
/// producer threads while the session runs. start/drain/stop are
/// serialized against each other internally, so misuse from multiple
/// controlling threads (drain racing stop, concurrent start) surfaces
/// as a typed std::logic_error on the loser — never a hang, a
/// double-join, or UB. Admission shares that lock: a submit racing a
/// drain/start cycle either lands in the closing session's queue
/// (resolving through its handle) or observes the session gone and
/// gets the typed error — it can never dereference a freed queue.
class Server {
 public:
  /// Validates the configuration (std::invalid_argument): workers
  /// clamped to >= 1, shard.devices clamped to >= 1 and bounded by
  /// kMaxModeledDevices, a non-empty fleet bounded by kMaxModeledDevices
  /// (shard.devices is then forced to the fleet size), overhead finite
  /// >= 0; builds the shared kernel-map cache from map_cache_bytes when
  /// run.map_cache is null.
  explicit Server(ServerConfig config);

  /// Joins a running session (discarding its report) before destroying.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens a serving session over the single supplied model — the
  /// legacy entry point, for deployments with no registry.
  /// Preconditions: no session is running (std::logic_error); the
  /// config has no registered models (std::invalid_argument — a
  /// registry deployment opens sessions with the no-argument start()).
  void start(ModelFn model);

  /// Opens a serving session over the configured model registry
  /// (ServerConfig::with_model). Preconditions: no session is running
  /// (std::logic_error); at least one model is registered
  /// (std::logic_error).
  void start();

  /// True between start() and drain()/stop().
  bool running() const { return running_; }

  /// Submits one request to the running session (std::logic_error when
  /// no session is running). Same admission semantics as
  /// RequestQueue::submit; the handle resolves incrementally, the
  /// moment the request's batch is placed on the modeled schedule.
  /// Mind the StreamHandle deadlock caveat: a request the batching
  /// policy is still holding (open batch, strict-priority hold) only
  /// dispatches on a later arrival or at drain(), so the controlling
  /// thread must not block on such a handle before drain().
  StreamHandle submit(SparseTensor input, double arrival_seconds,
                      Priority priority = Priority::kNormal);

  /// Non-throwing admission: nullopt instead of AdmissionError.
  std::optional<StreamHandle> try_submit(
      SparseTensor input, double arrival_seconds,
      Priority priority = Priority::kNormal);

  /// Submits one request to a specific registry model. `model` must
  /// index the registry (std::invalid_argument otherwise; 0 is also
  /// valid on a registry-less deployment, where it means "the" model).
  /// When `priority` is nullopt the entry's default_priority applies —
  /// the per-model class default. Same admission and incremental-
  /// fulfillment semantics as submit().
  StreamHandle submit_to(int model, SparseTensor input,
                         double arrival_seconds,
                         std::optional<Priority> priority = std::nullopt);

  /// Non-throwing submit_to: nullopt instead of AdmissionError (bad
  /// model indices and lifecycle misuse still throw — caller bugs, not
  /// load shedding).
  std::optional<StreamHandle> try_submit_to(
      int model, SparseTensor input, double arrival_seconds,
      std::optional<Priority> priority = std::nullopt);

  /// Registry index of the named model, or -1 when no such model is
  /// registered.
  int model_id(const std::string& name) const;

  /// Ends the session: closes the queue, joins the serving thread, and
  /// returns the session's report (rethrows the serving error if the
  /// session failed). Precondition (std::logic_error): a session is
  /// running.
  StreamReport drain();

  /// Ends any running session and discards its report (errors were
  /// already delivered through the handles). Safe to call when idle;
  /// called by the destructor.
  void stop();

  /// Convenience for the offline fixed-batch path under the same
  /// deployment (BatchRunner::run semantics): shards `inputs` across
  /// the worker pool and returns the deterministic batch report. Does
  /// not interact with the streaming session.
  BatchReport run_batch(const ModelFn& model,
                        const std::vector<SparseTensor>& inputs) const;

  /// Admission-side observers of the running session (0 when idle).
  std::size_t depth() const;
  std::size_t rejected() const;

  const ServerConfig& config() const { return cfg_; }

  /// The server-owned cross-request kernel-map cache (null when
  /// disabled). Wall-clock observability; stays warm across sessions.
  const std::shared_ptr<KernelMapCache>& map_cache() const {
    return cfg_.run.map_cache;
  }

 private:
  /// Shared session launcher behind start()/start(model): replaces the
  /// queue, builds the session policies, and spawns the serving thread.
  /// A null `legacy_model` serves the configured registry.
  void launch_locked(ModelFn legacy_model) TS_REQUIRES(life_mu_);
  /// Validates a submission's model index against the registry and
  /// resolves its effective priority (explicit, or the entry default).
  Priority resolve_submission(int model,
                              const std::optional<Priority>& priority) const;

  /// Immutable after construction (safe to read without life_mu_).
  ServerConfig cfg_;
  /// Serializes start/drain/stop so lifecycle misuse (drain racing
  /// stop, concurrent start) is a typed error, never a double-join —
  /// and guards queue_ so admission can never race start()'s queue
  /// replacement into a freed RequestQueue. The serving thread never
  /// takes this lock (drain() holds it across the join).
  mutable Mutex life_mu_;
  std::unique_ptr<RequestQueue> queue_ TS_GUARDED_BY(life_mu_);
  std::thread loop_;
  std::atomic<bool> running_{false};
  /// Session outcome and warm contexts: written by the serving thread,
  /// read/reset only between sessions after loop_.join() — the join's
  /// happens-before is the synchronization, not a lock (annotating
  /// them under life_mu_ would force the serving thread to take it and
  /// deadlock against drain's join).
  StreamReport report_;
  std::exception_ptr error_;
  /// Warm contexts handed back by the session's workers, reused by the
  /// next session (restamped to their new device via reset_context).
  std::vector<ExecContext> spare_contexts_;
};

}  // namespace ts::serve
