#include "serve/server.hpp"

#include "io/serialize.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace ts::serve {

// ---------------------------------------------------------------------
// ServerConfig builder
// ---------------------------------------------------------------------

ServerConfig& ServerConfig::with_device(DeviceSpec d) {
  device = std::move(d);
  return *this;
}
ServerConfig& ServerConfig::with_engine(EngineConfig e) {
  engine = std::move(e);
  return *this;
}
ServerConfig& ServerConfig::with_workers(int n) {
  workers = n;
  return *this;
}
ServerConfig& ServerConfig::with_run(RunOptions r) {
  run = std::move(r);
  return *this;
}
ServerConfig& ServerConfig::with_map_cache_bytes(std::size_t bytes) {
  map_cache_bytes = bytes;
  return *this;
}
ServerConfig& ServerConfig::with_queue_depth(std::size_t depth) {
  queue.max_depth = depth;
  return *this;
}
ServerConfig& ServerConfig::with_priority_preemption(bool on) {
  queue.priority_preemption = on;
  return *this;
}
ServerConfig& ServerConfig::with_batcher(BatcherOptions b) {
  batcher = b;
  return *this;
}
ServerConfig& ServerConfig::with_priority(PriorityOptions p) {
  priority = p;
  return *this;
}
ServerConfig& ServerConfig::with_batch_overhead(double seconds) {
  batch_overhead_seconds = seconds;
  return *this;
}
ServerConfig& ServerConfig::with_reuse_context(bool on) {
  reuse_context = on;
  return *this;
}
ServerConfig& ServerConfig::with_devices(int n) {
  shard.devices = n;
  return *this;
}
ServerConfig& ServerConfig::with_fleet(const std::vector<FleetTier>& tiers) {
  fleet = expand_fleet(tiers);  // validates; throws invalid_argument
  device = fleet.front();       // the measurement reference spec
  shard.devices = static_cast<int>(fleet.size());
  return *this;
}
ServerConfig& ServerConfig::with_route(RoutePolicy r) {
  shard.route = r;
  return *this;
}
ServerConfig& ServerConfig::with_batching_policy(
    std::shared_ptr<BatchingPolicy> p) {
  batching = std::move(p);
  return *this;
}
ServerConfig& ServerConfig::with_routing_policy(
    std::shared_ptr<RoutingPolicy> p) {
  routing = std::move(p);
  return *this;
}
ServerConfig& ServerConfig::warm_start(const std::string& path) {
  warm_snapshot = std::make_shared<const MapCacheSnapshot>(
      io::load_map_cache_file(path));
  return *this;
}
ServerConfig& ServerConfig::with_warm_snapshot(
    std::shared_ptr<const MapCacheSnapshot> snap) {
  warm_snapshot = std::move(snap);
  return *this;
}
ServerConfig& ServerConfig::with_dedup_batching(bool on) {
  dedup_batching = on;
  return *this;
}
ServerConfig& ServerConfig::with_fault_plan(FaultPlan plan) {
  fault_plan = std::make_shared<const FaultPlan>(std::move(plan));
  return *this;
}
ServerConfig& ServerConfig::with_fault_plan(
    std::shared_ptr<const FaultPlan> plan) {
  fault_plan = std::move(plan);
  return *this;
}
ServerConfig& ServerConfig::with_fault_tolerance(FaultToleranceOptions opt) {
  fault_tolerance = opt;
  return *this;
}
ServerConfig& ServerConfig::with_class_queue_depth(Priority cls,
                                                   std::size_t depth) {
  const int c = static_cast<int>(cls);
  if (c < 0 || c >= kNumPriorityClasses)
    throw std::invalid_argument(
        "ServerConfig::with_class_queue_depth: priority class " +
        std::to_string(c) + " outside [0, " +
        std::to_string(kNumPriorityClasses) + ")");
  queue.class_max_depth[static_cast<std::size_t>(c)] = depth;
  return *this;
}
ServerConfig& ServerConfig::with_model(std::string name, ModelFn fn,
                                       double slo_budget_seconds,
                                       Priority default_priority,
                                       double weight) {
  ModelEntry entry;
  entry.name = std::move(name);
  entry.fn = std::move(fn);
  entry.slo_budget_seconds = slo_budget_seconds;
  entry.default_priority = default_priority;
  entry.weight = weight;
  return with_model(std::move(entry));
}
ServerConfig& ServerConfig::with_model(ModelEntry entry) {
  // The namespace IS the registry index: model 0 keeps the legacy digest
  // space, later models get independent remaps. Stamping here (and again
  // in Server's constructor) makes cross-model isolation structural.
  entry.cache_namespace = static_cast<uint64_t>(models.size());
  models.push_back(std::move(entry));
  return *this;
}
ServerConfig& ServerConfig::with_model_tuned(
    int model, std::unordered_map<int, GroupParams> tuned) {
  if (model < 0 || static_cast<std::size_t>(model) >= models.size())
    throw std::invalid_argument(
        "ServerConfig::with_model_tuned: model " + std::to_string(model) +
        " outside the registry [0, " + std::to_string(models.size()) + ")");
  models[static_cast<std::size_t>(model)].tuned = std::move(tuned);
  return *this;
}

std::vector<ModelBatchingInfo> model_batching_infos(
    const std::vector<ModelEntry>& models) {
  std::vector<ModelBatchingInfo> infos;
  infos.reserve(models.size());
  for (const ModelEntry& m : models)
    infos.push_back(ModelBatchingInfo{m.slo_budget_seconds, m.weight});
  return infos;
}

// ---------------------------------------------------------------------
// Incremental placement
// ---------------------------------------------------------------------

namespace {

/// Replays one recorded cache resolution through a device's modeled
/// cache (record mode), applying the shared warm-hit delta on hits.
/// record_lookup's decisions and apply_map_cache_hit's arithmetic are
/// the same ones MapCacheReplay uses, so a 1-device group reproduces
/// the single-device replay bit-for-bit. Goes through the group (not
/// the raw cache) so the digest->owner index tracks every admission
/// and eviction.
bool replay_event(DeviceGroup& group, int device, const MapCacheEvent& ev,
                  Timeline& t, MapCacheReplayStats& st) {
  ++st.lookups;
  const KernelMapCache::RecordOutcome out =
      group.record_lookup(device, ev.key, ev.bytes);
  st.evictions += out.evictions;
  if (!out.hit) {
    ++st.misses;
    return false;
  }
  ++st.hits;
  apply_map_cache_hit(ev, t);
  st.modeled_seconds_saved += ev.cold_seconds - ev.hit_seconds;
  return true;
}

using RequestAt = std::function<StreamResult&(std::size_t)>;
using EventsAt = std::function<const std::vector<MapCacheEvent>*(std::size_t)>;

/// One batch at a time, in dispatch order: route -> per-device cache
/// accounting -> lane placement, accumulating everything finalize()
/// needs for the stream statistics. This is the single scheduler body
/// behind both the one-shot schedule_stream_dispatch (and through it
/// the legacy schedule_stream/_sharded wrappers) and the incremental
/// serve_stream core — which is what keeps the legacy and session
/// paths bit-identical by construction.
///
/// Fault mode (a non-null FaultInjector) layers the fault-tolerant
/// scheduler on top without touching the fault-free code path:
///
///  * Every fault decision — which batches a fault kills, retry
///    stamps, shed projections, retry_wait penalties — runs on a
///    per-device *shadow clock* (`shadow_free_`): the single-lane
///    modeled schedule a one-worker device would follow. Real lane
///    state varies with the worker count; the shadow clock depends
///    only on the routed batch sequence, so every fault-relevant
///    statistic stays worker-count invariant (tests/test_fault.cpp).
///  * Finalization is deferred: a placed batch's results ship (and its
///    members' promises fulfill, via `on_final`) only once no pending
///    crash/stall on its device can still activate before its shadow
///    finish (FaultInjector::vulnerable). Without an injector every
///    batch is final at placement — the legacy behavior, bit-exact.
///  * Cache events replay on the *first* attempt only: a retried batch
///    keeps its attempt-1 modeled service times. Replaying again would
///    double-apply the warm-hit deltas to member timelines; modeling
///    the retry's mapping work as already-done is the documented
///    choice (docs/SERVING.md).
class StreamPlacer {
 public:
  /// `on_final` (optional) fires per member, in batch-member order, the
  /// moment that member's result is final — placement time without an
  /// injector, deferred finalization (or typed failure) with one.
  StreamPlacer(DeviceGroup& group, RoutingPolicy& routing,
               int workers_per_device, double batch_overhead_seconds,
               RequestAt request_at, EventsAt events_at, bool cached,
               FaultInjector* injector = nullptr,
               std::function<void(std::size_t)> on_final = {},
               int num_models = 1)
      : group_(group),
        routing_(routing),
        workers_(std::max(workers_per_device, 1)),
        overhead_(batch_overhead_seconds),
        request_at_(std::move(request_at)),
        events_at_(std::move(events_at)),
        cached_(cached),
        injector_(injector),
        on_final_(std::move(on_final)),
        class_waits_(kNumPriorityClasses),
        class_e2es_(kNumPriorityClasses),
        num_models_(std::max(num_models, 1)) {
    if (!std::isfinite(overhead_) || overhead_ < 0)
      throw std::invalid_argument(
          "schedule_stream: batch_overhead_seconds must be finite and >= 0");
    const std::size_t nm = static_cast<std::size_t>(num_models_);
    model_waits_.resize(nm);
    model_e2es_.resize(nm);
    model_failed_.assign(nm, 0);
    model_retries_.assign(nm, 0);
    model_cache_hits_.assign(nm, 0);
    model_cache_lookups_.assign(nm, 0);
    group_.begin_schedule(workers_);
    if (injector_) {
      injector_->reset();
      shadow_free_.assign(static_cast<std::size_t>(group_.size()), 0.0);
      group_.attach_fault_injector(injector_);
    }
  }

  ~StreamPlacer() {
    if (injector_) group_.attach_fault_injector(nullptr);
  }

  /// Consumes the next batch in dispatch order (caller guarantees every
  /// member is measured and every earlier batch was fed). Fault-free:
  /// places immediately and the members are final on return. Fault
  /// mode: first processes every fault event and due retry up to the
  /// batch's dispatch stamp, then places (or sheds/defers) it.
  void feed(const DispatchBatch& b) {
    if (b.members.empty())
      throw std::invalid_argument(
          "serve: batching policy emitted an empty batch");
    const std::size_t id = next_batch_id_++;
    if (!injector_) {
      place_legacy(id, b);
      return;
    }
    process_until(b.dispatch_seconds, static_cast<long long>(id));
    attempt_place(id, b.members, b.dispatch_seconds, b.dispatch_seconds, 1,
                  0.0);
    finalize_sweep();
  }

  /// Fault mode end-of-stream drain: after the last batch is fed, runs
  /// the remaining fault events and retries to quiescence so every
  /// admitted request is either served or carries a typed failure.
  /// No-op without an injector.
  void finish_stream() {
    if (!injector_) return;
    injector_->end_of_plan();
    for (;;) {
      const double es = injector_->next_event_stamp();
      const double rs = retries_.empty()
                            ? std::numeric_limits<double>::infinity()
                            : retries_.begin()->first.first;
      if (!std::isfinite(es) && !std::isfinite(rs)) break;
      if (es <= rs) {
        FaultEvent e;
        if (injector_->pop_event(es, -1, 0.0, &e)) handle_event(e);
      } else {
        pop_retry();
      }
      finalize_sweep();
    }
    finalize_sweep();
  }

  std::size_t placed_batches() const { return placed_batches_; }
  std::size_t placed_requests() const { return placed_requests_; }

  /// Requests with a final outcome: served + typed failures. The
  /// end-of-stream coverage check compares this against the drained
  /// count (placed_requests alone would miss shed/failed ones).
  std::size_t accounted_requests() const {
    return placed_requests_ + failed_;
  }

  /// Final batch records, sorted by batch id (deferred finalization can
  /// finalize out of dispatch order). Fully-failed batches produce no
  /// record.
  std::vector<StreamBatchRecord> batch_records() const {
    std::vector<StreamBatchRecord> recs = records_;
    std::sort(recs.begin(), recs.end(),
              [](const StreamBatchRecord& a, const StreamBatchRecord& b) {
                return a.batch_id < b.batch_id;
              });
    return recs;
  }

  /// Stream statistics over everything placed so far. `first_arrival`
  /// is the first drained request's stamp (the makespan origin).
  StreamStats finalize(double first_arrival) {
    StreamStats s;
    s.workers = workers_;
    s.devices = group_.size();
    s.completed = placed_requests_;
    s.batches = placed_batches_;
    s.failed = failed_;
    s.retries = retries_total_;
    s.redispatched_batches = redispatched_batches_;
    s.faults_injected = injector_ ? injector_->activations() : 0;
    if (!retry_waits_.empty()) {
      std::sort(retry_waits_.begin(), retry_waits_.end());
      s.retry_wait_p99_seconds = percentile(retry_waits_, 0.99);
    }
    s.per_device.resize(static_cast<std::size_t>(group_.size()));
    s.per_class.resize(kNumPriorityClasses);
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      PriorityClassStats& pc = s.per_class[static_cast<std::size_t>(c)];
      pc.priority = static_cast<Priority>(c);
      pc.failed = class_failed_[static_cast<std::size_t>(c)];
      pc.retries = class_retries_[static_cast<std::size_t>(c)];
    }
    // Per-model counters (rejections are the caller's to fill — only
    // the admission queue knows them). Completed counts are final here:
    // every placed request pushed its wait sample already.
    s.per_model.resize(static_cast<std::size_t>(num_models_));
    for (int m = 0; m < num_models_; ++m) {
      ModelStats& pm = s.per_model[static_cast<std::size_t>(m)];
      pm.model = m;
      pm.completed = model_waits_[static_cast<std::size_t>(m)].size();
      pm.failed = model_failed_[static_cast<std::size_t>(m)];
      pm.retries = model_retries_[static_cast<std::size_t>(m)];
      pm.cache_hits = model_cache_hits_[static_cast<std::size_t>(m)];
      pm.cache_lookups = model_cache_lookups_[static_cast<std::size_t>(m)];
    }
    if (placed_requests_ == 0) {
      for (int d = 0; d < group_.size(); ++d)
        s.per_device[static_cast<std::size_t>(d)] = group_.stats(d);
      return s;
    }

    s.mean_batch_size = static_cast<double>(placed_requests_) /
                        static_cast<double>(placed_batches_);
    s.mean_service_seconds =
        sum_service_ / static_cast<double>(placed_requests_);
    s.makespan_seconds = last_finish_ - first_arrival;
    s.throughput_fps =
        s.makespan_seconds > 0
            ? static_cast<double>(placed_requests_) / s.makespan_seconds
            : 0.0;
    std::sort(waits_.begin(), waits_.end());
    std::sort(e2es_.begin(), e2es_.end());
    s.queue_wait_p50_seconds = percentile(waits_, 0.50);
    s.queue_wait_p90_seconds = percentile(waits_, 0.90);
    s.queue_wait_p99_seconds = percentile(waits_, 0.99);
    s.e2e_p50_seconds = percentile(e2es_, 0.50);
    s.e2e_p90_seconds = percentile(e2es_, 0.90);
    s.e2e_p99_seconds = percentile(e2es_, 0.99);
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      PriorityClassStats& pc = s.per_class[static_cast<std::size_t>(c)];
      std::vector<double>& w = class_waits_[static_cast<std::size_t>(c)];
      std::vector<double>& e = class_e2es_[static_cast<std::size_t>(c)];
      pc.completed = w.size();
      if (w.empty()) continue;
      std::sort(w.begin(), w.end());
      std::sort(e.begin(), e.end());
      pc.queue_wait_p50_seconds = percentile(w, 0.50);
      pc.queue_wait_p90_seconds = percentile(w, 0.90);
      pc.queue_wait_p99_seconds = percentile(w, 0.99);
      pc.e2e_p50_seconds = percentile(e, 0.50);
      pc.e2e_p90_seconds = percentile(e, 0.90);
      pc.e2e_p99_seconds = percentile(e, 0.99);
    }
    for (int m = 0; m < num_models_; ++m) {
      ModelStats& pm = s.per_model[static_cast<std::size_t>(m)];
      std::vector<double>& w = model_waits_[static_cast<std::size_t>(m)];
      std::vector<double>& e = model_e2es_[static_cast<std::size_t>(m)];
      if (w.empty()) continue;
      std::sort(w.begin(), w.end());
      std::sort(e.begin(), e.end());
      pm.queue_wait_p50_seconds = percentile(w, 0.50);
      pm.queue_wait_p90_seconds = percentile(w, 0.90);
      pm.queue_wait_p99_seconds = percentile(w, 0.99);
      pm.e2e_p50_seconds = percentile(e, 0.50);
      pm.e2e_p90_seconds = percentile(e, 0.90);
      pm.e2e_p99_seconds = percentile(e, 0.99);
    }
    s.aggregate = aggregate_;

    // Per-device clocks and the group-wide cache summary.
    for (int d = 0; d < group_.size(); ++d) {
      DeviceShardStats& ds = group_.stats(d);
      ds.free_seconds = group_.lane_high_water(d);
      ds.utilization =
          s.makespan_seconds > 0
              ? ds.busy_seconds /
                    (static_cast<double>(s.workers) * s.makespan_seconds)
              : 0.0;
      s.map_cache.lookups += ds.map_cache.lookups;
      s.map_cache.hits += ds.map_cache.hits;
      s.map_cache.misses += ds.map_cache.misses;
      s.map_cache.evictions += ds.map_cache.evictions;
      s.map_cache.modeled_seconds_saved +=
          ds.map_cache.modeled_seconds_saved;
      s.per_device[static_cast<std::size_t>(d)] = ds;
    }
    return s;
  }

 private:
  /// A batch placed on real lanes whose outcome is not yet final: a
  /// pending crash/stall on its device could still kill it. Keyed by
  /// batch id in `live_`.
  struct Live {
    std::vector<std::size_t> members;
    std::vector<double> services;  // device-local, fault-factor scaled
    double dispatch = 0;           // first dispatch stamp (d0)
    double first_vstart = 0;       // shadow start of attempt 1
    double vstart = 0;             // shadow start of this attempt
    double vfinish = 0;            // shadow finish of this attempt
    double start = 0;              // real lane start
    int lane = 0;
    int device = 0;
    int attempts = 1;
  };
  /// A lost (or capacity-deferred) batch waiting for its redispatch
  /// stamp. Keyed by (due stamp, batch id) — modeled-time order with
  /// the dispatch-order tie-break.
  struct Retry {
    std::vector<std::size_t> members;
    double dispatch = 0;
    int attempts_done = 0;
    double first_vstart = 0;
  };

  /// Routes one batch, enforcing the policy's device-range contract.
  int route_batch(std::size_t id, const std::vector<std::size_t>& members,
                  double dispatch_seconds) {
    const int dev = routing_.route(
        RouteQuery{id, members, dispatch_seconds,
                   cached_ ? events_at_ : EventsAt{},
                   [this](std::size_t m) {
                     return request_at_(m).service_seconds;
                   },
                   [this](std::size_t m) -> const Timeline* {
                     return &request_at_(m).timeline;
                   }},
        group_);
    if (dev < 0 || dev >= group_.size())
      throw std::invalid_argument(
          "serve: routing policy returned device " + std::to_string(dev) +
          " outside [0, " + std::to_string(group_.size()) + ")");
    return dev;
  }

  /// Per-device deterministic cache accounting: replay the members'
  /// recorded resolutions (in batch-member order) through the routed
  /// device's modeled cache.
  void replay_members(int dev, const std::vector<std::size_t>& members) {
    for (const std::size_t m : members) {
      StreamResult& r = request_at_(m);
      // Callers guarantee r.model < num_models_ (validated at the feed
      // boundary); namespaced keys make these per-model counters
      // tenant-true.
      const std::size_t mdl = static_cast<std::size_t>(r.model);
      if (const std::vector<MapCacheEvent>* evs = events_at_(m))
        for (const MapCacheEvent& ev : *evs) {
          const bool hit = replay_event(group_, dev, ev, r.timeline,
                                        group_.stats(dev).map_cache);
          ++model_cache_lookups_[mdl];
          if (hit) ++model_cache_hits_[mdl];
        }
      r.service_seconds = r.timeline.total_seconds();
    }
  }

  /// Ships one placed batch's final results: fills every member's
  /// schedule fields, pushes the percentile samples and the batch
  /// record, and fires on_final per member.
  void finalize_placed(std::size_t id,
                       const std::vector<std::size_t>& members,
                       const std::vector<double>& services, double d0,
                       double start, int lane, int dev, int attempts,
                       double retry_wait) {
    double cursor = start + overhead_;
    std::size_t si = 0;
    for (const std::size_t m : members) {
      StreamResult& r = request_at_(m);
      r.start_seconds = cursor;
      r.finish_seconds = cursor + services[si];
      cursor = r.finish_seconds;
      ++si;
      // Queue wait ends when the *batch* starts executing; the once-per-
      // batch overhead and batch-mates ahead of this request are part of
      // the (batched) run phase, not the queue. This is what the SLO
      // budget bounds: with free lanes, wait <= slo_budget_seconds by
      // construction of the batcher's deadline rule.
      r.queue_wait_seconds = start - r.arrival_seconds;
      r.e2e_seconds = r.finish_seconds - r.arrival_seconds;
      r.batch_id = id;
      r.batch_size = members.size();
      r.device = dev;
      r.attempts = attempts;
      r.retry_wait_seconds = retry_wait;
      waits_.push_back(r.queue_wait_seconds);
      e2es_.push_back(r.e2e_seconds);
      const int cls = static_cast<int>(r.priority);
      class_waits_[static_cast<std::size_t>(cls)].push_back(
          r.queue_wait_seconds);
      class_e2es_[static_cast<std::size_t>(cls)].push_back(r.e2e_seconds);
      const std::size_t mdl = static_cast<std::size_t>(r.model);
      model_waits_[mdl].push_back(r.queue_wait_seconds);
      model_e2es_[mdl].push_back(r.e2e_seconds);
      sum_service_ += r.service_seconds;
      aggregate_ += r.timeline;
      ++placed_requests_;
      if (attempts > 1) {
        retries_total_ += static_cast<std::size_t>(attempts - 1);
        class_retries_[static_cast<std::size_t>(cls)] +=
            static_cast<std::size_t>(attempts - 1);
        model_retries_[mdl] += static_cast<std::size_t>(attempts - 1);
        retry_waits_.push_back(retry_wait);
      }
      if (on_final_) on_final_(m);
    }
    last_finish_ = std::max(last_finish_, cursor);
    records_.push_back(StreamBatchRecord{
        id, members.front(), members.size(), d0, start, cursor, lane, dev,
        request_at_(members.front()).model, attempts});
    ++placed_batches_;
  }

  /// The fault-free scheduler body: route -> cache replay -> lane
  /// placement -> immediate finalization. Bit-identical to every
  /// pre-fault release (and exercised by every run without a plan).
  void place_legacy(std::size_t id, const DispatchBatch& b) {
    // Route. Policy inputs (accumulated modeled work, modeled cache
    // ownership, members' reference-device measurements) are independent
    // of lane count, so routing — and with it every per-device cache
    // decision — is worker-count invariant. The members' timelines are
    // their cold measurements at this point (this batch's cache replay
    // runs after routing), so estimate-based policies see the same
    // deterministic inputs cached or not.
    const int dev = route_batch(id, b.members, b.dispatch_seconds);
    if (cached_) replay_members(dev, b.members);
    // Place on the device's earliest-available lane. Member service
    // times go through the routing policy's per-device estimate hook —
    // the identity for homogeneous groups, a speed factor for
    // heterogeneous ones — so lane occupancy, busy accounting, and
    // least-loaded inputs all see the same device-local seconds.
    services_.clear();
    for (const std::size_t m : b.members)
      services_.push_back(routing_.device_service_estimate(
          dev, request_at_(m).service_seconds));
    double start = 0, finish = 0;
    const int lane = group_.place_batch(dev, b.dispatch_seconds, overhead_,
                                        services_, &start, &finish);
    finalize_placed(id, b.members, services_, b.dispatch_seconds, start,
                    lane, dev, 1, 0.0);
  }

  // -- Fault-mode event loop ------------------------------------------

  /// Processes every fault event and due retry with a stamp <= `now`
  /// (the next batch's dispatch stamp), in modeled-time order with
  /// recoveries before activations before retries on ties. `k` is the
  /// dispatch index about to happen, so a dispatch-indexed fault on
  /// batch #k activates here, before that batch routes.
  void process_until(double now, long long k) {
    for (;;) {
      const double rs = retries_.empty()
                            ? std::numeric_limits<double>::infinity()
                            : retries_.begin()->first.first;
      FaultEvent e;
      if (injector_->pop_event(std::min(now, rs), k, now, &e)) {
        handle_event(e);
        finalize_sweep();
        continue;
      }
      if (rs <= now) {
        pop_retry();
        finalize_sweep();
        continue;
      }
      break;
    }
    injector_->advance(now);
    finalize_sweep();
  }

  void handle_event(const FaultEvent& e) {
    if (e.type == FaultEvent::Type::kRecovery) {
      // Outage over: real lanes rebase to the recovery stamp (a crash's
      // replacement shard additionally warm-seeds from the snapshot
      // manifest), and the shadow clock restarts there too — everything
      // the outage had in flight was already re-enqueued.
      group_.revive_shard(e.device, e.stamp, e.replacement);
      shadow_free_[static_cast<std::size_t>(e.device)] = e.stamp;
      return;
    }
    if (e.kind == FaultKind::kSlowdown) return;  // degrades, kills nothing
    if (e.kind == FaultKind::kCrash) group_.invalidate_shard_cache(e.device);
    collect_losses(e.device, e.stamp);
  }

  /// Re-enqueues (or fails) every live batch on `device` whose shadow
  /// finish the outage at `stamp` overruns.
  void collect_losses(int device, double stamp) {
    const FaultToleranceOptions& opt = injector_->options();
    for (auto it = live_.begin(); it != live_.end();) {
      Live& lv = it->second;
      if (lv.device != device || lv.vfinish <= stamp) {
        ++it;
        continue;
      }
      const std::size_t id = it->first;
      const int next = lv.attempts + 1;
      if (next > opt.max_attempts) {
        fail_members(lv.members, ServeErrorCode::kRetriesExhausted,
                     "batch " + std::to_string(id) +
                         " lost to a device fault on attempt " +
                         std::to_string(lv.attempts) + " of " +
                         std::to_string(opt.max_attempts),
                     lv.attempts, id, device);
      } else {
        // Modeled exponential backoff: retry n waits backoff * 2^(n-2)
        // after the loss (ldexp keeps the doubling exact in binary).
        const double wait =
            opt.retry_backoff_seconds > 0
                ? std::ldexp(opt.retry_backoff_seconds, next - 2)
                : 0.0;
        retries_.emplace(
            std::make_pair(stamp + wait, id),
            Retry{std::move(lv.members), lv.dispatch, lv.attempts,
                  lv.first_vstart});
      }
      it = live_.erase(it);
    }
  }

  /// Pops the earliest due retry and re-places it.
  void pop_retry() {
    const auto it = retries_.begin();
    const double rs = it->first.first;
    const std::size_t id = it->first.second;
    Retry r = std::move(it->second);
    retries_.erase(it);
    injector_->advance(rs);
    attempt_place(id, std::move(r.members), r.dispatch, rs,
                  r.attempts_done + 1, r.first_vstart);
  }

  /// Attempt `n` to place batch `id` at modeled time `t` (`d0` is its
  /// original dispatch stamp). Routes health-aware, sheds deadline-
  /// hopeless members, scales services by the routed shard's fault
  /// factor, places on real lanes, and registers the batch as live.
  void attempt_place(std::size_t id, std::vector<std::size_t> members,
                     double d0, double t, int n, double first_vstart) {
    if (!injector_->any_routable()) {
      // Whole-fleet outage: park the batch until the earliest recovery
      // without consuming an attempt (nothing was tried), or fail it
      // when every outage is permanent.
      const double er = injector_->earliest_recovery();
      if (!std::isfinite(er)) {
        fail_members(members, ServeErrorCode::kNoHealthyDevice,
                     "every device shard is down with no pending recovery",
                     n - 1, id, -1);
        return;
      }
      retries_.emplace(std::make_pair(er, id),
                       Retry{std::move(members), d0, n - 1, first_vstart});
      return;
    }
    int dev = route_batch(id, members, t);
    // The routing contract never required health awareness; a DOWN
    // answer (round-robin, custom policies) falls back to the
    // health-aware least-loaded survivor.
    if (group_.health(dev) == ShardHealth::kDown) dev = group_.least_loaded();

    // Graceful degradation: project the batch's start on the routed
    // shard's shadow clock; members whose class deadline is already
    // blown resolve now with a typed shed instead of consuming the
    // surviving capacity the unexpired classes need.
    const double vstart =
        std::max(t, shadow_free_[static_cast<std::size_t>(dev)]);
    const std::array<double, kNumPriorityClasses>& deadlines =
        injector_->options().degrade_deadline_seconds;
    std::vector<std::size_t> kept, shed;
    for (const std::size_t m : members) {
      const StreamResult& r = request_at_(m);
      const double dl = deadlines[static_cast<std::size_t>(r.priority)];
      if (std::isfinite(dl) && vstart - r.arrival_seconds > dl)
        shed.push_back(m);
      else
        kept.push_back(m);
    }
    if (!shed.empty())
      fail_members(shed, ServeErrorCode::kDeadlineHopeless,
                   "projected batch start exceeds the class degrade "
                   "deadline",
                   n - 1, id, dev);
    if (kept.empty()) return;

    // Cache events replay on the first attempt only (see class doc).
    if (cached_ && n == 1) replay_members(dev, kept);

    std::vector<double> services;
    services.reserve(kept.size());
    const double factor = injector_->service_factor(dev);
    for (const std::size_t m : kept)
      services.push_back(routing_.device_service_estimate(
                             dev, request_at_(m).service_seconds) *
                         factor);
    double start = 0, finish = 0;
    const int lane =
        group_.place_batch(dev, t, overhead_, services, &start, &finish);
    double vfinish = vstart + overhead_;
    for (const double s : services) vfinish += s;
    shadow_free_[static_cast<std::size_t>(dev)] = vfinish;

    Live lv;
    lv.members = std::move(kept);
    lv.services = std::move(services);
    lv.dispatch = d0;
    lv.first_vstart = n == 1 ? vstart : first_vstart;
    lv.vstart = vstart;
    lv.vfinish = vfinish;
    lv.start = start;
    lv.lane = lane;
    lv.device = dev;
    lv.attempts = n;
    live_.emplace(id, std::move(lv));
    if (n == 2) ++redispatched_batches_;
  }

  /// Finalizes every live batch no pending fault can still kill, in
  /// batch-id order. The worker-invariant retry_wait penalty is the
  /// shadow-clock start delta between the final and first attempts.
  void finalize_sweep() {
    for (auto it = live_.begin(); it != live_.end();) {
      const Live& lv = it->second;
      if (injector_->vulnerable(lv.device, lv.vfinish)) {
        ++it;
        continue;
      }
      finalize_placed(it->first, lv.members, lv.services, lv.dispatch,
                      lv.start, lv.lane, lv.device, lv.attempts,
                      lv.vstart - lv.first_vstart);
      it = live_.erase(it);
    }
  }

  /// Resolves `members` with a typed failure (no exception tunneling:
  /// the error travels inside the StreamResult, see StreamHandle).
  void fail_members(const std::vector<std::size_t>& members,
                    ServeErrorCode code, const std::string& detail,
                    int attempts_so_far, std::size_t id, int device) {
    for (const std::size_t m : members) {
      StreamResult& r = request_at_(m);
      r.error = code;
      r.error_detail = detail;
      r.attempts = attempts_so_far;
      r.batch_id = id;
      r.batch_size = members.size();
      if (device >= 0) r.device = device;
      const std::size_t cls = static_cast<std::size_t>(r.priority);
      const std::size_t mdl = static_cast<std::size_t>(r.model);
      ++failed_;
      ++class_failed_[cls];
      ++model_failed_[mdl];
      if (attempts_so_far > 1) {
        retries_total_ += static_cast<std::size_t>(attempts_so_far - 1);
        class_retries_[cls] += static_cast<std::size_t>(attempts_so_far - 1);
        model_retries_[mdl] += static_cast<std::size_t>(attempts_so_far - 1);
      }
      if (on_final_) on_final_(m);
    }
  }

  DeviceGroup& group_;
  RoutingPolicy& routing_;
  int workers_;
  double overhead_;
  RequestAt request_at_;
  EventsAt events_at_;
  bool cached_;
  FaultInjector* injector_;
  std::function<void(std::size_t)> on_final_;
  std::vector<double> services_;  // scratch, reused per batch
  std::size_t next_batch_id_ = 0;
  std::size_t placed_batches_ = 0;
  std::size_t placed_requests_ = 0;
  std::vector<StreamBatchRecord> records_;
  std::vector<double> waits_, e2es_;
  std::vector<std::vector<double>> class_waits_, class_e2es_;
  /// Per-model accounting, parallel to the registry (size num_models_).
  int num_models_ = 1;
  std::vector<std::vector<double>> model_waits_, model_e2es_;
  std::vector<std::size_t> model_failed_, model_retries_;
  std::vector<std::size_t> model_cache_hits_, model_cache_lookups_;
  double sum_service_ = 0;
  double last_finish_ = 0;
  Timeline aggregate_;
  // Fault-mode state. Every quantity here lives on the shadow clock /
  // dispatch order, never on real lane state — the worker-invariance
  // pillar.
  std::vector<double> shadow_free_;  // per-device single-lane cursor
  std::map<std::size_t, Live> live_;
  std::map<std::pair<double, std::size_t>, Retry> retries_;
  std::size_t failed_ = 0;
  std::size_t retries_total_ = 0;
  std::size_t redispatched_batches_ = 0;
  std::array<std::size_t, kNumPriorityClasses> class_failed_{};
  std::array<std::size_t, kNumPriorityClasses> class_retries_{};
  std::vector<double> retry_waits_;
};

}  // namespace

StreamStats schedule_stream_dispatch(
    std::vector<StreamResult>& requests,
    const std::vector<DispatchBatch>& plan, DeviceGroup& group,
    RoutingPolicy& routing, int workers_per_device,
    double batch_overhead_seconds,
    const std::vector<std::vector<MapCacheEvent>>* events,
    std::vector<StreamBatchRecord>* batches, const FaultPlan* fault_plan,
    const FaultToleranceOptions* fault_tolerance) {
  if (events && events->size() != requests.size())
    throw std::invalid_argument(
        "schedule_stream_dispatch: events must be parallel to requests");
  // Validate the whole plan before mutating anything: members must
  // partition [0, requests.size()) and no batch may dispatch before one
  // of its members arrives.
  // Per-model stat vectors are sized off the request stream: model ids
  // must be non-negative, and every batch must be single-model (its
  // members' ids matching the batch's own).
  int num_models = 1;
  for (const StreamResult& r : requests) {
    if (r.model < 0)
      throw std::invalid_argument(
          "schedule_stream_dispatch: request model ids must be >= 0");
    num_models = std::max(num_models, r.model + 1);
  }
  std::vector<char> assigned(requests.size(), 0);
  std::size_t covered = 0;
  for (const DispatchBatch& b : plan) {
    if (b.members.empty())
      throw std::invalid_argument(
          "schedule_stream_dispatch: plan contains an empty batch");
    for (const std::size_t m : b.members) {
      if (m >= requests.size() || assigned[m])
        throw std::invalid_argument(
            "schedule_stream_dispatch: plan must dispatch each request "
            "exactly once");
      if (requests[m].arrival_seconds > b.dispatch_seconds)
        throw std::invalid_argument(
            "schedule_stream_dispatch: batch dispatched before member "
            "arrival");
      if (requests[m].model != b.model)
        throw std::invalid_argument(
            "schedule_stream_dispatch: batch " + std::to_string(b.model) +
            " mixes models (member " + std::to_string(m) + " targets " +
            std::to_string(requests[m].model) + ")");
      assigned[m] = 1;
      ++covered;
    }
  }
  if (covered != requests.size())
    throw std::invalid_argument(
        "schedule_stream_dispatch: plan covers " + std::to_string(covered) +
        " requests, have " + std::to_string(requests.size()));

  // The injector outlives the placer (whose destructor detaches it
  // from the caller-owned group).
  const bool faulty = fault_plan && !fault_plan->faults.empty();
  std::optional<FaultInjector> injector;
  if (faulty)
    injector.emplace(*fault_plan,
                     fault_tolerance ? *fault_tolerance
                                     : FaultToleranceOptions{},
                     group.size());
  StreamPlacer placer(
      group, routing, workers_per_device, batch_overhead_seconds,
      [&requests](std::size_t i) -> StreamResult& { return requests[i]; },
      [events](std::size_t i) {
        return events ? &(*events)[i] : nullptr;
      },
      events != nullptr, injector ? &*injector : nullptr, {}, num_models);
  for (const DispatchBatch& b : plan) placer.feed(b);
  placer.finish_stream();
  if (batches) *batches = placer.batch_records();
  return placer.finalize(
      requests.empty() ? 0.0 : requests.front().arrival_seconds);
}

// ---------------------------------------------------------------------
// serve_stream: the incremental serving session core
// ---------------------------------------------------------------------

namespace {

/// One measurement work item. Carries stable pointers (deque push_back
/// never moves existing elements), so workers never touch the growing
/// containers themselves; a worker owns its item's pointees exclusively
/// until it publishes `measured` under StreamShared::mu.
struct WorkItem {
  std::size_t index = 0;  // drained-order scheduling id
  SparseTensor* input = nullptr;  // mutable: borrow_input moves it out
  StreamResult* result = nullptr;
  std::vector<MapCacheEvent>* events = nullptr;
};

/// Coordinator/worker shared state of one serving session. Every
/// container mutation happens under `mu` — workers index the same
/// deques during incremental placement, and a deque push_back may
/// reallocate the internal chunk map they would be reading. The deques
/// keep element references stable while the coordinator appends and
/// workers write measured service times through WorkItem pointers.
struct StreamShared {
  Mutex mu;
  /// Wakes workers on new work, producer completion, and failure.
  CondVar cv;
  std::deque<StreamResult> results TS_GUARDED_BY(mu);  // drained order
  std::deque<SparseTensor> inputs TS_GUARDED_BY(mu);   // parallel: results
  std::deque<std::vector<MapCacheEvent>> events TS_GUARDED_BY(mu);
  std::deque<std::promise<StreamResult>> promises TS_GUARDED_BY(mu);
  std::deque<char> fulfilled TS_GUARDED_BY(mu);  // parallel to promises
  std::deque<char> measured TS_GUARDED_BY(mu);   // parallel to results
  std::deque<char> assigned TS_GUARDED_BY(mu);   // batched yet?
  std::vector<DispatchBatch> plan TS_GUARDED_BY(mu);
  std::size_t next_place TS_GUARDED_BY(mu) = 0;
  std::deque<WorkItem> work TS_GUARDED_BY(mu);
  bool producer_done TS_GUARDED_BY(mu) = false;
  std::exception_ptr first_error TS_GUARDED_BY(mu);
};

/// StreamPlacer callbacks over the shared state. The placer stores
/// these type-erased (std::function), which the thread-safety analysis
/// cannot see through — the TS_REQUIRES contracts below are what lets
/// the guarded reads in the bodies analyze clean, and the call-site
/// obligation is discharged structurally rather than by the compiler:
/// placer.feed / finish_stream only ever run with st->mu held
/// (try_place_locked and serve_stream's end-of-stream block).
struct SharedRequestAt {
  StreamShared* st;
  StreamResult& operator()(std::size_t i) const TS_REQUIRES(st->mu) {
    return st->results[i];
  }
};

struct SharedEventsAt {
  StreamShared* st;
  bool cached;
  const std::vector<MapCacheEvent>* operator()(std::size_t i) const
      TS_REQUIRES(st->mu) {
    return cached ? &st->events[i] : nullptr;
  }
};

/// Fulfills a member's promise the moment its result is final —
/// placement time fault-free, deferred finalization under faults.
struct SharedOnFinal {
  StreamShared* st;
  void operator()(std::size_t m) const TS_REQUIRES(st->mu) {
    st->promises[m].set_value(st->results[m]);
    st->fulfilled[m] = 1;
  }
};

/// Latches the first failure and halts measurement: pending work is
/// dropped and workers observe producer_done on their next wakeup.
void fail_locked(StreamShared& st, std::exception_ptr error)
    TS_REQUIRES(st.mu) {
  if (!st.first_error) st.first_error = error;
  st.work.clear();
  st.producer_done = true;
}

/// Incremental placement: batches are placed strictly in dispatch
/// order, each as soon as every member is measured, and the members'
/// promises are fulfilled on the spot — that is what makes an early
/// StreamHandle readable while later batches are still pending.
/// Placement order never depends on measurement timing, so the
/// schedule is bit-identical to a one-shot pass over the same plan.
void try_place_locked(StreamShared& st, StreamPlacer& placer,
                      RequestQueue& queue) TS_REQUIRES(st.mu) {
  if (st.first_error) return;
  try {
    while (st.next_place < st.plan.size()) {
      const DispatchBatch& b = st.plan[st.next_place];
      bool ready = true;
      for (const std::size_t m : b.members)
        if (!st.measured[m]) {
          ready = false;
          break;
        }
      if (!ready) break;
      // Record + fulfillment are the placer's job: fault-free members
      // fulfill here (inside feed), fault-mode members when their
      // batch finalizes or fails.
      placer.feed(b);
      ++st.next_place;
    }
  } catch (...) {
    // A policy contract violation surfaced during placement: fail the
    // stream like a request failure would.
    fail_locked(st, std::current_exception());
    queue.close();
    st.cv.notify_all();
  }
}

/// Validates and appends one policy-emitted batch.
void append_batch_locked(StreamShared& st, DispatchBatch&& b)
    TS_REQUIRES(st.mu) {
  if (b.members.empty())
    throw std::invalid_argument(
        "serve_stream: batching policy emitted an empty batch");
  for (const std::size_t m : b.members) {
    if (m >= st.results.size() || st.assigned[m])
      throw std::invalid_argument(
          "serve_stream: batching policy must dispatch each request "
          "exactly once");
    if (st.results[m].arrival_seconds > b.dispatch_seconds)
      throw std::invalid_argument(
          "serve_stream: batch dispatched before member arrival");
    st.assigned[m] = 1;
  }
  st.plan.push_back(std::move(b));
}

}  // namespace

StreamReport serve_stream(const std::vector<ModelEntry>& models,
                          RequestQueue& queue, const ServerConfig& config,
                          BatchingPolicy& batching, RoutingPolicy& routing,
                          std::vector<ExecContext>* context_pool) {
  if (models.empty())
    throw std::invalid_argument("serve_stream: empty model registry");
  for (const ModelEntry& m : models)
    if (!m.fn)
      throw std::invalid_argument("serve_stream: model '" + m.name +
                                  "' has a null ModelFn");
  // Tuned-parameter restamping is per-request work on the hot path;
  // skip it entirely (keeping the legacy single-model path bit- and
  // work-identical) unless some entry actually overrides the store.
  bool per_model_tuned = false;
  for (const ModelEntry& m : models)
    if (!m.tuned.empty()) per_model_tuned = true;
  const int workers = std::max(config.workers, 1);
  // A non-empty fleet names the shards explicitly; otherwise the group
  // is shard.devices homogeneous copies of the reference device.
  const int devices = config.fleet.empty()
                          ? std::max(config.shard.devices, 1)
                          : static_cast<int>(config.fleet.size());
  if (devices > kMaxModeledDevices)
    throw std::invalid_argument(
        "serve_stream: " + std::to_string(devices) +
        " devices exceeds kMaxModeledDevices (" +
        std::to_string(kMaxModeledDevices) + ")");
  RunOptions run = config.run;
  const bool fresh_cache = !run.map_cache && config.map_cache_bytes > 0;
  if (fresh_cache)
    run.map_cache = std::make_shared<KernelMapCache>(config.map_cache_bytes);
  const bool cached = static_cast<bool>(run.map_cache);
  // Warm-start the wall-clock cache only when this call created it — a
  // caller-owned cache (the Server path, which imports at construction)
  // must not be re-imported every session.
  if (fresh_cache && config.warm_snapshot)
    run.map_cache->import_snapshot(*config.warm_snapshot);

  StreamReport report;

  // Coordinator/worker shared state (StreamShared above): the drained
  // stream, the dispatch plan, the work queue, and the failure latch,
  // all guarded by st.mu.
  StreamShared st;

  DeviceGroup group =
      config.fleet.empty()
          ? DeviceGroup(config.device, devices,
                        cached ? run.map_cache->byte_budget() : 0)
          : DeviceGroup(config.fleet,
                        cached ? run.map_cache->byte_budget() : 0);
  // Install the warm-start manifest before the placer's begin_schedule
  // call, so the session's modeled caches seed from it. Modeled warming
  // is keyed on the configured snapshot alone (not on who owns the wall
  // cache): stats stay deterministic functions of the config + stream.
  if (cached && config.warm_snapshot) group.warm_start(config.warm_snapshot);
  // A non-empty fault plan switches the placer into the fault-tolerant
  // scheduler; fulfillment then runs through its on_final hook (under
  // st.mu — feed/finish_stream are only ever called with it held),
  // which may fire at deferred-finalization time or with a typed
  // failure.
  const bool faulty = config.fault_plan && !config.fault_plan->faults.empty();
  std::optional<FaultInjector> injector;
  if (faulty)
    injector.emplace(*config.fault_plan, config.fault_tolerance, devices);
  StreamPlacer placer(group, routing, workers, config.batch_overhead_seconds,
                      SharedRequestAt{&st}, SharedEventsAt{&st, cached},
                      cached, injector ? &*injector : nullptr,
                      SharedOnFinal{&st}, static_cast<int>(models.size()));

  // Batch membership only shapes the modeled schedule, so measurement
  // starts the moment a request is drained — no need to wait for its
  // batch.
  auto worker = [&](int device_index) {
    // Each device shard contributes its own measurement pool; a worker
    // carries its pool's identity in its (reusable) context as host-side
    // provenance. Measurement itself is device-agnostic — the group is
    // homogeneous at measurement time and cache accounting is deferred —
    // and the modeled placement (StreamResult::device) is decided by the
    // routing pass, independently of which pool measured a request.
    DeviceSpec shard_dev = config.device;
    shard_dev.device_index = device_index;
    std::optional<ExecContext> ctx;
    if (context_pool && config.reuse_context) {
      // Context hand-off: adopt a warm context from a previous session,
      // restamped to this worker's device pool. st.mu doubles as the
      // pool's lock — hand-offs only happen at worker start/exit.
      MutexLock lock(st.mu);
      if (!context_pool->empty()) {
        ctx.emplace(std::move(context_pool->back()));
        context_pool->pop_back();
        reset_context(*ctx, device_index);
      }
    }
    for (;;) {
      WorkItem item;
      {
        MutexLock lock(st.mu);
        while (!st.producer_done && st.work.empty()) st.cv.wait(st.mu);
        if (st.work.empty()) break;
        item = st.work.front();
        st.work.pop_front();
      }
      try {
        Timeline t;
        // The coordinator validated the model index before queuing the
        // work item, so this resolution cannot be out of range.
        const ModelEntry& entry =
            models[static_cast<std::size_t>(item.result->model)];
        auto run_one = [&](ExecContext& c) {
          // Per-request context restamp: every digest this request
          // resolves lives in its model's namespace, and the model's
          // tuned grouping parameters (when present) override the
          // config-wide store. Entry namespace 0 (the legacy / model-0
          // space) inherits the RunOptions namespace so single-model
          // registries stay bit-identical to the ModelFn overload.
          c.cache_namespace = entry.cache_namespace != 0
                                  ? entry.cache_namespace
                                  : run.cache_namespace;
          if (per_model_tuned)
            c.tuned = entry.tuned.empty() ? run.tuned : entry.tuned;
          if (item.events) c.cache_events = item.events;
          // borrow_input: the queue owns the drained tensor and nothing
          // reads it after measurement, so steal it instead of copying.
          return run.borrow_input
                     ? run_in_context(entry.fn, std::move(*item.input), c)
                     : run_in_context(entry.fn, *item.input, c);
        };
        if (config.reuse_context) {
          if (!ctx)
            ctx.emplace(make_run_context(shard_dev, config.engine, run));
          else
            reset_context(*ctx);
          t = run_one(*ctx);
        } else {
          ExecContext fresh = make_run_context(shard_dev, config.engine, run);
          t = run_one(fresh);
        }
        item.result->timeline = t;
        item.result->service_seconds = t.total_seconds();
        {
          MutexLock lock(st.mu);
          st.measured[item.index] = 1;
          try_place_locked(st, placer, queue);
        }
      } catch (...) {
        {
          MutexLock lock(st.mu);
          fail_locked(st, std::current_exception());
        }
        st.cv.notify_all();
        queue.close();  // unblock the coordinator's wait_pop
        break;
      }
    }
    if (context_pool && ctx) {
      // Hand the warm context back for the next session.
      MutexLock lock(st.mu);
      context_pool->push_back(std::move(*ctx));
    }
  };

  // One measurement pool of `workers` threads per device shard, capped
  // at the host's core count: modeled stats are thread-count independent
  // (deterministic accounting above), so oversubscribing the host beyond
  // its cores buys contention, not wall time.
  const int pool_cap = std::max(
      workers,
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  const int pool = static_cast<int>(
      std::min<long long>(static_cast<long long>(workers) * devices,
                          pool_cap));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(pool));
  for (int t = 0; t < pool; ++t) threads.emplace_back(worker, t / workers);

  // Coordinator (this thread): drain the queue in arrival order, feed
  // the batching policy, and hand each request to the measurement pool.
  // After a failure the queue is already closed; keep draining it so
  // every outstanding promise can receive the error.
  PendingRequest pr;
  while (queue.wait_pop(pr)) {
    bool errored = false;
    {
      MutexLock lock(st.mu);
      if (st.first_error) {
        st.promises.push_back(std::move(pr.promise));
        st.fulfilled.push_back(0);
        continue;
      }
      const std::size_t idx = st.results.size();
      st.results.emplace_back();
      st.results.back().id = pr.id;
      st.results.back().arrival_seconds = pr.arrival_seconds;
      st.results.back().priority = pr.priority;
      st.results.back().model = pr.model;
      st.inputs.push_back(std::move(pr.input));
      st.promises.push_back(std::move(pr.promise));
      st.fulfilled.push_back(0);
      st.measured.push_back(0);
      st.assigned.push_back(0);
      if (cached) st.events.emplace_back();
      try {
        // The queue guarantees model >= 0; the registry bound is this
        // session's to enforce. Throwing here fails the stream through
        // the established path — every outstanding handle receives the
        // error.
        if (static_cast<std::size_t>(pr.model) >= models.size())
          throw std::invalid_argument(
              "serve_stream: request targets model " +
              std::to_string(pr.model) + " but the registry has " +
              std::to_string(models.size()) + " model(s)");
        ArrivalInfo info{idx, pr.arrival_seconds, pr.priority, pr.model,
                         {}, false};
        if (batching.wants_digests()) {
          // O(points) content hash, computed only for digest-aware
          // policies, from the drained tensor before any worker can
          // borrow it. Salted into the model's namespace so dedup can
          // never coalesce identical inputs across tenants (model 0's
          // namespace is 0 — the digest is untouched on legacy paths).
          info.digest = salt_cache_key(
              input_content_digest(st.inputs.back().coords(),
                                   st.inputs.back().stride()),
              models[static_cast<std::size_t>(pr.model)].cache_namespace);
          info.has_digest = true;
        }
        std::vector<DispatchBatch> closed = batching.on_arrival(info);
        for (DispatchBatch& b : closed)
          append_batch_locked(st, std::move(b));
        st.work.push_back({idx, &st.inputs.back(), &st.results.back(),
                           cached ? &st.events.back() : nullptr});
        try_place_locked(st, placer, queue);
      } catch (...) {
        fail_locked(st, std::current_exception());
        queue.close();
        errored = true;
      }
    }
    // One new work item per iteration — wake one worker; a failure set
    // producer_done, so every worker must see it.
    if (errored)
      st.cv.notify_all();
    else
      st.cv.notify_one();
  }
  {
    bool errored;
    {
      MutexLock lock(st.mu);
      errored = static_cast<bool>(st.first_error);
    }
    if (!errored) {
      try {
        std::vector<DispatchBatch> tail = batching.flush();
        MutexLock lock(st.mu);
        for (DispatchBatch& b : tail) append_batch_locked(st, std::move(b));
        try_place_locked(st, placer, queue);
      } catch (...) {
        MutexLock lock(st.mu);
        fail_locked(st, std::current_exception());
      }
    }
  }
  {
    MutexLock lock(st.mu);
    st.producer_done = true;
  }
  st.cv.notify_all();
  for (std::thread& t : threads) t.join();

  // Everything is measured now; any still-unplaced batches place here
  // (and a policy that failed to cover the stream is a contract error).
  {
    MutexLock lock(st.mu);
    try_place_locked(st, placer, queue);
    if (!st.first_error) {
      // Fault mode: drain the remaining fault events and retries so
      // every admitted request is served or carries a typed failure.
      try {
        placer.finish_stream();
      } catch (...) {
        fail_locked(st, std::current_exception());
      }
    }
    if (!st.first_error &&
        (st.next_place != st.plan.size() ||
         placer.accounted_requests() != st.results.size()))
      fail_locked(st,
                  std::make_exception_ptr(std::invalid_argument(
                      "serve_stream: batching policy left " +
                      std::to_string(st.results.size() -
                                     placer.accounted_requests()) +
                      " request(s) undispatched at end of stream")));
  }

  // The joins above ended all concurrency; the guarded state is still
  // read under st.mu so the annotations stay honest.
  std::exception_ptr failure;
  {
    MutexLock lock(st.mu);
    failure = st.first_error;
  }
  if (failure) {
    // Reset the batching policy (a failed stream skipped the normal
    // flush) so a caller-supplied instance can serve the next session;
    // discard whatever it still had pending.
    try {
      batching.flush();
    } catch (...) {
    }
    // Every unfulfilled handle observes the failure, then rethrow.
    MutexLock lock(st.mu);
    for (std::size_t i = 0; i < st.promises.size(); ++i)
      if (!st.fulfilled[i]) st.promises[i].set_exception(failure);
    std::rethrow_exception(failure);
  }

  report.batches = placer.batch_records();
  {
    MutexLock lock(st.mu);
    report.requests.assign(std::make_move_iterator(st.results.begin()),
                           std::make_move_iterator(st.results.end()));
  }
  report.stats = placer.finalize(
      report.requests.empty() ? 0.0
                              : report.requests.front().arrival_seconds);
  report.stats.rejected = queue.rejected();
  // Admission rejections never reach the placer, so the per-model
  // breakdown is filled from the queue here (the vector only grows to
  // the highest model that was actually rejected).
  const std::vector<std::size_t> rejected = queue.rejected_by_model();
  for (std::size_t m = 0;
       m < report.stats.per_model.size() && m < rejected.size(); ++m)
    report.stats.per_model[m].rejected = rejected[m];
  return report;
}

StreamReport serve_stream(const ModelFn& model, RequestQueue& queue,
                          const ServerConfig& config,
                          BatchingPolicy& batching, RoutingPolicy& routing,
                          std::vector<ExecContext>* context_pool) {
  if (!model) throw std::invalid_argument("serve_stream: null model");
  // One default entry in namespace 0 with no overrides: the registry
  // path degenerates to exactly the legacy behavior (pinned by test).
  std::vector<ModelEntry> models(1);
  models[0].name = "default";
  models[0].fn = model;
  return serve_stream(models, queue, config, batching, routing,
                      context_pool);
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

Server::Server(ServerConfig config) : cfg_(std::move(config)) {
  cfg_.workers = std::max(cfg_.workers, 1);
  if (cfg_.shard.devices > kMaxModeledDevices)
    throw std::invalid_argument(
        "Server: shard.devices = " + std::to_string(cfg_.shard.devices) +
        " exceeds kMaxModeledDevices (" +
        std::to_string(kMaxModeledDevices) + ")");
  cfg_.shard.devices = std::max(cfg_.shard.devices, 1);
  if (!cfg_.fleet.empty()) {
    // A directly-populated fleet (bypassing with_fleet) gets the same
    // loud bound check, and shard.devices is forced consistent so every
    // observer of the config sees the fleet's true size.
    if (cfg_.fleet.size() > static_cast<std::size_t>(kMaxModeledDevices))
      throw std::invalid_argument(
          "Server: fleet of " + std::to_string(cfg_.fleet.size()) +
          " devices exceeds kMaxModeledDevices (" +
          std::to_string(kMaxModeledDevices) + ")");
    cfg_.shard.devices = static_cast<int>(cfg_.fleet.size());
  }
  if (!std::isfinite(cfg_.batch_overhead_seconds) ||
      cfg_.batch_overhead_seconds < 0)
    throw std::invalid_argument(
        "Server: batch_overhead_seconds must be finite and >= 0");
  if (cfg_.queue.max_depth == 0)
    throw std::invalid_argument("Server: queue.max_depth must be >= 1");
  // Fault configuration fails at construction, not mid-session: the
  // plan must target devices this deployment actually has, and the
  // tolerance knobs are validated even without a plan (a later
  // with_fault_plan on a copied config should not resurrect bad knobs).
  if (cfg_.fault_plan)
    validate_fault_plan(*cfg_.fault_plan, cfg_.shard.devices);
  validate_fault_tolerance(cfg_.fault_tolerance);
  // Model-registry validation: every entry callable, uniquely and
  // non-emptily named, with finite knobs. Cache namespaces are forced to
  // the registry index regardless of what the caller stamped — digest
  // isolation is structural, and entry 0 keeps the legacy namespace so
  // a one-entry registry is bit-identical to start(model).
  for (std::size_t i = 0; i < cfg_.models.size(); ++i) {
    ModelEntry& m = cfg_.models[i];
    if (!m.fn)
      throw std::invalid_argument("Server: model '" + m.name +
                                  "' has a null ModelFn");
    if (m.name.empty())
      throw std::invalid_argument("Server: model " + std::to_string(i) +
                                  " has an empty name");
    for (std::size_t j = 0; j < i; ++j)
      if (cfg_.models[j].name == m.name)
        throw std::invalid_argument("Server: duplicate model name '" +
                                    m.name + "'");
    if (!std::isfinite(m.weight) || m.weight <= 0)
      throw std::invalid_argument("Server: model '" + m.name +
                                  "' weight must be finite and > 0");
    if (std::isnan(m.slo_budget_seconds) ||
        (m.slo_budget_seconds >= 0 && !std::isfinite(m.slo_budget_seconds)))
      throw std::invalid_argument(
          "Server: model '" + m.name +
          "' slo_budget_seconds must be finite (or negative to inherit)");
    const int cls = static_cast<int>(m.default_priority);
    if (cls < 0 || cls >= kNumPriorityClasses)
      throw std::invalid_argument("Server: model '" + m.name +
                                  "' has an invalid default_priority");
    m.cache_namespace = static_cast<std::uint64_t>(i);
  }
  // Validate the default policy knobs eagerly (throws invalid_argument)
  // so a bad configuration fails at construction, not at start() —
  // including the per-model batching contract the registry implies.
  if (!cfg_.batching) {
    if (cfg_.dedup_batching)
      DedupBatchingPolicy probe(cfg_.batcher, cfg_.priority,
                                model_batching_infos(cfg_.models));
    else
      SloBatchingPolicy probe(cfg_.batcher, cfg_.priority,
                              model_batching_infos(cfg_.models));
  }
  if (!cfg_.run.map_cache && cfg_.map_cache_bytes > 0)
    cfg_.run.map_cache =
        std::make_shared<KernelMapCache>(cfg_.map_cache_bytes);
  // Warm-start the server-owned wall-clock cache once, here: the first
  // request after a restart hits instead of rebuilding. Per-session
  // modeled warming is serve_stream's job (it reads cfg_.warm_snapshot
  // directly), so it applies identically every session.
  if (cfg_.run.map_cache && cfg_.warm_snapshot)
    cfg_.run.map_cache->import_snapshot(*cfg_.warm_snapshot);
}

Server::~Server() { stop(); }

void Server::launch_locked(ModelFn legacy_model) {
  if (running_)
    throw std::logic_error(
        "Server::start: a session is already running (drain() or stop() "
        "it before starting another)");
  if (loop_.joinable()) loop_.join();
  queue_ = std::make_unique<RequestQueue>(cfg_.queue);
  report_ = StreamReport{};
  error_ = nullptr;
  std::shared_ptr<BatchingPolicy> batching = cfg_.batching;
  if (!batching) {
    // An empty registry contributes an empty info vector, which keeps
    // the policies on their (bit-identical) single-model code paths.
    if (cfg_.dedup_batching)
      batching = std::make_shared<DedupBatchingPolicy>(
          cfg_.batcher, cfg_.priority, model_batching_infos(cfg_.models));
    else
      batching = std::make_shared<SloBatchingPolicy>(
          cfg_.batcher, cfg_.priority, model_batching_infos(cfg_.models));
  }
  std::shared_ptr<RoutingPolicy> routing = cfg_.routing;
  if (!routing) routing = make_routing_policy(cfg_.shard.route);
  running_ = true;
  // The serving thread gets the queue pointer by value: it must not
  // read the guarded queue_ member (it never takes life_mu_ — drain()
  // holds that lock across the join). The session owns *q until the
  // join in drain()/stop(), so the pointer outlives the thread.
  RequestQueue* q = queue_.get();
  loop_ = std::thread([this, q, model = std::move(legacy_model), batching,
                       routing] {
    try {
      report_ = model ? serve_stream(model, *q, cfg_, *batching, *routing,
                                     &spare_contexts_)
                      : serve_stream(cfg_.models, *q, cfg_, *batching,
                                     *routing, &spare_contexts_);
    } catch (...) {
      error_ = std::current_exception();
    }
  });
}

void Server::start(ModelFn model) {
  MutexLock lock(life_mu_);
  if (!model) throw std::invalid_argument("Server::start: null model");
  if (!cfg_.models.empty())
    throw std::invalid_argument(
        "Server::start(model): this server hosts a model registry "
        "(ServerConfig::with_model); open sessions with start() and "
        "submit with submit_to()");
  launch_locked(std::move(model));
}

void Server::start() {
  MutexLock lock(life_mu_);
  if (cfg_.models.empty())
    throw std::logic_error(
        "Server::start(): no models registered (populate "
        "ServerConfig::with_model, or serve a single ModelFn through "
        "start(model))");
  launch_locked(nullptr);
}

StreamHandle Server::submit(SparseTensor input, double arrival_seconds,
                            Priority priority) {
  // life_mu_ (not just the running_ atomic): a submit racing drain()'s
  // start()-replacement of queue_ must never dereference the old queue
  // after its session freed it. Admission never blocks inside the
  // queue, so the lock hold is short; a submit arriving while drain()
  // joins simply waits and then gets the typed error.
  MutexLock lock(life_mu_);
  if (!running_ || !queue_)
    throw std::logic_error(
        "Server::submit: no session is running (call start() before "
        "submitting; a drained or stopped session does not admit)");
  return queue_->submit(std::move(input), arrival_seconds, priority);
}

std::optional<StreamHandle> Server::try_submit(SparseTensor input,
                                               double arrival_seconds,
                                               Priority priority) {
  MutexLock lock(life_mu_);
  if (!running_ || !queue_)
    throw std::logic_error(
        "Server::try_submit: no session is running (call start() before "
        "submitting; a drained or stopped session does not admit)");
  return queue_->try_submit(std::move(input), arrival_seconds, priority);
}

Priority Server::resolve_submission(
    int model, const std::optional<Priority>& priority) const {
  if (cfg_.models.empty())
    throw std::logic_error(
        "Server::submit_to: this server has no model registry "
        "(single-model deployments submit with submit())");
  if (model < 0 || static_cast<std::size_t>(model) >= cfg_.models.size())
    throw std::invalid_argument(
        "Server::submit_to: model " + std::to_string(model) +
        " is not registered (registry has " +
        std::to_string(cfg_.models.size()) + " model(s))");
  return priority ? *priority
                  : cfg_.models[static_cast<std::size_t>(model)]
                        .default_priority;
}

StreamHandle Server::submit_to(int model, SparseTensor input,
                               double arrival_seconds,
                               std::optional<Priority> priority) {
  MutexLock lock(life_mu_);
  if (!running_ || !queue_)
    throw std::logic_error(
        "Server::submit_to: no session is running (call start() before "
        "submitting; a drained or stopped session does not admit)");
  const Priority effective = resolve_submission(model, priority);
  return queue_->submit(std::move(input), arrival_seconds, effective,
                        model);
}

std::optional<StreamHandle> Server::try_submit_to(
    int model, SparseTensor input, double arrival_seconds,
    std::optional<Priority> priority) {
  MutexLock lock(life_mu_);
  if (!running_ || !queue_)
    throw std::logic_error(
        "Server::try_submit_to: no session is running (call start() "
        "before submitting; a drained or stopped session does not admit)");
  const Priority effective = resolve_submission(model, priority);
  return queue_->try_submit(std::move(input), arrival_seconds, effective,
                            model);
}

int Server::model_id(const std::string& name) const {
  for (std::size_t i = 0; i < cfg_.models.size(); ++i)
    if (cfg_.models[i].name == name) return static_cast<int>(i);
  return -1;
}

StreamReport Server::drain() {
  // life_mu_ serializes against stop()/start(): whichever of a racing
  // drain/stop pair runs second sees running_ already cleared and gets
  // the typed error / no-op instead of a second join (UB).
  MutexLock lock(life_mu_);
  if (!running_)
    throw std::logic_error(
        "Server::drain: no session is running (already drained or "
        "stopped, or start() was never called)");
  queue_->close();
  loop_.join();
  running_ = false;
  if (error_) std::rethrow_exception(error_);
  return std::move(report_);
}

void Server::stop() {
  MutexLock lock(life_mu_);
  if (!running_) {
    if (loop_.joinable()) loop_.join();
    return;
  }
  queue_->close();
  loop_.join();
  running_ = false;
  // A failed session already delivered its error through the handles;
  // stop() discards the report either way.
  error_ = nullptr;
}

BatchReport Server::run_batch(const ModelFn& model,
                              const std::vector<SparseTensor>& inputs) const {
  BatchOptions opt;
  opt.workers = cfg_.workers;
  opt.run = cfg_.run;  // map_cache already resolved in the constructor
  const BatchRunner runner(cfg_.device, cfg_.engine, opt);
  return runner.run(model, inputs);
}

std::size_t Server::depth() const {
  MutexLock lock(life_mu_);
  return running_ && queue_ ? queue_->depth() : 0;
}

std::size_t Server::rejected() const {
  MutexLock lock(life_mu_);
  return running_ && queue_ ? queue_->rejected() : 0;
}

}  // namespace ts::serve
