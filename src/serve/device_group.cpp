#include "serve/device_group.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ts::serve {

const char* to_string(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kRoundRobin: return "round_robin";
    case RoutePolicy::kLeastLoaded: return "least_loaded";
    case RoutePolicy::kCacheAffinity: return "cache_affinity";
  }
  return "?";
}

DeviceGroup::DeviceGroup(const DeviceSpec& base, int devices,
                         std::size_t map_cache_bytes)
    : map_cache_bytes_(map_cache_bytes) {
  if (devices > kMaxModeledDevices)
    throw std::invalid_argument(
        "DeviceGroup: " + std::to_string(devices) +
        " devices exceeds kMaxModeledDevices (" +
        std::to_string(kMaxModeledDevices) + ")");
  const int n = std::max(devices, 1);
  shards_.reserve(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    Shard s;
    s.spec = base;
    s.spec.device_index = d;
    s.cache = std::make_unique<KernelMapCache>(map_cache_bytes);
    s.stats.device = d;
    shards_.push_back(std::move(s));
  }
}

DeviceGroup::Shard& DeviceGroup::shard_at(int device) {
  if (device < 0 || device >= size())
    throw std::out_of_range("DeviceGroup: device " + std::to_string(device) +
                            " out of range [0, " + std::to_string(size()) +
                            ")");
  return shards_[static_cast<std::size_t>(device)];
}

const DeviceGroup::Shard& DeviceGroup::shard_at(int device) const {
  return const_cast<DeviceGroup*>(this)->shard_at(device);
}

const DeviceSpec& DeviceGroup::spec(int device) const {
  return shard_at(device).spec;
}

KernelMapCache& DeviceGroup::cache(int device) {
  return *shard_at(device).cache;
}

const KernelMapCache& DeviceGroup::cache(int device) const {
  return *shard_at(device).cache;
}

void DeviceGroup::begin_schedule(int workers_per_device) {
  const int workers = std::max(workers_per_device, 1);
  for (Shard& s : shards_) {
    s.lane_free.assign(static_cast<std::size_t>(workers), 0.0);
    const int id = s.stats.device;
    s.stats = DeviceShardStats{};
    s.stats.device = id;
    s.cache = std::make_unique<KernelMapCache>(map_cache_bytes_);
  }
}

int DeviceGroup::least_loaded() const {
  int best = 0;
  for (int d = 1; d < size(); ++d) {
    if (shards_[static_cast<std::size_t>(d)].stats.busy_seconds <
        shards_[static_cast<std::size_t>(best)].stats.busy_seconds)
      best = d;
  }
  return best;
}

int DeviceGroup::owner_of(const MapCacheKey& key) const {
  for (int d = 0; d < size(); ++d) {
    if (shards_[static_cast<std::size_t>(d)].cache->contains(key)) return d;
  }
  return -1;
}

int DeviceGroup::place_batch(int device, double dispatch_seconds,
                             double overhead_seconds,
                             const std::vector<double>& member_service_seconds,
                             double* start_seconds, double* finish_seconds) {
  Shard& s = shard_at(device);
  if (s.lane_free.empty())
    throw std::logic_error(
        "DeviceGroup::place_batch before begin_schedule: no lanes");
  auto it = std::min_element(s.lane_free.begin(), s.lane_free.end());
  const double start = std::max(dispatch_seconds, *it);
  double cursor = start + overhead_seconds;
  for (double service : member_service_seconds) cursor += service;
  *it = cursor;
  s.stats.busy_seconds += cursor - start;
  s.stats.batches += 1;
  s.stats.requests += member_service_seconds.size();
  if (start_seconds) *start_seconds = start;
  if (finish_seconds) *finish_seconds = cursor;
  return static_cast<int>(it - s.lane_free.begin());
}

DeviceShardStats& DeviceGroup::stats(int device) {
  return shard_at(device).stats;
}

const DeviceShardStats& DeviceGroup::stats(int device) const {
  return shard_at(device).stats;
}

double DeviceGroup::lane_high_water(int device) const {
  const Shard& s = shard_at(device);
  if (s.lane_free.empty()) return 0.0;
  return *std::max_element(s.lane_free.begin(), s.lane_free.end());
}

}  // namespace ts::serve
