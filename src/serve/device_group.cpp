#include "serve/device_group.hpp"

#include <algorithm>
#include <functional>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>

namespace ts::serve {

const char* to_string(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kRoundRobin: return "round_robin";
    case RoutePolicy::kLeastLoaded: return "least_loaded";
    case RoutePolicy::kCacheAffinity: return "cache_affinity";
    case RoutePolicy::kEstimateAware: return "estimate_aware";
  }
  return "?";
}

std::vector<DeviceSpec> expand_fleet(const std::vector<FleetTier>& tiers) {
  if (tiers.empty())
    throw std::invalid_argument(
        "expand_fleet: fleet must name at least one device tier");
  std::vector<DeviceSpec> fleet;
  long long total = 0;
  for (std::size_t t = 0; t < tiers.size(); ++t) {
    if (tiers[t].count < 1)
      throw std::invalid_argument(
          "expand_fleet: tier " + std::to_string(t) + " (\"" +
          tiers[t].spec.name + "\") has non-positive count " +
          std::to_string(tiers[t].count));
    total += tiers[t].count;
    if (total > kMaxModeledDevices)
      throw std::invalid_argument(
          "expand_fleet: fleet totals " + std::to_string(total) +
          " devices at tier " + std::to_string(t) +
          ", exceeding kMaxModeledDevices (" +
          std::to_string(kMaxModeledDevices) + ")");
    fleet.insert(fleet.end(), static_cast<std::size_t>(tiers[t].count),
                 tiers[t].spec);
  }
  return fleet;
}

DeviceGroup::DeviceGroup(std::vector<DeviceSpec> fleet,
                         std::size_t map_cache_bytes)
    : map_cache_bytes_(map_cache_bytes) {
  if (fleet.empty())
    throw std::invalid_argument(
        "DeviceGroup: fleet must contain at least one DeviceSpec");
  if (fleet.size() > static_cast<std::size_t>(kMaxModeledDevices))
    throw std::invalid_argument(
        "DeviceGroup: fleet of " + std::to_string(fleet.size()) +
        " devices exceeds kMaxModeledDevices (" +
        std::to_string(kMaxModeledDevices) + ")");
  shards_.reserve(fleet.size());
  for (std::size_t d = 0; d < fleet.size(); ++d) {
    Shard s;
    s.spec = std::move(fleet[d]);
    s.spec.device_index = static_cast<int>(d);
    s.cache = std::make_unique<KernelMapCache>(map_cache_bytes);
    s.stats.device = static_cast<int>(d);
    s.stats.name = s.spec.name;
    shards_.push_back(std::move(s));
    load_.emplace(0.0, static_cast<int>(d));
  }
}

namespace {

/// The legacy homogeneous-constructor contract: counts past
/// kMaxModeledDevices fail loudly, everything below 1 clamps to 1.
int homogeneous_count(int devices) {
  if (devices > kMaxModeledDevices)
    throw std::invalid_argument(
        "DeviceGroup: " + std::to_string(devices) +
        " devices exceeds kMaxModeledDevices (" +
        std::to_string(kMaxModeledDevices) + ")");
  return std::max(devices, 1);
}

}  // namespace

DeviceGroup::DeviceGroup(const DeviceSpec& base, int devices,
                         std::size_t map_cache_bytes)
    : DeviceGroup(std::vector<DeviceSpec>(
                      static_cast<std::size_t>(homogeneous_count(devices)),
                      base),
                  map_cache_bytes) {}

DeviceGroup::Shard& DeviceGroup::shard_at(int device) {
  if (device < 0 || device >= size())
    throw std::out_of_range("DeviceGroup: device " + std::to_string(device) +
                            " out of range [0, " + std::to_string(size()) +
                            ")");
  return shards_[static_cast<std::size_t>(device)];
}

const DeviceGroup::Shard& DeviceGroup::shard_at(int device) const {
  return const_cast<DeviceGroup*>(this)->shard_at(device);
}

const DeviceSpec& DeviceGroup::spec(int device) const {
  return shard_at(device).spec;
}

KernelMapCache& DeviceGroup::cache(int device) {
  return *shard_at(device).cache;
}

const KernelMapCache& DeviceGroup::cache(int device) const {
  return *shard_at(device).cache;
}

void DeviceGroup::mirror_outcome(int device, const MapCacheKey& key,
                                 const KernelMapCache::RecordOutcome& out) {
  // Mirror the population deltas into the digest->owners index. A device
  // holds each key at most once, so erase/insert of `device` in the
  // (short) sorted owner list is exact.
  for (const MapCacheKey& victim : out.evicted) {
    const auto it = owners_.find(victim);
    if (it == owners_.end()) continue;
    std::vector<int>& owners = it->second;
    const auto pos = std::find(owners.begin(), owners.end(), device);
    if (pos != owners.end()) owners.erase(pos);
    if (owners.empty()) owners_.erase(it);
  }
  if (out.inserted) {
    std::vector<int>& owners = owners_[key];
    const auto pos = std::lower_bound(owners.begin(), owners.end(), device);
    if (pos == owners.end() || *pos != device) owners.insert(pos, device);
  }
}

KernelMapCache::RecordOutcome DeviceGroup::record_lookup(
    int device, const MapCacheKey& key, std::size_t bytes) {
  Shard& s = shard_at(device);
  KernelMapCache::RecordOutcome out = s.cache->record_lookup(key, bytes);
  mirror_outcome(device, key, out);
  return out;
}

void DeviceGroup::warm_start(
    std::shared_ptr<const MapCacheSnapshot> snapshot) {
  warm_snapshot_ = std::move(snapshot);
}

void DeviceGroup::begin_schedule(int workers_per_device) {
  const int workers = std::max(workers_per_device, 1);
  load_.clear();
  owners_.clear();
  for (Shard& s : shards_) {
    s.lane_events.clear();
    s.lane_events.reserve(static_cast<std::size_t>(workers));
    for (int l = 0; l < workers; ++l) s.lane_events.emplace_back(0.0, l);
    std::make_heap(s.lane_events.begin(), s.lane_events.end(),
                   std::greater<>{});
    s.lane_high_water = 0.0;
    const int id = s.stats.device;
    s.stats = DeviceShardStats{};
    s.stats.device = id;
    s.stats.name = s.spec.name;
    s.cache = std::make_unique<KernelMapCache>(map_cache_bytes_);
    // Warm start: seed the recreated cache from the manifest, LRU-first,
    // so residency and eviction order reproduce the saving cache's, and
    // keep the owner index in step. Runs before any batch is routed and
    // identically on every shard — deterministic, worker-invariant.
    if (warm_snapshot_)
      for (const MapCacheSnapshotEntry& e : warm_snapshot_->entries)
        mirror_outcome(id, e.key, s.cache->admit_record(e.key, e.bytes));
    load_.emplace(0.0, id);
  }
}

int DeviceGroup::least_loaded() const {
  if (load_.empty()) return 0;
  if (!injector_) return load_.begin()->second;
  // Health-aware selection: skip DOWN shards and weight each survivor's
  // accumulated work by its service factor, so a DEGRADED shard looks
  // proportionally more loaded. Strict `<` over the busy-ascending walk
  // preserves the legacy lowest-id tie-break; healthy shards multiply
  // by exactly 1.0, so a fault-free injector reproduces the legacy
  // answer bit-for-bit.
  int best = -1;
  double best_cost = 0;
  for (const auto& [busy, device] : load_) {
    if (injector_->health(device) == ShardHealth::kDown) continue;
    const double cost = busy * injector_->service_factor(device);
    if (best < 0 || cost < best_cost) {
      best = device;
      best_cost = cost;
    }
  }
  return best >= 0 ? best : load_.begin()->second;
}

int DeviceGroup::owner_of(const MapCacheKey& key) const {
  const auto it = owners_.find(key);
  if (it == owners_.end() || it->second.empty()) return -1;
  if (!injector_) return it->second.front();
  for (int device : it->second)
    if (injector_->health(device) != ShardHealth::kDown) return device;
  return -1;
}

void DeviceGroup::attach_fault_injector(const FaultInjector* injector) {
  injector_ = injector;
}

ShardHealth DeviceGroup::health(int device) const {
  shard_at(device);  // range check even without an injector
  return injector_ ? injector_->health(device) : ShardHealth::kUp;
}

double DeviceGroup::service_factor(int device) const {
  shard_at(device);
  return injector_ ? injector_->service_factor(device) : 1.0;
}

void DeviceGroup::invalidate_shard_cache(int device) {
  Shard& s = shard_at(device);
  s.cache = std::make_unique<KernelMapCache>(map_cache_bytes_);
  // Purge the crashed shard from the owner index. Full scan — crashes
  // are rare events, not the routing hot path.
  // det-lint: allow(unordered-iter): order-independent purge — every
  // entry is visited and mutated the same way regardless of iteration
  // order, and nothing downstream observes the order.
  for (auto it = owners_.begin(); it != owners_.end();) {
    std::vector<int>& owners = it->second;
    const auto pos = std::find(owners.begin(), owners.end(), device);
    if (pos != owners.end()) owners.erase(pos);
    it = owners.empty() ? owners_.erase(it) : std::next(it);
  }
}

void DeviceGroup::revive_shard(int device, double at_seconds,
                               bool replacement) {
  Shard& s = shard_at(device);
  if (s.lane_events.empty())
    throw std::logic_error(
        "DeviceGroup::revive_shard before begin_schedule: no lanes");
  // The outage left no lane mid-batch (in-flight work was re-enqueued
  // at activation), so every lane frees at the recovery stamp.
  for (std::pair<double, int>& ev : s.lane_events) ev.first = at_seconds;
  std::make_heap(s.lane_events.begin(), s.lane_events.end(),
                 std::greater<>{});
  s.lane_high_water = std::max(s.lane_high_water, at_seconds);
  if (replacement && warm_snapshot_) {
    // Warm the replacement from the snapshot manifest instead of coming
    // up cold — reseed_record clears the (already invalidated) cache and
    // re-admits LRU-first; mirror each outcome so the owner index tracks
    // the rebuilt population.
    const std::vector<KernelMapCache::RecordOutcome> outs =
        s.cache->reseed_record(*warm_snapshot_);
    for (std::size_t i = 0; i < outs.size(); ++i)
      mirror_outcome(device, warm_snapshot_->entries[i].key, outs[i]);
  }
}

int DeviceGroup::place_batch(int device, double dispatch_seconds,
                             double overhead_seconds,
                             const std::vector<double>& member_service_seconds,
                             double* start_seconds, double* finish_seconds) {
  Shard& s = shard_at(device);
  if (s.lane_events.empty())
    throw std::logic_error(
        "DeviceGroup::place_batch before begin_schedule: no lanes");
  // Pop the earliest-free lane event. (free_time, lane) is a total order
  // — lane ids are unique — so the heap minimum is exactly the
  // lowest-index earliest lane the legacy linear scan picked.
  std::pop_heap(s.lane_events.begin(), s.lane_events.end(),
                std::greater<>{});
  std::pair<double, int>& ev = s.lane_events.back();
  const double start = std::max(dispatch_seconds, ev.first);
  double cursor = start + overhead_seconds;
  for (double service : member_service_seconds) cursor += service;
  const int lane = ev.second;
  ev.first = cursor;
  std::push_heap(s.lane_events.begin(), s.lane_events.end(),
                 std::greater<>{});
  s.lane_high_water = std::max(s.lane_high_water, cursor);
  const double busy_before = s.stats.busy_seconds;
  s.stats.busy_seconds += cursor - start;
  s.stats.batches += 1;
  s.stats.requests += member_service_seconds.size();
  load_.erase({busy_before, device});
  load_.emplace(s.stats.busy_seconds, device);
  if (start_seconds) *start_seconds = start;
  if (finish_seconds) *finish_seconds = cursor;
  return lane;
}

DeviceShardStats& DeviceGroup::stats(int device) {
  return shard_at(device).stats;
}

const DeviceShardStats& DeviceGroup::stats(int device) const {
  return shard_at(device).stats;
}

double DeviceGroup::lane_high_water(int device) const {
  return shard_at(device).lane_high_water;
}

}  // namespace ts::serve
