#include "serve/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "serve/serve_stats.hpp"

namespace ts::serve {

namespace {

/// Shared precondition of both stream schedulers: the plan must
/// partition [0, requests) contiguously and the overhead must be sane.
void validate_stream_plan(std::size_t requests,
                          const std::vector<PlannedBatch>& plan,
                          double batch_overhead_seconds) {
  if (!std::isfinite(batch_overhead_seconds) || batch_overhead_seconds < 0)
    throw std::invalid_argument(
        "schedule_stream: batch_overhead_seconds must be finite and >= 0");
  std::size_t expected = 0;
  for (const PlannedBatch& b : plan) {
    if (b.first != expected || b.count == 0)
      throw std::invalid_argument(
          "schedule_stream: plan must cover requests contiguously from 0");
    expected += b.count;
  }
  if (expected != requests)
    throw std::invalid_argument(
        "schedule_stream: plan covers " + std::to_string(expected) +
        " requests, have " + std::to_string(requests));
}

/// Replays one recorded cache resolution through a device's modeled
/// cache (record mode), applying the shared warm-hit delta on hits.
/// record_lookup's decisions and apply_map_cache_hit's arithmetic are
/// the same ones MapCacheReplay uses, so a 1-device group reproduces
/// the single-device replay bit-for-bit.
void replay_event(KernelMapCache& cache, const MapCacheEvent& ev,
                  Timeline& t, MapCacheReplayStats& st) {
  ++st.lookups;
  const KernelMapCache::RecordOutcome out =
      cache.record_lookup(ev.key, ev.bytes);
  st.evictions += out.evictions;
  if (!out.hit) {
    ++st.misses;
    return;
  }
  ++st.hits;
  apply_map_cache_hit(ev, t);
  st.modeled_seconds_saved += ev.cold_seconds - ev.hit_seconds;
}

/// The batch's dominant kernel-map digest: the content key with the
/// largest summed cold mapping charge across the members' recorded
/// events (ties -> first encountered in submission order). Returns
/// false when the batch recorded no events.
bool dominant_digest(const std::vector<std::vector<MapCacheEvent>>& events,
                     std::size_t first, std::size_t count,
                     MapCacheKey* out) {
  // Batches are small (max_batch) and events few per request, so a flat
  // first-occurrence-ordered scan beats a hash map here.
  std::vector<MapCacheKey> keys;
  std::vector<double> weight;
  for (std::size_t i = first; i < first + count; ++i) {
    for (const MapCacheEvent& ev : events[i]) {
      std::size_t k = 0;
      while (k < keys.size() && !(keys[k] == ev.key)) ++k;
      if (k == keys.size()) {
        keys.push_back(ev.key);
        weight.push_back(0.0);
      }
      weight[k] += ev.cold_seconds;
    }
  }
  if (keys.empty()) return false;
  std::size_t best = 0;
  for (std::size_t k = 1; k < keys.size(); ++k)
    if (weight[k] > weight[best]) best = k;  // strict: ties keep earliest
  *out = keys[best];
  return true;
}

}  // namespace

BatchStats schedule_stats(std::vector<RequestResult>& requests,
                          int workers) {
  BatchStats s;
  s.workers = std::max(workers, 1);
  s.requests = requests.size();
  if (requests.empty()) return s;

  std::vector<double> lane(static_cast<std::size_t>(s.workers), 0.0);
  std::vector<double> finishes;
  finishes.reserve(requests.size());
  double sum_service = 0;
  for (RequestResult& r : requests) {
    auto it = std::min_element(lane.begin(), lane.end());
    r.start_seconds = *it;
    r.finish_seconds = r.start_seconds + r.service_seconds;
    *it = r.finish_seconds;
    finishes.push_back(r.finish_seconds);
    sum_service += r.service_seconds;
    s.aggregate += r.timeline;
  }

  s.makespan_seconds = *std::max_element(lane.begin(), lane.end());
  s.throughput_fps =
      s.makespan_seconds > 0
          ? static_cast<double>(requests.size()) / s.makespan_seconds
          : 0.0;
  s.mean_service_seconds =
      sum_service / static_cast<double>(requests.size());
  std::sort(finishes.begin(), finishes.end());
  s.latency_p50_seconds = percentile(finishes, 0.50);
  s.latency_p90_seconds = percentile(finishes, 0.90);
  s.latency_p99_seconds = percentile(finishes, 0.99);
  return s;
}

StreamStats schedule_stream(std::vector<StreamResult>& requests,
                            const std::vector<PlannedBatch>& plan,
                            int workers, double batch_overhead_seconds,
                            std::vector<StreamBatchRecord>* batches) {
  // A single-device group with no cache events reduces the sharded
  // scheduler to exactly this function's historical placement math
  // (every batch to device 0's earliest lane) — one scheduler body,
  // bit-identical results (ScheduleStreamSharded.OneDeviceBitEquals*).
  // The device spec is identity metadata only; the scheduler never
  // consults it.
  DeviceGroup single(DeviceSpec{}, 1, 0);
  return schedule_stream_sharded(requests, plan, single,
                                 RoutePolicy::kRoundRobin, workers,
                                 batch_overhead_seconds, nullptr, batches);
}

StreamStats schedule_stream_sharded(
    std::vector<StreamResult>& requests,
    const std::vector<PlannedBatch>& plan, DeviceGroup& group,
    RoutePolicy policy, int workers_per_device,
    double batch_overhead_seconds,
    const std::vector<std::vector<MapCacheEvent>>* events,
    std::vector<StreamBatchRecord>* batches) {
  validate_stream_plan(requests.size(), plan, batch_overhead_seconds);
  if (events && events->size() != requests.size())
    throw std::invalid_argument(
        "schedule_stream_sharded: events must be parallel to requests");

  const int devices = group.size();
  group.begin_schedule(workers_per_device);

  StreamStats s;
  s.workers = std::max(workers_per_device, 1);
  s.devices = devices;
  s.completed = requests.size();
  s.batches = plan.size();
  s.per_device.resize(static_cast<std::size_t>(devices));
  if (batches) batches->clear();
  if (requests.empty()) {
    for (int d = 0; d < devices; ++d) s.per_device[d] = group.stats(d);
    return s;
  }

  std::vector<double> waits, e2es, services;
  waits.reserve(requests.size());
  e2es.reserve(requests.size());
  double sum_service = 0;
  double last_finish = 0;

  for (std::size_t k = 0; k < plan.size(); ++k) {
    const PlannedBatch& b = plan[k];

    // 1. Route. Policy inputs (accumulated modeled work, modeled cache
    // ownership) are independent of lane count, so routing — and with it
    // every per-device cache decision — is worker-count invariant.
    int dev = 0;
    if (devices > 1) {
      switch (policy) {
        case RoutePolicy::kRoundRobin:
          dev = static_cast<int>(k % static_cast<std::size_t>(devices));
          break;
        case RoutePolicy::kLeastLoaded:
          dev = group.least_loaded();
          break;
        case RoutePolicy::kCacheAffinity: {
          MapCacheKey dom;
          dev = events && dominant_digest(*events, b.first, b.count, &dom)
                    ? group.owner_of(dom)
                    : -1;
          if (dev < 0) dev = group.least_loaded();
          break;
        }
      }
    }

    // 2. Per-device deterministic cache accounting: replay the members'
    // recorded resolutions (in submission order — the plan is contiguous
    // and ascending) through the routed device's modeled cache.
    if (events) {
      for (std::size_t i = b.first; i < b.first + b.count; ++i) {
        StreamResult& r = requests[i];
        for (const MapCacheEvent& ev : (*events)[i])
          replay_event(group.cache(dev), ev, r.timeline,
                       group.stats(dev).map_cache);
        r.service_seconds = r.timeline.total_seconds();
      }
    }

    // 3. Place on the device's earliest-available lane and fill member
    // schedule slots (same accounting as schedule_stream).
    services.clear();
    for (std::size_t i = b.first; i < b.first + b.count; ++i)
      services.push_back(requests[i].service_seconds);
    double start = 0, finish = 0;
    const int lane = group.place_batch(dev, b.dispatch_seconds,
                                       batch_overhead_seconds, services,
                                       &start, &finish);
    double cursor = start + batch_overhead_seconds;
    for (std::size_t i = b.first; i < b.first + b.count; ++i) {
      StreamResult& r = requests[i];
      r.start_seconds = cursor;
      r.finish_seconds = cursor + r.service_seconds;
      cursor = r.finish_seconds;
      // Queue wait ends when the *batch* starts executing; the once-per-
      // batch overhead and batch-mates ahead of this request are part of
      // the (batched) run phase, not the queue. This is what the SLO
      // budget bounds: with free lanes, wait <= slo_budget_seconds by
      // construction of the batcher's deadline rule.
      r.queue_wait_seconds = start - r.arrival_seconds;
      r.e2e_seconds = r.finish_seconds - r.arrival_seconds;
      r.batch_id = k;
      r.batch_size = b.count;
      r.device = dev;
      waits.push_back(r.queue_wait_seconds);
      e2es.push_back(r.e2e_seconds);
      sum_service += r.service_seconds;
      s.aggregate += r.timeline;
    }
    last_finish = std::max(last_finish, cursor);
    if (batches)
      batches->push_back({k, b.first, b.count, b.dispatch_seconds, start,
                          cursor, lane, dev});
  }

  s.mean_batch_size = static_cast<double>(requests.size()) /
                      static_cast<double>(plan.size());
  s.mean_service_seconds =
      sum_service / static_cast<double>(requests.size());
  s.makespan_seconds = last_finish - requests.front().arrival_seconds;
  s.throughput_fps =
      s.makespan_seconds > 0
          ? static_cast<double>(requests.size()) / s.makespan_seconds
          : 0.0;
  std::sort(waits.begin(), waits.end());
  std::sort(e2es.begin(), e2es.end());
  s.queue_wait_p50_seconds = percentile(waits, 0.50);
  s.queue_wait_p90_seconds = percentile(waits, 0.90);
  s.queue_wait_p99_seconds = percentile(waits, 0.99);
  s.e2e_p50_seconds = percentile(e2es, 0.50);
  s.e2e_p90_seconds = percentile(e2es, 0.90);
  s.e2e_p99_seconds = percentile(e2es, 0.99);

  // Per-device clocks and the group-wide cache summary.
  for (int d = 0; d < devices; ++d) {
    DeviceShardStats& ds = group.stats(d);
    ds.free_seconds = group.lane_high_water(d);
    ds.utilization =
        s.makespan_seconds > 0
            ? ds.busy_seconds /
                  (static_cast<double>(s.workers) * s.makespan_seconds)
            : 0.0;
    s.map_cache.lookups += ds.map_cache.lookups;
    s.map_cache.hits += ds.map_cache.hits;
    s.map_cache.misses += ds.map_cache.misses;
    s.map_cache.evictions += ds.map_cache.evictions;
    s.map_cache.modeled_seconds_saved += ds.map_cache.modeled_seconds_saved;
    s.per_device[static_cast<std::size_t>(d)] = ds;
  }
  return s;
}

BatchRunner::BatchRunner(DeviceSpec dev, EngineConfig cfg, BatchOptions opt)
    : dev_(std::move(dev)), cfg_(std::move(cfg)), opt_(std::move(opt)) {
  opt_.workers = std::max(opt_.workers, 1);
  if (!opt_.run.map_cache && opt_.map_cache_bytes > 0)
    opt_.run.map_cache =
        std::make_shared<KernelMapCache>(opt_.map_cache_bytes);
}

BatchReport BatchRunner::run(const ModelFn& model,
                             const std::vector<SparseTensor>& inputs) const {
  BatchReport report;
  report.stats.workers = opt_.workers;
  report.stats.requests = inputs.size();
  if (inputs.empty()) return report;

  report.requests.resize(inputs.size());

  // Execute: workers pull the next un-served request off a shared ticket
  // counter. Contexts and tensor caches are per-request, so interleaving
  // cannot leak state between requests; the shared kernel-map cache uses
  // deferred accounting (events below) so modeled stats cannot depend on
  // which worker warmed an entry first.
  const bool cached = static_cast<bool>(opt_.run.map_cache);
  std::vector<std::vector<MapCacheEvent>> events(cached ? inputs.size() : 0);
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= inputs.size()) return;
      try {
        ExecContext ctx = make_run_context(dev_, cfg_, opt_.run);
        if (cached) ctx.cache_events = &events[i];
        RequestResult& r = report.requests[i];
        r.index = i;
        r.timeline = run_in_context(model, inputs[i], ctx);
        r.service_seconds = r.timeline.total_seconds();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        next.store(inputs.size());  // drain remaining tickets
        return;
      }
    }
  };

  const int pool =
      std::min<std::size_t>(static_cast<std::size_t>(opt_.workers),
                            inputs.size());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(pool));
  for (int t = 0; t < pool; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  // Deterministic kernel-map cache accounting: replay the recorded cache
  // resolutions in input order, swapping cold charges for warm ones
  // wherever a sequential pass would have hit.
  MapCacheReplayStats cache_stats;
  if (cached) {
    MapCacheReplay replay(opt_.run.map_cache->byte_budget());
    for (std::size_t i = 0; i < report.requests.size(); ++i) {
      RequestResult& r = report.requests[i];
      replay.apply(events[i], r.timeline);
      r.service_seconds = r.timeline.total_seconds();
    }
    cache_stats = replay.stats();
  }

  // Deterministic modeled schedule: requests arrive in input order and go
  // to the earliest-available worker lane. With modeled (not wall-clock)
  // service times this makes every statistic reproducible.
  report.stats = schedule_stats(report.requests, opt_.workers);
  report.stats.map_cache = cache_stats;
  return report;
}

StreamReport BatchRunner::serve(const ModelFn& model, RequestQueue& queue,
                                const StreamOptions& sopt) const {
  StreamReport report;

  // Drained stream state. Deques keep element references stable while the
  // coordinator appends and workers write measured service times.
  std::deque<StreamResult> results;               // submission order
  std::deque<SparseTensor> inputs;                // parallel to results
  std::deque<std::vector<MapCacheEvent>> events;  // parallel to results
  std::deque<std::promise<StreamResult>> promises;
  std::vector<PlannedBatch> plan;
  DynamicBatcher batcher(sopt.batcher);
  const bool cached = static_cast<bool>(opt_.run.map_cache);

  // Measurement work queue. Batch membership only shapes the modeled
  // schedule, so measurement starts the moment a request is drained — no
  // need to wait for its batch. Work items carry stable pointers (deque
  // push_back never moves existing elements), so workers never touch the
  // growing containers themselves.
  struct WorkItem {
    SparseTensor* input;  // mutable: borrow_input moves the tensor out
    StreamResult* result;
    std::vector<MapCacheEvent>* events;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<WorkItem> work;
  bool producer_done = false;
  std::exception_ptr first_error;

  auto worker = [&](int device_index) {
    // Each device shard contributes its own measurement pool; a worker
    // carries its pool's identity in its (reusable) context as host-side
    // provenance. Measurement itself is device-agnostic — the group is
    // homogeneous and cache accounting is deferred — and the modeled
    // placement (StreamResult::device) is decided later by the routing
    // pass, independently of which pool measured a request.
    DeviceSpec shard_dev = dev_;
    shard_dev.device_index = device_index;
    std::optional<ExecContext> ctx;
    for (;;) {
      WorkItem item;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return producer_done || !work.empty(); });
        if (work.empty()) return;
        item = work.front();
        work.pop_front();
      }
      try {
        Timeline t;
        auto run_one = [&](ExecContext& c) {
          if (item.events) c.cache_events = item.events;
          // borrow_input: the queue owns the drained tensor and nothing
          // reads it after measurement, so steal it instead of copying.
          return opt_.run.borrow_input
                     ? run_in_context(model, std::move(*item.input), c)
                     : run_in_context(model, *item.input, c);
        };
        if (sopt.reuse_context) {
          if (!ctx)
            ctx.emplace(make_run_context(shard_dev, cfg_, opt_.run));
          else
            reset_context(*ctx);
          t = run_one(*ctx);
        } else {
          ExecContext fresh = make_run_context(shard_dev, cfg_, opt_.run);
          t = run_one(fresh);
        }
        item.result->timeline = t;
        item.result->service_seconds = t.total_seconds();
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu);
          if (!first_error) first_error = std::current_exception();
          work.clear();
          producer_done = true;
        }
        cv.notify_all();
        queue.close();  // unblock the coordinator's wait_pop
        return;
      }
    }
  };

  // One measurement pool of opt_.workers threads per device shard,
  // capped at the host's core count: modeled stats are thread-count
  // independent (deterministic accounting below), so oversubscribing
  // the host beyond its cores buys contention, not wall time. Device
  // count is bounds-checked up front (and 64-bit below) so a bogus
  // shard option fails loudly instead of overflowing the arithmetic.
  const int devices = std::max(sopt.shard.devices, 1);
  if (devices > kMaxModeledDevices)
    throw std::invalid_argument(
        "BatchRunner::serve: shard.devices = " + std::to_string(devices) +
        " exceeds kMaxModeledDevices (" +
        std::to_string(kMaxModeledDevices) + ")");
  const int pool_cap = std::max(
      opt_.workers,
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  const int pool = static_cast<int>(
      std::min<long long>(static_cast<long long>(opt_.workers) * devices,
                          pool_cap));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(pool));
  for (int t = 0; t < pool; ++t) threads.emplace_back(worker, t / opt_.workers);

  // Coordinator (this thread): drain the queue in arrival order, feed the
  // batcher, and hand each request to the measurement pool. After a
  // worker failure the queue is already closed; keep draining it so every
  // outstanding promise can receive the error.
  PendingRequest pr;
  while (queue.wait_pop(pr)) {
    bool errored;
    {
      std::lock_guard<std::mutex> lock(mu);
      errored = static_cast<bool>(first_error);
    }
    if (errored) {
      promises.push_back(std::move(pr.promise));
      continue;
    }
    results.emplace_back();
    results.back().id = pr.id;
    results.back().arrival_seconds = pr.arrival_seconds;
    inputs.push_back(std::move(pr.input));
    promises.push_back(std::move(pr.promise));
    if (cached) events.emplace_back();
    for (const PlannedBatch& b : batcher.on_arrival(pr.arrival_seconds))
      plan.push_back(b);
    {
      std::lock_guard<std::mutex> lock(mu);
      work.push_back({&inputs.back(), &results.back(),
                      cached ? &events.back() : nullptr});
    }
    cv.notify_one();
  }
  for (const PlannedBatch& b : batcher.flush()) plan.push_back(b);
  {
    std::lock_guard<std::mutex> lock(mu);
    producer_done = true;
  }
  cv.notify_all();
  for (std::thread& t : threads) t.join();

  if (first_error) {
    // Every outstanding handle observes the same failure, then rethrow.
    for (std::promise<StreamResult>& p : promises)
      p.set_exception(first_error);
    std::rethrow_exception(first_error);
  }

  report.requests.assign(std::make_move_iterator(results.begin()),
                         std::make_move_iterator(results.end()));

  // Deterministic routing + accounting + placement pass. Per-device
  // kernel-map cache accounting replays the recorded resolutions in
  // submission order through each batch's routed device, so the outcome
  // depends only on the submitted stream, the policy, and the byte
  // budget — never on worker count or thread timing. With one device
  // this is bit-identical to the unsharded replay + schedule_stream.
  std::vector<std::vector<MapCacheEvent>> event_log;
  if (cached)
    event_log.assign(std::make_move_iterator(events.begin()),
                     std::make_move_iterator(events.end()));
  DeviceGroup group(dev_, devices,
                    cached ? opt_.run.map_cache->byte_budget() : 0);
  report.stats = schedule_stream_sharded(
      report.requests, plan, group, sopt.shard.route, opt_.workers,
      sopt.batch_overhead_seconds, cached ? &event_log : nullptr,
      &report.batches);
  report.stats.rejected = queue.rejected();
  for (std::size_t i = 0; i < report.requests.size(); ++i)
    promises[i].set_value(report.requests[i]);
  return report;
}

}  // namespace ts::serve
