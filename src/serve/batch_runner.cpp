#include "serve/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace ts::serve {

namespace {

/// Nearest-rank percentile of an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  idx = std::min(std::max<std::size_t>(idx, 1), sorted.size());
  return sorted[idx - 1];
}

}  // namespace

BatchStats schedule_stats(std::vector<RequestResult>& requests,
                          int workers) {
  BatchStats s;
  s.workers = std::max(workers, 1);
  s.requests = requests.size();
  if (requests.empty()) return s;

  std::vector<double> lane(static_cast<std::size_t>(s.workers), 0.0);
  std::vector<double> finishes;
  finishes.reserve(requests.size());
  double sum_service = 0;
  for (RequestResult& r : requests) {
    auto it = std::min_element(lane.begin(), lane.end());
    r.start_seconds = *it;
    r.finish_seconds = r.start_seconds + r.service_seconds;
    *it = r.finish_seconds;
    finishes.push_back(r.finish_seconds);
    sum_service += r.service_seconds;
    s.aggregate += r.timeline;
  }

  s.makespan_seconds = *std::max_element(lane.begin(), lane.end());
  s.throughput_fps =
      s.makespan_seconds > 0
          ? static_cast<double>(requests.size()) / s.makespan_seconds
          : 0.0;
  s.mean_service_seconds =
      sum_service / static_cast<double>(requests.size());
  std::sort(finishes.begin(), finishes.end());
  s.latency_p50_seconds = percentile(finishes, 0.50);
  s.latency_p90_seconds = percentile(finishes, 0.90);
  s.latency_p99_seconds = percentile(finishes, 0.99);
  return s;
}

BatchRunner::BatchRunner(DeviceSpec dev, EngineConfig cfg, BatchOptions opt)
    : dev_(std::move(dev)), cfg_(std::move(cfg)), opt_(std::move(opt)) {
  opt_.workers = std::max(opt_.workers, 1);
}

BatchReport BatchRunner::run(const ModelFn& model,
                             const std::vector<SparseTensor>& inputs) const {
  BatchReport report;
  report.stats.workers = opt_.workers;
  report.stats.requests = inputs.size();
  if (inputs.empty()) return report;

  report.requests.resize(inputs.size());

  // Execute: workers pull the next un-served request off a shared ticket
  // counter. Contexts and caches are per-request, so interleaving cannot
  // leak state between requests.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= inputs.size()) return;
      try {
        ExecContext ctx = make_run_context(dev_, cfg_, opt_.run);
        RequestResult& r = report.requests[i];
        r.index = i;
        r.timeline = run_in_context(model, inputs[i], ctx);
        r.service_seconds = r.timeline.total_seconds();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        next.store(inputs.size());  // drain remaining tickets
        return;
      }
    }
  };

  const int pool =
      std::min<std::size_t>(static_cast<std::size_t>(opt_.workers),
                            inputs.size());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(pool));
  for (int t = 0; t < pool; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  // Deterministic modeled schedule: requests arrive in input order and go
  // to the earliest-available worker lane. With modeled (not wall-clock)
  // service times this makes every statistic reproducible.
  report.stats = schedule_stats(report.requests, opt_.workers);
  return report;
}

}  // namespace ts::serve
