#include "serve/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/sync.hpp"
#include "serve/serve_stats.hpp"
#include "serve/server.hpp"

namespace ts::serve {

namespace {

/// First worker failure, latched under its own lock; later failures in
/// the pool lose the race and are dropped (the batch already aborted).
struct ErrorSlot {
  Mutex mu;
  std::exception_ptr first TS_GUARDED_BY(mu);
};

/// Shared precondition of the legacy stream schedulers: the plan must
/// partition [0, requests) contiguously and the overhead must be sane.
void validate_stream_plan(std::size_t requests,
                          const std::vector<PlannedBatch>& plan,
                          double batch_overhead_seconds) {
  if (!std::isfinite(batch_overhead_seconds) || batch_overhead_seconds < 0)
    throw std::invalid_argument(
        "schedule_stream: batch_overhead_seconds must be finite and >= 0");
  std::size_t expected = 0;
  for (const PlannedBatch& b : plan) {
    if (b.first != expected || b.count == 0)
      throw std::invalid_argument(
          "schedule_stream: plan must cover requests contiguously from 0");
    expected += b.count;
  }
  if (expected != requests)
    throw std::invalid_argument(
        "schedule_stream: plan covers " + std::to_string(expected) +
        " requests, have " + std::to_string(requests));
}

/// Legacy contiguous plan -> explicit member lists (ascending ids).
std::vector<DispatchBatch> to_dispatch_plan(
    const std::vector<PlannedBatch>& plan) {
  std::vector<DispatchBatch> out;
  out.reserve(plan.size());
  for (const PlannedBatch& b : plan) {
    DispatchBatch d;
    d.dispatch_seconds = b.dispatch_seconds;
    d.members.resize(b.count);
    std::iota(d.members.begin(), d.members.end(), b.first);
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace

BatchStats schedule_stats(std::vector<RequestResult>& requests,
                          int workers) {
  BatchStats s;
  s.workers = std::max(workers, 1);
  s.requests = requests.size();
  if (requests.empty()) return s;

  std::vector<double> lane(static_cast<std::size_t>(s.workers), 0.0);
  std::vector<double> finishes;
  finishes.reserve(requests.size());
  double sum_service = 0;
  for (RequestResult& r : requests) {
    auto it = std::min_element(lane.begin(), lane.end());
    r.start_seconds = *it;
    r.finish_seconds = r.start_seconds + r.service_seconds;
    *it = r.finish_seconds;
    finishes.push_back(r.finish_seconds);
    sum_service += r.service_seconds;
    s.aggregate += r.timeline;
  }

  s.makespan_seconds = *std::max_element(lane.begin(), lane.end());
  s.throughput_fps =
      s.makespan_seconds > 0
          ? static_cast<double>(requests.size()) / s.makespan_seconds
          : 0.0;
  s.mean_service_seconds =
      sum_service / static_cast<double>(requests.size());
  std::sort(finishes.begin(), finishes.end());
  s.latency_p50_seconds = percentile(finishes, 0.50);
  s.latency_p90_seconds = percentile(finishes, 0.90);
  s.latency_p99_seconds = percentile(finishes, 0.99);
  return s;
}

StreamStats schedule_stream(std::vector<StreamResult>& requests,
                            const std::vector<PlannedBatch>& plan,
                            int workers, double batch_overhead_seconds,
                            std::vector<StreamBatchRecord>* batches) {
  // A single-device group with no cache events reduces the sharded
  // scheduler to exactly this function's historical placement math
  // (every batch to device 0's earliest lane) — one scheduler body,
  // bit-identical results (ScheduleStreamSharded.OneDeviceBitEquals*).
  // The device spec is identity metadata only; the scheduler never
  // consults it.
  DeviceGroup single(DeviceSpec{}, 1, 0);
  return schedule_stream_sharded(requests, plan, single,
                                 RoutePolicy::kRoundRobin, workers,
                                 batch_overhead_seconds, nullptr, batches);
}

StreamStats schedule_stream_sharded(
    std::vector<StreamResult>& requests,
    const std::vector<PlannedBatch>& plan, DeviceGroup& group,
    RoutePolicy policy, int workers_per_device,
    double batch_overhead_seconds,
    const std::vector<std::vector<MapCacheEvent>>* events,
    std::vector<StreamBatchRecord>* batches) {
  // Legacy contiguous entry point: validate the historical contract,
  // then delegate to the generalized scheduler (server.hpp) with the
  // built-in routing policy for `policy` — one scheduler body for the
  // legacy, priority, and custom-policy paths, bit-identical here.
  validate_stream_plan(requests.size(), plan, batch_overhead_seconds);
  if (events && events->size() != requests.size())
    throw std::invalid_argument(
        "schedule_stream_sharded: events must be parallel to requests");
  const std::vector<DispatchBatch> dplan = to_dispatch_plan(plan);
  const std::unique_ptr<RoutingPolicy> routing = make_routing_policy(policy);
  return schedule_stream_dispatch(requests, dplan, group, *routing,
                                  workers_per_device,
                                  batch_overhead_seconds, events, batches);
}

BatchRunner::BatchRunner(DeviceSpec dev, EngineConfig cfg, BatchOptions opt)
    : dev_(std::move(dev)), cfg_(std::move(cfg)), opt_(std::move(opt)) {
  opt_.workers = std::max(opt_.workers, 1);
  if (!opt_.run.map_cache && opt_.map_cache_bytes > 0)
    opt_.run.map_cache =
        std::make_shared<KernelMapCache>(opt_.map_cache_bytes);
}

BatchReport BatchRunner::run(const ModelFn& model,
                             const std::vector<SparseTensor>& inputs) const {
  BatchReport report;
  report.stats.workers = opt_.workers;
  report.stats.requests = inputs.size();
  if (inputs.empty()) return report;

  report.requests.resize(inputs.size());

  // Execute: workers pull the next un-served request off a shared ticket
  // counter. Contexts and tensor caches are per-request, so interleaving
  // cannot leak state between requests; the shared kernel-map cache uses
  // deferred accounting (events below) so modeled stats cannot depend on
  // which worker warmed an entry first.
  const bool cached = static_cast<bool>(opt_.run.map_cache);
  std::vector<std::vector<MapCacheEvent>> events(cached ? inputs.size() : 0);
  std::atomic<std::size_t> next{0};
  ErrorSlot error;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= inputs.size()) return;
      try {
        ExecContext ctx = make_run_context(dev_, cfg_, opt_.run);
        if (cached) ctx.cache_events = &events[i];
        RequestResult& r = report.requests[i];
        r.index = i;
        r.timeline = run_in_context(model, inputs[i], ctx);
        r.service_seconds = r.timeline.total_seconds();
      } catch (...) {
        MutexLock lock(error.mu);
        if (!error.first) error.first = std::current_exception();
        next.store(inputs.size());  // drain remaining tickets
        return;
      }
    }
  };

  const int pool =
      std::min<std::size_t>(static_cast<std::size_t>(opt_.workers),
                            inputs.size());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(pool));
  for (int t = 0; t < pool; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  std::exception_ptr failure;
  {
    // The joins above made any worker write visible, but the field is
    // still guarded: take the (now uncontended) lock to read it.
    MutexLock lock(error.mu);
    failure = error.first;
  }
  if (failure) std::rethrow_exception(failure);

  // Deterministic kernel-map cache accounting: replay the recorded cache
  // resolutions in input order, swapping cold charges for warm ones
  // wherever a sequential pass would have hit.
  MapCacheReplayStats cache_stats;
  if (cached) {
    MapCacheReplay replay(opt_.run.map_cache->byte_budget());
    for (std::size_t i = 0; i < report.requests.size(); ++i) {
      RequestResult& r = report.requests[i];
      replay.apply(events[i], r.timeline);
      r.service_seconds = r.timeline.total_seconds();
    }
    cache_stats = replay.stats();
  }

  // Deterministic modeled schedule: requests arrive in input order and go
  // to the earliest-available worker lane. With modeled (not wall-clock)
  // service times this makes every statistic reproducible.
  report.stats = schedule_stats(report.requests, opt_.workers);
  report.stats.map_cache = cache_stats;
  return report;
}

StreamReport BatchRunner::serve(const ModelFn& model, RequestQueue& queue,
                                const StreamOptions& sopt) const {
  // Thin compatibility wrapper: express the legacy option structs as a
  // ServerConfig and run one session of the shared serving core with
  // the default policies on the caller's thread. Pinned bit-identical
  // to both the pre-Server implementation and a serve::Server session
  // by tests (ServeEquivalence.*).
  ServerConfig cfg;
  cfg.device = dev_;
  cfg.engine = cfg_;
  cfg.workers = opt_.workers;
  cfg.run = opt_.run;  // map_cache resolved in the constructor
  cfg.batcher = sopt.batcher;
  cfg.batch_overhead_seconds = sopt.batch_overhead_seconds;
  cfg.reuse_context = sopt.reuse_context;
  cfg.shard = sopt.shard;
  SloBatchingPolicy batching(sopt.batcher);
  const std::unique_ptr<RoutingPolicy> routing =
      make_routing_policy(sopt.shard.route);
  return serve_stream(model, queue, cfg, batching, *routing, nullptr);
}

}  // namespace ts::serve
