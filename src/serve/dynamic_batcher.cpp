#include "serve/dynamic_batcher.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace ts::serve {

const char* to_string(BatchPolicy p) {
  switch (p) {
    case BatchPolicy::kImmediate: return "immediate";
    case BatchPolicy::kFullBatch: return "full-batch";
    case BatchPolicy::kSloAware: return "slo-aware";
  }
  return "?";
}

DynamicBatcher::DynamicBatcher(BatcherOptions opt) : opt_(opt) {
  if (opt_.max_batch < 1) opt_.max_batch = 1;
  if (!(opt_.slo_budget_seconds >= 0) ||
      !std::isfinite(opt_.slo_budget_seconds))
    throw std::invalid_argument(
        "DynamicBatcher: slo_budget_seconds must be finite and >= 0");
}

void DynamicBatcher::close_pending(double dispatch_seconds,
                                   std::vector<PlannedBatch>& out) {
  out.push_back({pending_first_, pending_count_, dispatch_seconds});
  pending_first_ += pending_count_;
  pending_count_ = 0;
}

std::vector<PlannedBatch> DynamicBatcher::on_arrival(
    double arrival_seconds) {
  if (!std::isfinite(arrival_seconds) || arrival_seconds < 0)
    throw std::invalid_argument(
        "DynamicBatcher::on_arrival: arrival time must be finite and >= 0");
  if (next_index_ > 0 && arrival_seconds < last_arrival_)
    throw std::invalid_argument(
        "DynamicBatcher::on_arrival: arrival times must be non-decreasing "
        "(got " + std::to_string(arrival_seconds) + " after " +
        std::to_string(last_arrival_) + ")");

  std::vector<PlannedBatch> out;
  // Deadline rule: the open batch dispatched the instant its head's wait
  // budget ran out, which is strictly before this arrival.
  if (opt_.policy == BatchPolicy::kSloAware && pending_count_ > 0) {
    const double deadline = oldest_arrival_ + opt_.slo_budget_seconds;
    if (arrival_seconds > deadline) close_pending(deadline, out);
  }

  if (pending_count_ == 0) {
    pending_first_ = next_index_;
    oldest_arrival_ = arrival_seconds;
  }
  ++pending_count_;

  const int cap =
      opt_.policy == BatchPolicy::kImmediate ? 1 : opt_.max_batch;
  if (pending_count_ >= static_cast<std::size_t>(cap))
    close_pending(arrival_seconds, out);

  last_arrival_ = arrival_seconds;
  ++next_index_;
  return out;
}

std::vector<PlannedBatch> DynamicBatcher::flush() {
  std::vector<PlannedBatch> out;
  if (pending_count_ > 0) close_pending(last_arrival_, out);
  next_index_ = 0;
  pending_first_ = 0;
  oldest_arrival_ = 0;
  last_arrival_ = 0;
  return out;
}

std::vector<PlannedBatch> DynamicBatcher::plan(
    const std::vector<double>& arrivals, const BatcherOptions& opt) {
  DynamicBatcher b(opt);
  std::vector<PlannedBatch> plan;
  for (double t : arrivals)
    for (PlannedBatch& pb : b.on_arrival(t)) plan.push_back(pb);
  for (PlannedBatch& pb : b.flush()) plan.push_back(pb);
  return plan;
}

}  // namespace ts::serve
