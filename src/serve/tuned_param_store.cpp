#include "serve/tuned_param_store.hpp"

#include <chrono>

namespace ts::serve {

std::string tuned_key(const std::string& model_name, const DeviceSpec& dev,
                      const EngineConfig& cfg) {
  return model_name + "|" + dev.name + "|" + cfg.name + "|" +
         to_string(cfg.precision) + "|" + to_string(cfg.grouping);
}

TunedParams TunedParamStore::get_or_tune(
    const std::string& key, const ModelFn& model,
    const std::vector<SparseTensor>& samples, const DeviceSpec& dev,
    const EngineConfig& cfg) {
  std::shared_future<TunedParams> future;
  std::promise<TunedParams> promise;
  bool owner = false;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      future = promise.get_future().share();
      entries_.emplace(key, future);
      owner = true;
    } else {
      future = it->second;
    }
  }

  if (owner) {
    // Tune outside the lock: waiters block on the future, not the mutex,
    // so lookups for other keys proceed while this one computes.
    try {
      promise.set_value(tune_for(model, samples, dev, cfg));
      computes_.fetch_add(1);
    } catch (...) {
      promise.set_exception(std::current_exception());
      MutexLock lock(mu_);
      entries_.erase(key);  // allow a later retry
    }
  }
  return future.get();
}

TunedParams TunedParamStore::get(const std::string& key) const {
  std::shared_future<TunedParams> future;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return {};
    future = it->second;
  }
  if (future.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready)
    return {};  // still tuning: stay non-blocking
  try {
    return future.get();
  } catch (...) {
    return {};  // failed tuning counts as absent
  }
}

bool TunedParamStore::contains(const std::string& key) const {
  MutexLock lock(mu_);
  return entries_.count(key) > 0;
}

std::size_t TunedParamStore::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace ts::serve
