#include "serve/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <string>

namespace ts::serve {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// splitmix64 finalizer — bijective, well-mixed; used to derive
/// independent per-stream and per-frame seeds from one base seed.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits of one engine draw.
/// Hand-rolled rather than std::uniform_real_distribution: the std
/// distribution algorithms are implementation-defined, and these
/// timestamps must be bit-identical on every standard library.
double uniform01(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Unit-mean exponential variate by inversion. log1p keeps precision
/// for small u, and 1 - u > 0 always (u < 1), so the result is finite.
double exp_variate(std::mt19937_64& rng) {
  return -std::log1p(-uniform01(rng));
}

void check_field(bool ok, const char* what) {
  if (!ok)
    throw std::invalid_argument(std::string("generate_arrivals: ") + what);
}

/// Advances the clock from `t` by `need` seconds of ON time, skipping
/// OFF windows. Windows alternate ON (length `on`) / OFF (length
/// `off`) starting ON at t = -phase (i.e. `phase` shifts the pattern
/// left). Exact: the returned instant has consumed exactly `need`
/// seconds of ON time past `t`.
double advance_on_time(double t, double need, double on, double off,
                       double phase) {
  const double cycle = on + off;
  for (;;) {
    double pos = std::fmod(t + phase, cycle);
    if (pos < 0) pos += cycle;  // fmod keeps the dividend's sign
    if (pos < on) {
      const double avail = on - pos;
      if (need <= avail) return t + need;
      need -= avail;
      t += avail + off;  // jump over the OFF window that follows
    } else {
      t += cycle - pos;  // inside an OFF window: jump to the next ON
    }
  }
}

}  // namespace

std::vector<double> generate_arrivals(const TrafficSpec& spec,
                                      std::size_t count,
                                      std::uint64_t seed) {
  check_field(std::isfinite(spec.rate_hz) && spec.rate_hz > 0,
              "rate_hz must be finite and > 0");
  if (spec.process == ArrivalProcess::kBursty) {
    check_field(std::isfinite(spec.on_seconds) && spec.on_seconds > 0,
                "on_seconds must be finite and > 0");
    check_field(std::isfinite(spec.off_seconds) && spec.off_seconds >= 0,
                "off_seconds must be finite and >= 0");
  }
  if (spec.process == ArrivalProcess::kDiurnal) {
    check_field(
        std::isfinite(spec.period_seconds) && spec.period_seconds > 0,
        "period_seconds must be finite and > 0");
    check_field(
        spec.trough_fraction >= 0 && spec.trough_fraction <= 1,
        "trough_fraction must be in [0, 1]");
  }
  if (spec.process != ArrivalProcess::kPoisson)
    check_field(std::isfinite(spec.phase_seconds) && spec.phase_seconds >= 0,
                "phase_seconds must be finite and >= 0");

  std::mt19937_64 rng(seed);
  std::vector<double> out;
  out.reserve(count);
  double t = 0;
  switch (spec.process) {
    case ArrivalProcess::kPoisson:
      while (out.size() < count) {
        t += exp_variate(rng) / spec.rate_hz;
        out.push_back(t);
      }
      break;
    case ArrivalProcess::kBursty:
      // Time-rescaling: each arrival consumes an exponential amount of
      // ON time; OFF windows pass instantaneously on the rescaled
      // clock. Exact for piecewise-constant rates — no thinning, every
      // draw becomes an arrival.
      while (out.size() < count) {
        t = advance_on_time(t, exp_variate(rng) / spec.rate_hz,
                            spec.on_seconds, spec.off_seconds,
                            spec.phase_seconds);
        out.push_back(t);
      }
      break;
    case ArrivalProcess::kDiurnal:
      // Thinning against the peak: candidates arrive at rate_hz, and a
      // candidate at time t survives with probability lambda(t) / peak.
      // Two draws per candidate, accepted or not, so the draw count —
      // and thus every accepted timestamp — is schedule-independent.
      while (out.size() < count) {
        t += exp_variate(rng) / spec.rate_hz;
        const double shape =
            spec.trough_fraction +
            (1 - spec.trough_fraction) * 0.5 *
                (1 - std::cos(2 * kPi * (t + spec.phase_seconds) /
                              spec.period_seconds));
        if (uniform01(rng) <= shape) out.push_back(t);
      }
      break;
  }
  return out;
}

std::size_t trace_length(const SequenceTraceSpec& spec) {
  if (spec.sequences <= 0 || spec.frames_per_sequence <= 0 ||
      spec.revisits <= 0)
    throw std::invalid_argument(
        "trace_length: sequences, frames_per_sequence, and revisits "
        "must all be > 0");
  return static_cast<std::size_t>(spec.sequences) *
         static_cast<std::size_t>(spec.frames_per_sequence) *
         static_cast<std::size_t>(spec.revisits);
}

TraceFrame trace_frame(const SequenceTraceSpec& spec, std::size_t k,
                       std::uint64_t seed) {
  const std::size_t total = trace_length(spec);  // validates the counts
  if (k >= total)
    throw std::invalid_argument(
        "trace_frame: k = " + std::to_string(k) +
        " out of range (trace emits " + std::to_string(total) +
        " frames)");
  const std::size_t frames =
      static_cast<std::size_t>(spec.frames_per_sequence);
  const std::size_t seqs = static_cast<std::size_t>(spec.sequences);
  std::size_t sequence, frame;
  if (!spec.shuffled) {
    // Coherent: sequence-major, frames in drive order, revisits of a
    // frame back to back.
    const std::size_t per_seq =
        frames * static_cast<std::size_t>(spec.revisits);
    sequence = k / per_seq;
    frame = (k % per_seq) / static_cast<std::size_t>(spec.revisits);
  } else {
    // Shuffled: revisit-major with sequences interleaved innermost —
    // repeats of one frame are maximally far apart in the emission.
    const std::size_t per_visit = frames * seqs;
    frame = (k % per_visit) / seqs;
    sequence = k % seqs;
  }
  // The tensor key is (seed, sequence, frame) alone: emission order (k,
  // shuffled) can reorder the stream but never change a frame's bytes.
  const std::uint64_t frame_seed =
      mix64(seed ^ mix64((static_cast<std::uint64_t>(sequence) << 32) |
                         static_cast<std::uint64_t>(frame)));
  TraceFrame out;
  out.sequence = static_cast<int>(sequence);
  out.frame = static_cast<int>(frame);
  out.input = make_input(spec.lidar, spec.voxels, frame_seed);
  return out;
}

std::vector<TimedSubmission> build_traffic_mix(
    const std::vector<ModelTraffic>& streams, std::uint64_t seed) {
  std::vector<TimedSubmission> out;
  std::size_t total = 0;
  for (const ModelTraffic& s : streams) total += s.count;
  out.reserve(total);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const ModelTraffic& s = streams[i];
    if (s.model < 0)
      throw std::invalid_argument(
          "build_traffic_mix: model ids must be >= 0");
    const int cls = static_cast<int>(s.priority);
    if (cls < 0 || cls >= kNumPriorityClasses)
      throw std::invalid_argument(
          "build_traffic_mix: invalid priority on stream " +
          std::to_string(i));
    // Independent per-stream seed: adding or reordering other streams
    // never perturbs this stream's arrivals.
    const std::vector<double> arrivals = generate_arrivals(
        s.arrivals, s.count, mix64(seed ^ mix64(i + 1)));
    for (std::size_t k = 0; k < arrivals.size(); ++k)
      out.push_back({arrivals[k], s.model, s.priority, i, k});
  }
  // Deterministic total order: arrival time, then stream, then
  // position. Exact double comparison is safe — the timestamps are
  // reproducible bit patterns, and the (stream, pos) tie-break decides
  // genuine collisions the same way on every host.
  std::sort(out.begin(), out.end(),
            [](const TimedSubmission& a, const TimedSubmission& b) {
              if (a.arrival_seconds != b.arrival_seconds)
                return a.arrival_seconds < b.arrival_seconds;
              if (a.stream != b.stream) return a.stream < b.stream;
              return a.stream_pos < b.stream_pos;
            });
  return out;
}

}  // namespace ts::serve
