// Shared statistics helpers for the serving layer's modeled reports.
//
// Every serve-side percentile (fixed-batch completion latency, streaming
// queue wait and e2e) goes through one audited nearest-rank
// implementation rather than per-call-site copies, so edge behavior
// (q = 0, q = 1, single-sample inputs) is defined — and unit-tested —
// in exactly one place (tests/test_serve.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "serve/priority.hpp"

namespace ts::serve {

/// One priority class's modeled latency outcome within a served stream
/// (StreamStats::per_class). Percentiles are over the class's own
/// requests; zeros when the class saw no traffic. Deterministic and
/// worker-count invariant like every other modeled serve statistic.
struct PriorityClassStats {
  Priority priority = Priority::kNormal;
  std::size_t completed = 0;
  /// Admitted-but-failed requests in this class (typed ServeErrorCode
  /// results: retries exhausted, no healthy device, deadline shed).
  std::size_t failed = 0;
  /// Extra placement attempts fault losses forced on this class's
  /// served requests (sum of attempts - 1).
  std::size_t retries = 0;
  double queue_wait_p50_seconds = 0;
  double queue_wait_p90_seconds = 0;
  double queue_wait_p99_seconds = 0;
  double e2e_p50_seconds = 0;
  double e2e_p90_seconds = 0;
  double e2e_p99_seconds = 0;
};

/// One model's modeled outcome within a served stream
/// (StreamStats::per_model) — the per-model mirror of
/// PriorityClassStats, extended with the admission and cache-warmth
/// counters a multi-model operator watches per tenant. Percentiles are
/// over the model's own requests; zeros when the model saw no traffic.
/// Deterministic and worker-count invariant like every other modeled
/// serve statistic.
struct ModelStats {
  /// Registry index this entry describes (position in per_model).
  int model = 0;
  std::size_t completed = 0;
  /// Admitted-but-failed requests (typed ServeErrorCode results).
  std::size_t failed = 0;
  /// Extra placement attempts fault losses forced on this model's
  /// served requests (sum of attempts - 1).
  std::size_t retries = 0;
  /// Admission-control rejections of this model's submissions
  /// (RequestQueue::rejected_by_model).
  std::size_t rejected = 0;
  /// Deterministic kernel-map cache outcome over this model's requests:
  /// warm lookups vs all lookups under the submission-order replay.
  /// Namespaced digests make these counters tenant-true — another
  /// model's identical input can never inflate a model's warm hits.
  std::size_t cache_hits = 0;
  std::size_t cache_lookups = 0;
  double queue_wait_p50_seconds = 0;
  double queue_wait_p90_seconds = 0;
  double queue_wait_p99_seconds = 0;
  double e2e_p50_seconds = 0;
  double e2e_p90_seconds = 0;
  double e2e_p99_seconds = 0;
};

/// Nearest-rank percentile of an ascending-sorted sample.
///
/// Definition: the smallest element whose rank r (1-based) satisfies
/// r >= q * n, i.e. sorted[max(ceil(q * n), 1) - 1]. Consequences the
/// call sites rely on:
///  * q = 0 returns the minimum (rank clamps up to 1);
///  * q = 1 returns the maximum (rank n, never past the end);
///  * a single-sample input returns that sample for every q;
///  * an empty sample returns 0.0 (there is nothing to report).
/// Preconditions (std::invalid_argument): q is finite and within
/// [0, 1]; `sorted` must already be ascending (not validated — callers
/// sort once and query three percentiles).
double percentile(const std::vector<double>& sorted, double q);

}  // namespace ts::serve
