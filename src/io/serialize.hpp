// Binary serialization for point clouds, sparse tensors, and timelines.
//
// A deployment-oriented inference engine needs stable on-disk formats:
// scans captured once and replayed across engines/devices, and timelines
// exported for offline analysis. Formats are little-endian,
// magic-and-version tagged. Error contract (identical in Debug and
// Release — no asserts at this API boundary): loading validates structure
// — magic/version, element-count plausibility, truncation, packable
// coordinates, stride sanity (including (coordinate, stride) pairs that
// would overflow grid addressing when scaled back to the stride-1
// lattice), a nonzero channel count whenever points exist, and finite
// feature values — and throws std::runtime_error on malformed input;
// saving throws std::runtime_error when the stream cannot be opened or a
// write fails (full disk, failed stream), never silently truncates.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/kernel_map_cache.hpp"
#include "core/sparse_tensor.hpp"
#include "data/lidar.hpp"
#include "gpusim/timeline.hpp"

namespace ts::io {

// --- Point clouds (.tspts) ---
void save_points(std::ostream& os, const std::vector<Point3>& pts);
std::vector<Point3> load_points(std::istream& is);
void save_points_file(const std::string& path,
                      const std::vector<Point3>& pts);
std::vector<Point3> load_points_file(const std::string& path);

// --- Sparse tensors (.tsten): coords + features + stride ---
void save_tensor(std::ostream& os, const SparseTensor& t);
SparseTensor load_tensor(std::istream& is);
void save_tensor_file(const std::string& path, const SparseTensor& t);
SparseTensor load_tensor_file(const std::string& path);

// --- Kernel-map cache snapshots (.tsmc): the warm-start serving tier —
// entries LRU-first with full payloads, so a restarted server (or a
// newly added shard's modeled cache) re-admits into the exact LRU/
// eviction state the saving cache had. Loading validates every
// structural claim — magic/version, truncation, per-entry payload
// plausibility, an entry larger than the snapshot's own recorded byte
// budget (impossible for a legitimately saved cache), and a payload
// whose recomputed footprint contradicts its declared one — and throws
// std::runtime_error before anything is admitted. The usual entry
// points are KernelMapCache::save_snapshot / load_snapshot; these
// expose the raw snapshot image for warm-start manifests
// (ServerConfig::warm_start, serve::DeviceGroup).
void save_map_cache(std::ostream& os, const MapCacheSnapshot& snap);
MapCacheSnapshot load_map_cache(std::istream& is);
void save_map_cache_file(const std::string& path,
                         const MapCacheSnapshot& snap);
MapCacheSnapshot load_map_cache_file(const std::string& path);

// --- Timelines -> CSV (stage, seconds) for offline analysis ---
std::string timeline_csv(const Timeline& t);

}  // namespace ts::io
