#include "io/serialize.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ts::io {

namespace {

constexpr uint32_t kPointsMagic = 0x54535054;  // "TSPT"
constexpr uint32_t kTensorMagic = 0x5453544e;  // "TSTN"
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("truncated stream");
  return v;
}

void expect_header(std::istream& is, uint32_t magic) {
  if (read_pod<uint32_t>(is) != magic)
    throw std::runtime_error("bad magic");
  if (read_pod<uint32_t>(is) != kVersion)
    throw std::runtime_error("unsupported version");
}

uint64_t read_count(std::istream& is, uint64_t limit) {
  const uint64_t n = read_pod<uint64_t>(is);
  if (n > limit) throw std::runtime_error("implausible element count");
  return n;
}

/// Saving to a failed/full stream must be a loud error in Debug and
/// Release alike, not a silently truncated file discovered at load time.
void check_write(const std::ostream& os, const char* what) {
  if (!os)
    throw std::runtime_error(std::string("write failed while saving ") +
                             what);
}

}  // namespace

void save_points(std::ostream& os, const std::vector<Point3>& pts) {
  write_pod(os, kPointsMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<uint64_t>(pts.size()));
  for (const Point3& p : pts) {
    write_pod(os, p.x);
    write_pod(os, p.y);
    write_pod(os, p.z);
    write_pod(os, p.intensity);
    write_pod(os, p.time);
  }
  check_write(os, "points");
}

std::vector<Point3> load_points(std::istream& is) {
  expect_header(is, kPointsMagic);
  const uint64_t n = read_count(is, 1ull << 32);
  std::vector<Point3> pts(n);
  for (Point3& p : pts) {
    p.x = read_pod<float>(is);
    p.y = read_pod<float>(is);
    p.z = read_pod<float>(is);
    p.intensity = read_pod<float>(is);
    p.time = read_pod<float>(is);
  }
  return pts;
}

void save_tensor(std::ostream& os, const SparseTensor& t) {
  write_pod(os, kTensorMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<uint64_t>(t.num_points()));
  write_pod(os, static_cast<uint64_t>(t.channels()));
  write_pod(os, static_cast<int32_t>(t.stride()));
  for (const Coord& c : t.coords()) {
    write_pod(os, c.b);
    write_pod(os, c.x);
    write_pod(os, c.y);
    write_pod(os, c.z);
  }
  os.write(reinterpret_cast<const char*>(t.feats().data()),
           static_cast<std::streamsize>(t.feats().size() * sizeof(float)));
  check_write(os, "tensor");
}

SparseTensor load_tensor(std::istream& is) {
  expect_header(is, kTensorMagic);
  const uint64_t n = read_count(is, 1ull << 32);
  const uint64_t c = read_count(is, 1ull << 20);
  // A corrupt header can pass the magic check and still describe an
  // impossible tensor; every structural claim is validated before it can
  // mis-size an allocation or feed the engine state it assumes away.
  if (c == 0 && n > 0)
    throw std::runtime_error("channel count 0 with nonzero points");
  const int32_t stride = read_pod<int32_t>(is);
  if (stride < 1) throw std::runtime_error("bad tensor stride");
  if (stride > kCoordSpatialMax)
    throw std::runtime_error("implausible tensor stride");
  std::vector<Coord> coords(n);
  for (Coord& cc : coords) {
    cc.b = read_pod<int32_t>(is);
    cc.x = read_pod<int32_t>(is);
    cc.y = read_pod<int32_t>(is);
    cc.z = read_pod<int32_t>(is);
    if (!coord_in_packable_range(cc))
      throw std::runtime_error("coordinate out of range");
    // A stride-s coordinate is a stride-1 lattice point divided by s;
    // if scaling it back overflows the packable grid, the (coordinate,
    // stride) pair cannot have come from this engine and would overflow
    // grid addressing downstream.
    const auto scaled_ok = [stride](int32_t v) {
      const int64_t sv = static_cast<int64_t>(v) * stride;
      return sv >= kCoordSpatialMin && sv <= kCoordSpatialMax;
    };
    if (!(scaled_ok(cc.x) && scaled_ok(cc.y) && scaled_ok(cc.z)))
      throw std::runtime_error(
          "coordinate/stride combination overflows grid addressing");
  }
  Matrix feats(n, c);
  is.read(reinterpret_cast<char*>(feats.data()),
          static_cast<std::streamsize>(feats.size() * sizeof(float)));
  if (!is) throw std::runtime_error("truncated feature block");
  // Downstream numerics (pooling averages, BatchNorm, dense heads)
  // assume finite features; reject poison at the format boundary.
  for (std::size_t i = 0; i < feats.size(); ++i) {
    if (!std::isfinite(feats.data()[i]))
      throw std::runtime_error("non-finite feature value in tensor stream");
  }
  // Loaded tensors start a fresh cache at stride 1 semantics; non-unit
  // strides are restored by re-wrapping.
  SparseTensor base(std::move(coords), std::move(feats));
  if (stride == 1) return base;
  return SparseTensor(base.coords_ptr(), base.feats(), stride,
                      base.cache());
}

void save_points_file(const std::string& path,
                      const std::vector<Point3>& pts) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path);
  save_points(os, pts);
}

std::vector<Point3> load_points_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  return load_points(is);
}

void save_tensor_file(const std::string& path, const SparseTensor& t) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path);
  save_tensor(os, t);
}

SparseTensor load_tensor_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  return load_tensor(is);
}

std::string timeline_csv(const Timeline& t) {
  std::ostringstream os;
  os << "stage,seconds\n";
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const Stage st = static_cast<Stage>(s);
    os << to_string(st) << "," << t.stage_seconds(st) << "\n";
  }
  os << "total," << t.total_seconds() << "\n";
  return os.str();
}

}  // namespace ts::io
