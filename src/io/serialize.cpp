#include "io/serialize.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace ts::io {

namespace {

constexpr uint32_t kPointsMagic = 0x54535054;    // "TSPT"
constexpr uint32_t kTensorMagic = 0x5453544e;    // "TSTN"
constexpr uint32_t kMapCacheMagic = 0x5453434d;  // "TSCM"
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("truncated stream");
  return v;
}

void expect_header(std::istream& is, uint32_t magic) {
  if (read_pod<uint32_t>(is) != magic)
    throw std::runtime_error("bad magic");
  if (read_pod<uint32_t>(is) != kVersion)
    throw std::runtime_error("unsupported version");
}

uint64_t read_count(std::istream& is, uint64_t limit) {
  const uint64_t n = read_pod<uint64_t>(is);
  if (n > limit) throw std::runtime_error("implausible element count");
  return n;
}

/// Saving to a failed/full stream must be a loud error in Debug and
/// Release alike, not a silently truncated file discovered at load time.
void check_write(const std::ostream& os, const char* what) {
  if (!os)
    throw std::runtime_error(std::string("write failed while saving ") +
                             what);
}

}  // namespace

void save_points(std::ostream& os, const std::vector<Point3>& pts) {
  write_pod(os, kPointsMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<uint64_t>(pts.size()));
  for (const Point3& p : pts) {
    write_pod(os, p.x);
    write_pod(os, p.y);
    write_pod(os, p.z);
    write_pod(os, p.intensity);
    write_pod(os, p.time);
  }
  check_write(os, "points");
}

std::vector<Point3> load_points(std::istream& is) {
  expect_header(is, kPointsMagic);
  const uint64_t n = read_count(is, 1ull << 32);
  std::vector<Point3> pts(n);
  for (Point3& p : pts) {
    p.x = read_pod<float>(is);
    p.y = read_pod<float>(is);
    p.z = read_pod<float>(is);
    p.intensity = read_pod<float>(is);
    p.time = read_pod<float>(is);
  }
  return pts;
}

void save_tensor(std::ostream& os, const SparseTensor& t) {
  write_pod(os, kTensorMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<uint64_t>(t.num_points()));
  write_pod(os, static_cast<uint64_t>(t.channels()));
  write_pod(os, static_cast<int32_t>(t.stride()));
  for (const Coord& c : t.coords()) {
    write_pod(os, c.b);
    write_pod(os, c.x);
    write_pod(os, c.y);
    write_pod(os, c.z);
  }
  os.write(reinterpret_cast<const char*>(t.feats().data()),
           static_cast<std::streamsize>(t.feats().size() * sizeof(float)));
  check_write(os, "tensor");
}

SparseTensor load_tensor(std::istream& is) {
  expect_header(is, kTensorMagic);
  const uint64_t n = read_count(is, 1ull << 32);
  const uint64_t c = read_count(is, 1ull << 20);
  // A corrupt header can pass the magic check and still describe an
  // impossible tensor; every structural claim is validated before it can
  // mis-size an allocation or feed the engine state it assumes away.
  if (c == 0 && n > 0)
    throw std::runtime_error("channel count 0 with nonzero points");
  const int32_t stride = read_pod<int32_t>(is);
  if (stride < 1) throw std::runtime_error("bad tensor stride");
  if (stride > kCoordSpatialMax)
    throw std::runtime_error("implausible tensor stride");
  std::vector<Coord> coords(n);
  for (Coord& cc : coords) {
    cc.b = read_pod<int32_t>(is);
    cc.x = read_pod<int32_t>(is);
    cc.y = read_pod<int32_t>(is);
    cc.z = read_pod<int32_t>(is);
    if (!coord_in_packable_range(cc))
      throw std::runtime_error("coordinate out of range");
    // A stride-s coordinate is a stride-1 lattice point divided by s;
    // if scaling it back overflows the packable grid, the (coordinate,
    // stride) pair cannot have come from this engine and would overflow
    // grid addressing downstream.
    const auto scaled_ok = [stride](int32_t v) {
      const int64_t sv = static_cast<int64_t>(v) * stride;
      return sv >= kCoordSpatialMin && sv <= kCoordSpatialMax;
    };
    if (!(scaled_ok(cc.x) && scaled_ok(cc.y) && scaled_ok(cc.z)))
      throw std::runtime_error(
          "coordinate/stride combination overflows grid addressing");
  }
  Matrix feats(n, c);
  is.read(reinterpret_cast<char*>(feats.data()),
          static_cast<std::streamsize>(feats.size() * sizeof(float)));
  if (!is) throw std::runtime_error("truncated feature block");
  // Downstream numerics (pooling averages, BatchNorm, dense heads)
  // assume finite features; reject poison at the format boundary.
  for (std::size_t i = 0; i < feats.size(); ++i) {
    if (!std::isfinite(feats.data()[i]))
      throw std::runtime_error("non-finite feature value in tensor stream");
  }
  // Loaded tensors start a fresh cache at stride 1 semantics; non-unit
  // strides are restored by re-wrapping.
  SparseTensor base(std::move(coords), std::move(feats));
  if (stride == 1) return base;
  return SparseTensor(base.coords_ptr(), base.feats(), stride,
                      base.cache());
}

void save_points_file(const std::string& path,
                      const std::vector<Point3>& pts) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path);
  save_points(os, pts);
}

std::vector<Point3> load_points_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  return load_points(is);
}

void save_tensor_file(const std::string& path, const SparseTensor& t) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path);
  save_tensor(os, t);
}

SparseTensor load_tensor_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  return load_tensor(is);
}

namespace {

/// Payload kind tags of the snapshot format. Exactly one payload per
/// entry, discriminated up front so the loader never has to guess at a
/// corrupt entry's shape.
constexpr uint8_t kPayloadKernelMap = 0;
constexpr uint8_t kPayloadCoords = 1;

void save_map_cache_entry(std::ostream& os, const MapCacheSnapshotEntry& e) {
  const bool has_kmap = static_cast<bool>(e.payload.kmap);
  const bool has_coords = static_cast<bool>(e.payload.coords);
  if (has_kmap == has_coords)
    throw std::runtime_error(
        "save_map_cache: snapshot entry must hold exactly one payload "
        "(kernel map or downsampled coords)");
  write_pod(os, e.key.lo);
  write_pod(os, e.key.hi);
  write_pod(os, e.build_wall_seconds);
  write_pod(os, static_cast<uint64_t>(e.bytes));
  write_pod(os, has_kmap ? kPayloadKernelMap : kPayloadCoords);
  if (has_kmap) {
    const KernelMap& km = *e.payload.kmap;
    write_pod(os, static_cast<int32_t>(km.kernel_size));
    write_pod(os, static_cast<uint64_t>(km.maps.size()));
    for (const std::vector<MapEntry>& m : km.maps) {
      write_pod(os, static_cast<uint64_t>(m.size()));
      for (const MapEntry& me : m) {
        write_pod(os, me.in);
        write_pod(os, me.out);
      }
    }
    write_pod(os, static_cast<uint64_t>(km.stats.queries));
    write_pod(os, static_cast<uint64_t>(km.stats.index_accesses));
    write_pod(os, static_cast<uint64_t>(km.stats.build_accesses));
    write_pod(os, static_cast<uint8_t>(km.stats.used_symmetry ? 1 : 0));
    write_pod(os, static_cast<uint8_t>(
                      km.stats.backend == MapBackend::kGrid ? 1 : 0));
  } else {
    const std::vector<Coord>& cs = *e.payload.coords;
    write_pod(os, static_cast<uint64_t>(cs.size()));
    for (const Coord& c : cs) {
      write_pod(os, c.b);
      write_pod(os, c.x);
      write_pod(os, c.y);
      write_pod(os, c.z);
    }
    const DownsampleCounters& dc = e.payload.ds_counters;
    write_pod(os, static_cast<uint64_t>(dc.kernel_launches));
    write_pod(os, dc.dram_bytes);
    write_pod(os, dc.instr_ops);
    write_pod(os, static_cast<uint64_t>(dc.candidates));
    write_pod(os, static_cast<uint64_t>(dc.kept));
  }
}

MapCacheSnapshotEntry load_map_cache_entry(std::istream& is,
                                           std::size_t byte_budget) {
  MapCacheSnapshotEntry e;
  e.key.lo = read_pod<uint64_t>(is);
  e.key.hi = read_pod<uint64_t>(is);
  e.build_wall_seconds = read_pod<double>(is);
  if (!std::isfinite(e.build_wall_seconds) || e.build_wall_seconds < 0)
    throw std::runtime_error(
        "snapshot entry has a non-finite or negative build time");
  const uint64_t declared = read_pod<uint64_t>(is);
  // A saved cache never holds an entry past its own budget (oversized
  // payloads are returned to the builder, not cached), so this claim can
  // only come from a corrupt or forged stream — and it would mis-size
  // every downstream re-admission decision.
  if (declared > byte_budget)
    throw std::runtime_error(
        "snapshot entry declares " + std::to_string(declared) +
        " payload bytes, past the snapshot's own byte budget of " +
        std::to_string(byte_budget));
  const uint8_t kind = read_pod<uint8_t>(is);
  if (kind == kPayloadKernelMap) {
    auto km = std::make_shared<KernelMap>();
    km->kernel_size = read_pod<int32_t>(is);
    if (km->kernel_size < 1 || km->kernel_size > 64)
      throw std::runtime_error("implausible kernel size in snapshot");
    const uint64_t volume = read_count(is, 1ull << 20);
    km->maps.resize(volume);
    for (std::vector<MapEntry>& m : km->maps) {
      const uint64_t cnt = read_count(is, 1ull << 28);
      m.resize(cnt);
      for (MapEntry& me : m) {
        me.in = read_pod<int32_t>(is);
        me.out = read_pod<int32_t>(is);
        if (me.in < 0 || me.out < 0)
          throw std::runtime_error("negative kernel-map index in snapshot");
      }
    }
    km->stats.queries =
        static_cast<std::size_t>(read_pod<uint64_t>(is));
    km->stats.index_accesses =
        static_cast<std::size_t>(read_pod<uint64_t>(is));
    km->stats.build_accesses =
        static_cast<std::size_t>(read_pod<uint64_t>(is));
    const uint8_t symmetry = read_pod<uint8_t>(is);
    if (symmetry > 1)
      throw std::runtime_error("bad symmetry flag in snapshot");
    km->stats.used_symmetry = symmetry == 1;
    const uint8_t backend = read_pod<uint8_t>(is);
    if (backend > 1)
      throw std::runtime_error("bad map backend in snapshot");
    km->stats.backend =
        backend == 1 ? MapBackend::kGrid : MapBackend::kHashMap;
    e.payload.kmap = std::move(km);
  } else if (kind == kPayloadCoords) {
    const uint64_t cnt = read_count(is, 1ull << 32);
    auto cs = std::make_shared<std::vector<Coord>>(cnt);
    for (Coord& c : *cs) {
      c.b = read_pod<int32_t>(is);
      c.x = read_pod<int32_t>(is);
      c.y = read_pod<int32_t>(is);
      c.z = read_pod<int32_t>(is);
      if (!coord_in_packable_range(c))
        throw std::runtime_error("coordinate out of range in snapshot");
    }
    e.payload.coords = std::move(cs);
    DownsampleCounters dc;
    dc.kernel_launches = static_cast<std::size_t>(read_pod<uint64_t>(is));
    dc.dram_bytes = read_pod<double>(is);
    dc.instr_ops = read_pod<double>(is);
    if (!std::isfinite(dc.dram_bytes) || dc.dram_bytes < 0 ||
        !std::isfinite(dc.instr_ops) || dc.instr_ops < 0)
      throw std::runtime_error(
          "non-finite or negative downsample counter in snapshot");
    dc.candidates = static_cast<std::size_t>(read_pod<uint64_t>(is));
    dc.kept = static_cast<std::size_t>(read_pod<uint64_t>(is));
    e.payload.ds_counters = dc;
  } else {
    throw std::runtime_error("unknown payload kind in snapshot");
  }
  // The declared footprint must be reproducible from the payload itself;
  // a mismatch means the digest header and the payload body disagree
  // about what was saved (bit rot, a splice of two snapshots, or a
  // truncation that happened to land on a field boundary).
  e.bytes = map_cache_payload_bytes(e.payload);
  if (e.bytes != declared)
    throw std::runtime_error(
        "snapshot digest/payload mismatch: entry declares " +
        std::to_string(declared) + " bytes but its payload reconstructs to " +
        std::to_string(e.bytes));
  return e;
}

}  // namespace

void save_map_cache(std::ostream& os, const MapCacheSnapshot& snap) {
  write_pod(os, kMapCacheMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<uint64_t>(snap.byte_budget));
  write_pod(os, static_cast<uint64_t>(snap.entries.size()));
  for (const MapCacheSnapshotEntry& e : snap.entries)
    save_map_cache_entry(os, e);
  check_write(os, "map cache snapshot");
}

MapCacheSnapshot load_map_cache(std::istream& is) {
  expect_header(is, kMapCacheMagic);
  MapCacheSnapshot snap;
  snap.byte_budget = static_cast<std::size_t>(read_pod<uint64_t>(is));
  const uint64_t n = read_count(is, 1ull << 24);
  snap.entries.reserve(static_cast<std::size_t>(n));
  std::unordered_set<MapCacheKey, MapCacheKeyHash> seen;
  seen.reserve(static_cast<std::size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    MapCacheSnapshotEntry e = load_map_cache_entry(is, snap.byte_budget);
    if (!seen.insert(e.key).second)
      throw std::runtime_error("duplicate digest in snapshot");
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

void save_map_cache_file(const std::string& path,
                         const MapCacheSnapshot& snap) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path);
  save_map_cache(os, snap);
}

MapCacheSnapshot load_map_cache_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  return load_map_cache(is);
}

std::string timeline_csv(const Timeline& t) {
  std::ostringstream os;
  os << "stage,seconds\n";
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const Stage st = static_cast<Stage>(s);
    os << to_string(st) << "," << t.stage_seconds(st) << "\n";
  }
  os << "total," << t.total_seconds() << "\n";
  return os.str();
}

}  // namespace ts::io

namespace ts {

// Declared in core/kernel_map_cache.hpp; defined here so the stream
// format lives with the other io formats while the cache header stays
// free of serialization concerns.
void KernelMapCache::save_snapshot(std::ostream& os) const {
  io::save_map_cache(os, export_snapshot());
}

void KernelMapCache::load_snapshot(std::istream& is) {
  import_snapshot(io::load_map_cache(is));
}

}  // namespace ts
