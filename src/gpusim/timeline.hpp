// Per-stage runtime accounting, mirroring the paper's Figure 4 breakdown
// (Data Movement / GEMM / Mapping / 2D+NMS / Misc).
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>

namespace ts {

enum class Stage {
  kMapping = 0,  // output coords construction + map search
  kGather,       // data orchestration: gather
  kScatter,      // data orchestration: scatter-accumulate
  kMatMul,       // GEMM / batched GEMM
  kDense2D,      // CenterPoint's dense BEV convolutions
  kNMS,          // detection non-maximum suppression
  kMisc,         // elementwise ops (BN, ReLU), voxelization, heads
  kNumStages
};

inline constexpr std::size_t kNumStages =
    static_cast<std::size_t>(Stage::kNumStages);

inline std::string to_string(Stage s) {
  switch (s) {
    case Stage::kMapping: return "Mapping";
    case Stage::kGather: return "Gather";
    case Stage::kScatter: return "Scatter";
    case Stage::kMatMul: return "MatMul";
    case Stage::kDense2D: return "Dense2D";
    case Stage::kNMS: return "NMS";
    case Stage::kMisc: return "Misc";
    default: return "?";
  }
}

/// Accumulated modeled execution time per stage, plus traffic counters.
class Timeline {
 public:
  void add(Stage s, double seconds) {
    seconds_[static_cast<std::size_t>(s)] += seconds;
  }
  void add_dram_bytes(double bytes) { dram_bytes_ += bytes; }
  void add_kernel_launches(std::size_t n) { kernels_ += n; }
  /// Retracts previously added launches (clamped at zero). Used by the
  /// kernel-map cache's deterministic replay, which swaps an already-
  /// charged cold map build for the cheaper warm-hit charge.
  void remove_kernel_launches(std::size_t n) {
    kernels_ -= std::min(n, kernels_);
  }
  void add_flops(double f) { flops_ += f; }

  double stage_seconds(Stage s) const {
    return seconds_[static_cast<std::size_t>(s)];
  }
  double total_seconds() const {
    double t = 0;
    for (double s : seconds_) t += s;
    return t;
  }
  /// Gather + scatter (the paper's "data movement" slice).
  double data_movement_seconds() const {
    return stage_seconds(Stage::kGather) + stage_seconds(Stage::kScatter);
  }
  double dram_bytes() const { return dram_bytes_; }
  std::size_t kernel_launches() const { return kernels_; }
  double flops() const { return flops_; }
  double fps() const {
    const double t = total_seconds();
    return t > 0 ? 1.0 / t : 0.0;
  }
  /// Achieved matmul throughput in TFLOP/s (paper Tables 1-2 metric).
  double matmul_tflops() const {
    const double t = stage_seconds(Stage::kMatMul);
    return t > 0 ? flops_ / t / 1e12 : 0.0;
  }

  Timeline& operator+=(const Timeline& o) {
    for (std::size_t i = 0; i < kNumStages; ++i) seconds_[i] += o.seconds_[i];
    dram_bytes_ += o.dram_bytes_;
    kernels_ += o.kernels_;
    flops_ += o.flops_;
    return *this;
  }

 private:
  std::array<double, kNumStages> seconds_{};
  double dram_bytes_ = 0;
  std::size_t kernels_ = 0;
  double flops_ = 0;  // matmul FLOPs actually executed (incl. padding)
};

}  // namespace ts
