// Warp-level memory transaction coalescing model (paper Figure 8).
//
// NVIDIA GPUs service a warp's 32 simultaneous accesses as up to-128-byte
// transactions. A warp of scalar FP32 accesses covers 32 x 4B = 128B (one
// fully-utilized transaction); scalar FP16 covers only 32 x 2B = 64B, so
// the transaction is 50% utilized and the transaction COUNT for a feature
// row is unchanged versus FP32 — which is why naive FP16 gather/scatter
// only gives ~1.17-1.48x (Table 3). Vectorized FP16 (half2 per thread)
// restores 128B per transaction and halves the count.
#pragma once

#include <cstddef>

#include "tensor/precision.hpp"

namespace ts {

inline constexpr std::size_t kTransactionBytes = 128;

/// Number of memory transactions a warp needs to move one feature row of
/// `channels` channels at storage precision `p`, with or without
/// per-thread vectorization.
inline std::size_t transactions_per_row(std::size_t channels, Precision p,
                                        bool vectorized) {
  const std::size_t bpc = bytes_per_channel(p);
  // Bytes of useful data covered by one warp-wide access instruction:
  // 32 threads x (element bytes x vector width). Vector width is chosen so
  // each thread moves 4 bytes (half2 for FP16, char4 for INT8); FP32 is
  // already 4 bytes per thread.
  const std::size_t bytes_per_txn = vectorized ? 32 * 4 : 32 * bpc;
  const std::size_t row_bytes = channels * bpc;
  return (row_bytes + bytes_per_txn - 1) / bytes_per_txn;
}

/// Fraction of each 128-byte transaction carrying useful data.
inline double transaction_utilization(Precision p, bool vectorized) {
  const std::size_t bpc = bytes_per_channel(p);
  const std::size_t covered = vectorized ? 32 * 4 : 32 * bpc;
  return covered >= kTransactionBytes
             ? 1.0
             : static_cast<double>(covered) / kTransactionBytes;
}

}  // namespace ts
