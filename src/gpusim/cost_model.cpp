#include "gpusim/cost_model.hpp"
#include <cmath>

#include <algorithm>

namespace ts {

KernelCost CostModel::mm(std::size_t rows, std::size_t inner,
                         std::size_t cols, Precision p) const {
  KernelCost kc;
  if (rows == 0 || inner == 0 || cols == 0) return kc;
  const double r = static_cast<double>(rows);
  const double i = static_cast<double>(inner);
  const double c = static_cast<double>(cols);
  kc.flops = 2.0 * r * i * c;
  const double util = mm_utilization(r, i, c, p);
  const double compute = kc.flops / (peak_tflops(p) * 1e12 * util);
  const double bpc = static_cast<double>(bytes_per_channel(
      p == Precision::kINT8 ? Precision::kFP16 : p));
  kc.dram_bytes = (r * i + i * c + r * c) * bpc;
  kc.seconds =
      launch_seconds() + std::max(compute, dram_seconds(kc.dram_bytes));
  return kc;
}

KernelCost CostModel::bmm(std::size_t batch, std::size_t padded_rows,
                          std::size_t inner, std::size_t cols,
                          Precision p) const {
  KernelCost kc;
  if (batch == 0 || padded_rows == 0 || inner == 0 || cols == 0) return kc;
  const double b = static_cast<double>(batch);
  const double r = static_cast<double>(padded_rows);
  const double i = static_cast<double>(inner);
  const double c = static_cast<double>(cols);
  kc.flops = 2.0 * b * r * i * c;  // padding waste included
  // One launch. Batching improves utilization, but sublinearly: batched
  // GEMM schedules per-problem tiles, so regularity grows more slowly
  // than the concatenated row count (this is what turns the Fig. 7 curve
  // back down once padding FLOPs outpace the utilization gain).
  const double util = mm_utilization(r * std::sqrt(b), i, c, p);
  const double compute = kc.flops / (peak_tflops(p) * 1e12 * util);
  const double bpc = static_cast<double>(bytes_per_channel(
      p == Precision::kINT8 ? Precision::kFP16 : p));
  kc.dram_bytes = (b * r * i + b * i * c + b * r * c) * bpc;
  kc.seconds =
      launch_seconds() + std::max(compute, dram_seconds(kc.dram_bytes));
  return kc;
}

}  // namespace ts
