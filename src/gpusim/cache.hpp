// Set-associative LRU cache simulator (models the GPU L2).
//
// Paper §4.3.2 argues that the weight-stationary gather/scatter order
// cannot reuse cached features (the working set N1 > 40MB vastly exceeds
// the 5.5MB L2 of an RTX 2080Ti, and indices per weight are unique), while
// the fused locality-aware order achieves near-perfect reuse. We replay
// the engines' actual feature-row access streams through this simulator to
// *measure* those hit rates instead of assuming them.
//
// Write handling matches GPU L2 semantics: a write miss allocates the line
// and marks it dirty without fetching from DRAM (streaming stores don't
// read-modify-write whole lines); DRAM write traffic is counted at
// eviction time as write-backs.
//
// This replay is the profiled hot path of every simulate_cache run (tens
// of millions of line touches per forward pass), so the layout is built
// for replay speed: each set keeps its ways contiguously in
// most-recently-used-first order, which makes a hit a short prefix scan,
// makes the LRU victim simply the back slot, and replaces per-way
// LRU tick counters with a rotate of the prefix. Dirty flags are one
// bitmask per set, rotated alongside. Line/set arithmetic is shift/mask
// (line size and set count are powers of two), and the per-line step is
// header-inline so replay loops pay no call overhead. The modeled
// behavior — hits, misses, write-backs, DRAM bytes — is unchanged
// relative to a tick-based LRU scan; only the host cost of computing it
// is.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cstring>
#include <vector>

namespace ts {

class CacheSim {
 public:
  /// `capacity_bytes` is rounded down to a power-of-two number of sets.
  /// 128-byte lines match the GPU memory transaction size (`line_bytes`
  /// is rounded down to a power of two for shift addressing; `ways` is
  /// clamped to [1, 64] so a set's dirty flags fit one 64-bit mask).
  CacheSim(std::size_t capacity_bytes, int ways = 16,
           std::size_t line_bytes = 128);

  /// Touches [addr, addr+bytes). Returns the number of line misses (of
  /// either kind).
  std::size_t access(uint64_t addr, std::size_t bytes, bool is_write) {
    if (bytes == 0) return 0;
    const uint64_t first = addr >> line_shift_;
    const uint64_t last = (addr + bytes - 1) >> line_shift_;
    std::size_t line_misses = 0;
    for (uint64_t l = first; l <= last; ++l)
      line_misses += access_line(l, is_write);
    return line_misses;
  }

  void reset();

  std::size_t hits() const { return hits_; }
  std::size_t read_misses() const { return read_misses_; }
  std::size_t write_misses() const { return write_misses_; }
  std::size_t writebacks() const { return writebacks_; }
  /// DRAM bytes moved: read-miss line fills plus dirty write-backs.
  double dram_bytes() const {
    return static_cast<double>((read_misses_ + writebacks_) * line_bytes_);
  }
  std::size_t line_bytes() const { return line_bytes_; }
  double hit_rate() const {
    const std::size_t total = hits_ + read_misses_ + write_misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total)
                 : 0.0;
  }

 private:
  /// Stored tags are (line_addr >> set_shift_) + 1, so 0 can mean
  /// "invalid way". Tags are kept in 32 bits to halve the scan traffic:
  /// the simulated slabs live below 2^42, so real tags stay far below
  /// 2^32 (an overflowing tag throws — see access_line). Invalid slots
  /// only ever sink toward the back of the MRU order, which reproduces
  /// the invalid-way-first victim preference.
  static constexpr uint32_t kInvalidTag = 0;

  std::size_t access_line(uint64_t line_addr, bool is_write) {
    const std::size_t set =
        static_cast<std::size_t>(line_addr) & (num_sets_ - 1);
    uint32_t* tags = tags_.data() + set * ways_;
    uint64_t& dirty = dirty_[set];
    const uint64_t wide_tag = (line_addr >> set_shift_) + 1;
    // Always-on guard (a never-taken, perfectly predicted branch): a
    // truncated tag would silently alias distinct lines and corrupt the
    // modeled hit/miss counts, so overflow must be loud in Release too.
    if (wide_tag > 0xffffffffull) throw_tag_overflow(line_addr);
    const uint32_t tag = static_cast<uint32_t>(wide_tag);
    const uint64_t wbit = is_write ? 1 : 0;
    const std::size_t ways = ways_;

    // Hit: prefix scan in MRU order (hot lines sit near the front), then
    // rotate slots [0, p] one step so the hit line becomes slot 0.
    if (tags[0] == tag) {  // repeat touch of the most recent line
      dirty |= wbit;
      ++hits_;
      return 0;
    }
    for (std::size_t p = 1; p < ways; ++p) {
      if (tags[p] != tag) continue;
      std::memmove(tags + 1, tags, p * sizeof(uint32_t));
      tags[0] = tag;
      const uint64_t low = dirty & ((uint64_t{1} << p) - 1);
      const uint64_t hit_dirty = (dirty >> p) & 1;
      dirty = (dirty & ~((uint64_t{2} << p) - 1)) | (low << 1) |
              (hit_dirty | wbit);
      ++hits_;
      return 0;
    }
    return install_line(tags, dirty, tag, is_write);
  }

  std::size_t install_line(uint32_t* tags, uint64_t& dirty, uint32_t tag,
                           bool is_write);
  [[noreturn]] void throw_tag_overflow(uint64_t line_addr) const;

  std::size_t line_bytes_;
  unsigned line_shift_ = 7;  // log2(line_bytes_)
  std::size_t num_sets_;
  unsigned set_shift_ = 0;   // log2(num_sets_)
  std::size_t ways_;
  std::vector<uint32_t> tags_;   // [num_sets_ * ways_], MRU-first per set
  std::vector<uint64_t> dirty_;  // [num_sets_], bit w = slot w dirty
  std::size_t hits_ = 0;
  std::size_t read_misses_ = 0;
  std::size_t write_misses_ = 0;
  std::size_t writebacks_ = 0;
};

}  // namespace ts
