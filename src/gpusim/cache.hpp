// Set-associative LRU cache simulator (models the GPU L2).
//
// Paper §4.3.2 argues that the weight-stationary gather/scatter order
// cannot reuse cached features (the working set N1 > 40MB vastly exceeds
// the 5.5MB L2 of an RTX 2080Ti, and indices per weight are unique), while
// the fused locality-aware order achieves near-perfect reuse. We replay
// the engines' actual feature-row access streams through this simulator to
// *measure* those hit rates instead of assuming them.
//
// Write handling matches GPU L2 semantics: a write miss allocates the line
// and marks it dirty without fetching from DRAM (streaming stores don't
// read-modify-write whole lines); DRAM write traffic is counted at
// eviction time as write-backs.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace ts {

class CacheSim {
 public:
  /// `capacity_bytes` is rounded down to a power-of-two number of sets.
  /// 128-byte lines match the GPU memory transaction size.
  CacheSim(std::size_t capacity_bytes, int ways = 16,
           std::size_t line_bytes = 128);

  /// Touches [addr, addr+bytes). Returns the number of line misses (of
  /// either kind).
  std::size_t access(uint64_t addr, std::size_t bytes, bool is_write);

  void reset();

  std::size_t hits() const { return hits_; }
  std::size_t read_misses() const { return read_misses_; }
  std::size_t write_misses() const { return write_misses_; }
  std::size_t writebacks() const { return writebacks_; }
  /// DRAM bytes moved: read-miss line fills plus dirty write-backs.
  double dram_bytes() const {
    return static_cast<double>((read_misses_ + writebacks_) * line_bytes_);
  }
  std::size_t line_bytes() const { return line_bytes_; }
  double hit_rate() const {
    const std::size_t total = hits_ + read_misses_ + write_misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total)
                 : 0.0;
  }

 private:
  struct Line {
    uint64_t tag = ~0ull;
    uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::size_t access_line(uint64_t line_addr, bool is_write);

  std::size_t line_bytes_;
  std::size_t num_sets_;
  int ways_;
  std::vector<Line> lines_;  // num_sets_ * ways_, set-major
  uint64_t tick_ = 0;
  std::size_t hits_ = 0;
  std::size_t read_misses_ = 0;
  std::size_t write_misses_ = 0;
  std::size_t writebacks_ = 0;
};

}  // namespace ts
