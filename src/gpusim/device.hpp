// GPU device specifications for the cost model.
//
// The paper evaluates on three generations of NVIDIA GPUs (GTX 1080Ti,
// RTX 2080Ti, RTX 3090). We encode each device as data: memory bandwidth,
// matmul peak throughput per precision, L2 size, kernel-launch overhead,
// and whether FP16 tensor cores exist (1080Ti has none — paper §5.2 uses
// this to show the speedup is not mostly tensor-core native).
//
// Peak FP16 matmul rates are the tensor-core FP16-multiply/FP32-accumulate
// rates; the paper's utilization numbers (8.1 TFLOP/s = 30% on 2080Ti)
// imply a ~27 TFLOP/s reference peak, which matches the 2080Ti's 26.9
// TFLOP/s FP16-FMA-with-FP32-accumulate rate.
#pragma once

#include <cctype>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ts {

struct DeviceSpec {
  std::string name;
  /// Identity of this device instance inside a multi-device group
  /// (serve::DeviceGroup stamps shard k with index k). Never consulted by
  /// the cost model — two specs differing only in device_index produce
  /// bit-identical timelines — it exists so modeled accounting (per-device
  /// serve stats, per-device cache ownership) can name the instance a
  /// piece of work ran on.
  int device_index = 0;
  double dram_bandwidth_gbps;   // GB/s, effective
  double peak_fp32_tflops;      // dense GEMM peak, FP32
  double peak_fp16_tflops;      // dense GEMM peak, FP16 (FP32 accumulate)
  bool has_fp16_tensor_cores;
  double l2_bytes;              // L2 cache capacity
  double launch_overhead_us;    // per-kernel launch + tail overhead
  double core_clock_ghz;        // for instruction-bound kernels
  int num_sms;

  // Matmul utilization model (see CostModel::mm_utilization): utilization
  // saturates with rows and with sqrt(C_in*C_out), and the half-saturation
  // points scale with the precision's peak rate — a faster unit needs a
  // larger workload to saturate. Constants are calibrated so a 2080Ti
  // reproduces the paper's Table 2 anchors: separate FP16 GEMMs on
  // SemanticKITTI-sized maps achieve ~8 TFLOP/s (30% of 26.9), adaptive
  // grouping ~12 TFLOP/s (44%). This also reproduces the §5.2 observation
  // that the TorchSparse speedup is only ~11% smaller on the 1080Ti
  // (no tensor cores): at these sizes FP16's higher peak is mostly
  // unusable, so the win comes from grouping and data movement.
  double max_mm_util = 0.90;
  double rows_half = 2755.0;  // rows at 50% of the row factor (at ref peak)
  double ch_half = 12.0;      // sqrt(Cin*Cout) half-saturation (at ref peak)

  /// Ratio of transaction-pipeline (L2/interconnect) bandwidth to DRAM
  /// bandwidth for scatter/gather kernels. A kernel issuing N transactions
  /// needs N*128/(ratio*bw) seconds of pipeline time even if the DRAM
  /// payload is smaller — this is why scalar FP16 scatter/gather only
  /// reaches ~1.3x of FP32 (Table 3) despite halving the bytes: the
  /// transaction COUNT is unchanged and the pipeline becomes the limit.
  double txn_pipeline_ratio = 0.9;

  /// Fraction of peak DRAM bandwidth achieved by scatter/gather payload
  /// traffic (irregular row accesses are latency-limited below peak).
  double gather_efficiency = 0.7;

  /// Fraction of peak DRAM bandwidth achieved by mapping kernels
  /// (dependent random hash probes / grid lookups).
  double mapping_efficiency = 0.8;
};

inline DeviceSpec gtx1080ti() {
  DeviceSpec d;
  d.name = "GTX 1080Ti";
  d.dram_bandwidth_gbps = 484.0;
  d.peak_fp32_tflops = 11.3;
  d.peak_fp16_tflops = 11.3;  // no tensor cores: FP16 matmul at FP32 rate
  d.has_fp16_tensor_cores = false;
  d.l2_bytes = 2.75 * 1024 * 1024;
  d.launch_overhead_us = 1.2;
  d.core_clock_ghz = 1.58;
  d.num_sms = 28;
  return d;
}

inline DeviceSpec rtx2080ti() {
  DeviceSpec d;
  d.name = "RTX 2080Ti";
  d.dram_bandwidth_gbps = 616.0;
  d.peak_fp32_tflops = 13.4;
  d.peak_fp16_tflops = 26.9;  // tensor cores, FP32 accumulate
  d.has_fp16_tensor_cores = true;
  d.l2_bytes = 5.5 * 1024 * 1024;
  d.launch_overhead_us = 1.0;
  d.core_clock_ghz = 1.54;
  d.num_sms = 68;
  return d;
}

inline DeviceSpec rtx3090() {
  DeviceSpec d;
  d.name = "RTX 3090";
  d.dram_bandwidth_gbps = 936.0;
  d.peak_fp32_tflops = 35.6;
  d.peak_fp16_tflops = 35.6;  // Ampere GA102: FP16 TC rate == FP32 FMA rate
                              // for dense (71 TF with sparsity, unused here)
  d.has_fp16_tensor_cores = true;
  d.l2_bytes = 6.0 * 1024 * 1024;
  d.launch_overhead_us = 0.8;
  d.core_clock_ghz = 1.70;
  d.num_sms = 82;
  return d;
}

inline std::vector<DeviceSpec> all_devices() {
  return {rtx3090(), rtx2080ti(), gtx1080ti()};
}

/// The short names the registry accepts (canonical forms; see
/// device_spec_by_name for the accepted spellings).
inline std::vector<std::string> known_device_names() {
  return {"1080ti", "2080ti", "3090"};
}

/// Named-spec registry: resolves a device name to its DeviceSpec so
/// fleets are describable as data ("which GPUs" in a config file or a
/// ServerConfig::with_fleet call, not a factory-function call site).
/// Matching is forgiving: case-insensitive, spaces/dashes/underscores
/// ignored, and an optional "gtx"/"rtx" prefix allowed — "3090",
/// "RTX 3090", and "rtx-3090" all resolve to rtx3090(). Unknown names
/// throw std::invalid_argument listing the known ones.
inline DeviceSpec device_spec_by_name(std::string_view name) {
  std::string norm;
  norm.reserve(name.size());
  for (const char c : name) {
    if (c == ' ' || c == '-' || c == '_') continue;
    norm.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (norm.rfind("gtx", 0) == 0 || norm.rfind("rtx", 0) == 0)
    norm.erase(0, 3);
  if (norm == "1080ti") return gtx1080ti();
  if (norm == "2080ti") return rtx2080ti();
  if (norm == "3090") return rtx3090();
  std::string known;
  for (const std::string& k : known_device_names()) {
    if (!known.empty()) known += ", ";
    known += "\"" + k + "\"";
  }
  throw std::invalid_argument("device_spec_by_name: unknown device \"" +
                              std::string(name) + "\" (known: " + known +
                              ")");
}

}  // namespace ts
