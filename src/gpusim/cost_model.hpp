// Analytic GPU kernel cost model.
//
// Kernel latency = launch overhead + max(compute time, memory time).
// Compute time for GEMM uses a utilization curve that saturates with the
// problem size — the mechanism behind the paper's Principle I: many small
// per-offset GEMMs underutilize the device (30% on RTX 2080Ti), while
// grouped/batched GEMMs with more effective rows reach ~44% (Table 2).
// Memory time divides DRAM traffic (from transaction counts and the cache
// simulator) by device bandwidth.
#pragma once

#include <cmath>
#include <cstddef>

#include "gpusim/coalesce.hpp"
#include "gpusim/device.hpp"
#include "tensor/precision.hpp"

namespace ts {

struct KernelCost {
  double seconds = 0.0;
  double flops = 0.0;       // executed FLOPs (includes padding waste)
  double dram_bytes = 0.0;  // modeled DRAM traffic
};

class CostModel {
 public:
  explicit CostModel(const DeviceSpec& dev) : dev_(dev) {}
  const DeviceSpec& device() const { return dev_; }

  double launch_seconds() const { return dev_.launch_overhead_us * 1e-6; }

  /// GEMM peak throughput at a storage precision. INT8 features are
  /// widened to FP16 before the GEMM (paper §4.3.1), so they use the FP16
  /// rate.
  double peak_tflops(Precision p) const {
    return p == Precision::kFP32 ? dev_.peak_fp32_tflops
                                 : dev_.peak_fp16_tflops;
  }

  /// The peak the utilization constants were calibrated against (2080Ti
  /// FP32). Faster units (e.g. FP16 tensor cores) need proportionally
  /// larger workloads to reach the same utilization fraction.
  static constexpr double kReferencePeakTflops = 13.4;

  /// Fraction of peak achieved by a GEMM with `rows` effective rows
  /// (batched GEMMs contribute batch * padded_rows), `inner` = C_in,
  /// `cols` = C_out, at storage precision `p`. Rows and the channel
  /// geometry each contribute a saturating factor whose half-point scales
  /// with the precision's peak rate.
  double mm_utilization(double rows, double inner, double cols,
                        Precision p) const {
    const double s = peak_tflops(p) / kReferencePeakTflops;
    const double c_eff = std::sqrt(inner * cols);
    const double fr = rows / (rows + dev_.rows_half * s);
    const double fc = c_eff / (c_eff + dev_.ch_half * s);
    return dev_.max_mm_util * fr * fc;
  }

  /// One plain GEMM kernel: [rows, inner] x [inner, cols].
  KernelCost mm(std::size_t rows, std::size_t inner, std::size_t cols,
                Precision p) const;

  /// One batched GEMM kernel over `batch` problems padded to
  /// `padded_rows` rows each. FLOPs include the padding waste; the
  /// utilization benefits from the full batch * padded_rows rows.
  KernelCost bmm(std::size_t batch, std::size_t padded_rows,
                 std::size_t inner, std::size_t cols, Precision p) const;

  /// Seconds to move `bytes` of DRAM traffic at full bandwidth.
  double dram_seconds(double bytes) const {
    return bytes / (dev_.dram_bandwidth_gbps * 1e9);
  }

  /// Seconds for `n` memory transactions to drain through the
  /// L2/interconnect pipeline. Transactions occupy a fixed pipeline slot
  /// whether or not their 128-byte payload is fully utilized — this is
  /// what caps scalar FP16 scatter/gather at ~1.3x of FP32 (Table 3).
  double transaction_seconds(double n) const {
    return dram_seconds(n * kTransactionBytes) / dev_.txn_pipeline_ratio;
  }

  /// Seconds for an instruction-bound kernel executing `ops` simple
  /// integer/control operations across the device.
  double instruction_seconds(double ops) const {
    // 32 lanes/SM sustained scalar-op throughput model.
    const double ops_per_s = dev_.num_sms * dev_.core_clock_ghz * 1e9 * 32.0;
    return ops / ops_per_s;
  }

 private:
  DeviceSpec dev_;
};

}  // namespace ts
