#include "gpusim/cache.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace ts {

namespace {

/// Largest power of two <= v (v >= 1).
std::size_t floor_pow2(std::size_t v) {
  std::size_t s = 1;
  while (s * 2 <= v) s *= 2;
  return s;
}

unsigned log2_exact(std::size_t v) {
  unsigned n = 0;
  while ((std::size_t(1) << n) < v) ++n;
  return n;
}

}  // namespace

CacheSim::CacheSim(std::size_t capacity_bytes, int ways,
                   std::size_t line_bytes)
    : line_bytes_(floor_pow2(std::max<std::size_t>(line_bytes, 1))),
      ways_(static_cast<std::size_t>(std::clamp(ways, 1, 64))) {
  line_shift_ = log2_exact(line_bytes_);
  num_sets_ = std::max<std::size_t>(1, capacity_bytes / (line_bytes_ * ways_));
  // Power-of-two sets for cheap indexing.
  num_sets_ = floor_pow2(num_sets_);
  set_shift_ = log2_exact(num_sets_);
  tags_.assign(num_sets_ * ways_, kInvalidTag);
  dirty_.assign(num_sets_, 0);
}

void CacheSim::reset() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(dirty_.begin(), dirty_.end(), uint64_t{0});
  hits_ = read_misses_ = write_misses_ = writebacks_ = 0;
}

// Miss path (out of line; the inline header scan handles hits): the
// victim is the back slot — the least recently used way, or an invalid
// way (invalid tags only ever sink backward, so any invalid way reaches
// the back before a valid one is evicted).
std::size_t CacheSim::install_line(uint32_t* tags, uint64_t& dirty,
                                   uint32_t tag, bool is_write) {
  const uint64_t wbit = is_write ? 1 : 0;
  if (is_write) {
    ++write_misses_;  // allocate without fill (streaming store)
  } else {
    ++read_misses_;
  }
  const std::size_t back = ways_ - 1;
  if (tags[back] != kInvalidTag && ((dirty >> back) & 1)) ++writebacks_;
  std::memmove(tags + 1, tags, back * sizeof(uint32_t));
  tags[0] = tag;
  dirty = ((dirty << 1) | wbit) &
          (ways_ == 64 ? ~uint64_t{0} : (uint64_t{1} << ways_) - 1);
  return 1;
}

void CacheSim::throw_tag_overflow(uint64_t line_addr) const {
  throw std::runtime_error(
      "CacheSim: line address " + std::to_string(line_addr) +
      " exceeds the 32-bit tag range for a " +
      std::to_string(num_sets_) + "-set cache (address/capacity "
      "combination outside the simulated slab layout)");
}

}  // namespace ts
