#include "gpusim/cache.hpp"

#include <algorithm>

namespace ts {

CacheSim::CacheSim(std::size_t capacity_bytes, int ways,
                   std::size_t line_bytes)
    : line_bytes_(line_bytes), ways_(ways) {
  num_sets_ = std::max<std::size_t>(1, capacity_bytes / (line_bytes * ways));
  // Power-of-two sets for cheap indexing.
  std::size_t s = 1;
  while (s * 2 <= num_sets_) s *= 2;
  num_sets_ = s;
  lines_.assign(num_sets_ * static_cast<std::size_t>(ways_), Line{});
}

void CacheSim::reset() {
  std::fill(lines_.begin(), lines_.end(), Line{});
  tick_ = 0;
  hits_ = read_misses_ = write_misses_ = writebacks_ = 0;
}

std::size_t CacheSim::access(uint64_t addr, std::size_t bytes,
                             bool is_write) {
  if (bytes == 0) return 0;
  const uint64_t first = addr / line_bytes_;
  const uint64_t last = (addr + bytes - 1) / line_bytes_;
  std::size_t line_misses = 0;
  for (uint64_t l = first; l <= last; ++l)
    line_misses += access_line(l, is_write);
  return line_misses;
}

std::size_t CacheSim::access_line(uint64_t line_addr, bool is_write) {
  const std::size_t set = static_cast<std::size_t>(line_addr) & (num_sets_ - 1);
  const uint64_t tag = line_addr / num_sets_;
  Line* base = lines_.data() + set * static_cast<std::size_t>(ways_);
  ++tick_;

  Line* victim = base;
  for (int w = 0; w < ways_; ++w) {
    Line& ln = base[w];
    if (ln.valid && ln.tag == tag) {
      ln.lru = tick_;
      ln.dirty = ln.dirty || is_write;
      ++hits_;
      return 0;
    }
    if (!ln.valid) {
      victim = &ln;
    } else if (victim->valid && ln.lru < victim->lru) {
      victim = &ln;
    }
  }
  if (is_write) {
    ++write_misses_;  // allocate without fill (streaming store)
  } else {
    ++read_misses_;
  }
  if (victim->valid && victim->dirty) ++writebacks_;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  victim->dirty = is_write;
  return 1;
}

}  // namespace ts
