#include "nn/minkunet.hpp"

#include <algorithm>
#include <cmath>

namespace ts::spnn {

namespace {
std::size_t scaled(double width, int base) {
  return static_cast<std::size_t>(
      std::max(1.0, std::round(width * static_cast<double>(base))));
}
}  // namespace

MinkUNet::MinkUNet(double width, std::size_t in_channels,
                   std::size_t num_classes, uint64_t seed) {
  std::mt19937_64 rng(seed);
  const int base[9] = {32, 32, 64, 128, 256, 256, 128, 96, 96};
  std::size_t cs[9];
  for (int i = 0; i < 9; ++i) cs[i] = scaled(width, base[i]);

  stem1_ = std::make_unique<ConvBlock>(in_channels, cs[0], 3, 1, false, rng);
  stem2_ = std::make_unique<ConvBlock>(cs[0], cs[0], 3, 1, false, rng);

  // Encoder: channels cs[0] -> cs[1..4], tensor strides 2/4/8/16.
  std::size_t ch = cs[0];
  for (int s = 0; s < 4; ++s) {
    Down d;
    d.down = std::make_unique<ConvBlock>(ch, ch, 2, 2, false, rng);
    d.res1 = std::make_unique<ResidualBlock>(ch, cs[s + 1], 3, rng);
    d.res2 = std::make_unique<ResidualBlock>(cs[s + 1], cs[s + 1], 3, rng);
    ch = cs[s + 1];
    encoder_.push_back(std::move(d));
  }

  // Decoder: transposed conv to cs[5..8], concat skip, 2 residual blocks.
  // Skip channels by level (deepest first): cs[3], cs[2], cs[1], cs[0].
  const std::size_t skip_ch[4] = {cs[3], cs[2], cs[1], cs[0]};
  for (int s = 0; s < 4; ++s) {
    Up u;
    u.up = std::make_unique<ConvBlock>(ch, cs[5 + s], 2, 2, true, rng);
    u.res1 = std::make_unique<ResidualBlock>(cs[5 + s] + skip_ch[s],
                                             cs[5 + s], 3, rng);
    u.res2 = std::make_unique<ResidualBlock>(cs[5 + s], cs[5 + s], 3, rng);
    ch = cs[5 + s];
    decoder_.push_back(std::move(u));
  }

  classifier_ = std::make_unique<Conv3d>(ch, num_classes, 1, 1, false, rng);
}

void MinkUNet::collect_convs(std::vector<Conv3d*>& out) {
  stem1_->collect_convs(out);
  stem2_->collect_convs(out);
  for (auto& d : encoder_) {
    d.down->collect_convs(out);
    d.res1->collect_convs(out);
    d.res2->collect_convs(out);
  }
  for (auto& u : decoder_) {
    u.up->collect_convs(out);
    u.res1->collect_convs(out);
    u.res2->collect_convs(out);
  }
  out.push_back(classifier_.get());
}

SparseTensor MinkUNet::forward(const SparseTensor& x, ExecContext& ctx) {
  SparseTensor s0 = stem2_->forward(stem1_->forward(x, ctx), ctx);

  std::vector<SparseTensor> skips;  // stride 1, 2, 4, 8 feature maps
  skips.push_back(s0);
  SparseTensor y = s0;
  for (std::size_t i = 0; i < encoder_.size(); ++i) {
    y = encoder_[i].down->forward(y, ctx);
    y = encoder_[i].res1->forward(y, ctx);
    y = encoder_[i].res2->forward(y, ctx);
    if (i + 1 < encoder_.size()) skips.push_back(y);
  }

  for (std::size_t i = 0; i < decoder_.size(); ++i) {
    y = decoder_[i].up->forward(y, ctx);
    const SparseTensor& skip = skips[skips.size() - 1 - i];
    y = concat_features(y, skip, ctx);
    y = decoder_[i].res1->forward(y, ctx);
    y = decoder_[i].res2->forward(y, ctx);
  }
  return classifier_->forward(y, ctx);
}

}  // namespace ts::spnn
