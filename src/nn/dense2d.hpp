// Dense BEV (bird's-eye-view) 2-D substrate for detection heads.
//
// CenterPoint's pipeline ends with dense 2-D convolutions and
// non-maximum suppression over the flattened BEV map; the paper's Fig. 4b
// shows this "Conv2D/NMS" tail is ~10-12% of detector runtime and is the
// part TorchSparse does NOT accelerate (§5.2). We implement it so the
// detection benchmarks carry the same unaccelerated tail.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "core/exec.hpp"
#include "core/sparse_tensor.hpp"
#include "tensor/matrix.hpp"

namespace ts::spnn {

/// Dense channel-major BEV feature map: data[c][y*w + x].
struct DenseBEV {
  int h = 0, w = 0;
  Matrix data;  // rows = channels, cols = h*w
  int channels() const { return static_cast<int>(data.rows()); }
};

/// Flattens a sparse tensor to BEV by summing features over z per (x, y)
/// cell (SECOND-style "to dense + reshape"). Charged to Stage::kMisc.
DenseBEV sparse_to_bev(const SparseTensor& x, ExecContext& ctx);

/// Dense 3x3 conv + ReLU over a BEV map (im2col + GEMM numerics; cost is
/// one GEMM of [h*w, 9*c_in, c_out] charged to Stage::kDense2D).
class Conv2d {
 public:
  Conv2d(int c_in, int c_out, std::mt19937_64& rng, bool relu = true);
  DenseBEV forward(const DenseBEV& x, ExecContext& ctx) const;

 private:
  int c_in_, c_out_;
  bool relu_;
  Matrix weight_;  // [9*c_in, c_out]
};

/// An axis-aligned BEV detection box.
struct Detection {
  float x = 0, y = 0;      // center, in BEV cells
  float half_w = 0, half_l = 0;
  float score = 0;
};

/// Decodes peaks of a 1-channel heatmap + 4-channel box regression into
/// detections and applies IoU-threshold NMS. Top-k selection is charged
/// to Stage::kMisc; the O(k^2) suppression to Stage::kNMS (NMS is the
/// classic serial bottleneck on GPUs).
std::vector<Detection> decode_and_nms(const DenseBEV& heatmap,
                                      const DenseBEV& boxes, int top_k,
                                      float score_thresh, float iou_thresh,
                                      ExecContext& ctx);

/// BEV IoU of two axis-aligned boxes.
float bev_iou(const Detection& a, const Detection& b);

}  // namespace ts::spnn
