// SECOND-style sparse middle encoder + BEV head (Yan et al. 2018).
//
// SECOND is SpConv's native detector and the architectural ancestor of
// CenterPoint's backbone: plain (non-residual) submanifold conv blocks
// with stride-2 sparse downsamples, flattened to BEV for a dense RPN. We
// include it so the engine comparison covers both residual and plain
// sparse backbones (their kernel-map reuse patterns differ: plain stacks
// reuse maps less across channel changes).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/dense2d.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace ts::spnn {

struct SecondOutput {
  std::vector<Detection> detections;
  SparseTensor middle_out;  // stride-8 sparse features
};

class SecondDetector {
 public:
  SecondDetector(std::size_t in_channels, uint64_t seed);

  SecondOutput run(const SparseTensor& x, ExecContext& ctx);

  void collect_convs(std::vector<Conv3d*>& out);
  std::vector<Conv3d*> convs() {
    std::vector<Conv3d*> out;
    collect_convs(out);
    return out;
  }

 private:
  // Middle extractor: (2x submanifold conv, downsample) x 3.
  struct Stage {
    std::unique_ptr<ConvBlock> conv1, conv2;
    std::unique_ptr<ConvBlock> down;  // K=3, s=2
  };
  std::unique_ptr<ConvBlock> stem_;
  std::vector<Stage> stages_;

  std::vector<Conv2d> rpn_;
  std::unique_ptr<Conv2d> score_head_;
  std::unique_ptr<Conv2d> box_head_;
};

}  // namespace ts::spnn
