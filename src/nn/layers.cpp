#include "nn/layers.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/mapping_cost.hpp"

namespace ts::spnn {

Matrix random_weight(std::size_t rows, std::size_t cols,
                     std::mt19937_64& rng, float scale) {
  std::normal_distribution<float> dist(0.0f, scale);
  Matrix w(rows, cols);
  for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] = dist(rng);
  return w;
}

std::vector<Matrix> make_conv_weights(int kernel_size, std::size_t c_in,
                                      std::size_t c_out,
                                      std::mt19937_64& rng) {
  const int volume = kernel_volume(kernel_size);
  const float scale = std::sqrt(
      2.0f / (static_cast<float>(volume) * static_cast<float>(c_in)));
  std::vector<Matrix> w;
  w.reserve(static_cast<std::size_t>(volume));
  for (int n = 0; n < volume; ++n)
    w.push_back(random_weight(c_in, c_out, rng, scale));
  return w;
}

int next_layer_id() {
  static std::atomic<int> counter{0};
  return counter++;
}

Conv3d::Conv3d(std::size_t c_in, std::size_t c_out, int kernel_size,
               int stride, bool transposed, std::mt19937_64& rng,
               int dilation)
    : id_(next_layer_id()) {
  params_.geom.kernel_size = kernel_size;
  params_.geom.stride = stride;
  params_.geom.transposed = transposed;
  params_.geom.dilation = dilation;
  params_.weights = make_conv_weights(kernel_size, c_in, c_out, rng);
}

SparseTensor Conv3d::forward(const SparseTensor& x, ExecContext& ctx) {
  ctx.layer_id = id_;
  return sparse_conv3d(x, params_, ctx);
}

void Conv3d::quantize_weights(Precision p) {
  for (Matrix& w : params_.weights) w.quantize(p);
}

BatchNorm::BatchNorm(std::size_t channels, std::mt19937_64& rng) {
  std::uniform_real_distribution<float> g(0.7f, 1.3f);
  std::uniform_real_distribution<float> b(-0.1f, 0.1f);
  scale_.resize(channels);
  shift_.resize(channels);
  for (std::size_t c = 0; c < channels; ++c) {
    scale_[c] = g(rng);
    shift_[c] = b(rng);
  }
}

SparseTensor BatchNorm::forward(const SparseTensor& x, ExecContext& ctx) {
  // Always-on shape contract (ROADMAP "Hardening"): must hold identically
  // in Debug and Release, and on cost-only passes too.
  if (x.channels() != scale_.size())
    throw std::invalid_argument(
        "spnn::BatchNorm: input has " + std::to_string(x.channels()) +
        " channels but the layer was built for " +
        std::to_string(scale_.size()));
  charge_elementwise(x.num_points(), x.channels(), ctx);
  SparseTensor y = x;
  if (ctx.compute_numerics) {
    Matrix& f = y.feats();
    for (std::size_t r = 0; r < f.rows(); ++r) {
      float* row = f.row(r);
      for (std::size_t c = 0; c < f.cols(); ++c)
        row[c] = row[c] * scale_[c] + shift_[c];
    }
    if (ctx.cfg.precision != Precision::kFP32)
      f.quantize(Precision::kFP16);
  }
  return y;
}

SparseTensor ReLU::forward(const SparseTensor& x, ExecContext& ctx) {
  charge_elementwise(x.num_points(), x.channels(), ctx);
  SparseTensor y = x;
  if (ctx.compute_numerics) {
    Matrix& f = y.feats();
    for (std::size_t i = 0; i < f.size(); ++i)
      if (f.data()[i] < 0.0f) f.data()[i] = 0.0f;
  }
  return y;
}

ConvBlock::ConvBlock(std::size_t c_in, std::size_t c_out, int kernel_size,
                     int stride, bool transposed, std::mt19937_64& rng)
    : conv_(std::make_unique<Conv3d>(c_in, c_out, kernel_size, stride,
                                     transposed, rng)),
      bn_(std::make_unique<BatchNorm>(c_out, rng)) {}

SparseTensor ConvBlock::forward(const SparseTensor& x, ExecContext& ctx) {
  return relu_.forward(bn_->forward(conv_->forward(x, ctx), ctx), ctx);
}

ResidualBlock::ResidualBlock(std::size_t c_in, std::size_t c_out,
                             int kernel_size, std::mt19937_64& rng)
    : conv1_(std::make_unique<Conv3d>(c_in, c_out, kernel_size, 1, false,
                                      rng)),
      bn1_(std::make_unique<BatchNorm>(c_out, rng)),
      conv2_(std::make_unique<Conv3d>(c_out, c_out, kernel_size, 1, false,
                                      rng)),
      bn2_(std::make_unique<BatchNorm>(c_out, rng)) {
  if (c_in != c_out) {
    shortcut_conv_ =
        std::make_unique<Conv3d>(c_in, c_out, 1, 1, false, rng);
    shortcut_bn_ = std::make_unique<BatchNorm>(c_out, rng);
  }
}

SparseTensor ResidualBlock::forward(const SparseTensor& x,
                                    ExecContext& ctx) {
  SparseTensor main = bn1_->forward(conv1_->forward(x, ctx), ctx);
  main = relu_.forward(main, ctx);
  main = bn2_->forward(conv2_->forward(main, ctx), ctx);
  SparseTensor skip =
      shortcut_conv_
          ? shortcut_bn_->forward(shortcut_conv_->forward(x, ctx), ctx)
          : x;
  return relu_.forward(add_features(main, skip, ctx), ctx);
}

SparseTensor add_features(const SparseTensor& a, const SparseTensor& b,
                          ExecContext& ctx) {
  if (a.num_points() != b.num_points())
    throw std::invalid_argument(
        "spnn::add_features: point counts differ (" +
        std::to_string(a.num_points()) + " vs " +
        std::to_string(b.num_points()) + ")");
  if (a.channels() != b.channels())
    throw std::invalid_argument(
        "spnn::add_features: channel counts differ (" +
        std::to_string(a.channels()) + " vs " +
        std::to_string(b.channels()) + ")");
  charge_elementwise(a.num_points(), a.channels(), ctx);
  SparseTensor y = a;
  if (ctx.compute_numerics) {
    Matrix& f = y.feats();
    const Matrix& g = b.feats();
    for (std::size_t i = 0; i < f.size(); ++i) f.data()[i] += g.data()[i];
    if (ctx.cfg.precision != Precision::kFP32)
      f.quantize(Precision::kFP16);
  }
  return y;
}

SparseTensor concat_features(const SparseTensor& a, const SparseTensor& b,
                             ExecContext& ctx) {
  if (a.num_points() != b.num_points())
    throw std::invalid_argument(
        "spnn::concat_features: point counts differ (" +
        std::to_string(a.num_points()) + " vs " +
        std::to_string(b.num_points()) + ")");
  charge_elementwise(a.num_points(), a.channels() + b.channels(), ctx);
  Matrix f(a.num_points(), a.channels() + b.channels());
  if (ctx.compute_numerics) {
    for (std::size_t r = 0; r < f.rows(); ++r) {
      float* row = f.row(r);
      const float* ra = a.feats().row(r);
      const float* rb = b.feats().row(r);
      for (std::size_t c = 0; c < a.channels(); ++c) row[c] = ra[c];
      for (std::size_t c = 0; c < b.channels(); ++c)
        row[a.channels() + c] = rb[c];
    }
  }
  return SparseTensor(a.coords_ptr(), std::move(f), a.stride(), a.cache());
}

void quantize_convs(const std::vector<Conv3d*>& convs, Precision p) {
  for (Conv3d* c : convs) c->quantize_weights(p);
}

}  // namespace ts::spnn
