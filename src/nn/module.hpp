// Minimal module system mirroring the paper's Fig. 5 `spnn` API:
// users compose Conv3d / BatchNorm / ReLU in Sequential containers with no
// coordinate-manager or indice-key bookkeeping.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/exec.hpp"
#include "core/sparse_tensor.hpp"

namespace ts::spnn {

class Conv3d;  // defined in layers.hpp

class Module {
 public:
  virtual ~Module() = default;
  virtual SparseTensor forward(const SparseTensor& x, ExecContext& ctx) = 0;
  /// Appends every Conv3d in this subtree (weight quantization, stats).
  virtual void collect_convs(std::vector<Conv3d*>&) {}
};

using ModulePtr = std::unique_ptr<Module>;

/// Runs children in order.
class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<ModulePtr> mods) : mods_(std::move(mods)) {}

  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    auto m = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *m;
    mods_.push_back(std::move(m));
    return ref;
  }
  void push(ModulePtr m) { mods_.push_back(std::move(m)); }
  std::size_t size() const { return mods_.size(); }

  SparseTensor forward(const SparseTensor& x, ExecContext& ctx) override {
    SparseTensor y = x;
    for (auto& m : mods_) y = m->forward(y, ctx);
    return y;
  }

  void collect_convs(std::vector<Conv3d*>& out) override {
    for (auto& m : mods_) m->collect_convs(out);
  }

 private:
  std::vector<ModulePtr> mods_;
};

}  // namespace ts::spnn
