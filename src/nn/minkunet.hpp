// MinkUNet (Choy et al. 2019) — the paper's segmentation workload,
// evaluated at 1.0x/0.5x width on SemanticKITTI and 1/3-frame on
// nuScenes-LiDARSeg. Standard U-Net over sparse tensors: a 2-conv stem,
// four downsample stages (stride-2 K=2 conv + two residual blocks), four
// transposed-conv upsample stages with skip concatenation, and a 1x1x1
// classifier head.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace ts::spnn {

class MinkUNet : public Module {
 public:
  /// `width` scales all hidden channel counts (1.0 or 0.5 in the paper).
  MinkUNet(double width, std::size_t in_channels, std::size_t num_classes,
           uint64_t seed);

  SparseTensor forward(const SparseTensor& x, ExecContext& ctx) override;
  void collect_convs(std::vector<Conv3d*>& out) override;

  /// All conv layers (for weight quantization and tuner bookkeeping).
  std::vector<Conv3d*> convs() {
    std::vector<Conv3d*> out;
    collect_convs(out);
    return out;
  }

 private:
  // Channel plan cs[0..8] as in the reference implementation:
  // {32, 32, 64, 128, 256, 256, 128, 96, 96} * width.
  std::unique_ptr<ConvBlock> stem1_, stem2_;
  struct Down {
    std::unique_ptr<ConvBlock> down;  // K=2, s=2
    std::unique_ptr<ResidualBlock> res1, res2;
  };
  struct Up {
    std::unique_ptr<ConvBlock> up;  // transposed K=2, s=2
    std::unique_ptr<ResidualBlock> res1, res2;
  };
  std::vector<Down> encoder_;
  std::vector<Up> decoder_;
  std::unique_ptr<Conv3d> classifier_;
};

}  // namespace ts::spnn
