// CenterPoint-style 3-D detector (Yin et al. 2021) — the paper's detection
// workload (10-frame nuScenes, 1/3-frame Waymo).
//
// Pipeline: SECOND-style sparse 3-D encoder (submanifold residual blocks
// with three stride-2 downsamples) -> flatten to dense BEV -> small 2-D
// neck -> center heatmap + box regression heads -> decode + NMS. The
// sparse encoder is what TorchSparse accelerates; the 2-D tail is the
// ~10% the paper's Fig. 4b attributes to "Conv2D / NMS".
#pragma once

#include <cstdint>
#include <vector>

#include "nn/dense2d.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace ts::spnn {

struct CenterPointOutput {
  std::vector<Detection> detections;
  SparseTensor backbone_out;  // stride-8 sparse features (tests/debug)
};

class CenterPoint {
 public:
  CenterPoint(std::size_t in_channels, uint64_t seed);

  CenterPointOutput run(const SparseTensor& x, ExecContext& ctx);

  void collect_convs(std::vector<Conv3d*>& out);
  std::vector<Conv3d*> convs() {
    std::vector<Conv3d*> out;
    collect_convs(out);
    return out;
  }

 private:
  // Sparse 3-D encoder: channels 16 -> 32 -> 64 -> 128, strides 1/2/4/8.
  std::unique_ptr<ConvBlock> stem_;
  std::unique_ptr<ResidualBlock> res0_;
  std::unique_ptr<ConvBlock> down1_;
  std::unique_ptr<ResidualBlock> res1_;
  std::unique_ptr<ConvBlock> down2_;
  std::unique_ptr<ResidualBlock> res2_;
  std::unique_ptr<ConvBlock> down3_;
  std::unique_ptr<ResidualBlock> res3a_, res3b_;

  // Dense BEV neck + heads.
  std::vector<Conv2d> neck_;
  std::unique_ptr<Conv2d> heatmap_head_;
  std::unique_ptr<Conv2d> box_head_;
};

}  // namespace ts::spnn
