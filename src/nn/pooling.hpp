// Global pooling over sparse tensors (torchsparse's spnn.GlobalAvgPool /
// GlobalMaxPool): reduces all points of each batch element to a single
// feature vector — the head of sparse classification networks.
#pragma once

#include "core/exec.hpp"
#include "core/sparse_tensor.hpp"
#include "tensor/matrix.hpp"

namespace ts::spnn {

enum class PoolKind { kAvg, kMax };

/// Reduces a sparse tensor per batch index. Returns a matrix of shape
/// [num_batches, channels], where row b pools every point with batch
/// index b and num_batches = max batch index + 1. Charged as one
/// streaming reduction kernel (Stage::kMisc).
/// Preconditions (std::invalid_argument, identical in Debug and
/// Release): every coordinate's batch index is within
/// [0, kCoordBatchMax]. A negative index would silently index out of
/// bounds rather than assert, and an absurdly large one (anything past
/// the packable batch range — no valid tensor can carry it) would turn
/// the output allocation itself into the failure, so both are validated
/// at this API boundary instead. Empty tensors pool to a 0-row matrix.
Matrix global_pool(const SparseTensor& x, PoolKind kind, ExecContext& ctx);

/// Fixed-shape overload for serving heads: the caller declares the batch
/// count and always gets back exactly `num_batches` rows (batches with
/// no points pool to zero). Additional precondition
/// (std::invalid_argument): num_batches >= 0 and every point's batch
/// index is < num_batches — an index past the declared count is corrupt
/// input, not a bigger batch.
Matrix global_pool(const SparseTensor& x, PoolKind kind, int num_batches,
                   ExecContext& ctx);

}  // namespace ts::spnn
