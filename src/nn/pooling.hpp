// Global pooling over sparse tensors (torchsparse's spnn.GlobalAvgPool /
// GlobalMaxPool): reduces all points of each batch element to a single
// feature vector — the head of sparse classification networks.
#pragma once

#include "core/exec.hpp"
#include "core/sparse_tensor.hpp"
#include "tensor/matrix.hpp"

namespace ts::spnn {

enum class PoolKind { kAvg, kMax };

/// Reduces a sparse tensor per batch index. Returns a matrix of shape
/// [num_batches, channels], where row b pools every point with batch
/// index b. Charged as one streaming reduction kernel (Stage::kMisc).
/// Precondition (std::invalid_argument, identical in Debug and Release):
/// every coordinate's batch index is non-negative — a negative index
/// would silently index out of bounds, not assert, so it is validated at
/// this API boundary instead. Empty tensors pool to a 0-row matrix.
Matrix global_pool(const SparseTensor& x, PoolKind kind, ExecContext& ctx);

}  // namespace ts::spnn
