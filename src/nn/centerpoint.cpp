#include "nn/centerpoint.hpp"

namespace ts::spnn {

CenterPoint::CenterPoint(std::size_t in_channels, uint64_t seed) {
  std::mt19937_64 rng(seed + 17);
  stem_ = std::make_unique<ConvBlock>(in_channels, 16, 3, 1, false, rng);
  res0_ = std::make_unique<ResidualBlock>(16, 16, 3, rng);
  down1_ = std::make_unique<ConvBlock>(16, 32, 3, 2, false, rng);
  res1_ = std::make_unique<ResidualBlock>(32, 32, 3, rng);
  down2_ = std::make_unique<ConvBlock>(32, 64, 3, 2, false, rng);
  res2_ = std::make_unique<ResidualBlock>(64, 64, 3, rng);
  down3_ = std::make_unique<ConvBlock>(64, 128, 3, 2, false, rng);
  res3a_ = std::make_unique<ResidualBlock>(128, 128, 3, rng);
  res3b_ = std::make_unique<ResidualBlock>(128, 128, 3, rng);

  neck_.emplace_back(128, 128, rng);
  neck_.emplace_back(128, 128, rng);
  neck_.emplace_back(128, 128, rng);
  heatmap_head_ = std::make_unique<Conv2d>(128, 1, rng, /*relu=*/false);
  box_head_ = std::make_unique<Conv2d>(128, 4, rng, /*relu=*/false);
}

void CenterPoint::collect_convs(std::vector<Conv3d*>& out) {
  stem_->collect_convs(out);
  res0_->collect_convs(out);
  down1_->collect_convs(out);
  res1_->collect_convs(out);
  down2_->collect_convs(out);
  res2_->collect_convs(out);
  down3_->collect_convs(out);
  res3a_->collect_convs(out);
  res3b_->collect_convs(out);
}

CenterPointOutput CenterPoint::run(const SparseTensor& x, ExecContext& ctx) {
  SparseTensor y = res0_->forward(stem_->forward(x, ctx), ctx);
  y = res1_->forward(down1_->forward(y, ctx), ctx);
  y = res2_->forward(down2_->forward(y, ctx), ctx);
  y = res3b_->forward(
      res3a_->forward(down3_->forward(y, ctx), ctx), ctx);

  DenseBEV bev = sparse_to_bev(y, ctx);
  for (const Conv2d& c : neck_) bev = c.forward(bev, ctx);
  DenseBEV heatmap = heatmap_head_->forward(bev, ctx);
  DenseBEV boxes = box_head_->forward(bev, ctx);

  CenterPointOutput out{decode_and_nms(heatmap, boxes, /*top_k=*/256,
                                       /*score_thresh=*/0.1f,
                                       /*iou_thresh=*/0.5f, ctx),
                        y};
  return out;
}

}  // namespace ts::spnn
